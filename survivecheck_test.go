package plibmc

// The shard-lifecycle survival gate (make survivecheck): an unrepairable
// crash — a client killed mid-mutation whose repair pass itself fails —
// poisons one shard of a 4-shard cluster. The supervisor must rebuild it
// with no operator action while the surviving shards serve a full mixed
// workload with zero errors, and the merged survivor history must
// linearize exactly. The rebuilt shard reopens from its checkpoint and
// resumes past the dead heap's CAS high-water mark, so fresh writes mint
// tokens no pre-crash client ever observed.
//
// BenchmarkRebuildSurvivor (make survivecheck) is the latency half of the
// claim: survivor p99 during the poison → rebuild window, self-gated at
// 2x the quiet baseline.

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/internal/linearcheck"
	"plibmc/internal/model"
	"plibmc/memcached"
)

// stepOn is the survivor mix restricted to an explicit key set — unlike
// step it never touches the shared counter keys, so survivors can be
// confined to shards the doomed client will not crash.
func (w *mcWorker) stepOn(keys []string) bool {
	key := w.pickGeneral(keys)
	switch p := w.rng.Intn(100); {
	case p < 35:
		return w.doGets(key)
	case p < 45:
		n := 2 + w.rng.Intn(3)
		batch := make([]string, n)
		for i := range batch {
			batch[i] = w.pickGeneral(keys)
		}
		return w.doMGet(batch)
	case p < 65:
		return w.doStore(model.Set, key, w.val(), 0)
	case p < 72:
		return w.doStore(model.Add, key, w.val(), 0)
	case p < 80:
		return w.doStore(model.CAS, key, w.val(), 0)
	case p < 88:
		return w.doDelete(key)
	case p < 94:
		return w.doPend(key, append([]byte("+"), w.val()...), false)
	default:
		return w.doGAT(key, mcFarExpiry)
	}
}

// readStepOn is the read-only form for the armed-crash window, where a
// survivor mutation could consume the one-shot fault handler meant for
// the doomed client.
func (w *mcWorker) readStepOn(keys []string) bool {
	if w.rng.Intn(4) == 0 {
		n := 2 + w.rng.Intn(3)
		batch := make([]string, n)
		for i := range batch {
			batch[i] = w.pickGeneral(keys)
		}
		return w.doMGet(batch)
	}
	return w.doGets(w.pickGeneral(keys))
}

// poisonClusterShard drives the victim shard into the poisoned state: a
// doomed client is killed at ops.store.mid_swap and the repair pass is
// made to fail (recover.repair_fail), which is hodor's terminal rung.
func poisonClusterShard(tb testing.TB, c *memcached.Cluster, victim int, doomKey []byte) {
	tb.Helper()
	if err := faultpoint.Arm("recover.repair_fail", func() {
		panic("survivecheck: injected unrepairable repair")
	}); err != nil {
		tb.Fatal(err)
	}
	dcc, err := c.NewClientProcess(6000)
	if err != nil {
		tb.Fatal(err)
	}
	dsess, err := dcc.NewSession()
	if err != nil {
		tb.Fatal(err)
	}
	var fired atomic.Bool
	if err := faultpoint.Arm("ops.store.mid_swap", func() {
		fired.Store(true)
		dcc.Proc(victim).Kill()
		panic("survivecheck: injected crash at ops.store.mid_swap")
	}); err != nil {
		tb.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !fired.Load() {
		dsess.Set(doomKey, []byte("doomed"), 0, 0) //nolint:errcheck // dies by design
		if time.Now().After(deadline) {
			tb.Fatal("doomed mutations never reached ops.store.mid_swap")
		}
	}
	lib := c.Shard(victim).Library()
	for !lib.Poisoned() {
		if time.Now().After(deadline) {
			tb.Fatal("victim shard never poisoned after the failed repair")
		}
		time.Sleep(time.Millisecond)
	}
}

func surviveClusterConfig(dir string) memcached.ClusterConfig {
	return memcached.ClusterConfig{
		Shards:          4,
		Dir:             dir,
		BreakerCooldown: 10 * time.Millisecond,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
			CallTimeout: 50 * time.Millisecond, RecoveryGrace: 100 * time.Millisecond,
		},
	}
}

func TestSurviveCheckAutoRebuild(t *testing.T) {
	defer faultpoint.DisarmAll()
	c, err := memcached.CreateCluster(surviveClusterConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	for i := 0; i < c.Shards(); i++ {
		c.Shard(i).Store().SetClock(func() int64 { return mcFrozenNow })
	}

	// The victim is wherever the doom key lands; survivors are confined
	// to keys the ring places on the other three shards.
	doomKey := []byte("doom-key-0")
	victim := c.ShardFor(doomKey)
	var safeKeys []string
	for i := 0; len(safeKeys) < 16; i++ {
		k := fmt.Sprintf("sv%03d", i)
		if c.ShardFor([]byte(k)) != victim {
			safeKeys = append(safeKeys, k)
		}
	}

	const nWorkers = 6
	rec := linearcheck.NewRecorder(nWorkers)
	var ws []*mcWorker
	for p := 0; p < 2; p++ {
		cc, err := c.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < nWorkers/2; s++ {
			sess, err := cc.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, newMCWorker(t, sess, rec, len(ws), *modelcheckSeed, false))
		}
	}
	runPhase := func(name string, step func(*mcWorker) bool, minSteps int, done func() bool) {
		t.Helper()
		var wg sync.WaitGroup
		for _, w := range ws {
			wg.Add(1)
			go func(w *mcWorker) {
				defer wg.Done()
				for i := 0; i < minSteps || (done != nil && !done()); i++ {
					if !step(w) {
						w.t.Errorf("%s: survivor %d died", name, w.id)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 1 — healthy mix, then checkpoint the victim so the rebuild
	// ladder has an image to reopen.
	if err := ws[0].s.Set(doomKey, []byte("seed"), 0, 0); err != nil {
		t.Fatal(err)
	}
	runPhase("warmup", func(w *mcWorker) bool { return w.stepOn(safeKeys) }, 300, nil)
	if err := c.Shard(victim).Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Phase 2 — survivors read under the armed crash while the doomed
	// client is killed mid-mutation and the failed repair poisons the
	// victim.
	var poisonWG sync.WaitGroup
	poisoned := make(chan struct{})
	poisonWG.Add(1)
	go func() {
		defer poisonWG.Done()
		poisonClusterShard(t, c, victim, doomKey)
		close(poisoned)
	}()
	runPhase("crash-window", func(w *mcWorker) bool { return w.readStepOn(safeKeys) }, 50, func() bool {
		select {
		case <-poisoned:
			return true
		default:
			return false
		}
	})
	poisonWG.Wait()
	faultpoint.DisarmAll()
	preCAS := c.Shard(victim).Store().CASCounter()

	// Phase 3 — the supervisor, on its own clock, detects the poison and
	// runs the ladder while survivors keep mixing. No operator action.
	rebuildStart := time.Now()
	c.StartSupervisor(5 * time.Millisecond)
	rebuilt := func() bool {
		return c.Metrics().Supervisor.Rebuilds >= 1 && c.State(victim) == memcached.ShardHealthy
	}
	runPhase("rebuild-window", func(w *mcWorker) bool { return w.stepOn(safeKeys) }, 100, rebuilt)
	deadline := time.Now().Add(10 * time.Second)
	for !rebuilt() {
		if time.Now().After(deadline) {
			t.Fatal("supervisor never rebuilt the poisoned shard")
		}
		time.Sleep(time.Millisecond)
	}
	timeToRebuild := time.Since(rebuildStart)
	c.StopSupervisor()

	// The rebuilt shard: reopened from the checkpoint (not empty), CAS
	// space strictly past the dead heap's mark, serving fresh writes.
	sm := c.Metrics().Supervisor
	if sm.RebuiltEmpty != 0 {
		t.Fatalf("rebuild ignored the checkpoint image: %+v", sm)
	}
	if got := c.Shard(victim).Store().CASCounter(); got <= preCAS {
		t.Fatalf("rebuilt CAS seed %d not past pre-crash mark %d", got, preCAS)
	}
	fcc, err := c.NewClientProcess(2000)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := fcc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if v, _, err := fs.Get(doomKey); err != nil || string(v) != "seed" {
		t.Fatalf("checkpointed key after rebuild = %q %v", v, err)
	}
	if err := fs.Set(doomKey, []byte("fresh"), 0, 0); err != nil {
		t.Fatalf("fresh write on rebuilt shard: %v", err)
	}
	if _, _, cas, err := fs.Gets(doomKey); err != nil || cas <= preCAS {
		t.Fatalf("post-rebuild mint %d (err %v) not past pre-crash mark %d", cas, err, preCAS)
	}

	// The survivors' merged history — spanning the crash, the poison
	// window, and the rebuild — linearizes exactly. Worker errors already
	// failed the test via t.Errorf (zero survivor errors is the gate).
	hist := rec.History()
	res := mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen})
	t.Logf("victim shard %d auto-rebuilt in %v (ladder itself %v); %d survivor ops linearized across the outage",
		victim, timeToRebuild, sm.LastRebuildDuration, res.Ops)
}

// BenchmarkRebuildSurvivor (make survivecheck): survivor-shard p99 while
// the victim shard is poisoned and auto-rebuilt, self-gated at 2x the
// quiet baseline (with a floor for scheduler noise).
func BenchmarkRebuildSurvivor(b *testing.B) {
	defer faultpoint.DisarmAll()
	c, err := memcached.CreateCluster(surviveClusterConfig(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Shutdown()

	doomKey := []byte("doom-key-0")
	victim := c.ShardFor(doomKey)
	var safe [][]byte
	for i := 0; len(safe) < 256; i++ {
		k := []byte(fmt.Sprintf("bk%04d", i))
		if c.ShardFor(k) != victim {
			safe = append(safe, k)
		}
	}

	const nWell = 4
	var well []*memcached.ClusterSession
	for p := 0; p < 2; p++ {
		cc, err := c.NewClientProcess(1000 + p)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < nWell/2; s++ {
			sess, err := cc.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			well = append(well, sess)
		}
	}
	val := make([]byte, 128)
	for _, k := range safe {
		if err := well[0].Set(k, val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	if err := well[0].Set(doomKey, val, 0, 0); err != nil {
		b.Fatal(err)
	}
	if err := c.Shard(victim).Checkpoint(); err != nil {
		b.Fatal(err)
	}

	// measure runs the survivor 95/5 mix for d and returns its p99.
	measure := func(d time.Duration) time.Duration {
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		end := time.Now().Add(d)
		for wi, s := range well {
			wg.Add(1)
			go func(wi int, s *memcached.ClusterSession) {
				defer wg.Done()
				var local []time.Duration
				for i := 0; time.Now().Before(end); i++ {
					key := safe[(wi*67+i)%len(safe)]
					t0 := time.Now()
					var err error
					if i%20 == 0 {
						err = s.Set(key, val, 0, 0)
					} else {
						_, _, err = s.Get(key)
					}
					if err != nil {
						b.Errorf("survivor call failed: %v", err)
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(wi, s)
		}
		wg.Wait()
		if len(lats) == 0 {
			b.Fatal("no latencies recorded")
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*99/100]
	}

	base := measure(300 * time.Millisecond)

	poisonClusterShard(b, c, victim, doomKey)
	faultpoint.DisarmAll()
	rebuildStart := time.Now()
	c.StartSupervisor(2 * time.Millisecond)
	defer c.StopSupervisor()

	// The measurement window covers the poison → rebuild transition.
	during := measure(300 * time.Millisecond)

	deadline := time.Now().Add(10 * time.Second)
	for c.Metrics().Supervisor.Rebuilds < 1 {
		if time.Now().After(deadline) {
			b.Fatal("supervisor never rebuilt the victim during the benchmark window")
		}
		time.Sleep(time.Millisecond)
	}
	b.ReportMetric(float64(base.Nanoseconds())/1e3, "p99-base-us")
	b.ReportMetric(float64(during.Nanoseconds())/1e3, "p99-rebuild-us")
	b.ReportMetric(float64(time.Since(rebuildStart).Nanoseconds())/1e6, "rebuild-ms")

	limit := 2 * base
	if floor := 150 * time.Microsecond; limit < floor {
		limit = floor
	}
	if during > limit {
		b.Fatalf("survivor p99 during rebuild = %v, limit %v (base %v): the victim's rebuild leaked into survivor latency",
			during, limit, base)
	}
}
