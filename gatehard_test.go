package plibmc

// The gate-hardening attack suite (ISSUE 7): Garmr-style adversaries
// mounted against the protected-library gate, each of which must be
// *contained* — the store stays Healthy or repairs online, no cross-tenant
// access succeeds, and no attack leaves the library permanently Poisoned.
//
// The catalog (helpers in internal/gatehard):
//   - TestGateHardStrayWRPKRU: a forged protection register written from
//     application code, defeated by eviction-time fence retagging (lazy
//     re-sync) and by register sanitization at the next gate crossing.
//   - TestGateHardConfusedDeputy: library code, acting for tenant A, is
//     handed tenant B's buffer; the per-tenant protection domain makes the
//     access fault and the store repairs online.
//   - TestGateHardZombieReentry: a watchdog-reaped session re-enters the
//     gate and the core operation layer; both refuse (ErrSessionReaped at
//     the gate, a lock-fence panic in core).
//   - TestGateHardMidBatchAbort: a hostile over-budget batch is asked to
//     abort cooperatively; the dispatcher bails out between ops and the
//     suffix reports ErrCallAborted without any recovery cycle.
//   - TestGateHardPinExhaustion: a tenant pins every hardware protection
//     key; sibling calls see typed retryable backpressure, not faults.
//   - TestGateHardAdmissionControl: gate saturation and per-tenant quotas
//     reject with typed ErrOverloaded/ErrTenantQuota.
//   - TestGateHardLiveReapOnline: a live tenant spinning inside the gate is
//     reaped within its deadline and the store resumes online, with the
//     reap latency and time-to-resume logged (EXPERIMENTS.md).
//   - TestModelCheckNoisyTenant: the fairness scenario through the model
//     checker — survivor histories must linearize exactly across a hostile
//     tenant's reap-and-repair episode.
//   - BenchmarkNoisyTenant: p99 of well-behaved tenants with one noisy
//     tenant must stay within 2x of baseline (make bench-noisy).

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/internal/gatehard"
	"plibmc/internal/hodor"
	"plibmc/internal/linearcheck"
	"plibmc/internal/model"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/memcached"
)

// ghStore builds a store for the attack suite.
func ghStore(t testing.TB, cfg memcached.Config) *memcached.Bookkeeper {
	t.Helper()
	if cfg.HeapBytes == 0 {
		cfg.HeapBytes = 32 << 20
	}
	if cfg.HashPower == 0 {
		cfg.HashPower = 8
	}
	if cfg.NumItemLocks == 0 {
		cfg.NumItemLocks = 16
	}
	book, err := memcached.CreateStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { book.Shutdown() })
	return book
}

// ghSession creates one client process with one trampolined session.
func ghSession(t testing.TB, book *memcached.Bookkeeper, uid int) *memcached.Session {
	t.Helper()
	cp, err := book.NewClientProcess(uid)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// ghProbe makes one trivial trampolined call, returning the gate's verdict.
func ghProbe(s *memcached.Session) error {
	_, err := hodor.Call(s.Hodor(), func(*proc.Thread, struct{}) (struct{}, error) {
		return struct{}{}, nil
	}, struct{}{})
	return err
}

// arenaWrite writes data into the session's own arena from inside the gate
// (the legitimate use of a tenant domain: staging security-sensitive bytes
// under the tenant's own key).
func arenaWrite(s *memcached.Session, g *pku.Guard, data []byte) error {
	off, _ := s.TenantArena()
	_, err := hodor.Call(s.Hodor(), func(t *proc.Thread, _ struct{}) (struct{}, error) {
		return struct{}{}, g.WriteBytes(t.PKRU(), off, data)
	}, struct{}{})
	return err
}

// arenaRead reads n bytes back from the session's own arena.
func arenaRead(s *memcached.Session, g *pku.Guard, n uint64) ([]byte, error) {
	off, _ := s.TenantArena()
	return hodor.Call(s.Hodor(), func(t *proc.Thread, _ struct{}) ([]byte, error) {
		buf := make([]byte, n)
		err := g.ReadBytes(t.PKRU(), off, buf)
		return buf, err
	}, struct{}{})
}

// awaitInCall waits for the session's in-flight record to publish.
func awaitInCall(t *testing.T, hs *hodor.Session) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !hs.InCall() {
		if time.Now().After(deadline) {
			t.Fatal("hostile call never admitted")
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// TestGateHardStrayWRPKRU: Garmr's stray-wrpkru class. A register forged
// from application code is (a) scrubbed at the attacker's next gate
// crossing — forged rights never survive a trampoline — and (b) made
// worthless against an evicted tenant domain, whose pages the vtable
// re-tagged with the fence key.
func TestGateHardStrayWRPKRU(t *testing.T) {
	book := ghStore(t, memcached.Config{})
	lib := book.Library()
	vt := book.VTable()
	g := book.Domain().Guard()

	victim := ghSession(t, book, 1001)
	attacker := ghSession(t, book, 1002)
	at := attacker.Thread()

	if err := victim.Set([]byte("vk"), []byte("victim-data"), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Warm the attacker's generation cache so the scrub below is
	// attributable to sanitization, not an ordinary lazy sync.
	if _, _, err := attacker.Get([]byte("vk")); err != nil {
		t.Fatal(err)
	}

	// Attack (a): forge a grant of the library's own key and present it at
	// a crossing. The gate must scrub it and count the containment.
	forged := gatehard.ForgeRegister(at, book.Domain().Key)
	if forged == pku.AllRestricted() {
		t.Fatal("forge had no effect; the attack is vacuous")
	}
	m0 := lib.Metrics()
	if _, _, err := attacker.Get([]byte("vk")); err != nil {
		t.Fatal(err)
	}
	if got := at.PKRU(); got != pku.AllRestricted() {
		t.Fatalf("forged register survived the crossing: %v", got)
	}
	if m := lib.Metrics(); m.AttacksContained <= m0.AttacksContained {
		t.Fatal("forged-register scrub not counted as a contained attack")
	}

	// Attack (b): forge a grant of the hardware key currently backing the
	// victim's domain, then churn the vtable until that mapping is evicted.
	// Lazy re-sync's other half — fence retagging at eviction — must leave
	// the forged grant pointing at pages nobody can read.
	victimOff, _ := victim.TenantArena()
	vhw, ok := vt.Mapped(victim.TenantDomain().VKey)
	if !ok {
		t.Fatal("victim tenant domain not mapped")
	}
	gatehard.ForgeRegister(at, vhw)
	pinned, release := gatehard.PinAll(vt)
	release()
	if pinned == 0 {
		t.Fatal("churn bound no keys; eviction never exercised")
	}
	if _, still := vt.Mapped(victim.TenantDomain().VKey); still {
		t.Fatal("victim mapping survived full-table churn")
	}
	if k := book.Domain().PT.KeyAt(victimOff); k != vt.Fence() {
		t.Fatalf("evicted arena tagged %d, want fence %d", k, vt.Fence())
	}
	var buf [8]byte
	err := g.ReadBytes(at.PKRU(), victimOff, buf[:])
	var pf *pku.ProtFault
	if !errors.As(err, &pf) {
		t.Fatalf("stale forged register read the evicted arena: %v", err)
	}

	// The victim is unharmed: its next crossing remaps the domain and its
	// arena works; the attacker's next crossing leaves a clean register.
	if err := arenaWrite(victim, g, []byte("still-mine")); err != nil {
		t.Fatalf("victim arena unusable after attack: %v", err)
	}
	if _, _, err := attacker.Get([]byte("vk")); err != nil {
		t.Fatal(err)
	}
	if got := at.PKRU(); got != pku.AllRestricted() {
		t.Fatalf("attacker register dirty after crossing: %v", got)
	}
	if lib.Poisoned() {
		t.Fatal("stray-wrpkru attack poisoned the library")
	}
}

// TestGateHardConfusedDeputy: tenant A passes tenant B's buffer (arena
// offset) to code running inside A's amplified context. With per-tenant
// domains the amplified register grants the library's pages plus A's own —
// not B's — so both the read and the write probe fault, the store repairs
// online, and B's data is intact.
func TestGateHardConfusedDeputy(t *testing.T) {
	book := ghStore(t, memcached.Config{})
	lib := book.Library()
	g := book.Domain().Guard()

	tenantA := ghSession(t, book, 1001) // the deputy being confused
	tenantB := ghSession(t, book, 1002) // the victim
	secret := []byte("tenant-B-secret!")
	if err := arenaWrite(tenantB, g, secret); err != nil {
		t.Fatal(err)
	}
	bOff, _ := tenantB.TenantArena()

	assertContainedFault := func(err error, what string) {
		t.Helper()
		var ce *hodor.CrashError
		if !errors.As(err, &ce) {
			t.Fatalf("%s did not unwind the call: %v", what, err)
		}
		if _, ok := ce.Cause.(interface{ ContainedAttack() }); !ok {
			t.Fatalf("%s crash cause %v lacks the containment marker", what, ce.Cause)
		}
	}

	m0 := lib.Metrics()
	_, err := gatehard.CrossTenantRead(tenantA.Hodor(), g, bOff, uint64(len(secret)))
	assertContainedFault(err, "cross-tenant read")
	if _, err := gatehard.WaitHealthy(lib, m0.Recoveries+1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	err = gatehard.CrossTenantWrite(tenantA.Hodor(), g, bOff, []byte("overwritten!!!!!"))
	assertContainedFault(err, "cross-tenant write")
	if _, err := gatehard.WaitHealthy(lib, m0.Recoveries+2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if m := lib.Metrics(); m.AttacksContained < m0.AttacksContained+2 {
		t.Fatalf("attacks_contained rose by %d, want >= 2",
			m.AttacksContained-m0.AttacksContained)
	}

	// B's secret survived both probes; A can still use its *own* arena
	// (the fault was about whose pages, not about arena access per se).
	got, err := arenaRead(tenantB, g, uint64(len(secret)))
	if err != nil {
		t.Fatalf("victim cannot read its own arena after the attack: %v", err)
	}
	if string(got) != string(secret) {
		t.Fatalf("victim arena corrupted: %q, want %q", got, secret)
	}
	if err := arenaWrite(tenantA, g, []byte("a-own-buffer")); err != nil {
		t.Fatalf("deputy's own arena broken: %v", err)
	}
	if lib.Poisoned() {
		t.Fatal("confused-deputy probes poisoned the library")
	}
}

// TestGateHardZombieReentry: after the watchdog reaps a live session's
// call, the session is a zombie. Re-entry at every layer must be refused:
// the gate rejects with ErrSessionReaped, ExecBatch never dispatches, and
// a direct jump into the core operation layer dies on the lock fence. The
// zombie's protection domain and arena page are reclaimed by the recovery
// sweep.
func TestGateHardZombieReentry(t *testing.T) {
	budget := 200 * time.Millisecond
	book := ghStore(t, memcached.Config{LiveCallBudget: budget, CallTimeout: 5 * time.Second})
	lib := book.Library()

	zombie := ghSession(t, book, 666)
	sibling := ghSession(t, book, 1001)
	if err := sibling.Set([]byte("sk"), []byte("sibling"), 0, 0); err != nil {
		t.Fatal(err)
	}
	zOff, _ := zombie.TenantArena()

	spinErr := make(chan error, 1)
	go func() {
		spinErr <- gatehard.HostileSpin(zombie.Hodor(), gatehard.SpinOpts{MaxSpin: 10 * time.Second})
	}()
	awaitInCall(t, zombie.Hodor())
	// One sweep with a clock 2.5 budgets ahead: deterministic reap.
	lib.WatchdogSweep(time.Now().Add(budget * 5 / 2))
	err := <-spinErr
	var ce *hodor.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("reaped spin returned %v, want a crash error", err)
	}
	if _, ok := ce.Cause.(gatehard.ReapTermination); !ok {
		t.Fatalf("spin unwound with %v, want the reap termination", ce.Cause)
	}
	if !zombie.Hodor().Reaped() {
		t.Fatal("session not marked reaped")
	}
	if _, err := gatehard.WaitHealthy(lib, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	// Re-entry 1: the gate.
	m0 := lib.Metrics()
	if _, _, err := zombie.Get([]byte("sk")); !errors.Is(err, hodor.ErrSessionReaped) {
		t.Fatalf("zombie gate re-entry: %v, want ErrSessionReaped", err)
	}
	// Re-entry 2: a batch (one admission guards the whole batch).
	if _, err := zombie.ExecBatch([]memcached.BatchOp{
		{Code: memcached.BatchSet, Key: []byte("zz"), Value: []byte("x")},
	}); !errors.Is(err, hodor.ErrSessionReaped) {
		t.Fatalf("zombie batch re-entry: %v, want ErrSessionReaped", err)
	}
	if m := lib.Metrics(); m.AttacksContained < m0.AttacksContained+2 {
		t.Fatal("zombie re-entries not counted as contained attacks")
	}
	// Re-entry 3: jumping past the trampoline into the operation layer.
	// The lock fence fires on contended acquisitions (the dangerous race:
	// a zombie winning a lock the repair coordinator broke or a live
	// thread holds), so stage exactly that — the sibling parks inside a
	// locked store section while the zombie tries to take the same bucket
	// lock. The zombie's owner token is defunct; the spin's abort check
	// must kill it with the fence before any shared state moves.
	defer faultpoint.DisarmAll()
	lockHeld := make(chan struct{})
	releaseLock := make(chan struct{})
	if err := faultpoint.Arm("ops.store.locked", func() {
		close(lockHeld)
		<-releaseLock
	}); err != nil {
		t.Fatal(err)
	}
	sibSet := make(chan error, 1)
	go func() {
		sibSet <- sibling.Set([]byte("zz"), []byte("sib"), 0, 0)
	}()
	<-lockHeld
	pv := gatehard.Recovered(func() {
		zombie.Ctx().Set([]byte("zz"), []byte("x"), 0, 0) //nolint:errcheck
	})
	close(releaseLock)
	if err := <-sibSet; err != nil {
		t.Fatalf("sibling set during zombie probe: %v", err)
	}
	if pv == nil {
		t.Fatal("zombie core re-entry mutated the store without a fence panic")
	}
	if _, ok := pv.(interface{ ContainedAttack() }); !ok {
		t.Fatalf("zombie core re-entry died with %v, want a containment fence", pv)
	}
	if v, _, err := sibling.Get([]byte("zz")); err != nil || string(v) != "sib" {
		t.Fatalf("zombie probe disturbed the contended key: %q, %v", v, err)
	}

	// The recovery sweep reclaimed the zombie's domain: its arena is back
	// under the library's key, not leaked under a tenant key or the fence.
	if k := book.Domain().PT.KeyAt(zOff); k != book.Domain().Key {
		t.Fatalf("zombie arena tagged %d after sweep, want library key %d", k, book.Domain().Key)
	}
	// Siblings are untouched.
	if v, _, err := sibling.Get([]byte("sk")); err != nil || string(v) != "sibling" {
		t.Fatalf("sibling read after zombie episode: %q, %v", v, err)
	}
	if m := lib.Metrics(); m.TenantCallsReaped != 1 {
		t.Fatalf("tenant_calls_reaped = %d, want 1", m.TenantCallsReaped)
	}
	if lib.Poisoned() {
		t.Fatal("zombie episode poisoned the library")
	}
}

// TestGateHardMidBatchAbort: the cooperative rung of the escalation
// ladder. A batch stalls past 1.5x its budget; the watchdog requests an
// abort and the dispatcher honours it between operations — the committed
// prefix stands, the suffix reports ErrCallAborted, and no recovery cycle
// runs (cooperative abort is not a crash).
func TestGateHardMidBatchAbort(t *testing.T) {
	defer faultpoint.DisarmAll()
	budget := time.Second
	book := ghStore(t, memcached.Config{LiveCallBudget: budget, CallTimeout: 10 * time.Second})
	lib := book.Library()
	s := ghSession(t, book, 1001)

	inHandler := make(chan struct{})
	release := make(chan struct{})
	if err := faultpoint.Arm("ops.batch.mid_dispatch", func() {
		close(inHandler)
		<-release
	}); err != nil {
		t.Fatal(err)
	}

	const nOps = 8
	ops := make([]memcached.BatchOp, nOps)
	for i := range ops {
		ops[i] = memcached.BatchOp{
			Code: memcached.BatchSet, Key: []byte(fmt.Sprintf("ab%d", i)), Value: []byte("v"),
		}
	}
	type batchOut struct {
		res []memcached.BatchResult
		err error
	}
	done := make(chan batchOut, 1)
	go func() {
		res, err := s.ExecBatch(ops)
		done <- batchOut{res, err}
	}()
	<-inHandler // the batch is stalled between op 0 and op 1

	// Inject a sweep clock 1.75 budgets past the call start: inside the
	// abort window (1.5x..2x), deterministically — no real-time sleeps.
	lib.WatchdogSweep(time.Now().Add(budget + budget/2 + budget/4))
	if !s.Hodor().AbortRequested() {
		t.Fatal("watchdog did not request the abort")
	}
	close(release)
	out := <-done
	if out.err != nil {
		t.Fatalf("aborted batch failed as a crossing: %v", out.err)
	}
	if out.res[0].Err != nil {
		t.Fatalf("committed prefix poisoned: %v", out.res[0].Err)
	}
	for i := 1; i < nOps; i++ {
		if !errors.Is(out.res[i].Err, core.ErrCallAborted) {
			t.Fatalf("op %d: %v, want ErrCallAborted", i, out.res[i].Err)
		}
	}
	// Prefix committed, suffix never ran.
	if v, _, err := s.Get([]byte("ab0")); err != nil || string(v) != "v" {
		t.Fatalf("committed op lost: %q, %v", v, err)
	}
	if _, _, err := s.Get([]byte("ab5")); !errors.Is(err, memcached.ErrNotFound) {
		t.Fatalf("aborted op reached the store: %v", err)
	}
	m := lib.Metrics()
	if m.TenantAborts < 1 {
		t.Fatalf("tenant_aborts = %d, want >= 1", m.TenantAborts)
	}
	if m.Recoveries != 0 || m.TenantCallsReaped != 0 {
		t.Fatalf("cooperative abort triggered recovery (recoveries=%d reaps=%d)",
			m.Recoveries, m.TenantCallsReaped)
	}
	// The session is not a zombie: the next admission resets escalation.
	if err := s.Set([]byte("after"), []byte("ok"), 0, 0); err != nil {
		t.Fatalf("session unusable after cooperative abort: %v", err)
	}
}

// TestGateHardPinExhaustion: a tenant hoards every hardware protection key
// pin. Sibling calls must see typed, retryable backpressure (ErrOverloaded
// wrapping pku.ErrAllKeysPinned) — never a fault or a poisoned store — and
// must proceed as soon as pins release.
func TestGateHardPinExhaustion(t *testing.T) {
	book := ghStore(t, memcached.Config{})
	lib := book.Library()
	vt := book.VTable()
	s := ghSession(t, book, 1001)
	if err := s.Set([]byte("pk"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}

	pinned, release := gatehard.PinAll(vt)
	// 16 hardware keys minus default, the library's fixed key, and the
	// vtable fence leaves 13 bindable keys.
	if pinned != 13 {
		release()
		t.Fatalf("pinned %d hardware keys, want 13", pinned)
	}

	// Raw gate verdict, bypassing the session layer's retry: typed
	// backpressure carrying both the class and the cause.
	m0 := lib.Metrics()
	err := ghProbe(s)
	if !errors.Is(err, hodor.ErrOverloaded) || !errors.Is(err, pku.ErrAllKeysPinned) {
		release()
		t.Fatalf("pin-exhausted call: %v, want ErrOverloaded wrapping ErrAllKeysPinned", err)
	}
	if m := lib.Metrics(); m.GateRejections <= m0.GateRejections {
		release()
		t.Fatal("pin-exhaustion rejection not counted")
	}

	// The session layer turns the same condition into a bounded wait: a
	// Get issued now parks in backoff and completes once the hoard drops.
	got := make(chan error, 1)
	go func() {
		_, _, gErr := s.Get([]byte("pk"))
		got <- gErr
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case gErr := <-got:
		release()
		t.Fatalf("backpressured Get returned early: %v", gErr)
	default:
	}
	release()
	select {
	case gErr := <-got:
		if gErr != nil {
			t.Fatalf("Get after release: %v", gErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("backpressured Get never completed after pins released")
	}
	if lib.Poisoned() || lib.Recovering() {
		t.Fatal("pin exhaustion disturbed library health")
	}
}

// TestGateHardAdmissionControl: the gate's load-shedding line. With the
// gate saturated, further admissions fail fast with ErrOverloaded; a
// tenant over its own quota gets the per-tenant flavour, and a tenant
// under quota still gets in — one noisy tenant cannot take every slot.
func TestGateHardAdmissionControl(t *testing.T) {
	book := ghStore(t, memcached.Config{MaxInFlight: 2, TenantQuota: 1})
	lib := book.Library()

	cp1, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := cp1.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := cp1.NewSession() // same tenant as sa
	if err != nil {
		t.Fatal(err)
	}
	sc := ghSession(t, book, 1002)
	sd := ghSession(t, book, 1003)

	var stop atomic.Bool
	hold := func(s *memcached.Session) chan error {
		ch := make(chan error, 1)
		go func() {
			ch <- gatehard.HostileSpin(s.Hodor(), gatehard.SpinOpts{Stop: stop.Load})
		}()
		awaitInCall(t, s.Hodor())
		return ch
	}
	aCh := hold(sa) // tenant 1001 at quota, 1/2 gate slots held

	m0 := lib.Metrics()
	if err := ghProbe(sb); !errors.Is(err, hodor.ErrTenantQuota) {
		t.Fatalf("over-quota tenant call: %v, want ErrTenantQuota", err)
	}
	if err := ghProbe(sb); !errors.Is(err, hodor.ErrOverloaded) {
		t.Fatal("ErrTenantQuota must match the ErrOverloaded class")
	}
	// A different tenant still fits (2nd gate slot).
	if err := ghProbe(sc); err != nil {
		t.Fatalf("under-quota tenant rejected: %v", err)
	}

	cCh := hold(sc) // gate now saturated: 2/2 slots
	if err := ghProbe(sd); !errors.Is(err, hodor.ErrOverloaded) || errors.Is(err, hodor.ErrTenantQuota) {
		t.Fatalf("saturated-gate call: %v, want plain ErrOverloaded", err)
	}
	if m := lib.Metrics(); m.GateRejections < m0.GateRejections+3 {
		t.Fatalf("gate_rejections rose by %d, want >= 3", m.GateRejections-m0.GateRejections)
	}

	stop.Store(true)
	if err := <-aCh; err != nil {
		t.Fatalf("held call a: %v", err)
	}
	if err := <-cCh; err != nil {
		t.Fatalf("held call c: %v", err)
	}
	// Slots released: everyone proceeds.
	for i, s := range []*memcached.Session{sa, sb, sc, sd} {
		if err := s.Set([]byte(fmt.Sprintf("q%d", i)), []byte("v"), 0, 0); err != nil {
			t.Fatalf("session %d after release: %v", i, err)
		}
	}
}

// TestGateHardLiveReapOnline: live-deadline enforcement end to end, in
// real time. A hostile tenant ignores the abort request and is reaped by
// the watchdog within its deadline; the store repairs online while a
// survivor keeps serving without a single failed call. The measured reap
// latency and time-to-resume are the numbers EXPERIMENTS.md records.
func TestGateHardLiveReapOnline(t *testing.T) {
	budget := 5 * time.Millisecond
	book := ghStore(t, memcached.Config{LiveCallBudget: budget, CallTimeout: 5 * time.Second})
	lib := book.Library()

	hostile := ghSession(t, book, 666)
	survivor := ghSession(t, book, 1001)
	if err := survivor.Set([]byte("s0"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}

	// Survivor workload: continuous gets and sets for the whole episode.
	survStop := make(chan struct{})
	var survOps atomic.Int64
	var survErr atomic.Value
	var survWG sync.WaitGroup
	survWG.Add(1)
	go func() {
		defer survWG.Done()
		for i := 0; ; i++ {
			select {
			case <-survStop:
				return
			default:
			}
			var err error
			if i%10 == 0 {
				err = survivor.Set([]byte("s0"), []byte("v"), 0, 0)
			} else {
				_, _, err = survivor.Get([]byte("s0"))
			}
			if err != nil {
				survErr.Store(err)
				return
			}
			survOps.Add(1)
		}
	}()

	wdStop := make(chan struct{})
	wdDone := gatehard.DriveWatchdog(lib, 500*time.Microsecond, wdStop)

	t0 := time.Now()
	spinErr := make(chan error, 1)
	go func() {
		spinErr <- gatehard.HostileSpin(hostile.Hodor(), gatehard.SpinOpts{MaxSpin: 10 * time.Second})
	}()
	err := <-spinErr
	reapAt := time.Since(t0)
	var ce *hodor.CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("hostile spin ended with %v, want the reap", err)
	}
	resume, err := gatehard.WaitHealthy(lib, 1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	totalOutage := time.Since(t0)
	close(wdStop)
	<-wdDone
	close(survStop)
	survWG.Wait()

	if reapAt > time.Second {
		t.Fatalf("reap took %v with a %v budget", reapAt, budget)
	}
	if e := survErr.Load(); e != nil {
		t.Fatalf("survivor call failed during the episode: %v", e)
	}
	if survOps.Load() == 0 {
		t.Fatal("survivor made no progress")
	}
	m := lib.Metrics()
	if m.TenantCallsReaped < 1 || m.Recoveries < 1 {
		t.Fatalf("reaps=%d recoveries=%d, want >= 1 each", m.TenantCallsReaped, m.Recoveries)
	}
	if lib.Poisoned() {
		t.Fatal("live reap poisoned the library")
	}
	t.Logf("budget %v: reaped after %v (deadline 2x = %v), healthy again %v after the reap; "+
		"store-available-again %v after the spin began; survivor completed %d calls with 0 errors",
		budget, reapAt, 2*budget, resume, totalOutage, survOps.Load())
}

// TestModelCheckNoisyTenant: the fairness scenario through the model
// checker. Six well-behaved workers run the full mixed workload while a
// hostile tenant camps inside the gate until the watchdog reaps it and the
// store repairs online. The survivors' merged history must linearize
// *exactly* (no crash-drop allowance): reaping a spinning tenant may not
// disturb one committed operation.
func TestModelCheckNoisyTenant(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 64 << 20, HashPower: 8, NumItemLocks: 16,
		// The live budget must separate the hostile camper (spins for
		// seconds) from well-behaved single-op calls (microseconds, but
		// with -race scheduler noise in the tens of milliseconds): 250ms
		// reaps the camper at ~500ms while no honest call gets close.
		CallTimeout: 5 * time.Second, LiveCallBudget: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	book.Store().SetClock(func() int64 { return mcFrozenNow })
	lib := book.Library()

	const nSurv = 6
	rec := linearcheck.NewRecorder(nSurv)
	var survivors []*mcWorker
	for p := 0; p < 2; p++ {
		cp, err := book.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < nSurv/2; s++ {
			sess, err := cp.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			survivors = append(survivors, newMCWorker(t, sess, rec, len(survivors), *modelcheckSeed, false))
		}
	}
	keys := mcGeneralKeys()
	mixPhase := func(steps int) {
		var wg sync.WaitGroup
		for _, w := range survivors {
			wg.Add(1)
			go func(w *mcWorker) {
				defer wg.Done()
				for i := 0; i < steps; i++ {
					if !w.step(keys, false) {
						w.t.Errorf("well-behaved worker %d died", w.id)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	mixPhase(150) // populate

	// The noisy episode: survivors keep the mixed workload running while
	// the hostile tenant camps in the gate and is reaped.
	hostile := ghSession(t, book, 666)
	wdStop := make(chan struct{})
	wdDone := gatehard.DriveWatchdog(lib, time.Millisecond, wdStop)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, w := range survivors {
		wg.Add(1)
		go func(w *mcWorker) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if !w.step(keys, false) {
					w.t.Errorf("well-behaved worker %d died during the episode", w.id)
					return
				}
			}
		}(w)
	}
	spinErr := make(chan error, 1)
	go func() {
		spinErr <- gatehard.HostileSpin(hostile.Hodor(), gatehard.SpinOpts{MaxSpin: 10 * time.Second})
	}()
	if err := <-spinErr; err == nil || errors.Is(err, gatehard.ErrSpinOutlived) {
		t.Fatalf("hostile tenant not reaped: %v", err)
	}
	if _, err := gatehard.WaitHealthy(lib, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	close(wdStop)
	<-wdDone

	mixPhase(150) // full mix against the repaired store

	if !hostile.Hodor().Reaped() {
		t.Fatal("hostile session not fenced")
	}
	if m := lib.Metrics(); m.TenantCallsReaped < 1 {
		t.Fatal("no tenant call reaped")
	}
	if lib.Poisoned() {
		t.Fatal("noisy-tenant episode poisoned the library")
	}
	if _, err := book.Allocator().Check(); err != nil {
		t.Fatalf("heap fsck after the episode: %v", err)
	}
	hist := rec.History()
	for i := range hist {
		if hist[i].Pending {
			t.Fatalf("well-behaved history has a pending op: %+v", hist[i])
		}
	}
	t.Logf("noisy-tenant history: %d ops, all completed", len(hist))
	// Exact linearizability — CrashMayDrop deliberately off.
	mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen})
}

// BenchmarkNoisyTenant (make bench-noisy): p99 latency of well-behaved
// tenants with one noisy tenant pumping batched writes through its quota,
// gated at 2x the baseline p99 (with a floor for scheduler noise).
func BenchmarkNoisyTenant(b *testing.B) {
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 64 << 20, HashPower: 8, NumItemLocks: 16,
		LiveCallBudget: 20 * time.Millisecond, MaxInFlight: 64, TenantQuota: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer book.Shutdown()

	const nWell = 4
	var well []*memcached.Session
	for p := 0; p < 2; p++ {
		cp, err := book.NewClientProcess(1000 + p)
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < nWell/2; s++ {
			sess, err := cp.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			well = append(well, sess)
		}
	}
	val := make([]byte, 128)
	for i := 0; i < 256; i++ {
		if err := well[0].Set([]byte(fmt.Sprintf("wk%03d", i)), val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}

	// measure runs the well-behaved 95/5 mix for d and returns its p99.
	measure := func(d time.Duration) time.Duration {
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		end := time.Now().Add(d)
		for wi, s := range well {
			wg.Add(1)
			go func(wi int, s *memcached.Session) {
				defer wg.Done()
				var local []time.Duration
				for i := 0; time.Now().Before(end); i++ {
					key := []byte(fmt.Sprintf("wk%03d", (wi*67+i)%256))
					t0 := time.Now()
					var err error
					if i%20 == 0 {
						err = s.Set(key, val, 0, 0)
					} else {
						_, _, err = s.Get(key)
					}
					if err != nil {
						b.Errorf("well-behaved call failed: %v", err)
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(wi, s)
		}
		wg.Wait()
		if len(lats) == 0 {
			b.Fatal("no latencies recorded")
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)*99/100]
	}

	base := measure(300 * time.Millisecond)

	// The noisy tenant: one process, four sessions, each pumping 256-op
	// batched writes as fast as admission control lets it.
	noisyProc, err := book.NewClientProcess(666)
	if err != nil {
		b.Fatal(err)
	}
	noisyStop := make(chan struct{})
	var noisyWG sync.WaitGroup
	noisyVal := make([]byte, 512)
	for n := 0; n < 4; n++ {
		ns, err := noisyProc.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		noisyWG.Add(1)
		go func(n int, ns *memcached.Session) {
			defer noisyWG.Done()
			ops := make([]memcached.BatchOp, 256)
			for i := range ops {
				ops[i] = memcached.BatchOp{
					Code: memcached.BatchSet,
					Key:  []byte(fmt.Sprintf("noise%d-%03d", n, i)),
				}
			}
			for j := 0; ; j++ {
				select {
				case <-noisyStop:
					return
				default:
				}
				for i := range ops {
					ops[i].Value = noisyVal
				}
				ns.ExecBatch(ops) //nolint:errcheck
			}
		}(n, ns)
	}
	noisy := measure(300 * time.Millisecond)
	close(noisyStop)
	noisyWG.Wait()

	b.ReportMetric(float64(base.Nanoseconds())/1e3, "p99-base-us")
	b.ReportMetric(float64(noisy.Nanoseconds())/1e3, "p99-noisy-us")
	limit := 2 * base
	if floor := 100 * time.Microsecond; limit < floor {
		limit = floor
	}
	if noisy > limit {
		b.Fatalf("noisy-tenant p99 %v exceeds 2x baseline %v (limit %v)", noisy, base, limit)
	}
	for i := 0; i < b.N; i++ {
		// The phases above are fixed-duration; nothing scales with b.N.
	}
}
