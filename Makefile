# Developer entry points. The repo needs only the Go toolchain.

GO ?= go

.PHONY: build test check faultmatrix corruptmatrix modelcheck modelcheck-long gatehard shardcheck reshardcheck survivecheck diskfault bench-noisy bench-seqlock bench-recovery bench-checksum bench-batch

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the gate for concurrency-sensitive changes: vet everything, then
# run the packages that carry the seqlock/grave protocol under the race
# detector (which exercises the sync/atomic build of the relaxed accessors),
# a short chaos soak, and the crash-at-every-point fault matrix.
check: build faultmatrix corruptmatrix modelcheck gatehard shardcheck reshardcheck survivecheck diskfault bench-noisy
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/core ./internal/shm
	$(GO) test -race -count=1 -short -run TestChaosKillsNeverCorrupt .
	$(GO) test -race -count=1 -run 'TestMetrics|TestWrite|TestStatsLatency' ./memcached ./internal/metrics ./internal/server
	$(GO) test -race -count=1 -run 'TestExecBatch|TestMGet|TestAsyncCallbackBatched|TestHybridPipelineBatches|TestSessionMGet|TestVirtualDomains|TestCrossingAccounting' ./internal/core ./internal/hodor ./memcached

# The linearizability gate (DESIGN.md "Model-based history checking"):
# record mixed workloads through the real session paths — seqlock fast
# path on, fault points armed in the crash rounds — and verify every
# history against the sequential reference model, plus the seeded-bug
# self-tests that prove the checker can actually catch and shrink a
# violation. -short trims the op budgets; modelcheck-long runs the full
# sizes and accepts -modelcheck.ops / -modelcheck.seed overrides.
modelcheck:
	$(GO) test -race -count=1 -short -run 'TestModelCheck' .
	$(GO) test -race -count=1 ./internal/model ./internal/linearcheck

modelcheck-long:
	$(GO) test -race -count=1 -run 'TestModelCheck' -timeout 30m .

# The gate-hardening gate (DESIGN.md §13): the Garmr-style attack suite —
# stray wrpkru, confused deputy, zombie re-entry, hostile mid-batch abort,
# pin exhaustion, admission control, live reap-and-repair — plus the
# vtable/trampoline concurrency and rollover tests, all under the race
# detector. Every attack must be contained (no cross-tenant read, no
# permanent poison, online recovery).
gatehard:
	$(GO) test -race -count=1 -run 'TestGateHard' .
	$(GO) test -race -count=1 ./internal/pku ./internal/gatehard ./internal/hodor ./internal/client ./internal/server

# The shard-isolation gate (DESIGN.md §14): the placement ring's
# determinism/balance/minimal-movement properties, the cluster routing and
# proxy tier, a fault-injected crash + online repair on one shard of a
# 4-shard cluster with zero survivor errors, and the sharded
# model-checker round — all under the race detector.
shardcheck:
	$(GO) test -race -count=1 -run 'TestShardCrashIsolation' .
	$(GO) test -race -count=1 -short -run 'TestModelCheckSharded' .
	$(GO) test -race -count=1 ./internal/ring
	$(GO) test -race -count=1 -run 'TestCluster' ./memcached

# The live-resharding gate (DESIGN.md §15): a mixed workload linearizes
# exactly across a live 4→6 resize with zero client errors, the migrator
# survives being killed mid-segment and crashing inside its own gate
# crossing (both shards repair online and the migration resumes), the
# batch plane keeps positional alignment when one shard's crossing fails,
# the resized manifest wins over a stale config on reopen, and the
# hot-key tracker's decay/floor/demotion fixes hold — all under the race
# detector.
reshardcheck:
	$(GO) test -race -count=1 -short -run 'TestModelCheckResize|TestResizeCrashIsolation|TestClusterReopenAfterResize' .
	$(GO) test -race -count=1 -run 'TestHotTracker|TestClusterHotKey|TestClusterExecBatchShardFailure' ./memcached
	$(GO) test -race -count=1 ./internal/ring

# The shard-lifecycle gate (DESIGN.md §16): an unrepairable crash poisons
# one shard of a 4-shard cluster and the supervisor must rebuild it with
# no operator action — survivors serve a full mixed workload with zero
# errors and their merged history linearizes exactly, the rebuilt shard
# reopens from its checkpoint and serves fresh writes past the dead
# heap's CAS mark — plus the breaker state machine, the degraded open,
# the fail-fast frames on the proxy wire, and the session-pool recovery
# classification, all under the race detector. The survivor-latency half
# of the claim is a self-gated benchmark (2x the quiet-baseline p99).
survivecheck:
	$(GO) test -race -count=1 -run 'TestSurviveCheck' .
	$(GO) test -race -count=1 -run 'TestSupervisor|TestBreaker|TestUnsupervisedBreakerRecovers|TestShardAllowFastFailsWhileRebuilding|TestOpenClusterDegraded|TestProxyReportsShardDownFrames|TestProxyAllowDoesNotConsumeProbe|TestRebuildShard|TestSessionFatalClassifiesRecoveryErrors|TestSessionPoolKeepsSessionOnShardDown' ./memcached
	$(GO) test -run xxx -bench BenchmarkRebuildSurvivor -benchtime 1x .

# The disk-fault gate (DESIGN.md §16): inject EIO/ENOSPC/torn-rename at
# every step of the image-write path (create, write, sync, close, rename)
# and require containment — the prior checkpoint generation stays the
# loadable state, no half-built temp survives, the failure is counted and
# exported, and the store itself stays healthy and keeps serving.
diskfault:
	$(GO) test -race -count=1 -run 'TestWriteImageFault|TestWriteImageTornRename|TestCheckpointSlotsSurviveFaults' ./internal/shm
	$(GO) test -race -count=1 -run 'TestDiskFaultCheckpointDegrades' ./memcached

# The noisy-tenant fairness sweep: p99 latency of well-behaved tenants with
# one hostile tenant pumping batched writes through its admission quota.
# The benchmark gates itself at 2x the quiet baseline.
bench-noisy:
	$(GO) test -run xxx -bench BenchmarkNoisyTenant -benchtime 1x .

# The crash-recovery gate: kill a client at every registered crash point
# and require quarantine -> repair -> resume, with the recovery machinery
# itself (hodor state machine, repair passes) under the race detector.
faultmatrix:
	$(GO) test -race -count=1 -run TestFaultMatrix .
	$(GO) test -race -count=1 ./internal/faultpoint ./internal/hodor

# The corruption gate: flip bits in every class of live and on-disk state
# (item headers, values, chain and LRU links, stats slots, persistent
# roots, image headers) and require salvage-or-degrade — never a wrong
# value, never an unrecovered panic. -short trims the recovery-cycle
# classes; corruptmatrix-long runs all seven plus the kill-during-
# checkpoint chaos round.
corruptmatrix:
	$(GO) test -race -count=1 -short -run 'TestCorruptionMatrix' .
	$(GO) test -race -count=1 ./internal/corrupt

corruptmatrix-long:
	$(GO) test -race -count=1 -run 'TestCorruptionMatrix|TestChaosKillDuringCheckpoint' .
	$(GO) test -race -count=1 ./internal/corrupt

# The locked-vs-optimistic read path ablation (DESIGN.md §6).
bench-seqlock:
	$(GO) test -run xxx -bench BenchmarkAblationSeqlockRead -benchtime 2s .

# Time-to-resume after an injected crash (DESIGN.md "Failure model").
bench-recovery:
	$(GO) test -run xxx -bench BenchmarkRecovery -benchtime 20x .

# Latency-recording cost: the 95/5 mix with histograms on vs off
# (DESIGN.md §9; the budget is <=5% throughput).
bench-metrics:
	$(GO) test -run xxx -bench BenchmarkAblationMetrics -benchtime 2s .

# Read-path corruption-detection cost: the 95/5 mix with per-item header
# checksum verification on vs off (DESIGN.md §11; the budget is <=5%).
bench-checksum:
	$(GO) test -run xxx -bench BenchmarkAblationChecksum -benchtime 2s .

# Batched-crossing ablation (DESIGN.md §12): crossings-per-op vs batch size
# on the 95/5 mix, plus the MGet amortization pair. These benchmarks gate
# themselves — BenchmarkAblationBatch fails above 0.1 crossings/op at batch
# sizes >= 16, BenchmarkMGetAmortization fails below a 2x per-key speedup
# for the 64-key batched path.
bench-batch:
	$(GO) test -run xxx -bench 'BenchmarkAblationBatch|BenchmarkMGetAmortization' -benchtime 2s .
