# Developer entry points. The repo needs only the Go toolchain.

GO ?= go

.PHONY: build test check bench-seqlock

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the gate for concurrency-sensitive changes: vet everything, then
# run the packages that carry the seqlock/grave protocol under the race
# detector (which exercises the sync/atomic build of the relaxed accessors).
check: build
	$(GO) vet ./...
	$(GO) test -race -count=1 ./internal/core ./internal/shm

# The locked-vs-optimistic read path ablation (DESIGN.md §6).
bench-seqlock:
	$(GO) test -run xxx -bench BenchmarkAblationSeqlockRead -benchtime 2s .
