package plibmc

// Shard fault isolation: each shard of a cluster is its own protection
// domain — one backing file, one hodor gate, one repair coordinator. A
// client crash inside one shard's store quarantines and repairs THAT
// shard online; the other shards' fast lanes never notice. This test
// pins the blast radius: a fault-injected kill mid-mutation on a 4-shard
// cluster's victim shard must leave the survivor shards serving reads
// with zero errors and zero repairs, and the victim must come back and
// serve again.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/memcached"
)

func TestShardCrashIsolation(t *testing.T) {
	defer faultpoint.DisarmAll()
	const nShards = 4
	c, err := memcached.CreateCluster(memcached.ClusterConfig{
		Shards: nShards,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
			CallTimeout: 50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	scc, err := c.NewClientProcess(1000)
	if err != nil {
		t.Fatal(err)
	}
	const nSurv = 4
	var survivors []*memcached.ClusterSession
	for i := 0; i < nSurv; i++ {
		s, err := scc.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		survivors = append(survivors, s)
	}

	// Populate across all shards and learn the key→shard layout.
	perShard := make([][]string, nShards)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("iso%03d", i)
		if err := survivors[0].Set([]byte(key), []byte("v0"), 7, 0); err != nil {
			t.Fatalf("populate %s: %v", key, err)
		}
		sh := c.ShardFor([]byte(key))
		perShard[sh] = append(perShard[sh], key)
	}
	for sh, keys := range perShard {
		if len(keys) == 0 {
			t.Fatalf("shard %d owns no keys; ring routing is degenerate", sh)
		}
	}
	const victim = 0
	var safeKeys []string // keys the survivors may touch while the mine is armed
	for sh, keys := range perShard {
		if sh != victim {
			safeKeys = append(safeKeys, keys...)
		}
	}

	// The doomed client mutates only victim-owned keys, so the armed
	// fault point (the registry is process-global) can only fire inside
	// the victim shard's store. Only the victim-shard client process is
	// killed — the doomed client's sessions on healthy shards stay idle.
	dcc, err := c.NewClientProcess(3000)
	if err != nil {
		t.Fatal(err)
	}
	dsess, err := dcc.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	// Survivors hammer reads on the healthy shards throughout the crash
	// and the online repair; every single read must succeed. Reads only:
	// a survivor mutation would consume the one-shot fault handler meant
	// for the doomed client.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var survOps, survErrs atomic.Uint64
	for i, s := range survivors {
		wg.Add(1)
		go func(i int, s *memcached.ClusterSession) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				key := safeKeys[(n*7+i*13)%len(safeKeys)]
				v, _, err := s.Get([]byte(key))
				survOps.Add(1)
				if err != nil {
					survErrs.Add(1)
					t.Errorf("survivor %d: Get(%s) during victim repair: %v", i, key, err)
					return
				}
				if string(v) != "v0" {
					survErrs.Add(1)
					t.Errorf("survivor %d: Get(%s) = %q, want v0", i, key, v)
					return
				}
			}
		}(i, s)
	}
	// Don't arm until the survivor readers are demonstrably running, so
	// the crash-and-repair window genuinely overlaps their traffic.
	deadline := time.Now().Add(10 * time.Second)
	for survOps.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatal("survivor readers never started")
		}
		time.Sleep(time.Millisecond)
	}
	var fired atomic.Bool
	if err := faultpoint.Arm("ops.store.mid_swap", func() {
		fired.Store(true)
		dcc.Proc(victim).Kill()
		panic("shardcrash: injected crash at ops.store.mid_swap")
	}); err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			key := perShard[victim][n%len(perShard[victim])]
			if err := dsess.Set([]byte(key), []byte("doomed"), 7, 0); err != nil {
				return // the injected kill surfaced; the client is dead
			}
		}
	}()
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("doomed mutations never reached ops.store.mid_swap")
		}
		time.Sleep(time.Millisecond)
	}
	repairStart := time.Now()
	vlib := c.Shard(victim).Library()
	for {
		if vlib.Poisoned() {
			t.Fatal("victim shard poisoned after injected crash")
		}
		if m := vlib.Metrics(); m.Recoveries >= 1 && !vlib.Recovering() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim shard never finished online repair")
		}
		time.Sleep(time.Millisecond)
	}
	repairWall := time.Since(repairStart)
	close(stop)
	wg.Wait()
	faultpoint.Disarm("ops.store.mid_swap")

	// The isolation claims.
	if e := survErrs.Load(); e != 0 {
		t.Fatalf("survivor shards returned %d errors during the victim's repair", e)
	}
	if ops := survOps.Load(); ops == 0 {
		t.Fatal("survivors recorded no reads during the repair window")
	}
	for sh := 0; sh < nShards; sh++ {
		if sh == victim {
			continue
		}
		if m := c.Shard(sh).Library().Metrics(); m.Recoveries != 0 {
			t.Fatalf("shard %d repaired %d times; the crash should be contained to shard %d",
				sh, m.Recoveries, victim)
		}
		if c.State(sh) != memcached.ShardHealthy {
			t.Fatalf("shard %d state = %d, want healthy", sh, c.State(sh))
		}
	}

	// The victim resumes. Repair may drop the one in-flight item; every
	// other victim-owned key must still be present.
	missing := 0
	for _, key := range perShard[victim] {
		_, _, err := survivors[0].Get([]byte(key))
		if err == memcached.ErrNotFound {
			missing++
			continue
		}
		if err != nil {
			t.Fatalf("victim shard Get(%s) after repair: %v", key, err)
		}
	}
	if missing > 1 {
		t.Fatalf("victim shard dropped %d keys; repair may drop at most the in-flight item", missing)
	}

	// Full mixed load across all shards against the repaired cluster.
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("post%03d", i)
		if err := survivors[0].Set([]byte(key), []byte("v1"), 7, 0); err != nil {
			t.Fatalf("post-repair Set(%s): %v", key, err)
		}
		v, _, err := survivors[0].Get([]byte(key))
		if err != nil || string(v) != "v1" {
			t.Fatalf("post-repair Get(%s) = %q, %v", key, v, err)
		}
	}
	if err := survivors[0].Delete([]byte(perShard[victim][0])); err != nil &&
		err != memcached.ErrNotFound {
		t.Fatalf("post-repair Delete on victim shard: %v", err)
	}
	if _, err := c.Shard(victim).Allocator().Check(); err != nil {
		t.Fatalf("victim heap fsck after repair: %v", err)
	}
	t.Logf("victim shard repaired online in %v (%d survivor reads, 0 errors, %d/%d victim keys intact)",
		repairWall, survOps.Load(), len(perShard[victim])-missing, len(perShard[victim]))
}
