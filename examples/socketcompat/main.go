// Socketcompat: the same application code — written against the classic
// libmemcached-style API with a memcached_st handle — runs unchanged
// against the original socket server and against the protected library
// (the drop-in replacement of §3.1), and the example times both.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"plibmc/internal/client"
	"plibmc/internal/server"
	"plibmc/memcached"
	"plibmc/memcached/compat"
)

// legacyApplication is code written years ago against the classic API.
// It neither knows nor cares what is behind the handle.
func legacyApplication(m *compat.St, ops int) (hits int) {
	// Configuration calls from the socket era: accepted, meaningless for
	// direct calls.
	m.AddServer("localhost", 11211)
	m.SetBehavior(compat.BehaviorBinaryProtocol, 1)

	for i := 0; i < ops; i++ {
		key := []byte(fmt.Sprintf("user:%d", i%100))
		if rc := m.Set(key, []byte("profile-data"), 0, 0); rc != compat.Success {
			log.Fatalf("set: %v", rc)
		}
		if _, _, rc := m.Get(key); rc == compat.Success {
			hits++
		}
	}
	return hits
}

func main() {
	const ops = 2000

	// Backend 1: the original socket memcached over a Unix-domain socket.
	dir, err := os.MkdirTemp("", "socketcompat")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "mc.sock")
	srv, err := server.New(server.Config{Network: "unix", Addr: sock, Threads: 4})
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	conn, err := client.Dial("unix", sock, client.Binary)
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	mSock := compat.Create()
	mSock.UseSocket(conn)
	t0 := time.Now()
	hits := legacyApplication(mSock, ops)
	socketTime := time.Since(t0)
	fmt.Printf("socket backend:  %5d ops, %d hits, %8v  (%.2f µs/op)\n",
		2*ops, hits, socketTime.Round(time.Millisecond),
		float64(socketTime.Microseconds())/float64(2*ops))

	// Backend 2: the protected library — same application, zero changes.
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 32 << 20, HashPower: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()
	cp, err := book.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := cp.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	mPlib := compat.Create()
	mPlib.UsePlib(sess)
	t0 = time.Now()
	hits = legacyApplication(mPlib, ops)
	plibTime := time.Since(t0)
	fmt.Printf("plib backend:    %5d ops, %d hits, %8v  (%.2f µs/op)\n",
		2*ops, hits, plibTime.Round(time.Millisecond),
		float64(plibTime.Microseconds())/float64(2*ops))

	fmt.Printf("speedup: %.1fx with zero application changes\n",
		float64(socketTime)/float64(plibTime))

	// Strict mode surfaces the dead configuration for migration.
	mPlib.SetStrict(true)
	if rc := mPlib.AddServer("localhost", 11211); rc == compat.NotSupported {
		fmt.Println("strict mode flags AddServer as NOT_SUPPORTED — time to migrate to the new API")
	}
}
