// Multiprocess: several client processes — each mapping the shared heap at
// a different virtual address — operate on one store concurrently. The
// example demonstrates what makes that possible: every pointer in the heap
// is a position-independent pptr, and what makes it safe: threads outside
// a library call cannot touch the heap at all.
package main

import (
	"fmt"
	"log"
	"sync"

	"plibmc/memcached"
)

func main() {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 64 << 20, HashPower: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()

	const numProcs = 4
	const opsPerProc = 5000

	procs := make([]*memcached.ClientProcess, numProcs)
	for i := range procs {
		procs[i], err = book.NewClientProcess(1000 + i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("process %d maps the heap at %#x\n",
			procs[i].Process().ID, procs[i].Process().View().Base())
	}

	// Concurrent writers from every process, overlapping key ranges.
	var wg sync.WaitGroup
	for i, cp := range procs {
		wg.Add(1)
		go func(id int, cp *memcached.ClientProcess) {
			defer wg.Done()
			s, err := cp.NewSession()
			if err != nil {
				log.Fatal(err)
			}
			defer s.Close()
			for op := 0; op < opsPerProc; op++ {
				key := fmt.Sprintf("key-%04d", op%1000)
				val := fmt.Sprintf("written-by-process-%d", id)
				if err := s.Set([]byte(key), []byte(val), uint32(id), 0); err != nil {
					log.Fatal(err)
				}
			}
		}(i, cp)
	}
	wg.Wait()

	// Every process reads the same (position-independent) data.
	for i, cp := range procs {
		s, err := cp.NewSession()
		if err != nil {
			log.Fatal(err)
		}
		v, flags, err := s.Get([]byte("key-0000"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("process %d reads key-0000 = %q (writer %d)\n", i, v, flags)
		s.Close()
	}

	// Protection: outside a library call, the heap is unreadable.
	guard := book.Library().Domain.Guard()
	th := procs[0].Process().NewThread()
	if _, err := guard.Load64(th.PKRU(), 0); err != nil {
		fmt.Printf("direct heap access from application code: %v\n", err)
	} else {
		log.Fatal("BUG: application code read the protected heap")
	}

	st := book.Stats()
	fmt.Printf("totals: %d sets across %d processes, %d live items\n",
		st.Sets, numProcs, st.CurrItems)
}
