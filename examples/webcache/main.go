// Webcache: the paper's motivating deployment — "memcached is also widely
// used in more local environments, where it shares a single multicore
// machine with its clients." Here the client is an HTTP application server
// that caches rendered pages in the shared store. Several such application
// "processes" (e.g. independent services on one host) share the same cache
// through the protected library, each page lookup costing a function call
// instead of a socket round trip.
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"plibmc/memcached"
)

// renderPage is the "expensive" origin work the cache exists to avoid.
func renderPage(path string) []byte {
	time.Sleep(2 * time.Millisecond) // a database query, templating, ...
	return []byte(fmt.Sprintf("<html><body>rendered %s at %s</body></html>",
		path, time.Now().Format(time.RFC3339Nano)))
}

type app struct {
	sess   *memcached.Session
	hits   atomic.Int64
	misses atomic.Int64
}

func (a *app) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := []byte("page:" + r.URL.Path)
	// One trampolined library call; ~microsecond on a hit.
	if body, _, err := a.sess.Get(key); err == nil {
		a.hits.Add(1)
		w.Header().Set("X-Cache", "HIT")
		w.Write(body)
		return
	} else if !errors.Is(err, memcached.ErrNotFound) {
		http.Error(w, err.Error(), 500)
		return
	}
	a.misses.Add(1)
	body := renderPage(r.URL.Path)
	// Cache for 60 seconds.
	if err := a.sess.Set(key, body, 0, 60); err != nil {
		http.Error(w, err.Error(), 500)
		return
	}
	w.Header().Set("X-Cache", "MISS")
	w.Write(body)
}

func main() {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 32 << 20, HashPower: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()
	book.StartMaintenance(500 * time.Millisecond)

	// Two independent "application services" share the one cache.
	var apps []*app
	var servers []*http.Server
	var addrs []string
	for i := 0; i < 2; i++ {
		cp, err := book.NewClientProcess(1000 + i)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := cp.NewSession()
		if err != nil {
			log.Fatal(err)
		}
		a := &app{sess: sess}
		apps = append(apps, a)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: a}
		go srv.Serve(ln)
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
		fmt.Printf("service %d listening on %s\n", i, addrs[i])
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// NOTE: each HTTP handler goroutine shares one session per service in
	// this demo; real services would pool sessions per worker. Requests
	// here are issued serially, so that is safe.
	get := func(addr, path string) (string, time.Duration) {
		t0 := time.Now()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			log.Fatal(err)
		}
		io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.Header.Get("X-Cache"), time.Since(t0)
	}

	// First request renders; the repeat — and the *other service's*
	// request for the same page — hit the shared cache.
	cache, d := get(addrs[0], "/products/42")
	fmt.Printf("service 0 first request:  %-4s in %v\n", cache, d.Round(time.Microsecond))
	cache, d = get(addrs[0], "/products/42")
	fmt.Printf("service 0 repeat:         %-4s in %v\n", cache, d.Round(time.Microsecond))
	cache, d = get(addrs[1], "/products/42")
	fmt.Printf("service 1 cross-process:  %-4s in %v\n", cache, d.Round(time.Microsecond))

	// A burst of traffic over a small page set.
	for i := 0; i < 300; i++ {
		get(addrs[i%2], fmt.Sprintf("/products/%d", i%30))
	}
	h0, m0 := apps[0].hits.Load(), apps[0].misses.Load()
	h1, m1 := apps[1].hits.Load(), apps[1].misses.Load()
	fmt.Printf("service 0: %d hits, %d misses; service 1: %d hits, %d misses\n", h0, m0, h1, m1)
	st := book.Stats()
	fmt.Printf("shared cache: %d items, %d gets (%d hits)\n", st.CurrItems, st.Gets, st.GetHits)
	if h0+h1 < 250 {
		log.Fatal("cache hit rate implausibly low")
	}
	fmt.Println("pages rendered once, served many times, across services")
}
