// Hybrid: the deployment the paper sketches in §6 — "allow the memcached
// background process to provide a socket-based interface for remote
// clients while still permitting local clients to use the Hodor
// interface." One store; local clients call through trampolines in
// microseconds, remote clients connect over a Unix socket with either wire
// protocol, and both see each other's writes instantly.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"plibmc/internal/client"
	"plibmc/memcached"
)

func main() {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 32 << 20, HashPower: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()
	book.StartMaintenance(time.Second)

	dir, err := os.MkdirTemp("", "hybrid")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "plib.sock")
	remote, err := book.ServeRemote("unix", sock)
	if err != nil {
		log.Fatal(err)
	}
	defer remote.Close()
	fmt.Printf("bookkeeper serving remote clients on %s\n", sock)

	// A local client: trampolined calls, no sockets.
	app, err := book.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}
	local, err := app.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer local.Close()

	// A "remote" client: the ordinary socket path (both protocols work).
	rbin, err := client.Dial("unix", sock, client.Binary)
	if err != nil {
		log.Fatal(err)
	}
	defer rbin.Close()
	rasc, err := client.Dial("unix", sock, client.ASCII)
	if err != nil {
		log.Fatal(err)
	}
	defer rasc.Close()

	// Cross-visibility in both directions.
	if err := local.Set([]byte("written-locally"), []byte("through a trampoline"), 0, 0); err != nil {
		log.Fatal(err)
	}
	v, _, _, err := rbin.Get([]byte("written-locally"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote binary client reads local write: %q\n", v)

	if err := rasc.Set([]byte("written-remotely"), []byte("over the socket"), 0, 0); err != nil {
		log.Fatal(err)
	}
	v2, _, err := local.Get([]byte("written-remotely"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local client reads remote write:        %q\n", v2)

	// The latency difference is the paper's whole point.
	measure := func(name string, get func() error) {
		const n = 2000
		t0 := time.Now()
		for i := 0; i < n; i++ {
			if err := get(); err != nil {
				log.Fatal(err)
			}
		}
		d := time.Since(t0) / n
		fmt.Printf("%-28s %v per get\n", name, d.Round(10*time.Nanosecond))
	}
	key := []byte("written-locally")
	measure("local (trampoline):", func() error {
		_, _, err := local.Get(key)
		return err
	})
	measure("remote (socket round trip):", func() error {
		_, _, _, err := rbin.Get(key)
		return err
	})

	st := book.Stats()
	fmt.Printf("one store served both: %d gets, %d sets, %d items\n",
		st.Gets, st.Sets, st.CurrItems)
}
