// Persistence: the bookkeeping process flushes the store to its backing
// file on shutdown; a restarted store maps the file and finds its contents
// intact — "this reload and reuse adds no extra code to the system"
// (paper §6) — because every pointer in the heap is position independent.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"plibmc/memcached"
)

func main() {
	dir, err := os.MkdirTemp("", "plib-persist")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.img")

	// --- First life: create, populate, shut down. ---
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 16 << 20, Path: path, HashPower: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	cp, err := book.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("doc:%04d", i)
		val := fmt.Sprintf("content of document %d", i)
		if err := s.Set([]byte(key), []byte(val), uint32(i), 0); err != nil {
			log.Fatal(err)
		}
	}
	st := book.Stats()
	fmt.Printf("first life: stored %d items (%d bytes)\n", st.CurrItems, st.Bytes)
	s.Close()
	if err := book.Shutdown(); err != nil {
		log.Fatal(err)
	}
	// Shutdown checkpoints into alternating generation slots (store.img.a
	// for odd generations, store.img.b for even); reopening scans all slots
	// and picks the newest one that verifies.
	imgs, err := filepath.Glob(path + "*")
	if err != nil || len(imgs) == 0 {
		log.Fatalf("no heap image written next to %s: %v", path, err)
	}
	for _, img := range imgs {
		info, err := os.Stat(img)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flushed heap image: %s (%d bytes)\n", img, info.Size())
	}

	// --- Second life: reopen and find everything. ---
	book2, err := memcached.OpenStore(memcached.Config{Path: path})
	if err != nil {
		log.Fatal(err)
	}
	defer book2.Shutdown()
	cp2, err := book2.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := cp2.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer s2.Close()

	intact := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("doc:%04d", i)
		v, flags, err := s2.Get([]byte(key))
		if err != nil {
			log.Fatalf("lost %s after restart: %v", key, err)
		}
		if string(v) != fmt.Sprintf("content of document %d", i) || flags != uint32(i) {
			log.Fatalf("corrupted %s after restart: %q", key, v)
		}
		intact++
	}
	fmt.Printf("second life: all %d items intact after restart\n", intact)

	// The restarted store is fully live: new writes, expiry, eviction.
	if err := s2.Set([]byte("written-after-restart"), []byte("yes"), 0, 0); err != nil {
		log.Fatal(err)
	}
	v, _, _ := s2.Get([]byte("written-after-restart"))
	fmt.Printf("new write after restart: %q\n", v)
	st2 := book2.Stats()
	fmt.Printf("second life stats: %d items, %d gets, %d sets\n",
		st2.CurrItems, st2.Gets, st2.Sets)
}
