// Quickstart: create a protected-library store, attach a client process,
// and perform K-V operations as direct trampolined calls — no server, no
// sockets.
package main

import (
	"fmt"
	"log"

	"plibmc/memcached"
)

func main() {
	// The bookkeeping process creates the store: a shared heap managed by
	// Ralloc, protected by a Hodor domain.
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: 32 << 20,
		HashPower: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()

	// A client application loads the library: its binary is scanned for
	// stray wrpkru instructions and the trampolines are linked.
	app, err := book.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}

	// Each client thread opens a session; every operation below is a
	// direct function call through a Hodor trampoline.
	sess, err := app.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	if err := sess.Set([]byte("greeting"), []byte("hello, shared world"), 0, 0); err != nil {
		log.Fatal(err)
	}
	value, flags, err := sess.Get([]byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(greeting) = %q (flags %d)\n", value, flags)

	sess.Set([]byte("hits"), []byte("41"), 0, 0)
	n, err := sess.Increment([]byte("hits"), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("increment(hits) = %d\n", n)

	// The asynchronous API of §3.1: requests queue and drain through one
	// batched trampoline crossing at FetchAsync (or before the next
	// synchronous operation).
	sess.GetAsync([]byte("greeting"), func(v []byte, _ uint32, err error) {
		fmt.Printf("async callback: %q (err %v)\n", v, err)
	})
	sess.GetAsync([]byte("hits"), func(v []byte, _ uint32, err error) {
		fmt.Printf("async callback: %q (err %v)\n", v, err)
	})
	if err := sess.FetchAsync(); err != nil {
		log.Fatal(err)
	}

	// A heterogeneous batch crosses into the library once for all its ops;
	// each result carries its own error.
	res, err := sess.ExecBatch([]memcached.BatchOp{
		{Code: memcached.BatchSet, Key: []byte("a"), Value: []byte("1")},
		{Code: memcached.BatchIncr, Key: []byte("a"), Delta: 1},
		{Code: memcached.BatchGet, Key: []byte("missing")},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: incr=%d, miss err=%v\n", res[1].Num, res[2].Err)

	st, _ := sess.Stats()
	fmt.Printf("stats: %d gets, %d sets, %d items, %d bytes\n",
		st.Gets, st.Sets, st.CurrItems, st.Bytes)
	fmt.Printf("wrpkru executed %d times (two per trampolined call)\n",
		app.Process().WRPKRUCount())
}
