// Faulttolerance: a client process is killed while its threads hammer the
// store. Hodor's guarantee (§3.4): in-flight library calls run to
// completion, so no lock is ever left held and no invariant broken; other
// processes continue unaffected. A second scenario shows a crash *inside*
// library code on a bare Hodor library with no repair routine — the
// paper's "unrecoverable", permanent poisoning. A third shows what the
// Bookkeeper does by default instead: quarantine, structural repair, and
// resume (DESIGN.md §8).
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/internal/hodor"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
	"plibmc/memcached"
)

func main() {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 32 << 20, HashPower: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()

	victim, err := book.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}
	survivor, err := book.NewClientProcess(1001)
	if err != nil {
		log.Fatal(err)
	}

	// The victim's threads write continuously.
	var wg sync.WaitGroup
	stopped := make(chan int, 4)
	for t := 0; t < 4; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, err := victim.NewSession()
			if err != nil {
				log.Fatal(err)
			}
			ops := 0
			for {
				key := fmt.Sprintf("victim-%d-%d", id, ops%500)
				if err := s.Set([]byte(key), []byte("payload"), 0, 0); err != nil {
					var killed *proc.ErrKilled
					if errors.As(err, &killed) {
						stopped <- ops
						return
					}
					log.Fatal(err)
				}
				ops++
			}
		}(t)
	}

	// SIGKILL arrives mid-run.
	time.Sleep(5 * time.Millisecond)
	victim.Kill()
	wg.Wait()
	total := 0
	for i := 0; i < 4; i++ {
		total += <-stopped
	}
	fmt.Printf("victim killed after its threads completed %d operations\n", total)
	fmt.Printf("library poisoned: %v (kills between calls never corrupt)\n",
		book.Library().Poisoned())

	// The survivor's view of the store is fully consistent.
	s, err := survivor.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	readable := 0
	for id := 0; id < 4; id++ {
		for k := 0; k < 500; k++ {
			key := fmt.Sprintf("victim-%d-%d", id, k)
			if _, _, err := s.Get([]byte(key)); err == nil {
				readable++
			} else if !errors.Is(err, memcached.ErrNotFound) {
				log.Fatalf("store corrupted: %v", err)
			}
		}
	}
	fmt.Printf("survivor reads %d of the victim's writes; store intact\n", readable)
	if err := s.Set([]byte("post-crash"), []byte("still writable"), 0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("survivor writes succeed after the crash")

	// Scenario 2: a segfault *inside* library code on a bare Hodor
	// library with no repair routine registered — demonstrated on a
	// throwaway library so the main store stays healthy.
	fmt.Println()
	crashInsideLibraryDemo()

	// Scenario 3: the same class of crash against the Bookkeeper store,
	// where recovery is on by default — the store repairs itself online.
	fmt.Println()
	crashRecoveryDemo(book, s)
}

// crashInsideLibraryDemo builds a minimal protected library with a buggy
// entry point and shows that, with no repair routine registered, the
// crash is contained in a CrashError and permanently poisons that library
// (paper §2: "a crash that occurs inside library code is considered
// unrecoverable").
func crashInsideLibraryDemo() {
	heap := shm.New(shm.PageSize)
	pt := pku.NewPageTable(heap)
	dom, err := hodor.NewDomain(heap, pt)
	if err != nil {
		log.Fatal(err)
	}
	lib := hodor.NewLibrary("libbuggy", 0, dom)
	p, err := proc.NewProcess(1002, heap, 0x10000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (hodor.Loader{}).Load(p, hodor.Binary{}, lib)
	if err != nil {
		log.Fatal(err)
	}
	s, err := res.Attach(p.NewThread(), lib)
	if err != nil {
		log.Fatal(err)
	}
	buggy := func(*proc.Thread, struct{}) (struct{}, error) {
		heap.Load64(1 << 40) // wild pointer: a segfault inside the library
		return struct{}{}, nil
	}
	_, err = hodor.Call(s, buggy, struct{}{})
	fmt.Printf("crash inside library contained as: %v\n", err)
	fmt.Printf("library poisoned: %v; further calls: ", lib.Poisoned())
	_, err = hodor.Call(s, func(*proc.Thread, struct{}) (struct{}, error) {
		return struct{}{}, nil
	}, struct{}{})
	fmt.Println(err)
}

// crashRecoveryDemo kills a client at a named crash point deep inside a
// Set — after the item is linked, before its lock is released — and shows
// the Bookkeeper's default behaviour: the library quarantines, the repair
// coordinator breaks the dead thread's locks, rebuilds the structures and
// verifies the heap, and the survivor's next call is served.
func crashRecoveryDemo(book *memcached.Bookkeeper, survivor *memcached.Session) {
	doomedProc, err := book.NewClientProcess(1003)
	if err != nil {
		log.Fatal(err)
	}
	doomed, err := doomedProc.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	if err := faultpoint.Arm("ops.store.after_link", func() {
		doomedProc.Kill()
		panic("simulated segfault mid-Set, item lock held")
	}); err != nil {
		log.Fatal(err)
	}
	crashErr := doomed.Set([]byte("doomed-key"), []byte("x"), 0, 0)
	fmt.Printf("client crashed inside the store's Set: %v\n", crashErr)

	// The survivor's very next call parks until the repair completes,
	// then succeeds — no poisoning, no restart.
	start := time.Now()
	if err := survivor.Set([]byte("after-repair"), []byte("served"), 0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survivor served %.1f ms after the crash\n",
		float64(time.Since(start).Microseconds())/1000)
	st := book.Stats()
	rep, _ := book.LastRepair()
	fmt.Printf("library poisoned: %v; recoveries: %d; repair kept %d items, dropped %d\n",
		book.Library().Poisoned(), st.Recoveries, rep.ItemsKept, rep.ItemsDropped)
}
