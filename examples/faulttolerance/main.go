// Faulttolerance: a client process is killed while its threads hammer the
// store. Hodor's guarantee (§3.4): in-flight library calls run to
// completion, so no lock is ever left held and no invariant broken; other
// processes continue unaffected. A second scenario shows the other side:
// a crash *inside* library code is unrecoverable and poisons the library.
package main

import (
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"plibmc/internal/hodor"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
	"plibmc/memcached"
)

func main() {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 32 << 20, HashPower: 12})
	if err != nil {
		log.Fatal(err)
	}
	defer book.Shutdown()

	victim, err := book.NewClientProcess(1000)
	if err != nil {
		log.Fatal(err)
	}
	survivor, err := book.NewClientProcess(1001)
	if err != nil {
		log.Fatal(err)
	}

	// The victim's threads write continuously.
	var wg sync.WaitGroup
	stopped := make(chan int, 4)
	for t := 0; t < 4; t++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, err := victim.NewSession()
			if err != nil {
				log.Fatal(err)
			}
			ops := 0
			for {
				key := fmt.Sprintf("victim-%d-%d", id, ops%500)
				if err := s.Set([]byte(key), []byte("payload"), 0, 0); err != nil {
					var killed *proc.ErrKilled
					if errors.As(err, &killed) {
						stopped <- ops
						return
					}
					log.Fatal(err)
				}
				ops++
			}
		}(t)
	}

	// SIGKILL arrives mid-run.
	time.Sleep(5 * time.Millisecond)
	victim.Kill()
	wg.Wait()
	total := 0
	for i := 0; i < 4; i++ {
		total += <-stopped
	}
	fmt.Printf("victim killed after its threads completed %d operations\n", total)
	fmt.Printf("library poisoned: %v (kills between calls never corrupt)\n",
		book.Library().Poisoned())

	// The survivor's view of the store is fully consistent.
	s, err := survivor.NewSession()
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	readable := 0
	for id := 0; id < 4; id++ {
		for k := 0; k < 500; k++ {
			key := fmt.Sprintf("victim-%d-%d", id, k)
			if _, _, err := s.Get([]byte(key)); err == nil {
				readable++
			} else if !errors.Is(err, memcached.ErrNotFound) {
				log.Fatalf("store corrupted: %v", err)
			}
		}
	}
	fmt.Printf("survivor reads %d of the victim's writes; store intact\n", readable)
	if err := s.Set([]byte("post-crash"), []byte("still writable"), 0, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("survivor writes succeed after the crash")

	// Scenario 2: a segfault *inside* library code (a bug in the library
	// itself) is unrecoverable — demonstrated on a throwaway Hodor
	// library so the main store stays healthy.
	fmt.Println()
	crashInsideLibraryDemo()
}

// crashInsideLibraryDemo builds a minimal protected library with a buggy
// entry point and shows that the crash is contained in a CrashError and
// permanently poisons that library (paper §2: "a crash that occurs inside
// library code is considered unrecoverable").
func crashInsideLibraryDemo() {
	heap := shm.New(shm.PageSize)
	pt := pku.NewPageTable(heap)
	dom, err := hodor.NewDomain(heap, pt)
	if err != nil {
		log.Fatal(err)
	}
	lib := hodor.NewLibrary("libbuggy", 0, dom)
	p, err := proc.NewProcess(1002, heap, 0x10000)
	if err != nil {
		log.Fatal(err)
	}
	res, err := (hodor.Loader{}).Load(p, hodor.Binary{}, lib)
	if err != nil {
		log.Fatal(err)
	}
	s, err := res.Attach(p.NewThread(), lib)
	if err != nil {
		log.Fatal(err)
	}
	buggy := func(*proc.Thread, struct{}) (struct{}, error) {
		heap.Load64(1 << 40) // wild pointer: a segfault inside the library
		return struct{}{}, nil
	}
	_, err = hodor.Call(s, buggy, struct{}{})
	fmt.Printf("crash inside library contained as: %v\n", err)
	fmt.Printf("library poisoned: %v; further calls: ", lib.Poisoned())
	_, err = hodor.Call(s, func(*proc.Thread, struct{}) (struct{}, error) {
		return struct{}{}, nil
	}, struct{}{})
	fmt.Println(err)
}
