package plibmc

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/memcached"
)

// BenchmarkRecovery measures time-to-resume: from the instant a client
// crashes inside the library until a survivor's parked call is served by
// the repaired store. The 64 MiB heap carries ~20k items, so the figure
// includes a full structural repair (harvest, rebuild, heap check) of a
// realistically populated store.
func BenchmarkRecovery(b *testing.B) {
	defer faultpoint.DisarmAll()
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes:    64 << 20,
		HashPower:    14,
		NumItemLocks: 64,
		CallTimeout:  50 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer book.Shutdown()

	survivorProc, err := book.NewClientProcess(1001)
	if err != nil {
		b.Fatal(err)
	}
	survivor, err := survivorProc.NewSession()
	if err != nil {
		b.Fatal(err)
	}
	val := bytes.Repeat([]byte("v"), 512)
	const items = 20000
	for i := 0; i < items; i++ {
		if err := survivor.Set([]byte(fmt.Sprintf("key-%06d", i)), val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		doomedProc, err := book.NewClientProcess(2000 + n)
		if err != nil {
			b.Fatal(err)
		}
		doomed, err := doomedProc.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		if err := faultpoint.Arm("ops.store.after_link", func() {
			doomedProc.Kill()
			panic("bench: injected crash")
		}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		// The crash: a Set that dies after publishing its item.
		_ = doomed.Set([]byte(fmt.Sprintf("crash-%d", n)), val, 0, 0)
		// Time-to-resume: this call parks in admission until the repair
		// completes, then is served.
		if err := survivor.Set([]byte("probe"), val, 0, 0); err != nil {
			b.Fatalf("survivor blocked out of recovery: %v", err)
		}
	}
	b.StopTimer()
	if m := book.Library().Metrics(); m.Recoveries != uint64(b.N) {
		b.Fatalf("Recoveries = %d, want %d", m.Recoveries, b.N)
	}
}
