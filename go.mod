module plibmc

go 1.22
