package plibmc

// The corruption matrix: for each class of single-fault damage — a flipped
// bit or torn word in live heap memory, or in an image file on disk — the
// store must either salvage (serve everything except the damaged item) or
// degrade gracefully (fail the damaged image over to the previous
// generation). Two outcomes are never acceptable: an unrecovered panic,
// and serving a value the store cannot vouch for.
//
// Every class runs sequentially against its own store: corruption
// injection uses plain stores by design (a concurrent flip would be a Go
// data race, not a model of failing hardware), so the injected store
// happens while no other thread touches the heap.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/corrupt"
	"plibmc/internal/faultpoint"
	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
	"plibmc/memcached"
)

// corruptHarness is one store under corruption test: a populated
// bookkeeper plus the expected contents.
type corruptHarness struct {
	t    *testing.T
	path string
	book *memcached.Bookkeeper
	s    *memcached.Session
	keys [][]byte
	vals [][]byte
}

const corruptKeys = 256

func newCorruptHarness(t *testing.T, withPath bool) *corruptHarness {
	t.Helper()
	h := &corruptHarness{t: t}
	if withPath {
		h.path = filepath.Join(t.TempDir(), "store.img")
	}
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes:    16 << 20,
		Path:         h.path,
		HashPower:    8,
		NumItemLocks: 16,
		CallTimeout:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = book.Shutdown() })
	h.book = book
	cp, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	h.s = s
	for i := 0; i < corruptKeys; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v := []byte(fmt.Sprintf("value-%05d-%s", i, bytes.Repeat([]byte("x"), 40)))
		if err := s.Set(k, v, 0, 0); err != nil {
			t.Fatalf("populate: %v", err)
		}
		h.keys = append(h.keys, k)
		h.vals = append(h.vals, v)
	}
	return h
}

func (h *corruptHarness) heap() *shm.Heap { return h.book.Allocator().Heap() }

// itemOff locates key i's live item, failing the test if it is missing.
func (h *corruptHarness) itemOff(i int) uint64 {
	h.t.Helper()
	it := h.s.Ctx().DebugItemOffset(h.keys[i])
	if it == 0 {
		h.t.Fatalf("key %s not found for injection", h.keys[i])
	}
	return it
}

// waitHealthy waits out any in-flight recovery and fails on poison.
func (h *corruptHarness) waitHealthy() {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for h.book.Library().Recovering() {
		if time.Now().After(deadline) {
			h.t.Fatal("store did not leave the Recovering state")
		}
		time.Sleep(time.Millisecond)
	}
	if h.book.Library().Poisoned() {
		h.t.Fatal("store poisoned; corruption was not contained")
	}
}

// maintain runs enough maintenance passes for the scrubber to cover every
// lock stripe at least once, tolerating recovery cycles along the way.
func (h *corruptHarness) maintain() {
	h.t.Helper()
	for i := 0; i < 6; i++ { // 16 stripes / 4 per pass, with margin
		h.book.RunMaintenanceOnce()
		h.waitHealthy()
	}
}

// sweep reads every key: a hit must return the exact original value (a
// wrong value is the one unforgivable outcome); a clean miss is tolerated
// for the damaged keys. Returns the number of misses.
func (h *corruptHarness) sweep() int {
	h.t.Helper()
	misses := 0
	for i, k := range h.keys {
		v, _, err := h.s.Get(k)
		if err != nil {
			misses++
			continue
		}
		if !bytes.Equal(v, h.vals[i]) {
			h.t.Fatalf("key %s served a corrupted value: %q", k, v)
		}
	}
	return misses
}

// verifyHeap runs the allocator fsck on the live heap.
func (h *corruptHarness) verifyHeap() {
	h.t.Helper()
	if _, err := h.book.Allocator().Check(); err != nil {
		h.t.Fatalf("heap verification after containment: %v", err)
	}
}

func TestCorruptionMatrix(t *testing.T) {
	t.Run("item_header", func(t *testing.T) {
		h := newCorruptHarness(t, false)
		const victim = 17
		it := h.itemOff(victim)
		corrupt.FlipBit(h.heap(), it+core.DebugItemCheck, 11)

		// The read path must detect the mismatch on the next probe and
		// quarantine the item: a miss, never garbage geometry.
		if _, _, err := h.s.Get(h.keys[victim]); err == nil {
			t.Fatalf("read served an item with a corrupt header")
		}
		h.waitHealthy()
		st := h.book.Stats()
		if st.CorruptionsDetected < 1 || st.ItemsQuarantined < 1 {
			t.Fatalf("counters after header corruption: detected=%d quarantined=%d",
				st.CorruptionsDetected, st.ItemsQuarantined)
		}
		if n := h.sweep(); n > 1 {
			t.Fatalf("%d keys lost to a single-item header corruption", n)
		}
		h.maintain()
		h.sweep()
		h.verifyHeap()
	})

	t.Run("value_bytes", func(t *testing.T) {
		h := newCorruptHarness(t, false)
		const victim = 42
		it := h.itemOff(victim)
		corrupt.FlipBit(h.heap(), h.book.Store().DebugValOff(it)+8, 3)

		// The read path does not checksum values (that is the scrubber's
		// job); after a full scrub cycle the item must be quarantined.
		h.maintain()
		if _, _, err := h.s.Get(h.keys[victim]); err == nil {
			t.Fatal("corrupted value still served after a full scrub cycle")
		}
		st := h.book.Stats()
		if st.CorruptionsDetected < 1 || st.ItemsQuarantined < 1 {
			t.Fatalf("counters after value corruption: detected=%d quarantined=%d",
				st.CorruptionsDetected, st.ItemsQuarantined)
		}
		if n := h.sweep(); n > 1 {
			t.Fatalf("%d keys lost to a single-item value corruption", n)
		}
		h.verifyHeap()
	})

	t.Run("chain_pointer", func(t *testing.T) {
		h := newCorruptHarness(t, false)
		// Find an item with a successor, so the flipped pointer actually
		// tears a chain rather than a null.
		victim, it := -1, uint64(0)
		for i := range h.keys {
			cand := h.itemOff(i)
			if h.heap().Load64(cand+core.DebugItemHNext) != 0 {
				victim, it = i, cand
				break
			}
		}
		if victim < 0 {
			t.Fatal("no chained items; raise the key count")
		}
		corrupt.FlipBit(h.heap(), it+core.DebugItemHNext, 1) // misaligned garbage link

		// The item ahead of the tear still serves; reads behind it must
		// miss or error, never fabricate.
		if v, _, err := h.s.Get(h.keys[victim]); err != nil || !bytes.Equal(v, h.vals[victim]) {
			t.Fatalf("item before the tear lost: %q, %v", v, err)
		}
		h.maintain() // the scrubber truncates the implausible link
		// Two containment routes are legitimate: the scrubber spots the
		// implausible link and truncates (counted), or an earlier
		// maintenance walk trips over it first and panics into a full
		// structural repair (recorded as a repair pass).
		st := h.book.Stats()
		_, repairs := h.book.LastRepair()
		if st.CorruptionsDetected < 1 && repairs < 1 {
			t.Fatalf("torn chain neither scrubbed (detected=%d) nor repaired (repairs=%d)",
				st.CorruptionsDetected, repairs)
		}
		misses := h.sweep()
		t.Logf("chain tear: %d keys degraded to misses", misses)
		h.verifyHeap()
	})

	t.Run("lru_link", func(t *testing.T) {
		if testing.Short() {
			t.Skip("recovery-cycle class skipped in -short")
		}
		h := newCorruptHarness(t, false)
		const victim = 99
		it := h.itemOff(victim)
		corrupt.FlipBit(h.heap(), it+core.DebugItemLRUNext, 1)

		// Unlinking the victim must not scribble through the corrupt LRU
		// pointer: the hardened splice panics into a full structural
		// repair instead. The failing Delete unwinds as an error.
		if err := h.s.Delete(h.keys[victim]); err == nil {
			// The corrupt link may have been on an untouched neighbor
			// path; either way the store must stay coherent below.
			t.Log("delete succeeded without touching the corrupt link")
		}
		h.waitHealthy()
		h.maintain()
		if n := h.sweep(); n > corruptKeys/2 {
			t.Fatalf("%d keys lost to a single LRU-link corruption", n)
		}
		h.verifyHeap()
	})

	t.Run("stats_slot", func(t *testing.T) {
		if testing.Short() {
			t.Skip("recovery-cycle class skipped in -short")
		}
		h := newCorruptHarness(t, false)
		walked := h.s.Ctx().ForEach(func(*core.Entry) bool { return true })
		corrupt.FlipBit(h.heap(),
			h.book.Store().DebugStatsSlotOff(3)+core.DebugStatCurrItems*8, 13)

		// Statistics degrade; service must not. Every key still reads
		// back exactly.
		if n := h.sweep(); n != 0 {
			t.Fatalf("%d keys lost to a stats-slot corruption", n)
		}
		// A structural repair rebuilds the counters from the survivors.
		doomedProc, err := h.book.NewClientProcess(1002)
		if err != nil {
			t.Fatal(err)
		}
		doomed, err := doomedProc.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		if err := faultpoint.Arm("ops.store.locked", func() {
			panic("corruptmatrix: injected crash to force a repair")
		}); err != nil {
			t.Fatal(err)
		}
		defer faultpoint.DisarmAll()
		if err := doomed.Set([]byte("doomed"), []byte("v"), 0, 0); err == nil {
			t.Fatal("crashed call returned nil error")
		}
		faultpoint.DisarmAll()
		h.waitHealthy()
		st := h.book.Stats()
		if st.CurrItems != uint64(walked) {
			t.Fatalf("repair did not rebuild CurrItems: %d, want %d", st.CurrItems, walked)
		}
		if n := h.sweep(); n != 0 {
			t.Fatalf("%d keys lost across the stats repair", n)
		}
		h.verifyHeap()
	})

	t.Run("persistent_root", func(t *testing.T) {
		h := newCorruptHarness(t, true)
		if err := h.book.Checkpoint(); err != nil { // generation 1: intact
			t.Fatal(err)
		}
		if err := h.s.Set([]byte("at-risk"), []byte("late"), 0, 0); err != nil {
			t.Fatal(err)
		}
		// Corrupt a persistent root in the live heap, then checkpoint: the
		// generation-2 image is checksum-clean (the checksums faithfully
		// cover corrupt bytes) but semantically broken — only the
		// allocator fsck in the open path can tell.
		corrupt.FlipBit(h.heap(), ralloc.RootSlotOff(core.RootPrimaryHT), 3)
		if err := h.book.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		// The bookkeeper dies; a fresh one must reject generation 2 on
		// semantic verification and fall back to generation 1.
		book2, err := memcached.OpenStore(memcached.Config{Path: h.path})
		if err != nil {
			t.Fatalf("reload with a corrupt newest image: %v", err)
		}
		defer book2.Shutdown()
		if gen := book2.CheckpointGeneration(); gen != 1 {
			t.Fatalf("reloaded generation = %d, want fallback to 1", gen)
		}
		cp, _ := book2.NewClientProcess(1003)
		s2, err := cp.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		for i, k := range h.keys {
			if v, _, err := s2.Get(k); err != nil || !bytes.Equal(v, h.vals[i]) {
				t.Fatalf("key %s lost in the generation fallback: %q, %v", k, v, err)
			}
		}
		if _, _, err := s2.Get([]byte("at-risk")); err == nil {
			t.Fatal("post-checkpoint write survived a fallback to the older generation")
		}
	})

	t.Run("image_header", func(t *testing.T) {
		h := newCorruptHarness(t, true)
		if err := h.book.Checkpoint(); err != nil { // generation 1
			t.Fatal(err)
		}
		if err := h.s.Set([]byte("at-risk"), []byte("late"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := h.book.Checkpoint(); err != nil { // generation 2
			t.Fatal(err)
		}
		// Flip one bit of generation 2's header on disk.
		if err := corrupt.FlipFileBit(shm.CheckpointSlot(h.path, 2), 16, 2); err != nil {
			t.Fatal(err)
		}
		book2, err := memcached.OpenStore(memcached.Config{Path: h.path})
		if err != nil {
			t.Fatalf("reload with a corrupt newest header: %v", err)
		}
		defer book2.Shutdown()
		if gen := book2.CheckpointGeneration(); gen != 1 {
			t.Fatalf("reloaded generation = %d, want fallback to 1", gen)
		}
		cp, _ := book2.NewClientProcess(1003)
		s2, err := cp.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		for i, k := range h.keys {
			if v, _, err := s2.Get(k); err != nil || !bytes.Equal(v, h.vals[i]) {
				t.Fatalf("key %s lost in the header fallback: %q, %v", k, v, err)
			}
		}
		if _, _, err := s2.Get([]byte("at-risk")); err == nil {
			t.Fatal("post-checkpoint write survived a fallback to the older generation")
		}
	})
}
