// Package plibmc is a Go reproduction of "Safe, Fast Sharing of memcached
// as a Protected Library" (Kjellqvist, Hedayati & Scott, ICPP 2020): a
// memcached whose clients execute the server's code themselves through
// MPK-protected trampolines over a shared, position-independent heap,
// instead of exchanging socket messages with a server process.
//
// The public API lives in package plibmc/memcached (the protected-library
// store) and plibmc/memcached/compat (the drop-in classic API). The
// substrates — the Hodor protected-library runtime, the Ralloc persistent
// allocator, simulated protection keys, the baseline socket memcached, and
// the YCSB workload generator — live under internal/. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation; cmd/benchfig runs the full sweeps and prints the
// corresponding rows and series.
package plibmc
