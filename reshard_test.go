package plibmc

// Live-resharding verification (ISSUE 9).
//
//   - TestModelCheckResize: the sharded mixed torture run with a live
//     4→6 resize injected mid-flight. Every op routes through the
//     dual-ring layer while segments stream and cut over; the merged
//     history must linearize exactly and no client may see a single
//     crash-grade error.
//   - TestResizeCrashIsolation: the migrator is killed mid-segment
//     (migrate.mid_segment), and in a second round crashes *inside* a
//     gate crossing (ops.batch.mid_dispatch) so a shard must repair
//     online under the migration. Both times the shards stay healthy,
//     the migration resumes on a fresh attempt and completes, and every
//     key keeps its value — and, untouched keys, their CAS generation.
//   - TestClusterReopenAfterResize: the ring.json manifest overrides a
//     stale caller config, so a resized directory reopens at its grown
//     geometry with every key in place.
//   - runMigrateFaultAt: the fault-matrix entry for migrate.* points.

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/internal/linearcheck"
	"plibmc/internal/model"
	"plibmc/memcached"
)

// TestModelCheckResize: the cluster torture workload of
// TestModelCheckSharded with a Resize(4→6) launched while the workers
// are mid-flight. The dual-ring routing layer must keep every key's
// history linearizable across segment cutovers: a key is served by its
// old shard until its segment's final recopy completes under the
// exclusive guard, and by its new shard after — never neither, never
// both. FlushAll stays excluded and hot keys stay off, as in the
// steady-state sharded run.
func TestModelCheckResize(t *testing.T) {
	opBudget := *modelcheckOps
	if testing.Short() {
		opBudget = 3000
	}
	const nShards, newShards, nProcs, perProc = 4, 6, 2, 4
	workers := nProcs * perProc

	c, err := memcached.CreateCluster(memcached.ClusterConfig{
		Shards: nShards,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
		},
		// Via the config, not per-shard SetClock: the resize mints two new
		// shards mid-run and they must come up frozen too.
		Clock: func() int64 { return mcFrozenNow },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	rec := linearcheck.NewRecorder(workers)
	var ws []*mcWorker
	for p := 0; p < nProcs; p++ {
		cc, err := c.NewClientProcess(1000 + p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < perProc; s++ {
			sess, err := cc.NewSession()
			if err != nil {
				t.Fatal(err)
			}
			ws = append(ws, newMCWorker(t, sess, rec, len(ws), *modelcheckSeed, false))
		}
	}

	keys := mcGeneralKeys()
	perWorker := opBudget / workers
	var wg sync.WaitGroup
	for _, w := range ws {
		wg.Add(1)
		go func(w *mcWorker) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ok := w.step(keys, false)
				if ok && w.rng.Intn(4) == 0 {
					ok = w.doBatch(keys) // batches hold several segment guards at once
				}
				if !ok {
					w.t.Errorf("worker %d died", w.id)
					return
				}
			}
		}(w)
	}

	// Let the workload get going, then resize under it.
	time.Sleep(10 * time.Millisecond)
	if err := c.Resize(newShards); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	if err := c.WaitResize(120 * time.Second); err != nil {
		t.Fatalf("resize did not complete: %v", err)
	}
	wg.Wait()

	if got := c.Ring().Shards(); got != newShards {
		t.Fatalf("ring advanced to %d shards, want %d", got, newShards)
	}
	st := c.MigrationStatus()
	if st.Active || st.Error != "" || st.SegmentsDone != st.SegmentsTotal {
		t.Fatalf("terminal migration status: %+v", st)
	}
	t.Logf("resize %d→%d: %d segments, %d keys moved, %d retries",
		st.FromShards, st.ToShards, st.SegmentsTotal, st.KeysMoved, st.Retries)

	// The old shards must all have served, and the heap of every shard —
	// including the two minted mid-run — must verify.
	for i := 0; i < c.Shards(); i++ {
		if i < nShards {
			s := c.Shard(i).Stats()
			if s.Gets+s.Sets == 0 {
				t.Fatalf("shard %d saw no traffic; ring routing is degenerate", i)
			}
		}
		if _, err := c.Shard(i).Allocator().Check(); err != nil {
			t.Fatalf("shard %d heap after resize: %v", i, err)
		}
	}

	hist := rec.History()
	if len(hist) < opBudget {
		t.Fatalf("recorded only %d ops, want >= %d", len(hist), opBudget)
	}
	mcCheck(t, hist, &model.Model{MaxValueLen: core.MaxValueLen})
}

// reshardSeedKeys loads n keys with deterministic values and returns the
// CAS generation each was stored under.
func reshardSeedKeys(t *testing.T, s *memcached.ClusterSession, n int) map[string]uint64 {
	t.Helper()
	cas := make(map[string]uint64, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("mig-key-%05d", i)
		if err := s.Set([]byte(k), []byte("v1-"+k), 7, 0); err != nil {
			t.Fatalf("seed %s: %v", k, err)
		}
		_, _, c, err := s.Gets([]byte(k))
		if err != nil {
			t.Fatalf("seed gets %s: %v", k, err)
		}
		cas[k] = c
	}
	return cas
}

// reshardVerifyKeys asserts every seeded key serves its expected value;
// keys absent from updated must also have kept their pre-migration CAS
// generation (the move preserves generations verbatim).
func reshardVerifyKeys(t *testing.T, s *memcached.ClusterSession, casBefore map[string]uint64, updated map[string]string) {
	t.Helper()
	for k, c0 := range casBefore {
		v, f, c1, err := s.Gets([]byte(k))
		if err != nil {
			t.Fatalf("key %s lost across migration: %v", k, err)
		}
		if want, ok := updated[k]; ok {
			if string(v) != want {
				t.Fatalf("key %s = %q, want mid-migration update %q", k, v, want)
			}
			continue
		}
		if string(v) != "v1-"+k || f != 7 {
			t.Fatalf("key %s = %q flags %d, want seeded value", k, v, f)
		}
		if c1 != c0 {
			t.Fatalf("key %s CAS %d → %d across migration; moves must preserve generations", k, c0, c1)
		}
	}
}

// TestResizeCrashIsolation: two migrator deaths at the worst moments.
//
// Round 1 — killed between batches: the migrate.mid_segment handler
// kills the migrator's client processes and panics, after part of a
// segment has been installed on its destination but before cutover. No
// gate is held (the point sits between crossings), so both shards stay
// healthy with no repair; a fresh attempt re-walks and completes, while
// clients keep reading and writing — including writes into the torn
// segment, which the cutover recopy must carry over.
//
// Round 2 — crashed inside a crossing: ops.batch.mid_dispatch fires in
// the middle of one of the migrator's own export/install batches, and
// the migrator's client process is killed at the same instant (the
// fault matrix's crash model: repair only reclaims locks whose owner is
// dead — a live pid might merely be slow). The crash unwinds through
// the trampoline with the gate held; the shard must repair online
// (Recoveries ≥ 1) and the migration again resumes and completes. No
// client traffic runs while the point is armed, so only a migrator
// crossing can step on it.
func TestResizeCrashIsolation(t *testing.T) {
	defer faultpoint.DisarmAll()
	const nKeys = 2000
	c, err := memcached.CreateCluster(memcached.ClusterConfig{
		Shards:       2,
		VirtualNodes: 8, // few, fat segments: every nonempty one spans many keys
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cc, err := c.NewClientProcess(2001)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	casBefore := reshardSeedKeys(t, sess, nKeys)

	// Round 1: die between copy batches, mid-segment.
	var fired atomic.Bool
	if err := faultpoint.Arm("migrate.mid_segment", func() {
		fired.Store(true)
		c.KillMigrator()
		panic("injected: migrator killed mid-segment")
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(3); err != nil {
		t.Fatalf("Resize: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatal("migration never reached migrate.mid_segment")
		}
		time.Sleep(time.Millisecond)
	}
	// Both original shards keep serving, un-repaired, while the torn
	// migration is still live.
	for i := 0; i < 2; i++ {
		if st := c.State(i); st != memcached.ShardHealthy {
			t.Fatalf("shard %d state %d after mid-segment kill, want healthy", i, st)
		}
	}
	// Client writes land during the (restarting) migration; the cutover
	// recopy must carry them wherever their segments end up.
	updated := make(map[string]string, 64)
	for i := 0; i < 64; i++ {
		k := fmt.Sprintf("mig-key-%05d", i*17%nKeys)
		v := "v2-" + k
		if err := sess.Set([]byte(k), []byte(v), 7, 0); err != nil {
			t.Fatalf("mid-migration write %s: %v", k, err)
		}
		updated[k] = v
	}
	if err := c.WaitResize(60 * time.Second); err != nil {
		t.Fatalf("migration did not recover from mid-segment kill: %v", err)
	}
	st := c.MigrationStatus()
	if st.Retries < 1 {
		t.Fatalf("migration completed without retrying after a kill: %+v", st)
	}
	if got := c.Ring().Shards(); got != 3 {
		t.Fatalf("ring = %d shards after round 1, want 3", got)
	}
	for k := range updated {
		delete(casBefore, k) // updates minted fresh generations
	}
	reshardVerifyKeys(t, sess, casBefore, updated)

	// Round 2: crash inside a migrator crossing; a shard repairs online.
	faultpoint.DisarmAll()
	if err := faultpoint.Arm("ops.batch.mid_dispatch", func() {
		c.KillMigrator()
		panic("injected: migrator crashes inside its export/install crossing")
	}); err != nil {
		t.Fatal(err)
	}
	recoveriesBefore := uint64(0)
	for i := 0; i < c.Shards(); i++ {
		recoveriesBefore += c.Shard(i).Library().Metrics().Recoveries
	}
	if err := c.Resize(4); err != nil {
		t.Fatalf("Resize round 2: %v", err)
	}
	if err := c.WaitResize(60 * time.Second); err != nil {
		t.Fatalf("migration did not recover from in-crossing crash: %v", err)
	}
	recoveries := uint64(0)
	for i := 0; i < c.Shards(); i++ {
		recoveries += c.Shard(i).Library().Metrics().Recoveries
	}
	if recoveries <= recoveriesBefore {
		t.Fatalf("no online repair recorded: recoveries %d → %d", recoveriesBefore, recoveries)
	}
	if st := c.MigrationStatus(); st.Retries < 1 || st.Error != "" {
		t.Fatalf("round 2 terminal status: %+v", st)
	}
	if got := c.Ring().Shards(); got != 4 {
		t.Fatalf("ring = %d shards after round 2, want 4", got)
	}
	// The second migration's updates set is empty: verify against the
	// post-round-1 state (re-capture generations first).
	sess2, err := cc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for k := range casBefore {
		v, _, err := sess2.Get([]byte(k))
		if err != nil || !bytes.Equal(v, []byte("v1-"+k)) {
			t.Fatalf("key %s after round 2: %q, %v", k, v, err)
		}
	}
	for k, want := range updated {
		v, _, err := sess2.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("updated key %s after round 2: %q, %v", k, v, err)
		}
	}
	for i := 0; i < c.Shards(); i++ {
		if stt := c.State(i); stt != memcached.ShardHealthy {
			t.Fatalf("shard %d state %d at end, want healthy", i, stt)
		}
		if _, err := c.Shard(i).Allocator().Check(); err != nil {
			t.Fatalf("shard %d heap after crash rounds: %v", i, err)
		}
	}
}

// TestClusterReopenAfterResize: a resized directory reopens onto the
// grown ring regardless of the caller's stale shard count — ring.json is
// authoritative — with every key served from its post-resize owner.
func TestClusterReopenAfterResize(t *testing.T) {
	dir := t.TempDir()
	cfg := memcached.ClusterConfig{
		Shards: 2,
		Dir:    dir,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
		},
	}
	c, err := memcached.CreateCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := c.NewClientProcess(2002)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	casBefore := reshardSeedKeys(t, s, 500)
	if err := c.Resize(4); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitResize(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}

	c2, err := memcached.OpenCluster(cfg) // cfg still says 2 shards
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Shutdown()
	if got := c2.Ring().Shards(); got != 4 {
		t.Fatalf("reopened ring = %d shards, want 4 from the manifest", got)
	}
	cc2, err := c2.NewClientProcess(2003)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cc2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	reshardVerifyKeys(t, s2, casBefore, nil)
}

// runMigrateFaultAt is the fault matrix's migrate.* entry: kill the
// migrator exactly at the armed point and assert the resize survives —
// shards healthy, migration resumed and completed, no key lost.
func runMigrateFaultAt(t *testing.T, point string) {
	defer faultpoint.DisarmAll()
	c, err := memcached.CreateCluster(memcached.ClusterConfig{
		Shards:       2,
		VirtualNodes: 8,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cc, err := c.NewClientProcess(2004)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	casBefore := reshardSeedKeys(t, s, 600)
	var fired atomic.Bool
	if err := faultpoint.Arm(point, func() {
		fired.Store(true)
		c.KillMigrator()
		panic("faultmatrix: migrator killed at " + point)
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Resize(3); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitResize(60 * time.Second); err != nil {
		t.Fatalf("migration did not survive crash at %s: %v", point, err)
	}
	if !fired.Load() {
		t.Fatalf("workload never reached fault point %s", point)
	}
	if st := c.MigrationStatus(); st.Retries < 1 {
		t.Fatalf("no retry recorded after crash at %s: %+v", point, st)
	}
	for i := 0; i < c.Shards(); i++ {
		if stt := c.State(i); stt != memcached.ShardHealthy {
			t.Fatalf("shard %d state %d after crash at %s", i, stt, point)
		}
	}
	reshardVerifyKeys(t, s, casBefore, nil)
}
