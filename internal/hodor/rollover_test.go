package hodor

import (
	"math"
	"testing"

	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
)

// TestLazySyncGenerationRollover (ISSUE 7 satellite): the trampoline's
// staleness test is an inequality against the vtable generation, so it must
// keep scrubbing across the counter wrapping through zero. A thread whose
// cached generation is MaxUint64 meets a table whose generation just
// remapped to 0; an ordered comparison would call the thread fresh and
// restore a register whose hardware-key grants predate the remap.
func TestLazySyncGenerationRollover(t *testing.T) {
	const domains = 2
	heap := shm.New(domains * shm.PageSize)
	pt := pku.NewPageTable(heap)
	vt, err := pku.NewVTable(pt)
	if err != nil {
		t.Fatal(err)
	}
	libs := make([]*Library, domains)
	for i := range libs {
		dom := NewVirtualDomain(heap, pt, vt)
		if err := dom.Protect(uint64(i)*shm.PageSize, shm.PageSize); err != nil {
			t.Fatal(err)
		}
		libs[i] = NewLibrary("vlib", 0, dom)
	}
	p, err := proc.NewProcess(1000, heap, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Loader{}).Load(p, Binary{}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	th := p.NewThread()
	sess := make([]*Session, domains)
	for i := range libs {
		if sess[i], err = res.Attach(th, libs[i]); err != nil {
			t.Fatal(err)
		}
	}
	noop := func(*proc.Thread, struct{}) (struct{}, error) { return struct{}{}, nil }

	// Warm both domains so later binds are remap-free, then park the table
	// one remap before the rollover and let the thread sync to it: after
	// the warm call the thread's cached generation is MaxUint64.
	for i := range sess {
		if _, err := Call(sess[i], noop, struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	vt.SetGenForTest(math.MaxUint64)
	if _, err := Call(sess[0], noop, struct{}{}); err != nil {
		t.Fatal(err)
	}
	if g := th.VTGen(); g != math.MaxUint64 {
		t.Fatalf("thread cached generation %d, want MaxUint64", g)
	}
	// One fresh mapping wraps the generation to zero — "older" than the
	// thread's cache under any ordered comparison, yet stale.
	s0 := vt.Syncs()
	tv := vt.AllocVirtual()
	if _, err := vt.Bind(tv); err != nil {
		t.Fatal(err)
	}
	vt.Unbind(tv)
	if g := vt.Gen(); g != 0 {
		t.Fatalf("vtable generation %d after rollover remap, want 0", g)
	}
	if _, err := Call(sess[0], noop, struct{}{}); err != nil {
		t.Fatal(err)
	}
	if vt.Syncs() <= s0 {
		t.Fatal("no lazy sync across the generation rollover: stale register restored")
	}
	if g := th.VTGen(); g != vt.Gen() {
		t.Fatalf("thread generation %d not resynced to %d", g, vt.Gen())
	}
	if got := th.PKRU(); got != pku.AllRestricted() {
		t.Fatalf("register %v outside the gate after rollover, want all-restricted", got)
	}
}
