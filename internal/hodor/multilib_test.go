package hodor

import (
	"errors"
	"testing"

	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
)

// Hodor supports several protected libraries in one process, each with its
// own key and domain (the paper's Hodor hosted both Silo and DPDK). These
// tests pin down the isolation matrix between two libraries sharing one
// heap.

type twoLibs struct {
	heap  *shm.Heap
	pt    *pku.PageTable
	domA  *Domain
	domB  *Domain
	libA  *Library
	libB  *Library
	p     *proc.Process
	sessA *Session
	sessB *Session
}

func newTwoLibs(t *testing.T) *twoLibs {
	t.Helper()
	heap := shm.New(8 * shm.PageSize)
	pt := pku.NewPageTable(heap)
	domA, err := NewDomain(heap, pt)
	if err != nil {
		t.Fatal(err)
	}
	domB, err := NewDomain(heap, pt)
	if err != nil {
		t.Fatal(err)
	}
	// Library A owns pages 0–3, library B pages 4–7.
	if err := domA.Protect(0, 4*shm.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := domB.Protect(4*shm.PageSize, 4*shm.PageSize); err != nil {
		t.Fatal(err)
	}
	libA := NewLibrary("libA", 0, domA)
	libB := NewLibrary("libB", 0, domB)
	p, err := proc.NewProcess(1000, heap, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Loader{}).Load(p, Binary{}, libA, libB)
	if err != nil {
		t.Fatal(err)
	}
	th := p.NewThread()
	sessA, err := res.Attach(th, libA)
	if err != nil {
		t.Fatal(err)
	}
	sessB, err := res.Attach(p.NewThread(), libB)
	if err != nil {
		t.Fatal(err)
	}
	return &twoLibs{heap: heap, pt: pt, domA: domA, domB: domB,
		libA: libA, libB: libB, p: p, sessA: sessA, sessB: sessB}
}

func TestTwoLibrariesDistinctKeys(t *testing.T) {
	tl := newTwoLibs(t)
	if tl.domA.Key == tl.domB.Key {
		t.Fatal("libraries must have distinct protection keys")
	}
}

func TestLibraryCannotTouchOtherLibrary(t *testing.T) {
	tl := newTwoLibs(t)
	g := pku.NewGuard(tl.heap, tl.pt)

	// Inside a call to library A, A's pages open up; B's stay shut.
	_, err := Call(tl.sessA, func(th *proc.Thread, _ struct{}) (struct{}, error) {
		if err := g.Store64(th.PKRU(), 0, 1); err != nil {
			return struct{}{}, err // own pages must be writable
		}
		if err := g.Store64(th.PKRU(), 4*shm.PageSize, 1); err == nil {
			return struct{}{}, errors.New("library A wrote library B's pages")
		}
		if _, err := g.Load64(th.PKRU(), 4*shm.PageSize); err == nil {
			return struct{}{}, errors.New("library A read library B's pages")
		}
		return struct{}{}, nil
	}, struct{}{})
	if err != nil {
		t.Fatal(err)
	}

	// And symmetrically for B.
	_, err = Call(tl.sessB, func(th *proc.Thread, _ struct{}) (struct{}, error) {
		if err := g.Store64(th.PKRU(), 4*shm.PageSize, 2); err != nil {
			return struct{}{}, err
		}
		if _, err := g.Load64(th.PKRU(), 0); err == nil {
			return struct{}{}, errors.New("library B read library A's pages")
		}
		return struct{}{}, nil
	}, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoisonIsPerLibrary(t *testing.T) {
	tl := newTwoLibs(t)
	_, err := Call(tl.sessA, func(*proc.Thread, struct{}) (struct{}, error) {
		panic("bug in library A")
	}, struct{}{})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
	if !tl.libA.Poisoned() {
		t.Fatal("library A should be poisoned")
	}
	if tl.libB.Poisoned() {
		t.Fatal("library B must be unaffected by A's crash")
	}
	if _, err := Call(tl.sessB, func(*proc.Thread, struct{}) (struct{}, error) {
		return struct{}{}, nil
	}, struct{}{}); err != nil {
		t.Fatalf("library B should keep serving: %v", err)
	}
}

func TestNestedCallsAcrossLibrariesRejected(t *testing.T) {
	// A thread inside library A cannot re-enter through another
	// trampoline (Hodor forbids nested protected calls on one thread).
	tl := newTwoLibs(t)
	th := tl.p.NewThread()
	res, err := (Loader{}).Load(tl.p, Binary{}, tl.libA, tl.libB)
	if err != nil {
		t.Fatal(err)
	}
	sa, _ := res.Attach(th, tl.libA)
	sb, _ := res.Attach(th, tl.libB)
	_, err = Call(sa, func(*proc.Thread, struct{}) (struct{}, error) {
		_, nestedErr := Call(sb, func(*proc.Thread, struct{}) (struct{}, error) {
			return struct{}{}, nil
		}, struct{}{})
		if nestedErr == nil {
			return struct{}{}, errors.New("nested cross-library call succeeded")
		}
		return struct{}{}, nil
	}, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
}
