package hodor

import (
	"errors"
	"fmt"
	"testing"

	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
)

// Crossing accounting regression (ISSUE 6 satellite): Crossings counts only
// completed round trips. The pre-fix accounting reported 2*calls, crediting
// rejected and crashed calls with crossings they never completed.
func TestCrossingAccountingCountsOnlyCompletedCalls(t *testing.T) {
	heap := shm.New(4 * shm.PageSize)
	pt := pku.NewPageTable(heap)
	dom, err := NewDomain(heap, pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.ProtectAll(); err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary("lib", 0, dom)
	p, err := proc.NewProcess(1000, heap, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Loader{}).Load(p, Binary{}, lib)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := res.Attach(p.NewThread(), lib)
	if err != nil {
		t.Fatal(err)
	}
	ok := func(*proc.Thread, struct{}) (struct{}, error) { return struct{}{}, nil }
	for i := 0; i < 5; i++ {
		if _, err := Call(sess, ok, struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	if m := lib.Metrics(); m.Crossings != 5 || m.Calls != 5 {
		t.Fatalf("crossings = %d, calls = %d after 5 completed calls; want 5, 5",
			m.Crossings, m.Calls)
	}
	// A crashed call never completes its round trip.
	_, err = Call(sess, func(*proc.Thread, struct{}) (struct{}, error) {
		panic("bug in library")
	}, struct{}{})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CrashError", err)
	}
	if m := lib.Metrics(); m.Crossings != 5 {
		t.Fatalf("crossings = %d after crash, want 5 (crashed call must not count)", m.Crossings)
	}
	// A rejected call (poisoned library) never crosses at all.
	if _, err := Call(sess, ok, struct{}{}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("err = %v, want ErrPoisoned", err)
	}
	m := lib.Metrics()
	if m.Crossings != 5 {
		t.Fatalf("crossings = %d after rejection, want 5", m.Crossings)
	}
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Rejected)
	}
}

// More protected libraries than hardware keys (ISSUE 6 acceptance): 24
// virtual domains on one 16-key page table, every domain isolated from
// every other (ProtFault on cross-domain access), with LRU evictions
// occurring and lazy PKRU synchronization keeping syncs well below the
// call count.
func TestVirtualDomainsBeyondHardwareKeys(t *testing.T) {
	const domains = 24
	heap := shm.New(domains * shm.PageSize)
	pt := pku.NewPageTable(heap)
	vt, err := pku.NewVTable(pt)
	if err != nil {
		t.Fatal(err)
	}
	libs := make([]*Library, domains)
	for i := range libs {
		dom := NewVirtualDomain(heap, pt, vt)
		if err := dom.Protect(uint64(i)*shm.PageSize, shm.PageSize); err != nil {
			t.Fatal(err)
		}
		libs[i] = NewLibrary(fmt.Sprintf("vlib%d", i), 0, dom)
	}
	p, err := proc.NewProcess(1000, heap, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (Loader{}).Load(p, Binary{}, libs...)
	if err != nil {
		t.Fatal(err)
	}
	th := p.NewThread()
	sess := make([]*Session, domains)
	for i := range libs {
		if sess[i], err = res.Attach(th, libs[i]); err != nil {
			t.Fatal(err)
		}
	}
	g := pku.NewGuard(heap, pt)
	touch := func(i int) {
		t.Helper()
		_, err := Call(sess[i], func(th *proc.Thread, _ struct{}) (struct{}, error) {
			own := uint64(i) * shm.PageSize
			if err := g.Store64(th.PKRU(), own, uint64(i)+1); err != nil {
				return struct{}{}, fmt.Errorf("own page of domain %d: %w", i, err)
			}
			other := uint64((i+1)%domains) * shm.PageSize
			_, lErr := g.Load64(th.PKRU(), other)
			if lErr == nil {
				return struct{}{}, fmt.Errorf("domain %d read domain %d's page", i, (i+1)%domains)
			}
			var pf *pku.ProtFault
			if !errors.As(lErr, &pf) {
				return struct{}{}, fmt.Errorf("cross-domain access: want ProtFault, got %w", lErr)
			}
			return struct{}{}, nil
		}, struct{}{})
		if err != nil {
			t.Fatalf("call into domain %d: %v", i, err)
		}
	}
	total := 0
	// Cold sweep: every domain once. 24 domains over 14 bindable hardware
	// keys forces evictions.
	for i := 0; i < domains; i++ {
		touch(i)
		total++
	}
	if vt.Evictions() == 0 {
		t.Fatal("24 domains over 14 hardware keys called without a single eviction")
	}
	// Warm working set: a sub-hardware-key set hammered repeatedly. Warm
	// binds do not move the mapping generation, so these calls must not
	// trigger lazy syncs.
	for r := 0; r < 10; r++ {
		for i := 0; i < 8; i++ {
			touch(i)
			total++
		}
	}
	if s := vt.Syncs(); s >= uint64(total) {
		t.Fatalf("lazy PKRU sync degenerated: %d syncs over %d calls (want syncs ≪ calls)", s, total)
	}
}
