package hodor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
)

// fixture assembles a heap, page table, domain, library, process and an
// attached session — the full Hodor stack around a trivial library.
type fixture struct {
	heap *shm.Heap
	pt   *pku.PageTable
	dom  *Domain
	lib  *Library
	p    *proc.Process
	res  *LoadResult
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	h := shm.New(8 * shm.PageSize)
	pt := pku.NewPageTable(h)
	dom, err := NewDomain(h, pt)
	if err != nil {
		t.Fatal(err)
	}
	if err := dom.ProtectAll(); err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary("libtest", 500, dom)
	p, err := proc.NewProcess(1000, h, 0x100000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Loader{}.Load(p, Binary{Name: "app"}, lib)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{heap: h, pt: pt, dom: dom, lib: lib, p: p, res: res}
}

func (f *fixture) session(t *testing.T) *Session {
	t.Helper()
	s, err := f.res.Attach(f.p.NewThread(), f.lib)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanWRPKRU(t *testing.T) {
	text := []byte{0x90, 0x0F, 0x01, 0xEF, 0x90, 0x90, 0x0F, 0x01, 0xEF}
	got := ScanWRPKRU(text)
	if len(got) != 2 || got[0] != 1 || got[1] != 6 {
		t.Fatalf("ScanWRPKRU = %v", got)
	}
	if ScanWRPKRU([]byte{0x0F, 0x01}) != nil {
		t.Fatal("partial opcode should not match")
	}
	if ScanWRPKRU(nil) != nil {
		t.Fatal("empty text")
	}
}

func TestLoaderBreakpoints(t *testing.T) {
	mkText := func(n int) ([]byte, []int) {
		var text []byte
		var offs []int
		for i := 0; i < n; i++ {
			offs = append(offs, len(text))
			text = append(text, wrpkruOpcode...)
			text = append(text, 0x90)
		}
		return text, offs
	}

	h := shm.New(shm.PageSize)
	p, _ := proc.NewProcess(1000, h, 0x10000)

	// Three strays: all covered by breakpoints, no fallback.
	text, offs := mkText(3)
	res, err := Loader{}.Load(p, Binary{Text: text})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakpoints) != 3 || res.PageFallback {
		t.Fatalf("3 strays: bps=%v fallback=%v", res.Breakpoints, res.PageFallback)
	}
	for _, off := range offs {
		if res.TryExecute(off) == nil {
			t.Fatalf("stray at %#x should trap", off)
		}
	}
	if res.TryExecute(1) != nil {
		t.Fatal("ordinary instruction should execute")
	}

	// Six strays: four breakpoints plus page-permission fallback.
	text, offs = mkText(6)
	res, err = Loader{}.Load(p, Binary{Text: text})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakpoints) != NumBreakpointRegs || !res.PageFallback {
		t.Fatalf("6 strays: bps=%v fallback=%v", res.Breakpoints, res.PageFallback)
	}
	for _, off := range offs {
		if res.TryExecute(off) == nil {
			t.Fatalf("stray at %#x should trap in fallback mode", off)
		}
	}

	// Sanctioned trampoline instances are not strays.
	text, offs = mkText(2)
	res, err = Loader{}.Load(p, Binary{Text: text, Trampolines: offs[:1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakpoints) != 1 || res.Breakpoints[0] != offs[1] {
		t.Fatalf("sanctioned: bps=%v", res.Breakpoints)
	}
}

func TestLoaderRunsInitWithOwnerEUID(t *testing.T) {
	h := shm.New(shm.PageSize)
	pt := pku.NewPageTable(h)
	dom, _ := NewDomain(h, pt)
	lib := NewLibrary("libtest", 500, dom)
	var seenEUID int
	lib.OnInit(func(p *proc.Process) error {
		seenEUID = p.EUID()
		return nil
	})
	p, _ := proc.NewProcess(1000, h, 0x10000)
	if _, err := (Loader{}).Load(p, Binary{}, lib); err != nil {
		t.Fatal(err)
	}
	if seenEUID != 500 {
		t.Fatalf("init ran with euid %d, want 500 (library owner)", seenEUID)
	}
	if p.EUID() != 1000 {
		t.Fatalf("euid not reverted: %d", p.EUID())
	}
}

func TestLoaderInitFailure(t *testing.T) {
	h := shm.New(shm.PageSize)
	pt := pku.NewPageTable(h)
	dom, _ := NewDomain(h, pt)
	lib := NewLibrary("libtest", 500, dom)
	lib.OnInit(func(*proc.Process) error { return errors.New("no such file") })
	p, _ := proc.NewProcess(1000, h, 0x10000)
	if _, err := (Loader{}).Load(p, Binary{}, lib); err == nil {
		t.Fatal("Load should propagate init failure")
	}
	if p.EUID() != 1000 {
		t.Fatal("euid must be reverted even on init failure")
	}
}

func TestTrampolineAmplifiesAndRestores(t *testing.T) {
	f := newFixture(t)
	s := f.session(t)
	th := s.Thread

	before := th.PKRU()
	if before.CanRead(f.dom.Key) {
		t.Fatal("application code should start without access")
	}

	inner := func(t *proc.Thread, _ struct{}) (pku.PKRU, error) {
		return t.PKRU(), nil
	}
	during, err := Call(s, inner, struct{}{})
	if err != nil {
		t.Fatal(err)
	}
	if !during.CanRead(f.dom.Key) || !during.CanWrite(f.dom.Key) {
		t.Fatalf("register inside call = %v: rights not amplified", during)
	}
	if th.PKRU() != before {
		t.Fatalf("register after call = %v, want %v", th.PKRU(), before)
	}
	if got := f.p.WRPKRUCount(); got != 2 {
		t.Fatalf("wrpkru executed %d times, want 2 (entry+exit)", got)
	}
	if s.InCall() || s.StackDepth() != 0 {
		t.Fatal("session should be idle after the call")
	}
}

func TestTrampolineEnforcement(t *testing.T) {
	// End to end: the same thread can touch protected memory inside a call
	// and faults outside it.
	f := newFixture(t)
	s := f.session(t)
	g := f.dom.Guard()
	th := s.Thread

	_, err := Call(s, func(t *proc.Thread, _ struct{}) (struct{}, error) {
		if err := g.Store64(t.PKRU(), 0, 42); err != nil {
			return struct{}{}, err
		}
		return struct{}{}, nil
	}, struct{}{})
	if err != nil {
		t.Fatalf("in-call store: %v", err)
	}
	if _, err := g.Load64(th.PKRU(), 0); err == nil {
		t.Fatal("out-of-call load should fault")
	}
	var pf *pku.ProtFault
	if err := g.Store64(th.PKRU(), 0, 1); !errors.As(err, &pf) {
		t.Fatalf("out-of-call store error = %v", err)
	}
}

func TestConcurrentThreadsIsolated(t *testing.T) {
	// A thread outside the library has no access even while another thread
	// of the same process is inside a call (paper §2).
	f := newFixture(t)
	s1 := f.session(t)
	outside := f.p.NewThread()
	g := f.dom.Guard()

	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := Call(s1, func(*proc.Thread, struct{}) (struct{}, error) {
			close(entered)
			<-release
			return struct{}{}, nil
		}, struct{}{})
		done <- err
	}()
	<-entered
	if _, err := g.Load64(outside.PKRU(), 0); err == nil {
		t.Fatal("concurrent outside thread must not gain access")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCrashInsideLibraryPoisons(t *testing.T) {
	f := newFixture(t)
	s := f.session(t)
	_, err := Call(s, func(*proc.Thread, struct{}) (struct{}, error) {
		panic(&shm.Fault{Off: 9999, Why: "segfault in library"})
	}, struct{}{})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CrashError", err)
	}
	if ce.Error() == "" {
		t.Fatal("empty crash message")
	}
	if !f.lib.Poisoned() {
		t.Fatal("library should be poisoned")
	}
	if _, err := Call(s, func(*proc.Thread, struct{}) (struct{}, error) {
		return struct{}{}, nil
	}, struct{}{}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("call into poisoned library = %v", err)
	}
	// Register must still have been restored by the crashed call.
	if s.Thread.PKRU().CanRead(f.dom.Key) {
		t.Fatal("register leaked amplified rights after crash")
	}
}

func TestKilledProcessCallRunsToCompletion(t *testing.T) {
	f := newFixture(t)
	s := f.session(t)
	killed := make(chan struct{})
	got, err := Call(s, func(*proc.Thread, struct{}) (string, error) {
		f.p.Kill()
		close(killed)
		return "completed", nil
	}, struct{}{})
	<-killed
	if err != nil || got != "completed" {
		t.Fatalf("call of killed process = %q, %v; want completion", got, err)
	}
	// New calls are refused.
	if _, err := Call(s, func(*proc.Thread, struct{}) (string, error) {
		return "", nil
	}, struct{}{}); err == nil {
		t.Fatal("killed process should not start new calls")
	}
}

func TestWatchdogPoisonsOverdueCalls(t *testing.T) {
	f := newFixture(t)
	f.lib.CallTimeout = 10 * time.Millisecond
	s := f.session(t)

	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		Call(s, func(*proc.Thread, struct{}) (struct{}, error) {
			close(entered)
			<-release
			return struct{}{}, nil
		}, struct{}{})
	}()
	<-entered

	// Process alive: the watchdog has nothing to do no matter how long the
	// call takes.
	if n := f.lib.WatchdogSweep(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("sweep of live process found %d overdue", n)
	}
	f.p.Kill()
	// Within the grace period: still fine.
	if n := f.lib.WatchdogSweep(time.Now()); n != 0 {
		t.Fatalf("sweep within grace period found %d overdue", n)
	}
	// Past the timeout: the call is overdue and the library is poisoned.
	if n := f.lib.WatchdogSweep(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("sweep past deadline found %d overdue, want 1", n)
	}
	if !f.lib.Poisoned() {
		t.Fatal("library should be poisoned after overdue call")
	}
	close(release)
}

func TestAttachValidation(t *testing.T) {
	f := newFixture(t)
	other, _ := proc.NewProcess(1000, f.heap, 0x200000)
	if _, err := f.res.Attach(other.NewThread(), f.lib); err == nil {
		t.Fatal("attach of foreign thread should fail")
	}
	unlinked := NewLibrary("other", 1, f.dom)
	if _, err := f.res.Attach(f.p.NewThread(), unlinked); !errors.Is(err, ErrNotLinked) {
		t.Fatalf("attach to unlinked library = %v", err)
	}
}

type copyArg struct {
	data   []byte
	copied bool
}

func (c copyArg) LibCopy() any {
	d := make([]byte, len(c.data))
	copy(d, c.data)
	return copyArg{data: d, copied: true}
}

func TestCopyArgsOption(t *testing.T) {
	f := newFixture(t)
	s := f.session(t)

	seen := func(th *proc.Thread, a copyArg) (bool, error) { return a.copied, nil }
	wasCopied, err := Call(s, seen, copyArg{data: []byte("k")})
	if err != nil || wasCopied {
		t.Fatalf("CopyArgs off: copied=%v err=%v", wasCopied, err)
	}
	f.lib.CopyArgs = true
	wasCopied, err = Call(s, seen, copyArg{data: []byte("k")})
	if err != nil || !wasCopied {
		t.Fatalf("CopyArgs on: copied=%v err=%v", wasCopied, err)
	}
}

func TestWrapRegistersEntry(t *testing.T) {
	f := newFixture(t)
	get := Wrap(f.lib, "memcached_get", func(*proc.Thread, string) (string, error) {
		return "v", nil
	})
	found := false
	for _, e := range f.lib.Entries() {
		if e == "memcached_get" {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry table = %v", f.lib.Entries())
	}
	s := f.session(t)
	v, err := get(s, "k")
	if err != nil || v != "v" {
		t.Fatalf("wrapped call = %q, %v", v, err)
	}
}

func TestDomainKeyExhaustionAndRelease(t *testing.T) {
	h := shm.New(shm.PageSize)
	pt := pku.NewPageTable(h)
	var doms []*Domain
	for {
		d, err := NewDomain(h, pt)
		if err != nil {
			break
		}
		doms = append(doms, d)
	}
	if len(doms) != pku.NumKeys-1 {
		t.Fatalf("allocated %d domains, want %d", len(doms), pku.NumKeys-1)
	}
	if err := doms[0].Release(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDomain(h, pt); err != nil {
		t.Fatalf("alloc after release: %v", err)
	}
}

func BenchmarkEmptyTrampolineCall(b *testing.B) {
	h := shm.New(shm.PageSize)
	pt := pku.NewPageTable(h)
	dom, _ := NewDomain(h, pt)
	lib := NewLibrary("libbench", 0, dom)
	p, _ := proc.NewProcess(0, h, 0x10000)
	res, _ := Loader{}.Load(p, Binary{}, lib)
	s, _ := res.Attach(p.NewThread(), lib)
	noop := func(*proc.Thread, struct{}) (struct{}, error) { return struct{}{}, nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Call(s, noop, struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleCall() {
	h := shm.New(shm.PageSize)
	pt := pku.NewPageTable(h)
	dom, _ := NewDomain(h, pt)
	dom.ProtectAll()
	lib := NewLibrary("libkv", 0, dom)
	p, _ := proc.NewProcess(1000, h, 0x10000)
	res, _ := Loader{}.Load(p, Binary{}, lib)
	s, _ := res.Attach(p.NewThread(), lib)

	put := Wrap(lib, "put", func(t *proc.Thread, v uint64) (struct{}, error) {
		dom.Heap.Store64(0, v) // raw access: rights were amplified
		return struct{}{}, nil
	})
	get := Wrap(lib, "get", func(t *proc.Thread, _ struct{}) (uint64, error) {
		return dom.Heap.Load64(0), nil
	})
	put(s, 41)
	v, _ := get(s, struct{}{})
	fmt.Println(v + 1)
	// Output: 42
}

func TestLibraryMetrics(t *testing.T) {
	f := newFixture(t)
	f.lib.Profile = true
	s := f.session(t)
	noop := func(*proc.Thread, struct{}) (struct{}, error) { return struct{}{}, nil }
	for i := 0; i < 10; i++ {
		if _, err := Call(s, noop, struct{}{}); err != nil {
			t.Fatal(err)
		}
	}
	m := f.lib.Metrics()
	if m.Calls != 10 || m.Crashes != 0 || m.Rejected != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.TotalTime <= 0 {
		t.Fatal("profiling enabled but no time accumulated")
	}
	// A crash increments both counters; subsequent calls are rejected.
	Call(s, func(*proc.Thread, struct{}) (struct{}, error) { panic("bug") }, struct{}{})
	Call(s, noop, struct{}{})
	m = f.lib.Metrics()
	if m.Calls != 11 || m.Crashes != 1 || m.Rejected != 1 {
		t.Fatalf("metrics after crash = %+v", m)
	}
}

func TestCrossingProfile(t *testing.T) {
	f := newFixture(t)
	f.lib.Profile = true
	s := f.session(t)
	entry := func(th *proc.Thread, x int) (int, error) { return x * 2, nil }
	const n = 10
	for i := 0; i < n; i++ {
		if v, err := Call(s, entry, i); err != nil || v != i*2 {
			t.Fatalf("call %d: %v %v", i, v, err)
		}
	}
	m := f.lib.Metrics()
	if m.Calls != n || m.Crossings != n {
		t.Fatalf("Calls=%d Crossings=%d, want %d/%d (one completed round trip per call)",
			m.Calls, m.Crossings, n, n)
	}
	if m.TotalTime <= 0 {
		t.Fatal("Profile should accumulate TotalTime")
	}
	cl := f.lib.CrossingLatency()
	if cl.Count() != 2*n {
		t.Fatalf("crossing samples = %d, want %d (one per rights transition)", cl.Count(), 2*n)
	}
	if cl.Percentile(99) <= 0 || cl.Mean() <= 0 {
		t.Fatalf("crossing latency p99=%v mean=%v", cl.Percentile(99), cl.Mean())
	}
}

func TestCrossingProfileOff(t *testing.T) {
	f := newFixture(t)
	s := f.session(t)
	entry := func(th *proc.Thread, x int) (int, error) { return x, nil }
	if _, err := Call(s, entry, 1); err != nil {
		t.Fatal(err)
	}
	m := f.lib.Metrics()
	if m.Crossings != 1 {
		t.Fatalf("Crossings = %d, want 1 (counted even without Profile)", m.Crossings)
	}
	if cl := f.lib.CrossingLatency(); cl.Count() != 0 {
		t.Fatalf("Profile off should record no crossing samples, got %d", cl.Count())
	}
	if m.TotalTime != 0 {
		t.Fatal("Profile off should not accumulate TotalTime")
	}
}
