package hodor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/histogram"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
)

// Library health states. A crash inside library code moves the library
// from Healthy to either Poisoned (no repair routine registered — the
// paper's "a crash that occurs inside library code is considered
// unrecoverable") or Recovering (a repair routine is registered; new
// calls park with a bounded wait while the routine quarantines and
// repairs the shared state, then the library resumes serving).
const (
	stateHealthy int32 = iota
	stateRecovering
	statePoisoned
)

// Library is a protected library: a protection domain, a set of entry
// points reachable only through trampolines, an initialization routine run
// by the loader, and the owner whose credentials gate access to the
// library's backing file.
type Library struct {
	Name     string
	OwnerUID int
	Domain   *Domain

	// CopyArgs enables the optional trampoline behaviour of copying
	// arguments into the library on the way in (paper §2). The paper's
	// memcached leaves this off and copies only security-sensitive
	// arguments manually; our benchmarks match, and an ablation bench
	// turns it on.
	CopyArgs bool

	// CallTimeout is the "generous timeout" after which the OS stops
	// honouring the run-to-completion guarantee for calls of a killed
	// process. Zero means the default of one second.
	CallTimeout time.Duration

	// RecoveryGrace bounds how long a call parks while the library is
	// Recovering before giving up with ErrRecoveryTimeout, and how long
	// the repair coordinator may wait for live calls to drain. Zero means
	// the default of five seconds.
	RecoveryGrace time.Duration

	// Profile enables per-call latency accounting and per-crossing
	// trampoline profiling (six clock reads per call — leave off for
	// production-shaped benchmarks). Per-crossing PKU costs are where
	// protected-library systems live or die (libmpk), so each rights
	// transition — amplify on the way in, restore on the way out — is
	// individually timed into a lock-free histogram.
	Profile bool

	initFn    func(*proc.Process) error
	entries   map[string]bool
	state     atomic.Int32
	recoverFn func(*CrashError) error

	calls      atomic.Uint64
	crossings  atomic.Uint64
	crashes    atomic.Uint64
	rejected   atomic.Uint64
	recoveries atomic.Uint64
	nanos      atomic.Uint64
	// cross holds per-crossing trampoline latency (entry amplification and
	// exit restoration timed separately); populated only when Profile is on.
	cross histogram.Atomic

	mu       sync.Mutex
	sessions []*Session
	// defunct records lock-owner tokens whose execution context died
	// mid-call (crash, or watchdog-reaped zombie). The repair coordinator
	// uses it to decide which heap-resident locks are safe to break.
	defunct map[uint64]bool
}

// Metrics is a snapshot of a library's call accounting.
type Metrics struct {
	Calls      uint64 // completed trampolined calls (including failed ones)
	Crashes    uint64 // panics inside library code
	Rejected   uint64 // calls refused (poisoned library, killed process, …)
	Recoveries uint64 // completed quarantine→repair→resume cycles
	// Crossings counts completed round-trip gate crossings: one per call
	// that retired without crashing. Each round trip comprises two PKRU
	// transitions (amplify on entry, restore on exit), timed individually
	// in CrossingLatency. Rejected calls never cross; crashed calls never
	// complete theirs. Crossings/ops is the figure of merit batching
	// drives down (ISSUE 6: < 0.1 on the batched 95/5 mix).
	Crossings uint64
	// TotalTime is accumulated in-library time; zero unless Profile is on.
	TotalTime time.Duration
}

// Metrics returns the library's call counters.
func (l *Library) Metrics() Metrics {
	return Metrics{
		Calls:      l.calls.Load(),
		Crashes:    l.crashes.Load(),
		Rejected:   l.rejected.Load(),
		Recoveries: l.recoveries.Load(),
		Crossings:  l.crossings.Load(),
		TotalTime:  time.Duration(l.nanos.Load()),
	}
}

// CrossingLatency returns the distribution of individual trampoline
// crossing times (one sample per rights transition). Empty unless Profile
// is on.
func (l *Library) CrossingLatency() histogram.Snapshot { return l.cross.Snapshot() }

// NewLibrary creates a library in the given domain.
func NewLibrary(name string, ownerUID int, d *Domain) *Library {
	return &Library{
		Name:        name,
		OwnerUID:    ownerUID,
		Domain:      d,
		CallTimeout: time.Second,
		entries:     make(map[string]bool),
		defunct:     make(map[uint64]bool),
	}
}

// OnInit registers the library's initialization routine. The loader runs it
// once per process, under the library owner's effective UID.
func (l *Library) OnInit(fn func(*proc.Process) error) { l.initFn = fn }

// OnRecover registers the repair routine that turns a crash inside library
// code from a terminal event into a quarantine→repair→resume cycle. The
// routine runs on its own goroutine while new calls park; if it returns an
// error (or panics) the library is poisoned as before. With no routine
// registered, any crash permanently poisons the library.
//
// Register before the library serves calls; the field is read without
// synchronization on the crash path.
func (l *Library) OnRecover(fn func(*CrashError) error) { l.recoverFn = fn }

// Entries returns the names of the registered entry points, the analog of
// the HODOR_FUNC_EXPORT table.
func (l *Library) Entries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.entries))
	for n := range l.entries {
		names = append(names, n)
	}
	return names
}

// Poisoned reports whether a crash inside library code has made the library
// unrecoverable.
func (l *Library) Poisoned() bool { return l.state.Load() == statePoisoned }

// Recovering reports whether a repair cycle is in progress; calls made now
// park until it completes (bounded by RecoveryGrace).
func (l *Library) Recovering() bool { return l.state.Load() == stateRecovering }

// ErrPoisoned is returned for calls into a library that has crashed.
var ErrPoisoned = errors.New("hodor: library poisoned by a crash inside library code")

// ErrRecoveryTimeout is returned when a call waited longer than
// RecoveryGrace for an in-progress repair to finish. The library is not
// poisoned; retrying is reasonable.
var ErrRecoveryTimeout = errors.New("hodor: library still recovering after grace period")

// ErrNotLinked is returned when a thread calls into a library that its
// process never loaded.
var ErrNotLinked = errors.New("hodor: library not linked into this process")

// Session binds one client thread to one library: the per-thread state a
// trampoline needs (saved register, the library-side stack, and the
// in-flight call record the watchdog inspects).
type Session struct {
	Lib    *Library
	Thread *proc.Thread

	linked bool
	// callStart is the wall-clock start (UnixNano) of the in-flight call,
	// or 0 when the thread is in application code.
	callStart atomic.Int64
	// stackDepth models the trampoline's switch to the library-side stack.
	stackDepth int
	savedPKRU  uint32
	// reaped marks a session whose in-flight call outlived the watchdog
	// timeout after its process was killed: the OS has terminated the
	// thread, so the call will never retire and recovery must not wait
	// for it (nor should a later sweep report it again).
	reaped atomic.Bool
}

// InCall reports whether the session's thread is inside a library call.
func (s *Session) InCall() bool { return s.callStart.Load() != 0 }

// StackDepth returns the current library-stack depth (0 in application code).
func (s *Session) StackDepth() int { return s.stackDepth }

// attach registers a session; the loader calls this for linked processes.
func (l *Library) attach(t *proc.Thread) *Session {
	s := &Session{Lib: l, Thread: t, linked: true}
	l.mu.Lock()
	l.sessions = append(l.sessions, s)
	l.mu.Unlock()
	return s
}

// A CrashError wraps a panic that escaped library code: a segfault inside a
// protected-library call.
type CrashError struct {
	Lib   string
	Cause any
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("hodor: crash inside library %q: %v", e.Lib, e.Cause)
}

// Copier is implemented by argument types that know how to copy themselves
// into the library domain, used when Library.CopyArgs is enabled.
type Copier interface{ LibCopy() any }

func (l *Library) grace() time.Duration {
	if l.RecoveryGrace > 0 {
		return l.RecoveryGrace
	}
	return 5 * time.Second
}

func (l *Library) callTimeout() time.Duration {
	if l.CallTimeout > 0 {
		return l.CallTimeout
	}
	return time.Second
}

// admit gates a call on library health. It publishes the session's
// in-flight record *before* loading the state word so that the repair
// drain (which reads states in the opposite order) can never miss a call
// that slipped past a Healthy check: either admit sees the Recovering
// state, or the drain sees the published callStart.
func (l *Library) admit(s *Session, start time.Time) error {
	deadline := start.Add(l.grace())
	for {
		s.callStart.Store(start.UnixNano())
		switch l.state.Load() {
		case stateHealthy:
			return nil
		case statePoisoned:
			s.callStart.Store(0)
			return ErrPoisoned
		}
		// Recovering: withdraw the in-flight record before parking so the
		// drain does not count waiters as live calls, then wait bounded.
		s.callStart.Store(0)
		if s.Thread.Proc.Killed() {
			return &proc.ErrKilled{PID: s.Thread.Proc.ID}
		}
		if time.Now().After(deadline) {
			return ErrRecoveryTimeout
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Call runs fn as a protected-library call on session s, performing the full
// trampoline sequence:
//
//  1. verify the library is linked, healthy, and the process alive;
//  2. switch to the library-side stack;
//  3. wrpkru: amplify rights to the library's domain;
//  4. optionally copy arguments into the library (CopyArgs);
//  5. run the entry point;
//  6. wrpkru: restore the saved register, switch stacks back.
//
// If the process is killed while the call is in flight, the call completes
// and its result is returned; the thread is only then subject to the kill
// (the caller observes it at its next CheckAlive). If fn panics, the panic
// is converted into a CrashError; the library is poisoned, or — when a
// repair routine is registered via OnRecover — enters Recovering and
// subsequent calls park until repair completes.
func Call[A, R any](s *Session, fn func(*proc.Thread, A) (R, error), arg A) (res R, err error) {
	if !s.linked {
		return res, ErrNotLinked
	}
	l := s.Lib
	t := s.Thread
	if eErr := t.EnterLibrary(); eErr != nil {
		l.rejected.Add(1)
		return res, eErr
	}
	start := time.Now()
	if aErr := l.admit(s, start); aErr != nil {
		l.rejected.Add(1)
		t.ExitLibrary()
		return res, aErr
	}
	// Resolve the domain's hardware key. Virtual domains bind their key
	// through the vtable for the duration of the call (the pin keeps the
	// mapping from being recycled out from under the amplified thread);
	// a bind failure — every hardware key pinned — rejects the call.
	hw := l.Domain.Key
	vt := l.Domain.VT
	if vt != nil {
		k, bErr := vt.Bind(l.Domain.VKey)
		if bErr != nil {
			l.rejected.Add(1)
			s.callStart.Store(0)
			t.ExitLibrary()
			return res, bErr
		}
		hw = k
	}
	l.calls.Add(1)
	// Entry crossing: stack switch plus rights amplification, timed from
	// here (not from start — admit may have parked through a recovery, and
	// that wait is not crossing cost).
	var crossStart time.Time
	if l.Profile {
		crossStart = time.Now()
	}
	s.stackDepth++ // switch to the library-side stack
	saved := t.PKRU()
	if vt != nil {
		// Lazy PKRU synchronization (libmpk): a remap since this thread
		// last synced means its register may grant hardware keys whose
		// meaning changed. Scrub to the all-restricted baseline once,
		// instead of rewriting every thread's register at remap time.
		if g := vt.Gen(); t.VTGen() != g {
			saved = pku.AllRestricted()
			proc.WRPKRU(t, saved)
			vt.NoteSync()
			t.SetVTGen(g)
		}
	}
	s.savedPKRU = uint32(saved)
	proc.WRPKRU(t, saved.WithAccess(hw))
	if l.Profile {
		l.cross.Record(time.Since(crossStart))
	}

	defer func() {
		crashed := recover()
		if crashed != nil {
			l.crashes.Add(1)
			err = &CrashError{Lib: l.Name, Cause: crashed}
			// Record the token defunct while the in-flight record is
			// still published: a repair drain that observes this call
			// retired must also observe the token defunct, or the
			// crasher's held locks would survive the drain's final
			// ForceReleaseDeadLocks with nothing left to retrigger
			// recovery. (TokenDefunct still reports the token alive
			// until callStart clears, so the locks are not broken under
			// this unwinding call.)
			l.markDefunct(t.LockOwner())
		}
		var exitStart time.Time
		if l.Profile {
			l.nanos.Add(uint64(time.Since(start)))
			exitStart = time.Now()
		}
		proc.WRPKRU(t, saved)
		if vt != nil {
			vt.Unbind(l.Domain.VKey)
		}
		s.stackDepth--
		s.callStart.Store(0)
		t.ExitLibrary()
		if l.Profile {
			// Exit crossing: rights restoration plus stack switch back.
			l.cross.Record(time.Since(exitStart))
		}
		if crashed != nil {
			// After the in-flight record is retired: the repair drain
			// must not wait for this call before repairing.
			l.beginRecovery(crashed)
		} else {
			l.crossings.Add(1)
		}
	}()

	if l.CopyArgs {
		if c, ok := any(arg).(Copier); ok {
			arg = c.LibCopy().(A)
		}
	}
	res, err = fn(t, arg)
	return res, err
}

// markDefunct records a lock-owner token whose execution context died
// mid-call. Callers on the crash path must record the token *before*
// retiring the session's in-flight record (Call's defer does), so any
// repair drain that sees the call gone also sees its token defunct.
func (l *Library) markDefunct(token uint64) {
	l.mu.Lock()
	l.defunct[token] = true
	l.mu.Unlock()
}

// beginRecovery transitions the library after a crash: to Poisoned when no
// repair routine is registered, otherwise to Recovering (if not already
// there) with the repair running on its own goroutine.
func (l *Library) beginRecovery(cause any) {
	l.mu.Lock()
	fn := l.recoverFn
	l.mu.Unlock()
	if fn == nil {
		l.state.Store(statePoisoned)
		return
	}
	if l.state.CompareAndSwap(stateHealthy, stateRecovering) {
		go l.runRepair(&CrashError{Lib: l.Name, Cause: cause})
	}
}

// noteCrash records a defunct token and transitions the library — the
// combined form used where no in-flight record ordering is at stake.
func (l *Library) noteCrash(token uint64, cause any) {
	l.markDefunct(token)
	l.beginRecovery(cause)
}

// runRepair drives one quarantine→repair→resume cycle. A repair that
// fails or panics poisons the library — the pre-recovery behaviour.
func (l *Library) runRepair(cause *CrashError) {
	var err error
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hodor: repair routine panicked: %v", r)
		}
		if err != nil {
			l.state.Store(statePoisoned)
			return
		}
		l.recoveries.Add(1)
		l.state.Store(stateHealthy)
	}()
	err = l.recoverFn(cause)
}

// TriggerRecovery marks token defunct and starts a recovery cycle (or
// poisons the library when no repair routine is registered). It is for
// crashes observed outside a trampolined call — e.g. the store owner's
// maintenance thread faulting — where no Call defer sees the panic.
func (l *Library) TriggerRecovery(token uint64, cause any) {
	l.crashes.Add(1)
	l.noteCrash(token, cause)
}

// TokenDefunct reports whether a lock-owner token belongs to an execution
// context that can no longer run library code: it crashed mid-call, was
// reaped by the watchdog, or belongs to a killed process with no call in
// flight. A live in-flight call — even of a killed process, which runs to
// completion — is never defunct, so breaking the locks of defunct tokens
// cannot race with their owners.
func (l *Library) TokenDefunct(token uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.sessions {
		if s.Thread.LockOwner() != token {
			continue
		}
		if s.reaped.Load() {
			return true
		}
		if s.callStart.Load() != 0 {
			return false // running; run-to-completion protects it
		}
		if s.Thread.Proc.Killed() {
			return true
		}
	}
	return l.defunct[token]
}

// TokenActive reports whether the token's session has a live call in
// flight right now. Liveness oracles layered above TokenDefunct (which
// consult process-level kill state for threads hodor has never seen)
// must check this first: an active call may belong to a killed process
// and still runs to completion.
func (l *Library) TokenActive(token uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.sessions {
		if s.Thread.LockOwner() == token && !s.reaped.Load() && s.callStart.Load() != 0 {
			return true
		}
	}
	return false
}

// DrainLiveCalls waits for every live in-flight call to retire, so that a
// repair pass can assume exclusive access to the shared state. Calls of
// killed processes that outlive the watchdog timeout are reaped (marked
// defunct) rather than waited for. Returns false if live calls remain
// when the timeout expires.
func (l *Library) DrainLiveCalls(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if !l.sweepLiveCalls(time.Now()) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// sweepLiveCalls reports whether any live call is still in flight,
// reaping overdue calls of killed processes along the way.
func (l *Library) sweepLiveCalls(now time.Time) bool {
	timeout := l.callTimeout()
	l.mu.Lock()
	sessions := make([]*Session, len(l.sessions))
	copy(sessions, l.sessions)
	l.mu.Unlock()
	live := false
	for _, s := range sessions {
		start := s.callStart.Load()
		if start == 0 || s.reaped.Load() {
			continue
		}
		if s.Thread.Proc.Killed() && now.Sub(time.Unix(0, start)) > timeout {
			s.reaped.Store(true)
			l.mu.Lock()
			l.defunct[s.Thread.LockOwner()] = true
			l.mu.Unlock()
			continue
		}
		live = true
	}
	return live
}

// RegisterEntry records an entry point name in the library's export table
// (the HODOR_FUNC_EXPORT analog). Wrap calls it automatically.
func (l *Library) RegisterEntry(name string) {
	l.mu.Lock()
	l.entries[name] = true
	l.mu.Unlock()
}

// Wrap builds a trampolined version of an entry point and records it in the
// library's export table. The returned function is what the application
// links against.
func Wrap[A, R any](l *Library, name string, fn func(*proc.Thread, A) (R, error)) func(*Session, A) (R, error) {
	l.RegisterEntry(name)
	return func(s *Session, arg A) (R, error) {
		return Call(s, fn, arg)
	}
}

// WatchdogSweep enforces the execution-time limit on the run-to-completion
// guarantee: if a thread of a killed process has been inside a library call
// for longer than CallTimeout, the OS gives up waiting and terminates it.
// Since the thread may hold locks, this poisons the library — or, with a
// repair routine registered, triggers a recovery cycle. now is injected
// for testability. It returns the number of overdue calls found.
func (l *Library) WatchdogSweep(now time.Time) int {
	timeout := l.callTimeout()
	l.mu.Lock()
	sessions := make([]*Session, len(l.sessions))
	copy(sessions, l.sessions)
	l.mu.Unlock()
	overdue := 0
	for _, s := range sessions {
		start := s.callStart.Load()
		if start == 0 || s.reaped.Load() || !s.Thread.Proc.Killed() {
			continue
		}
		if now.Sub(time.Unix(0, start)) > timeout {
			overdue++
			s.reaped.Store(true)
			l.noteCrash(s.Thread.LockOwner(), "watchdog: overdue call of killed process")
		}
	}
	return overdue
}
