package hodor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/proc"
)

// Library is a protected library: a protection domain, a set of entry
// points reachable only through trampolines, an initialization routine run
// by the loader, and the owner whose credentials gate access to the
// library's backing file.
type Library struct {
	Name     string
	OwnerUID int
	Domain   *Domain

	// CopyArgs enables the optional trampoline behaviour of copying
	// arguments into the library on the way in (paper §2). The paper's
	// memcached leaves this off and copies only security-sensitive
	// arguments manually; our benchmarks match, and an ablation bench
	// turns it on.
	CopyArgs bool

	// CallTimeout is the "generous timeout" after which the OS stops
	// honouring the run-to-completion guarantee for calls of a killed
	// process. Zero means the default of one second.
	CallTimeout time.Duration

	// Profile enables per-call latency accounting (two clock reads per
	// call, ~40 ns — leave off for production-shaped benchmarks).
	Profile bool

	initFn   func(*proc.Process) error
	entries  map[string]bool
	poisoned atomic.Bool

	calls    atomic.Uint64
	crashes  atomic.Uint64
	rejected atomic.Uint64
	nanos    atomic.Uint64

	mu       sync.Mutex
	sessions []*Session
}

// Metrics is a snapshot of a library's call accounting.
type Metrics struct {
	Calls    uint64 // completed trampolined calls (including failed ones)
	Crashes  uint64 // panics inside library code
	Rejected uint64 // calls refused (poisoned library, killed process, …)
	// TotalTime is accumulated in-library time; zero unless Profile is on.
	TotalTime time.Duration
}

// Metrics returns the library's call counters.
func (l *Library) Metrics() Metrics {
	return Metrics{
		Calls:     l.calls.Load(),
		Crashes:   l.crashes.Load(),
		Rejected:  l.rejected.Load(),
		TotalTime: time.Duration(l.nanos.Load()),
	}
}

// NewLibrary creates a library in the given domain.
func NewLibrary(name string, ownerUID int, d *Domain) *Library {
	return &Library{
		Name:        name,
		OwnerUID:    ownerUID,
		Domain:      d,
		CallTimeout: time.Second,
		entries:     make(map[string]bool),
	}
}

// OnInit registers the library's initialization routine. The loader runs it
// once per process, under the library owner's effective UID.
func (l *Library) OnInit(fn func(*proc.Process) error) { l.initFn = fn }

// Entries returns the names of the registered entry points, the analog of
// the HODOR_FUNC_EXPORT table.
func (l *Library) Entries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.entries))
	for n := range l.entries {
		names = append(names, n)
	}
	return names
}

// Poisoned reports whether a crash inside library code has made the library
// unrecoverable (paper §2: "a crash that occurs inside library code is
// considered unrecoverable").
func (l *Library) Poisoned() bool { return l.poisoned.Load() }

// ErrPoisoned is returned for calls into a library that has crashed.
var ErrPoisoned = errors.New("hodor: library poisoned by a crash inside library code")

// ErrNotLinked is returned when a thread calls into a library that its
// process never loaded.
var ErrNotLinked = errors.New("hodor: library not linked into this process")

// Session binds one client thread to one library: the per-thread state a
// trampoline needs (saved register, the library-side stack, and the
// in-flight call record the watchdog inspects).
type Session struct {
	Lib    *Library
	Thread *proc.Thread

	linked bool
	// callStart is the wall-clock start (UnixNano) of the in-flight call,
	// or 0 when the thread is in application code.
	callStart atomic.Int64
	// stackDepth models the trampoline's switch to the library-side stack.
	stackDepth int
	savedPKRU  uint32
}

// InCall reports whether the session's thread is inside a library call.
func (s *Session) InCall() bool { return s.callStart.Load() != 0 }

// StackDepth returns the current library-stack depth (0 in application code).
func (s *Session) StackDepth() int { return s.stackDepth }

// attach registers a session; the loader calls this for linked processes.
func (l *Library) attach(t *proc.Thread) *Session {
	s := &Session{Lib: l, Thread: t, linked: true}
	l.mu.Lock()
	l.sessions = append(l.sessions, s)
	l.mu.Unlock()
	return s
}

// A CrashError wraps a panic that escaped library code: a segfault inside a
// protected-library call, which poisons the library.
type CrashError struct {
	Lib   string
	Cause any
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("hodor: crash inside library %q: %v", e.Lib, e.Cause)
}

// Copier is implemented by argument types that know how to copy themselves
// into the library domain, used when Library.CopyArgs is enabled.
type Copier interface{ LibCopy() any }

// Call runs fn as a protected-library call on session s, performing the full
// trampoline sequence:
//
//  1. verify the library is linked, healthy, and the process alive;
//  2. switch to the library-side stack;
//  3. wrpkru: amplify rights to the library's domain;
//  4. optionally copy arguments into the library (CopyArgs);
//  5. run the entry point;
//  6. wrpkru: restore the saved register, switch stacks back.
//
// If the process is killed while the call is in flight, the call completes
// and its result is returned; the thread is only then subject to the kill
// (the caller observes it at its next CheckAlive). If fn panics, the panic
// is converted into a CrashError and the library is poisoned.
func Call[A, R any](s *Session, fn func(*proc.Thread, A) (R, error), arg A) (res R, err error) {
	if !s.linked {
		return res, ErrNotLinked
	}
	l := s.Lib
	if l.poisoned.Load() {
		l.rejected.Add(1)
		return res, ErrPoisoned
	}
	t := s.Thread
	if eErr := t.EnterLibrary(); eErr != nil {
		l.rejected.Add(1)
		return res, eErr
	}
	l.calls.Add(1)
	var profStart time.Time
	if l.Profile {
		profStart = time.Now()
	}
	s.callStart.Store(time.Now().UnixNano())
	s.stackDepth++ // switch to the library-side stack
	saved := t.PKRU()
	s.savedPKRU = uint32(saved)
	proc.WRPKRU(t, saved.WithAccess(l.Domain.Key))

	defer func() {
		if r := recover(); r != nil {
			// A fault inside library code: unrecoverable.
			l.poisoned.Store(true)
			l.crashes.Add(1)
			err = &CrashError{Lib: l.Name, Cause: r}
		}
		if l.Profile {
			l.nanos.Add(uint64(time.Since(profStart)))
		}
		proc.WRPKRU(t, saved)
		s.stackDepth--
		s.callStart.Store(0)
		t.ExitLibrary()
	}()

	if l.CopyArgs {
		if c, ok := any(arg).(Copier); ok {
			arg = c.LibCopy().(A)
		}
	}
	res, err = fn(t, arg)
	return res, err
}

// RegisterEntry records an entry point name in the library's export table
// (the HODOR_FUNC_EXPORT analog). Wrap calls it automatically.
func (l *Library) RegisterEntry(name string) {
	l.mu.Lock()
	l.entries[name] = true
	l.mu.Unlock()
}

// Wrap builds a trampolined version of an entry point and records it in the
// library's export table. The returned function is what the application
// links against.
func Wrap[A, R any](l *Library, name string, fn func(*proc.Thread, A) (R, error)) func(*Session, A) (R, error) {
	l.RegisterEntry(name)
	return func(s *Session, arg A) (R, error) {
		return Call(s, fn, arg)
	}
}

// WatchdogSweep enforces the execution-time limit on the run-to-completion
// guarantee: if a thread of a killed process has been inside a library call
// for longer than CallTimeout, the OS gives up waiting and terminates it —
// which, since the thread may hold locks, poisons the library. now is
// injected for testability. It returns the number of overdue calls found.
func (l *Library) WatchdogSweep(now time.Time) int {
	timeout := l.CallTimeout
	if timeout == 0 {
		timeout = time.Second
	}
	l.mu.Lock()
	sessions := make([]*Session, len(l.sessions))
	copy(sessions, l.sessions)
	l.mu.Unlock()
	overdue := 0
	for _, s := range sessions {
		start := s.callStart.Load()
		if start == 0 || !s.Thread.Proc.Killed() {
			continue
		}
		if now.Sub(time.Unix(0, start)) > timeout {
			overdue++
			l.poisoned.Store(true)
		}
	}
	return overdue
}
