package hodor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/histogram"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
)

// Library health states. A crash inside library code moves the library
// from Healthy to either Poisoned (no repair routine registered — the
// paper's "a crash that occurs inside library code is considered
// unrecoverable") or Recovering (a repair routine is registered; new
// calls park with a bounded wait while the routine quarantines and
// repairs the shared state, then the library resumes serving).
const (
	stateHealthy int32 = iota
	stateRecovering
	statePoisoned
)

// Library is a protected library: a protection domain, a set of entry
// points reachable only through trampolines, an initialization routine run
// by the loader, and the owner whose credentials gate access to the
// library's backing file.
type Library struct {
	Name     string
	OwnerUID int
	Domain   *Domain

	// CopyArgs enables the optional trampoline behaviour of copying
	// arguments into the library on the way in (paper §2). The paper's
	// memcached leaves this off and copies only security-sensitive
	// arguments manually; our benchmarks match, and an ablation bench
	// turns it on.
	CopyArgs bool

	// CallTimeout is the "generous timeout" after which the OS stops
	// honouring the run-to-completion guarantee for calls of a killed
	// process. Zero means the default of one second.
	CallTimeout time.Duration

	// RecoveryGrace bounds how long a call parks while the library is
	// Recovering before giving up with ErrRecoveryTimeout, and how long
	// the repair coordinator may wait for live calls to drain. Zero means
	// the default of five seconds.
	RecoveryGrace time.Duration

	// LiveCallBudget is the per-call execution budget for *live* sessions
	// (gate hardening): a call still in flight after the budget draws a
	// warning, after 1.5x the budget an abort request (cooperative library
	// code — the batch dispatcher — polls Session.AbortRequested and bails
	// out), and after 2x the budget the watchdog reaps the call exactly as
	// it reaps overdue calls of killed processes: the session is fenced,
	// its locks are broken, and the store repairs online. Zero disables
	// live-deadline enforcement (the pre-hardening behaviour, where a
	// tenant spinning inside the gate wedges everyone forever).
	LiveCallBudget time.Duration

	// MaxInFlight caps concurrently admitted calls across all sessions;
	// excess admissions fail fast with ErrOverloaded. Zero means unlimited.
	MaxInFlight int

	// TenantQuota caps concurrently admitted calls per tenant (per client
	// process); excess admissions fail with ErrTenantQuota so one noisy
	// tenant cannot starve its siblings of gate slots. Zero means unlimited.
	TenantQuota int

	// Profile enables per-call latency accounting and per-crossing
	// trampoline profiling (six clock reads per call — leave off for
	// production-shaped benchmarks). Per-crossing PKU costs are where
	// protected-library systems live or die (libmpk), so each rights
	// transition — amplify on the way in, restore on the way out — is
	// individually timed into a lock-free histogram.
	Profile bool

	initFn    func(*proc.Process) error
	entries   map[string]bool
	state     atomic.Int32
	recoverFn func(*CrashError) error

	calls      atomic.Uint64
	crossings  atomic.Uint64
	crashes    atomic.Uint64
	rejected   atomic.Uint64
	recoveries atomic.Uint64
	nanos      atomic.Uint64
	// Gate-hardening counters (the containment metrics plane).
	attacksContained atomic.Uint64 // attacks provably denied (fence/pku/forged-register/zombie re-entry)
	tenantReaps      atomic.Uint64 // live calls reaped for exceeding their execution budget
	tenantWarns      atomic.Uint64 // live calls that drew a budget warning
	tenantAborts     atomic.Uint64 // live calls asked to abort cooperatively
	gateRejections   atomic.Uint64 // admissions refused for overload/quota/pin exhaustion
	inflight         atomic.Int64  // currently admitted calls (MaxInFlight accounting)
	// cross holds per-crossing trampoline latency (entry amplification and
	// exit restoration timed separately); populated only when Profile is on.
	cross histogram.Atomic

	mu       sync.Mutex
	sessions []*Session
	// defunct records lock-owner tokens whose execution context died
	// mid-call (crash, or watchdog-reaped zombie). The repair coordinator
	// uses it to decide which heap-resident locks are safe to break.
	defunct map[uint64]bool
	// tenantLoad tracks concurrently admitted calls per client process for
	// TenantQuota accounting; sessions cache their process's counter.
	tenantLoad map[int]*atomic.Int64
}

// Metrics is a snapshot of a library's call accounting.
type Metrics struct {
	Calls      uint64 // completed trampolined calls (including failed ones)
	Crashes    uint64 // panics inside library code
	Rejected   uint64 // calls refused (poisoned library, killed process, …)
	Recoveries uint64 // completed quarantine→repair→resume cycles
	// Crossings counts completed round-trip gate crossings: one per call
	// that retired without crashing. Each round trip comprises two PKRU
	// transitions (amplify on entry, restore on exit), timed individually
	// in CrossingLatency. Rejected calls never cross; crashed calls never
	// complete theirs. Crossings/ops is the figure of merit batching
	// drives down (ISSUE 6: < 0.1 on the batched 95/5 mix).
	Crossings uint64
	// TotalTime is accumulated in-library time; zero unless Profile is on.
	TotalTime time.Duration
	// AttacksContained counts provably denied hostile actions: protection
	// faults and lock-fence denials unwinding a call, forged registers
	// scrubbed at the gate, zombie re-entry refusals, and live-budget
	// reaps. Each is an attack the hardening layer contained rather than
	// a fault it merely survived.
	AttacksContained uint64
	// TenantCallsReaped counts live calls terminated for exceeding their
	// LiveCallBudget; TenantWarns and TenantAborts count the escalation
	// steps (warn, cooperative abort request) that preceded reaps.
	TenantCallsReaped uint64
	TenantWarns       uint64
	TenantAborts      uint64
	// GateRejections counts admissions refused as backpressure: gate
	// saturation (MaxInFlight), per-tenant quota, or hardware-key pin
	// exhaustion. All are retryable, none poison anything.
	GateRejections uint64
}

// Metrics returns the library's call counters.
func (l *Library) Metrics() Metrics {
	return Metrics{
		Calls:             l.calls.Load(),
		Crashes:           l.crashes.Load(),
		Rejected:          l.rejected.Load(),
		Recoveries:        l.recoveries.Load(),
		Crossings:         l.crossings.Load(),
		TotalTime:         time.Duration(l.nanos.Load()),
		AttacksContained:  l.attacksContained.Load(),
		TenantCallsReaped: l.tenantReaps.Load(),
		TenantWarns:       l.tenantWarns.Load(),
		TenantAborts:      l.tenantAborts.Load(),
		GateRejections:    l.gateRejections.Load(),
	}
}

// CrossingLatency returns the distribution of individual trampoline
// crossing times (one sample per rights transition). Empty unless Profile
// is on.
func (l *Library) CrossingLatency() histogram.Snapshot { return l.cross.Snapshot() }

// NewLibrary creates a library in the given domain.
func NewLibrary(name string, ownerUID int, d *Domain) *Library {
	return &Library{
		Name:        name,
		OwnerUID:    ownerUID,
		Domain:      d,
		CallTimeout: time.Second,
		entries:     make(map[string]bool),
		defunct:     make(map[uint64]bool),
	}
}

// OnInit registers the library's initialization routine. The loader runs it
// once per process, under the library owner's effective UID.
func (l *Library) OnInit(fn func(*proc.Process) error) { l.initFn = fn }

// OnRecover registers the repair routine that turns a crash inside library
// code from a terminal event into a quarantine→repair→resume cycle. The
// routine runs on its own goroutine while new calls park; if it returns an
// error (or panics) the library is poisoned as before. With no routine
// registered, any crash permanently poisons the library.
//
// Register before the library serves calls; the field is read without
// synchronization on the crash path.
func (l *Library) OnRecover(fn func(*CrashError) error) { l.recoverFn = fn }

// Entries returns the names of the registered entry points, the analog of
// the HODOR_FUNC_EXPORT table.
func (l *Library) Entries() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.entries))
	for n := range l.entries {
		names = append(names, n)
	}
	return names
}

// Poisoned reports whether a crash inside library code has made the library
// unrecoverable.
func (l *Library) Poisoned() bool { return l.state.Load() == statePoisoned }

// Recovering reports whether a repair cycle is in progress; calls made now
// park until it completes (bounded by RecoveryGrace).
func (l *Library) Recovering() bool { return l.state.Load() == stateRecovering }

// ErrPoisoned is returned for calls into a library that has crashed.
var ErrPoisoned = errors.New("hodor: library poisoned by a crash inside library code")

// ErrRecoveryTimeout is returned when a call waited longer than
// RecoveryGrace for an in-progress repair to finish. The library is not
// poisoned; retrying is reasonable.
var ErrRecoveryTimeout = errors.New("hodor: library still recovering after grace period")

// ErrNotLinked is returned when a thread calls into a library that its
// process never loaded.
var ErrNotLinked = errors.New("hodor: library not linked into this process")

// ErrOverloaded is typed backpressure: the gate refused to admit the call
// because in-flight calls saturate a configured limit (MaxInFlight), the
// tenant exceeded its quota (ErrTenantQuota wraps this), or every hardware
// protection key is pinned (pku.ErrAllKeysPinned, reachable through
// errors.Is on the returned error). The store is healthy; retrying after a
// short backoff is the expected response.
var ErrOverloaded = errors.New("hodor: gate overloaded")

// ErrTenantQuota is the per-tenant flavour of ErrOverloaded: this tenant
// already has TenantQuota calls in flight. errors.Is(err, ErrOverloaded)
// matches it.
var ErrTenantQuota = fmt.Errorf("%w: per-tenant admission quota exhausted", ErrOverloaded)

// ErrSessionReaped is returned for any call on a session whose earlier call
// was reaped by the watchdog. The reaped thread is considered terminated;
// letting the same session re-enter the gate would be Garmr's zombie
// re-entry attack, so the refusal is counted as a contained attack.
var ErrSessionReaped = errors.New("hodor: session was reaped by the watchdog; re-attach to continue")

// Retryable reports whether an admission error is transient: the gate
// refused or timed out, but the library itself is expected to come back
// (repair in flight, backpressure) so the caller should retry rather
// than discard its session. Poison, reaped sessions, and killed
// processes are not retryable — those sessions are dead.
func Retryable(err error) bool {
	return errors.Is(err, ErrRecoveryTimeout) || errors.Is(err, ErrOverloaded)
}

// overloadedError wraps a transient resource-exhaustion cause (hardware-key
// pin exhaustion) so callers can match both the backpressure class
// (ErrOverloaded) and the specific cause (pku.ErrAllKeysPinned).
type overloadedError struct{ cause error }

func (e *overloadedError) Error() string        { return "hodor: gate overloaded: " + e.cause.Error() }
func (e *overloadedError) Unwrap() error        { return e.cause }
func (e *overloadedError) Is(target error) bool { return target == ErrOverloaded }

// Session binds one client thread to one library: the per-thread state a
// trampoline needs (saved register, the library-side stack, and the
// in-flight call record the watchdog inspects).
type Session struct {
	Lib    *Library
	Thread *proc.Thread

	// Tenant is this session's own protection domain (gate hardening):
	// when set, each call binds the tenant's virtual key alongside the
	// library's, so the amplified register grants exactly this tenant's
	// pages — a sibling tenant's buffers stay fenced even from inside the
	// gate. Set it before the session serves calls.
	Tenant *Domain

	linked bool
	// callStart is the wall-clock start (UnixNano) of the in-flight call,
	// or 0 when the thread is in application code.
	callStart atomic.Int64
	// stackDepth models the trampoline's switch to the library-side stack.
	stackDepth int
	savedPKRU  uint32
	// reaped marks a session whose in-flight call outlived the watchdog
	// timeout: either its process was killed (the OS has terminated the
	// thread), or — with LiveCallBudget set — a live call overran its
	// execution budget and was forcibly terminated. Either way the call
	// will never retire, recovery must not wait for it, and the session
	// must never be admitted again (ErrSessionReaped).
	reaped atomic.Bool
	// esc is the live-deadline escalation state of the in-flight call
	// (escNone → escWarned → escAbort → escReaped); admit resets it.
	esc atomic.Int32
	// quota caches the per-process admission counter (TenantQuota); only
	// the session's own thread touches the pointer.
	quota *atomic.Int64
	// slotHeld records that admit charged this call against the admission
	// limits, so the retire path knows to release them.
	slotHeld bool
}

// Live-deadline escalation states (Session.esc).
const (
	escNone int32 = iota
	escWarned
	escAbort
	escReaped
)

// InCall reports whether the session's thread is inside a library call.
func (s *Session) InCall() bool { return s.callStart.Load() != 0 }

// StackDepth returns the current library-stack depth (0 in application code).
func (s *Session) StackDepth() int { return s.stackDepth }

// Reaped reports whether the watchdog reaped one of this session's calls;
// a reaped session is permanently fenced out of the gate.
func (s *Session) Reaped() bool { return s.reaped.Load() }

// AbortRequested reports whether the watchdog has asked the in-flight call
// to abort (the cooperative stage of live-deadline escalation, between the
// warning and the reap). Long-running library code — the batch dispatcher —
// polls this between operations and returns early when set.
func (s *Session) AbortRequested() bool { return s.esc.Load() >= escAbort }

// attach registers a session; the loader calls this for linked processes.
func (l *Library) attach(t *proc.Thread) *Session {
	s := &Session{Lib: l, Thread: t, linked: true}
	l.mu.Lock()
	l.sessions = append(l.sessions, s)
	l.mu.Unlock()
	return s
}

// A CrashError wraps a panic that escaped library code: a segfault inside a
// protected-library call.
type CrashError struct {
	Lib   string
	Cause any
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("hodor: crash inside library %q: %v", e.Lib, e.Cause)
}

// Copier is implemented by argument types that know how to copy themselves
// into the library domain, used when Library.CopyArgs is enabled.
type Copier interface{ LibCopy() any }

func (l *Library) grace() time.Duration {
	if l.RecoveryGrace > 0 {
		return l.RecoveryGrace
	}
	return 5 * time.Second
}

func (l *Library) callTimeout() time.Duration {
	if l.CallTimeout > 0 {
		return l.CallTimeout
	}
	return time.Second
}

// admit gates a call on library health and load. It publishes the session's
// in-flight record *before* loading the state word so that the repair
// drain (which reads states in the opposite order) can never miss a call
// that slipped past a Healthy check: either admit sees the Recovering
// state, or the drain sees the published callStart.
func (l *Library) admit(s *Session, start time.Time) error {
	if s.reaped.Load() {
		// Zombie re-entry (Garmr): the watchdog terminated this session's
		// thread; the session object resurfacing at the gate is an attack
		// (or a badly confused client) and the refusal is containment.
		l.attacksContained.Add(1)
		return ErrSessionReaped
	}
	s.esc.Store(escNone)
	deadline := start.Add(l.grace())
	for {
		s.callStart.Store(start.UnixNano())
		switch l.state.Load() {
		case stateHealthy:
			if sErr := l.acquireSlot(s); sErr != nil {
				s.callStart.Store(0)
				return sErr
			}
			return nil
		case statePoisoned:
			s.callStart.Store(0)
			return ErrPoisoned
		}
		// Recovering: withdraw the in-flight record before parking so the
		// drain does not count waiters as live calls, then wait bounded.
		s.callStart.Store(0)
		if s.Thread.Proc.Killed() {
			return &proc.ErrKilled{PID: s.Thread.Proc.ID}
		}
		if time.Now().After(deadline) {
			return ErrRecoveryTimeout
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// acquireSlot charges an admitted call against the configured admission
// limits, failing fast with typed backpressure when a limit is saturated.
// Admission control is the first hardening line: a hostile tenant pumping
// calls hits its quota and fails cheaply in its own process, instead of
// queueing work that starves well-behaved tenants of gate slots or
// hardware-key pins.
func (l *Library) acquireSlot(s *Session) error {
	if l.MaxInFlight <= 0 && l.TenantQuota <= 0 {
		return nil
	}
	if l.MaxInFlight > 0 {
		if n := l.inflight.Add(1); n > int64(l.MaxInFlight) {
			l.inflight.Add(-1)
			l.gateRejections.Add(1)
			return ErrOverloaded
		}
	}
	if l.TenantQuota > 0 {
		if s.quota == nil {
			s.quota = l.tenantCounter(s.Thread.Proc.ID)
		}
		if n := s.quota.Add(1); n > int64(l.TenantQuota) {
			s.quota.Add(-1)
			if l.MaxInFlight > 0 {
				l.inflight.Add(-1)
			}
			l.gateRejections.Add(1)
			return ErrTenantQuota
		}
	}
	s.slotHeld = true
	return nil
}

// releaseSlot returns the admission charges taken by acquireSlot.
func (l *Library) releaseSlot(s *Session) {
	if !s.slotHeld {
		return
	}
	s.slotHeld = false
	if l.MaxInFlight > 0 {
		l.inflight.Add(-1)
	}
	if l.TenantQuota > 0 && s.quota != nil {
		s.quota.Add(-1)
	}
}

// tenantCounter returns (creating if needed) the per-process admission
// counter used for TenantQuota accounting.
func (l *Library) tenantCounter(pid int) *atomic.Int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tenantLoad == nil {
		l.tenantLoad = make(map[int]*atomic.Int64)
	}
	c := l.tenantLoad[pid]
	if c == nil {
		c = new(atomic.Int64)
		l.tenantLoad[pid] = c
	}
	return c
}

// Call runs fn as a protected-library call on session s, performing the full
// trampoline sequence:
//
//  1. verify the library is linked, healthy, and the process alive;
//  2. switch to the library-side stack;
//  3. wrpkru: amplify rights to the library's domain;
//  4. optionally copy arguments into the library (CopyArgs);
//  5. run the entry point;
//  6. wrpkru: restore the saved register, switch stacks back.
//
// If the process is killed while the call is in flight, the call completes
// and its result is returned; the thread is only then subject to the kill
// (the caller observes it at its next CheckAlive). If fn panics, the panic
// is converted into a CrashError; the library is poisoned, or — when a
// repair routine is registered via OnRecover — enters Recovering and
// subsequent calls park until repair completes.
func Call[A, R any](s *Session, fn func(*proc.Thread, A) (R, error), arg A) (res R, err error) {
	if !s.linked {
		return res, ErrNotLinked
	}
	l := s.Lib
	t := s.Thread
	if eErr := t.EnterLibrary(); eErr != nil {
		l.rejected.Add(1)
		return res, eErr
	}
	start := time.Now()
	if aErr := l.admit(s, start); aErr != nil {
		l.rejected.Add(1)
		t.ExitLibrary()
		return res, aErr
	}
	// Resolve the domain's hardware key. Virtual domains bind their key
	// through the vtable for the duration of the call (the pin keeps the
	// mapping from being recycled out from under the amplified thread);
	// a bind failure — every hardware key pinned — rejects the call as
	// retryable backpressure (every pin is an in-flight call about to
	// release it), not as a fault.
	reject := func(bErr error) error {
		if errors.Is(bErr, pku.ErrAllKeysPinned) {
			l.gateRejections.Add(1)
			bErr = &overloadedError{cause: bErr}
		}
		l.rejected.Add(1)
		l.releaseSlot(s)
		s.callStart.Store(0)
		t.ExitLibrary()
		return bErr
	}
	hw := l.Domain.Key
	vt := l.Domain.VT
	if vt != nil {
		k, bErr := vt.Bind(l.Domain.VKey)
		if bErr != nil {
			return res, reject(bErr)
		}
		hw = k
	}
	// Per-tenant protection domain (gate hardening): bind the session's own
	// virtual key too, so the amplified register grants the library's pages
	// plus exactly this tenant's — a sibling tenant's buffers stay fenced
	// even from code running inside the gate.
	var tvt *pku.VTable
	var thw pku.Key
	if td := s.Tenant; td != nil && td.VT != nil {
		k, bErr := td.VT.Bind(td.VKey)
		if bErr != nil {
			if vt != nil {
				vt.Unbind(l.Domain.VKey)
			}
			return res, reject(bErr)
		}
		tvt, thw = td.VT, k
	}
	l.calls.Add(1)
	// Entry crossing: stack switch plus rights amplification, timed from
	// here (not from start — admit may have parked through a recovery, and
	// that wait is not crossing cost).
	var crossStart time.Time
	if l.Profile {
		crossStart = time.Now()
	}
	s.stackDepth++ // switch to the library-side stack
	saved := t.PKRU()
	// Lazy PKRU synchronization (libmpk): a remap since this thread last
	// synced means its register may grant hardware keys whose meaning
	// changed. Scrub to the all-restricted baseline once, instead of
	// rewriting every thread's register at remap time. The tenant table is
	// the one that remaps in steady state, so it drives the generation when
	// both a virtual library domain and a tenant domain are in play.
	syncVT := tvt
	if syncVT == nil {
		syncVT = vt
	}
	if syncVT != nil {
		if g := syncVT.Gen(); t.VTGen() != g {
			saved = pku.AllRestricted()
			proc.WRPKRU(t, saved)
			syncVT.NoteSync()
			t.SetVTGen(g)
		}
	}
	// Trampoline register sanitization (gate hardening, Garmr's stray-
	// wrpkru class): the saved register is about to be restored verbatim on
	// exit, so a forged value — one granting keys only trampolines may
	// grant — would hand the forger standing access to protected pages.
	// Application registers are AllRestricted outside the gate; anything
	// that grants a library- or vtable-owned key is forged and is scrubbed
	// to the baseline instead of trusted.
	if base := pku.AllRestricted(); saved != base {
		forged := vt == nil && hw != pku.KeyDefault && saved.CanRead(hw) ||
			vt != nil && vt.GrantsOwnedKey(saved) ||
			tvt != nil && tvt.GrantsOwnedKey(saved)
		if forged {
			saved = base
			proc.WRPKRU(t, saved)
			l.attacksContained.Add(1)
		}
	}
	s.savedPKRU = uint32(saved)
	amp := saved.WithAccess(hw)
	if tvt != nil {
		amp = amp.WithAccess(thw)
	}
	proc.WRPKRU(t, amp)
	if l.Profile {
		l.cross.Record(time.Since(crossStart))
	}

	defer func() {
		crashed := recover()
		contained := false
		if crashed != nil {
			l.crashes.Add(1)
			// A panic value carrying the ContainedAttack marker (a pku
			// protection fault, a core lock-fence denial) is a hostile or
			// zombie access the protection layers *denied*: the denial is
			// the proof that no protected state moved.
			if _, ok := crashed.(interface{ ContainedAttack() }); ok {
				contained = true
				l.attacksContained.Add(1)
			}
			err = &CrashError{Lib: l.Name, Cause: crashed}
			// Record the token defunct while the in-flight record is
			// still published: a repair drain that observes this call
			// retired must also observe the token defunct, or the
			// crasher's held locks would survive the drain's final
			// ForceReleaseDeadLocks with nothing left to retrigger
			// recovery. (TokenDefunct still reports the token alive
			// until callStart clears, so the locks are not broken under
			// this unwinding call.)
			l.markDefunct(t.LockOwner())
		}
		var exitStart time.Time
		if l.Profile {
			l.nanos.Add(uint64(time.Since(start)))
			exitStart = time.Now()
		}
		proc.WRPKRU(t, saved)
		if tvt != nil {
			tvt.Unbind(s.Tenant.VKey)
		}
		if vt != nil {
			vt.Unbind(l.Domain.VKey)
		}
		s.stackDepth--
		s.callStart.Store(0)
		l.releaseSlot(s)
		t.ExitLibrary()
		if l.Profile {
			// Exit crossing: rights restoration plus stack switch back.
			l.cross.Record(time.Since(exitStart))
		}
		switch {
		case crashed == nil:
			l.crossings.Add(1)
		case contained && s.reaped.Load():
			// A fence denial unwinding an already-reaped zombie: the
			// repair cycle for its reaping already ran (or is running),
			// and the denial proves this unwind touched nothing since.
			// Starting another quarantine→repair cycle would let a
			// hostile tenant trigger repairs at will just by re-entering.
		default:
			// After the in-flight record is retired: the repair drain
			// must not wait for this call before repairing.
			l.beginRecovery(crashed)
		}
	}()

	if l.CopyArgs {
		if c, ok := any(arg).(Copier); ok {
			arg = c.LibCopy().(A)
		}
	}
	res, err = fn(t, arg)
	return res, err
}

// markDefunct records a lock-owner token whose execution context died
// mid-call. Callers on the crash path must record the token *before*
// retiring the session's in-flight record (Call's defer does), so any
// repair drain that sees the call gone also sees its token defunct.
func (l *Library) markDefunct(token uint64) {
	l.mu.Lock()
	l.defunct[token] = true
	l.mu.Unlock()
}

// beginRecovery transitions the library after a crash: to Poisoned when no
// repair routine is registered, otherwise to Recovering (if not already
// there) with the repair running on its own goroutine.
func (l *Library) beginRecovery(cause any) {
	l.mu.Lock()
	fn := l.recoverFn
	l.mu.Unlock()
	if fn == nil {
		l.state.Store(statePoisoned)
		return
	}
	if l.state.CompareAndSwap(stateHealthy, stateRecovering) {
		go l.runRepair(&CrashError{Lib: l.Name, Cause: cause})
	}
}

// noteCrash records a defunct token and transitions the library — the
// combined form used where no in-flight record ordering is at stake.
func (l *Library) noteCrash(token uint64, cause any) {
	l.markDefunct(token)
	l.beginRecovery(cause)
}

// runRepair drives one quarantine→repair→resume cycle. A repair that
// fails or panics poisons the library — the pre-recovery behaviour.
func (l *Library) runRepair(cause *CrashError) {
	var err error
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("hodor: repair routine panicked: %v", r)
		}
		if err != nil {
			l.state.Store(statePoisoned)
			return
		}
		l.recoveries.Add(1)
		l.state.Store(stateHealthy)
	}()
	err = l.recoverFn(cause)
}

// TriggerRecovery marks token defunct and starts a recovery cycle (or
// poisons the library when no repair routine is registered). It is for
// crashes observed outside a trampolined call — e.g. the store owner's
// maintenance thread faulting — where no Call defer sees the panic.
func (l *Library) TriggerRecovery(token uint64, cause any) {
	l.crashes.Add(1)
	l.noteCrash(token, cause)
}

// TokenDefunct reports whether a lock-owner token belongs to an execution
// context that can no longer run library code: it crashed mid-call, was
// reaped by the watchdog, or belongs to a killed process with no call in
// flight. A live in-flight call — even of a killed process, which runs to
// completion — is never defunct, so breaking the locks of defunct tokens
// cannot race with their owners.
func (l *Library) TokenDefunct(token uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.sessions {
		if s.Thread.LockOwner() != token {
			continue
		}
		if s.reaped.Load() {
			return true
		}
		if s.callStart.Load() != 0 {
			return false // running; run-to-completion protects it
		}
		if s.Thread.Proc.Killed() {
			return true
		}
	}
	return l.defunct[token]
}

// TokenActive reports whether the token's session has a live call in
// flight right now. Liveness oracles layered above TokenDefunct (which
// consult process-level kill state for threads hodor has never seen)
// must check this first: an active call may belong to a killed process
// and still runs to completion.
func (l *Library) TokenActive(token uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, s := range l.sessions {
		if s.Thread.LockOwner() == token && !s.reaped.Load() && s.callStart.Load() != 0 {
			return true
		}
	}
	return false
}

// DrainLiveCalls waits for every live in-flight call to retire, so that a
// repair pass can assume exclusive access to the shared state. Calls of
// killed processes that outlive the watchdog timeout are reaped (marked
// defunct) rather than waited for. Returns false if live calls remain
// when the timeout expires.
func (l *Library) DrainLiveCalls(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if !l.sweepLiveCalls(time.Now()) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// sweepLiveCalls reports whether any live call is still in flight,
// reaping overdue calls of killed processes along the way. With
// LiveCallBudget set it also reaps live calls that have overrun twice
// their budget: without this a hostile tenant spinning inside the gate
// would stall the drain past its deadline and poison the library — the
// drain itself would become the denial-of-service vector.
func (l *Library) sweepLiveCalls(now time.Time) bool {
	timeout := l.callTimeout()
	budget := l.LiveCallBudget
	l.mu.Lock()
	sessions := make([]*Session, len(l.sessions))
	copy(sessions, l.sessions)
	l.mu.Unlock()
	live := false
	for _, s := range sessions {
		start := s.callStart.Load()
		if start == 0 || s.reaped.Load() {
			continue
		}
		elapsed := now.Sub(time.Unix(0, start))
		if s.Thread.Proc.Killed() && elapsed > timeout {
			s.reaped.Store(true)
			l.mu.Lock()
			l.defunct[s.Thread.LockOwner()] = true
			l.mu.Unlock()
			continue
		}
		if !s.Thread.Proc.Killed() && budget > 0 && elapsed > 2*budget {
			// Live-budget reap during a drain: recovery is already in
			// progress, so only fence the session and record its token —
			// no new recovery cycle to start.
			s.reaped.Store(true)
			s.esc.Store(escReaped)
			l.tenantReaps.Add(1)
			l.attacksContained.Add(1)
			l.mu.Lock()
			l.defunct[s.Thread.LockOwner()] = true
			l.mu.Unlock()
			continue
		}
		live = true
	}
	return live
}

// RegisterEntry records an entry point name in the library's export table
// (the HODOR_FUNC_EXPORT analog). Wrap calls it automatically.
func (l *Library) RegisterEntry(name string) {
	l.mu.Lock()
	l.entries[name] = true
	l.mu.Unlock()
}

// Wrap builds a trampolined version of an entry point and records it in the
// library's export table. The returned function is what the application
// links against.
func Wrap[A, R any](l *Library, name string, fn func(*proc.Thread, A) (R, error)) func(*Session, A) (R, error) {
	l.RegisterEntry(name)
	return func(s *Session, arg A) (R, error) {
		return Call(s, fn, arg)
	}
}

// WatchdogSweep enforces the execution-time limits on gate calls. For
// killed processes it is the run-to-completion bound: a thread of a killed
// process inside a call longer than CallTimeout is terminated by the OS.
// For *live* sessions (gate hardening) it enforces LiveCallBudget with an
// escalation ladder: past the budget the call draws a warning; past 1.5x
// an abort request that cooperative library code (the batch dispatcher)
// honours between operations; past 2x the call is reaped exactly like an
// overdue call of a killed process — fenced, its locks broken, the store
// repaired online while sibling tenants keep serving. Since a reaped
// thread may hold locks, reaping triggers a recovery cycle (or poisons a
// library with no repair routine). now is injected for testability. It
// returns the number of calls reaped.
func (l *Library) WatchdogSweep(now time.Time) int {
	timeout := l.callTimeout()
	budget := l.LiveCallBudget
	l.mu.Lock()
	sessions := make([]*Session, len(l.sessions))
	copy(sessions, l.sessions)
	l.mu.Unlock()
	overdue := 0
	for _, s := range sessions {
		start := s.callStart.Load()
		if start == 0 || s.reaped.Load() {
			continue
		}
		elapsed := now.Sub(time.Unix(0, start))
		if s.Thread.Proc.Killed() {
			if elapsed > timeout {
				overdue++
				s.reaped.Store(true)
				l.noteCrash(s.Thread.LockOwner(), "watchdog: overdue call of killed process")
			}
			continue
		}
		if budget <= 0 {
			continue
		}
		switch {
		case elapsed > 2*budget:
			overdue++
			s.reaped.Store(true)
			s.esc.Store(escReaped)
			l.tenantReaps.Add(1)
			l.attacksContained.Add(1)
			l.noteCrash(s.Thread.LockOwner(), "watchdog: live call exceeded its execution budget")
		case elapsed > budget+budget/2:
			if s.esc.CompareAndSwap(escWarned, escAbort) || s.esc.CompareAndSwap(escNone, escAbort) {
				l.tenantAborts.Add(1)
			}
		default: // elapsed > budget
			if elapsed > budget && s.esc.CompareAndSwap(escNone, escWarned) {
				l.tenantWarns.Add(1)
			}
		}
	}
	return overdue
}
