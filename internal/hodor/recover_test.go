package hodor

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/proc"
)

// waitState polls until the library reaches the wanted predicate or the
// timeout expires.
func waitFor(t *testing.T, timeout time.Duration, what string, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestRecoverLifecycle: with a repair routine registered, a crash inside
// the library quarantines it (Recovering), runs the routine, and resumes
// — never poisoning.
func TestRecoverLifecycle(t *testing.T) {
	f := newFixture(t)
	repaired := make(chan *CrashError, 1)
	f.lib.OnRecover(func(c *CrashError) error {
		repaired <- c
		return nil
	})
	s := f.session(t)

	boom := Wrap(f.lib, "boom", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		panic("segfault in library")
	})
	var ce *CrashError
	if _, err := boom(s, struct{}{}); !errors.As(err, &ce) {
		t.Fatalf("crashing call returned %v, want *CrashError", err)
	}
	select {
	case c := <-repaired:
		if c.Lib != "libtest" {
			t.Fatalf("CrashError.Lib = %q", c.Lib)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("repair routine never ran")
	}
	waitFor(t, 2*time.Second, "library healthy", func() bool {
		return !f.lib.Recovering() && !f.lib.Poisoned()
	})
	if f.lib.Poisoned() {
		t.Fatal("library poisoned despite registered repair routine")
	}
	if m := f.lib.Metrics(); m.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", m.Recoveries)
	}

	ok := Wrap(f.lib, "ok", func(t *proc.Thread, x int) (int, error) { return x + 1, nil })
	if got, err := ok(s, 41); err != nil || got != 42 {
		t.Fatalf("post-recovery call = (%d, %v), want (42, nil)", got, err)
	}
}

// TestConcurrentCallersBlockDuringRecovery: calls that arrive while the
// library is Recovering park (bounded) and then succeed. None may ever
// see ErrPoisoned.
func TestConcurrentCallersBlockDuringRecovery(t *testing.T) {
	f := newFixture(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	f.lib.OnRecover(func(*CrashError) error {
		close(entered)
		<-release
		return nil
	})
	f.lib.RecoveryGrace = 10 * time.Second

	crasher := f.session(t)
	boom := Wrap(f.lib, "boom", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		panic("die")
	})
	boom(crasher, struct{}{})
	<-entered // library is now Recovering, repair parked on release

	ok := Wrap(f.lib, "ok", func(t *proc.Thread, x int) (int, error) { return x * 2, nil })
	const n = 8
	var wg sync.WaitGroup
	var failures atomic.Int64
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := f.session(t)
			started <- struct{}{}
			got, err := ok(s, 21)
			if err != nil || got != 42 {
				t.Errorf("caller during recovery: (%d, %v)", got, err)
				failures.Add(1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	// Give the callers time to park in admit, then finish the repair.
	time.Sleep(20 * time.Millisecond)
	if !f.lib.Recovering() {
		t.Fatal("library left Recovering while repair was parked")
	}
	close(release)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d callers failed during recovery", failures.Load())
	}
	if m := f.lib.Metrics(); m.Rejected != 0 {
		t.Fatalf("Rejected = %d, want 0 (no caller may see ErrPoisoned)", m.Rejected)
	}
}

// TestRecoveryTimeout: a caller that outwaits the grace period gets
// ErrRecoveryTimeout, which is distinct from ErrPoisoned.
func TestRecoveryTimeout(t *testing.T) {
	f := newFixture(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	f.lib.OnRecover(func(*CrashError) error {
		close(entered)
		<-release
		return nil
	})
	f.lib.RecoveryGrace = 30 * time.Millisecond

	boom := Wrap(f.lib, "boom", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		panic("die")
	})
	boom(f.session(t), struct{}{})
	<-entered

	ok := Wrap(f.lib, "ok", func(t *proc.Thread, x int) (int, error) { return x, nil })
	_, err := ok(f.session(t), 1)
	if !errors.Is(err, ErrRecoveryTimeout) {
		t.Fatalf("err = %v, want ErrRecoveryTimeout", err)
	}
	if errors.Is(err, ErrPoisoned) {
		t.Fatal("timeout error must not be ErrPoisoned")
	}
	close(release)
	waitFor(t, 2*time.Second, "repair completion", func() bool { return !f.lib.Recovering() })
}

// TestFailedRepairPoisons: a repair routine returning an error falls back
// to the pre-recovery behaviour.
func TestFailedRepairPoisons(t *testing.T) {
	f := newFixture(t)
	f.lib.OnRecover(func(*CrashError) error {
		return errors.New("heap unrecoverable")
	})
	boom := Wrap(f.lib, "boom", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		panic("die")
	})
	boom(f.session(t), struct{}{})
	waitFor(t, 2*time.Second, "poison after failed repair", f.lib.Poisoned)
	ok := Wrap(f.lib, "ok", func(t *proc.Thread, x int) (int, error) { return x, nil })
	if _, err := ok(f.session(t), 1); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("err = %v, want ErrPoisoned", err)
	}
	if m := f.lib.Metrics(); m.Recoveries != 0 {
		t.Fatalf("Recoveries = %d after failed repair, want 0", m.Recoveries)
	}
}

// TestPanickedRepairPoisons: a repair routine that itself panics must not
// take down the process — it poisons.
func TestPanickedRepairPoisons(t *testing.T) {
	f := newFixture(t)
	f.lib.OnRecover(func(*CrashError) error {
		panic("repair crashed too")
	})
	boom := Wrap(f.lib, "boom", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		panic("die")
	})
	boom(f.session(t), struct{}{})
	waitFor(t, 2*time.Second, "poison after panicked repair", f.lib.Poisoned)
}

// TestWatchdogTriggersRecovery: the watchdog reaping an overdue call of a
// killed process starts a recovery cycle instead of poisoning when a
// repair routine is registered.
func TestWatchdogTriggersRecovery(t *testing.T) {
	f := newFixture(t)
	repaired := make(chan struct{})
	f.lib.OnRecover(func(*CrashError) error {
		close(repaired)
		return nil
	})
	f.lib.CallTimeout = 10 * time.Millisecond

	s := f.session(t)
	inCall := make(chan struct{})
	block := make(chan struct{})
	slow := Wrap(f.lib, "slow", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		close(inCall)
		<-block
		return struct{}{}, nil
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		slow(s, struct{}{})
	}()
	<-inCall
	f.p.Kill()
	time.Sleep(20 * time.Millisecond)
	if n := f.lib.WatchdogSweep(time.Now()); n != 1 {
		t.Fatalf("WatchdogSweep = %d, want 1", n)
	}
	select {
	case <-repaired:
	case <-time.After(2 * time.Second):
		t.Fatal("watchdog reap did not trigger recovery")
	}
	waitFor(t, 2*time.Second, "healthy after watchdog recovery", func() bool {
		return !f.lib.Recovering() && !f.lib.Poisoned()
	})
	// The reaped token is defunct even though its goroutine is parked.
	if !f.lib.TokenDefunct(s.Thread.LockOwner()) {
		t.Fatal("reaped session's token should be defunct")
	}
	if f.lib.TokenActive(s.Thread.LockOwner()) {
		t.Fatal("reaped session's token should not be active")
	}
	close(block)
	<-done
}

// TestTokenActive: a live in-flight call — even of a killed process — is
// active, and never defunct.
func TestTokenActive(t *testing.T) {
	f := newFixture(t)
	s := f.session(t)
	tok := s.Thread.LockOwner()
	if f.lib.TokenActive(tok) {
		t.Fatal("idle session reported active")
	}
	inCall := make(chan struct{})
	block := make(chan struct{})
	slow := Wrap(f.lib, "slow", func(t *proc.Thread, _ struct{}) (struct{}, error) {
		close(inCall)
		<-block
		return struct{}{}, nil
	})
	done := make(chan struct{})
	go func() { defer close(done); slow(s, struct{}{}) }()
	<-inCall
	if !f.lib.TokenActive(tok) {
		t.Fatal("in-flight call not reported active")
	}
	f.p.Kill()
	if f.lib.TokenDefunct(tok) {
		t.Fatal("in-flight call of killed process reported defunct (run-to-completion)")
	}
	close(block)
	<-done
	if !f.lib.TokenDefunct(tok) {
		t.Fatal("killed process with no call in flight should be defunct")
	}
}

// TestCrashedCallDefunctBeforeRetire: the crash defer must record the
// token defunct *before* it retires the in-flight record. Any observer
// (the repair drain) that sees a crashed call retired must also see its
// token defunct — the reverse order leaves a window where the drain
// finishes, ForceReleaseDeadLocks skips the crasher's locks because the
// token still reads live, and nothing ever breaks them. The poller below
// watches one crashing call at a time and flags the bad interleaving.
func TestCrashedCallDefunctBeforeRetire(t *testing.T) {
	f := newFixture(t)
	f.lib.OnRecover(func(*CrashError) error { return nil })
	boom := Wrap(f.lib, "boom", func(*proc.Thread, struct{}) (struct{}, error) {
		panic("die mid-call")
	})
	for i := 0; i < 50; i++ {
		s := f.session(t)
		tok := s.Thread.LockOwner()
		stop := make(chan struct{})
		var bad atomic.Bool
		pollerDone := make(chan struct{})
		go func() {
			defer close(pollerDone)
			sawCall := false
			for {
				select {
				case <-stop:
					return
				default:
				}
				in := s.InCall()
				if in && !sawCall {
					sawCall = true
				}
				if sawCall && !in {
					// The call retired. With the correct ordering the
					// token is already defunct at this instant.
					if !f.lib.TokenDefunct(tok) {
						bad.Store(true)
					}
					return
				}
			}
		}()
		if _, err := boom(s, struct{}{}); err == nil {
			t.Fatal("crashing call returned nil error")
		}
		close(stop)
		<-pollerDone
		if bad.Load() {
			t.Fatalf("iteration %d: call observed retired before its token went defunct", i)
		}
		waitFor(t, 2*time.Second, "library healthy", func() bool {
			return !f.lib.Recovering() && !f.lib.Poisoned()
		})
	}
}
