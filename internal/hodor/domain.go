// Package hodor implements the protected-library runtime from Hedayati et
// al. (USENIX ATC '19), the substrate the paper builds on: libraries whose
// private data is tagged with a protection key that application code cannot
// access, with rights amplified only for the duration of a call that enters
// through a trampoline.
//
// The package reproduces Hodor's PKU-based design point: per-library
// protection domains (domain.go), call trampolines that switch stacks and
// write the pkru register on entry and exit (library.go), and the modified
// loader that scans binaries for stray wrpkru instructions, arms hardware
// breakpoints over them, and runs library initialization under the library
// owner's effective UID (loader.go). See DESIGN.md §3 for how the hardware
// pieces are simulated.
package hodor

import (
	"fmt"

	"plibmc/internal/pku"
	"plibmc/internal/shm"
)

// Domain is a protected memory domain: a protection key plus the heap pages
// assigned to it. A library's shared data lives in its domain; only threads
// whose pkru register has been amplified by a trampoline can touch it.
//
// A domain's key is either a fixed hardware key (NewDomain) or a virtual
// key multiplexed onto the hardware by a pku.VTable (NewVirtualDomain, the
// libmpk design point): virtual domains let a process host more protected
// libraries than the 16 hardware keys allow, at the price of a Bind per
// call and an occasional LRU eviction.
type Domain struct {
	Key  pku.Key
	PT   *pku.PageTable
	Heap *shm.Heap

	// VT, when non-nil, virtualizes this domain's protection key: Key is
	// then meaningless and VKey names the domain; trampolines resolve the
	// hardware key per call via VT.Bind.
	VT   *pku.VTable
	VKey pku.VKey
}

// NewDomain allocates a fresh protection key over the heap.
func NewDomain(h *shm.Heap, pt *pku.PageTable) (*Domain, error) {
	k, err := pt.Alloc()
	if err != nil {
		return nil, fmt.Errorf("hodor: %w", err)
	}
	return &Domain{Key: k, PT: pt, Heap: h}, nil
}

// NewVirtualDomain allocates a virtual-key domain from vt. Unlike
// NewDomain it cannot run out of keys.
func NewVirtualDomain(h *shm.Heap, pt *pku.PageTable, vt *pku.VTable) *Domain {
	return &Domain{PT: pt, Heap: h, VT: vt, VKey: vt.AllocVirtual()}
}

// Protect tags the byte range [off, off+n) of the heap with the domain's
// key. Protection is page-granular.
func (d *Domain) Protect(off, n uint64) error {
	if d.VT != nil {
		return d.VT.AssignVirtual(d.VKey, off, n)
	}
	return d.PT.Assign(off, n, d.Key)
}

// ProtectAll tags the entire heap with the domain's key, the configuration
// used for the memcached store: the whole Ralloc heap is library-private.
func (d *Domain) ProtectAll() error {
	return d.Protect(0, d.Heap.Size())
}

// Guard returns a checked accessor for the heap under this domain's page
// table, used by application-side code and enforcement tests.
func (d *Domain) Guard() *pku.Guard {
	return pku.NewGuard(d.Heap, d.PT)
}

// Release frees the domain's protection key. Pages revert to the default key.
func (d *Domain) Release() error {
	return d.PT.Free(d.Key)
}
