package hodor

import (
	"bytes"
	"fmt"
	"sync"

	"plibmc/internal/proc"
)

// The wrpkru instruction encoding on x86-64.
var wrpkruOpcode = []byte{0x0F, 0x01, 0xEF}

// NumBreakpointRegs is the number of hardware debug-address registers
// (DR0–DR3) available for trapping stray wrpkru instances.
const NumBreakpointRegs = 4

// ScanWRPKRU returns the offsets of every wrpkru opcode in text, the scan
// Hodor's modified loader performs over an about-to-be-executed binary.
func ScanWRPKRU(text []byte) []int {
	var offs []int
	for i := 0; ; {
		j := bytes.Index(text[i:], wrpkruOpcode)
		if j < 0 {
			return offs
		}
		offs = append(offs, i+j)
		i += j + 1 // overlapping occurrences are still distinct addresses
	}
}

// Binary is a program image about to be executed: its text section and the
// offsets of the wrpkru instances that belong to legitimate trampolines
// (installed by the loader itself, and therefore trusted).
type Binary struct {
	Name        string
	Text        []byte
	Trampolines []int // offsets of sanctioned wrpkru instances
}

// LoadResult records what the loader did for one process: which stray
// wrpkru addresses were covered by hardware breakpoints, and whether the
// binary had so many strays that the loader fell back to flipping page
// permissions around them (the paper's "at some cost" path).
type LoadResult struct {
	Process      *proc.Process
	Breakpoints  []int
	PageFallback bool

	libs map[*Library]bool
	mu   sync.Mutex
}

// TryExecute simulates the processor reaching the instruction at off. If a
// hardware breakpoint is armed there (or the page-permission fallback is
// active and off holds a stray wrpkru), execution traps and an error is
// returned; the kernel would deliver SIGTRAP/SIGSEGV and the attempt to
// forge protection rights fails.
func (r *LoadResult) TryExecute(off int) error {
	for _, bp := range r.Breakpoints {
		if bp == off {
			return fmt.Errorf("hodor: hardware breakpoint trap at %#x (stray wrpkru)", off)
		}
	}
	if r.PageFallback {
		return fmt.Errorf("hodor: page-permission trap at %#x (stray wrpkru, fallback mode)", off)
	}
	return nil
}

// Loader is the modified, trusted system loader.
type Loader struct{}

// Load prepares a process to use the given protected libraries:
//
//   - scans the binary for wrpkru instances outside sanctioned trampolines
//     and arms hardware breakpoints over them (≤4), falling back to page
//     permissions beyond that;
//   - for each library, runs its initialization routine with the effective
//     UID of the library owner — so the library can open its backing file —
//     and then reverts the EUID (paper §3.3);
//   - links the library's trampolines into the process, after which threads
//     of the process may Attach.
//
// Threads of the process start with all non-default keys restricted, the
// state the injected pre-main initialization routine establishes.
func (Loader) Load(p *proc.Process, bin Binary, libs ...*Library) (*LoadResult, error) {
	res := &LoadResult{Process: p, libs: make(map[*Library]bool)}

	sanctioned := make(map[int]bool, len(bin.Trampolines))
	for _, off := range bin.Trampolines {
		sanctioned[off] = true
	}
	var strays []int
	for _, off := range ScanWRPKRU(bin.Text) {
		if !sanctioned[off] {
			strays = append(strays, off)
		}
	}
	if len(strays) <= NumBreakpointRegs {
		res.Breakpoints = strays
	} else {
		// More strays than debug registers: cover what we can and flip
		// page permissions for the rest.
		res.Breakpoints = strays[:NumBreakpointRegs]
		res.PageFallback = true
	}

	for _, l := range libs {
		savedEUID := p.EUID()
		p.SetEUID(l.OwnerUID)
		var initErr error
		if l.initFn != nil {
			initErr = l.initFn(p)
		}
		p.SetEUID(savedEUID)
		if initErr != nil {
			return nil, fmt.Errorf("hodor: init of library %q in process %d: %w", l.Name, p.ID, initErr)
		}
		res.libs[l] = true
	}
	return res, nil
}

// Attach binds a thread of the loaded process to a library, returning the
// session through which trampolined calls are made. It fails if the
// library was not linked by Load.
func (r *LoadResult) Attach(t *proc.Thread, l *Library) (*Session, error) {
	if t.Proc != r.Process {
		return nil, fmt.Errorf("hodor: thread belongs to process %d, not %d", t.Proc.ID, r.Process.ID)
	}
	r.mu.Lock()
	linked := r.libs[l]
	r.mu.Unlock()
	if !linked {
		return nil, ErrNotLinked
	}
	return l.attach(t), nil
}
