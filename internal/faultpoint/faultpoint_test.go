package faultpoint

import "testing"

func TestMaybeOneShot(t *testing.T) {
	p := New("test.oneshot")
	fired := 0
	if err := Arm("test.oneshot", func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	p.Maybe()
	p.Maybe() // consumed: must not fire again
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if err := Arm("test.oneshot", func() { fired++ }); err != nil {
		t.Fatal(err)
	}
	p.Maybe()
	if fired != 2 {
		t.Fatalf("re-armed point fired %d times total, want 2", fired)
	}
}

func TestArmUnknown(t *testing.T) {
	if err := Arm("no.such.point", func() {}); err == nil {
		t.Fatal("arming an unregistered point must fail")
	}
}

func TestDisarm(t *testing.T) {
	p := New("test.disarm")
	fired := false
	if err := Arm("test.disarm", func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	Disarm("test.disarm")
	p.Maybe()
	if fired {
		t.Fatal("disarmed point fired")
	}
}

func TestNewIdempotent(t *testing.T) {
	a := New("test.same")
	b := New("test.same")
	if a != b {
		t.Fatal("New must return the registered point for a known name")
	}
}

func TestNames(t *testing.T) {
	New("test.names.a")
	New("test.names.b")
	names := Names()
	found := 0
	for _, n := range names {
		if n == "test.names.a" || n == "test.names.b" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("Names() missing registered points: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
}

func TestDisarmAll(t *testing.T) {
	p1, p2 := New("test.all.1"), New("test.all.2")
	fired := false
	_ = Arm("test.all.1", func() { fired = true })
	_ = Arm("test.all.2", func() { fired = true })
	DisarmAll()
	p1.Maybe()
	p2.Maybe()
	if fired {
		t.Fatal("DisarmAll left a point armed")
	}
}
