// Package faultpoint provides named crash-injection sites for the
// recovery test harness.
//
// Library code declares a site once as a package-level variable
// (faultpoint.New) and drops a Maybe() call at the interesting program
// point — immediately after a lock acquisition, between the two halves of
// a structural update, inside a seqlock write section. Unless a test has
// armed the site, Maybe is a single relaxed atomic load of a global
// counter and returns immediately, so production paths pay effectively
// nothing for carrying the instrumentation.
//
// A test arms a site with a handler that typically kills the simulated
// client process and then panics, modelling a segfault at exactly that
// instruction. Handlers are one-shot: the first thread to reach an armed
// site consumes the handler before running it, so the repair machinery a
// crash triggers can itself pass through the same site without re-firing.
package faultpoint

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Point is one named crash site.
type Point struct {
	name string
	fn   atomic.Pointer[func()]
}

var (
	registryMu sync.Mutex
	registry   = map[string]*Point{}

	// armed counts points that currently hold a handler; the zero fast
	// path in Maybe is what keeps disarmed sites free.
	armed atomic.Int64
)

// New registers (or returns the existing) crash point with the given name.
// Call it from a package-level var declaration so every site is known to
// the harness without having to execute the code that contains it.
func New(name string) *Point {
	registryMu.Lock()
	defer registryMu.Unlock()
	if p, ok := registry[name]; ok {
		return p
	}
	p := &Point{name: name}
	registry[name] = p
	return p
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Maybe fires the point's handler if one is armed. The handler is
// consumed before it runs (one-shot), so a handler that panics cannot be
// re-entered by the recovery path that follows the crash.
func (p *Point) Maybe() {
	if armed.Load() == 0 {
		return
	}
	fnp := p.fn.Load()
	if fnp == nil {
		return
	}
	if p.fn.CompareAndSwap(fnp, nil) {
		armed.Add(-1)
		(*fnp)()
	}
}

// Arm installs a one-shot handler on the named point. Arming an already
// armed point replaces its handler.
func Arm(name string, fn func()) error {
	registryMu.Lock()
	p := registry[name]
	registryMu.Unlock()
	if p == nil {
		return fmt.Errorf("faultpoint: unknown point %q", name)
	}
	if p.fn.Swap(&fn) == nil {
		armed.Add(1)
	}
	return nil
}

// Disarm removes the handler from the named point, if any.
func Disarm(name string) {
	registryMu.Lock()
	p := registry[name]
	registryMu.Unlock()
	if p != nil && p.fn.Swap(nil) != nil {
		armed.Add(-1)
	}
}

// DisarmAll removes every armed handler.
func DisarmAll() {
	registryMu.Lock()
	defer registryMu.Unlock()
	for _, p := range registry {
		if p.fn.Swap(nil) != nil {
			armed.Add(-1)
		}
	}
}

// Names returns every registered point name, sorted.
func Names() []string {
	registryMu.Lock()
	defer registryMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
