package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteProm(t *testing.T) {
	var b strings.Builder
	WriteProm(&b, []Sample{
		{Name: "a_total", Value: 3},
		{Name: "lat", Labels: L("op", "get", "quantile", "0.99"), Value: 0.5},
		{Name: "esc", Labels: L("v", "a\"b\\c\nd"), Value: 1},
	})
	got := b.String()
	want := "a_total 3\n" +
		`lat{op="get",quantile="0.99"} 0.5` + "\n" +
		`esc{v="a\"b\\c\nd"} 1` + "\n"
	if got != want {
		t.Fatalf("WriteProm:\n%q\nwant\n%q", got, want)
	}
}

func TestWriteVars(t *testing.T) {
	var b strings.Builder
	WriteVars(&b, map[string]any{
		"z": uint64(2), "a": int64(-1), "m": 1.5, "s": "x", "b": true,
	})
	var m map[string]any
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, b.String())
	}
	if m["z"] != 2.0 || m["a"] != -1.0 || m["m"] != 1.5 || m["s"] != "x" || m["b"] != true {
		t.Fatalf("round trip = %v", m)
	}
	// Keys must come out sorted for stable scrapes.
	if i, j := strings.Index(b.String(), `"a"`), strings.Index(b.String(), `"z"`); i > j {
		t.Fatal("keys not sorted")
	}
}

func TestLPanicsOnOdd(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on odd label list")
		}
	}()
	L("only-key")
}
