// Package metrics renders metric samples in the Prometheus text exposition
// format and as expvar-style JSON, with no dependency beyond the standard
// library. The collectors live with the things they observe (the store, the
// hodor library, the baseline server); this package only knows how to write
// what they hand it.
//
// The global expvar registry is deliberately avoided: it panics on
// duplicate publication, which makes any component that registered itself
// impossible to construct twice in one process (every test that builds two
// stores would die). Handlers here render from a snapshot taken per
// request instead.
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Sample is one metric point: a name, optional labels, and a value.
type Sample struct {
	Name   string
	Labels [][2]string // ordered key/value pairs
	Value  float64
}

// L is shorthand for building a label list.
func L(kv ...string) [][2]string {
	if len(kv)%2 != 0 {
		panic("metrics: odd label list")
	}
	out := make([][2]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, [2]string{kv[i], kv[i+1]})
	}
	return out
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WriteProm renders samples in Prometheus text format, in input order.
func WriteProm(w io.Writer, samples []Sample) {
	var b strings.Builder
	for _, s := range samples {
		b.WriteString(s.Name)
		if len(s.Labels) > 0 {
			b.WriteByte('{')
			for i, kv := range s.Labels {
				if i > 0 {
					b.WriteByte(',')
				}
				b.WriteString(kv[0])
				b.WriteString(`="`)
				b.WriteString(escapeLabel(kv[1]))
				b.WriteByte('"')
			}
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(strconv.FormatFloat(s.Value, 'g', -1, 64))
		b.WriteByte('\n')
	}
	io.WriteString(w, b.String())
}

// WriteVars renders a flat map as a JSON object with sorted keys (the
// /debug/vars shape). Values may be numbers (rendered bare) or strings.
func WriteVars(w io.Writer, vars map[string]any) {
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("{\n")
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",\n")
		}
		fmt.Fprintf(&b, "%q: ", k)
		switch v := vars[k].(type) {
		case string:
			fmt.Fprintf(&b, "%q", v)
		case float64:
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		case uint64:
			b.WriteString(strconv.FormatUint(v, 10))
		case int64:
			b.WriteString(strconv.FormatInt(v, 10))
		case int:
			b.WriteString(strconv.Itoa(v))
		case bool:
			b.WriteString(strconv.FormatBool(v))
		default:
			fmt.Fprintf(&b, "%q", fmt.Sprint(v))
		}
	}
	b.WriteString("\n}\n")
	io.WriteString(w, b.String())
}

// Collector produces the current samples and vars on demand; handlers call
// it once per scrape.
type Collector func() ([]Sample, map[string]any)

// Handler builds an http.Handler serving /metrics (Prometheus text) and
// /debug/vars (expvar-shaped JSON) from the collector.
func Handler(collect Collector) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		samples, _ := collect()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, samples)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		_, vars := collect()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		WriteVars(w, vars)
	})
	return mux
}
