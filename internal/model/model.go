// Package model is a sequential reference memcached: a single-key state
// machine over plain Go values (map semantics, CAS generations, absolute
// expiry, incr wrap / decr saturation) driven by a compact op/result
// record. The linearizability checker replays recorded concurrent
// histories against it: a history is correct iff every per-key
// subhistory has some linearization order under which this model
// reproduces every recorded result.
//
// CAS generations are handled symbolically. The real store mints opaque
// generation numbers the model cannot predict, so State.CAS holds the
// generation *as observed by the history*: 0 means "fresh, not yet
// observed by any gets" and a nonzero value means "some Gets in this
// linearization saw generation C here". A CAS op against an unobserved
// generation may still succeed if the history elsewhere establishes that
// generation C held this exact value (the CasVals pre-pass).
package model

import "strconv"

// Kind enumerates the operations the reference machine understands.
type Kind uint8

const (
	Get Kind = iota
	Set
	Add
	Replace
	CAS
	Delete
	Incr
	Decr
	Append
	Prepend
	Touch
	GAT   // get-and-touch: Get's checks plus Touch's expiry rewrite
	Flush // flush_all: drops every key; enters every key's subhistory
)

var kindNames = [...]string{
	"get", "set", "add", "replace", "cas", "delete", "incr", "decr",
	"append", "prepend", "touch", "gat", "flush",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// Res is the normalized outcome of an operation, the union of every
// error a session-level call can report plus ResUnknown for calls whose
// effect is uncertain (the call was killed by a crash and recovered; it
// may or may not have applied).
type Res uint8

const (
	ResOK Res = iota
	ResNotFound
	ResExists      // Add on a live key
	ResCASMismatch // CAS generation didn't match
	ResNotNumeric  // incr/decr on a non-numeric value
	ResTooBig      // append/prepend past MaxValueLen
	ResNoSpace     // allocation failed even after eviction
	ResUnknown     // killed mid-call: effect may or may not have applied
)

var resNames = [...]string{
	"ok", "notfound", "exists", "casmismatch", "notnumeric", "toobig",
	"nospace", "unknown",
}

func (r Res) String() string {
	if int(r) < len(resNames) {
		return resNames[r]
	}
	return "?"
}

// Op is one recorded operation: invocation arguments, the observed
// result, and the invoke/return timestamps that define its concurrency
// window (A happens-before B iff A.Return < B.Invoke).
type Op struct {
	ID     int    // position in the merged history (diagnostics)
	Client int    // tape (worker) index
	Invoke uint64 // recorder clock at call
	Return uint64 // recorder clock at return; MaxUint64 if never returned

	Kind  Kind
	Key   string
	Val   []byte // payload for Set/Add/Replace/CAS/Append/Prepend
	Flags uint32
	Exp   int64  // ABSOLUTE expiry argument (0 = never) for stores/Touch/GAT
	Delta uint64 // incr/decr amount
	CASArg uint64
	Now   int64 // store clock when the op ran (frozen or stepped by driver)

	Res    Res
	RVal   []byte // Get/GAT/MGet value
	RFlags uint32
	RCAS   uint64 // Gets/MGet observed generation; 0 = not observed
	RNum   uint64 // incr/decr arithmetic result

	// Pending marks an op whose call never returned (the worker died
	// mid-call). A pending op may linearize anywhere after its invoke or
	// not at all.
	Pending bool
}

// State is the reference machine's per-key state.
type State struct {
	Present bool
	Val     string
	Flags   uint32
	Exp     int64  // absolute; 0 = never
	CAS     uint64 // observed generation; 0 = fresh/unbound
}

// Canon renders the state compactly for memoization keys.
func (s State) Canon() string {
	if !s.Present {
		return "-"
	}
	return s.Val + "\x00" + strconv.FormatUint(uint64(s.Flags), 36) +
		"\x00" + strconv.FormatInt(s.Exp, 36) +
		"\x00" + strconv.FormatUint(s.CAS, 36)
}

// Model carries the cross-key context a single-key step needs.
type Model struct {
	// MaxValueLen bounds append/prepend results; 0 means no bound (the
	// baseline store has no explicit value cap).
	MaxValueLen int
	// CasVals maps each CAS generation observed anywhere in the history
	// to the value it was observed with — the uniqueness pre-pass. A CAS
	// op whose target generation is unobserved in the current branch can
	// only have succeeded if the current value matches what that
	// generation is known to hold. nil disables the refinement (CAS on
	// an unbound state is then always allowed to succeed).
	CasVals map[uint64]string
	// CrashMayDrop admits the crash-recovery drop contract: a killed
	// chain-editing mutation (store/delete/arith/pend) may cost the key
	// entirely, because the structural repair pass frees items the
	// crashed op had half-linked or quarantined (RepairReport's
	// ItemsDropped). Enable when checking fault-injected histories;
	// leave off for crash-free runs, where a lost key is a real bug.
	CrashMayDrop bool
}

// numeric reports whether v parses as a uint64 under memcached's rules
// (1..20 digits, no sign, value < 2^64) and its value — mirroring the
// store's parseASCIIUint including the overflow rejection.
func numeric(v string) (uint64, bool) {
	if len(v) == 0 || len(v) > 20 {
		return 0, false
	}
	const cutoff = ^uint64(0) / 10
	var n uint64
	for i := 0; i < len(v); i++ {
		d := v[i] - '0'
		if d > 9 {
			return 0, false
		}
		if n > cutoff || (n == cutoff && uint64(d) > ^uint64(0)%10) {
			return 0, false
		}
		n = n*10 + uint64(d)
	}
	return n, true
}

// reap applies lazy expiry: at op time now, an expired item is logically
// absent (the store reaps it on the next locked touch).
func reap(st State, now int64) State {
	if st.Present && st.Exp != 0 && st.Exp <= now {
		return State{}
	}
	return st
}

// casMatch reports whether a CAS op with argument c can have matched in
// state st (whose generation may be unobserved).
func (m *Model) casMatch(st State, c uint64) bool {
	if st.CAS != 0 {
		return st.CAS == c
	}
	if m.CasVals == nil {
		return true // no refinement available; be permissive
	}
	v, seen := m.CasVals[c]
	return seen && v == st.Val
}

// casCanMismatch reports whether a CAS op with argument c can have
// mismatched in state st.
func (m *Model) casCanMismatch(st State, c uint64) bool {
	if st.CAS != 0 {
		return st.CAS != c
	}
	// Unbound generation: the store's actual generation is unknown, so a
	// mismatch is always possible (generations are unique per store
	// event; an unobserved one is overwhelmingly likely ≠ c, and nothing
	// recorded pins it).
	return true
}

// stored is the post-state of a successful store of (val, flags, exp):
// a fresh, unobserved generation.
func stored(val []byte, flags uint32, exp int64) State {
	return State{Present: true, Val: string(val), Flags: flags, Exp: exp}
}

// Step advances st by op, returning every state the key can be in
// afterwards, or nil if op's recorded result is impossible from st.
// Deterministic completed ops yield exactly one successor; pending and
// unknown-result ops branch (applied / not applied).
func (m *Model) Step(st State, op *Op) []State {
	cur := reap(st, op.Now)
	if op.Res == ResUnknown || op.Pending {
		return m.stepUnknown(cur, op)
	}
	switch op.Kind {
	case Get:
		switch op.Res {
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		case ResOK:
			return m.stepRead(cur, op, false)
		}
	case GAT:
		switch op.Res {
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		case ResOK:
			return m.stepRead(cur, op, true)
		}
	case Set:
		switch op.Res {
		case ResOK:
			return []State{stored(op.Val, op.Flags, op.Exp)}
		case ResNoSpace:
			return []State{cur}
		}
	case Add:
		switch op.Res {
		case ResOK:
			if cur.Present {
				return nil
			}
			return []State{stored(op.Val, op.Flags, op.Exp)}
		case ResExists:
			if !cur.Present {
				return nil
			}
			return []State{cur}
		case ResNoSpace:
			return []State{cur} // alloc fails before the presence check
		}
	case Replace:
		switch op.Res {
		case ResOK:
			if !cur.Present {
				return nil
			}
			return []State{stored(op.Val, op.Flags, op.Exp)}
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		case ResNoSpace:
			return []State{cur}
		}
	case CAS:
		switch op.Res {
		case ResOK:
			if !cur.Present || !m.casMatch(cur, op.CASArg) {
				return nil
			}
			return []State{stored(op.Val, op.Flags, op.Exp)}
		case ResCASMismatch:
			if !cur.Present || !m.casCanMismatch(cur, op.CASArg) {
				return nil
			}
			return []State{cur}
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		case ResNoSpace:
			return []State{cur}
		}
	case Delete:
		switch op.Res {
		case ResOK:
			if !cur.Present {
				return nil
			}
			return []State{{}}
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		}
	case Incr, Decr:
		switch op.Res {
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		case ResNotNumeric:
			if !cur.Present {
				return nil
			}
			if _, ok := numeric(cur.Val); ok {
				return nil
			}
			return []State{cur}
		case ResOK:
			next, ok := m.arith(cur, op)
			if !ok || next == nil {
				return nil
			}
			return []State{*next}
		case ResNoSpace:
			// Width-change reallocation failed; the old item is intact.
			if !cur.Present {
				return nil
			}
			if _, ok := numeric(cur.Val); !ok {
				return nil
			}
			return []State{cur}
		}
	case Append, Prepend:
		switch op.Res {
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		case ResTooBig:
			if !cur.Present || m.MaxValueLen == 0 ||
				len(cur.Val)+len(op.Val) <= m.MaxValueLen {
				return nil
			}
			return []State{cur}
		case ResOK:
			next := m.pend(cur, op)
			if next == nil {
				return nil
			}
			return []State{*next}
		case ResNoSpace:
			if !cur.Present {
				return nil
			}
			return []State{cur}
		}
	case Touch:
		switch op.Res {
		case ResOK:
			if !cur.Present {
				return nil
			}
			next := cur
			next.Exp = op.Exp
			return []State{next}
		case ResNotFound:
			if cur.Present {
				return nil
			}
			return []State{cur}
		}
	case Flush:
		if op.Res == ResOK {
			return []State{{}}
		}
	}
	return nil
}

// stepRead validates a successful Get/GAT against cur and returns the
// post-state: value/flags must match, the observed generation must be
// consistent, and GAT rewrites the expiry.
func (m *Model) stepRead(cur State, op *Op, touch bool) []State {
	if !cur.Present || cur.Val != string(op.RVal) || cur.Flags != op.RFlags {
		return nil
	}
	next := cur
	if op.RCAS != 0 {
		switch cur.CAS {
		case 0:
			next.CAS = op.RCAS // bind the fresh generation to the observation
		case op.RCAS:
		default:
			return nil // two different generations observed with no write between
		}
	}
	if touch {
		next.Exp = op.Exp
	}
	return []State{next}
}

// arith computes the incr/decr successor. Returns (nil, true) when the
// recorded RNum contradicts the model value.
func (m *Model) arith(cur State, op *Op) (*State, bool) {
	if !cur.Present {
		return nil, false
	}
	v, ok := numeric(cur.Val)
	if !ok {
		return nil, false
	}
	if op.Kind == Decr {
		if op.Delta > v {
			v = 0 // decr saturates at zero
		} else {
			v -= op.Delta
		}
	} else {
		v += op.Delta // incr wraps at 2^64
	}
	if op.Res == ResOK && op.RNum != v {
		return nil, true
	}
	next := cur
	next.Val = strconv.FormatUint(v, 10)
	next.CAS = 0 // rewrite mints a fresh generation
	return &next, true
}

// pend computes the append/prepend successor, or nil if impossible.
func (m *Model) pend(cur State, op *Op) *State {
	if !cur.Present {
		return nil
	}
	if m.MaxValueLen != 0 && len(cur.Val)+len(op.Val) > m.MaxValueLen {
		return nil
	}
	next := cur
	if op.Kind == Append {
		next.Val = cur.Val + string(op.Val)
	} else {
		next.Val = string(op.Val) + cur.Val
	}
	next.CAS = 0
	return &next
}

// stepUnknown branches a killed/pending op: it may have had no effect,
// or any effect its success path could have produced. The no-effect
// branch always exists, so such ops can always linearize.
func (m *Model) stepUnknown(cur State, op *Op) []State {
	out := []State{cur}
	add := func(s State) {
		for _, have := range out {
			if have == s {
				return
			}
		}
		out = append(out, s)
	}
	drop := func() {
		if m.CrashMayDrop {
			add(State{})
		}
	}
	switch op.Kind {
	case Get, GAT:
		if op.Kind == GAT && cur.Present {
			t := cur
			t.Exp = op.Exp
			add(t)
		}
	case Set:
		add(stored(op.Val, op.Flags, op.Exp))
		drop()
	case Add:
		if !cur.Present {
			add(stored(op.Val, op.Flags, op.Exp))
		}
		drop()
	case Replace:
		if cur.Present {
			add(stored(op.Val, op.Flags, op.Exp))
		}
		drop()
	case CAS:
		if cur.Present && m.casMatch(cur, op.CASArg) {
			add(stored(op.Val, op.Flags, op.Exp))
		}
		drop()
	case Delete:
		if cur.Present {
			add(State{})
		}
	case Incr, Decr:
		if next, _ := m.arith(cur, &Op{Kind: op.Kind, Delta: op.Delta, Res: ResUnknown}); next != nil {
			add(*next)
		}
		drop()
	case Append, Prepend:
		if next := m.pend(cur, op); next != nil {
			add(*next)
		}
		drop()
	case Touch:
		if cur.Present {
			t := cur
			t.Exp = op.Exp
			add(t)
		}
	case Flush:
		add(State{})
	}
	return out
}
