package model

import "testing"

func step1(t *testing.T, m *Model, st State, op Op) State {
	t.Helper()
	next := m.Step(st, &op)
	if len(next) != 1 {
		t.Fatalf("Step(%v %s) = %d states, want 1", op.Kind, op.Res, len(next))
	}
	return next[0]
}

func mustReject(t *testing.T, m *Model, st State, op Op) {
	t.Helper()
	if next := m.Step(st, &op); next != nil {
		t.Fatalf("Step(%v %s) accepted from %q, want reject", op.Kind, op.Res, st.Canon())
	}
}

func TestBasicSequence(t *testing.T) {
	m := &Model{MaxValueLen: 1 << 20}
	st := State{}
	st = step1(t, m, st, Op{Kind: Set, Val: []byte("7"), Flags: 3, Res: ResOK})
	st = step1(t, m, st, Op{Kind: Get, RVal: []byte("7"), RFlags: 3, Res: ResOK})
	st = step1(t, m, st, Op{Kind: Incr, Delta: 5, RNum: 12, Res: ResOK})
	if st.Val != "12" {
		t.Fatalf("after incr: %q", st.Val)
	}
	st = step1(t, m, st, Op{Kind: Append, Val: []byte("0"), Res: ResOK})
	st = step1(t, m, st, Op{Kind: Prepend, Val: []byte("1"), Res: ResOK})
	if st.Val != "1120" {
		t.Fatalf("after pend: %q", st.Val)
	}
	st = step1(t, m, st, Op{Kind: Delete, Res: ResOK})
	step1(t, m, st, Op{Kind: Get, Res: ResNotFound})
	mustReject(t, m, st, Op{Kind: Get, RVal: []byte("1120"), Res: ResOK})
}

func TestWrapAndSaturation(t *testing.T) {
	m := &Model{}
	st := State{Present: true, Val: "18446744073709551615"}
	// incr wraps at 2^64...
	next := step1(t, m, st, Op{Kind: Incr, Delta: 1, RNum: 0, Res: ResOK})
	if next.Val != "0" {
		t.Fatalf("wrap: %q", next.Val)
	}
	// ...and a wrong recorded result is rejected.
	mustReject(t, m, st, Op{Kind: Incr, Delta: 1, RNum: 1, Res: ResOK})
	// decr saturates at zero.
	st = State{Present: true, Val: "5"}
	next = step1(t, m, st, Op{Kind: Decr, Delta: 10, RNum: 0, Res: ResOK})
	if next.Val != "0" {
		t.Fatalf("saturate: %q", next.Val)
	}
	// 20-digit value >= 2^64 is not numeric, matching the store's parser.
	st = State{Present: true, Val: "18446744073709551616"}
	step1(t, m, st, Op{Kind: Incr, Delta: 1, Res: ResNotNumeric})
	mustReject(t, m, st, Op{Kind: Incr, Delta: 1, RNum: 0, Res: ResOK})
}

func TestExpiry(t *testing.T) {
	m := &Model{}
	st := State{Present: true, Val: "v", Exp: 100}
	// Live before the deadline, logically absent at it.
	step1(t, m, st, Op{Kind: Get, RVal: []byte("v"), Res: ResOK, Now: 99})
	step1(t, m, st, Op{Kind: Get, Res: ResNotFound, Now: 100})
	mustReject(t, m, st, Op{Kind: Get, RVal: []byte("v"), Res: ResOK, Now: 100})
	// A mutation op at the deadline sees a miss too.
	step1(t, m, st, Op{Kind: Incr, Delta: 1, Res: ResNotFound, Now: 100})
	// Touch moves the deadline; the op's own Now gates the reap first.
	next := step1(t, m, st, Op{Kind: Touch, Exp: 200, Res: ResOK, Now: 99})
	step1(t, m, next, Op{Kind: Get, RVal: []byte("v"), Res: ResOK, Now: 150})
	// GAT returns the value and rewrites the deadline in one step.
	next = step1(t, m, st, Op{Kind: GAT, RVal: []byte("v"), Exp: 300, Res: ResOK, Now: 99})
	if next.Exp != 300 {
		t.Fatalf("gat exp: %d", next.Exp)
	}
}

func TestCASBinding(t *testing.T) {
	m := &Model{CasVals: map[uint64]string{41: "other", 42: "v"}}
	st := State{Present: true, Val: "v"} // generation unobserved
	// A Gets binds the fresh generation to its observation...
	next := step1(t, m, st, Op{Kind: Get, RVal: []byte("v"), RCAS: 42, Res: ResOK})
	if next.CAS != 42 {
		t.Fatalf("bind: %d", next.CAS)
	}
	// ...and a second Gets must agree.
	step1(t, m, next, Op{Kind: Get, RVal: []byte("v"), RCAS: 42, Res: ResOK})
	mustReject(t, m, next, Op{Kind: Get, RVal: []byte("v"), RCAS: 43, Res: ResOK})
	// CAS success against the bound generation; mismatch impossible.
	step1(t, m, next, Op{Kind: CAS, CASArg: 42, Val: []byte("w"), Res: ResOK})
	mustReject(t, m, next, Op{Kind: CAS, CASArg: 42, Val: []byte("w"), Res: ResCASMismatch})
	// Against an unbound generation, success requires the pre-pass value
	// to match the current one; mismatch is always possible.
	step1(t, m, st, Op{Kind: CAS, CASArg: 42, Val: []byte("w"), Res: ResOK})
	mustReject(t, m, st, Op{Kind: CAS, CASArg: 41, Val: []byte("w"), Res: ResOK})
	step1(t, m, st, Op{Kind: CAS, CASArg: 41, Val: []byte("w"), Res: ResCASMismatch})
	// A successful store resets to a fresh generation.
	next = step1(t, m, next, Op{Kind: Set, Val: []byte("x"), Res: ResOK})
	if next.CAS != 0 {
		t.Fatalf("store left generation bound: %d", next.CAS)
	}
}

func TestAddReplaceFlush(t *testing.T) {
	m := &Model{}
	absent, live := State{}, State{Present: true, Val: "v"}
	step1(t, m, absent, Op{Kind: Add, Val: []byte("a"), Res: ResOK})
	mustReject(t, m, live, Op{Kind: Add, Val: []byte("a"), Res: ResOK})
	step1(t, m, live, Op{Kind: Add, Val: []byte("a"), Res: ResExists})
	mustReject(t, m, absent, Op{Kind: Add, Val: []byte("a"), Res: ResExists})
	step1(t, m, live, Op{Kind: Replace, Val: []byte("r"), Res: ResOK})
	mustReject(t, m, absent, Op{Kind: Replace, Val: []byte("r"), Res: ResOK})
	next := step1(t, m, live, Op{Kind: Flush, Res: ResOK})
	if next.Present {
		t.Fatal("flush left the key present")
	}
}

func TestPendBounds(t *testing.T) {
	m := &Model{MaxValueLen: 8}
	st := State{Present: true, Val: "12345"}
	step1(t, m, st, Op{Kind: Append, Val: []byte("678"), Res: ResOK}) // exactly at cap
	step1(t, m, st, Op{Kind: Append, Val: []byte("6789"), Res: ResTooBig})
	mustReject(t, m, st, Op{Kind: Append, Val: []byte("678"), Res: ResTooBig})
	mustReject(t, m, st, Op{Kind: Append, Val: []byte("6789"), Res: ResOK})
}

func TestUnknownBranches(t *testing.T) {
	m := &Model{}
	live := State{Present: true, Val: "5"}
	// A killed Set may or may not have applied: two states.
	next := m.Step(live, &Op{Kind: Set, Val: []byte("9"), Res: ResUnknown})
	if len(next) != 2 {
		t.Fatalf("killed set: %d states", len(next))
	}
	// A killed incr on a live numeric key branches; on a miss it cannot
	// have applied.
	if n := m.Step(live, &Op{Kind: Incr, Delta: 1, Res: ResUnknown}); len(n) != 2 {
		t.Fatalf("killed incr: %d states", len(n))
	}
	if n := m.Step(State{}, &Op{Kind: Incr, Delta: 1, Res: ResUnknown}); len(n) != 1 {
		t.Fatalf("killed incr on miss: %d states", len(n))
	}
	// A killed Set writing the value already present: dedup to one state.
	if n := m.Step(live, &Op{Kind: Set, Val: []byte("5"), Res: ResUnknown}); len(n) != 1 {
		t.Fatalf("idempotent killed set: %d states", len(n))
	}
}

// TestCrashMayDrop: under the repair contract, a killed chain-editing
// mutation may additionally cost the key entirely; reads never can.
func TestCrashMayDrop(t *testing.T) {
	m := &Model{CrashMayDrop: true}
	live := State{Present: true, Val: "5"}
	// Killed incr: no-effect, applied, or dropped.
	if n := m.Step(live, &Op{Kind: Incr, Delta: 1, Res: ResUnknown}); len(n) != 3 {
		t.Fatalf("killed incr with drop contract: %d states", len(n))
	}
	// Killed get: still just no-effect.
	if n := m.Step(live, &Op{Kind: Get, Res: ResUnknown}); len(n) != 1 {
		t.Fatalf("killed get with drop contract: %d states", len(n))
	}
	// A COMPLETED op never drops: the contract covers crashed calls only.
	if n := m.Step(live, &Op{Kind: Incr, Delta: 1, RNum: 6, Res: ResOK}); len(n) != 1 || !n[0].Present {
		t.Fatalf("completed incr under drop contract: %+v", n)
	}
}
