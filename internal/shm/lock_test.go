package shm

import (
	"sync"
	"testing"
)

func TestLockBasic(t *testing.T) {
	h := New(PageSize)
	const lock = 128
	if h.LockHolder(lock) != 0 {
		t.Fatal("fresh lock should be unheld")
	}
	h.LockAcquire(lock, 7)
	if h.LockHolder(lock) != 7 {
		t.Fatalf("holder = %d, want 7", h.LockHolder(lock))
	}
	if h.LockTry(lock, 8) {
		t.Fatal("LockTry should fail while held")
	}
	h.LockRelease(lock)
	if !h.LockTry(lock, 8) {
		t.Fatal("LockTry should succeed after release")
	}
	h.LockRelease(lock)
}

func TestLockReleaseUnheldPanics(t *testing.T) {
	h := New(PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	h.LockRelease(0)
}

func TestLockZeroOwnerPanics(t *testing.T) {
	h := New(PageSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero owner")
		}
	}()
	h.LockAcquire(0, 0)
}

func TestLockMutualExclusion(t *testing.T) {
	h := New(PageSize)
	const lock = 0
	const counter = 64
	const goroutines = 8
	const iters = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				h.LockAcquire(lock, id+1)
				// Non-atomic read-modify-write: only safe under the lock.
				h.Store64(counter, h.Load64(counter)+1)
				h.LockRelease(lock)
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := h.Load64(counter); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", got, goroutines*iters)
	}
}

func TestCrossViewLocking(t *testing.T) {
	// Two "processes" mapping the same heap at different bases contend on
	// the same heap-resident lock: the PTHREAD_PROCESS_SHARED analog.
	h := New(PageSize)
	v1, err := h.Map(0x10000)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := h.Map(0x7f0000000000)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, v := range []*View{v1, v2} {
		wg.Add(1)
		go func(v *View, id uint64) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				v.Heap().LockAcquire(0, id)
				v.Heap().Store64(8, v.Heap().Load64(8)+1)
				v.Heap().LockRelease(0)
			}
		}(v, uint64(v.Base()))
	}
	wg.Wait()
	if got := h.Load64(8); got != 6000 {
		t.Fatalf("cross-view counter = %d, want 6000", got)
	}
}
