// Package shm provides the shared-memory substrate for the protected-library
// key-value store: a word-addressed heap that can be mapped into multiple
// simulated address spaces ("views"), persisted to a backing file, and used
// for cross-process synchronization via heap-resident locks.
//
// The heap plays the role of the mmap'd file that Ralloc manages in the
// paper.  All offsets in this package are byte offsets from the start of the
// heap; word operations require 8-byte alignment.  Byte order within words is
// little-endian, matching x86, so byte-level and word-level accesses to the
// same location agree.
package shm

import (
	"fmt"
	"sync/atomic"
)

const (
	// WordSize is the size in bytes of the heap's native word.
	WordSize = 8
	// PageSize is the protection granularity: protection keys are assigned
	// to whole pages (see package pku).
	PageSize = 4096
)

// Heap is a shared memory region. A single Heap is shared by every simulated
// process that attaches to the store; each process addresses it through its
// own View. The zero value is not usable; create heaps with New or Load.
type Heap struct {
	words []uint64
	size  uint64 // in bytes; always a multiple of PageSize
}

// New creates a heap of the given size in bytes, rounded up to a whole
// number of pages. The heap starts zeroed.
func New(size uint64) *Heap {
	if size == 0 {
		size = PageSize
	}
	size = (size + PageSize - 1) &^ uint64(PageSize-1)
	return &Heap{
		words: make([]uint64, size/WordSize),
		size:  size,
	}
}

// Size returns the heap size in bytes.
func (h *Heap) Size() uint64 { return h.size }

// Pages returns the number of protection pages in the heap.
func (h *Heap) Pages() int { return int(h.size / PageSize) }

// A Fault describes an out-of-range or misaligned heap access. It is the
// shared-memory analog of SIGSEGV/SIGBUS and is delivered by panicking,
// because — exactly as with a real segfault — the faulting code cannot
// continue. The hodor runtime recovers Faults at the trampoline boundary.
type Fault struct {
	Off   uint64 // faulting byte offset
	Len   uint64 // length of the attempted access
	Write bool   // true if the access was a store
	Why   string
}

func (f *Fault) Error() string {
	kind := "load"
	if f.Write {
		kind = "store"
	}
	return fmt.Sprintf("shm: fault: %s of %d bytes at offset %#x: %s", kind, f.Len, f.Off, f.Why)
}

func (h *Heap) check(off, n uint64, write bool) {
	// Overflow-proof form: a base past the end of the heap faults even for
	// zero-length accesses (off == h.size is allowed, matching the usual
	// one-past-the-end pointer rule), and the length check cannot wrap
	// because it subtracts on the side already known to be in range.
	if off > h.size || n > h.size-off {
		panic(&Fault{Off: off, Len: n, Write: write, Why: "out of range"})
	}
}

func (h *Heap) checkWord(off uint64, write bool) {
	h.check(off, WordSize, write)
	if off%WordSize != 0 {
		panic(&Fault{Off: off, Len: WordSize, Write: write, Why: "misaligned word access"})
	}
}

// Load64 returns the word at byte offset off. off must be 8-aligned.
func (h *Heap) Load64(off uint64) uint64 {
	h.checkWord(off, false)
	return h.words[off/WordSize]
}

// Store64 stores v at byte offset off. off must be 8-aligned.
func (h *Heap) Store64(off uint64, v uint64) {
	h.checkWord(off, true)
	h.words[off/WordSize] = v
}

// AtomicLoad64 atomically loads the word at off.
func (h *Heap) AtomicLoad64(off uint64) uint64 {
	h.checkWord(off, false)
	return atomic.LoadUint64(&h.words[off/WordSize])
}

// AtomicStore64 atomically stores v at off.
func (h *Heap) AtomicStore64(off uint64, v uint64) {
	h.checkWord(off, true)
	atomic.StoreUint64(&h.words[off/WordSize], v)
}

// CAS64 performs an atomic compare-and-swap on the word at off.
func (h *Heap) CAS64(off uint64, old, new uint64) bool {
	h.checkWord(off, true)
	return atomic.CompareAndSwapUint64(&h.words[off/WordSize], old, new)
}

// Add64 atomically adds delta to the word at off and returns the new value.
// Negative deltas are expressed in two's complement by the caller
// (e.g. Add64(off, ^uint64(0)) subtracts one).
func (h *Heap) Add64(off uint64, delta uint64) uint64 {
	h.checkWord(off, true)
	return atomic.AddUint64(&h.words[off/WordSize], delta)
}

// Swap64 atomically swaps the word at off with v and returns the old value.
func (h *Heap) Swap64(off uint64, v uint64) uint64 {
	h.checkWord(off, true)
	return atomic.SwapUint64(&h.words[off/WordSize], v)
}

// Load32 returns the 32-bit value at byte offset off. off must be 4-aligned.
func (h *Heap) Load32(off uint64) uint32 {
	h.check(off, 4, false)
	if off%4 != 0 {
		panic(&Fault{Off: off, Len: 4, Why: "misaligned 32-bit access"})
	}
	w := h.words[off/WordSize]
	if off%WordSize == 4 {
		return uint32(w >> 32)
	}
	return uint32(w)
}

// Store32 stores a 32-bit value at byte offset off. off must be 4-aligned.
func (h *Heap) Store32(off uint64, v uint32) {
	h.check(off, 4, true)
	if off%4 != 0 {
		panic(&Fault{Off: off, Len: 4, Write: true, Why: "misaligned 32-bit access"})
	}
	w := &h.words[off/WordSize]
	if off%WordSize == 4 {
		*w = (*w & 0x00000000ffffffff) | uint64(v)<<32
	} else {
		*w = (*w & 0xffffffff00000000) | uint64(v)
	}
}

// Zero clears n bytes starting at off.
func (h *Heap) Zero(off, n uint64) {
	h.check(off, n, true)
	for n > 0 && off%WordSize != 0 {
		h.storeByte(off, 0)
		off++
		n--
	}
	for n >= WordSize {
		h.words[off/WordSize] = 0
		off += WordSize
		n -= WordSize
	}
	for n > 0 {
		h.storeByte(off, 0)
		off++
		n--
	}
}
