package shm

import "fmt"

// A View is one process's mapping of the heap into its own address space.
//
// The paper notes that the shared heap generally cannot be mapped at the
// same address in every process, which is why Ralloc stores only
// position-independent pptrs inside the heap. We reproduce that constraint
// faithfully: each simulated process maps the heap at a distinct virtual
// base address, and "absolute pointers" (virtual addresses) obtained through
// one view are meaningless in another. Tests exercise the same heap bytes
// under several bases to prove position independence.
type View struct {
	h    *Heap
	base uint64
}

// Map creates a view of the heap at the given virtual base address. base
// must be page-aligned and nonzero (so that virtual address 0 remains an
// invalid pointer in every view).
func (h *Heap) Map(base uint64) (*View, error) {
	if base == 0 {
		return nil, fmt.Errorf("shm: cannot map heap at address 0")
	}
	if base%PageSize != 0 {
		return nil, fmt.Errorf("shm: map base %#x is not page-aligned", base)
	}
	if base+h.size < base {
		return nil, fmt.Errorf("shm: map base %#x overflows the address space", base)
	}
	return &View{h: h, base: base}, nil
}

// Heap returns the underlying shared heap.
func (v *View) Heap() *Heap { return v.h }

// Base returns the virtual address at which this view maps the heap.
func (v *View) Base() uint64 { return v.base }

// Addr translates a heap offset into a virtual address in this view.
func (v *View) Addr(off uint64) uint64 {
	if off > v.h.size {
		panic(&Fault{Off: off, Why: "Addr of offset beyond heap"})
	}
	return v.base + off
}

// Off translates a virtual address in this view back into a heap offset.
// It panics with a Fault if the address does not fall inside the mapping,
// which models dereferencing a wild pointer.
func (v *View) Off(addr uint64) uint64 {
	if addr < v.base || addr >= v.base+v.h.size {
		panic(&Fault{Off: addr, Why: "virtual address outside mapping"})
	}
	return addr - v.base
}

// Contains reports whether addr falls inside this mapping.
func (v *View) Contains(addr uint64) bool {
	return addr >= v.base && addr < v.base+v.h.size
}
