//go:build race

package shm

import "sync/atomic"

// Relaxed word accessors, race-detector build: real atomics. The seqlock
// read path intentionally races with in-place writers and relies on
// sequence validation to discard anything it read during a mutation; the
// race detector cannot model that protocol, so these builds make every
// relaxed access an atomic one. That keeps `go test -race` meaningful for
// the rest of the code while the normal build pays nothing (see
// relaxed_norace.go).

func relaxedLoadWord(p *uint64) uint64 { return atomic.LoadUint64(p) }

func relaxedStoreWord(p *uint64, v uint64) { atomic.StoreUint64(p, v) }
