package shm

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFlushLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.heap")
	h := New(2 * PageSize)
	h.Store64(0, 0x1122334455667788)
	h.WriteBytes(4096, []byte("persisted value"))
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != h.Size() {
		t.Fatalf("size = %d, want %d", back.Size(), h.Size())
	}
	if back.Load64(0) != 0x1122334455667788 {
		t.Fatal("word 0 not persisted")
	}
	if got := string(back.Bytes(4096, 15)); got != "persisted value" {
		t.Fatalf("bytes = %q", got)
	}
}

func TestFlushReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.heap")
	h := New(PageSize)
	h.Store64(0, 1)
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	h.Store64(0, 2)
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Load64(0) != 2 {
		t.Fatal("second flush not visible")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a heap image at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load of garbage should fail")
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Load of missing file should fail")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.heap")
	h := New(PageSize)
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load of truncated image should fail")
	}
}
