package shm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"plibmc/internal/faultpoint"
)

func TestFlushLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.heap")
	h := New(2 * PageSize)
	h.Store64(0, 0x1122334455667788)
	h.WriteBytes(4096, []byte("persisted value"))
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != h.Size() {
		t.Fatalf("size = %d, want %d", back.Size(), h.Size())
	}
	if back.Load64(0) != 0x1122334455667788 {
		t.Fatal("word 0 not persisted")
	}
	if got := string(back.Bytes(4096, 15)); got != "persisted value" {
		t.Fatalf("bytes = %q", got)
	}
}

func TestFlushReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.heap")
	h := New(PageSize)
	h.Store64(0, 1)
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	h.Store64(0, 2)
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Load64(0) != 2 {
		t.Fatal("second flush not visible")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temporary file left behind")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk")
	if err := os.WriteFile(path, []byte("not a heap image at all......"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load of garbage should fail")
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("Load of missing file should fail")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.heap")
	h := New(PageSize)
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load of truncated image should fail")
	}
}

func TestLoadTruncatedReturnsTypedError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trunc.heap")
	h := New(4 * PageSize)
	h.Store64(0, 7)
	if err := h.WriteImage(path, 3); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-body: the header parses but the file is shorter than the
	// geometry it declares. Must fail with ErrImageTruncated, not panic or
	// construct a short heap.
	if err := os.WriteFile(path, full[:len(full)-PageSize], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if !errors.Is(err, ErrImageTruncated) {
		t.Fatalf("err = %v, want ErrImageTruncated", err)
	}
	// Header info must still be readable so candidate ranking can report it.
	info, err := ReadImageInfo(path)
	if err != nil || info.Generation != 3 {
		t.Fatalf("ReadImageInfo = %+v, %v", info, err)
	}
}

func TestLoadRejectsBitFlip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flip.heap")
	h := New(4 * PageSize)
	for off := uint64(0); off < h.Size(); off += WordSize {
		h.Store64(off, off^0xdeadbeef)
	}
	if err := h.WriteImage(path, 1); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the body.
	full[imageHeaderSize+64+PageSize] ^= 0x10
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if !errors.Is(err, ErrImageChecksum) {
		t.Fatalf("err = %v, want ErrImageChecksum", err)
	}
}

func TestLoadRejectsHeaderCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hdr.heap")
	h := New(PageSize)
	if err := h.WriteImage(path, 9); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[16] ^= 0x01 // generation field: header CRC must catch it
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrImageChecksum) {
		t.Fatalf("err = %v, want ErrImageChecksum", err)
	}
	if _, err := ReadImageInfo(path); !errors.Is(err, ErrImageChecksum) {
		t.Fatalf("ReadImageInfo err = %v, want ErrImageChecksum", err)
	}
}

func TestVerifyImageLocalizesCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "verify.heap")
	h := New(3 * ImageRegionSize)
	for off := uint64(0); off < h.Size(); off += WordSize {
		h.Store64(off, off*3+1)
	}
	if err := h.WriteImage(path, 4); err != nil {
		t.Fatal(err)
	}
	rep, err := VerifyImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Info.Generation != 4 {
		t.Fatalf("clean image: report %+v", rep)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bodyOff := uint64(imageHeaderSize) + rep.Info.Regions*8
	full[bodyOff+ImageRegionSize+17] ^= 0x80 // region 1
	full[bodyOff+2*ImageRegionSize+5] ^= 0x01 // region 2
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = VerifyImage(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.ImageCRCOK || !rep.TableOK {
		t.Fatalf("corrupt image: report %+v", rep)
	}
	if len(rep.BadRegions) != 2 || rep.BadRegions[0].Region != 1 || rep.BadRegions[1].Region != 2 {
		t.Fatalf("bad regions = %+v", rep.BadRegions)
	}
}

func TestImageCandidatesOrdering(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "store.heap")
	h := New(PageSize)
	h.Store64(0, 11)
	if err := h.WriteImage(CheckpointSlot(base, 5), 5); err != nil {
		t.Fatal(err)
	}
	h.Store64(0, 12)
	if err := h.WriteImage(CheckpointSlot(base, 6), 6); err != nil {
		t.Fatal(err)
	}
	if CheckpointSlot(base, 5) == CheckpointSlot(base, 6) {
		t.Fatal("adjacent generations must use different slots")
	}
	cands := ImageCandidates(base)
	if len(cands) != 2 {
		t.Fatalf("candidates = %+v", cands)
	}
	if cands[0].Generation != 6 || cands[1].Generation != 5 {
		t.Fatalf("order = %+v", cands)
	}
	// Corrupt the newest slot's header: it must sort behind the readable
	// older generation, and the older generation must still load.
	full, err := os.ReadFile(cands[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	full[0] ^= 0xff
	if err := os.WriteFile(cands[0].Path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	cands = ImageCandidates(base)
	if len(cands) != 2 || cands[0].Generation != 5 || cands[1].Err == nil {
		t.Fatalf("after corruption: %+v", cands)
	}
	back, info, err := LoadImage(cands[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 5 || back.Load64(0) != 11 {
		t.Fatalf("fallback image: gen %d, word %d", info.Generation, back.Load64(0))
	}
}

func TestWriteImageCrashAtFaultPoints(t *testing.T) {
	for _, point := range []string{"persist.header", "persist.mid_image", "persist.rename"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "store.heap")
			h := New(4 * ImageRegionSize)
			h.Store64(0, 100)
			if err := h.WriteImage(path, 1); err != nil {
				t.Fatal(err)
			}
			h.Store64(0, 200)
			if err := faultpoint.Arm(point, func() { panic("crash: " + point) }); err != nil {
				t.Fatal(err)
			}
			defer faultpoint.DisarmAll()
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s did not fire", point)
					}
				}()
				_ = h.WriteImage(path, 2)
			}()
			// The previous complete image must still load.
			back, info, err := LoadImage(path)
			if err != nil {
				t.Fatal(err)
			}
			if info.Generation != 1 || back.Load64(0) != 100 {
				t.Fatalf("after crash at %s: gen %d, word %d", point, info.Generation, back.Load64(0))
			}
		})
	}
}
