package shm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Persistence.
//
// The paper's bookkeeping process flushes the entire store back to the
// heap's backing file on shutdown, and a restarted store maps the file and
// finds its contents intact (position independence makes the bytes valid at
// any base). Full crash consistency is explicitly future work in the paper;
// likewise our Flush is an orderly-shutdown mechanism, not a crash-safe log.

const (
	fileMagic   = 0x50_4C_49_42_48_45_41_50 // "PLIBHEAP"
	fileVersion = 1
)

// Flush writes the heap image to the named file, replacing any previous
// contents. It is atomic with respect to crashes of the flusher itself:
// the image is written to a temporary file and renamed into place.
func (h *Heap) Flush(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("shm: flush: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint64(hdr[8:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[16:], h.size)
	if _, err := w.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("shm: flush: %w", err)
	}
	var buf [WordSize]byte
	for _, word := range h.words {
		binary.LittleEndian.PutUint64(buf[:], word)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return fmt.Errorf("shm: flush: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("shm: flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("shm: flush: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("shm: flush: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("shm: flush: %w", err)
	}
	return nil
}

// Load reads a heap image previously written by Flush.
func Load(path string) (*Heap, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shm: load: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("shm: load: short header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != fileMagic {
		return nil, fmt.Errorf("shm: load: %s is not a heap image", path)
	}
	if v := binary.LittleEndian.Uint64(hdr[8:]); v != fileVersion {
		return nil, fmt.Errorf("shm: load: unsupported image version %d", v)
	}
	size := binary.LittleEndian.Uint64(hdr[16:])
	if size == 0 || size%PageSize != 0 || size > 1<<40 {
		return nil, fmt.Errorf("shm: load: implausible heap size %d", size)
	}
	h := &Heap{words: make([]uint64, size/WordSize), size: size}
	var buf [WordSize]byte
	for i := range h.words {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("shm: load: truncated image at word %d: %w", i, err)
		}
		h.words[i] = binary.LittleEndian.Uint64(buf[:])
	}
	return h, nil
}
