package shm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"sort"

	"plibmc/internal/faultpoint"
)

// Persistence.
//
// The paper's bookkeeping process flushes the entire store back to the
// heap's backing file on shutdown, and a restarted store maps the file and
// finds its contents intact (position independence makes the bytes valid at
// any base). The paper calls full crash consistency future work; this
// implementation closes part of that gap: images are generation-stamped and
// checksummed (a whole-image checksum plus one checksum per 64 KiB region,
// the allocator's superblock granule), written via write-temp-then-atomic-
// rename, and validated on load. A reader that finds a torn, truncated or
// bit-flipped image gets a typed error instead of silently attaching to
// garbage, and the checkpoint coordinator keeps two alternating image slots
// (an A/B scheme) so the newest generation that verifies can always be
// recovered.

const (
	fileMagic   = 0x50_4C_49_42_48_45_41_50 // "PLIBHEAP"
	fileVersion = 2

	// ImageRegionSize is the per-region checksum granularity: one CRC per
	// 64 KiB of heap, matching the allocator's superblock (chunk) size, so
	// a verification failure localizes corruption to one superblock.
	ImageRegionSize = 64 << 10

	// imageHeaderSize is the fixed on-disk header:
	//
	//	+0   magic        "PLIBHEAP"
	//	+8   version      2
	//	+16  generation   checkpoint generation stamp
	//	+24  heap size    bytes (multiple of PageSize)
	//	+32  region size  ImageRegionSize at write time
	//	+40  region count ceil(size/regionSize)
	//	+48  image CRC    crc64(whole serialized body)
	//	+56  table CRC    crc64(region-checksum table)
	//	+64  reserved     (zero)
	//	+88  header CRC   crc64(bytes 0..88)
	imageHeaderSize = 96
)

// crcTable is the ECMA polynomial table shared by every image checksum.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Typed image errors. Loaders wrap these (errors.Is-matchable) so callers
// can distinguish "not an image at all" from "an image that failed its
// integrity checks" and decide whether a fallback generation should engage.
var (
	ErrNotImage       = errors.New("shm: not a heap image")
	ErrImageVersion   = errors.New("shm: unsupported heap image version")
	ErrImageTruncated = errors.New("shm: truncated heap image")
	ErrImageChecksum  = errors.New("shm: heap image checksum mismatch")
)

// Crash-injection sites inside the image writer, covered by the fault
// matrix: dying at any of them must leave a previous image loadable.
var (
	fpPersistHeader   = faultpoint.New("persist.header")    // header written, body not
	fpPersistMidImage = faultpoint.New("persist.mid_image") // half the regions written
	fpPersistRename   = faultpoint.New("persist.rename")    // temp complete, not yet renamed
)

// ImageInfo describes a heap image's header.
type ImageInfo struct {
	Path       string
	Generation uint64
	HeapBytes  uint64
	RegionSize uint64
	Regions    uint64
}

// regionBytes serializes region r of the heap into buf (little-endian
// words) and returns the filled prefix; the final region may be short.
func (h *Heap) regionBytes(r uint64, buf []byte) []byte {
	start := r * ImageRegionSize
	n := h.size - start
	if n > ImageRegionSize {
		n = ImageRegionSize
	}
	b := buf[:n]
	w := start / WordSize
	for i := uint64(0); i < n; i += WordSize {
		binary.LittleEndian.PutUint64(b[i:], h.words[w])
		w++
	}
	return b
}

func regionCount(size uint64) uint64 {
	return (size + ImageRegionSize - 1) / ImageRegionSize
}

// WriteImage writes a generation-stamped, checksummed heap image to the
// named file, replacing any previous contents. It is atomic with respect
// to crashes of the writer itself: the image is written to a temporary
// file, synced, and renamed into place, so a crash at any point leaves
// either the previous image or the complete new one — never a blend.
func (h *Heap) WriteImage(path string, generation uint64) error {
	nRegions := regionCount(h.size)
	buf := make([]byte, ImageRegionSize)
	table := make([]byte, nRegions*8)
	var imageCRC uint64
	for r := uint64(0); r < nRegions; r++ {
		b := h.regionBytes(r, buf)
		binary.LittleEndian.PutUint64(table[r*8:], crc64.Checksum(b, crcTable))
		imageCRC = crc64.Update(imageCRC, crcTable, b)
	}
	hdr := make([]byte, imageHeaderSize)
	binary.LittleEndian.PutUint64(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint64(hdr[8:], fileVersion)
	binary.LittleEndian.PutUint64(hdr[16:], generation)
	binary.LittleEndian.PutUint64(hdr[24:], h.size)
	binary.LittleEndian.PutUint64(hdr[32:], ImageRegionSize)
	binary.LittleEndian.PutUint64(hdr[40:], nRegions)
	binary.LittleEndian.PutUint64(hdr[48:], imageCRC)
	binary.LittleEndian.PutUint64(hdr[56:], crc64.Checksum(table, crcTable))
	binary.LittleEndian.PutUint64(hdr[88:], crc64.Checksum(hdr[:88], crcTable))

	tmp := path + ".tmp"
	fs := currentImageFS()
	// A failed write must not leave a half-built temp file behind: the
	// prior image (and its .a/.b slots) stay the loadable state, and the
	// next attempt starts clean. Rename failures leave tmp for the same
	// reason a crash there would — it is complete and synced — unless the
	// injected fault already destroyed it.
	werr := func(err error) error {
		fs.Remove(tmp) //nolint:errcheck // best-effort cleanup of a torn temp
		return fmt.Errorf("shm: write image: %w", err)
	}
	f, err := fs.Create(tmp)
	if err != nil {
		return werr(err)
	}
	// A fault-point handler panics out of this function mid-write (the
	// simulated crash); close the descriptor on that unwind too so the
	// torn temp file is not also a leaked handle.
	closed := false
	defer func() {
		if !closed {
			f.Close()
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.Write(hdr); err != nil {
		return werr(err)
	}
	fpPersistHeader.Maybe()
	if _, err := w.Write(table); err != nil {
		return werr(err)
	}
	for r := uint64(0); r < nRegions; r++ {
		if r == nRegions/2 {
			fpPersistMidImage.Maybe()
		}
		if _, err := w.Write(h.regionBytes(r, buf)); err != nil {
			return werr(err)
		}
	}
	if err := w.Flush(); err != nil {
		return werr(err)
	}
	if err := f.Sync(); err != nil {
		return werr(err)
	}
	closed = true
	if err := f.Close(); err != nil {
		return werr(err)
	}
	fpPersistRename.Maybe()
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("shm: write image: %w", err)
	}
	return nil
}

// Flush writes the heap image to the named file with generation 1. It is
// the orderly-shutdown form of WriteImage for callers that do not run the
// generation-stamped A/B checkpoint scheme.
func (h *Heap) Flush(path string) error {
	return h.WriteImage(path, 1)
}

// readHeader reads and validates the fixed image header at byte 0 of r.
func readHeader(path string, r io.Reader) (ImageInfo, error) {
	hdr := make([]byte, imageHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return ImageInfo{}, fmt.Errorf("%w: %s: short header: %v", ErrNotImage, path, err)
	}
	return parseHeader(path, hdr)
}

// readRegionTable reads the region-checksum table after the header and
// returns it, validating it against the header's table CRC.
func readRegionTable(path string, r io.Reader, hdrTableCRC uint64, nRegions uint64) ([]uint64, error) {
	table := make([]byte, nRegions*8)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("%w: %s: short region table: %v", ErrImageTruncated, path, err)
	}
	if got := crc64.Checksum(table, crcTable); got != hdrTableCRC {
		return nil, fmt.Errorf("%w: %s: region table crc %#x, want %#x", ErrImageChecksum, path, got, hdrTableCRC)
	}
	crcs := make([]uint64, nRegions)
	for i := range crcs {
		crcs[i] = binary.LittleEndian.Uint64(table[i*8:])
	}
	return crcs, nil
}

// openImage opens an image file, validates the header against the file's
// actual length (a truncated or size-mismatched file fails cleanly here,
// before any region is read), and returns the reader positioned after the
// header plus the header's image/table CRCs.
func openImage(path string) (*os.File, *bufio.Reader, ImageInfo, uint64, uint64, error) {
	var info ImageInfo
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, info, 0, 0, fmt.Errorf("shm: load: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, info, 0, 0, fmt.Errorf("shm: load: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	// Re-read the raw header here (not via readHeader) so the image/table
	// CRC fields can be returned alongside the parsed info.
	hdr := make([]byte, imageHeaderSize)
	if _, err := io.ReadFull(r, hdr); err != nil {
		f.Close()
		return nil, nil, info, 0, 0, fmt.Errorf("%w: %s: short header: %v", ErrNotImage, path, err)
	}
	info, err = parseHeader(path, hdr)
	if err != nil {
		f.Close()
		return nil, nil, info, 0, 0, err
	}
	want := int64(imageHeaderSize) + int64(info.Regions*8) + int64(info.HeapBytes)
	if st.Size() != want {
		f.Close()
		return nil, nil, info, 0, 0, fmt.Errorf("%w: %s is %d bytes, want %d", ErrImageTruncated, path, st.Size(), want)
	}
	imageCRC := binary.LittleEndian.Uint64(hdr[48:])
	tableCRC := binary.LittleEndian.Uint64(hdr[56:])
	return f, r, info, imageCRC, tableCRC, nil
}

// parseHeader validates a raw header block (see readHeader for the lazy
// io.Reader form used by ReadImageInfo).
func parseHeader(path string, hdr []byte) (ImageInfo, error) {
	var info ImageInfo
	if binary.LittleEndian.Uint64(hdr[0:]) != fileMagic {
		return info, fmt.Errorf("%w: %s", ErrNotImage, path)
	}
	if v := binary.LittleEndian.Uint64(hdr[8:]); v != fileVersion {
		return info, fmt.Errorf("%w: %s has version %d, want %d", ErrImageVersion, path, v, fileVersion)
	}
	if got, want := crc64.Checksum(hdr[:88], crcTable), binary.LittleEndian.Uint64(hdr[88:]); got != want {
		return info, fmt.Errorf("%w: %s: header crc %#x, want %#x", ErrImageChecksum, path, got, want)
	}
	info = ImageInfo{
		Path:       path,
		Generation: binary.LittleEndian.Uint64(hdr[16:]),
		HeapBytes:  binary.LittleEndian.Uint64(hdr[24:]),
		RegionSize: binary.LittleEndian.Uint64(hdr[32:]),
		Regions:    binary.LittleEndian.Uint64(hdr[40:]),
	}
	if info.HeapBytes == 0 || info.HeapBytes%PageSize != 0 || info.HeapBytes > 1<<40 {
		return info, fmt.Errorf("%w: %s: implausible heap size %d", ErrNotImage, path, info.HeapBytes)
	}
	if info.RegionSize != ImageRegionSize || info.Regions != regionCount(info.HeapBytes) {
		return info, fmt.Errorf("%w: %s: inconsistent region geometry", ErrNotImage, path)
	}
	return info, nil
}

// ReadImageInfo reads and validates only an image's header. Cheap: used to
// rank candidate images by generation without reading their bodies.
func ReadImageInfo(path string) (ImageInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ImageInfo{}, fmt.Errorf("shm: load: %w", err)
	}
	defer f.Close()
	return readHeader(path, f)
}

// LoadImage reads a heap image, validating the header, the region-checksum
// table, every per-region checksum, and the whole-image checksum. Any
// mismatch returns a typed error and no heap.
func LoadImage(path string) (*Heap, ImageInfo, error) {
	f, r, info, wantImageCRC, wantTableCRC, err := openImage(path)
	if err != nil {
		return nil, info, err
	}
	defer f.Close()
	crcs, err := readRegionTable(path, r, wantTableCRC, info.Regions)
	if err != nil {
		return nil, info, err
	}
	h := &Heap{words: make([]uint64, info.HeapBytes/WordSize), size: info.HeapBytes}
	buf := make([]byte, ImageRegionSize)
	var imageCRC uint64
	for reg := uint64(0); reg < info.Regions; reg++ {
		start := reg * ImageRegionSize
		n := info.HeapBytes - start
		if n > ImageRegionSize {
			n = ImageRegionSize
		}
		b := buf[:n]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, info, fmt.Errorf("%w: %s: region %d: %v", ErrImageTruncated, path, reg, err)
		}
		if got := crc64.Checksum(b, crcTable); got != crcs[reg] {
			return nil, info, fmt.Errorf("%w: %s: region %d (heap %#x..%#x) crc %#x, want %#x",
				ErrImageChecksum, path, reg, start, start+n, got, crcs[reg])
		}
		imageCRC = crc64.Update(imageCRC, crcTable, b)
		w := start / WordSize
		for i := uint64(0); i < n; i += WordSize {
			h.words[w] = binary.LittleEndian.Uint64(b[i:])
			w++
		}
	}
	if imageCRC != wantImageCRC {
		return nil, info, fmt.Errorf("%w: %s: image crc %#x, want %#x", ErrImageChecksum, path, imageCRC, wantImageCRC)
	}
	return h, info, nil
}

// Load reads a heap image previously written by WriteImage or Flush.
func Load(path string) (*Heap, error) {
	h, _, err := LoadImage(path)
	return h, err
}

// RegionFault describes one region whose checksum failed verification.
type RegionFault struct {
	Region   uint64 // region index
	Off, Len uint64 // heap byte range the region covers
	Got      uint64
	Want     uint64
}

// VerifyReport is the result of a full offline image verification.
type VerifyReport struct {
	Info       ImageInfo
	BadRegions []RegionFault
	TableOK    bool
	ImageCRCOK bool
}

// OK reports whether the image verified completely.
func (r *VerifyReport) OK() bool {
	return r.TableOK && r.ImageCRCOK && len(r.BadRegions) == 0
}

// VerifyImage checks every checksum in an image without building a heap,
// and — unlike LoadImage, which stops at the first mismatch — scans to the
// end so the report localizes all corrupt regions. Header-level problems
// (bad magic, version, truncation, torn header) are returned as errors;
// body corruption is returned in the report.
func VerifyImage(path string) (*VerifyReport, error) {
	f, r, info, wantImageCRC, wantTableCRC, err := openImage(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep := &VerifyReport{Info: info, TableOK: true, ImageCRCOK: true}
	table := make([]byte, info.Regions*8)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("%w: %s: short region table: %v", ErrImageTruncated, path, err)
	}
	if crc64.Checksum(table, crcTable) != wantTableCRC {
		rep.TableOK = false
	}
	buf := make([]byte, ImageRegionSize)
	var imageCRC uint64
	for reg := uint64(0); reg < info.Regions; reg++ {
		start := reg * ImageRegionSize
		n := info.HeapBytes - start
		if n > ImageRegionSize {
			n = ImageRegionSize
		}
		b := buf[:n]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, fmt.Errorf("%w: %s: region %d: %v", ErrImageTruncated, path, reg, err)
		}
		want := binary.LittleEndian.Uint64(table[reg*8:])
		if got := crc64.Checksum(b, crcTable); got != want {
			rep.BadRegions = append(rep.BadRegions, RegionFault{
				Region: reg, Off: start, Len: n, Got: got, Want: want,
			})
		}
		imageCRC = crc64.Update(imageCRC, crcTable, b)
	}
	if imageCRC != wantImageCRC {
		rep.ImageCRCOK = false
	}
	return rep, nil
}

// CheckpointSlot returns the image path for a given checkpoint generation
// under base: generations alternate between base+".a" and base+".b" (the
// dual-image scheme), so a crash while writing one slot always leaves the
// other slot's complete previous generation on disk.
func CheckpointSlot(base string, generation uint64) string {
	if generation%2 == 1 {
		return base + ".a"
	}
	return base + ".b"
}

// Candidate is one existing image file that may satisfy a load of base.
type Candidate struct {
	Path       string
	Generation uint64 // 0 if the header was unreadable
	Err        error  // non-nil if the header failed validation
}

// ImageCandidates enumerates the image files that can satisfy a load of
// base — the base path itself (an orderly-shutdown flush or a pre-A/B
// image) and the two checkpoint slots — ordered best-first: readable
// headers by descending generation, then unreadable files (still listed so
// a caller's error report can name them). Missing files are omitted.
func ImageCandidates(base string) []Candidate {
	var out []Candidate
	for _, p := range []string{base, base + ".a", base + ".b"} {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		info, err := ReadImageInfo(p)
		out = append(out, Candidate{Path: p, Generation: info.Generation, Err: err})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if (out[i].Err == nil) != (out[j].Err == nil) {
			return out[i].Err == nil
		}
		return out[i].Generation > out[j].Generation
	})
	return out
}
