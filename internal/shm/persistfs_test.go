package shm

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Disk-fault matrix for the image-write path: inject a failure at every
// step of create → write → sync → close → rename and require, for each,
// that WriteImage reports the error, the previous image is untouched and
// still verifies, no half-built temp file survives (except a failed
// rename, where the temp is complete and synced), and a clean retry
// succeeds once the fault clears.
func TestWriteImageFaultMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")
	h := New(2 * PageSize)
	h.Store64(0, 0xdeadbeef)
	h.WriteBytes(PageSize, []byte("generation one"))
	if err := h.WriteImage(path, 1); err != nil {
		t.Fatal(err)
	}

	steps := []FaultStep{FaultCreate, FaultWrite, FaultSync, FaultClose, FaultRename}
	for _, step := range steps {
		t.Run(step.String(), func(t *testing.T) {
			h.Store64(0, 0xfeedface) // the doomed generation's content
			ffs := &FaultFS{Step: step, Err: errors.New("injected disk fault")}
			restore := SetImageFS(ffs)
			err := h.WriteImage(path, 2)
			restore()
			if err == nil {
				t.Fatalf("WriteImage with %v fault should fail", step)
			}
			if ffs.Faults() == 0 {
				t.Fatalf("%v fault never injected", step)
			}

			// The prior image is still the loadable state.
			info, err := ReadImageInfo(path)
			if err != nil || info.Generation != 1 {
				t.Fatalf("prior image after %v fault: gen=%d err=%v", step, info.Generation, err)
			}
			rep, err := VerifyImage(path)
			if err != nil || !rep.OK() {
				t.Fatalf("prior image no longer verifies after %v fault: %+v %v", step, rep, err)
			}
			back, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if back.Load64(0) != 0xdeadbeef {
				t.Fatalf("%v fault leaked doomed content into the prior image", step)
			}

			// No half-built temp file survives. A failed rename keeps the
			// temp — it is complete and synced, exactly like a crash at
			// that instruction — so exempt it.
			if step != FaultRename {
				if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
					t.Fatalf("%v fault left a temp file behind", step)
				}
			} else {
				os.Remove(path + ".tmp")
			}

			// The fault was transient: a clean retry lands generation 2,
			// then restore generation 1 state for the next matrix row.
			if err := h.WriteImage(path, 2); err != nil {
				t.Fatalf("retry after %v fault: %v", step, err)
			}
			h.Store64(0, 0xdeadbeef)
			if err := h.WriteImage(path, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A mid-image write fault (not just the first buffered flush) must be
// contained the same way: WriteN targets a later underlying write.
func TestWriteImageFaultMidWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")
	h := New(8 << 20) // several 1 MiB buffered flushes
	h.WriteBytes(0, []byte("first"))
	if err := h.WriteImage(path, 1); err != nil {
		t.Fatal(err)
	}
	ffs := &FaultFS{Step: FaultWrite, WriteN: 3, Err: errors.New("injected mid-image EIO")}
	restore := SetImageFS(ffs)
	err := h.WriteImage(path, 2)
	restore()
	if err == nil || ffs.Faults() == 0 {
		t.Fatalf("mid-image write fault not injected (err=%v faults=%d)", err, ffs.Faults())
	}
	if info, err := ReadImageInfo(path); err != nil || info.Generation != 1 {
		t.Fatalf("prior image after mid-write fault: %+v %v", info, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("mid-write fault left a temp file behind")
	}
}

// The torn rename — the worst non-atomic-filesystem outcome, where the
// temp vanishes and the target was never replaced — must leave the prior
// checkpoint slot carrying the store.
func TestWriteImageTornRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.img")
	h := New(PageSize)
	h.Store64(0, 7)
	if err := h.WriteImage(path, 1); err != nil {
		t.Fatal(err)
	}
	ffs := &FaultFS{Step: FaultRename, Torn: true, Err: errors.New("injected torn rename")}
	restore := SetImageFS(ffs)
	err := h.WriteImage(path, 2)
	restore()
	if err == nil {
		t.Fatal("torn rename should fail")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("torn rename should have destroyed the temp file")
	}
	back, err := Load(path)
	if err != nil || back.Load64(0) != 7 {
		t.Fatalf("prior image lost after torn rename: %v", err)
	}
}

// The A/B slot scheme composes with disk faults: a fault while writing
// slot B leaves slot A the best candidate; ImageCandidates never offers
// the torn slot.
func TestCheckpointSlotsSurviveFaults(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "shard.img")
	h := New(PageSize)
	h.Store64(0, 1)
	if err := h.WriteImage(CheckpointSlot(base, 1), 1); err != nil {
		t.Fatal(err)
	}
	h.Store64(0, 2)
	ffs := &FaultFS{Step: FaultSync, Err: errors.New("injected ENOSPC")}
	restore := SetImageFS(ffs)
	err := h.WriteImage(CheckpointSlot(base, 2), 2)
	restore()
	if err == nil {
		t.Fatal("faulted slot write should fail")
	}
	cands := ImageCandidates(base)
	if len(cands) == 0 || cands[0].Generation != 1 || cands[0].Err != nil {
		t.Fatalf("best candidate after faulted slot write = %+v, want intact gen 1", cands)
	}
	// The disk recovers: the next slot write wins the candidate race.
	if err := h.WriteImage(CheckpointSlot(base, 2), 2); err != nil {
		t.Fatal(err)
	}
	if cands := ImageCandidates(base); cands[0].Generation != 2 {
		t.Fatalf("recovered slot write not best candidate: %+v", cands)
	}
}
