package shm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRoundsToPage(t *testing.T) {
	cases := []struct {
		req, want uint64
	}{
		{0, PageSize},
		{1, PageSize},
		{PageSize, PageSize},
		{PageSize + 1, 2 * PageSize},
		{10 * PageSize, 10 * PageSize},
	}
	for _, c := range cases {
		h := New(c.req)
		if h.Size() != c.want {
			t.Errorf("New(%d).Size() = %d, want %d", c.req, h.Size(), c.want)
		}
		if h.Pages() != int(c.want/PageSize) {
			t.Errorf("New(%d).Pages() = %d, want %d", c.req, h.Pages(), c.want/PageSize)
		}
	}
}

func TestLoadStore64(t *testing.T) {
	h := New(PageSize)
	h.Store64(0, 0xdeadbeefcafebabe)
	if got := h.Load64(0); got != 0xdeadbeefcafebabe {
		t.Fatalf("Load64(0) = %#x", got)
	}
	h.Store64(h.Size()-8, 42)
	if got := h.Load64(h.Size() - 8); got != 42 {
		t.Fatalf("Load64(end) = %d", got)
	}
}

func TestStore32Halves(t *testing.T) {
	h := New(PageSize)
	h.Store64(0, 0xffffffffffffffff)
	h.Store32(0, 0x11223344)
	h.Store32(4, 0x55667788)
	if got := h.Load64(0); got != 0x5566778811223344 {
		t.Fatalf("word after two Store32 = %#x", got)
	}
	if h.Load32(0) != 0x11223344 || h.Load32(4) != 0x55667788 {
		t.Fatalf("Load32 halves = %#x %#x", h.Load32(0), h.Load32(4))
	}
}

func mustFault(t *testing.T, f func()) *Fault {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected Fault panic, got none")
		}
	}()
	var fault *Fault
	func() {
		defer func() {
			r := recover()
			var ok bool
			fault, ok = r.(*Fault)
			if !ok {
				t.Fatalf("panic value %v is not *Fault", r)
			}
			panic(r) // re-panic for the outer check
		}()
		f()
	}()
	return fault
}

func TestFaults(t *testing.T) {
	h := New(PageSize)
	t.Run("out of range load", func(t *testing.T) {
		mustFault(t, func() { h.Load64(h.Size()) })
	})
	t.Run("out of range store", func(t *testing.T) {
		mustFault(t, func() { h.Store64(h.Size(), 1) })
	})
	t.Run("misaligned word", func(t *testing.T) {
		mustFault(t, func() { h.Load64(4) })
	})
	t.Run("misaligned 32", func(t *testing.T) {
		mustFault(t, func() { h.Load32(2) })
	})
	t.Run("wraparound", func(t *testing.T) {
		mustFault(t, func() { h.ReadBytes(^uint64(0)-4, make([]byte, 16)) })
	})
	t.Run("fault error text", func(t *testing.T) {
		f := &Fault{Off: 0x10, Len: 8, Write: true, Why: "out of range"}
		if f.Error() == "" {
			t.Fatal("empty fault message")
		}
	})
}

func TestReadWriteBytesAligned(t *testing.T) {
	h := New(PageSize)
	src := []byte("hello, shared world!")
	h.WriteBytes(16, src)
	got := h.Bytes(16, uint64(len(src)))
	if !bytes.Equal(got, src) {
		t.Fatalf("roundtrip = %q", got)
	}
}

func TestReadWriteBytesUnaligned(t *testing.T) {
	h := New(PageSize)
	for off := uint64(0); off < 16; off++ {
		for n := 0; n < 40; n++ {
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(off*31 + uint64(i) + 1)
			}
			h.WriteBytes(off, src)
			got := h.Bytes(off, uint64(n))
			if !bytes.Equal(got, src) {
				t.Fatalf("off=%d n=%d roundtrip mismatch", off, n)
			}
		}
	}
}

func TestWriteBytesPreservesNeighbors(t *testing.T) {
	h := New(PageSize)
	h.WriteBytes(0, bytes.Repeat([]byte{0xAA}, 64))
	h.WriteBytes(13, []byte{1, 2, 3})
	want := bytes.Repeat([]byte{0xAA}, 64)
	copy(want[13:], []byte{1, 2, 3})
	if got := h.Bytes(0, 64); !bytes.Equal(got, want) {
		t.Fatalf("neighbors clobbered:\n got %x\nwant %x", got, want)
	}
}

func TestLittleEndianAgreement(t *testing.T) {
	h := New(PageSize)
	h.Store64(0, 0x0807060504030201)
	got := h.Bytes(0, 8)
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	if !bytes.Equal(got, want) {
		t.Fatalf("byte view of word = %x, want %x", got, want)
	}
}

func TestZero(t *testing.T) {
	h := New(PageSize)
	h.WriteBytes(0, bytes.Repeat([]byte{0xFF}, 128))
	h.Zero(5, 50)
	for i := uint64(0); i < 128; i++ {
		b := h.Bytes(i, 1)[0]
		inZeroed := i >= 5 && i < 55
		if inZeroed && b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
		if !inZeroed && b != 0xFF {
			t.Fatalf("byte %d = %#x, want 0xFF", i, b)
		}
	}
}

func TestEqualBytes(t *testing.T) {
	h := New(PageSize)
	h.WriteBytes(3, []byte("abcdef"))
	if !h.EqualBytes(3, []byte("abcdef")) {
		t.Fatal("EqualBytes false negative")
	}
	if h.EqualBytes(3, []byte("abcdeg")) {
		t.Fatal("EqualBytes false positive")
	}
	if h.EqualBytes(4, []byte("abcdef")) {
		t.Fatal("EqualBytes at wrong offset")
	}
}

// Property: for any offset and payload, WriteBytes then ReadBytes is the
// identity, regardless of alignment.
func TestQuickBytesRoundtrip(t *testing.T) {
	h := New(16 * PageSize)
	f := func(off uint16, payload []byte) bool {
		o := uint64(off)
		if o+uint64(len(payload)) > h.Size() {
			return true // skip out-of-range draws
		}
		h.WriteBytes(o, payload)
		return bytes.Equal(h.Bytes(o, uint64(len(payload))), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: byte writes and word reads agree under little-endian packing.
func TestQuickByteWordAgreement(t *testing.T) {
	h := New(PageSize)
	f := func(v uint64) bool {
		h.Store64(64, v)
		b := h.Bytes(64, 8)
		var back uint64
		for i := 7; i >= 0; i-- {
			back = back<<8 | uint64(b[i])
		}
		return back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAtomics(t *testing.T) {
	h := New(PageSize)
	h.AtomicStore64(8, 10)
	if h.AtomicLoad64(8) != 10 {
		t.Fatal("atomic store/load")
	}
	if !h.CAS64(8, 10, 20) {
		t.Fatal("CAS should succeed")
	}
	if h.CAS64(8, 10, 30) {
		t.Fatal("CAS should fail")
	}
	if h.Add64(8, 5) != 25 {
		t.Fatal("Add64")
	}
	if h.Add64(8, ^uint64(0)) != 24 { // subtract one
		t.Fatal("Add64 negative")
	}
	if h.Swap64(8, 99) != 24 || h.AtomicLoad64(8) != 99 {
		t.Fatal("Swap64")
	}
}

func TestConcurrentAdds(t *testing.T) {
	h := New(PageSize)
	const goroutines = 8
	const iters = 10000
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < iters; i++ {
				h.Add64(0, 1)
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	if got := h.Load64(0); got != goroutines*iters {
		t.Fatalf("counter = %d, want %d", got, goroutines*iters)
	}
}

func TestRandomizedMixedAccess(t *testing.T) {
	// Model test: mirror every heap operation on a plain byte slice and
	// compare the full images at the end.
	h := New(4 * PageSize)
	model := make([]byte, h.Size())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		off := uint64(rng.Intn(int(h.Size() - 64)))
		switch rng.Intn(3) {
		case 0:
			n := rng.Intn(48) + 1
			b := make([]byte, n)
			rng.Read(b)
			h.WriteBytes(off, b)
			copy(model[off:], b)
		case 1:
			woff := off &^ 7
			v := rng.Uint64()
			h.Store64(woff, v)
			for j := 0; j < 8; j++ {
				model[woff+uint64(j)] = byte(v >> (8 * j))
			}
		case 2:
			n := uint64(rng.Intn(48) + 1)
			h.Zero(off, n)
			for j := uint64(0); j < n; j++ {
				model[off+j] = 0
			}
		}
	}
	if got := h.Bytes(0, h.Size()); !bytes.Equal(got, model) {
		t.Fatal("heap image diverged from model")
	}
}
