package shm

import "encoding/binary"

// Seqlocks and relaxed heap accessors.
//
// A seqlock is one heap-resident word: even while stable, odd while a
// writer is mutating the data it guards. Writers (who already hold the
// conventional lock for mutual exclusion among themselves) bump the word
// to odd before the first mutation and back to even after the last one.
// A lock-free reader samples the word, performs its reads with the
// Relaxed* accessors below, and then validates that the word is unchanged
// and even; on mismatch it discards everything it read and retries.
//
// The bumps use Add64, a full atomic RMW, so they order the writer's data
// stores between them. The reader's sample and validation use AtomicLoad64.
// Data accesses in between go through the Relaxed* accessors: plain word
// operations in normal builds (stale-but-never-torn on the x86-like memory
// model this package simulates), real atomics under the race detector —
// see relaxed_norace.go / relaxed_race.go.

// SeqRead atomically samples the seqlock word at off. The caller treats an
// odd value as "writer active" and retries or falls back.
func (h *Heap) SeqRead(off uint64) uint64 {
	return h.AtomicLoad64(off)
}

// SeqValidate re-samples the seqlock word and reports whether an optimistic
// read section that began at sequence start saw a stable snapshot.
func (h *Heap) SeqValidate(off, start uint64) bool {
	return start&1 == 0 && h.AtomicLoad64(off) == start
}

// SeqWriteBegin marks the guarded data as mutating (even → odd). The caller
// must already hold the writer-side lock; bumps are not self-synchronizing.
func (h *Heap) SeqWriteBegin(off uint64) {
	h.Add64(off, 1)
}

// SeqWriteEnd marks the guarded data as stable again (odd → even).
func (h *Heap) SeqWriteEnd(off uint64) {
	h.Add64(off, 1)
}

// RelaxedLoad64 loads the word at off with relaxed ordering (see package
// comment above). off must be 8-aligned.
func (h *Heap) RelaxedLoad64(off uint64) uint64 {
	h.checkWord(off, false)
	return relaxedLoadWord(&h.words[off/WordSize])
}

// RelaxedStore64 stores v at off with relaxed ordering. off must be
// 8-aligned. The caller must hold the writer-side lock for the word.
func (h *Heap) RelaxedStore64(off uint64, v uint64) {
	h.checkWord(off, true)
	relaxedStoreWord(&h.words[off/WordSize], v)
}

// RelaxedLoad32 loads the 32-bit value at off (4-aligned) with relaxed
// ordering, reading the containing word once so a concurrent writer of the
// other half cannot tear the access.
func (h *Heap) RelaxedLoad32(off uint64) uint32 {
	h.check(off, 4, false)
	if off%4 != 0 {
		panic(&Fault{Off: off, Len: 4, Why: "misaligned 32-bit access"})
	}
	w := relaxedLoadWord(&h.words[off/WordSize])
	if off%WordSize == 4 {
		return uint32(w >> 32)
	}
	return uint32(w)
}

// RelaxedStore32 stores a 32-bit value at off (4-aligned) as a full-word
// read-modify-write with relaxed ordering. The caller must hold the
// writer-side lock for the word: the RMW is not atomic against other
// writers, only safe against concurrent relaxed readers.
func (h *Heap) RelaxedStore32(off uint64, v uint32) {
	h.check(off, 4, true)
	if off%4 != 0 {
		panic(&Fault{Off: off, Len: 4, Write: true, Why: "misaligned 32-bit access"})
	}
	p := &h.words[off/WordSize]
	w := relaxedLoadWord(p)
	if off%WordSize == 4 {
		w = (w & 0x00000000ffffffff) | uint64(v)<<32
	} else {
		w = (w & 0xffffffff00000000) | uint64(v)
	}
	relaxedStoreWord(p, w)
}

// AtomicReadBytes copies len(dst) bytes starting at off into dst using
// word-granular relaxed loads: the copy may observe a stale or mid-update
// value (to be rejected by seqlock validation) but never a torn word, and
// it is race-detector clean against writers using the relaxed stores.
func (h *Heap) AtomicReadBytes(off uint64, dst []byte) {
	h.check(off, uint64(len(dst)), false)
	i := 0
	for off%WordSize != 0 && i < len(dst) {
		w := relaxedLoadWord(&h.words[off/WordSize])
		dst[i] = byte(w >> ((off % WordSize) * 8))
		off++
		i++
	}
	for len(dst)-i >= WordSize {
		binary.LittleEndian.PutUint64(dst[i:], relaxedLoadWord(&h.words[off/WordSize]))
		off += WordSize
		i += WordSize
	}
	for i < len(dst) {
		w := relaxedLoadWord(&h.words[off/WordSize])
		dst[i] = byte(w >> ((off % WordSize) * 8))
		off++
		i++
	}
}

// AtomicWriteBytes copies src into the heap at off using word-granular
// relaxed stores, the writer-side counterpart of AtomicReadBytes for
// in-place value rewrites under a held lock. Partial words at the edges
// are read-modify-written, so the caller's lock must cover them.
func (h *Heap) AtomicWriteBytes(off uint64, src []byte) {
	h.check(off, uint64(len(src)), true)
	i := 0
	for off%WordSize != 0 && i < len(src) {
		p := &h.words[off/WordSize]
		sh := (off % WordSize) * 8
		relaxedStoreWord(p, (relaxedLoadWord(p)&^(uint64(0xff)<<sh))|uint64(src[i])<<sh)
		off++
		i++
	}
	for len(src)-i >= WordSize {
		relaxedStoreWord(&h.words[off/WordSize], binary.LittleEndian.Uint64(src[i:]))
		off += WordSize
		i += WordSize
	}
	for i < len(src) {
		p := &h.words[off/WordSize]
		sh := (off % WordSize) * 8
		relaxedStoreWord(p, (relaxedLoadWord(p)&^(uint64(0xff)<<sh))|uint64(src[i])<<sh)
		off++
		i++
	}
}
