package shm

import "encoding/binary"

// storeByte stores one byte without alignment requirements.
func (h *Heap) storeByte(off uint64, b byte) {
	sh := (off % WordSize) * 8
	w := &h.words[off/WordSize]
	*w = (*w &^ (uint64(0xff) << sh)) | uint64(b)<<sh
}

// loadByte loads one byte without alignment requirements.
func (h *Heap) loadByte(off uint64) byte {
	return byte(h.words[off/WordSize] >> ((off % WordSize) * 8))
}

// ReadBytes copies len(dst) bytes starting at byte offset off into dst.
func (h *Heap) ReadBytes(off uint64, dst []byte) {
	h.check(off, uint64(len(dst)), false)
	i := 0
	for off%WordSize != 0 && i < len(dst) {
		dst[i] = h.loadByte(off)
		off++
		i++
	}
	// Unrolled aligned path: the bulk of a 5 KB value copy.
	w := off / WordSize
	for len(dst)-i >= 4*WordSize {
		binary.LittleEndian.PutUint64(dst[i:], h.words[w])
		binary.LittleEndian.PutUint64(dst[i+8:], h.words[w+1])
		binary.LittleEndian.PutUint64(dst[i+16:], h.words[w+2])
		binary.LittleEndian.PutUint64(dst[i+24:], h.words[w+3])
		w += 4
		i += 4 * WordSize
	}
	off = w * WordSize
	for len(dst)-i >= WordSize {
		binary.LittleEndian.PutUint64(dst[i:], h.words[off/WordSize])
		off += WordSize
		i += WordSize
	}
	for i < len(dst) {
		dst[i] = h.loadByte(off)
		off++
		i++
	}
}

// WriteBytes copies src into the heap starting at byte offset off.
func (h *Heap) WriteBytes(off uint64, src []byte) {
	h.check(off, uint64(len(src)), true)
	i := 0
	for off%WordSize != 0 && i < len(src) {
		h.storeByte(off, src[i])
		off++
		i++
	}
	w := off / WordSize
	for len(src)-i >= 4*WordSize {
		h.words[w] = binary.LittleEndian.Uint64(src[i:])
		h.words[w+1] = binary.LittleEndian.Uint64(src[i+8:])
		h.words[w+2] = binary.LittleEndian.Uint64(src[i+16:])
		h.words[w+3] = binary.LittleEndian.Uint64(src[i+24:])
		w += 4
		i += 4 * WordSize
	}
	off = w * WordSize
	for len(src)-i >= WordSize {
		h.words[off/WordSize] = binary.LittleEndian.Uint64(src[i:])
		off += WordSize
		i += WordSize
	}
	for i < len(src) {
		h.storeByte(off, src[i])
		off++
		i++
	}
}

// Bytes returns a fresh copy of n bytes starting at off.
func (h *Heap) Bytes(off, n uint64) []byte {
	b := make([]byte, n)
	h.ReadBytes(off, b)
	return b
}

// EqualBytes reports whether the n bytes at off equal b, without allocating.
func (h *Heap) EqualBytes(off uint64, b []byte) bool {
	h.check(off, uint64(len(b)), false)
	for i := 0; i < len(b); i++ {
		if h.loadByte(off+uint64(i)) != b[i] {
			return false
		}
	}
	return true
}
