package shm

import (
	"testing"
	"testing/quick"
)

func TestMapValidation(t *testing.T) {
	h := New(PageSize)
	if _, err := h.Map(0); err == nil {
		t.Fatal("Map(0) should fail")
	}
	if _, err := h.Map(123); err == nil {
		t.Fatal("unaligned Map should fail")
	}
	if _, err := h.Map(^uint64(0) &^ (PageSize - 1)); err == nil {
		t.Fatal("overflowing Map should fail")
	}
	if _, err := h.Map(PageSize); err != nil {
		t.Fatalf("valid Map failed: %v", err)
	}
}

func TestAddrOffRoundtrip(t *testing.T) {
	h := New(4 * PageSize)
	v, err := h.Map(0x7000_0000_0000)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off32 uint16) bool {
		off := uint64(off32) % h.Size()
		return v.Off(v.Addr(off)) == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffOutsideMappingFaults(t *testing.T) {
	h := New(PageSize)
	v, _ := h.Map(0x10000)
	defer func() {
		if _, ok := recover().(*Fault); !ok {
			t.Fatal("expected Fault for wild pointer")
		}
	}()
	v.Off(0x9000) // below the mapping
}

func TestTwoViewsSeeSameData(t *testing.T) {
	h := New(PageSize)
	v1, _ := h.Map(0x10000)
	v2, _ := h.Map(0x3fff0000)
	v1.Heap().WriteBytes(100, []byte("shared"))
	if got := string(v2.Heap().Bytes(100, 6)); got != "shared" {
		t.Fatalf("view 2 sees %q", got)
	}
	if v1.Addr(100) == v2.Addr(100) {
		t.Fatal("distinct views should yield distinct virtual addresses")
	}
	if !v1.Contains(v1.Addr(100)) || v1.Contains(v2.Addr(100)) {
		t.Fatal("Contains misclassifies addresses")
	}
}
