//go:build !race

package shm

// Relaxed word accessors, normal build: plain loads and stores.
//
// The optimistic (seqlock-validated) read path loads words that a writer
// may be mutating concurrently. On the architectures this simulation
// models (x86-64; the package header pins little-endian byte order for the
// same reason), an aligned word access is a single instruction, so a load
// can be stale but never torn — and stale values are discarded by the
// sequence validation that brackets every optimistic read section. Plain
// accesses therefore cost nothing over ordinary memory traffic.
//
// Under the race detector this file is replaced by relaxed_race.go, which
// routes the same accessors through sync/atomic so the detector can see
// that the discipline is deliberate.

func relaxedLoadWord(p *uint64) uint64 { return *p }

func relaxedStoreWord(p *uint64, v uint64) { *p = v }
