package shm

import (
	"io"
	"os"
	"sync/atomic"
)

// ImageFS is the filesystem slice WriteImage depends on. The default is
// the real os layer; tests swap in a FaultFS to inject EIO/ENOSPC/torn
// renames at every step of the create → write → sync → close → rename
// sequence and prove checkpointing degrades (prior slot kept, failure
// counted) instead of poisoning a healthy store. The faultpoint package
// cannot model these — its handlers panic (simulated crashes), while a
// failing disk returns errors the persistence path must handle inline.
type ImageFS interface {
	Create(name string) (ImageFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// ImageFile is the open-file slice of the image-write path.
type ImageFile interface {
	io.Writer
	Sync() error
	Close() error
}

type osFS struct{}

func (osFS) Create(name string) (ImageFile, error) {
	f, err := os.Create(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// imageFS is read once per WriteImage call. Atomic because background
// checkpoint goroutines may race a test's SetImageFS under -race.
var imageFS atomic.Pointer[ImageFS]

func init() {
	var fs ImageFS = osFS{}
	imageFS.Store(&fs)
}

// SetImageFS swaps the filesystem used by WriteImage and returns a
// restore function. Passing nil restores the real os layer. Test-only:
// the swap is process-global.
func SetImageFS(fs ImageFS) (restore func()) {
	if fs == nil {
		fs = osFS{}
	}
	prev := imageFS.Swap(&fs)
	return func() { imageFS.Store(prev) }
}

func currentImageFS() ImageFS { return *imageFS.Load() }

// FaultStep names one step of the image-write sequence.
type FaultStep int

const (
	FaultCreate FaultStep = iota // os.Create of the temp file
	FaultWrite                   // the Nth Write call (header=0, table=1, regions after)
	FaultSync                    // fsync before close
	FaultClose                   // close after sync
	FaultRename                  // atomic rename into place
)

func (s FaultStep) String() string {
	switch s {
	case FaultCreate:
		return "create"
	case FaultWrite:
		return "write"
	case FaultSync:
		return "sync"
	case FaultClose:
		return "close"
	case FaultRename:
		return "rename"
	}
	return "unknown"
}

// FaultFS wraps the real filesystem and fails exactly one step of each
// image write with a chosen error. With Torn set on a FaultRename fault
// it also deletes the temp file before failing — the worst torn-rename
// outcome on a non-atomic filesystem: the new image is gone entirely and
// only the prior checkpoint slot can carry the store.
type FaultFS struct {
	Step   FaultStep
	Err    error
	WriteN int  // for FaultWrite: which Write call fails (0-based)
	Torn   bool // for FaultRename: destroy the temp file too

	faults atomic.Uint64 // injected failures, for test assertions
}

// Faults reports how many failures the wrapper has injected.
func (f *FaultFS) Faults() uint64 { return f.faults.Load() }

func (f *FaultFS) fail() error {
	f.faults.Add(1)
	return f.Err
}

func (f *FaultFS) Create(name string) (ImageFile, error) {
	if f.Step == FaultCreate {
		return nil, f.fail()
	}
	real, err := osFS{}.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, f: real}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if f.Step == FaultRename {
		if f.Torn {
			os.Remove(oldpath)
		}
		return f.fail()
	}
	return os.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error { return os.Remove(name) }

type faultFile struct {
	fs     *FaultFS
	f      ImageFile
	writes int
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.fs.Step == FaultWrite && ff.writes == ff.fs.WriteN {
		ff.writes++
		return 0, ff.fs.fail()
	}
	ff.writes++
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if ff.fs.Step == FaultSync {
		return ff.fs.fail()
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error {
	if ff.fs.Step == FaultClose {
		ff.f.Close() // release the descriptor; report the injected error
		return ff.fs.fail()
	}
	return ff.f.Close()
}
