package shm

import (
	"bytes"
	"sync"
	"testing"
)

func TestBoundaryAccess(t *testing.T) {
	h := New(PageSize)
	size := h.Size()

	// One byte at the last valid offset works through both copy paths.
	h.WriteBytes(size-1, []byte{0xab})
	var one [1]byte
	h.ReadBytes(size-1, one[:])
	if one[0] != 0xab {
		t.Fatalf("byte at size-1 = %#x", one[0])
	}
	h.AtomicReadBytes(size-1, one[:])
	if one[0] != 0xab {
		t.Fatalf("atomic byte at size-1 = %#x", one[0])
	}

	// Two bytes starting at size-1 run past the end.
	mustFault(t, func() { h.ReadBytes(size-1, make([]byte, 2)) })
	mustFault(t, func() { h.WriteBytes(size-1, make([]byte, 2)) })
	mustFault(t, func() { h.AtomicReadBytes(size-1, make([]byte, 2)) })
	mustFault(t, func() { h.AtomicWriteBytes(size-1, make([]byte, 2)) })

	// Zero-length accesses: allowed exactly at the end (one-past-the-end
	// pointer rule), rejected beyond it — consistently for reads and writes.
	h.ReadBytes(size, nil)
	h.WriteBytes(size, nil)
	h.AtomicReadBytes(size, nil)
	mustFault(t, func() { h.ReadBytes(size+1, nil) })
	mustFault(t, func() { h.WriteBytes(size+1, nil) })
	mustFault(t, func() { h.AtomicReadBytes(size+1, nil) })
	mustFault(t, func() { h.Zero(size+1, 0) })

	// Nonzero length at the end still faults.
	mustFault(t, func() { h.ReadBytes(size, make([]byte, 1)) })

	// Offsets that would overflow off+n must not wrap around the check.
	mustFault(t, func() { h.ReadBytes(^uint64(0), nil) })
	mustFault(t, func() { h.ReadBytes(^uint64(0)-7, make([]byte, 8)) })
}

func TestRelaxedAccessors(t *testing.T) {
	h := New(PageSize)
	h.RelaxedStore64(8, 0x1122334455667788)
	if got := h.RelaxedLoad64(8); got != 0x1122334455667788 {
		t.Fatalf("RelaxedLoad64 = %#x", got)
	}
	// 32-bit halves round-trip without clobbering each other.
	h.RelaxedStore32(16, 0xaaaaaaaa)
	h.RelaxedStore32(20, 0xbbbbbbbb)
	if h.RelaxedLoad32(16) != 0xaaaaaaaa || h.RelaxedLoad32(20) != 0xbbbbbbbb {
		t.Fatalf("RelaxedLoad32 halves = %#x %#x", h.RelaxedLoad32(16), h.RelaxedLoad32(20))
	}
	if h.Load64(16) != 0xbbbbbbbbaaaaaaaa {
		t.Fatalf("combined word = %#x", h.Load64(16))
	}
	mustFault(t, func() { h.RelaxedLoad64(h.Size()) })
	mustFault(t, func() { h.RelaxedLoad32(2) })
	mustFault(t, func() { h.RelaxedStore32(h.Size(), 0) })
}

func TestAtomicReadWriteBytes(t *testing.T) {
	h := New(PageSize)
	// Misaligned span exercising head, bulk and tail paths.
	src := make([]byte, 61)
	for i := range src {
		src[i] = byte(i*7 + 1)
	}
	h.AtomicWriteBytes(13, src)
	dst := make([]byte, len(src))
	h.AtomicReadBytes(13, dst)
	if !bytes.Equal(src, dst) {
		t.Fatalf("atomic roundtrip mismatch: %x != %x", dst, src)
	}
	// The relaxed copies interoperate with the plain ones byte for byte.
	plain := h.Bytes(13, uint64(len(src)))
	if !bytes.Equal(plain, src) {
		t.Fatalf("plain read of atomic write = %x", plain)
	}
	// Neighbouring bytes are untouched by the edge read-modify-writes.
	if h.loadByte(12) != 0 || h.loadByte(13+uint64(len(src))) != 0 {
		t.Fatal("AtomicWriteBytes scribbled outside its span")
	}
}

// TestSeqlockProtocol drives the full reader/writer protocol concurrently.
// The writer keeps rewriting a 48-byte record (all bytes equal to a
// generation number) under a seqlock; readers that validate must never
// observe a mixed record. Run with -race this also proves the relaxed
// accessors keep the detector quiet.
func TestSeqlockProtocol(t *testing.T) {
	h := New(PageSize)
	const seq, data, n = 0, 64, 48
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, n)
		for gen := byte(1); ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := range buf {
				buf[i] = gen
			}
			h.SeqWriteBegin(seq)
			h.AtomicWriteBytes(data, buf)
			h.SeqWriteEnd(seq)
		}
	}()
	validated := 0
	buf := make([]byte, n)
	for i := 0; i < 20000; i++ {
		s0 := h.SeqRead(seq)
		if s0&1 != 0 {
			continue
		}
		h.AtomicReadBytes(data, buf)
		if !h.SeqValidate(seq, s0) {
			continue
		}
		validated++
		for j := 1; j < n; j++ {
			if buf[j] != buf[0] {
				t.Fatalf("validated read is torn: %x", buf)
			}
		}
	}
	close(stop)
	wg.Wait()
	if validated == 0 {
		t.Fatal("no read ever validated")
	}
}

func TestSeqValidateRejectsOddAndChanged(t *testing.T) {
	h := New(PageSize)
	if h.SeqRead(0) != 0 {
		t.Fatal("fresh seqlock not zero")
	}
	h.SeqWriteBegin(0)
	if h.SeqValidate(0, h.SeqRead(0)) {
		t.Fatal("validated against an odd (writer-active) sequence")
	}
	h.SeqWriteEnd(0)
	s0 := h.SeqRead(0)
	h.SeqWriteBegin(0)
	h.SeqWriteEnd(0)
	if h.SeqValidate(0, s0) {
		t.Fatal("validated across a writer section")
	}
	if !h.SeqValidate(0, h.SeqRead(0)) {
		t.Fatal("stable sequence failed to validate")
	}
}
