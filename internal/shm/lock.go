package shm

import "runtime"

// Heap-resident locks.
//
// In the paper, every lock in the memcached code base is re-initialized with
// PTHREAD_PROCESS_SHARED so that threads in different processes can contend
// on it. Our analog is a lock whose entire state lives in a heap word, so
// any process that has the heap mapped can acquire it. The implementation is
// a test-and-test-and-set spinlock with exponential backoff that yields the
// processor, which is how process-shared pthread mutexes behave under
// moderate contention (spin then futex-wait).
//
// Lock word encoding: 0 = unlocked; otherwise the locker's owner token
// (process ID << 32 | thread ID, never zero). Owner tokens exist for
// diagnosis and crash recovery, not for correctness.

// LockWordSize is the number of heap bytes occupied by one lock.
const LockWordSize = WordSize

const spinLimit = 64

// LockAcquire acquires the lock at heap offset off, spinning until it is
// available. owner must be nonzero.
func (h *Heap) LockAcquire(off uint64, owner uint64) {
	if owner == 0 {
		panic("shm: LockAcquire with zero owner token")
	}
	backoff := 1
	for {
		if h.AtomicLoad64(off) == 0 && h.CAS64(off, 0, owner) {
			return
		}
		for i := 0; i < backoff; i++ {
			if h.AtomicLoad64(off) == 0 {
				break
			}
		}
		if backoff < spinLimit {
			backoff *= 2
		} else {
			runtime.Gosched()
		}
	}
}

// LockAcquireAbort is LockAcquire with an escape hatch: whenever the spin
// saturates its backoff (and again immediately after any contended
// acquisition), abort is consulted; if it reports true the acquisition is
// abandoned — releasing the word again if it was just won — and false is
// returned. Crash recovery uses this so a watchdog-reaped zombie thread,
// resumed by the scheduler after its locks were force-released, can never
// win a broken lock and re-enter shared state. The uncontended fast path
// never calls abort.
func (h *Heap) LockAcquireAbort(off uint64, owner uint64, abort func() bool) bool {
	if owner == 0 {
		panic("shm: LockAcquireAbort with zero owner token")
	}
	if h.AtomicLoad64(off) == 0 && h.CAS64(off, 0, owner) {
		return true
	}
	backoff := 1
	for {
		if h.AtomicLoad64(off) == 0 && h.CAS64(off, 0, owner) {
			// A contended win may be a zombie acquiring a lock the repair
			// coordinator broke out from under it: re-check before the
			// caller touches anything the lock guards.
			if abort != nil && abort() {
				h.AtomicStore64(off, 0)
				return false
			}
			return true
		}
		for i := 0; i < backoff; i++ {
			if h.AtomicLoad64(off) == 0 {
				break
			}
		}
		if backoff < spinLimit {
			backoff *= 2
		} else {
			if abort != nil && abort() {
				return false
			}
			runtime.Gosched()
		}
	}
}

// LockTry attempts to acquire the lock at off without blocking.
func (h *Heap) LockTry(off uint64, owner uint64) bool {
	if owner == 0 {
		panic("shm: LockTry with zero owner token")
	}
	return h.AtomicLoad64(off) == 0 && h.CAS64(off, 0, owner)
}

// LockRelease releases the lock at off. It panics if the lock is not held,
// which indicates a lock-discipline bug in library code.
func (h *Heap) LockRelease(off uint64) {
	if h.AtomicLoad64(off) == 0 {
		panic("shm: release of unheld lock")
	}
	h.AtomicStore64(off, 0)
}

// LockReleaseOwner releases the lock at off only if it is still held by
// owner, reporting whether it was. A thread whose locks may have been
// force-released by crash recovery (and since re-acquired by a live
// thread) must release this way rather than blind-storing zero.
func (h *Heap) LockReleaseOwner(off uint64, owner uint64) bool {
	return h.CAS64(off, owner, 0)
}

// LockHolder returns the owner token of the lock at off, or 0 if unheld.
func (h *Heap) LockHolder(off uint64) uint64 {
	return h.AtomicLoad64(off)
}
