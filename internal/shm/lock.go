package shm

import "runtime"

// Heap-resident locks.
//
// In the paper, every lock in the memcached code base is re-initialized with
// PTHREAD_PROCESS_SHARED so that threads in different processes can contend
// on it. Our analog is a lock whose entire state lives in a heap word, so
// any process that has the heap mapped can acquire it. The implementation is
// a test-and-test-and-set spinlock with exponential backoff that yields the
// processor, which is how process-shared pthread mutexes behave under
// moderate contention (spin then futex-wait).
//
// Lock word encoding: 0 = unlocked; otherwise the locker's owner token
// (process ID << 32 | thread ID, never zero). Owner tokens exist for
// diagnosis and crash recovery, not for correctness.

// LockWordSize is the number of heap bytes occupied by one lock.
const LockWordSize = WordSize

const spinLimit = 64

// LockAcquire acquires the lock at heap offset off, spinning until it is
// available. owner must be nonzero.
func (h *Heap) LockAcquire(off uint64, owner uint64) {
	if owner == 0 {
		panic("shm: LockAcquire with zero owner token")
	}
	backoff := 1
	for {
		if h.AtomicLoad64(off) == 0 && h.CAS64(off, 0, owner) {
			return
		}
		for i := 0; i < backoff; i++ {
			if h.AtomicLoad64(off) == 0 {
				break
			}
		}
		if backoff < spinLimit {
			backoff *= 2
		} else {
			runtime.Gosched()
		}
	}
}

// LockTry attempts to acquire the lock at off without blocking.
func (h *Heap) LockTry(off uint64, owner uint64) bool {
	if owner == 0 {
		panic("shm: LockTry with zero owner token")
	}
	return h.AtomicLoad64(off) == 0 && h.CAS64(off, 0, owner)
}

// LockRelease releases the lock at off. It panics if the lock is not held,
// which indicates a lock-discipline bug in library code.
func (h *Heap) LockRelease(off uint64) {
	if h.AtomicLoad64(off) == 0 {
		panic("shm: release of unheld lock")
	}
	h.AtomicStore64(off, 0)
}

// LockHolder returns the owner token of the lock at off, or 0 if unheld.
func (h *Heap) LockHolder(off uint64) uint64 {
	return h.AtomicLoad64(off)
}
