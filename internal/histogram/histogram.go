// Package histogram provides low-overhead latency histograms for the
// benchmark harness: log-linear buckets (16 linear sub-buckets per power of
// two), constant-time recording, and percentile queries. One histogram per
// benchmark thread, merged at the end, keeps recording contention free.
package histogram

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"time"
)

const (
	subBits    = 4 // 16 linear sub-buckets per power of two
	subBuckets = 1 << subBits
	numBuckets = 64 * subBuckets
)

// H is a latency histogram over int64 nanosecond samples.
type H struct {
	counts [numBuckets]uint64
	total  uint64
	sum    uint64
	min    uint64
	max    uint64
}

// New creates an empty histogram.
func New() *H { return &H{min: ^uint64(0)} }

func bucketOf(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(v)
	sub := (v >> (uint(exp) - subBits)) & (subBuckets - 1)
	return (exp-subBits+1)*subBuckets + int(sub)
}

// bucketLow returns the smallest value mapping to bucket i.
func bucketLow(i int) uint64 {
	exp := i / subBuckets
	sub := uint64(i % subBuckets)
	if exp == 0 {
		return sub
	}
	return (subBuckets + sub) << (uint(exp) - 1)
}

// Record adds one sample.
func (h *H) Record(d time.Duration) {
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *H) Count() uint64 { return h.total }

// Mean returns the mean sample.
func (h *H) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Min and Max return sample extremes (bucket-quantized for Max).
func (h *H) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample.
func (h *H) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// percentileRank converts a percentile (0 < p <= 100) over total samples
// into a 1-indexed rank, rounding up: the p'th percentile is the smallest
// sample such that at least ceil(p/100 * total) samples are <= it. A
// truncating rank would return the sample *below* the requested quantile —
// e.g. the rank-50 sample as the median of 101.
func percentileRank(p float64, total uint64) uint64 {
	want := uint64(math.Ceil(p / 100 * float64(total)))
	if want == 0 {
		want = 1
	}
	if want > total {
		want = total
	}
	return want
}

// Percentile returns the p'th percentile (0 < p <= 100), quantized to the
// lower edge of its bucket.
func (h *H) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	want := percentileRank(p, h.total)
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= want {
			return time.Duration(bucketLow(i))
		}
	}
	return time.Duration(h.max)
}

// RecordN adds n samples of value d (merging bucketed data).
func (h *H) RecordN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	h.counts[bucketOf(v)] += n
	h.total += n
	h.sum += v * n
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *H) Merge(other *H) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// String renders a one-line summary.
func (h *H) String() string {
	if h.total == 0 {
		return "histogram{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
	return b.String()
}
