package histogram

import (
	"testing"
	"time"

	"plibmc/internal/shm"
)

func TestSharedLayout(t *testing.T) {
	if SharedBuckets != 140 {
		t.Fatalf("SharedBuckets = %d", SharedBuckets)
	}
	if SharedSize != 16+140*8 {
		t.Fatalf("SharedSize = %d", SharedSize)
	}
}

func TestSharedBucketBoundaries(t *testing.T) {
	vals := []uint64{0, 1, 3, 4, 5, 100, 1000, 1 << 20, 1 << 35, 1<<36 - 1}
	for _, v := range vals {
		b := SharedBucketOf(v)
		if b < 0 || b >= SharedBuckets {
			t.Fatalf("bucket of %d = %d out of range", v, b)
		}
		if SharedBucketLow(b) > v {
			t.Fatalf("SharedBucketLow(%d)=%d > %d", b, SharedBucketLow(b), v)
		}
		if b+1 < SharedBuckets && SharedBucketLow(b+1) <= v {
			t.Fatalf("value %d should be below next bucket edge %d", v, SharedBucketLow(b+1))
		}
	}
	// Samples past the clamp all land in the top bucket.
	if SharedBucketOf(1<<36) != SharedBuckets-1 || SharedBucketOf(^uint64(0)) != SharedBuckets-1 {
		t.Fatal("overflow samples should clamp to the top bucket")
	}
}

func TestSharedRecordSnapshot(t *testing.T) {
	h := shm.New(4096)
	off := uint64(128)
	SharedReset(h, off)
	for i := 1; i <= 100; i++ {
		SharedRecord(h, off, time.Duration(i)*time.Microsecond)
	}
	var s Snapshot
	s.AddShared(h, off)
	if s.Count() != 100 {
		t.Fatalf("count = %d", s.Count())
	}
	if m := s.Mean(); m < 40*time.Microsecond || m > 51*time.Microsecond {
		t.Fatalf("mean = %v", m)
	}
	p99 := s.Percentile(99)
	if p99 < 90*time.Microsecond || p99 > 99*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if s.Max() < 64*time.Microsecond {
		t.Fatalf("max = %v", s.Max())
	}

	// Merging two snapshots of the same data doubles counts.
	var s2 Snapshot
	s2.AddShared(h, off)
	s2.Merge(&s)
	if s2.Count() != 200 {
		t.Fatalf("merged count = %d", s2.Count())
	}

	SharedReset(h, off)
	var s3 Snapshot
	s3.AddShared(h, off)
	if s3.Count() != 0 || s3.Percentile(50) != 0 || s3.Max() != 0 {
		t.Fatal("reset histogram should be empty")
	}
}

func TestSharedRepair(t *testing.T) {
	h := shm.New(4096)
	off := uint64(0)
	SharedReset(h, off)
	for i := 0; i < 10; i++ {
		SharedRecord(h, off, 5*time.Microsecond)
	}
	if SharedRepair(h, off) {
		t.Fatal("consistent histogram should not need repair")
	}
	// Simulate a crash between the bucket add and the total add: one extra
	// bucket count with no matching total/sum update.
	h.Add64(off+SharedOffCounts+uint64(SharedBucketOf(uint64(5*time.Microsecond)))*8, 1)
	if !SharedRepair(h, off) {
		t.Fatal("torn histogram should report repair")
	}
	var s Snapshot
	s.AddShared(h, off)
	if s.Count() != 11 {
		t.Fatalf("repaired count = %d", s.Count())
	}
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	if n != s.Total {
		t.Fatalf("invariant broken after repair: Σcounts=%d total=%d", n, s.Total)
	}
	if SharedRepair(h, off) {
		t.Fatal("second repair should be a no-op")
	}
}

func TestAtomic(t *testing.T) {
	var a Atomic
	for i := 1; i <= 3; i++ {
		a.Record(time.Duration(i))
	}
	a.Record(-1) // clamps to 0
	s := a.Snapshot()
	if s.Count() != 4 || s.Counts[0] != 1 {
		t.Fatalf("count=%d zero-bucket=%d", s.Count(), s.Counts[0])
	}
}

// Percentile boundary semantics, shared with H via percentileRank: the p'th
// percentile of n samples is the ceil(p/100*n)'th smallest, so the median of
// an odd count is the middle sample, not the one below it.
func TestPercentileBoundaries(t *testing.T) {
	// Odd count: median of {1,2,3} is 2. A truncating rank returns 1.
	h := New()
	for i := 1; i <= 3; i++ {
		h.Record(time.Duration(i))
	}
	if got := h.Percentile(50); got != 2 {
		t.Fatalf("p50 of {1,2,3} = %v, want 2", got)
	}
	if got := h.Percentile(100); got != 3 {
		t.Fatalf("p100 of {1,2,3} = %v, want 3", got)
	}

	// 101 distinct sub-bucket-exact samples: median is sample 51.
	h2 := New()
	for i := 0; i <= 100; i++ {
		h2.Record(time.Duration(i) * 16) // 16ns apart; distinct low buckets
	}
	// Rank ceil(50.5)=51 is the sample 50*16=800, which is exactly a bucket
	// edge; a truncating rank lands on 784 and reports its bucket edge 768.
	if got := h2.Percentile(50); got != 50*16 {
		t.Fatalf("p50 of 101 samples = %v, want %v", got, time.Duration(50*16))
	}

	// Single sample: every percentile is that sample's bucket.
	h3 := New()
	h3.Record(7)
	for _, p := range []float64{0.1, 50, 99.9, 100} {
		if got := h3.Percentile(p); got != 7 {
			t.Fatalf("p%v of single sample = %v, want 7", p, got)
		}
	}

	// Same semantics on the shared form.
	heap := shm.New(4096)
	SharedReset(heap, 0)
	for i := 1; i <= 3; i++ {
		SharedRecord(heap, 0, time.Duration(i))
	}
	var s Snapshot
	s.AddShared(heap, 0)
	if got := s.Percentile(50); got != 2 {
		t.Fatalf("shared p50 of {1,2,3} = %v, want 2", got)
	}
	if got := s.Percentile(100); got != 3 {
		t.Fatalf("shared p100 of {1,2,3} = %v, want 3", got)
	}
}

func BenchmarkSharedRecord(b *testing.B) {
	h := shm.New(4096)
	SharedReset(h, 0)
	for i := 0; i < b.N; i++ {
		SharedRecord(h, 0, time.Duration(i%100000))
	}
}
