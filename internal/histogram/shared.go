// Shared histograms are the heap-resident, position-independent form of H:
// a fixed 1136-byte layout of atomically updated uint64 words that lives in
// the Ralloc heap next to the scattered counter array. Coarser than H (4
// linear sub-buckets per power of two instead of 16) so a full per-thread,
// per-op-class matrix stays around 100 KiB, and clamped below 2^36 ns
// (~69 s) so every sample lands in a fixed bucket count regardless of
// machine. Recording is three atomic adds on thread-private slots — the
// same contention-free discipline as the scattered stats counters.
//
// The layout is offsets-only (no Go structs over heap memory) so images
// written by one process map identically in another:
//
//	off+0                        total samples
//	off+8                        sum of samples (ns)
//	off+16 + i*8                 count of bucket i, 0 <= i < SharedBuckets
package histogram

import (
	"math/bits"
	"sync/atomic"
	"time"

	"plibmc/internal/shm"
)

const (
	sharedSubBits    = 2 // 4 linear sub-buckets per power of two
	sharedSubBuckets = 1 << sharedSubBits
	sharedMaxExp     = 36 // samples clamped below 2^36 ns (~69 s)

	// SharedBuckets is the fixed bucket count of a shared histogram.
	SharedBuckets = (sharedMaxExp-sharedSubBits)*sharedSubBuckets + sharedSubBuckets

	// Field offsets within a shared histogram block.
	SharedOffTotal  = 0
	SharedOffSum    = 8
	SharedOffCounts = 16

	// SharedSize is the byte footprint of one shared histogram.
	SharedSize = SharedOffCounts + SharedBuckets*8
)

// SharedBucketOf maps a nanosecond sample to its bucket index.
func SharedBucketOf(v uint64) int {
	if v >= 1<<sharedMaxExp {
		v = 1<<sharedMaxExp - 1
	}
	if v < sharedSubBuckets {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(v)
	sub := (v >> (uint(exp) - sharedSubBits)) & (sharedSubBuckets - 1)
	return (exp-sharedSubBits+1)*sharedSubBuckets + int(sub)
}

// SharedBucketLow returns the smallest sample mapping to bucket i.
func SharedBucketLow(i int) uint64 {
	exp := i / sharedSubBuckets
	sub := uint64(i % sharedSubBuckets)
	if exp == 0 {
		return sub
	}
	return (sharedSubBuckets + sub) << (uint(exp) - 1)
}

// SharedRecord adds one sample to the shared histogram at off. Callers that
// need a crash point between the bucket and total updates (the fault-matrix
// site in internal/core) compose the three adds themselves using the
// exported offsets; the update order there must match this one so repair
// sees the same partial states.
func SharedRecord(h *shm.Heap, off uint64, d time.Duration) {
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	h.Add64(off+SharedOffCounts+uint64(SharedBucketOf(v))*8, 1)
	h.Add64(off+SharedOffTotal, 1)
	h.Add64(off+SharedOffSum, v)
}

// SharedReset zeroes the shared histogram at off. Quiescent callers only.
func SharedReset(h *shm.Heap, off uint64) {
	h.Zero(off, SharedSize)
}

// SharedRepair re-establishes the invariant total == Σcounts after a crash
// mid-record (the bucket count lands before the total and sum). The missing
// sample's value is unknowable, so when the total is rebuilt the sum is
// reconstructed from bucket lower bounds — a documented under-estimate, the
// same trade the allocator makes when it drops a half-written block.
// Quiescent callers only (repair runs under the closed operation gate).
// Returns true if the histogram was inconsistent and has been repaired.
func SharedRepair(h *shm.Heap, off uint64) bool {
	var total, low uint64
	for i := 0; i < SharedBuckets; i++ {
		c := h.Load64(off + SharedOffCounts + uint64(i)*8)
		total += c
		low += c * SharedBucketLow(i)
	}
	if h.Load64(off+SharedOffTotal) == total {
		return false
	}
	h.Store64(off+SharedOffTotal, total)
	h.Store64(off+SharedOffSum, low)
	return true
}

// Snapshot is a point-in-time copy of one or more shared histograms,
// merged in ordinary process memory for querying.
type Snapshot struct {
	Counts [SharedBuckets]uint64
	Total  uint64
	Sum    uint64
}

// AddShared folds the shared histogram at off into the snapshot. Counts are
// read individually with atomic loads; concurrent recording can skew total
// by in-flight samples, which is fine for monitoring.
func (s *Snapshot) AddShared(h *shm.Heap, off uint64) {
	for i := 0; i < SharedBuckets; i++ {
		s.Counts[i] += h.AtomicLoad64(off + SharedOffCounts + uint64(i)*8)
	}
	s.Total += h.AtomicLoad64(off + SharedOffTotal)
	s.Sum += h.AtomicLoad64(off + SharedOffSum)
}

// Merge folds other into s.
func (s *Snapshot) Merge(other *Snapshot) {
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
	s.Total += other.Total
	s.Sum += other.Sum
}

// Count returns the number of samples.
func (s *Snapshot) Count() uint64 { return s.Total }

// Mean returns the mean sample.
func (s *Snapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Total)
}

// Percentile returns the p'th percentile (0 < p <= 100), quantized to the
// lower edge of its bucket, using the same ceiling rank as H.Percentile.
func (s *Snapshot) Percentile(p float64) time.Duration {
	// Σcounts, not Total: a snapshot read concurrently with recording can
	// have the two disagree by in-flight samples, and the rank walk below
	// must terminate inside the counts.
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	if n == 0 {
		return 0
	}
	want := percentileRank(p, n)
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= want {
			return time.Duration(SharedBucketLow(i))
		}
	}
	return time.Duration(SharedBucketLow(SharedBuckets - 1))
}

// Max returns the lower edge of the highest occupied bucket.
func (s *Snapshot) Max() time.Duration {
	for i := SharedBuckets - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return time.Duration(SharedBucketLow(i))
		}
	}
	return 0
}

// Atomic is a process-local histogram with the shared bucket layout and
// lock-free recording, for hot paths outside the heap (hodor trampoline
// crossing latency). The zero value is ready to use.
type Atomic struct {
	counts [SharedBuckets]atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64
}

// Record adds one sample.
func (a *Atomic) Record(d time.Duration) {
	v := uint64(d)
	if int64(d) < 0 {
		v = 0
	}
	a.counts[SharedBucketOf(v)].Add(1)
	a.total.Add(1)
	a.sum.Add(v)
}

// Snapshot copies the histogram into a queryable snapshot.
func (a *Atomic) Snapshot() Snapshot {
	var s Snapshot
	for i := range a.counts {
		s.Counts[i] = a.counts[i].Load()
	}
	s.Total = a.total.Load()
	s.Sum = a.sum.Load()
	return s
}
