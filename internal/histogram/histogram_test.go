package histogram

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	h := New()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.String() != "histogram{empty}" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestSingleSample(t *testing.T) {
	h := New()
	h.Record(1500 * time.Nanosecond)
	if h.Count() != 1 || h.Mean() != 1500 {
		t.Fatalf("count=%d mean=%v", h.Count(), h.Mean())
	}
	p50 := h.Percentile(50)
	if p50 > 1500 || p50 < 1400 {
		t.Fatalf("p50 = %v", p50)
	}
	if h.Min() != 1500 || h.Max() != 1500 {
		t.Fatalf("min=%v max=%v", h.Min(), h.Max())
	}
}

func TestBucketBoundaries(t *testing.T) {
	// bucketLow(bucketOf(v)) <= v for all v, and bucketOf is monotone.
	vals := []uint64{0, 1, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345}
	for _, v := range vals {
		b := bucketOf(v)
		if bucketLow(b) > v {
			t.Fatalf("bucketLow(%d)=%d > %d", b, bucketLow(b), v)
		}
		if b+1 < numBuckets && bucketLow(b+1) <= v {
			t.Fatalf("value %d should be below next bucket edge %d", v, bucketLow(b+1))
		}
	}
}

// Property: bucket mapping is monotone and relative quantization error is
// bounded by 1/16.
func TestQuickBucketQuantization(t *testing.T) {
	f := func(v uint64) bool {
		v %= 1 << 50
		b := bucketOf(v)
		low := bucketLow(b)
		if low > v {
			return false
		}
		if v >= 16 && float64(v-low)/float64(v) > 1.0/16+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentilesAgainstSorted(t *testing.T) {
	h := New()
	rng := rand.New(rand.NewSource(1))
	var samples []uint64
	for i := 0; i < 50000; i++ {
		v := uint64(rng.ExpFloat64() * 10000) // long tail, like latencies
		samples = append(samples, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := uint64(h.Percentile(p))
		// Quantization bounds: within one bucket (6.25%) of exact.
		if exact > 32 && (got > exact || float64(exact-got)/float64(exact) > 0.10) {
			t.Fatalf("p%.1f = %d, exact %d", p, got, exact)
		}
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := 1; i <= 100; i++ {
		a.Record(time.Duration(i))
	}
	for i := 101; i <= 200; i++ {
		b.Record(time.Duration(i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != time.Duration((100*101/2+(301*100/2))/200) {
		t.Fatalf("merged mean = %v", a.Mean())
	}
	// Merging an empty histogram is a no-op.
	before := a.Count()
	a.Merge(New())
	if a.Count() != before {
		t.Fatal("merge of empty changed count")
	}
}

func TestNegativeClamped(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 {
		t.Fatal("negative samples should clamp to 0")
	}
}

func BenchmarkRecord(b *testing.B) {
	h := New()
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i % 100000))
	}
}
