package linearcheck

import (
	"strings"
	"testing"

	"plibmc/internal/model"
)

// h builds a history from ops, auto-assigning IDs.
func h(ops ...model.Op) []model.Op {
	for i := range ops {
		ops[i].ID = i
	}
	return ops
}

func mdl() *model.Model { return &model.Model{MaxValueLen: 1 << 20} }

func TestSequentialLegal(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("5"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("5"), Invoke: 3, Return: 4, Res: model.ResOK},
		model.Op{Kind: model.Incr, Key: "k", Delta: 2, RNum: 7, Invoke: 5, Return: 6, Res: model.ResOK},
		model.Op{Kind: model.Delete, Key: "k", Invoke: 7, Return: 8, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "k", Invoke: 9, Return: 10, Res: model.ResNotFound},
	), mdl(), Options{})
	if !res.Ok {
		t.Fatalf("legal history rejected: %s", res.Violation)
	}
	if res.Keys != 1 || res.Ops != 5 {
		t.Fatalf("stats: %+v", res)
	}
}

// TestConcurrentReorder: a read overlapping a write may linearize on
// either side of it; both observations must be accepted.
func TestConcurrentReorder(t *testing.T) {
	for _, got := range []string{"5", "6"} {
		res := Check(h(
			model.Op{Kind: model.Set, Key: "k", Val: []byte("5"), Invoke: 1, Return: 2, Res: model.ResOK},
			model.Op{Kind: model.Incr, Key: "k", Delta: 1, RNum: 6, Invoke: 3, Return: 10, Res: model.ResOK},
			model.Op{Kind: model.Get, Key: "k", RVal: []byte(got), Invoke: 4, Return: 5, Res: model.ResOK},
		), mdl(), Options{})
		if !res.Ok {
			t.Fatalf("read of %q during overlapping incr rejected: %s", got, res.Violation)
		}
	}
}

// TestStaleReadViolation: reading a value after a later write completed
// is the classic linearizability violation; the witness must shrink to
// the write/read pair that contradicts.
func TestStaleReadViolation(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("old"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("old"), Invoke: 3, Return: 4, Res: model.ResOK},
		model.Op{Kind: model.Set, Key: "k", Val: []byte("new"), Invoke: 5, Return: 6, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("old"), Invoke: 7, Return: 8, Res: model.ResOK},
	), mdl(), Options{})
	if res.Ok {
		t.Fatal("stale read accepted")
	}
	// Minimal witness: the overwrite plus the stale read (the first two
	// ops are consistent on their own).
	if len(res.Witness) != 2 {
		t.Fatalf("witness not minimal:\n%s", FormatOps(res.Witness))
	}
}

// TestMissAfterSetViolation: NOT_FOUND after a completed Set (with no
// delete/expiry in between) needs both ops in the witness.
func TestMissAfterSetViolation(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("v"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "k", Invoke: 3, Return: 4, Res: model.ResNotFound},
	), mdl(), Options{})
	if res.Ok {
		t.Fatal("lost update accepted")
	}
	if len(res.Witness) != 2 {
		t.Fatalf("witness = %d ops, want 2:\n%s", len(res.Witness), FormatOps(res.Witness))
	}
}

// TestPendingOpMayApply: a crashed Set that never returned may
// linearize (a later read sees it) or not (a later read doesn't);
// what it cannot do is apply and then un-apply.
func TestPendingOpMayApply(t *testing.T) {
	base := func(rvals ...string) []model.Op {
		ops := h(
			model.Op{Kind: model.Set, Key: "k", Val: []byte("1"), Invoke: 1, Return: 2, Res: model.ResOK},
			model.Op{Kind: model.Set, Key: "k", Val: []byte("2"), Invoke: 3, Return: 0, Pending: true, Res: model.ResUnknown},
		)
		ops[1].Return = ^uint64(0)
		inv := uint64(5)
		for _, rv := range rvals {
			ops = append(ops, model.Op{Kind: model.Get, Key: "k", RVal: []byte(rv),
				Invoke: inv, Return: inv + 1, Res: model.ResOK, ID: len(ops)})
			inv += 2
		}
		return ops
	}
	for _, rv := range []string{"1", "2"} {
		if res := Check(base(rv), mdl(), Options{}); !res.Ok {
			t.Fatalf("read of %q with crashed set pending rejected: %s", rv, res.Violation)
		}
	}
	if res := Check(base("2", "2"), mdl(), Options{}); !res.Ok {
		t.Fatalf("crashed set observed twice rejected: %s", res.Violation)
	}
	if res := Check(base("2", "1"), mdl(), Options{}); res.Ok {
		t.Fatal("crashed set applied then un-applied was accepted")
	}
}

// TestKilledOpBranches: a call that returned a crash error (effect
// unknown) must admit both the applied and not-applied continuations.
func TestKilledOpBranches(t *testing.T) {
	for _, rv := range []string{"1", "2"} {
		res := Check(h(
			model.Op{Kind: model.Set, Key: "k", Val: []byte("1"), Invoke: 1, Return: 2, Res: model.ResOK},
			model.Op{Kind: model.Set, Key: "k", Val: []byte("2"), Invoke: 3, Return: 4, Res: model.ResUnknown},
			model.Op{Kind: model.Get, Key: "k", RVal: []byte(rv), Invoke: 5, Return: 6, Res: model.ResOK},
		), mdl(), Options{})
		if !res.Ok {
			t.Fatalf("read of %q after killed set rejected: %s", rv, res.Violation)
		}
	}
	res := Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("1"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Set, Key: "k", Val: []byte("2"), Invoke: 3, Return: 4, Res: model.ResUnknown},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("3"), Invoke: 5, Return: 6, Res: model.ResOK},
	), mdl(), Options{})
	if res.Ok {
		t.Fatal("phantom value after killed set accepted")
	}
}

// TestCASUniquenessPrePass: one generation observed with two different
// contents is flagged before any search runs.
func TestCASUniquenessPrePass(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("a"), RCAS: 7, Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("b"), RCAS: 7, Invoke: 3, Return: 4, Res: model.ResOK},
	), mdl(), Options{})
	if res.Ok || !strings.Contains(res.Violation, "cas generation") {
		t.Fatalf("cas conflict missed: ok=%v %q", res.Ok, res.Violation)
	}
	if len(res.Witness) != 2 {
		t.Fatalf("witness: %d ops", len(res.Witness))
	}
}

// TestPerKeyIndependence: keys are separate linearization domains; a
// history interleaving two keys decomposes and checks per key.
func TestPerKeyIndependence(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "a", Val: []byte("1"), Invoke: 1, Return: 4, Res: model.ResOK},
		model.Op{Kind: model.Set, Key: "b", Val: []byte("2"), Invoke: 2, Return: 5, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "a", RVal: []byte("1"), Invoke: 6, Return: 7, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "b", RVal: []byte("2"), Invoke: 6, Return: 8, Res: model.ResOK},
	), mdl(), Options{})
	if !res.Ok || res.Keys != 2 {
		t.Fatalf("res = %+v: %s", res, res.Violation)
	}
}

// TestFlushEntersEveryKey: flush_all drops every key, and its
// linearization point is chosen independently per key (the real flush
// walks stripes non-atomically).
func TestFlushEntersEveryKey(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "a", Val: []byte("1"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Set, Key: "b", Val: []byte("2"), Invoke: 3, Return: 4, Res: model.ResOK},
		model.Op{Kind: model.Flush, Invoke: 5, Return: 6, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "a", Invoke: 7, Return: 8, Res: model.ResNotFound},
		model.Op{Kind: model.Get, Key: "b", Invoke: 7, Return: 9, Res: model.ResNotFound},
	), mdl(), Options{})
	if !res.Ok {
		t.Fatalf("flushed history rejected: %s", res.Violation)
	}
	res = Check(h(
		model.Op{Kind: model.Set, Key: "a", Val: []byte("1"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Flush, Invoke: 3, Return: 4, Res: model.ResOK},
		model.Op{Kind: model.Get, Key: "a", RVal: []byte("1"), Invoke: 5, Return: 6, Res: model.ResOK},
	), mdl(), Options{})
	if res.Ok {
		t.Fatal("read of flushed value accepted")
	}
}

// TestExpiryHistory: a stepped-clock history where expiry must be
// honored exactly at the deadline.
func TestExpiryHistory(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("v"), Exp: 100, Invoke: 1, Return: 2, Res: model.ResOK, Now: 90},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("v"), Invoke: 3, Return: 4, Res: model.ResOK, Now: 99},
		model.Op{Kind: model.Touch, Key: "k", Exp: 200, Invoke: 5, Return: 6, Res: model.ResOK, Now: 99},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("v"), Invoke: 7, Return: 8, Res: model.ResOK, Now: 150},
		model.Op{Kind: model.Get, Key: "k", Invoke: 9, Return: 10, Res: model.ResNotFound, Now: 200},
		model.Op{Kind: model.Incr, Key: "k", Delta: 1, Invoke: 11, Return: 12, Res: model.ResNotFound, Now: 201},
	), mdl(), Options{})
	if !res.Ok {
		t.Fatalf("expiry history rejected: %s", res.Violation)
	}
	// Reading the corpse after the deadline is a violation.
	res = Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("v"), Exp: 100, Invoke: 1, Return: 2, Res: model.ResOK, Now: 90},
		model.Op{Kind: model.Get, Key: "k", RVal: []byte("v"), Invoke: 3, Return: 4, Res: model.ResOK, Now: 100},
	), mdl(), Options{})
	if res.Ok {
		t.Fatal("read of expired value accepted")
	}
}

// TestBudgetUndecided: a tiny state budget reports undecided, not a
// verdict.
func TestBudgetUndecided(t *testing.T) {
	res := Check(h(
		model.Op{Kind: model.Set, Key: "k", Val: []byte("1"), Invoke: 1, Return: 2, Res: model.ResOK},
		model.Op{Kind: model.Set, Key: "k", Val: []byte("2"), Invoke: 3, Return: 4, Res: model.ResOK},
		model.Op{Kind: model.Set, Key: "k", Val: []byte("3"), Invoke: 5, Return: 6, Res: model.ResOK},
	), mdl(), Options{MaxStates: 1})
	if !res.Ok || len(res.Undecided) != 1 {
		t.Fatalf("res = %+v", res)
	}
}

// TestShrinkStripsNoise: unrelated legal ops around a violation are
// shrunk away.
func TestShrinkStripsNoise(t *testing.T) {
	ops := []model.Op{}
	inv := uint64(1)
	addOp := func(op model.Op) {
		op.Invoke, op.Return, op.ID = inv, inv+1, len(ops)
		inv += 2
		ops = append(ops, op)
	}
	for i := 0; i < 20; i++ {
		addOp(model.Op{Kind: model.Set, Key: "k", Val: []byte("x"), Res: model.ResOK})
		addOp(model.Op{Kind: model.Get, Key: "k", RVal: []byte("x"), Res: model.ResOK})
	}
	addOp(model.Op{Kind: model.Get, Key: "k", RVal: []byte("torn"), Res: model.ResOK})
	for i := 0; i < 10; i++ {
		addOp(model.Op{Kind: model.Incr, Key: "k", Delta: 1, Res: model.ResNotNumeric})
	}
	res := Check(ops, mdl(), Options{})
	if res.Ok {
		t.Fatal("torn read accepted")
	}
	// "torn" was never written: the read alone is the whole witness.
	if len(res.Witness) != 1 || string(res.Witness[0].RVal) != "torn" {
		t.Fatalf("witness:\n%s", FormatOps(res.Witness))
	}
}

// TestRecorder: tapes stamp real-time order and un-Ended ops surface as
// pending.
func TestRecorder(t *testing.T) {
	r := NewRecorder(2)
	t0, t1 := r.Tape(0), r.Tape(1)
	i := t0.Begin(model.Op{Kind: model.Set, Key: "k", Val: []byte("1")})
	t0.End(i, func(op *model.Op) { op.Res = model.ResOK })
	j := t1.Begin(model.Op{Kind: model.Get, Key: "k"})
	_ = j // the worker dies here; Get never returns
	i = t0.Begin(model.Op{Kind: model.Delete, Key: "k"})
	t0.End(i, func(op *model.Op) { op.Res = model.ResOK })

	hist := r.History()
	if len(hist) != 3 {
		t.Fatalf("history: %d ops", len(hist))
	}
	if hist[0].Kind != model.Set || hist[1].Kind != model.Get || hist[2].Kind != model.Delete {
		t.Fatalf("order: %v %v %v", hist[0].Kind, hist[1].Kind, hist[2].Kind)
	}
	if !hist[1].Pending || hist[1].Res != model.ResUnknown || hist[1].Return != ^uint64(0) {
		t.Fatalf("pending op: %+v", hist[1])
	}
	if hist[0].Return >= hist[2].Invoke {
		t.Fatal("clock not monotone across tapes")
	}
	if res := Check(hist, mdl(), Options{}); !res.Ok {
		t.Fatalf("recorded history rejected: %s", res.Violation)
	}
}
