// Package linearcheck checks recorded concurrent histories of the store
// for linearizability against the sequential reference in
// internal/model. It has three parts: a wait-free-friendly history
// recorder (per-worker tapes stamped from one shared atomic clock), a
// Wing&Gong-style search with memoization run independently per key
// (keys are independent linearization domains in memcached — except
// flush_all, which enters every key's subhistory), and a greedy
// delta-debugging shrinker that reduces a violating subhistory to a
// minimal witness.
package linearcheck

import (
	"math"
	"sort"
	"sync/atomic"

	"plibmc/internal/model"
)

// Recorder hands out per-worker tapes and the shared logical clock that
// stamps invoke/return times. The clock is a single atomic counter:
// op A happens-before op B iff A.Return < B.Invoke. Workers only touch
// their own tape plus one atomic add per stamp, so recording perturbs
// the interleaving being observed as little as possible.
type Recorder struct {
	clock atomic.Uint64
	tapes []Tape
}

// NewRecorder creates a recorder with one tape per worker.
func NewRecorder(workers int) *Recorder {
	r := &Recorder{tapes: make([]Tape, workers)}
	for i := range r.tapes {
		r.tapes[i].r = r
		r.tapes[i].client = i
	}
	return r
}

// Tape returns worker i's tape. A tape is single-goroutine: only worker
// i may call Begin/End/Record on it.
func (r *Recorder) Tape(i int) *Tape { return &r.tapes[i] }

// Now draws a fresh timestamp (for batched ops recorded via Record).
func (r *Recorder) Now() uint64 { return r.clock.Add(1) }

// Tape is one worker's append-only op log.
type Tape struct {
	r      *Recorder
	client int
	ops    []model.Op
}

// Begin stamps op's invoke time and appends it, returning its index for
// End. An op left un-Ended (the worker died mid-call) is marked pending
// when the history is assembled.
func (t *Tape) Begin(op model.Op) int {
	op.Client = t.client
	op.Invoke = t.r.clock.Add(1)
	t.ops = append(t.ops, op)
	return len(t.ops) - 1
}

// End stamps the return time for the op at index i, then lets the
// caller fill in the observed result. Call it before the tape's next
// Begin.
func (t *Tape) End(i int, fill func(*model.Op)) {
	t.ops[i].Return = t.r.clock.Add(1)
	if fill != nil {
		fill(&t.ops[i])
	}
}

// Record appends a pre-stamped op (batched calls like MGet record one
// op per key sharing the batch's invoke/return window).
func (t *Tape) Record(op model.Op) {
	op.Client = t.client
	t.ops = append(t.ops, op)
}

// History merges the tapes into one history sorted by invoke time.
// Un-Ended ops become pending: their effect window extends to infinity
// and the checker may linearize them anywhere after invoke, or not at
// all.
func (r *Recorder) History() []model.Op {
	var out []model.Op
	for i := range r.tapes {
		out = append(out, r.tapes[i].ops...)
	}
	for i := range out {
		if out[i].Return == 0 {
			out[i].Return = math.MaxUint64
			out[i].Pending = true
			out[i].Res = model.ResUnknown
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Invoke < out[b].Invoke })
	for i := range out {
		out[i].ID = i
	}
	return out
}
