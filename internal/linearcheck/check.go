package linearcheck

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"plibmc/internal/model"
)

// Options tunes a Check run.
type Options struct {
	// MaxStates bounds the per-key search (counted in model steps);
	// exceeding it marks the key undecided rather than running forever.
	// 0 means the default budget.
	MaxStates int64
	// NoShrink skips witness minimization on violation.
	NoShrink bool
}

const defaultMaxStates = 4 << 20

// Result is the outcome of checking one history.
type Result struct {
	Ok        bool
	Violation string     // human-readable reason when !Ok
	Key       string     // the violating key
	Witness   []model.Op // minimal violating subhistory (shrunk)
	Undecided []string   // keys whose search exceeded the budget

	Ops            int   // total ops checked
	Keys           int   // distinct keys (linearization domains)
	MaxKeyOps      int   // largest per-key subhistory
	StatesExplored int64 // total model steps across all keys
}

type verdict int8

const (
	vOK verdict = iota
	vViolation
	vUndecided
)

// Check verifies that history is linearizable with respect to m. If
// m.CasVals is nil it is built here from the history's observed CAS
// generations (and generation/value uniqueness is verified while doing
// so — two reads observing one generation with different contents is
// already a violation, no search needed).
func Check(history []model.Op, m *model.Model, opts Options) Result {
	budget := opts.MaxStates
	if budget <= 0 {
		budget = defaultMaxStates
	}
	res := Result{Ok: true, Ops: len(history)}

	if m.CasVals == nil {
		cas := make(map[uint64]string, len(history))
		casKey := make(map[uint64]string, len(history))
		casOp := make(map[uint64]int, len(history))
		for i := range history {
			op := &history[i]
			if op.RCAS == 0 || op.Res != model.ResOK {
				continue
			}
			if prev, seen := cas[op.RCAS]; seen {
				if prev != string(op.RVal) || casKey[op.RCAS] != op.Key {
					res.Ok = false
					res.Key = op.Key
					res.Violation = fmt.Sprintf(
						"cas generation %d observed with two different contents: %s[%d] saw %q/%q, %s[%d] saw %q/%q",
						op.RCAS, history[casOp[op.RCAS]].Kind, casOp[op.RCAS],
						casKey[op.RCAS], prev, op.Kind, i, op.Key, op.RVal)
					res.Witness = []model.Op{history[casOp[op.RCAS]], *op}
					return res
				}
				continue
			}
			cas[op.RCAS] = string(op.RVal)
			casKey[op.RCAS] = op.Key
			casOp[op.RCAS] = i
		}
		m.CasVals = cas
	}

	// Partition into per-key subhistories; flushes enter all of them.
	byKey := make(map[string][]model.Op)
	var flushes []model.Op
	for i := range history {
		if history[i].Kind == model.Flush {
			flushes = append(flushes, history[i])
			continue
		}
		byKey[history[i].Key] = append(byKey[history[i].Key], history[i])
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res.Keys = len(keys)

	for _, k := range keys {
		sub := byKey[k]
		if len(flushes) > 0 {
			sub = append(append([]model.Op(nil), sub...), flushes...)
			sort.Slice(sub, func(a, b int) bool { return sub[a].Invoke < sub[b].Invoke })
		}
		if len(sub) > res.MaxKeyOps {
			res.MaxKeyOps = len(sub)
		}
		v, steps := checkKey(sub, m, budget)
		res.StatesExplored += steps
		switch v {
		case vUndecided:
			res.Undecided = append(res.Undecided, k)
		case vViolation:
			res.Ok = false
			res.Key = k
			if !opts.NoShrink {
				sub = Shrink(sub, m, budget)
			}
			res.Witness = sub
			res.Violation = fmt.Sprintf(
				"key %q: no linearization of %d ops explains the recorded results; witness:\n%s",
				k, len(sub), FormatOps(sub))
			return res
		}
	}
	return res
}

// entry is one node of the doubly linked entry list: a call entry
// (match != nil, pointing at its return entry) or a return entry.
type entry struct {
	op         int // index into the subhistory
	match      *entry
	time       uint64
	prev, next *entry
}

// lift removes a call entry and its return from the list; unlift undoes
// it. Lifted entries keep their prev/next pointers, so unlifting in
// LIFO order reinserts them exactly where they were.
func (e *entry) lift() {
	e.prev.next = e.next
	e.next.prev = e.prev // a call always has its return after it
	r := e.match
	r.prev.next = r.next
	if r.next != nil {
		r.next.prev = r.prev
	}
}

func (e *entry) unlift() {
	r := e.match
	r.prev.next = r
	if r.next != nil {
		r.next.prev = r
	}
	e.prev.next = e
	e.next.prev = e
}

// buildEntries threads the subhistory into the entry list, returning
// the sentinel head.
func buildEntries(sub []model.Op) *entry {
	nodes := make([]*entry, 0, 2*len(sub))
	for i := range sub {
		call := &entry{op: i, time: sub[i].Invoke}
		ret := &entry{op: i, time: sub[i].Return}
		call.match = ret
		nodes = append(nodes, call, ret)
	}
	sort.SliceStable(nodes, func(a, b int) bool {
		if nodes[a].time != nodes[b].time {
			return nodes[a].time < nodes[b].time
		}
		// Equal stamps only happen among pending returns (MaxUint64);
		// order is immaterial, keep it deterministic.
		return nodes[a].op < nodes[b].op
	})
	head := &entry{op: -1}
	cur := head
	for _, n := range nodes {
		n.prev = cur
		cur.next = n
		cur = n
	}
	return head
}

// frame is one linearization decision on the search stack.
type frame struct {
	entry    *entry
	prior    model.State   // state before this op was applied
	variants []model.State // possible successors (ResUnknown ops branch)
	vi       int           // variant currently applied
}

// cacheKey encodes (linearized-set, state) for memoization.
func cacheKey(lin []uint64, st model.State) string {
	var b strings.Builder
	for _, w := range lin {
		b.WriteString(strconv.FormatUint(w, 36))
		b.WriteByte(',')
	}
	b.WriteString(st.Canon())
	return b.String()
}

// checkKey runs the Wing&Gong/Lowe search over one key's subhistory:
// repeatedly pick a minimal op (one invoked before every un-linearized
// op's return), apply it to the model, and backtrack on contradiction,
// memoizing (linearized-set, state) configurations. Pending ops need
// not be linearized: the search succeeds as soon as every completed op
// is placed.
func checkKey(sub []model.Op, m *model.Model, budget int64) (verdict, int64) {
	nonPending := 0
	for i := range sub {
		if !sub[i].Pending {
			nonPending++
		}
	}
	if nonPending == 0 {
		return vOK, 0
	}

	head := buildEntries(sub)
	lin := make([]uint64, (len(sub)+63)/64)
	cache := make(map[string]struct{})
	var stack []frame
	state := model.State{}
	var steps int64
	cur := head.next

	// apply tries variants of e starting at vi; on the first uncached
	// one it commits the linearization and returns true.
	apply := func(e *entry, prior model.State, variants []model.State, vi int) bool {
		word, bit := e.op/64, uint64(1)<<(e.op%64)
		lin[word] |= bit
		for ; vi < len(variants); vi++ {
			key := cacheKey(lin, variants[vi])
			if _, seen := cache[key]; seen {
				continue
			}
			cache[key] = struct{}{}
			stack = append(stack, frame{entry: e, prior: prior, variants: variants, vi: vi})
			state = variants[vi]
			if !sub[e.op].Pending {
				nonPending--
			}
			e.lift()
			return true
		}
		lin[word] &^= bit
		return false
	}

	for {
		if nonPending == 0 {
			return vOK, steps
		}
		if steps > budget {
			return vUndecided, steps
		}
		if cur != nil && cur.match != nil {
			// Call entry: a candidate for the next linearization point.
			steps++
			variants := m.Step(state, &sub[cur.op])
			if len(variants) > 0 && apply(cur, state, variants, 0) {
				cur = head.next
				continue
			}
			cur = cur.next
			continue
		}
		// Return entry (or end of list): nothing before this barrier can
		// linearize next — backtrack.
		if len(stack) == 0 {
			return vViolation, steps
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f.entry.unlift()
		if !sub[f.entry.op].Pending {
			nonPending++
		}
		word, bit := f.entry.op/64, uint64(1)<<(f.entry.op%64)
		lin[word] &^= bit
		state = f.prior
		if apply(f.entry, f.prior, f.variants, f.vi+1) {
			cur = head.next
			continue
		}
		cur = f.entry.next
	}
}

// FormatOps renders ops one per line for witness output.
func FormatOps(ops []model.Op) string {
	var b strings.Builder
	for i := range ops {
		op := &ops[i]
		fmt.Fprintf(&b, "  [%3d] c%-2d %-7s %-12q", op.ID, op.Client, op.Kind.String(), op.Key)
		switch op.Kind {
		case model.Set, model.Add, model.Replace, model.Append, model.Prepend:
			fmt.Fprintf(&b, " val=%q", op.Val)
		case model.CAS:
			fmt.Fprintf(&b, " val=%q cas=%d", op.Val, op.CASArg)
		case model.Incr, model.Decr:
			fmt.Fprintf(&b, " delta=%d", op.Delta)
		case model.Touch, model.GAT:
			fmt.Fprintf(&b, " exp=%d", op.Exp)
		}
		fmt.Fprintf(&b, " -> %s", op.Res)
		if op.Res == model.ResOK {
			switch op.Kind {
			case model.Get, model.GAT:
				fmt.Fprintf(&b, " val=%q flags=%d cas=%d", op.RVal, op.RFlags, op.RCAS)
			case model.Incr, model.Decr:
				fmt.Fprintf(&b, " num=%d", op.RNum)
			}
		}
		if op.Pending {
			b.WriteString(" (pending)")
		}
		fmt.Fprintf(&b, "  [%d,%d]\n", op.Invoke, op.Return)
	}
	return b.String()
}
