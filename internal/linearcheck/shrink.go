package linearcheck

import "plibmc/internal/model"

// Shrink reduces a violating subhistory to a minimal witness — soundly.
//
// Deleting ops outright is unsound: removing the Set that explains a
// later read manufactures a "violation" the real run never had. Instead
// the shrinker *weakens* ops: a weakened op keeps its window but its
// result becomes ResUnknown, meaning it may or may not have applied.
// Weakening only ever enlarges the set of legal linearizations, so if
// the weakened history still cannot be linearized, the surviving
// strong-result ops are a true contradiction core. And because every
// weakened op can always linearize with no effect, a witness that
// violates in weakened context also violates standalone — the returned
// ops are a self-contained non-linearizable history.
//
// Reduction is greedy delta debugging: coarse chunks of weakenings
// first, then per-op passes to fixpoint.
func Shrink(sub []model.Op, m *model.Model, budget int64) []model.Op {
	n := len(sub)
	weak := make([]bool, n)
	scratch := make([]model.Op, n)
	// Each probe re-runs the search, and delta debugging runs O(n log n)
	// probes; cap the per-probe budget so shrinking a large subhistory
	// stays bounded in time and memo-cache memory. A probe that exceeds
	// the cap counts as "not violating" and is rolled back, which can
	// only make the witness larger, never wrong.
	probe := budget
	if probe > 1<<18 {
		probe = 1 << 18
	}
	violates := func() bool {
		copy(scratch, sub)
		for i := range scratch {
			if weak[i] {
				scratch[i].Res = model.ResUnknown
			}
		}
		v, _ := checkKey(scratch, m, probe)
		return v == vViolation
	}
	if !violates() {
		return sub // not definitely violating under this budget; keep as is
	}

	// tryWeaken weakens the strong ops in [start, start+chunk) and keeps
	// the weakening iff the violation survives.
	tryWeaken := func(idxs []int) bool {
		for _, i := range idxs {
			weak[i] = true
		}
		if violates() {
			return true
		}
		for _, i := range idxs {
			weak[i] = false
		}
		return false
	}
	strongIdxs := func() []int {
		var out []int
		for i := 0; i < n; i++ {
			if !weak[i] {
				out = append(out, i)
			}
		}
		return out
	}

	for chunk := n / 2; chunk >= 1; chunk /= 2 {
		strong := strongIdxs()
		for start := 0; start < len(strong); {
			end := start + chunk
			if end > len(strong) {
				end = len(strong)
			}
			if !tryWeaken(strong[start:end]) {
				start = end
				continue
			}
			// Weakened ops drop out of the strong list; re-snapshot.
			strong = strongIdxs()
		}
	}
	for changed := true; changed; {
		changed = false
		for _, i := range strongIdxs() {
			if tryWeaken([]int{i}) {
				changed = true
			}
		}
	}

	var witness []model.Op
	for i := 0; i < n; i++ {
		if !weak[i] {
			witness = append(witness, sub[i])
		}
	}
	return witness
}
