package ring

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a, err := New(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(4, 0)
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		sa, sb := a.Shard(k), b.Shard(k)
		if sa != sb {
			t.Fatalf("key %q maps to %d and %d on identical rings", k, sa, sb)
		}
		if sa < 0 || sa >= 4 {
			t.Fatalf("key %q maps to out-of-range shard %d", k, sa)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := New(4, 0)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Shard([]byte(fmt.Sprintf("bal-%d", i)))]++
	}
	mean := float64(n) / 4
	for s, c := range counts {
		if ratio := float64(c) / mean; ratio < 0.7 || ratio > 1.3 {
			t.Errorf("shard %d holds %d keys (%.2fx mean) — ring badly unbalanced: %v",
				s, c, ratio, counts)
		}
	}
}

func TestRingRejectsBadShardCount(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := New(n, 0); err == nil {
			t.Errorf("New(%d) accepted", n)
		}
	}
}

// Growing N→N+1 must move only ~1/(N+1) of the keyspace (the consistent-
// hashing contract); a modulo router would move (N)/(N+1).
func TestRingResizeMovesMinimalKeys(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		old, _ := New(n, 0)
		grown, _ := New(n+1, 0)
		moved := 0
		const samples = 20000
		for i := 0; i < samples; i++ {
			k := []byte(fmt.Sprintf("resize-%d", i))
			os, ns := old.Shard(k), grown.Shard(k)
			if os != ns {
				moved++
				// Consistent hashing only ever moves keys *to* the new
				// shard on growth; an old→old move means the ring is
				// reshuffling keys it shouldn't.
				if ns != n {
					t.Fatalf("N=%d: key %q moved %d→%d, not to the new shard", n, k, os, ns)
				}
			}
		}
		frac := float64(moved) / samples
		ideal := 1 / float64(n+1)
		if frac > 1.5*ideal {
			t.Errorf("N=%d→%d moved %.3f of keyspace, want ≤ %.3f (1.5×ideal %.3f)",
				n, n+1, frac, 1.5*ideal, ideal)
		}
		if frac == 0 {
			t.Errorf("N=%d→%d moved nothing — new shard owns no keys", n, n+1)
		}
		if mf := MovedFraction(old, grown, 20000); mf > 1.5*ideal || mf == 0 {
			t.Errorf("MovedFraction = %.3f, want (0, %.3f]", mf, 1.5*ideal)
		}
	}
}

func TestRingPlan(t *testing.T) {
	a, _ := New(4, 0)
	// Identical rings: empty plan.
	if p := Plan(a, a); len(p) != 0 {
		t.Fatalf("Plan(r, r) = %d segments, want 0", len(p))
	}
	b, _ := New(5, 0)
	plan := Plan(a, b)
	if len(plan) == 0 {
		t.Fatal("growth plan is empty")
	}
	for _, seg := range plan {
		if seg.From == seg.To {
			t.Fatalf("no-op segment in plan: %+v", seg)
		}
		if seg.To != 4 {
			t.Fatalf("growth segment moves to shard %d, want only to new shard 4: %+v", seg.To, seg)
		}
	}
	// The plan must agree with direct ownership for sampled keys: a key
	// whose owner changed falls in some segment with matching From/To.
	inSeg := func(h uint64, s Segment) bool {
		if s.Start < s.End {
			return h > s.Start && h <= s.End
		}
		return h > s.Start || h <= s.End // wrapped arc
	}
	for i := 0; i < 20000; i++ {
		k := []byte(fmt.Sprintf("plan-%d", i))
		from, to := a.Shard(k), b.Shard(k)
		h := Hash(k)
		var got *Segment
		for j := range plan {
			if inSeg(h, plan[j]) {
				got = &plan[j]
				break
			}
		}
		if from == to {
			if got != nil {
				t.Fatalf("unmoved key %q covered by segment %+v", k, *got)
			}
			continue
		}
		if got == nil {
			t.Fatalf("moved key %q (%d→%d) not covered by any segment", k, from, to)
		}
		if got.From != from || got.To != to {
			t.Fatalf("key %q moves %d→%d but its segment says %d→%d", k, from, to, got.From, got.To)
		}
	}
}

// Property test over a matrix of ring pairs: the plan's arcs must cover
// the moved keyspace exactly (owner changed ⟺ hash in some planned
// segment with matching From/To, honoring the Start > End wrap rule) and
// be minimal — no two adjacent segments with the same movement, treating
// the plan as circular. The circular-adjacency half fails without the
// wrap-around merge: the i==0 arc (which starts at the last boundary) was
// emitted before the final segment it abuts across the top of the circle
// could merge with it.
func TestRingPlanCoversMovedKeyspaceExactly(t *testing.T) {
	type pair struct{ a, b, vn int }
	pairs := []pair{
		// vn=2 pairs where the final segment abuts the i==0 wrap arc with
		// the same movement — the wrap-around merge must fold them.
		{1, 2, 2}, {1, 3, 2}, {1, 4, 2}, {2, 1, 2},
		// Denser rings: coverage + minimality at realistic vnode counts.
		{4, 6, 2}, {4, 6, 8}, {4, 5, 16}, {6, 4, 8}, {2, 3, 128},
	}
	sawWrapped := false
	for _, pc := range pairs {
		a, _ := New(pc.a, pc.vn)
		b, _ := New(pc.b, pc.vn)
		plan := Plan(a, b)
		if len(plan) == 0 {
			t.Fatalf("%d→%d vn=%d: empty plan for differing rings", pc.a, pc.b, pc.vn)
		}
		// Minimality: no circularly-adjacent same-movement segments.
		for i := range plan {
			next := plan[(i+1)%len(plan)]
			if plan[i].End == next.Start && plan[i].From == next.From && plan[i].To == next.To &&
				len(plan) > 1 {
				t.Errorf("%d→%d vn=%d: segments %d and %d are adjacent with the same movement %d→%d — unmerged",
					pc.a, pc.b, pc.vn, i, (i+1)%len(plan), plan[i].From, plan[i].To)
			}
			if plan[i].Start > plan[i].End {
				sawWrapped = true
			}
		}
		// Exact coverage on sampled keys.
		for i := 0; i < 20000; i++ {
			k := []byte(fmt.Sprintf("cover-%d-%d", pc.vn, i))
			from, to := a.Shard(k), b.Shard(k)
			h := Hash(k)
			var got *Segment
			for j := range plan {
				if plan[j].Contains(h) {
					got = &plan[j]
					break
				}
			}
			if from == to {
				if got != nil {
					t.Fatalf("%d→%d vn=%d: unmoved key %q covered by %+v", pc.a, pc.b, pc.vn, k, *got)
				}
				continue
			}
			if got == nil {
				t.Fatalf("%d→%d vn=%d: moved key %q (%d→%d) not covered", pc.a, pc.b, pc.vn, k, from, to)
			}
			if got.From != from || got.To != to {
				t.Fatalf("%d→%d vn=%d: key %q moves %d→%d but its segment says %d→%d",
					pc.a, pc.b, pc.vn, k, from, to, got.From, got.To)
			}
		}
	}
	if !sawWrapped {
		t.Fatal("no wrapped (Start > End) segment across the whole matrix — the wrap-merge fixture went stale")
	}
}

// BenchmarkRingShard is the routing hot path: one hash + one binary
// search over the vnode points.
func BenchmarkRingShard(b *testing.B) {
	r, err := New(4, DefaultVirtualNodes)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([][]byte, 1024)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("bench%04d", i))
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Shard(keys[i%1024])
	}
	_ = sink
}
