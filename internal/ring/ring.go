// Package ring implements the consistent-hash ring that fans a keyspace
// across N protected-library store shards. Each shard contributes many
// virtual nodes (points) to a 64-bit hash circle; a key is owned by the
// shard whose first point is clockwise of the key's hash. Virtual nodes
// keep the per-shard load balanced and make resizes cheap: growing N→N+1
// moves only ~1/(N+1) of the keyspace, and Plan computes exactly which
// hash ranges move.
//
// The ring is deterministic — same (shards, vnodes) always yields the same
// mapping — because the proxy tier, the in-process Cluster handle, and
// offline tools (plibdump over a shard directory) must all agree on
// key placement without coordination.
package ring

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-shard point count. 128 points per shard
// keeps the max/mean shard load under ~1.15 for the shard counts this
// system targets (4–64) while keeping Shard() lookups in a small sorted
// slice.
const DefaultVirtualNodes = 128

// point is one virtual node: a position on the hash circle and the shard
// that owns the arc ending at it.
type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash ring over `shards` shards. Safe for
// concurrent use.
type Ring struct {
	shards int
	vnodes int
	points []point // sorted by hash
}

// New builds a ring with the given shard count and virtual nodes per shard
// (0 = DefaultVirtualNodes).
func New(shards, vnodesPerShard int) (*Ring, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("ring: shard count %d must be positive", shards)
	}
	if vnodesPerShard <= 0 {
		vnodesPerShard = DefaultVirtualNodes
	}
	r := &Ring{shards: shards, vnodes: vnodesPerShard}
	r.points = make([]point, 0, shards*vnodesPerShard)
	var buf [32]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			n := fmt.Appendf(buf[:0], "shard-%d#%d", s, v)
			r.points = append(r.points, point{hash: Hash(n), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break deterministically by shard so
		// every party computes the same ownership.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// VirtualNodes returns the per-shard virtual node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Shard maps a key to its owning shard: the shard of the first point at or
// clockwise of Hash(key), wrapping past the top of the circle.
func (r *Ring) Shard(key []byte) int {
	return r.owner(Hash(key))
}

// Owner maps an already-computed hash position to its owning shard. The
// dual-ring routing layer hashes a key once and then resolves it against
// both rings and the migration plan, so it needs ownership by position.
func (r *Ring) Owner(h uint64) int { return r.owner(h) }

// owner returns the shard owning hash position h.
func (r *Ring) owner(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].shard
}

// Hash is the ring's key hash: FNV-1a 64-bit with a murmur3-style final
// mix. Raw FNV-1a avalanches poorly in the high bits on short, similar
// keys (exactly what vnode labels are), which skews arc ownership badly;
// the finalizer restores uniformity. Stable across processes and builds
// (no seed), which the deterministic-placement contract requires.
func Hash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Segment is one contiguous arc of the hash circle whose owner differs
// between two rings: keys hashing into (Start, End] move From→To during a
// resize. A segment with Start > End wraps past the top of the circle.
type Segment struct {
	Start, End uint64 // arc (Start, End], i.e. keys with Start < Hash(k) <= End
	From, To   int
}

// Contains reports whether hash position h falls inside the segment's
// arc (Start, End], honoring the Start > End wrap rule. A segment with
// Start == End covers the full circle (it can only arise from merging
// every arc, which requires every key to move).
func (s Segment) Contains(h uint64) bool {
	if s.Start < s.End {
		return h > s.Start && h <= s.End
	}
	return h > s.Start || h <= s.End
}

// Plan computes the rebalance plan from ring a to ring b: the minimal set
// of hash-circle arcs whose ownership changes. An empty plan means the
// rings agree everywhere (in particular Plan(r, r) is empty). Shards only
// present in one ring simply appear as From/To owners like any other.
func Plan(a, b *Ring) []Segment {
	// Ownership of an arc is constant between adjacent boundary points of
	// the *union* of both rings' point sets, so walking that union visits
	// every possible ownership change exactly once.
	bounds := make([]uint64, 0, len(a.points)+len(b.points))
	for _, p := range a.points {
		bounds = append(bounds, p.hash)
	}
	for _, p := range b.points {
		bounds = append(bounds, p.hash)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	// Dedup.
	uniq := bounds[:0]
	for i, h := range bounds {
		if i == 0 || h != uniq[len(uniq)-1] {
			uniq = append(uniq, h)
		}
	}
	bounds = uniq
	if len(bounds) == 0 {
		return nil
	}

	var plan []Segment
	// The arc ending at bounds[i] starts just after the previous boundary
	// (wrapping for i==0). Ownership of every key in (prev, cur] is the
	// owner of cur in each ring.
	for i, cur := range bounds {
		prev := bounds[(i+len(bounds)-1)%len(bounds)]
		from, to := a.owner(cur), b.owner(cur)
		if from == to {
			continue
		}
		// Merge with the previous segment when the arcs are adjacent and
		// the movement is the same — keeps plans compact.
		if n := len(plan); n > 0 && plan[n-1].End == prev &&
			plan[n-1].From == from && plan[n-1].To == to {
			plan[n-1].End = cur
			continue
		}
		plan = append(plan, Segment{Start: prev, End: cur, From: from, To: to})
	}
	// The i==0 arc starts at the *last* boundary (it wraps past the top of
	// the circle), so it is emitted before the segment it may be adjacent
	// to could exist. If the final segment ends exactly where the first one
	// starts and carries the same movement, they are one arc across the
	// top: fold the first into the last, producing a wrapped Start > End
	// segment.
	if n := len(plan); n > 1 {
		first, last := plan[0], plan[n-1]
		if first.Start == last.End && first.From == last.From && first.To == last.To {
			plan[n-1].End = first.End
			plan = plan[1:]
		}
	}
	return plan
}

// MovedFraction estimates, by sampling `samples` synthetic keys, the
// fraction of the keyspace whose owner differs between two rings — the
// figure of merit for a resize (ideally ~added/(new total)).
func MovedFraction(a, b *Ring, samples int) float64 {
	if samples <= 0 {
		samples = 1 << 16
	}
	moved := 0
	var buf [24]byte
	for i := 0; i < samples; i++ {
		k := fmt.Appendf(buf[:0], "sample-key-%d", i)
		if a.Shard(k) != b.Shard(k) {
			moved++
		}
	}
	return float64(moved) / float64(samples)
}
