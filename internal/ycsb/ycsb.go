// Package ycsb reimplements the workload-generation side of the Yahoo!
// Cloud Serving Benchmark (Cooper et al., SoCC '10) used in the paper's
// evaluation: Zipfian-distributed key popularity over a loaded key space,
// configurable read/write mix and value size. The paper's four workloads
// are value sizes {128 B, 5 KB} × read proportions {95/5 "read heavy",
// 50/50 "write heavy"}, with operations drawn Zipfian over the keys.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// ZipfianConstant is YCSB's default skew parameter.
const ZipfianConstant = 0.99

// Zipfian draws items 0..n-1 with Zipfian popularity (item 0 most popular),
// using the Gray et al. algorithm exactly as YCSB implements it.
type Zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
	rng   *rand.Rand
}

// NewZipfian creates a generator over n items with the given skew.
func NewZipfian(n uint64, theta float64, seed int64) *Zipfian {
	if n == 0 {
		panic("ycsb: zipfian over zero items")
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next item.
func (z *Zipfian) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Scrambled wraps a Zipfian so that popular items are scattered across the
// key space (YCSB's ScrambledZipfianGenerator): the rank is hashed before
// being mapped to an item.
type Scrambled struct {
	z *Zipfian
	n uint64
}

// NewScrambled creates a scrambled Zipfian over n items.
func NewScrambled(n uint64, seed int64) *Scrambled {
	return &Scrambled{z: NewZipfian(n, ZipfianConstant, seed), n: n}
}

// Next draws the next item.
func (s *Scrambled) Next() uint64 {
	return fnv64(s.z.Next()) % s.n
}

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// Uniform draws items uniformly.
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform creates a uniform generator over n items.
func NewUniform(n uint64, seed int64) *Uniform {
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next draws the next item.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// Latest draws items with Zipfian popularity skewed toward the most
// recently inserted records (YCSB's SkewedLatestGenerator, used by its
// workload D): item (count-1) is the most popular. Call Grow as records
// are inserted.
type Latest struct {
	z     *Zipfian
	count uint64
}

// NewLatest creates a latest-skewed generator over an initial count.
func NewLatest(count uint64, seed int64) *Latest {
	return &Latest{z: NewZipfian(count, ZipfianConstant, seed), count: count}
}

// Grow extends the item space; recency skew follows automatically.
func (l *Latest) Grow(newCount uint64) {
	if newCount <= l.count {
		return
	}
	// YCSB rebuilds the underlying zipfian lazily; for our scales a
	// rebuild per growth step is affordable and exact.
	l.z = NewZipfian(newCount, ZipfianConstant, l.z.rng.Int63())
	l.count = newCount
}

// Next draws an item, most-recent-first.
func (l *Latest) Next() uint64 {
	return l.count - 1 - l.z.Next()
}

// Generator is any key-index chooser.
type Generator interface{ Next() uint64 }

// Workload describes one of the paper's benchmark configurations.
type Workload struct {
	// RecordCount is the number of loaded key-value pairs (the paper used
	// 4×10^7 for 128 B values and 10^6 for 5 KB, keeping total memory
	// roughly equal).
	RecordCount uint64
	// ValueSize in bytes (128 or 5120 in the paper).
	ValueSize int
	// ReadProportion: 0.95 = read heavy, 0.50 = write heavy.
	ReadProportion float64
	// Uniform selects uniform instead of Zipfian key popularity.
	Uniform bool
}

// Validate checks the workload parameters.
func (w *Workload) Validate() error {
	if w.RecordCount == 0 {
		return fmt.Errorf("ycsb: RecordCount must be positive")
	}
	if w.ValueSize <= 0 {
		return fmt.Errorf("ycsb: ValueSize must be positive")
	}
	if w.ReadProportion < 0 || w.ReadProportion > 1 {
		return fmt.Errorf("ycsb: ReadProportion out of [0,1]")
	}
	return nil
}

// WriteHeavy128 and friends are the paper's four workloads, parameterized
// by record count so benches can scale.
func WriteHeavy128(records uint64) Workload {
	return Workload{RecordCount: records, ValueSize: 128, ReadProportion: 0.50}
}

// ReadHeavy128 is 128-byte values at a 95/5 read/write mix.
func ReadHeavy128(records uint64) Workload {
	return Workload{RecordCount: records, ValueSize: 128, ReadProportion: 0.95}
}

// WriteHeavy5K is 5 KB values at 50/50.
func WriteHeavy5K(records uint64) Workload {
	return Workload{RecordCount: records, ValueSize: 5120, ReadProportion: 0.50}
}

// ReadHeavy5K is 5 KB values at 95/5.
func ReadHeavy5K(records uint64) Workload {
	return Workload{RecordCount: records, ValueSize: 5120, ReadProportion: 0.95}
}

// Key renders the i'th record's key in YCSB's "user<hash>" style (fixed
// width, so key length is constant across the run).
func Key(i uint64) []byte {
	return []byte(fmt.Sprintf("user%016d", fnv64(i)%1e16))
}

// KeyInto renders the key into dst to avoid allocation on hot paths.
func KeyInto(dst []byte, i uint64) []byte {
	dst = dst[:0]
	dst = append(dst, 'u', 's', 'e', 'r')
	v := fnv64(i) % 1e16
	var digits [16]byte
	for p := 15; p >= 0; p-- {
		digits[p] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, digits[:]...)
}

// Value builds a deterministic value of the workload's size for record i.
func (w *Workload) Value(i uint64) []byte {
	v := make([]byte, w.ValueSize)
	FillValue(v, i)
	return v
}

// FillValue fills buf with record i's deterministic payload.
func FillValue(buf []byte, i uint64) {
	seed := fnv64(i)
	for j := range buf {
		buf[j] = byte('a' + (seed+uint64(j))%26)
	}
}

// OpKind is one benchmark operation type.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpUpdate
)

// Client generates the operation stream for one benchmark thread. Each
// thread gets its own Client (distinct seed) so threads don't contend on
// the generator.
type Client struct {
	w   Workload
	gen Generator
	rng *rand.Rand
	key []byte
	val []byte
}

// NewClient creates a per-thread operation generator.
func (w Workload) NewClient(seed int64) *Client {
	var gen Generator
	if w.Uniform {
		gen = NewUniform(w.RecordCount, seed)
	} else {
		gen = NewScrambled(w.RecordCount, seed)
	}
	return &Client{
		w:   w,
		gen: gen,
		rng: rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
		key: make([]byte, 0, 20),
		val: make([]byte, w.ValueSize),
	}
}

// Next returns the next operation. The returned key and value alias the
// client's internal buffers and are valid until the next call.
func (c *Client) Next() (OpKind, []byte, []byte) {
	idx := c.gen.Next()
	c.key = KeyInto(c.key, idx)
	if c.rng.Float64() < c.w.ReadProportion {
		return OpRead, c.key, nil
	}
	FillValue(c.val, idx)
	return OpUpdate, c.key, c.val
}
