package ycsb

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	const n = 1000
	z := NewZipfian(n, ZipfianConstant, 42)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= n {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must dominate: with theta=0.99 over 1000 items it gets ~13%.
	if counts[0] < draws/20 {
		t.Fatalf("item 0 drawn %d/%d times; not Zipfian", counts[0], draws)
	}
	// Popularity must be (roughly) monotonically decreasing in rank:
	// compare aggregated halves.
	low, high := 0, 0
	for i := 0; i < n/2; i++ {
		low += counts[i]
	}
	for i := n / 2; i < n; i++ {
		high += counts[i]
	}
	if low < 5*high {
		t.Fatalf("first half %d vs second half %d: insufficient skew", low, high)
	}
	// Ratio of top two ranks approximates 2^theta.
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-math.Pow(2, ZipfianConstant)) > 0.6 {
		t.Logf("rank ratio %.2f (expected ~%.2f) — tolerated", ratio, math.Pow(2, ZipfianConstant))
	}
}

func TestScrambledSpreadsHotKeys(t *testing.T) {
	const n = 1000
	s := NewScrambled(n, 1)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		v := s.Next()
		if v >= n {
			t.Fatalf("draw out of range")
		}
		counts[v]++
	}
	// The hottest item must NOT be item 0 systematically — scrambling
	// scatters popularity. Find the hottest item; it should still absorb
	// a Zipfian share.
	hot, hotCount := uint64(0), 0
	for k, c := range counts {
		if c > hotCount {
			hot, hotCount = k, c
		}
	}
	if hotCount < 100000/20 {
		t.Fatalf("hottest item only %d draws; scrambling broke skew", hotCount)
	}
	t.Logf("hottest item %d with %d draws", hot, hotCount)
}

func TestUniform(t *testing.T) {
	u := NewUniform(100, 7)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[u.Next()]++
	}
	for i, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("item %d drawn %d times; not uniform", i, c)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewScrambled(500, 99), NewScrambled(500, 99)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := NewScrambled(500, 100)
	same := 0
	a2 := NewScrambled(500, 99)
	for i := 0; i < 1000; i++ {
		if a2.Next() == c.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatal("different seeds should diverge")
	}
}

func TestKeys(t *testing.T) {
	k := Key(5)
	if len(k) != 20 || string(k[:4]) != "user" {
		t.Fatalf("key = %q", k)
	}
	if !bytes.Equal(Key(5), Key(5)) {
		t.Fatal("keys must be deterministic")
	}
	if bytes.Equal(Key(5), Key(6)) {
		t.Fatal("distinct records must have distinct keys")
	}
	var buf []byte
	buf = KeyInto(buf, 5)
	if !bytes.Equal(buf, Key(5)) {
		t.Fatalf("KeyInto %q != Key %q", buf, Key(5))
	}
}

// Property: KeyInto always agrees with Key, at constant width.
func TestQuickKeyInto(t *testing.T) {
	buf := make([]byte, 0, 20)
	f := func(i uint64) bool {
		buf = KeyInto(buf, i)
		return bytes.Equal(buf, Key(i)) && len(buf) == 20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloads(t *testing.T) {
	for _, w := range []Workload{
		WriteHeavy128(1000), ReadHeavy128(1000), WriteHeavy5K(100), ReadHeavy5K(100),
	} {
		if err := w.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if (&Workload{}).Validate() == nil {
		t.Fatal("zero workload should be invalid")
	}
	if (&Workload{RecordCount: 1, ValueSize: 1, ReadProportion: 2}).Validate() == nil {
		t.Fatal("bad read proportion should be invalid")
	}
	w := ReadHeavy128(1000)
	if w.ValueSize != 128 || w.ReadProportion != 0.95 {
		t.Fatalf("workload = %+v", w)
	}
	v := w.Value(3)
	if len(v) != 128 {
		t.Fatalf("value size %d", len(v))
	}
	if !bytes.Equal(v, w.Value(3)) {
		t.Fatal("values must be deterministic")
	}
}

func TestClientMix(t *testing.T) {
	w := ReadHeavy128(1000)
	c := w.NewClient(1)
	reads, updates := 0, 0
	for i := 0; i < 10000; i++ {
		kind, key, val := c.Next()
		if len(key) != 20 {
			t.Fatalf("key %q", key)
		}
		switch kind {
		case OpRead:
			reads++
			if val != nil {
				t.Fatal("read op carries a value")
			}
		case OpUpdate:
			updates++
			if len(val) != 128 {
				t.Fatalf("update value %d bytes", len(val))
			}
		}
	}
	frac := float64(reads) / 10000
	if frac < 0.93 || frac > 0.97 {
		t.Fatalf("read fraction %.3f, want ~0.95", frac)
	}
	// Write-heavy: ~50/50.
	c2 := WriteHeavy128(1000).NewClient(2)
	reads = 0
	for i := 0; i < 10000; i++ {
		kind, _, _ := c2.Next()
		if kind == OpRead {
			reads++
		}
	}
	if reads < 4700 || reads > 5300 {
		t.Fatalf("write-heavy read count %d, want ~5000", reads)
	}
}

func TestZipfianPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipfian(0, 0.99, 1)
}

func TestLatestSkewsToRecent(t *testing.T) {
	l := NewLatest(1000, 5)
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		v := l.Next()
		if v >= 1000 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// The most recent item must dominate.
	if counts[999] < 50000/20 {
		t.Fatalf("latest item drawn %d times; not recency-skewed", counts[999])
	}
	if counts[999] < counts[0]*5 {
		t.Fatalf("newest (%d) should far outdraw oldest (%d)", counts[999], counts[0])
	}
	// Growth shifts the skew to the new latest.
	l.Grow(2000)
	counts2 := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		v := l.Next()
		if v >= 2000 {
			t.Fatalf("draw %d out of grown range", v)
		}
		counts2[v]++
	}
	if counts2[1999] < 50000/20 {
		t.Fatalf("grown latest drawn %d times", counts2[1999])
	}
	// Shrinking is a no-op.
	l.Grow(100)
	if l.count != 2000 {
		t.Fatal("Grow must never shrink")
	}
}
