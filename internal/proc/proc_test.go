package proc

import (
	"testing"

	"plibmc/internal/pku"
	"plibmc/internal/shm"
)

func newTestProcess(t *testing.T, base uint64) *Process {
	t.Helper()
	h := shm.New(4 * shm.PageSize)
	p, err := NewProcess(1000, h, base)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProcessIdentity(t *testing.T) {
	p1 := newTestProcess(t, 0x10000)
	p2 := newTestProcess(t, 0x20000)
	if p1.ID == p2.ID {
		t.Fatal("process IDs must be unique")
	}
	if p1.UID != 1000 || p1.EUID() != 1000 {
		t.Fatalf("uid/euid = %d/%d", p1.UID, p1.EUID())
	}
	p1.SetEUID(0)
	if p1.EUID() != 0 || p1.UID != 1000 {
		t.Fatal("SetEUID should change only the effective ID")
	}
}

func TestThreadStartsRestricted(t *testing.T) {
	p := newTestProcess(t, 0x10000)
	th := p.NewThread()
	if th.PKRU() != pku.AllRestricted() {
		t.Fatalf("fresh thread pkru = %v, want fully restricted", th.PKRU())
	}
	if th.TID == p.NewThread().TID {
		t.Fatal("thread IDs must be unique within a process")
	}
}

func TestWRPKRUCounts(t *testing.T) {
	p := newTestProcess(t, 0x10000)
	th := p.NewThread()
	WRPKRU(th, 0)
	WRPKRU(th, pku.AllRestricted())
	if p.WRPKRUCount() != 2 {
		t.Fatalf("wrpkru count = %d", p.WRPKRUCount())
	}
	if th.PKRU() != pku.AllRestricted() {
		t.Fatal("WRPKRU should set the register")
	}
}

func TestEnterExitLibrary(t *testing.T) {
	p := newTestProcess(t, 0x10000)
	th := p.NewThread()
	if err := th.EnterLibrary(); err != nil {
		t.Fatal(err)
	}
	if !th.InLibrary() {
		t.Fatal("should be in library")
	}
	if err := th.EnterLibrary(); err == nil {
		t.Fatal("nested entry should fail")
	}
	th.ExitLibrary()
	if th.InLibrary() {
		t.Fatal("should have exited library")
	}
}

func TestKillSemantics(t *testing.T) {
	p := newTestProcess(t, 0x10000)
	th := p.NewThread()

	// In-library threads survive a kill until the call finishes.
	if err := th.EnterLibrary(); err != nil {
		t.Fatal(err)
	}
	p.Kill()
	th.CheckAlive() // must not panic: the call runs to completion
	th.ExitLibrary()

	// Outside the library the kill is delivered.
	func() {
		defer func() {
			if _, ok := recover().(*ErrKilled); !ok {
				t.Fatal("expected ErrKilled panic")
			}
		}()
		th.CheckAlive()
	}()

	// A killed process cannot begin new library calls.
	if err := th.EnterLibrary(); err == nil {
		t.Fatal("killed process should not enter the library")
	}
	var ek *ErrKilled
	if err := th.EnterLibrary(); err != nil {
		var ok bool
		ek, ok = err.(*ErrKilled)
		if !ok {
			t.Fatalf("error = %T, want *ErrKilled", err)
		}
	}
	if ek.PID != p.ID || ek.Error() == "" {
		t.Fatalf("ErrKilled = %+v", ek)
	}
}

func TestLockOwnerUniqueNonzero(t *testing.T) {
	p1 := newTestProcess(t, 0x10000)
	p2 := newTestProcess(t, 0x20000)
	seen := map[uint64]bool{}
	for _, p := range []*Process{p1, p2} {
		for i := 0; i < 10; i++ {
			tok := p.NewThread().LockOwner()
			if tok == 0 {
				t.Fatal("zero lock owner")
			}
			if seen[tok] {
				t.Fatalf("duplicate lock owner %#x", tok)
			}
			seen[tok] = true
		}
	}
}

func TestDistinctViewsShareHeap(t *testing.T) {
	h := shm.New(4 * shm.PageSize)
	p1, err := NewProcess(1000, h, 0x100000)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewProcess(1001, h, 0x7f00_0000_0000)
	if err != nil {
		t.Fatal(err)
	}
	p1.View().Heap().WriteBytes(64, []byte("cross-process"))
	if got := string(p2.View().Heap().Bytes(64, 13)); got != "cross-process" {
		t.Fatalf("process 2 sees %q", got)
	}
	if p1.View().Addr(64) == p2.View().Addr(64) {
		t.Fatal("the two processes should map the heap at different bases")
	}
}
