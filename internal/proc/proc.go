// Package proc models the collection of independent client processes that
// share one protected-library store.
//
// In the paper, clients are ordinary Linux processes: each maps the shared
// heap at its own address, runs its own threads, carries its own credentials
// (the loader briefly assumes the library owner's effective UID during
// initialization), and can die at any moment — by SIGKILL or by a fault in
// one of its threads — without corrupting the library. We reproduce those
// properties with simulated processes inside one Go program: each Process
// owns a distinct heap view, a UID/EUID pair, and a kill flag that the Hodor
// runtime consults to implement its "in-library calls run to completion"
// guarantee. A Thread corresponds to a client thread; library code treats
// the pair (process ID, thread ID) as its lock-owner identity.
package proc

import (
	"fmt"
	"sync/atomic"

	"plibmc/internal/pku"
	"plibmc/internal/shm"
)

// ErrKilled is the panic value delivered to a thread of a killed process
// when it attempts to run application code (the SIGKILL analog).
type ErrKilled struct{ PID int }

func (e *ErrKilled) Error() string { return fmt.Sprintf("proc: process %d was killed", e.PID) }

var nextPID atomic.Int64

// Process is one simulated client (or bookkeeper) process.
type Process struct {
	ID  int
	UID int // real user ID

	euid    atomic.Int64
	view    *shm.View
	killed  atomic.Bool
	nextTID atomic.Int64

	// wrpkruCount counts executions of the (simulated) wrpkru instruction
	// in this process, exposed so tests can verify trampoline behaviour.
	wrpkruCount atomic.Int64
}

// NewProcess creates a process owned by uid, with the heap mapped at base.
// Each process should use a distinct base so that position independence of
// heap data is genuinely exercised.
func NewProcess(uid int, h *shm.Heap, base uint64) (*Process, error) {
	v, err := h.Map(base)
	if err != nil {
		return nil, err
	}
	p := &Process{ID: int(nextPID.Add(1)), UID: uid, view: v}
	p.euid.Store(int64(uid))
	return p, nil
}

// View returns this process's mapping of the shared heap.
func (p *Process) View() *shm.View { return p.view }

// EUID returns the current effective user ID.
func (p *Process) EUID() int { return int(p.euid.Load()) }

// SetEUID changes the effective user ID. Hodor's loader uses this to run
// library initialization with the library owner's credentials and then
// revert (paper §3.3).
func (p *Process) SetEUID(uid int) { p.euid.Store(int64(uid)) }

// Kill marks the process as killed, the SIGKILL analog. Threads currently
// executing inside a protected-library call are permitted to finish (Hodor's
// guarantee); everything else stops at its next cancellation point.
func (p *Process) Kill() { p.killed.Store(true) }

// Killed reports whether the process has been killed.
func (p *Process) Killed() bool { return p.killed.Load() }

// NewThread creates a thread of this process. The thread's pkru register
// starts fully restricted for all non-default keys, which is the state
// Hodor's injected initialization routine establishes before main runs.
func (p *Process) NewThread() *Thread {
	t := &Thread{
		Proc: p,
		TID:  int(p.nextTID.Add(1)),
	}
	t.pkru = pku.AllRestricted()
	return t
}

// Thread is one client thread: a goroutine that has bound itself to a
// simulated process. A Thread must be used by only one goroutine at a time,
// exactly as an OS thread runs one flow of control.
type Thread struct {
	Proc *Process
	TID  int

	pkru      pku.PKRU
	inLibrary bool
	// vtGen caches the pkey-virtualization mapping generation this thread
	// last synchronized its register against (libmpk-style lazy PKRU sync;
	// see pku.VTable). Only the hodor trampoline reads or writes it.
	vtGen uint64
}

// VTGen returns the virtual-key mapping generation this thread last
// synchronized its pkru register against.
func (t *Thread) VTGen() uint64 { return t.vtGen }

// SetVTGen records the mapping generation after a lazy PKRU sync.
func (t *Thread) SetVTGen(g uint64) { t.vtGen = g }

// PKRU returns the thread's current protection-key register.
func (t *Thread) PKRU() pku.PKRU { return t.pkru }

// WRPKRU executes the simulated wrpkru instruction, replacing the thread's
// register. On hardware this instruction is unprivileged; Hodor makes it
// safe by guaranteeing — via its loader's binary scan and hardware
// breakpoints (see internal/hodor) — that the only executable instances
// live inside trampolines. In this simulation the same invariant holds
// structurally: the hodor package is the only caller outside tests.
func WRPKRU(t *Thread, v pku.PKRU) {
	t.Proc.wrpkruCount.Add(1)
	t.pkru = v
}

// WRPKRUCount returns how many times this process has executed wrpkru.
func (p *Process) WRPKRUCount() int64 { return p.wrpkruCount.Load() }

// EnterLibrary marks the thread as executing inside a protected-library
// call. It returns an error if the process was killed before the call
// began — a killed process cannot initiate new calls.
func (t *Thread) EnterLibrary() error {
	if t.inLibrary {
		return fmt.Errorf("proc: nested protected-library call on thread %d.%d", t.Proc.ID, t.TID)
	}
	if t.Proc.Killed() {
		return &ErrKilled{PID: t.Proc.ID}
	}
	t.inLibrary = true
	return nil
}

// ExitLibrary marks the thread as back in application code.
func (t *Thread) ExitLibrary() { t.inLibrary = false }

// InLibrary reports whether the thread is inside a protected-library call.
func (t *Thread) InLibrary() bool { return t.inLibrary }

// CheckAlive is a cancellation point for application (non-library) code.
// It panics with *ErrKilled if the process has been killed, unless the
// thread is inside a library call — those run to completion.
func (t *Thread) CheckAlive() {
	if !t.inLibrary && t.Proc.Killed() {
		panic(&ErrKilled{PID: t.Proc.ID})
	}
}

// LockOwner returns the token this thread uses for heap-resident locks:
// nonzero and unique across (process, thread) pairs.
func (t *Thread) LockOwner() uint64 {
	return uint64(t.Proc.ID)<<20 | uint64(t.TID) + 1
}
