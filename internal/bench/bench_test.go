package bench

import (
	"testing"
	"time"

	"plibmc/internal/ycsb"
)

func TestFixturesAllKinds(t *testing.T) {
	for _, kind := range []Kind{Baseline, PlibHodor, PlibNoHodor} {
		t.Run(kind.String(), func(t *testing.T) {
			f, err := NewFixture(kind, Options{TempDir: t.TempDir(), HeapBytes: 16 << 20, HashPower: 10})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			th, err := f.NewThread()
			if err != nil {
				t.Fatal(err)
			}
			defer th.Close()
			if err := th.Set([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			if err := th.Get([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if err := th.Set([]byte("n"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			if err := th.Incr([]byte("n"), 1); err != nil {
				t.Fatal(err)
			}
			if err := th.Delete([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if err := th.Get([]byte("k")); err == nil || !isMiss(err) {
				t.Fatalf("expected miss, got %v", err)
			}
		})
	}
}

func TestOpLatencyAllOps(t *testing.T) {
	f, err := NewFixture(PlibHodor, Options{TempDir: t.TempDir(), HeapBytes: 16 << 20, HashPower: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, op := range []Op{OpGet, OpSet, OpDelete, OpIncr} {
		h, err := OpLatency(f, op, 128, 100, 500)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if h.Count() < 400 {
			t.Fatalf("%v recorded only %d samples", op, h.Count())
		}
		if h.Mean() <= 0 || h.Mean() > 100*time.Millisecond {
			t.Fatalf("%v mean latency %v implausible", op, h.Mean())
		}
	}
}

func TestThroughputRuns(t *testing.T) {
	f, err := NewFixture(PlibNoHodor, Options{TempDir: t.TempDir(), HeapBytes: 32 << 20, HashPower: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := ycsb.WriteHeavy128(1000)
	if err := Preload(f, w); err != nil {
		t.Fatal(err)
	}
	ktps, err := Throughput(f, w, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ktps <= 0 {
		t.Fatalf("throughput = %f", ktps)
	}
}

func TestThroughputBaseline(t *testing.T) {
	f, err := NewFixture(Baseline, Options{TempDir: t.TempDir(), ServerThreads: 2, HeapBytes: 32 << 20, HashPower: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := ycsb.ReadHeavy128(500)
	if err := Preload(f, w); err != nil {
		t.Fatal(err)
	}
	ktps, err := Throughput(f, w, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ktps <= 0 {
		t.Fatalf("throughput = %f", ktps)
	}
}

func TestEmptyCallMicrobenches(t *testing.T) {
	h, err := EmptyHodorCall(10000)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() == 0 || h.Mean() > 10*time.Microsecond {
		t.Fatalf("hodor empty call: %v", h)
	}
	u, err := UDSRoundTrip(t.TempDir(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if u.Count() != 500 || u.Mean() <= 0 {
		t.Fatalf("uds roundtrip: %v", u)
	}
	// The paper's two-orders-of-magnitude gap: assert at least one order
	// to be robust on shared CI hardware.
	if u.Mean() < 5*h.Mean() {
		t.Fatalf("UDS (%v) should be far slower than an empty Hodor call (%v)", u.Mean(), h.Mean())
	}
	t.Logf("empty hodor call %v; UDS datagram RTT %v (%.0fx)", h.Mean(), u.Mean(), float64(u.Mean())/float64(h.Mean()))
}

func TestKindString(t *testing.T) {
	if Baseline.String() == "" || PlibHodor.String() == "" || PlibNoHodor.String() == "" || Kind(9).String() != "unknown" {
		t.Fatal("Kind names")
	}
	for _, op := range []Op{OpGet, OpSet, OpDelete, OpIncr} {
		if op.String() == "" {
			t.Fatal("op name")
		}
	}
}
