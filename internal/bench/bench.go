// Package bench is the harness that regenerates the paper's evaluation
// (§4): per-operation latency (Figure 5), throughput-vs-threads curves for
// the four YCSB workloads (Figures 6–9), and the empty-call microbenchmarks
// of §2. It builds the three compared systems — original memcached over
// Unix-domain sockets with a fixed number of server threads, the protected
// library with Hodor trampolines, and the protected library without
// protection — behind one per-thread interface so the measurement loops
// are identical.
package bench

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/client"
	"plibmc/internal/core"
	"plibmc/internal/histogram"
	"plibmc/internal/hodor"
	"plibmc/internal/server"
	"plibmc/internal/ycsb"
	"plibmc/memcached"
)

// Kind selects one of the compared systems.
type Kind int

// The systems of Figures 5–9.
const (
	Baseline Kind = iota // original memcached over Unix-domain sockets
	PlibHodor
	PlibNoHodor
)

func (k Kind) String() string {
	switch k {
	case Baseline:
		return "memcached"
	case PlibHodor:
		return "plib+hodor"
	case PlibNoHodor:
		return "plib-nohodor"
	}
	return "unknown"
}

// ThreadKV is one benchmark thread's handle on a system under test.
type ThreadKV interface {
	Get(key []byte) error
	Set(key, value []byte) error
	Delete(key []byte) error
	Incr(key []byte, delta uint64) error
	Close()
}

// Fixture is a running system under test.
type Fixture struct {
	Kind Kind
	// NewThread creates a per-thread handle (a socket connection or a
	// library session).
	NewThread func() (ThreadKV, error)
	// CoreStats reads the store's scattered counters — nil for the socket
	// baseline, whose stats live behind the protocol. The harness uses it
	// to report how many reads took the lock-free seqlock path.
	CoreStats func() core.Stats
	// LibMetrics reads the trampoline accounting — nil for the socket
	// baseline, all-zero for plib without Hodor (no gate, no crossings).
	// The harness uses it to report crossings per operation.
	LibMetrics func() hodor.Metrics
	// Close tears the system down.
	Close func()
}

// Options sizes a fixture.
type Options struct {
	// ServerThreads is the baseline's worker count (4 or 8 in the paper).
	ServerThreads int
	// HeapBytes for the plib store / MemLimit for the baseline.
	HeapBytes uint64
	// HashPower of the store's table (fixed size, as the paper ran).
	HashPower uint
	// TempDir hosts the Unix socket.
	TempDir string
}

func (o *Options) fill() {
	if o.ServerThreads == 0 {
		o.ServerThreads = 4
	}
	if o.HeapBytes == 0 {
		o.HeapBytes = 256 << 20
	}
	if o.HashPower == 0 {
		o.HashPower = 15
	}
	if o.TempDir == "" {
		o.TempDir = "/tmp"
	}
}

// NewFixture builds and starts a system under test.
func NewFixture(kind Kind, opts Options) (*Fixture, error) {
	opts.fill()
	switch kind {
	case Baseline:
		sock := filepath.Join(opts.TempDir, fmt.Sprintf("mc-bench-%d.sock", time.Now().UnixNano()))
		srv, err := server.New(server.Config{
			Network: "unix", Addr: sock, Threads: opts.ServerThreads,
			MemLimit: int64(opts.HeapBytes), HashPower: opts.HashPower,
		})
		if err != nil {
			return nil, err
		}
		go srv.Serve()
		return &Fixture{
			Kind: kind,
			NewThread: func() (ThreadKV, error) {
				c, err := client.Dial("unix", sock, client.Binary)
				if err != nil {
					return nil, err
				}
				return &sockKV{c}, nil
			},
			Close: srv.Close,
		}, nil
	case PlibHodor, PlibNoHodor:
		b, err := memcached.CreateStore(memcached.Config{
			HeapBytes: opts.HeapBytes, HashPower: opts.HashPower,
			FixedSize: true, NumItemLocks: 1024,
		})
		if err != nil {
			return nil, err
		}
		// One client process per benchmark thread, as in the paper's
		// setup: clients are independent processes, each mapping the
		// heap at its own base, each running the Hodor loader.
		var mu sync.Mutex
		nextUID := 1000
		return &Fixture{
			Kind: kind,
			NewThread: func() (ThreadKV, error) {
				mu.Lock()
				uid := nextUID
				nextUID++
				mu.Unlock()
				cp, err := b.NewClientProcess(uid)
				if err != nil {
					return nil, err
				}
				var s *memcached.Session
				if kind == PlibHodor {
					s, err = cp.NewSession()
				} else {
					s, err = cp.NewSessionNoHodor()
				}
				if err != nil {
					return nil, err
				}
				return &plibKV{s}, nil
			},
			CoreStats: b.Stats,
			LibMetrics: func() hodor.Metrics {
				if kind != PlibHodor {
					return hodor.Metrics{}
				}
				return b.Library().Metrics()
			},
			Close: func() { b.StopMaintenance() },
		}, nil
	}
	return nil, fmt.Errorf("bench: unknown kind %d", kind)
}

type sockKV struct{ c *client.Client }

func (s *sockKV) Get(key []byte) error {
	_, _, _, err := s.c.Get(key)
	return err
}
func (s *sockKV) Set(key, value []byte) error { return s.c.Set(key, value, 0, 0) }
func (s *sockKV) Delete(key []byte) error     { return s.c.Delete(key) }
func (s *sockKV) Incr(key []byte, d uint64) error {
	_, err := s.c.Increment(key, d)
	return err
}
func (s *sockKV) Close() { s.c.Close() }

type plibKV struct{ s *memcached.Session }

func (p *plibKV) Get(key []byte) error {
	_, _, err := p.s.Get(key)
	return err
}
func (p *plibKV) Set(key, value []byte) error { return p.s.Set(key, value, 0, 0) }
func (p *plibKV) Delete(key []byte) error     { return p.s.Delete(key) }
func (p *plibKV) Incr(key []byte, d uint64) error {
	_, err := p.s.Increment(key, d)
	return err
}
func (p *plibKV) Close() { p.s.Close() }

// Preload stores the workload's record set through one thread handle.
func Preload(f *Fixture, w ycsb.Workload) error {
	t, err := f.NewThread()
	if err != nil {
		return err
	}
	defer t.Close()
	val := make([]byte, w.ValueSize)
	key := make([]byte, 0, 20)
	for i := uint64(0); i < w.RecordCount; i++ {
		key = ycsb.KeyInto(key, i)
		ycsb.FillValue(val, i)
		if err := t.Set(key, val); err != nil {
			return fmt.Errorf("preload record %d: %w", i, err)
		}
	}
	return nil
}

// Op names the Figure 5 operations.
type Op int

// Figure 5 rows.
const (
	OpGet Op = iota
	OpSet
	OpDelete
	OpIncr
)

func (o Op) String() string {
	return [...]string{"Get", "Set", "Delete", "Increment"}[o]
}

// OpLatency measures single-thread per-operation latency (Figure 5's
// methodology: "latency is reported … for operations in a single thread").
// The store is preloaded with `records` items of the given value size.
func OpLatency(f *Fixture, op Op, valueSize int, records uint64, samples int) (*histogram.H, error) {
	w := ycsb.Workload{RecordCount: records, ValueSize: valueSize, ReadProportion: 1}
	if err := Preload(f, w); err != nil {
		return nil, err
	}
	t, err := f.NewThread()
	if err != nil {
		return nil, err
	}
	defer t.Close()

	// Delete consumes keys; Incr needs numeric values. Prepare.
	key := make([]byte, 0, 20)
	if op == OpIncr {
		if err := t.Set([]byte("counter"), []byte("100000")); err != nil {
			return nil, err
		}
	}
	val := make([]byte, valueSize)
	h := histogram.New()
	for i := 0; i < samples; i++ {
		idx := uint64(i) % records
		key = ycsb.KeyInto(key, idx)
		var start time.Time
		var err error
		switch op {
		case OpGet:
			start = time.Now()
			err = t.Get(key)
		case OpSet:
			ycsb.FillValue(val, idx)
			start = time.Now()
			err = t.Set(key, val)
		case OpDelete:
			// Delete then silently restore so every sample deletes a
			// present key.
			start = time.Now()
			err = t.Delete(key)
			if err == nil {
				h.Record(time.Since(start))
				err = t.Set(key, val)
				if err != nil {
					return nil, err
				}
				continue
			}
		case OpIncr:
			start = time.Now()
			err = t.Incr([]byte("counter"), 1)
		}
		if err != nil {
			return nil, fmt.Errorf("%v sample %d: %w", op, i, err)
		}
		h.Record(time.Since(start))
	}
	return h, nil
}

// Throughput runs the YCSB mix on `threads` concurrent client threads for
// the given duration and returns the rate in thousands of transactions per
// second (KTPS), the unit of Figures 6–9. The fixture must already be
// preloaded.
func Throughput(f *Fixture, w ycsb.Workload, threads int, dur time.Duration) (float64, error) {
	var stop atomic.Bool
	var ops atomic.Int64
	errCh := make(chan error, threads)
	var wg sync.WaitGroup
	var ready sync.WaitGroup
	startCh := make(chan struct{})
	for i := 0; i < threads; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(seed int64) {
			defer wg.Done()
			t, err := f.NewThread()
			if err != nil {
				ready.Done()
				errCh <- err
				return
			}
			defer t.Close()
			gen := w.NewClient(seed)
			ready.Done()
			<-startCh
			local := int64(0)
			for !stop.Load() {
				kind, key, val := gen.Next()
				if kind == ycsb.OpRead {
					// A miss is a valid YCSB outcome (evicted record);
					// only transport/store failures abort the run.
					if err := t.Get(key); err != nil && !isMiss(err) {
						errCh <- err
						return
					}
				} else {
					if err := t.Set(key, val); err != nil {
						errCh <- err
						return
					}
				}
				local++
			}
			ops.Add(local)
		}(int64(i + 1))
	}
	ready.Wait()
	close(startCh)
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(ops.Load()) / dur.Seconds() / 1000, nil
}
