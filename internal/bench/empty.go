package bench

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"plibmc/internal/histogram"
	"plibmc/internal/hodor"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/shm"
	"plibmc/memcached"
)

// isMiss reports whether err is a key-not-found outcome rather than a
// failure of the system under test.
func isMiss(err error) bool {
	if errors.Is(err, memcached.ErrNotFound) {
		return true
	}
	// The socket client renders statuses as text.
	return err != nil && (err.Error() == "memcached: NOT_FOUND")
}

// The §2 microbenchmarks: "an empty call into a Hodor library takes about
// 40 ns … about two orders of magnitude faster than an empty messaging
// round trip on Unix domain sockets" (3.3–9.6 µs on the paper's machine).

// EmptyHodorCall measures the round-trip latency of a no-op trampolined
// library call.
func EmptyHodorCall(samples int) (*histogram.H, error) {
	heap := shm.New(shm.PageSize)
	pt := pku.NewPageTable(heap)
	dom, err := hodor.NewDomain(heap, pt)
	if err != nil {
		return nil, err
	}
	lib := hodor.NewLibrary("libnoop", 0, dom)
	p, err := proc.NewProcess(0, heap, 0x10000)
	if err != nil {
		return nil, err
	}
	res, err := (hodor.Loader{}).Load(p, hodor.Binary{}, lib)
	if err != nil {
		return nil, err
	}
	s, err := res.Attach(p.NewThread(), lib)
	if err != nil {
		return nil, err
	}
	noop := func(*proc.Thread, struct{}) (struct{}, error) { return struct{}{}, nil }
	h := histogram.New()
	// Batch 100 calls per timestamp so clock overhead (~30 ns) does not
	// dominate a ~100 ns operation.
	const batch = 100
	for i := 0; i < samples/batch; i++ {
		start := time.Now()
		for j := 0; j < batch; j++ {
			if _, err := hodor.Call(s, noop, struct{}{}); err != nil {
				return nil, err
			}
		}
		h.Record(time.Since(start) / batch)
	}
	return h, nil
}

// UDSRoundTrip measures the round-trip latency of a one-byte datagram echo
// over Unix-domain sockets, the baseline cost of asking a separate process
// for anything at all.
func UDSRoundTrip(tempDir string, samples int) (*histogram.H, error) {
	srvPath := filepath.Join(tempDir, fmt.Sprintf("echo-srv-%d.sock", os.Getpid()))
	cliPath := filepath.Join(tempDir, fmt.Sprintf("echo-cli-%d.sock", os.Getpid()))
	os.Remove(srvPath)
	os.Remove(cliPath)
	defer os.Remove(srvPath)
	defer os.Remove(cliPath)

	srvAddr := &net.UnixAddr{Name: srvPath, Net: "unixgram"}
	cliAddr := &net.UnixAddr{Name: cliPath, Net: "unixgram"}
	srv, err := net.ListenUnixgram("unixgram", srvAddr)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	go func() {
		buf := make([]byte, 1)
		for {
			n, from, err := srv.ReadFromUnix(buf)
			if err != nil {
				return
			}
			srv.WriteToUnix(buf[:n], from)
		}
	}()

	cli, err := net.ListenUnixgram("unixgram", cliAddr)
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	h := histogram.New()
	msg := []byte{42}
	buf := make([]byte, 1)
	for i := 0; i < samples; i++ {
		start := time.Now()
		if _, err := cli.WriteToUnix(msg, srvAddr); err != nil {
			return nil, err
		}
		if _, _, err := cli.ReadFromUnix(buf); err != nil {
			return nil, err
		}
		h.Record(time.Since(start))
	}
	return h, nil
}
