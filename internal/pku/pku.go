// Package pku simulates Intel's Protection Keys for Userspace (PKU/MPK),
// the hardware mechanism underneath Hodor's preferred protected-library
// implementation.
//
// Real PKU harvests four previously unused bits in each page-table entry to
// tag the page with one of 16 keys, and adds a 32-bit pkru register —
// writable in user space with the unprivileged wrpkru instruction — holding
// two bits per key: AD (access disable) and WD (write disable).
//
// Go's runtime multiplexes goroutines across OS threads, so a real pkru
// register cannot be pinned to a logical thread of our simulated processes
// (this is the scheduler/MPK conflict called out for this reproduction).
// Instead we model the page-key assignment as a software page table over the
// shared heap and the pkru register as a field of each simulated thread, and
// we check the (key, pkru) access matrix on every guarded heap access. The
// policy — who may touch which page when — is exactly PKU's; only the
// enforcement point moves from the MMU into the access path.
package pku

import (
	"fmt"
	"sync"

	"plibmc/internal/shm"
)

// NumKeys is the number of protection keys PKU provides.
const NumKeys = 16

// Key identifies one of the 16 protection keys.
type Key uint8

// KeyDefault is key 0, which tags all pages not explicitly assigned another
// key. Conventionally its PKRU bits are left permissive.
const KeyDefault Key = 0

// PKRU models the 32-bit pkru register: two bits per key,
// bit 2k = AD (access disable), bit 2k+1 = WD (write disable).
type PKRU uint32

// AllRestricted is a PKRU value that denies access to every non-default key,
// the state Hodor's init routine installs before main runs.
func AllRestricted() PKRU {
	var p PKRU
	for k := Key(1); k < NumKeys; k++ {
		p = p.WithAccessDisabled(k)
	}
	return p
}

// CanRead reports whether the register permits reads of pages tagged k.
func (p PKRU) CanRead(k Key) bool { return p&(1<<(2*k)) == 0 }

// CanWrite reports whether the register permits writes to pages tagged k.
func (p PKRU) CanWrite(k Key) bool {
	return p&(1<<(2*k)) == 0 && p&(1<<(2*k+1)) == 0
}

// WithAccessDisabled returns p with all access to key k denied: (AD=1).
func (p PKRU) WithAccessDisabled(k Key) PKRU { return p | 1<<(2*k) }

// WithWriteDisabled returns p with writes to key k denied: (AD=0, WD=1).
func (p PKRU) WithWriteDisabled(k Key) PKRU {
	return (p &^ (1 << (2 * k))) | 1<<(2*k+1)
}

// WithAccess returns p with full access to key k granted: (0,0).
func (p PKRU) WithAccess(k Key) PKRU { return p &^ (3 << (2 * k)) }

// String renders the register as one (AD,WD) pair per non-permissive key.
func (p PKRU) String() string {
	s := "pkru{"
	first := true
	for k := Key(0); k < NumKeys; k++ {
		ad, wd := !p.CanRead(k), p.CanRead(k) && !p.CanWrite(k)
		if !ad && !wd {
			continue
		}
		if !first {
			s += " "
		}
		first = false
		switch {
		case ad:
			s += fmt.Sprintf("k%d:AD", k)
		case wd:
			s += fmt.Sprintf("k%d:WD", k)
		}
	}
	return s + "}"
}

// PageTable assigns a protection key to each page of a heap, playing the
// role of the harvested PTE bits. One PageTable exists per heap, shared by
// all processes, because in the paper every process maps the same file with
// the same page-key tags (the kernel sets them up at mmap time).
type PageTable struct {
	mu    sync.RWMutex
	pkeys []Key
	inUse [NumKeys]bool // pkey_alloc bookkeeping
}

// NewPageTable creates a page table covering the given heap, with every page
// tagged KeyDefault and key 0 pre-allocated (as on Linux).
func NewPageTable(h *shm.Heap) *PageTable {
	pt := &PageTable{pkeys: make([]Key, h.Pages())}
	pt.inUse[KeyDefault] = true
	return pt
}

// Alloc allocates an unused protection key, the analog of pkey_alloc(2).
func (pt *PageTable) Alloc() (Key, error) {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	for k := Key(1); k < NumKeys; k++ {
		if !pt.inUse[k] {
			pt.inUse[k] = true
			return k, nil
		}
	}
	return 0, fmt.Errorf("pku: no free protection keys (all %d in use)", NumKeys)
}

// Free releases a key previously returned by Alloc, the analog of
// pkey_free(2). Pages still tagged with the key revert to KeyDefault.
func (pt *PageTable) Free(k Key) error {
	if k == KeyDefault {
		return fmt.Errorf("pku: cannot free the default key")
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if !pt.inUse[k] {
		return fmt.Errorf("pku: key %d is not allocated", k)
	}
	pt.inUse[k] = false
	for i, pk := range pt.pkeys {
		if pk == k {
			pt.pkeys[i] = KeyDefault
		}
	}
	return nil
}

// Assign tags every page overlapping [off, off+n) with key k, the analog of
// pkey_mprotect(2). off and n need not be page-aligned; protection is
// page-granular, exactly as in hardware.
func (pt *PageTable) Assign(off, n uint64, k Key) error {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if !pt.inUse[k] {
		return fmt.Errorf("pku: assigning unallocated key %d", k)
	}
	if n == 0 {
		return nil
	}
	first := off / shm.PageSize
	last := (off + n - 1) / shm.PageSize
	if last >= uint64(len(pt.pkeys)) {
		return fmt.Errorf("pku: assign range [%#x,+%d) beyond heap", off, n)
	}
	for p := first; p <= last; p++ {
		pt.pkeys[p] = k
	}
	return nil
}

// KeyAt returns the protection key tagging the page containing off.
func (pt *PageTable) KeyAt(off uint64) Key {
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	p := off / shm.PageSize
	if p >= uint64(len(pt.pkeys)) {
		return KeyDefault
	}
	return pt.pkeys[p]
}

// check validates an access of n bytes at off under register p. It returns
// nil if permitted and a *ProtFault otherwise. The slow path (consulting the
// table) is per page, as in hardware TLB fills.
func (pt *PageTable) check(p PKRU, off, n uint64, write bool) error {
	if n == 0 {
		return nil
	}
	pt.mu.RLock()
	defer pt.mu.RUnlock()
	first := off / shm.PageSize
	last := (off + n - 1) / shm.PageSize
	for pg := first; pg <= last && pg < uint64(len(pt.pkeys)); pg++ {
		k := pt.pkeys[pg]
		if write && !p.CanWrite(k) || !write && !p.CanRead(k) {
			return &ProtFault{Off: off, Len: n, Write: write, Key: k, PKRU: p}
		}
	}
	return nil
}

// A ProtFault is the protection-key violation signal: the analog of the
// SIGSEGV with si_code SEGV_PKUERR that hardware raises when the pkru
// register denies an access.
type ProtFault struct {
	Off   uint64
	Len   uint64
	Write bool
	Key   Key
	PKRU  PKRU
}

// ContainedAttack marks a ProtFault as a *contained* violation for the gate
// hardening layer: the denial itself is the proof that no data moved. The
// hodor trampoline checks for this marker interface when a call unwinds so
// containment can be counted separately from genuine crashes.
func (f *ProtFault) ContainedAttack() {}

func (f *ProtFault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("pku: protection fault: %s of %d bytes at %#x denied by %v for key %d (SEGV_PKUERR)",
		kind, f.Len, f.Off, f.PKRU, f.Key)
}
