package pku

import "plibmc/internal/shm"

// Guard is the checked access path to a protected heap: every operation
// verifies the caller's pkru register against the page table before touching
// memory, which is what the MMU does for free on PKU hardware.
//
// Code running inside a Hodor library call (whose register has been amplified
// by the trampoline) uses the raw shm.Heap API on the hot path — hardware
// would impose no per-access cost there either. Application code outside the
// library, and every test that demonstrates enforcement, goes through Guard.
type Guard struct {
	H  *shm.Heap
	PT *PageTable
}

// NewGuard creates a guard over the heap with the given page table.
func NewGuard(h *shm.Heap, pt *PageTable) *Guard {
	return &Guard{H: h, PT: pt}
}

// Load64 performs a checked word load.
func (g *Guard) Load64(p PKRU, off uint64) (uint64, error) {
	if err := g.PT.check(p, off, shm.WordSize, false); err != nil {
		return 0, err
	}
	return g.H.Load64(off), nil
}

// Store64 performs a checked word store.
func (g *Guard) Store64(p PKRU, off uint64, v uint64) error {
	if err := g.PT.check(p, off, shm.WordSize, true); err != nil {
		return err
	}
	g.H.Store64(off, v)
	return nil
}

// ReadBytes performs a checked byte-range read.
func (g *Guard) ReadBytes(p PKRU, off uint64, dst []byte) error {
	if err := g.PT.check(p, off, uint64(len(dst)), false); err != nil {
		return err
	}
	g.H.ReadBytes(off, dst)
	return nil
}

// WriteBytes performs a checked byte-range write.
func (g *Guard) WriteBytes(p PKRU, off uint64, src []byte) error {
	if err := g.PT.check(p, off, uint64(len(src)), true); err != nil {
		return err
	}
	g.H.WriteBytes(off, src)
	return nil
}

// Check exposes the access-matrix test itself, for callers that want to
// validate a range before performing a series of raw accesses (the analog
// of a single TLB-resident permission covering a hot loop).
func (g *Guard) Check(p PKRU, off, n uint64, write bool) error {
	return g.PT.check(p, off, n, write)
}
