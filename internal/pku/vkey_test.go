package pku

import (
	"errors"
	"testing"

	"plibmc/internal/shm"
)

func vtFixture(t *testing.T, pages uint64) (*shm.Heap, *PageTable, *VTable) {
	t.Helper()
	h := shm.New(pages * shm.PageSize)
	pt := NewPageTable(h)
	vt, err := NewVTable(pt)
	if err != nil {
		t.Fatal(err)
	}
	return h, pt, vt
}

// Twenty-four virtual keys on a 16-key page table: every domain must remain
// reachable through Bind, evictions must occur, and an evicted domain's
// pages must be fence-tagged (denied to everyone).
func TestVTableOvercommit(t *testing.T) {
	const domains = 24
	_, pt, vt := vtFixture(t, domains)
	vkeys := make([]VKey, domains)
	for i := range vkeys {
		vkeys[i] = vt.AllocVirtual()
		if err := vt.AssignVirtual(vkeys[i], uint64(i)*shm.PageSize, shm.PageSize); err != nil {
			t.Fatal(err)
		}
		// Unmapped: the page must start on the fence key.
		if k := pt.KeyAt(uint64(i) * shm.PageSize); k != vt.Fence() {
			t.Fatalf("domain %d unmapped page tagged %d, want fence %d", i, k, vt.Fence())
		}
	}
	// Touch every domain once; with only 14 bindable hardware keys
	// (16 - default - fence) this must evict.
	for i, v := range vkeys {
		hw, err := vt.Bind(v)
		if err != nil {
			t.Fatalf("bind domain %d: %v", i, err)
		}
		if hw == KeyDefault || hw == vt.Fence() {
			t.Fatalf("domain %d bound to reserved key %d", i, hw)
		}
		if k := pt.KeyAt(uint64(i) * shm.PageSize); k != hw {
			t.Fatalf("domain %d page tagged %d after bind, want %d", i, k, hw)
		}
		vt.Unbind(v)
	}
	if vt.Evictions() == 0 {
		t.Fatal("24 domains over 14 hardware keys bound without a single eviction")
	}
	// The LRU victim of the sweep above is an early domain: its page must
	// be back on the fence key, not readable through a recycled mapping.
	evicted := -1
	for i, v := range vkeys {
		if _, ok := vt.Mapped(v); !ok {
			evicted = i
			break
		}
	}
	if evicted < 0 {
		t.Fatal("no domain is unmapped after overcommit")
	}
	if k := pt.KeyAt(uint64(evicted) * shm.PageSize); k != vt.Fence() {
		t.Fatalf("evicted domain %d page tagged %d, want fence %d", evicted, k, vt.Fence())
	}
	// A fence-tagged page is denied even to a register with every real key:
	// the fence key is granted to no one.
	p := AllRestricted()
	for k := Key(1); k < NumKeys; k++ {
		if k != vt.Fence() {
			p = p.WithAccess(k)
		}
	}
	if err := pt.check(p, uint64(evicted)*shm.PageSize, 8, false); err == nil {
		t.Fatal("read of evicted domain's page did not fault")
	} else {
		var pf *ProtFault
		if !errors.As(err, &pf) {
			t.Fatalf("want ProtFault, got %v", err)
		}
	}
}

// A pinned mapping must never be recycled, even under key pressure.
func TestVTablePinBlocksEviction(t *testing.T) {
	const domains = 20
	_, _, vt := vtFixture(t, domains)
	vkeys := make([]VKey, domains)
	for i := range vkeys {
		vkeys[i] = vt.AllocVirtual()
		if err := vt.AssignVirtual(vkeys[i], uint64(i)*shm.PageSize, shm.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	// Pin the first 14 (all bindable hardware keys).
	for _, v := range vkeys[:14] {
		if _, err := vt.Bind(v); err != nil {
			t.Fatal(err)
		}
	}
	// Every hardware key is pinned: binding a 15th must fail, not evict.
	if _, err := vt.Bind(vkeys[14]); err == nil {
		t.Fatal("bind succeeded with every hardware key pinned")
	}
	// Unpin one; now the bind must succeed by evicting it.
	vt.Unbind(vkeys[0])
	if _, err := vt.Bind(vkeys[14]); err != nil {
		t.Fatalf("bind after unpin: %v", err)
	}
	if _, ok := vt.Mapped(vkeys[0]); ok {
		t.Fatal("unpinned LRU mapping survived eviction pressure")
	}
	if vt.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", vt.Evictions())
	}
}

// The generation counter moves only on remaps, so warm rebinds cost no
// lazy PKRU syncs.
func TestVTableGenerationStableWhenWarm(t *testing.T) {
	_, _, vt := vtFixture(t, 4)
	v := vt.AllocVirtual()
	if err := vt.AssignVirtual(v, 0, shm.PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := vt.Bind(v); err != nil {
		t.Fatal(err)
	}
	vt.Unbind(v)
	g := vt.Gen()
	for i := 0; i < 100; i++ {
		if _, err := vt.Bind(v); err != nil {
			t.Fatal(err)
		}
		vt.Unbind(v)
	}
	if vt.Gen() != g {
		t.Fatalf("generation moved %d -> %d across warm rebinds", g, vt.Gen())
	}
}
