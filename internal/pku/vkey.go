package pku

// Protection-key virtualization, after libmpk (Park et al., USENIX ATC '19;
// see PAPERS.md): hardware provides only 16 protection keys, so a process
// that wants more protection domains than keys must multiplex them. A
// VTable hands out an unbounded supply of *virtual* keys and maps the ones
// in active use onto hardware keys on demand, evicting the least recently
// used unpinned mapping when the hardware runs dry.
//
// Two libmpk ideas carry over into this simulation:
//
//   - Eviction re-tags the victim's pages with a reserved *fence* key that
//     no thread is ever granted, so an access through a stale mapping
//     faults (ProtFault) instead of silently reading another domain's
//     pages through the recycled hardware key. A mapping is pinned while
//     any call into its domain is in flight, so a key can never be
//     recycled out from under an amplified thread.
//
//   - PKRU synchronization is lazy. Remapping a hardware key changes what
//     every thread's pkru register *means*, but instead of rewriting all
//     registers eagerly (a wrpkru storm proportional to threads × remaps),
//     each thread carries the table generation it last synchronized
//     against and scrubs its register only when it next crosses into a
//     virtualized domain and finds its generation stale. The Syncs counter
//     exists so tests can assert syncs ≪ domains × calls.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrAllKeysPinned is returned by Bind when no hardware key is free and every
// current mapping is pinned by an in-flight call. It is a transient overload
// condition, not a fault: callers should surface it as retryable backpressure
// (a later Bind succeeds as soon as any in-flight call retires and releases
// its pin).
var ErrAllKeysPinned = errors.New("pku: no hardware key available and every mapping is pinned")

// VKey is a virtual protection key: an unbounded analog of Key, valid only
// within the VTable that allocated it. Zero is never a valid VKey.
type VKey uint16

type vrange struct{ off, n uint64 }

// vkeyState is one virtual key's mapping record.
type vkeyState struct {
	hw      Key // hardware key currently backing it; 0 = unmapped
	pins    int // in-flight calls holding the mapping (never evict while >0)
	lastUse uint64
	ranges  []vrange // page ranges tagged with this virtual key
}

// VTable multiplexes virtual keys onto the page table's hardware keys.
// All methods are safe for concurrent use.
type VTable struct {
	mu     sync.Mutex
	pt     *PageTable
	fence  Key // reserved hardware key backing every unmapped virtual key
	states map[VKey]*vkeyState
	nextV  VKey
	// free holds hardware keys owned by the table and not currently
	// backing any virtual key (only ever non-empty before first eviction).
	free  []Key
	clock uint64

	gen       atomic.Uint64 // bumped on every remap; drives lazy PKRU sync
	syncs     atomic.Uint64
	evictions atomic.Uint64
}

// NewVTable creates a virtual-key table over pt, reserving one hardware key
// as the fence that backs unmapped virtual keys.
func NewVTable(pt *PageTable) (*VTable, error) {
	fence, err := pt.Alloc()
	if err != nil {
		return nil, fmt.Errorf("pku: vtable fence key: %w", err)
	}
	return &VTable{pt: pt, fence: fence, states: make(map[VKey]*vkeyState)}, nil
}

// Fence returns the reserved fence key (granted to no thread, ever).
func (vt *VTable) Fence() Key { return vt.fence }

// AllocVirtual hands out a fresh virtual key. Unlike PageTable.Alloc it
// cannot run out.
func (vt *VTable) AllocVirtual() VKey {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.nextV++
	vt.states[vt.nextV] = &vkeyState{}
	return vt.nextV
}

func (vt *VTable) state(v VKey) *vkeyState {
	st := vt.states[v]
	if st == nil {
		panic(fmt.Sprintf("pku: unknown virtual key %d", v))
	}
	return st
}

// AssignVirtual tags [off, off+n) with virtual key v: pages are re-tagged
// with v's current hardware key if mapped, or with the fence key if not,
// and the range is remembered so later mappings and evictions can re-tag.
func (vt *VTable) AssignVirtual(v VKey, off, n uint64) error {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	st := vt.state(v)
	st.ranges = append(st.ranges, vrange{off, n})
	k := vt.fence
	if st.hw != 0 {
		k = st.hw
	}
	return vt.pt.Assign(off, n, k)
}

// Bind maps v onto a hardware key (evicting the least recently used
// unpinned mapping if none is free) and pins the mapping for the duration
// of a call. Every Bind must be paired with an Unbind.
func (vt *VTable) Bind(v VKey) (Key, error) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	st := vt.state(v)
	vt.clock++
	st.lastUse = vt.clock
	if st.hw == 0 {
		hw, err := vt.mapLocked(st)
		if err != nil {
			return 0, err
		}
		st.hw = hw
	}
	st.pins++
	return st.hw, nil
}

// Unbind releases the pin taken by Bind. The mapping stays in place (warm)
// until eviction needs its hardware key. Unbind of a key that Revoke tore
// down mid-call is a silent no-op: the revocation already dropped the pin
// along with the mapping, and the unwinding caller must not panic again.
func (vt *VTable) Unbind(v VKey) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	st := vt.states[v]
	if st == nil {
		return // revoked while the call was in flight
	}
	if st.pins <= 0 {
		panic(fmt.Sprintf("pku: unbind of unpinned virtual key %d", v))
	}
	st.pins--
}

// mapLocked finds a hardware key for an unmapped virtual key: from the free
// pool, from pkey_alloc, or by evicting the LRU unpinned mapping. The
// caller re-tags nothing; this routine moves the pages of both the victim
// (to the fence) and the incoming key (to the hardware key).
func (vt *VTable) mapLocked(st *vkeyState) (Key, error) {
	var hw Key
	switch {
	case len(vt.free) > 0:
		hw = vt.free[len(vt.free)-1]
		vt.free = vt.free[:len(vt.free)-1]
	default:
		if k, err := vt.pt.Alloc(); err == nil {
			hw = k
		} else {
			victim := vt.lruVictimLocked()
			if victim == nil {
				return 0, ErrAllKeysPinned
			}
			for _, r := range victim.ranges {
				if err := vt.pt.Assign(r.off, r.n, vt.fence); err != nil {
					return 0, err
				}
			}
			hw = victim.hw
			victim.hw = 0
			vt.evictions.Add(1)
		}
	}
	for _, r := range st.ranges {
		if err := vt.pt.Assign(r.off, r.n, hw); err != nil {
			return 0, err
		}
	}
	// Any thread whose pkru predates this remap must scrub before its next
	// crossing: the hardware key's meaning just changed.
	vt.gen.Add(1)
	return hw, nil
}

// lruVictimLocked picks the mapped, unpinned virtual key with the oldest
// last use, or nil when every mapping is pinned.
func (vt *VTable) lruVictimLocked() *vkeyState {
	var victim *vkeyState
	for _, st := range vt.states {
		if st.hw == 0 || st.pins > 0 {
			continue
		}
		if victim == nil || st.lastUse < victim.lastUse {
			victim = st
		}
	}
	return victim
}

// FreeVirtual retires a virtual key: its pages revert to the fence key and
// its hardware key (if mapped) returns to the free pool.
func (vt *VTable) FreeVirtual(v VKey) error {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	st := vt.state(v)
	if st.pins > 0 {
		return fmt.Errorf("pku: freeing pinned virtual key %d", v)
	}
	for _, r := range st.ranges {
		if err := vt.pt.Assign(r.off, r.n, vt.fence); err != nil {
			return err
		}
	}
	if st.hw != 0 {
		vt.free = append(vt.free, st.hw)
		vt.gen.Add(1)
	}
	delete(vt.states, v)
	return nil
}

// Revoke forcibly retires a virtual key, pins notwithstanding: its pages
// revert to the fence key, its hardware key (if mapped) returns to the free
// pool, and the generation advances so every thread scrubs before trusting
// its register again. This is the teardown path for *dead* domain owners —
// a reaped zombie or a killed process may still "hold" a pin it will never
// release, and waiting for it would leak a hardware key forever. Any Unbind
// the zombie's unwind later issues is a no-op (see Unbind). Revoking an
// unknown (already-revoked) key is a no-op.
func (vt *VTable) Revoke(v VKey) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	st := vt.states[v]
	if st == nil {
		return
	}
	for _, r := range st.ranges {
		// Fence assignments cannot fail: the ranges were validated when first
		// assigned and the fence key is permanently allocated.
		vt.pt.Assign(r.off, r.n, vt.fence) //nolint:errcheck
	}
	if st.hw != 0 {
		vt.free = append(vt.free, st.hw)
	}
	delete(vt.states, v)
	vt.gen.Add(1)
}

// GrantsOwnedKey reports whether register p grants read access to any
// hardware key this table owns (the fence, a free-pool key, or a key
// currently backing some mapping). Application code outside a gate crossing
// must never hold such a grant — the trampoline is the only legitimate
// writer of amplified registers and it always restores the saved value on
// exit — so a true result identifies a forged or stale register (Garmr's
// stray-wrpkru attack class) that the gate must scrub rather than trust.
func (vt *VTable) GrantsOwnedKey(p PKRU) bool {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if p.CanRead(vt.fence) {
		return true
	}
	for _, k := range vt.free {
		if p.CanRead(k) {
			return true
		}
	}
	for _, st := range vt.states {
		if st.hw != 0 && p.CanRead(st.hw) {
			return true
		}
	}
	return false
}

// Pins reports the pin count currently held on v (0 for unknown keys).
func (vt *VTable) Pins(v VKey) int {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	if st := vt.states[v]; st != nil {
		return st.pins
	}
	return 0
}

// SetGenForTest forces the mapping generation, so tests can exercise the
// lazy-sync protocol across a counter rollover without 2^64 remaps.
func (vt *VTable) SetGenForTest(g uint64) { vt.gen.Store(g) }

// Gen returns the current mapping generation. A thread whose cached
// generation differs must synchronize its pkru register before relying on
// hardware-key grants (the lazy-sync protocol; see package comment).
func (vt *VTable) Gen() uint64 { return vt.gen.Load() }

// NoteSync records one lazy PKRU synchronization (a thread scrubbing its
// register after observing a stale generation).
func (vt *VTable) NoteSync() { vt.syncs.Add(1) }

// Syncs returns how many lazy PKRU synchronizations threads performed.
func (vt *VTable) Syncs() uint64 { return vt.syncs.Load() }

// Evictions returns how many LRU evictions the table performed.
func (vt *VTable) Evictions() uint64 { return vt.evictions.Load() }

// Mapped reports whether v currently holds a hardware key, and which.
func (vt *VTable) Mapped(v VKey) (Key, bool) {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	st := vt.state(v)
	return st.hw, st.hw != 0
}
