package pku

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"plibmc/internal/shm"
)

func TestPKRUBits(t *testing.T) {
	var p PKRU
	for k := Key(0); k < NumKeys; k++ {
		if !p.CanRead(k) || !p.CanWrite(k) {
			t.Fatalf("zero PKRU should permit everything (key %d)", k)
		}
	}
	p = p.WithAccessDisabled(3)
	if p.CanRead(3) || p.CanWrite(3) {
		t.Fatal("AD should deny both read and write")
	}
	if !p.CanRead(2) || !p.CanWrite(4) {
		t.Fatal("AD on key 3 should not affect neighbors")
	}
	p = p.WithWriteDisabled(3)
	if !p.CanRead(3) || p.CanWrite(3) {
		t.Fatal("WD should permit read, deny write")
	}
	p = p.WithAccess(3)
	if !p.CanRead(3) || !p.CanWrite(3) {
		t.Fatal("WithAccess should clear both bits")
	}
}

func TestAllRestricted(t *testing.T) {
	p := AllRestricted()
	if !p.CanRead(KeyDefault) || !p.CanWrite(KeyDefault) {
		t.Fatal("default key must stay permissive")
	}
	for k := Key(1); k < NumKeys; k++ {
		if p.CanRead(k) || p.CanWrite(k) {
			t.Fatalf("key %d should be fully restricted", k)
		}
	}
}

// Property: for any key and any starting register, the three transitions
// produce exactly the intended access matrix and never perturb other keys.
func TestQuickPKRUTransitions(t *testing.T) {
	f := func(start uint32, kRaw uint8) bool {
		p := PKRU(start)
		k := Key(kRaw % NumKeys)
		for other := Key(0); other < NumKeys; other++ {
			if other == k {
				continue
			}
			before := [2]bool{p.CanRead(other), p.CanWrite(other)}
			for _, q := range []PKRU{p.WithAccess(k), p.WithAccessDisabled(k), p.WithWriteDisabled(k)} {
				if q.CanRead(other) != before[0] || q.CanWrite(other) != before[1] {
					return false
				}
			}
		}
		return p.WithAccess(k).CanWrite(k) &&
			!p.WithAccessDisabled(k).CanRead(k) &&
			p.WithWriteDisabled(k).CanRead(k) &&
			!p.WithWriteDisabled(k).CanWrite(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPKRUString(t *testing.T) {
	p := PKRU(0).WithAccessDisabled(1).WithWriteDisabled(2)
	s := p.String()
	if !strings.Contains(s, "k1:AD") || !strings.Contains(s, "k2:WD") {
		t.Fatalf("String() = %q", s)
	}
}

func TestKeyAllocFree(t *testing.T) {
	h := shm.New(4 * shm.PageSize)
	pt := NewPageTable(h)
	seen := map[Key]bool{}
	for i := 0; i < NumKeys-1; i++ {
		k, err := pt.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if k == KeyDefault || seen[k] {
			t.Fatalf("alloc returned %d (default or duplicate)", k)
		}
		seen[k] = true
	}
	if _, err := pt.Alloc(); err == nil {
		t.Fatal("alloc should fail when keys exhausted")
	}
	if err := pt.Free(5); err != nil {
		t.Fatal(err)
	}
	if err := pt.Free(5); err == nil {
		t.Fatal("double free should fail")
	}
	if err := pt.Free(KeyDefault); err == nil {
		t.Fatal("freeing the default key should fail")
	}
	k, err := pt.Alloc()
	if err != nil || k != 5 {
		t.Fatalf("realloc after free = %d, %v", k, err)
	}
}

func TestAssignAndKeyAt(t *testing.T) {
	h := shm.New(8 * shm.PageSize)
	pt := NewPageTable(h)
	k, _ := pt.Alloc()
	// Unaligned range spanning pages 1..3 tags all three whole pages.
	if err := pt.Assign(shm.PageSize+100, 2*shm.PageSize, k); err != nil {
		t.Fatal(err)
	}
	if pt.KeyAt(0) != KeyDefault {
		t.Fatal("page 0 should be default")
	}
	for _, off := range []uint64{shm.PageSize, 2 * shm.PageSize, 3 * shm.PageSize} {
		if pt.KeyAt(off) != k {
			t.Fatalf("page at %#x should have key %d", off, k)
		}
	}
	if pt.KeyAt(4*shm.PageSize) != KeyDefault {
		t.Fatal("page 4 should be default")
	}
	if err := pt.Assign(7*shm.PageSize, 2*shm.PageSize, k); err == nil {
		t.Fatal("assign beyond heap should fail")
	}
	if err := pt.Assign(0, shm.PageSize, 9); err == nil {
		t.Fatal("assign of unallocated key should fail")
	}
	// Freeing the key reverts its pages to the default key.
	if err := pt.Free(k); err != nil {
		t.Fatal(err)
	}
	if pt.KeyAt(shm.PageSize) != KeyDefault {
		t.Fatal("freed key's pages should revert to default")
	}
}

func TestGuardEnforcement(t *testing.T) {
	h := shm.New(4 * shm.PageSize)
	pt := NewPageTable(h)
	g := NewGuard(h, pt)
	k, _ := pt.Alloc()
	if err := pt.Assign(shm.PageSize, shm.PageSize, k); err != nil {
		t.Fatal(err)
	}

	restricted := PKRU(0).WithAccessDisabled(k)
	readOnly := PKRU(0).WithWriteDisabled(k)
	amplified := PKRU(0)

	// Amplified register: full access.
	if err := g.Store64(amplified, shm.PageSize, 7); err != nil {
		t.Fatalf("amplified store: %v", err)
	}
	if v, err := g.Load64(amplified, shm.PageSize); err != nil || v != 7 {
		t.Fatalf("amplified load = %d, %v", v, err)
	}

	// Restricted register: both directions fault.
	if _, err := g.Load64(restricted, shm.PageSize); err == nil {
		t.Fatal("restricted load should fault")
	}
	err := g.Store64(restricted, shm.PageSize, 1)
	var pf *ProtFault
	if !errors.As(err, &pf) {
		t.Fatalf("restricted store error = %v, want ProtFault", err)
	}
	if !pf.Write || pf.Key != k {
		t.Fatalf("fault fields = %+v", pf)
	}
	if pf.Error() == "" {
		t.Fatal("empty fault message")
	}

	// Write-disabled register: read ok, write faults.
	if _, err := g.Load64(readOnly, shm.PageSize); err != nil {
		t.Fatalf("read-only load: %v", err)
	}
	if err := g.Store64(readOnly, shm.PageSize, 1); err == nil {
		t.Fatal("read-only store should fault")
	}

	// Default-key pages remain accessible to the restricted register.
	if err := g.Store64(restricted, 0, 5); err != nil {
		t.Fatalf("default-page store: %v", err)
	}

	// Byte ranges that straddle into the protected page fault too.
	buf := make([]byte, 64)
	if err := g.ReadBytes(restricted, shm.PageSize-32, buf); err == nil {
		t.Fatal("straddling read should fault")
	}
	if err := g.WriteBytes(restricted, shm.PageSize-32, buf); err == nil {
		t.Fatal("straddling write should fault")
	}
	if err := g.Check(restricted, shm.PageSize, 1, false); err == nil {
		t.Fatal("Check should report the fault")
	}
	if err := g.Check(restricted, 0, shm.PageSize, true); err != nil {
		t.Fatalf("Check on default pages: %v", err)
	}
	if err := g.Check(restricted, 0, 0, true); err != nil {
		t.Fatalf("zero-length Check: %v", err)
	}
}

// Property: an access is permitted by Guard iff every page it touches is
// permitted by the register — the PKU access matrix, page-granular.
func TestQuickGuardMatchesMatrix(t *testing.T) {
	h := shm.New(8 * shm.PageSize)
	pt := NewPageTable(h)
	g := NewGuard(h, pt)
	k1, _ := pt.Alloc()
	k2, _ := pt.Alloc()
	pt.Assign(2*shm.PageSize, shm.PageSize, k1)
	pt.Assign(5*shm.PageSize, 2*shm.PageSize, k2)

	f := func(offRaw uint16, nRaw uint8, reg uint32, write bool) bool {
		off := uint64(offRaw) % h.Size()
		n := uint64(nRaw)%256 + 1
		if off+n > h.Size() {
			n = h.Size() - off
		}
		p := PKRU(reg)
		want := true
		for pg := off / shm.PageSize; pg <= (off+n-1)/shm.PageSize; pg++ {
			key := pt.KeyAt(pg * shm.PageSize)
			if write && !p.CanWrite(key) || !write && !p.CanRead(key) {
				want = false
			}
		}
		got := g.Check(p, off, n, write) == nil
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
