package pku

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"plibmc/internal/shm"
)

// Concurrency coverage for the virtual key table (ISSUE 7 satellite):
// Bind/Unbind/eviction racing across goroutines, pin exhaustion as typed
// backpressure under contention, and the mapping-generation rollover.
// These tests are written to run under -race (make gatehard does).

// TestVTableConcurrentBindUnbind: eight threads hammer a 24-domain table
// (over 14 bindable hardware keys, so evictions interleave with binds).
// Invariant under test: while a thread holds a pin, its domain's pages are
// tagged with the returned hardware key and readable through a register
// granting it — no eviction may move a pinned mapping.
func TestVTableConcurrentBindUnbind(t *testing.T) {
	const (
		domains = 24
		workers = 8
		iters   = 300
	)
	heap, pt, vt := vtFixture(t, domains)
	g := NewGuard(heap, pt)
	vkeys := make([]VKey, domains)
	for i := range vkeys {
		vkeys[i] = vt.AllocVirtual()
		if err := vt.AssignVirtual(vkeys[i], uint64(i)*shm.PageSize, shm.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				d := rng.Intn(domains)
				hw, err := vt.Bind(vkeys[d])
				if err != nil {
					// At most `workers` pins exist at once, well under the
					// 14 bindable keys: exhaustion here is a table bug.
					t.Errorf("worker %d bind domain %d: %v", w, d, err)
					return
				}
				off := uint64(d) * shm.PageSize
				if k := pt.KeyAt(off); k != hw {
					t.Errorf("worker %d: pinned domain %d tagged %d, want %d", w, d, k, hw)
				}
				if _, err := g.Load64(AllRestricted().WithAccess(hw), off); err != nil {
					t.Errorf("worker %d: pinned domain %d unreadable: %v", w, d, err)
				}
				vt.Unbind(vkeys[d])
			}
		}(w)
	}
	wg.Wait()
	if vt.Evictions() == 0 {
		t.Fatal("24 domains over 14 hardware keys raced without one eviction")
	}
	// Quiesced: every domain still reachable, unmapped ones fence-tagged.
	for i, v := range vkeys {
		off := uint64(i) * shm.PageSize
		if hw, ok := vt.Mapped(v); ok {
			if k := pt.KeyAt(off); k != hw {
				t.Fatalf("domain %d mapped to %d but tagged %d", i, hw, k)
			}
		} else if k := pt.KeyAt(off); k != vt.Fence() {
			t.Fatalf("unmapped domain %d tagged %d, want fence %d", i, k, vt.Fence())
		}
		if _, err := vt.Bind(v); err != nil {
			t.Fatalf("domain %d unbindable after the race: %v", i, err)
		}
		vt.Unbind(v)
	}
}

// TestVTableConcurrentPinExhaustion: twenty threads race to pin distinct
// domains on a table with exactly 14 bindable hardware keys. Exactly 14
// must win; every loser must see ErrAllKeysPinned (typed, retryable
// backpressure — never a different error, never a panic); and once the
// winners release, the losers' domains bind fine.
func TestVTableConcurrentPinExhaustion(t *testing.T) {
	const claimants = 20
	_, _, vt := vtFixture(t, claimants)
	vkeys := make([]VKey, claimants)
	for i := range vkeys {
		vkeys[i] = vt.AllocVirtual()
		if err := vt.AssignVirtual(vkeys[i], uint64(i)*shm.PageSize, shm.PageSize); err != nil {
			t.Fatal(err)
		}
	}
	var (
		wg      sync.WaitGroup
		start   = make(chan struct{})
		pinned  atomic.Int64
		refused atomic.Int64
	)
	won := make([]bool, claimants)
	for i := range vkeys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, err := vt.Bind(vkeys[i])
			switch {
			case err == nil:
				pinned.Add(1)
				won[i] = true
			case errors.Is(err, ErrAllKeysPinned):
				refused.Add(1)
			default:
				t.Errorf("claimant %d: %v, want nil or ErrAllKeysPinned", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	if pinned.Load() != 14 || refused.Load() != claimants-14 {
		t.Fatalf("pinned %d / refused %d claimants, want 14 / %d",
			pinned.Load(), refused.Load(), claimants-14)
	}
	for i, v := range vkeys {
		if won[i] {
			vt.Unbind(v)
		}
	}
	// Backpressure was transient: every refused claimant binds now.
	for i, v := range vkeys {
		if won[i] {
			continue
		}
		if _, err := vt.Bind(v); err != nil {
			t.Fatalf("claimant %d still refused after release: %v", i, err)
		}
		vt.Unbind(v)
	}
}

// TestVTableGenerationRollover: the mapping generation is compared for
// inequality, not order — after 2^64 remaps it wraps through zero and a
// thread whose cached generation is MaxUint64 must still read the next
// remap as stale. SetGenForTest stands in for the 2^64 remaps.
func TestVTableGenerationRollover(t *testing.T) {
	_, pt, vt := vtFixture(t, 4)
	vt.SetGenForTest(math.MaxUint64)
	cached := vt.Gen() // a thread syncing now caches MaxUint64
	v := vt.AllocVirtual()
	if err := vt.AssignVirtual(v, 0, shm.PageSize); err != nil {
		t.Fatal(err)
	}
	hw, err := vt.Bind(v)
	if err != nil {
		t.Fatal(err)
	}
	defer vt.Unbind(v)
	if g := vt.Gen(); g != 0 {
		t.Fatalf("generation after rollover remap = %d, want 0", g)
	}
	// The wrapped generation still differs from the cached one: the
	// lazy-sync staleness test (!=) survives the rollover. An ordered
	// comparison (cached < current) would report the thread fresh here.
	if vt.Gen() == cached {
		t.Fatal("rollover produced an equal generation; staleness is undetectable")
	}
	if k := pt.KeyAt(0); k != hw {
		t.Fatalf("page tagged %d after rollover remap, want %d", k, hw)
	}
}
