package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"plibmc/internal/bench"
	"plibmc/internal/ycsb"
)

func TestRoundtrip(t *testing.T) {
	recs := []*Record{
		{Op: OpSet, Key: []byte("k1"), Value: []byte("v1"), Flags: 7, Exptime: 100},
		{Op: OpGet, Key: []byte("k1")},
		{Op: OpIncr, Key: []byte("n"), Delta: 42},
		{Op: OpDelete, Key: []byte("k1")},
		{Op: OpTouch, Key: []byte("k2"), Exptime: -1},
		{Op: OpSet, Key: []byte("binary\x00key"), Value: bytes.Repeat([]byte{0xFF, 0x00}, 100)},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Op != want.Op || !bytes.Equal(got.Key, want.Key) ||
			!bytes.Equal(got.Value, want.Value) || got.Flags != want.Flags ||
			got.Exptime != want.Exptime || got.Delta != want.Delta {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// Property: every record round-trips exactly.
func TestQuickRecordRoundtrip(t *testing.T) {
	f := func(op uint8, key, value []byte, flags uint32, exp int64, delta uint64) bool {
		if len(key) > 0xFFFF {
			key = key[:0xFFFF]
		}
		rec := &Record{Op: Op(op % 5), Key: key, Value: value, Flags: flags, Exptime: exp, Delta: delta}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if w.Write(rec) != nil || w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		if err != nil {
			return false
		}
		return got.Op == rec.Op && bytes.Equal(got.Key, key) &&
			bytes.Equal(got.Value, value) && got.Flags == flags &&
			got.Exptime == exp && got.Delta == delta
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file at all.."))); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid header, truncated record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(&Record{Op: OpSet, Key: []byte("k"), Value: []byte("v")})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated record accepted")
	}
	// Invalid op byte.
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2)
	w2.Write(&Record{Op: OpGet, Key: []byte("k")})
	w2.Flush()
	raw := buf2.Bytes()
	raw[16] = 200 // first record's op byte
	r2, _ := NewReader(bytes.NewReader(raw))
	if _, err := r2.Next(); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestFromYCSBDeterministic(t *testing.T) {
	w := ycsb.WriteHeavy128(500)
	var a, b bytes.Buffer
	na, err := FromYCSB(w, 1000, 7, &a)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := FromYCSB(w, 1000, 7, &b)
	if err != nil {
		t.Fatal(err)
	}
	if na != 1000 || nb != 1000 {
		t.Fatalf("counts %d %d", na, nb)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed must produce identical traces")
	}
	var c bytes.Buffer
	FromYCSB(w, 1000, 8, &c)
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds should differ")
	}
}

func TestReplayAgainstPlib(t *testing.T) {
	f, err := bench.NewFixture(bench.PlibHodor, bench.Options{
		TempDir: t.TempDir(), HeapBytes: 32 << 20, HashPower: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := ycsb.WriteHeavy128(200)
	if err := bench.Preload(f, w); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := FromYCSB(w, 2000, 3, &buf); err != nil {
		t.Fatal(err)
	}
	kv, err := f.NewThread()
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(r, kv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 || res.Errors != 0 {
		t.Fatalf("replay = %+v", res)
	}
	if res.Misses != 0 { // store fully preloaded: every get hits
		t.Fatalf("unexpected misses: %d", res.Misses)
	}
	if res.Latency.Count() != 2000 || res.Latency.Mean() <= 0 {
		t.Fatalf("latency histogram: %v", res.Latency)
	}
}
