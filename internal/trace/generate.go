package trace

import (
	"io"

	"plibmc/internal/bench"
	"plibmc/internal/histogram"
	"plibmc/internal/ycsb"
	"time"
)

// FromYCSB renders n operations of a YCSB workload into a trace — a
// deterministic, shareable artifact of the benchmark configuration.
func FromYCSB(w ycsb.Workload, n int, seed int64, out io.Writer) (uint64, error) {
	tw := NewWriter(out)
	gen := w.NewClient(seed)
	for i := 0; i < n; i++ {
		kind, key, val := gen.Next()
		rec := &Record{Key: key}
		if kind == ycsb.OpRead {
			rec.Op = OpGet
		} else {
			rec.Op = OpSet
			rec.Value = val
		}
		if err := tw.Write(rec); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// ReplayResult summarizes a replay run.
type ReplayResult struct {
	Ops     uint64
	Misses  uint64
	Errors  uint64
	Elapsed time.Duration
	Latency *histogram.H
}

// Replay streams a trace against a system under test through one thread
// handle, timing each operation.
func Replay(r *Reader, kv bench.ThreadKV) (*ReplayResult, error) {
	res := &ReplayResult{Latency: histogram.New()}
	start := time.Now()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		var opErr error
		switch rec.Op {
		case OpGet:
			opErr = kv.Get(rec.Key)
		case OpSet:
			opErr = kv.Set(rec.Key, rec.Value)
		case OpDelete:
			opErr = kv.Delete(rec.Key)
		case OpIncr:
			opErr = kv.Incr(rec.Key, rec.Delta)
		case OpTouch:
			// ThreadKV has no touch; emulate with a get (closest cost).
			opErr = kv.Get(rec.Key)
		}
		res.Latency.Record(time.Since(t0))
		res.Ops++
		if opErr != nil {
			if rec.Op == OpGet || rec.Op == OpDelete || rec.Op == OpIncr || rec.Op == OpTouch {
				res.Misses++ // not-found outcomes are part of a trace's life
			} else {
				res.Errors++
			}
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
