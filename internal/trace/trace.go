// Package trace provides a compact binary format for key-value operation
// traces, plus a recorder and replayer. Traces make experiments shareable
// and exactly repeatable: record a YCSB run (or capture a live workload)
// once, then replay the identical operation stream against any backend.
//
// Format: a 16-byte header (magic, version, op count) followed by
// length-prefixed records:
//
//	op      uint8   (Get/Set/Delete/Incr/Touch)
//	flags   uint32
//	exptime int64   (varint-free fixed width for simplicity)
//	delta   uint64  (incr amount)
//	keyLen  uint16
//	valLen  uint32
//	key, value bytes
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

const (
	magic   = 0x4D43545243453147 // "MCTRCE1G"
	version = 1
)

// Op is a traced operation kind.
type Op uint8

// Trace operation kinds.
const (
	OpGet Op = iota
	OpSet
	OpDelete
	OpIncr
	OpTouch
)

func (o Op) String() string {
	names := [...]string{"get", "set", "delete", "incr", "touch"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Record is one traced operation.
type Record struct {
	Op      Op
	Flags   uint32
	Exptime int64
	Delta   uint64
	Key     []byte
	Value   []byte
}

// Writer streams records to an underlying writer.
type Writer struct {
	w     *bufio.Writer
	count uint64
	// the count lives in the header, so the caller must Finalize onto a
	// seekable sink, or use WriteAll which handles it.
	headerWritten bool
}

// NewWriter creates a trace writer. Call Flush when done; the header's
// count field is written as zero (meaning "until EOF") unless the caller
// uses WriteAll on a seekable file.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<20)}
}

func (tw *Writer) writeHeader(count uint64) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[8:], version)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(count)) // 0 = until EOF
	_, err := tw.w.Write(hdr[:])
	return err
}

// Write appends one record.
func (tw *Writer) Write(r *Record) error {
	if !tw.headerWritten {
		if err := tw.writeHeader(0); err != nil {
			return err
		}
		tw.headerWritten = true
	}
	if len(r.Key) > 0xFFFF {
		return fmt.Errorf("trace: key of %d bytes exceeds format limit", len(r.Key))
	}
	var fixed [1 + 4 + 8 + 8 + 2 + 4]byte
	fixed[0] = byte(r.Op)
	binary.LittleEndian.PutUint32(fixed[1:], r.Flags)
	binary.LittleEndian.PutUint64(fixed[5:], uint64(r.Exptime))
	binary.LittleEndian.PutUint64(fixed[13:], r.Delta)
	binary.LittleEndian.PutUint16(fixed[21:], uint16(len(r.Key)))
	binary.LittleEndian.PutUint32(fixed[23:], uint32(len(r.Value)))
	if _, err := tw.w.Write(fixed[:]); err != nil {
		return err
	}
	if _, err := tw.w.Write(r.Key); err != nil {
		return err
	}
	if _, err := tw.w.Write(r.Value); err != nil {
		return err
	}
	tw.count++
	return nil
}

// Count returns how many records have been written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush drains buffered records to the underlying writer.
func (tw *Writer) Flush() error {
	if !tw.headerWritten {
		if err := tw.writeHeader(0); err != nil {
			return err
		}
		tw.headerWritten = true
	}
	return tw.w.Flush()
}

// Reader streams records from a trace.
type Reader struct {
	r     *bufio.Reader
	count uint64 // 0 = until EOF
	read  uint64
}

// NewReader validates the header and prepares to stream records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != magic {
		return nil, fmt.Errorf("trace: not a trace file")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br, count: uint64(binary.LittleEndian.Uint32(hdr[12:]))}, nil
}

// Next returns the next record, or io.EOF at the end of the trace. The
// record's slices are freshly allocated.
func (tr *Reader) Next() (*Record, error) {
	if tr.count != 0 && tr.read >= tr.count {
		return nil, io.EOF
	}
	var fixed [27]byte
	if _, err := io.ReadFull(tr.r, fixed[:]); err != nil {
		if err == io.EOF && tr.count == 0 {
			return nil, io.EOF
		}
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	r := &Record{
		Op:      Op(fixed[0]),
		Flags:   binary.LittleEndian.Uint32(fixed[1:]),
		Exptime: int64(binary.LittleEndian.Uint64(fixed[5:])),
		Delta:   binary.LittleEndian.Uint64(fixed[13:]),
	}
	if r.Op > OpTouch {
		return nil, fmt.Errorf("trace: record %d has invalid op %d", tr.read, fixed[0])
	}
	keyLen := int(binary.LittleEndian.Uint16(fixed[21:]))
	valLen := int(binary.LittleEndian.Uint32(fixed[23:]))
	if valLen > 16<<20 {
		return nil, fmt.Errorf("trace: record %d has implausible value length %d", tr.read, valLen)
	}
	r.Key = make([]byte, keyLen)
	if _, err := io.ReadFull(tr.r, r.Key); err != nil {
		return nil, fmt.Errorf("trace: truncated key: %w", err)
	}
	r.Value = make([]byte, valLen)
	if _, err := io.ReadFull(tr.r, r.Value); err != nil {
		return nil, fmt.Errorf("trace: truncated value: %w", err)
	}
	tr.read++
	return r, nil
}
