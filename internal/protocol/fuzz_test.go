package protocol

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

// Robustness: the server-side decoders face bytes from untrusted clients.
// Whatever arrives, they must return an error or a command — never panic,
// never allocate absurd amounts.

func TestBinaryDecoderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		if rng.Intn(2) == 0 && n > 0 {
			buf[0] = 0x80 // valid magic, garbage rest
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input % x: %v", buf, r)
				}
			}()
			ReadBinaryCommand(bufio.NewReader(bytes.NewReader(buf)))
		}()
	}
}

func TestBinaryReplyDecoderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		if rng.Intn(2) == 0 && n > 0 {
			buf[0] = 0x81
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input % x: %v", buf, r)
				}
			}()
			ReadBinaryReply(bufio.NewReader(bytes.NewReader(buf)))
		}()
	}
}

func TestASCIIDecoderNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := []string{"get", "set", "add", "cas", "incr", "delete", "touch",
		"stats", "quit", "\r", "\n", "0", "-1", "99999999999999999999",
		"noreply", "key", "\x00\x01", "   "}
	for i := 0; i < 5000; i++ {
		var b bytes.Buffer
		for j := rng.Intn(6); j >= 0; j-- {
			b.WriteString(words[rng.Intn(len(words))])
			b.WriteByte(' ')
		}
		b.WriteString("\r\n")
		if rng.Intn(3) == 0 {
			junk := make([]byte, rng.Intn(32))
			rng.Read(junk)
			b.Write(junk)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", b.String(), r)
				}
			}()
			ReadASCIICommand(bufio.NewReader(bytes.NewReader(b.Bytes())))
		}()
	}
}

// A malicious length field must not make the decoder allocate the claimed
// size before validation.
func TestBinaryLengthValidationBeforeAllocation(t *testing.T) {
	hdr := make([]byte, 24)
	hdr[0] = 0x80
	hdr[1] = 0x01               // set
	hdr[8], hdr[9] = 0xFF, 0xFF // bodylen ≈ 4 GiB
	hdr[10], hdr[11] = 0xFF, 0xFF
	if _, err := ReadBinaryCommand(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
		t.Fatal("4 GiB body accepted")
	}
	// ASCII: absurd set length.
	line := []byte("set k 0 0 99999999999\r\n")
	if _, err := ReadASCIICommand(bufio.NewReader(bytes.NewReader(line))); err == nil {
		t.Fatal("absurd ASCII data length accepted")
	}
}
