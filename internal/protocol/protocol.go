// Package protocol implements memcached's two wire protocols — the
// human-readable ASCII protocol and the compact binary protocol — as used
// between the baseline client and server. This package, together with the
// socket server and client built on it, is precisely the code the paper
// *removed* when memcached became a protected library (~5200 of the ~6800
// deleted lines were "devoted to socket communication and to packing and
// unpacking of message buffers"); it exists here so the baseline comparison
// is faithful.
//
// Both protocols speak the same protocol-neutral Command/Reply model, so
// the server's dispatch loop is protocol agnostic.
package protocol

import "fmt"

// Op enumerates the memcached operations carried by either protocol.
type Op uint8

// Operations.
const (
	OpGet Op = iota
	OpSet
	OpAdd
	OpReplace
	OpCAS
	OpDelete
	OpIncr
	OpDecr
	OpAppend
	OpPrepend
	OpTouch
	OpFlushAll
	OpStats
	OpVersion
	OpNoop
	OpQuit
	OpGAT // get-and-touch
)

var opNames = [...]string{
	OpGet: "get", OpSet: "set", OpAdd: "add", OpReplace: "replace",
	OpCAS: "cas", OpDelete: "delete", OpIncr: "incr", OpDecr: "decr",
	OpAppend: "append", OpPrepend: "prepend", OpTouch: "touch",
	OpFlushAll: "flush_all", OpStats: "stats", OpVersion: "version",
	OpNoop: "noop", OpQuit: "quit", OpGAT: "gat",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Status is the outcome of an operation.
type Status uint16

// Statuses (values match the binary protocol's response status field).
const (
	StatusOK             Status = 0x0000
	StatusKeyNotFound    Status = 0x0001
	StatusKeyExists      Status = 0x0002
	StatusValueTooLarge  Status = 0x0003
	StatusInvalidArgs    Status = 0x0004
	StatusNotStored      Status = 0x0005
	StatusNonNumeric     Status = 0x0006
	StatusUnknownCommand Status = 0x0081
	StatusOutOfMemory    Status = 0x0082
	// StatusTempFailure mirrors memcached's binary 0x0086 "temporary
	// failure": the server cannot serve this key right now but expects
	// to again — the proxy uses it while a shard's circuit breaker is
	// open or the supervisor is rebuilding the shard. Retryable.
	StatusTempFailure Status = 0x0086
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusKeyNotFound:
		return "NOT_FOUND"
	case StatusKeyExists:
		return "EXISTS"
	case StatusValueTooLarge:
		return "TOO_LARGE"
	case StatusInvalidArgs:
		return "CLIENT_ERROR bad arguments"
	case StatusNotStored:
		return "NOT_STORED"
	case StatusNonNumeric:
		return "CLIENT_ERROR cannot increment or decrement non-numeric value"
	case StatusUnknownCommand:
		return "ERROR"
	case StatusOutOfMemory:
		return "SERVER_ERROR out of memory"
	case StatusTempFailure:
		return "SERVER_ERROR temporary failure"
	default:
		return fmt.Sprintf("status(%d)", uint16(s))
	}
}

// Command is a protocol-neutral request.
type Command struct {
	Op Op
	// StatsArg is the "stats <arg>" subcommand ("slabs", "items", ...).
	StatsArg string
	Key      []byte
	// Keys carries the extra keys of a multi-key ASCII "get k1 k2 …"
	// (Key holds the first); nil for single-key commands. Servers expand
	// a populated Keys into one lookup per key under a single END.
	Keys    [][]byte
	Value   []byte
	Flags   uint32
	Exptime int64
	Delta   uint64 // incr/decr amount
	CAS     uint64
	Opaque  uint32 // binary protocol correlation id
	Quiet   bool   // binary quiet variants / ASCII noreply
}

// AllKeys returns the command's full key list: Key followed by Keys.
func (c *Command) AllKeys() [][]byte {
	if len(c.Keys) == 0 {
		return [][]byte{c.Key}
	}
	keys := make([][]byte, 0, 1+len(c.Keys))
	return append(append(keys, c.Key), c.Keys...)
}

// Reply is a protocol-neutral response.
type Reply struct {
	Status  Status
	Key     []byte
	Value   []byte
	Flags   uint32
	CAS     uint64
	Opaque  uint32
	Numeric uint64      // incr/decr result
	Stats   [][2]string // stats responses
	Version string
	// Message carries human-readable error detail for server-side
	// failure statuses (e.g. "shard 2 rebuilding" under
	// StatusTempFailure). ASCII renders it as "SERVER_ERROR <Message>";
	// binary ships it as the error frame's value. Empty falls back to
	// the status's canonical text.
	Message string
}

// MaxKeyLen and MaxBodyLen bound what either codec will accept, defending
// the server against absurd frames.
const (
	MaxKeyLen  = 250
	MaxBodyLen = 8 << 20
)
