package protocol

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
)

// The ASCII protocol: line-oriented commands with CRLF terminators and
// out-of-band data blocks for storage commands. This is the protocol the
// paper notes "loses its attraction" without a network interface — kept
// for the baseline and for the hybrid remote mode.

// ReadASCIICommand parses one command (and its data block, for storage
// commands) from the stream.
func ReadASCIICommand(r *bufio.Reader) (*Command, error) {
	line, err := readLine(r)
	if err != nil {
		return nil, err
	}
	fields := bytes.Fields(line)
	if len(fields) == 0 {
		return nil, fmt.Errorf("protocol: empty command line")
	}
	name := string(fields[0])
	args := fields[1:]
	switch name {
	case "get", "gets":
		if len(args) < 1 {
			return nil, fmt.Errorf("protocol: get without key")
		}
		c := &Command{Op: OpGet, Key: dup(args[0])}
		for _, k := range args[1:] {
			c.Keys = append(c.Keys, dup(k))
		}
		return c, nil
	case "set", "add", "replace", "append", "prepend", "cas":
		ops := map[string]Op{"set": OpSet, "add": OpAdd, "replace": OpReplace,
			"append": OpAppend, "prepend": OpPrepend, "cas": OpCAS}
		op := ops[name]
		want := 4
		if op == OpCAS {
			want = 5
		}
		if len(args) < want {
			return nil, fmt.Errorf("protocol: %s needs %d arguments", name, want)
		}
		// flags and exptime are range-checked to their wire widths: a
		// 64-bit parse followed by a uint32() conversion would silently
		// wrap out-of-range values (set k 4294967296 0 1 storing flags=0)
		// instead of rejecting the command line.
		flags, err1 := parseU32(args[1])
		exp, err2 := parseExptime(args[2])
		n, err3 := parseU64(args[3])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("protocol: bad command line format for %s", name)
		}
		if err3 != nil || n > MaxBodyLen {
			return nil, fmt.Errorf("protocol: bad %s arguments", name)
		}
		c := &Command{Op: op, Key: dup(args[0]), Flags: uint32(flags), Exptime: exp}
		idx := 4
		if op == OpCAS {
			cas, err := parseU64(args[4])
			if err != nil {
				return nil, fmt.Errorf("protocol: bad cas value")
			}
			c.CAS = cas
			idx = 5
		}
		if len(args) > idx && string(args[idx]) == "noreply" {
			c.Quiet = true
		}
		data := make([]byte, n+2)
		if _, err := readFull(r, data); err != nil {
			return nil, fmt.Errorf("protocol: short data block: %w", err)
		}
		if data[n] != '\r' || data[n+1] != '\n' {
			return nil, fmt.Errorf("protocol: data block not CRLF terminated")
		}
		c.Value = data[:n]
		return c, nil
	case "delete":
		if len(args) < 1 {
			return nil, fmt.Errorf("protocol: delete without key")
		}
		c := &Command{Op: OpDelete, Key: dup(args[0])}
		if len(args) > 1 && string(args[len(args)-1]) == "noreply" {
			c.Quiet = true
		}
		return c, nil
	case "incr", "decr":
		if len(args) < 2 {
			return nil, fmt.Errorf("protocol: %s needs key and amount", name)
		}
		d, err := parseU64(args[1])
		if err != nil {
			return nil, fmt.Errorf("protocol: bad %s amount", name)
		}
		op := OpIncr
		if name == "decr" {
			op = OpDecr
		}
		return &Command{Op: op, Key: dup(args[0]), Delta: d}, nil
	case "gat":
		if len(args) < 2 {
			return nil, fmt.Errorf("protocol: gat needs exptime and key")
		}
		exp, err := parseExptime(args[0])
		if err != nil {
			return nil, fmt.Errorf("protocol: bad gat exptime")
		}
		return &Command{Op: OpGAT, Key: dup(args[1]), Exptime: exp}, nil
	case "touch":
		if len(args) < 2 {
			return nil, fmt.Errorf("protocol: touch needs key and exptime")
		}
		exp, err := parseExptime(args[1])
		if err != nil {
			return nil, fmt.Errorf("protocol: bad touch exptime")
		}
		return &Command{Op: OpTouch, Key: dup(args[0]), Exptime: exp}, nil
	case "flush_all":
		return &Command{Op: OpFlushAll}, nil
	case "stats":
		c := &Command{Op: OpStats}
		if len(args) > 0 {
			c.StatsArg = string(args[0])
		}
		return c, nil
	case "version":
		return &Command{Op: OpVersion}, nil
	case "quit":
		return &Command{Op: OpQuit}, nil
	default:
		return nil, fmt.Errorf("protocol: unknown command %q", name)
	}
}

// WriteASCIIReply renders the reply for a command.
func WriteASCIIReply(w *bufio.Writer, c *Command, rep *Reply) error {
	if c.Quiet {
		return nil // noreply
	}
	if rep.Status == StatusTempFailure {
		// A shard-down condition is not a miss: even reads report
		// SERVER_ERROR (never a bare END) so clients can tell "key
		// absent" from "key's shard temporarily unavailable — retry".
		msg := rep.Message
		if msg == "" {
			msg = "temporary failure"
		}
		_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", msg)
		return err
	}
	switch c.Op {
	case OpGet, OpGAT:
		if rep.Status == StatusOK {
			fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", c.Key, rep.Flags, len(rep.Value), rep.CAS)
			w.Write(rep.Value)
			w.WriteString("\r\n")
		}
		_, err := w.WriteString("END\r\n")
		return err
	case OpSet, OpAdd, OpReplace, OpCAS, OpAppend, OpPrepend:
		switch rep.Status {
		case StatusOK:
			_, err := w.WriteString("STORED\r\n")
			return err
		case StatusKeyExists:
			if c.Op == OpCAS {
				_, err := w.WriteString("EXISTS\r\n")
				return err
			}
			_, err := w.WriteString("NOT_STORED\r\n")
			return err
		case StatusKeyNotFound:
			if c.Op == OpCAS {
				_, err := w.WriteString("NOT_FOUND\r\n")
				return err
			}
			_, err := w.WriteString("NOT_STORED\r\n")
			return err
		default:
			_, err := fmt.Fprintf(w, "SERVER_ERROR %v\r\n", rep.Status)
			return err
		}
	case OpDelete:
		if rep.Status == StatusOK {
			_, err := w.WriteString("DELETED\r\n")
			return err
		}
		_, err := w.WriteString("NOT_FOUND\r\n")
		return err
	case OpIncr, OpDecr:
		switch rep.Status {
		case StatusOK:
			_, err := fmt.Fprintf(w, "%d\r\n", rep.Numeric)
			return err
		case StatusKeyNotFound:
			_, err := w.WriteString("NOT_FOUND\r\n")
			return err
		default:
			_, err := fmt.Fprintf(w, "%v\r\n", rep.Status)
			return err
		}
	case OpTouch:
		if rep.Status == StatusOK {
			_, err := w.WriteString("TOUCHED\r\n")
			return err
		}
		_, err := w.WriteString("NOT_FOUND\r\n")
		return err
	case OpFlushAll:
		_, err := w.WriteString("OK\r\n")
		return err
	case OpStats:
		for _, kv := range rep.Stats {
			fmt.Fprintf(w, "STAT %s %s\r\n", kv[0], kv[1])
		}
		_, err := w.WriteString("END\r\n")
		return err
	case OpVersion:
		_, err := fmt.Fprintf(w, "VERSION %s\r\n", rep.Version)
		return err
	default:
		_, err := w.WriteString("ERROR\r\n")
		return err
	}
}

func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	return bytes.TrimRight(line, "\r\n"), nil
}

func readFull(r *bufio.Reader, b []byte) (int, error) {
	n := 0
	for n < len(b) {
		m, err := r.Read(b[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func dup(b []byte) []byte { return append([]byte(nil), b...) }

func parseU64(b []byte) (uint64, error) { return strconv.ParseUint(string(b), 10, 64) }

// parseU32 parses a field whose wire width is 32 bits (flags); values that
// do not fit are a protocol error, not a silent truncation.
func parseU32(b []byte) (uint64, error) { return strconv.ParseUint(string(b), 10, 32) }

// parseExptime parses an expiry field. The wire width is 32 bits signed
// (memcached's rel_time/absolute-unixtime split lives in that range);
// anything wider is a malformed command line.
func parseExptime(b []byte) (int64, error) {
	v, err := strconv.ParseInt(string(b), 10, 32)
	return v, err
}
