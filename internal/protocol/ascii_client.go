package protocol

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
)

// Client-side ASCII parsing: decode the server's reply to a command.

// WriteASCIICommand renders a command in the ASCII protocol.
func WriteASCIICommand(w *bufio.Writer, c *Command) error {
	switch c.Op {
	case OpGet:
		_, err := fmt.Fprintf(w, "gets %s\r\n", c.Key)
		return err
	case OpSet, OpAdd, OpReplace, OpAppend, OpPrepend:
		names := map[Op]string{OpSet: "set", OpAdd: "add", OpReplace: "replace",
			OpAppend: "append", OpPrepend: "prepend"}
		suffix := ""
		if c.Quiet {
			suffix = " noreply"
		}
		fmt.Fprintf(w, "%s %s %d %d %d%s\r\n", names[c.Op], c.Key, c.Flags, c.Exptime, len(c.Value), suffix)
		w.Write(c.Value)
		_, err := w.WriteString("\r\n")
		return err
	case OpCAS:
		fmt.Fprintf(w, "cas %s %d %d %d %d\r\n", c.Key, c.Flags, c.Exptime, len(c.Value), c.CAS)
		w.Write(c.Value)
		_, err := w.WriteString("\r\n")
		return err
	case OpDelete:
		_, err := fmt.Fprintf(w, "delete %s\r\n", c.Key)
		return err
	case OpIncr:
		_, err := fmt.Fprintf(w, "incr %s %d\r\n", c.Key, c.Delta)
		return err
	case OpDecr:
		_, err := fmt.Fprintf(w, "decr %s %d\r\n", c.Key, c.Delta)
		return err
	case OpTouch:
		_, err := fmt.Fprintf(w, "touch %s %d\r\n", c.Key, c.Exptime)
		return err
	case OpGAT:
		_, err := fmt.Fprintf(w, "gat %d %s\r\n", c.Exptime, c.Key)
		return err
	case OpFlushAll:
		_, err := w.WriteString("flush_all\r\n")
		return err
	case OpStats:
		_, err := w.WriteString("stats\r\n")
		return err
	case OpVersion:
		_, err := w.WriteString("version\r\n")
		return err
	case OpQuit:
		_, err := w.WriteString("quit\r\n")
		return err
	default:
		return fmt.Errorf("protocol: op %v has no ASCII encoding", c.Op)
	}
}

// ReadASCIIReply parses the server's ASCII reply to command c.
func ReadASCIIReply(r *bufio.Reader, c *Command) (*Reply, error) {
	if c.Quiet {
		return &Reply{Status: StatusOK}, nil
	}
	switch c.Op {
	case OpGet, OpGAT:
		rep := &Reply{Status: StatusKeyNotFound}
		for {
			line, err := readLine(r)
			if err != nil {
				return nil, err
			}
			if bytes.Equal(line, []byte("END")) {
				return rep, nil
			}
			fields := bytes.Fields(line)
			if len(fields) < 4 || string(fields[0]) != "VALUE" {
				return nil, fmt.Errorf("protocol: unexpected get reply %q", line)
			}
			// A flags (or CAS) field that does not parse is a corrupt or
			// malformed server reply; swallowing the error would silently
			// yield flags=0 (or CAS=0) and feed garbage to the caller.
			flags, ferr := strconv.ParseUint(string(fields[2]), 10, 32)
			if ferr != nil {
				return nil, fmt.Errorf("protocol: bad VALUE flags in %q", line)
			}
			n, err := strconv.Atoi(string(fields[3]))
			if err != nil || n < 0 || n > MaxBodyLen {
				return nil, fmt.Errorf("protocol: bad VALUE length in %q", line)
			}
			if len(fields) >= 5 {
				cas, cerr := strconv.ParseUint(string(fields[4]), 10, 64)
				if cerr != nil {
					return nil, fmt.Errorf("protocol: bad VALUE cas in %q", line)
				}
				rep.CAS = cas
			}
			data := make([]byte, n+2)
			if _, err := readFull(r, data); err != nil {
				return nil, err
			}
			rep.Status = StatusOK
			rep.Flags = uint32(flags)
			rep.Value = data[:n]
			rep.Key = dup(fields[1])
		}
	case OpSet, OpAdd, OpReplace, OpCAS, OpAppend, OpPrepend:
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		switch string(line) {
		case "STORED":
			return &Reply{Status: StatusOK}, nil
		case "NOT_STORED":
			if c.Op == OpAdd {
				return &Reply{Status: StatusKeyExists}, nil
			}
			return &Reply{Status: StatusKeyNotFound}, nil
		case "EXISTS":
			return &Reply{Status: StatusKeyExists}, nil
		case "NOT_FOUND":
			return &Reply{Status: StatusKeyNotFound}, nil
		default:
			return nil, fmt.Errorf("protocol: store reply %q", line)
		}
	case OpDelete:
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if string(line) == "DELETED" {
			return &Reply{Status: StatusOK}, nil
		}
		return &Reply{Status: StatusKeyNotFound}, nil
	case OpIncr, OpDecr:
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if v, perr := strconv.ParseUint(string(line), 10, 64); perr == nil {
			return &Reply{Status: StatusOK, Numeric: v}, nil
		}
		if string(line) == "NOT_FOUND" {
			return &Reply{Status: StatusKeyNotFound}, nil
		}
		return &Reply{Status: StatusNonNumeric}, nil
	case OpTouch:
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		if string(line) == "TOUCHED" {
			return &Reply{Status: StatusOK}, nil
		}
		return &Reply{Status: StatusKeyNotFound}, nil
	case OpFlushAll:
		if _, err := readLine(r); err != nil {
			return nil, err
		}
		return &Reply{Status: StatusOK}, nil
	case OpStats:
		rep := &Reply{Status: StatusOK}
		for {
			line, err := readLine(r)
			if err != nil {
				return nil, err
			}
			if bytes.Equal(line, []byte("END")) {
				return rep, nil
			}
			fields := bytes.SplitN(line, []byte(" "), 3)
			if len(fields) == 3 && string(fields[0]) == "STAT" {
				rep.Stats = append(rep.Stats, [2]string{string(fields[1]), string(fields[2])})
			}
		}
	case OpVersion:
		line, err := readLine(r)
		if err != nil {
			return nil, err
		}
		rep := &Reply{Status: StatusOK}
		if bytes.HasPrefix(line, []byte("VERSION ")) {
			rep.Version = string(line[8:])
		}
		return rep, nil
	default:
		return nil, fmt.Errorf("protocol: no ASCII reply for op %v", c.Op)
	}
}
