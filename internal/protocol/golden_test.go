package protocol

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"testing"
)

// Golden wire-format tests: the binary protocol's byte layout is a
// compatibility contract (real memcached clients depend on it); these pin
// the exact frames so a refactor cannot silently change the wire.

func encodeCmd(t *testing.T, c *Command) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteBinaryCommand(w, c); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	return buf.Bytes()
}

func encodeReply(t *testing.T, c *Command, rep *Reply) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteBinaryReply(w, c, rep); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	return buf.Bytes()
}

func TestGoldenBinaryGet(t *testing.T) {
	got := encodeCmd(t, &Command{Op: OpGet, Key: []byte("Hello"), Opaque: 0xdeadbeef})
	want := "" +
		"80" + // magic: request
		"00" + // opcode: get
		"0005" + // key length
		"00" + // extras length
		"00" + // data type
		"0000" + // vbucket
		"00000005" + // total body
		"deadbeef" + // opaque
		"0000000000000000" + // cas
		"48656c6c6f" // "Hello"
	if hex.EncodeToString(got) != want {
		t.Fatalf("get frame:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

func TestGoldenBinarySet(t *testing.T) {
	got := encodeCmd(t, &Command{
		Op: OpSet, Key: []byte("Hello"), Value: []byte("World"),
		Flags: 0xdeadbeef, Exptime: 3600,
	})
	want := "" +
		"80" + "01" + "0005" + "08" + "00" + "0000" +
		"00000012" + // body = 8 extras + 5 key + 5 value
		"00000000" + "0000000000000000" +
		"deadbeef" + // flags
		"00000e10" + // expiry 3600
		"48656c6c6f" + // key
		"576f726c64" // value
	if hex.EncodeToString(got) != want {
		t.Fatalf("set frame:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

func TestGoldenBinaryIncr(t *testing.T) {
	got := encodeCmd(t, &Command{Op: OpIncr, Key: []byte("counter"), Delta: 1})
	want := "" +
		"80" + "05" + "0007" + "14" + "00" + "0000" +
		"0000001b" + // body = 20 extras + 7 key
		"00000000" + "0000000000000000" +
		"0000000000000001" + // delta
		"0000000000000000" + // initial
		"ffffffff" + // expiry: no auto-create
		hex.EncodeToString([]byte("counter"))
	if hex.EncodeToString(got) != want {
		t.Fatalf("incr frame:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

func TestGoldenBinaryGetHitReply(t *testing.T) {
	got := encodeReply(t, &Command{Op: OpGet, Key: []byte("Hello")},
		&Reply{Status: StatusOK, Flags: 0xdeadbeef, Value: []byte("World"), CAS: 1})
	want := "" +
		"81" + // magic: response
		"00" + "0000" + "04" + "00" +
		"0000" + // status OK
		"00000009" + // body = 4 extras + 5 value
		"00000000" +
		"0000000000000001" + // cas
		"deadbeef" + // flags extras
		"576f726c64"
	if hex.EncodeToString(got) != want {
		t.Fatalf("get reply:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

func TestGoldenBinaryMissReply(t *testing.T) {
	got := encodeReply(t, &Command{Op: OpGet, Key: []byte("k")},
		&Reply{Status: StatusKeyNotFound})
	want := "81" + "00" + "0000" + "00" + "00" +
		"0001" + // status: key not found
		"00000000" + "00000000" + "0000000000000000"
	if hex.EncodeToString(got) != want {
		t.Fatalf("miss reply:\n got %s\nwant %s", hex.EncodeToString(got), want)
	}
}

func TestGoldenASCIISet(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteASCIICommand(w, &Command{
		Op: OpSet, Key: []byte("greeting"), Value: []byte("hi"), Flags: 5, Exptime: 60,
	}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != "set greeting 5 60 2\r\nhi\r\n" {
		t.Fatalf("ascii set = %q", got)
	}
}

func TestGoldenASCIIGetReply(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	cmd := &Command{Op: OpGet, Key: []byte("k")}
	if err := WriteASCIIReply(w, cmd, &Reply{Status: StatusOK, Flags: 7, Value: []byte("vv"), CAS: 9}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	if got := buf.String(); got != "VALUE k 7 2 9\r\nvv\r\nEND\r\n" {
		t.Fatalf("ascii get reply = %q", got)
	}
}
