package protocol

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The memcached binary protocol: a fixed 24-byte header followed by
// extras, key, and value.
//
//	0: magic (0x80 request / 0x81 response)
//	1: opcode
//	2: key length (big endian u16)
//	4: extras length
//	5: data type (0)
//	6: vbucket id (request) / status (response), big endian u16
//	8: total body length, big endian u32
//	12: opaque
//	16: cas
const (
	binReqMagic  = 0x80
	binResMagic  = 0x81
	binHeaderLen = 24
)

// Binary opcodes (subset used by memcached clients).
const (
	binGet     = 0x00
	binSet     = 0x01
	binAdd     = 0x02
	binReplace = 0x03
	binDelete  = 0x04
	binIncr    = 0x05
	binDecr    = 0x06
	binQuit    = 0x07
	binFlush   = 0x08
	binGetQ    = 0x09
	binNoop    = 0x0a
	binVersion = 0x0b
	binGetK    = 0x0c
	binGetKQ   = 0x0d
	binAppend  = 0x0e
	binPrepend = 0x0f
	binStat    = 0x10
	binSetQ    = 0x11
	binTouch   = 0x1c
	binGAT     = 0x1d
)

var binToOp = map[byte]struct {
	op    Op
	quiet bool
}{
	binGet: {OpGet, false}, binGetQ: {OpGet, true},
	binGetK: {OpGet, false}, binGetKQ: {OpGet, true},
	binSet: {OpSet, false}, binSetQ: {OpSet, true},
	binAdd: {OpAdd, false}, binReplace: {OpReplace, false},
	binDelete: {OpDelete, false},
	binIncr:   {OpIncr, false}, binDecr: {OpDecr, false},
	binQuit: {OpQuit, false}, binFlush: {OpFlushAll, false},
	binNoop: {OpNoop, false}, binVersion: {OpVersion, false},
	binAppend: {OpAppend, false}, binPrepend: {OpPrepend, false},
	binStat: {OpStats, false}, binTouch: {OpTouch, false},
	binGAT: {OpGAT, false},
}

var opToBin = map[Op]byte{
	OpGet: binGet, OpSet: binSet, OpAdd: binAdd, OpReplace: binReplace,
	OpCAS:    binSet, // CAS is a Set with a nonzero cas field
	OpDelete: binDelete, OpIncr: binIncr, OpDecr: binDecr,
	OpQuit: binQuit, OpFlushAll: binFlush, OpNoop: binNoop,
	OpVersion: binVersion, OpAppend: binAppend, OpPrepend: binPrepend,
	OpStats: binStat, OpTouch: binTouch, OpGAT: binGAT,
}

// WriteBinaryCommand encodes a request frame.
func WriteBinaryCommand(w *bufio.Writer, c *Command) error {
	opcode, ok := opToBin[c.Op]
	if !ok {
		return fmt.Errorf("protocol: op %v has no binary encoding", c.Op)
	}
	if c.Quiet {
		switch c.Op {
		case OpGet:
			opcode = binGetQ
		case OpSet:
			opcode = binSetQ
		}
	}
	var extras []byte
	switch c.Op {
	case OpSet, OpAdd, OpReplace, OpCAS, OpAppend, OpPrepend:
		if c.Op != OpAppend && c.Op != OpPrepend {
			extras = make([]byte, 8)
			binary.BigEndian.PutUint32(extras[0:], c.Flags)
			binary.BigEndian.PutUint32(extras[4:], uint32(c.Exptime))
		}
	case OpIncr, OpDecr:
		extras = make([]byte, 20)
		binary.BigEndian.PutUint64(extras[0:], c.Delta)
		binary.BigEndian.PutUint64(extras[8:], 0)           // initial value: unused
		binary.BigEndian.PutUint32(extras[16:], 0xffffffff) // no auto-vivify
	case OpTouch, OpGAT:
		extras = make([]byte, 4)
		binary.BigEndian.PutUint32(extras, uint32(c.Exptime))
	}
	var hdr [binHeaderLen]byte
	hdr[0] = binReqMagic
	hdr[1] = opcode
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(c.Key)))
	hdr[4] = byte(len(extras))
	body := len(extras) + len(c.Key) + len(c.Value)
	binary.BigEndian.PutUint32(hdr[8:], uint32(body))
	binary.BigEndian.PutUint32(hdr[12:], c.Opaque)
	binary.BigEndian.PutUint64(hdr[16:], c.CAS)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(extras); err != nil {
		return err
	}
	if _, err := w.Write(c.Key); err != nil {
		return err
	}
	_, err := w.Write(c.Value)
	return err
}

// ReadBinaryCommand decodes one request frame. io.EOF is returned verbatim
// at a clean connection end.
func ReadBinaryCommand(r *bufio.Reader) (*Command, error) {
	var hdr [binHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if hdr[0] != binReqMagic {
		return nil, fmt.Errorf("protocol: bad request magic %#x", hdr[0])
	}
	info, ok := binToOp[hdr[1]]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown binary opcode %#x", hdr[1])
	}
	keyLen := int(binary.BigEndian.Uint16(hdr[2:]))
	extLen := int(hdr[4])
	bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
	if keyLen > MaxKeyLen || bodyLen > MaxBodyLen || extLen+keyLen > bodyLen {
		return nil, fmt.Errorf("protocol: implausible frame (key=%d ext=%d body=%d)", keyLen, extLen, bodyLen)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("protocol: truncated body: %w", err)
	}
	c := &Command{
		Op:     info.op,
		Quiet:  info.quiet,
		Opaque: binary.BigEndian.Uint32(hdr[12:]),
		CAS:    binary.BigEndian.Uint64(hdr[16:]),
		Key:    body[extLen : extLen+keyLen],
		Value:  body[extLen+keyLen:],
	}
	if c.Op == OpSet && c.CAS != 0 {
		c.Op = OpCAS
	}
	switch c.Op {
	case OpSet, OpAdd, OpReplace, OpCAS:
		if extLen >= 8 {
			c.Flags = binary.BigEndian.Uint32(body[0:])
			c.Exptime = int64(binary.BigEndian.Uint32(body[4:]))
		}
	case OpIncr, OpDecr:
		if extLen >= 8 {
			c.Delta = binary.BigEndian.Uint64(body[0:])
		}
	case OpTouch, OpGAT:
		if extLen >= 4 {
			c.Exptime = int64(binary.BigEndian.Uint32(body[0:]))
		}
	}
	return c, nil
}

// WriteBinaryReply encodes a response frame. For stats, one frame per pair
// plus an empty terminator, per the protocol.
func WriteBinaryReply(w *bufio.Writer, c *Command, rep *Reply) error {
	if c.Op == OpStats {
		for _, kv := range rep.Stats {
			if err := writeBinaryResFrame(w, binStat, StatusOK, []byte(kv[0]), []byte(kv[1]), nil, rep.Opaque, 0); err != nil {
				return err
			}
		}
		return writeBinaryResFrame(w, binStat, StatusOK, nil, nil, nil, rep.Opaque, 0)
	}
	opcode := opToBin[c.Op]
	var extras, value []byte
	switch c.Op {
	case OpGet, OpGAT:
		if rep.Status == StatusOK {
			extras = make([]byte, 4)
			binary.BigEndian.PutUint32(extras, rep.Flags)
			value = rep.Value
		}
	case OpIncr, OpDecr:
		if rep.Status == StatusOK {
			value = make([]byte, 8)
			binary.BigEndian.PutUint64(value, rep.Numeric)
		}
	case OpVersion:
		value = []byte(rep.Version)
	}
	if rep.Status == StatusTempFailure && rep.Message != "" {
		// Binary error frames carry their detail in the value, matching
		// memcached's convention for non-OK statuses.
		value = []byte(rep.Message)
	}
	return writeBinaryResFrame(w, opcode, rep.Status, nil, value, extras, rep.Opaque, rep.CAS)
}

func writeBinaryResFrame(w *bufio.Writer, opcode byte, status Status, key, value, extras []byte, opaque uint32, cas uint64) error {
	var hdr [binHeaderLen]byte
	hdr[0] = binResMagic
	hdr[1] = opcode
	binary.BigEndian.PutUint16(hdr[2:], uint16(len(key)))
	hdr[4] = byte(len(extras))
	binary.BigEndian.PutUint16(hdr[6:], uint16(status))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(extras)+len(key)+len(value)))
	binary.BigEndian.PutUint32(hdr[12:], opaque)
	binary.BigEndian.PutUint64(hdr[16:], cas)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(extras); err != nil {
		return err
	}
	if _, err := w.Write(key); err != nil {
		return err
	}
	_, err := w.Write(value)
	return err
}

// ReadBinaryReply decodes one response frame (client side). For stats the
// caller keeps reading until the empty terminating frame.
func ReadBinaryReply(r *bufio.Reader) (*Reply, byte, error) {
	var hdr [binHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err
	}
	if hdr[0] != binResMagic {
		return nil, 0, fmt.Errorf("protocol: bad response magic %#x", hdr[0])
	}
	opcode := hdr[1]
	keyLen := int(binary.BigEndian.Uint16(hdr[2:]))
	extLen := int(hdr[4])
	bodyLen := int(binary.BigEndian.Uint32(hdr[8:]))
	if bodyLen > MaxBodyLen || extLen+keyLen > bodyLen {
		return nil, 0, fmt.Errorf("protocol: implausible response frame")
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, err
	}
	rep := &Reply{
		Status: Status(binary.BigEndian.Uint16(hdr[6:])),
		Opaque: binary.BigEndian.Uint32(hdr[12:]),
		CAS:    binary.BigEndian.Uint64(hdr[16:]),
		Key:    body[extLen : extLen+keyLen],
		Value:  body[extLen+keyLen:],
	}
	switch opcode {
	case binGet, binGetQ, binGetK, binGetKQ, binGAT:
		if extLen >= 4 {
			rep.Flags = binary.BigEndian.Uint32(body[0:])
		}
	case binIncr, binDecr:
		if rep.Status == StatusOK && len(rep.Value) == 8 {
			rep.Numeric = binary.BigEndian.Uint64(rep.Value)
			rep.Value = nil
		}
	case binVersion:
		rep.Version = string(rep.Value)
		rep.Value = nil
	}
	return rep, opcode, nil
}
