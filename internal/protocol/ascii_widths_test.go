package protocol

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// Pre-fix, the ASCII storage parser read flags with a 64-bit parse and
// truncated with uint32(), so "set k 4294967296 0 1" silently stored
// flags=0. These tests pin the wire widths: flags is uint32, exptime is
// int32, and anything wider is a command-line format error.

func parseOne(t *testing.T, s string) (*Command, error) {
	t.Helper()
	return ReadASCIICommand(bufio.NewReader(bytes.NewReader([]byte(s))))
}

func TestASCIIFlagsWidth(t *testing.T) {
	// 2^32 must be rejected, not wrapped to 0.
	if c, err := parseOne(t, "set k 4294967296 0 1\r\nv\r\n"); err == nil {
		t.Fatalf("flags 2^32 accepted, parsed as %d", c.Flags)
	} else if !strings.Contains(err.Error(), "bad command line format") {
		t.Fatalf("flags overflow error = %v, want bad command line format", err)
	}
	// The boundary value still fits.
	c, err := parseOne(t, "set k 4294967295 0 1\r\nv\r\n")
	if err != nil {
		t.Fatalf("flags 2^32-1 rejected: %v", err)
	}
	if c.Flags != 4294967295 {
		t.Fatalf("flags = %d, want 4294967295", c.Flags)
	}
	// Same check for every storage command, including cas.
	for _, cmd := range []string{"add", "replace", "append", "prepend"} {
		if _, err := parseOne(t, cmd+" k 4294967296 0 1\r\nv\r\n"); err == nil {
			t.Errorf("%s: flags 2^32 accepted", cmd)
		}
	}
	if _, err := parseOne(t, "cas k 4294967296 0 1 7\r\nv\r\n"); err == nil {
		t.Error("cas: flags 2^32 accepted")
	}
}

func TestASCIIExptimeWidth(t *testing.T) {
	// Out-of-int32 exptimes are malformed, in both directions.
	for _, exp := range []string{"2147483648", "-2147483649", "99999999999"} {
		if _, err := parseOne(t, fmt.Sprintf("set k 0 %s 1\r\nv\r\n", exp)); err == nil {
			t.Errorf("set exptime %s accepted", exp)
		}
		if _, err := parseOne(t, fmt.Sprintf("touch k %s\r\n", exp)); err == nil {
			t.Errorf("touch exptime %s accepted", exp)
		}
		if _, err := parseOne(t, fmt.Sprintf("gat %s k\r\n", exp)); err == nil {
			t.Errorf("gat exptime %s accepted", exp)
		}
	}
	// In-range values, including the memcached "never expire again" -1,
	// still parse.
	for _, exp := range []string{"-1", "0", "2147483647", "-2147483648"} {
		if _, err := parseOne(t, fmt.Sprintf("set k 0 %s 1\r\nv\r\n", exp)); err != nil {
			t.Errorf("set exptime %s rejected: %v", exp, err)
		}
		if _, err := parseOne(t, fmt.Sprintf("touch k %s\r\n", exp)); err != nil {
			t.Errorf("touch exptime %s rejected: %v", exp, err)
		}
	}
}

// Pre-fix, ReadASCIIReply ignored the error from parsing the VALUE line's
// flags (and CAS) field, so a corrupt server reply silently became
// flags=0 / cas=0. Both must now be protocol errors.
func TestASCIIReplyRejectsBadValueLine(t *testing.T) {
	get := &Command{Op: OpGet, Key: []byte("k")}
	bad := []string{
		"VALUE k notanumber 1 7\r\nv\r\nEND\r\n", // non-numeric flags
		"VALUE k 4294967296 1 7\r\nv\r\nEND\r\n", // flags over uint32
		"VALUE k 0 1 notacas\r\nv\r\nEND\r\n",    // non-numeric cas
		"VALUE k 0 1 -2\r\nv\r\nEND\r\n",         // negative cas
	}
	for _, s := range bad {
		if rep, err := ReadASCIIReply(bufio.NewReader(bytes.NewReader([]byte(s))), get); err == nil {
			t.Errorf("corrupt reply %q accepted: %+v", s, rep)
		}
	}
	// A well-formed line still parses, flags and cas intact.
	rep, err := ReadASCIIReply(bufio.NewReader(bytes.NewReader(
		[]byte("VALUE k 4294967295 1 9\r\nv\r\nEND\r\n"))), get)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Flags != 4294967295 || rep.CAS != 9 || string(rep.Value) != "v" {
		t.Fatalf("reply = %+v", rep)
	}
}
