package protocol

import (
	"bufio"
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func binRoundtripCmd(t *testing.T, c *Command) *Command {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteBinaryCommand(w, c); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	back, err := ReadBinaryCommand(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestBinaryCommandRoundtrip(t *testing.T) {
	cases := []*Command{
		{Op: OpGet, Key: []byte("k"), Opaque: 7},
		{Op: OpSet, Key: []byte("key"), Value: []byte("value"), Flags: 42, Exptime: 99, Opaque: 1},
		{Op: OpAdd, Key: []byte("k"), Value: []byte("v")},
		{Op: OpReplace, Key: []byte("k"), Value: []byte("v")},
		{Op: OpCAS, Key: []byte("k"), Value: []byte("v"), CAS: 1234},
		{Op: OpDelete, Key: []byte("k")},
		{Op: OpIncr, Key: []byte("n"), Delta: 5},
		{Op: OpDecr, Key: []byte("n"), Delta: 3},
		{Op: OpAppend, Key: []byte("k"), Value: []byte("x")},
		{Op: OpPrepend, Key: []byte("k"), Value: []byte("x")},
		{Op: OpTouch, Key: []byte("k"), Exptime: 55},
		{Op: OpFlushAll},
		{Op: OpStats},
		{Op: OpVersion},
		{Op: OpNoop},
		{Op: OpQuit},
		{Op: OpGet, Key: []byte("k"), Quiet: true},
	}
	for _, c := range cases {
		back := binRoundtripCmd(t, c)
		if back.Op != c.Op {
			t.Errorf("%v: op came back %v", c.Op, back.Op)
		}
		if !bytes.Equal(back.Key, c.Key) || !bytes.Equal(back.Value, c.Value) {
			t.Errorf("%v: key/value mismatch", c.Op)
		}
		if back.Flags != c.Flags && (c.Op == OpSet || c.Op == OpAdd) {
			t.Errorf("%v: flags %d != %d", c.Op, back.Flags, c.Flags)
		}
		if back.Exptime != c.Exptime && (c.Op == OpSet || c.Op == OpTouch) {
			t.Errorf("%v: exptime %d != %d", c.Op, back.Exptime, c.Exptime)
		}
		if back.Delta != c.Delta || back.CAS != c.CAS || back.Opaque != c.Opaque || back.Quiet != c.Quiet {
			t.Errorf("%v: fields mismatch: %+v vs %+v", c.Op, back, c)
		}
	}
}

// Property: any key/value/flags/exptime survives a binary set roundtrip.
func TestQuickBinarySetRoundtrip(t *testing.T) {
	f := func(key []byte, value []byte, flags uint32, exp uint32, opaque uint32, cas uint64) bool {
		if len(key) == 0 || len(key) > MaxKeyLen {
			return true
		}
		c := &Command{Op: OpSet, Key: key, Value: value, Flags: flags,
			Exptime: int64(exp), Opaque: opaque, CAS: cas}
		back := binRoundtripCmd(t, c)
		wantOp := OpSet
		if cas != 0 {
			wantOp = OpCAS // nonzero CAS on a binary set decodes as CAS
		}
		return back.Op == wantOp && bytes.Equal(back.Key, key) &&
			bytes.Equal(back.Value, value) && back.Flags == flags &&
			back.Exptime == int64(exp) && back.Opaque == opaque && back.CAS == cas
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryReplyRoundtrip(t *testing.T) {
	cases := []struct {
		c   *Command
		rep *Reply
	}{
		{&Command{Op: OpGet, Key: []byte("k")}, &Reply{Status: StatusOK, Value: []byte("hello"), Flags: 9, CAS: 77, Opaque: 3}},
		{&Command{Op: OpGet, Key: []byte("k")}, &Reply{Status: StatusKeyNotFound}},
		{&Command{Op: OpSet, Key: []byte("k")}, &Reply{Status: StatusOK, CAS: 5}},
		{&Command{Op: OpIncr, Key: []byte("n")}, &Reply{Status: StatusOK, Numeric: 123456}},
		{&Command{Op: OpDelete, Key: []byte("k")}, &Reply{Status: StatusKeyNotFound}},
		{&Command{Op: OpVersion}, &Reply{Status: StatusOK, Version: "1.6-plib"}},
	}
	for _, cse := range cases {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteBinaryReply(w, cse.c, cse.rep); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		back, _, err := ReadBinaryReply(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if back.Status != cse.rep.Status {
			t.Errorf("%v: status %v != %v", cse.c.Op, back.Status, cse.rep.Status)
		}
		if !bytes.Equal(back.Value, cse.rep.Value) && cse.c.Op == OpGet {
			t.Errorf("get value %q != %q", back.Value, cse.rep.Value)
		}
		if back.Numeric != cse.rep.Numeric || back.Version != cse.rep.Version {
			t.Errorf("%v: numeric/version mismatch", cse.c.Op)
		}
	}
}

func TestBinaryStatsFrames(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	rep := &Reply{Status: StatusOK, Stats: [][2]string{{"curr_items", "5"}, {"bytes", "1000"}}}
	if err := WriteBinaryReply(w, &Command{Op: OpStats}, rep); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := bufio.NewReader(&buf)
	var got [][2]string
	for {
		rep, _, err := ReadBinaryReply(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Key) == 0 {
			break
		}
		got = append(got, [2]string{string(rep.Key), string(rep.Value)})
	}
	if len(got) != 2 || got[0][0] != "curr_items" || got[1][1] != "1000" {
		t.Fatalf("stats = %v", got)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinaryCommand(bufio.NewReader(bytes.NewReader([]byte("GET / HTTP/1.1\r\n\r\n........")))); err == nil {
		t.Fatal("HTTP garbage should be rejected")
	}
	// Truncated header.
	if _, err := ReadBinaryCommand(bufio.NewReader(bytes.NewReader([]byte{0x80, 0x01}))); err == nil {
		t.Fatal("truncated header should error")
	}
	// Clean EOF.
	if _, err := ReadBinaryCommand(bufio.NewReader(bytes.NewReader(nil))); err != io.EOF {
		t.Fatal("empty stream should be io.EOF")
	}
	// Implausible body length.
	hdr := make([]byte, 24)
	hdr[0] = 0x80
	hdr[1] = 0x01
	hdr[8] = 0xFF // bodylen ~ 4 GiB
	if _, err := ReadBinaryCommand(bufio.NewReader(bytes.NewReader(hdr))); err == nil {
		t.Fatal("absurd body length should be rejected")
	}
}

func asciiRoundtrip(t *testing.T, c *Command) *Command {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteASCIICommand(w, c); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	back, err := ReadASCIICommand(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("%v: %v (wire: %q)", c.Op, err, buf.String())
	}
	return back
}

func TestASCIICommandRoundtrip(t *testing.T) {
	cases := []*Command{
		{Op: OpGet, Key: []byte("akey")},
		{Op: OpSet, Key: []byte("k"), Value: []byte("some value with spaces"), Flags: 3, Exptime: 60},
		{Op: OpSet, Key: []byte("k"), Value: []byte("v"), Quiet: true},
		{Op: OpAdd, Key: []byte("k"), Value: []byte("v")},
		{Op: OpReplace, Key: []byte("k"), Value: []byte("")},
		{Op: OpCAS, Key: []byte("k"), Value: []byte("v"), CAS: 99},
		{Op: OpAppend, Key: []byte("k"), Value: []byte("tail")},
		{Op: OpPrepend, Key: []byte("k"), Value: []byte("head")},
		{Op: OpDelete, Key: []byte("k")},
		{Op: OpIncr, Key: []byte("n"), Delta: 10},
		{Op: OpDecr, Key: []byte("n"), Delta: 2},
		{Op: OpTouch, Key: []byte("k"), Exptime: 30},
		{Op: OpFlushAll},
		{Op: OpStats},
		{Op: OpVersion},
		{Op: OpQuit},
	}
	for _, c := range cases {
		back := asciiRoundtrip(t, c)
		if back.Op != c.Op || !bytes.Equal(back.Key, c.Key) || !bytes.Equal(back.Value, c.Value) {
			t.Errorf("%v: roundtrip mismatch: %+v", c.Op, back)
		}
		if back.Flags != c.Flags || back.Exptime != c.Exptime || back.Delta != c.Delta ||
			back.CAS != c.CAS || back.Quiet != c.Quiet {
			t.Errorf("%v: field mismatch: %+v vs %+v", c.Op, back, c)
		}
	}
}

// Property: ASCII data blocks are binary safe — any payload, including CRLF
// and control bytes, survives (length-prefixed framing).
func TestQuickASCIIBinarySafeValues(t *testing.T) {
	f := func(value []byte) bool {
		c := &Command{Op: OpSet, Key: []byte("k"), Value: value}
		back := asciiRoundtrip(t, c)
		return bytes.Equal(back.Value, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIReplyRoundtrip(t *testing.T) {
	type tc struct {
		c   *Command
		rep *Reply
	}
	cases := []tc{
		{&Command{Op: OpGet, Key: []byte("k")}, &Reply{Status: StatusOK, Value: []byte("v\r\nwith crlf"), Flags: 7, CAS: 3}},
		{&Command{Op: OpGet, Key: []byte("k")}, &Reply{Status: StatusKeyNotFound}},
		{&Command{Op: OpSet, Key: []byte("k")}, &Reply{Status: StatusOK}},
		{&Command{Op: OpAdd, Key: []byte("k")}, &Reply{Status: StatusKeyExists}},
		{&Command{Op: OpCAS, Key: []byte("k")}, &Reply{Status: StatusKeyExists}},
		{&Command{Op: OpCAS, Key: []byte("k")}, &Reply{Status: StatusKeyNotFound}},
		{&Command{Op: OpDelete, Key: []byte("k")}, &Reply{Status: StatusOK}},
		{&Command{Op: OpDelete, Key: []byte("k")}, &Reply{Status: StatusKeyNotFound}},
		{&Command{Op: OpIncr, Key: []byte("n")}, &Reply{Status: StatusOK, Numeric: 41}},
		{&Command{Op: OpTouch, Key: []byte("k")}, &Reply{Status: StatusOK}},
		{&Command{Op: OpFlushAll}, &Reply{Status: StatusOK}},
		{&Command{Op: OpStats}, &Reply{Status: StatusOK, Stats: [][2]string{{"pid", "1"}, {"uptime", "2 3"}}}},
		{&Command{Op: OpVersion}, &Reply{Status: StatusOK, Version: "1.6-plib"}},
	}
	for _, cse := range cases {
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteASCIIReply(w, cse.c, cse.rep); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		back, err := ReadASCIIReply(bufio.NewReader(&buf), cse.c)
		if err != nil {
			t.Fatalf("%v/%v: %v (wire %q)", cse.c.Op, cse.rep.Status, err, buf.String())
		}
		if back.Status != cse.rep.Status {
			t.Errorf("%v: status %v, want %v (wire %q)", cse.c.Op, back.Status, cse.rep.Status, buf.String())
		}
		if cse.c.Op == OpGet && cse.rep.Status == StatusOK {
			if !bytes.Equal(back.Value, cse.rep.Value) || back.Flags != cse.rep.Flags || back.CAS != cse.rep.CAS {
				t.Errorf("get reply mismatch: %+v", back)
			}
		}
		if back.Numeric != cse.rep.Numeric || back.Version != cse.rep.Version {
			t.Errorf("%v: numeric/version mismatch", cse.c.Op)
		}
		if len(back.Stats) != len(cse.rep.Stats) {
			t.Errorf("stats length %d != %d", len(back.Stats), len(cse.rep.Stats))
		}
	}
}

func TestASCIIRejectsMalformed(t *testing.T) {
	bad := []string{
		"\r\n",
		"bogus cmd\r\n",
		"set k\r\n",
		"set k notanumber 0 5\r\nhello\r\n",
		"set k 0 0 99999999999\r\n",
		"incr k\r\n",
		"incr k abc\r\n",
		"touch k\r\n",
		"delete\r\n",
		"set k 0 0 5\r\nhelloXX", // bad terminator
	}
	for _, s := range bad {
		if _, err := ReadASCIICommand(bufio.NewReader(bytes.NewReader([]byte(s)))); err == nil {
			t.Errorf("malformed %q accepted", s)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusKeyNotFound, StatusKeyExists,
		StatusValueTooLarge, StatusInvalidArgs, StatusNotStored, StatusNonNumeric,
		StatusUnknownCommand, StatusOutOfMemory, Status(999)} {
		if s.String() == "" {
			t.Errorf("empty string for status %d", uint16(s))
		}
	}
	for op := OpGet; op <= OpQuit; op++ {
		if op.String() == "" {
			t.Errorf("empty name for op %d", op)
		}
	}
}
