package ralloc

import "plibmc/internal/faultpoint"

// Crash-injection sites for the recovery fault matrix. Both sit after the
// allocator's own state transitions complete, so a thread dying there
// leaks the block (the accounting stays within Check's tolerance) but
// never leaves a chunk-directory word in a transient state.
var (
	fpMallocCarved = faultpoint.New("ralloc.malloc.carved") // block obtained, about to be returned
	fpFreeEnter    = faultpoint.New("ralloc.free.enter")    // caller unlinked the block, free not started
)

// Global free lists.
//
// Each size class has a heap-resident Treiber stack of free blocks. The
// head word packs a 16-bit ABA tag with a 48-bit block offset; each free
// block's first word holds the offset of the next free block (plain heap
// offsets are position independent, so the lists survive remapping and
// restart). Push and pop are single-CAS and lock-free, which is what lets
// the paper call Ralloc "entirely nonblocking"; the one exception here is
// the multi-chunk large path, which takes a spinlock because it must find
// contiguous chunks (large allocations are rare in memcached — hash tables
// and little else).

const (
	tagShift = 48
	offMask  = (uint64(1) << tagShift) - 1
)

func packHead(tag, off uint64) uint64 { return tag<<tagShift | off&offMask }
func headOff(h uint64) uint64         { return h & offMask }
func headTag(h uint64) uint64         { return h >> tagShift }

// pushChain atomically pushes the chain first..last (already linked through
// their first words) onto class ci's global free list.
func (a *Allocator) pushChain(ci int, first, last uint64) {
	headAddr := offClassHead + uint64(ci)*8
	for {
		old := a.h.AtomicLoad64(headAddr)
		a.h.Store64(last, headOff(old))
		if a.h.CAS64(headAddr, old, packHead(headTag(old)+1, first)) {
			return
		}
	}
}

// pop removes one block from class ci's global free list, returning 0 if
// the list is empty.
func (a *Allocator) pop(ci int) uint64 {
	headAddr := offClassHead + uint64(ci)*8
	for {
		old := a.h.AtomicLoad64(headAddr)
		off := headOff(old)
		if off == 0 {
			return 0
		}
		next := a.h.Load64(off)
		if a.h.CAS64(headAddr, old, packHead(headTag(old)+1, next)) {
			return off
		}
	}
}

// carveChunk claims a free chunk for class ci and shatters it into blocks.
// It returns the chain (first, last, count) of carved blocks, or first == 0
// if the heap has no free chunks. Claiming is a single CAS on the directory
// word, so this path is lock-free too.
func (a *Allocator) carveChunk(ci int) (first, last, count uint64) {
	idx, ok := a.claimChunk(uint64(ci) + 1)
	if !ok {
		return 0, 0, 0
	}
	base := a.chunkOff + idx*ChunkSize
	size := classSizes[ci]
	n := uint64(ChunkSize) / size
	// Link the blocks front to back through their first words.
	for i := uint64(0); i < n-1; i++ {
		a.h.Store64(base+i*size, base+(i+1)*size)
	}
	a.h.Store64(base+(n-1)*size, 0)
	return base, base + (n-1)*size, n
}

// claimChunk finds a free chunk and CASes its directory word to word,
// returning its index. The rotating hint makes the scan amortized O(1).
func (a *Allocator) claimChunk(word uint64) (uint64, bool) {
	start := a.h.AtomicLoad64(offNextChunk) % a.nChunks
	for i := uint64(0); i < a.nChunks; i++ {
		idx := (start + i) % a.nChunks
		dirAddr := a.chunkDir + idx*8
		if a.h.AtomicLoad64(dirAddr) == dirFree && a.h.CAS64(dirAddr, dirFree, word) {
			a.h.AtomicStore64(offNextChunk, idx+1)
			return idx, true
		}
	}
	return 0, false
}

// Per-thread cache.

const (
	cacheRefill = 32 // blocks fetched from the global list per miss
	cacheMax    = 64 // blocks held per class before flushing half
)

// Cache is a per-thread allocation cache (Ralloc's thread-local caches,
// the main source of its scalability). A Cache must be used by a single
// thread; create one per client thread with NewCache and Flush it when the
// thread is done so cached blocks return to the shared lists.
type Cache struct {
	a     *Allocator
	lists [numClasses][]uint64
}

// NewCache creates a per-thread cache over the allocator.
func (a *Allocator) NewCache() *Cache {
	return &Cache{a: a}
}

// Malloc allocates n bytes from the shared heap and returns its heap
// offset. The block is 8-aligned and its contents are unspecified
// (like malloc).
func (c *Cache) Malloc(n uint64) (uint64, error) {
	if n == 0 {
		n = 1
	}
	ci := classFor(n)
	if ci < 0 {
		return c.a.largeAlloc(n)
	}
	l := c.lists[ci]
	if len(l) == 0 {
		if !c.refill(ci) {
			return 0, ErrOutOfMemory
		}
		l = c.lists[ci]
	}
	off := l[len(l)-1]
	c.lists[ci] = l[:len(l)-1]
	c.a.h.Add64(offLiveBytes, classSizes[ci])
	fpMallocCarved.Maybe()
	return off, nil
}

// Calloc allocates n bytes and zeroes them (pm_calloc).
func (c *Cache) Calloc(n uint64) (uint64, error) {
	off, err := c.Malloc(n)
	if err != nil {
		return 0, err
	}
	c.a.h.Zero(off, n)
	return off, nil
}

// refill pulls blocks for class ci from the global free list, carving a new
// chunk if the list is dry.
func (c *Cache) refill(ci int) bool {
	for i := 0; i < cacheRefill; i++ {
		off := c.a.pop(ci)
		if off == 0 {
			break
		}
		c.lists[ci] = append(c.lists[ci], off)
	}
	if len(c.lists[ci]) > 0 {
		return true
	}
	first, _, count := c.a.carveChunk(ci)
	if first == 0 {
		return false
	}
	// Keep up to cacheRefill blocks; chain-push the remainder globally.
	kept := uint64(0)
	off := first
	for off != 0 && kept < cacheRefill && kept < count {
		next := c.a.h.Load64(off)
		c.lists[ci] = append(c.lists[ci], off)
		kept++
		off = next
	}
	if off != 0 {
		// off begins the remainder chain; find its tail.
		last := off
		for {
			next := c.a.h.Load64(last)
			if next == 0 {
				break
			}
			last = next
		}
		c.a.pushChain(ci, off, last)
	}
	return true
}

// Free returns the block at off to the heap. Freeing an offset that is not
// the base of a live block returns ErrBadFree and leaves the heap intact.
func (c *Cache) Free(off uint64) error {
	fpFreeEnter.Maybe()
	ci, word := c.a.chunkOf(off)
	if ci < 0 {
		return ErrBadFree
	}
	switch {
	case word == dirFree || word == dirClaimed || word&dirContBit != 0:
		return ErrBadFree
	case word&dirLargeBit != 0:
		return c.a.largeFree(off, word)
	}
	class := int(word - 1)
	size := classSizes[class]
	chunkBase := c.a.chunkOff + (off-c.a.chunkOff)/ChunkSize*ChunkSize
	if (off-chunkBase)%size != 0 {
		return ErrBadFree
	}
	c.lists[class] = append(c.lists[class], off)
	c.a.h.Add64(offLiveBytes, ^(size - 1)) // subtract size
	if len(c.lists[class]) > cacheMax {
		c.spill(class)
	}
	return nil
}

// spill pushes the older half of a class's cache back to the global list.
func (c *Cache) spill(class int) {
	l := c.lists[class]
	half := l[:len(l)/2]
	c.lists[class] = append([]uint64(nil), l[len(l)/2:]...)
	for i := 0; i < len(half)-1; i++ {
		c.a.h.Store64(half[i], half[i+1])
	}
	c.a.h.Store64(half[len(half)-1], 0)
	c.a.pushChain(class, half[0], half[len(half)-1])
}

// Flush returns every cached block to the global free lists. Call it when
// the owning thread exits.
func (c *Cache) Flush() {
	for class := range c.lists {
		l := c.lists[class]
		if len(l) == 0 {
			continue
		}
		for i := 0; i < len(l)-1; i++ {
			c.a.h.Store64(l[i], l[i+1])
		}
		c.a.h.Store64(l[len(l)-1], 0)
		c.a.pushChain(class, l[0], l[len(l)-1])
		c.lists[class] = nil
	}
}

// Large allocations: whole chunks, found under the allocation lock.

func (a *Allocator) largeAlloc(n uint64) (uint64, error) {
	count := (n + ChunkSize - 1) / ChunkSize
	a.h.LockAcquire(offAllocLock, 1)
	defer a.h.LockRelease(offAllocLock)
	run := uint64(0)
	for idx := uint64(0); idx < a.nChunks; idx++ {
		if a.h.AtomicLoad64(a.chunkDir+idx*8) != dirFree {
			run = 0
			continue
		}
		run++
		if run == count {
			start := idx - count + 1
			a.h.AtomicStore64(a.chunkDir+start*8, dirLargeBit|count)
			for j := start + 1; j <= idx; j++ {
				a.h.AtomicStore64(a.chunkDir+j*8, dirContBit|start)
			}
			a.h.Add64(offLiveBytes, count*ChunkSize)
			return a.chunkOff + start*ChunkSize, nil
		}
	}
	return 0, ErrOutOfMemory
}

func (a *Allocator) largeFree(off, word uint64) error {
	if (off-a.chunkOff)%ChunkSize != 0 {
		return ErrBadFree
	}
	count := word &^ dirLargeBit
	start := (off - a.chunkOff) / ChunkSize
	a.h.LockAcquire(offAllocLock, 1)
	defer a.h.LockRelease(offAllocLock)
	for j := start; j < start+count; j++ {
		a.h.AtomicStore64(a.chunkDir+j*8, dirFree)
	}
	a.h.Add64(offLiveBytes, ^(count*ChunkSize - 1))
	return nil
}
