package ralloc

import "fmt"

// Heap verification — the fsck of the shared heap.
//
// A heap shared by independently failing processes deserves an integrity
// checker: Check walks every allocator structure and validates its
// invariants. The bookkeeping process can run it after reloading an image
// (or on demand via cmd/plibdump) before letting clients attach. Check
// requires a quiescent heap: no concurrent allocation.

// CheckReport summarizes a verification pass.
type CheckReport struct {
	FreeChunks  int
	ClassChunks int
	LargeChunks int
	FreeBlocks  int
	// LiveBytes is the counter's value; LiveBlockEstimate is what the
	// walk implies (capacity minus free space).
	LiveBytes uint64
	// LiveRoots counts the nonzero persistent roots (all verified to be
	// live block bases).
	LiveRoots int
}

// Check validates the allocator's invariants and returns a summary, or an
// error describing the first corruption found:
//
//   - every chunk-directory word is a valid state (free, a known class,
//     or a well-formed large run with continuation markers);
//   - every class free list is acyclic, stays in bounds, visits only
//     blocks of chunks belonging to that class, and each block is
//     properly aligned within its chunk;
//   - no free block appears on two lists (or twice on one);
//   - the live-bytes counter is consistent with the walk: live = capacity
//     − free-listed − unused space in free chunks (cached per-thread
//     blocks count as live here, so live-bytes ≤ counter implies leaked
//     caches rather than corruption and is reported, not fatal).
func (a *Allocator) Check() (*CheckReport, error) {
	rep := &CheckReport{}
	h := a.h

	// Pass 1: the chunk directory.
	chunkClass := make([]int, a.nChunks) // -1 free, -2 large, else class
	i := uint64(0)
	for i < a.nChunks {
		word := h.AtomicLoad64(a.chunkDir + i*8)
		switch {
		case word == dirFree:
			chunkClass[i] = -1
			rep.FreeChunks++
			i++
		case word == dirClaimed:
			return nil, fmt.Errorf("ralloc: chunk %d stuck in transient claimed state", i)
		case word&dirLargeBit != 0 && word&dirContBit == 0:
			count := word &^ dirLargeBit
			if count == 0 || i+count > a.nChunks {
				return nil, fmt.Errorf("ralloc: large run at chunk %d has bad length %d", i, count)
			}
			chunkClass[i] = -2
			rep.LargeChunks += int(count)
			for j := i + 1; j < i+count; j++ {
				w := h.AtomicLoad64(a.chunkDir + j*8)
				if w&dirContBit == 0 || w&^(dirContBit) != i {
					return nil, fmt.Errorf("ralloc: chunk %d is not a continuation of the large run at %d", j, i)
				}
				chunkClass[j] = -2
			}
			i += count
		case word&dirContBit != 0:
			return nil, fmt.Errorf("ralloc: orphan continuation chunk %d", i)
		default:
			ci := int(word) - 1
			if ci < 0 || ci >= numClasses {
				return nil, fmt.Errorf("ralloc: chunk %d has invalid class word %#x", i, word)
			}
			chunkClass[i] = ci
			rep.ClassChunks++
			i++
		}
	}

	// Pass 2: the class free lists.
	seen := make(map[uint64]bool)
	var freeBytes uint64
	for ci := 0; ci < numClasses; ci++ {
		size := classSizes[ci]
		head := headOff(h.AtomicLoad64(offClassHead + uint64(ci)*8))
		steps := 0
		maxSteps := int(a.Capacity()/size) + 1
		for off := head; off != 0; off = h.Load64(off) {
			if steps++; steps > maxSteps {
				return nil, fmt.Errorf("ralloc: class %d free list has a cycle", ci)
			}
			if off < a.chunkOff || off >= a.chunkOff+a.nChunks*ChunkSize {
				return nil, fmt.Errorf("ralloc: class %d free list points outside the chunk area (%#x)", ci, off)
			}
			chunk := (off - a.chunkOff) / ChunkSize
			if chunkClass[chunk] != ci {
				return nil, fmt.Errorf("ralloc: class %d free block %#x lies in chunk %d of class %d", ci, off, chunk, chunkClass[chunk])
			}
			base := a.chunkOff + chunk*ChunkSize
			if (off-base)%size != 0 {
				return nil, fmt.Errorf("ralloc: class %d free block %#x misaligned in its chunk", ci, off)
			}
			if seen[off] {
				return nil, fmt.Errorf("ralloc: block %#x appears twice on free lists", off)
			}
			seen[off] = true
			rep.FreeBlocks++
			freeBytes += size
		}
	}

	// Pass 3: accounting. Blocks parked in per-thread caches are neither
	// free-listed nor live-counted at user level, so the walk provides a
	// lower bound on free space, i.e. an upper bound on live bytes.
	rep.LiveBytes = a.LiveBytes()
	upperLive := a.Capacity() - freeBytes - uint64(rep.FreeChunks)*ChunkSize
	if rep.LiveBytes > upperLive {
		return nil, fmt.Errorf("ralloc: live-bytes counter %d exceeds the %d implied by free space",
			rep.LiveBytes, upperLive)
	}

	// Pass 4: persistent roots. Everything a reopened heap can reach hangs
	// off these — the store's config block, lock arrays, hash-table cell,
	// latency-histogram matrix — so a nonzero root that is not the base of
	// a live block means every structure behind it is garbage. Catch that
	// here, before an attach dereferences it.
	for r := 0; r < NumRoots; r++ {
		root := a.GetRoot(r)
		if root == 0 {
			continue
		}
		if a.BlockAt(root) == 0 {
			return nil, fmt.Errorf("ralloc: root %d points at %#x, which is not a live block base", r, root)
		}
		rep.LiveRoots++
	}
	return rep, nil
}
