package ralloc

import (
	"math/rand"
	"testing"

	"plibmc/internal/shm"
)

// The paper's reason for adopting Ralloc over the slab allocator: "it
// partitions blocks of different sizes into separate superblocks, leading
// to low internal fragmentation and no external fragmentation for the
// block sizes used in memcached." These tests verify both claims hold for
// this reimplementation.

// TestInternalFragmentationBound: for every size class, the rounding waste
// is below 50% (geometric classes) and below 34% for the memcached-typical
// sizes the paper cares about.
func TestInternalFragmentationBound(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<22)
	c := a.NewCache()
	worst := 0.0
	// Start at the minimum block size: below it the absolute waste is a
	// few bytes and the ratio is meaningless.
	for n := uint64(16); n <= MaxSmall; n = n*9/8 + 1 {
		off, err := c.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		got := a.SizeOf(off)
		waste := float64(got-n) / float64(got)
		if waste > worst {
			worst = waste
		}
		if waste > 0.5 {
			t.Fatalf("request %d -> block %d: %.0f%% internal fragmentation", n, got, waste*100)
		}
		c.Free(off)
	}
	t.Logf("worst internal fragmentation over the sweep: %.1f%%", worst*100)

	// The memcached item sizes of the paper's workloads specifically.
	for _, n := range []uint64{72 + 24 + 128, 72 + 24 + 5120} { // header+key+value
		off, _ := c.Malloc(n)
		got := a.SizeOf(off)
		if waste := float64(got-n) / float64(got); waste > 0.34 {
			t.Fatalf("paper workload size %d: %.0f%% waste", n, waste*100)
		}
		c.Free(off)
	}
}

// TestNoExternalFragmentation: after heavy churn of mixed sizes, freeing
// everything makes the full capacity allocatable again in any class —
// chunks are never stranded in unusable states.
func TestNoExternalFragmentation(t *testing.T) {
	h := shm.New(1 << 22)
	a, err := Format(h)
	if err != nil {
		t.Fatal(err)
	}
	c := a.NewCache()
	rng := rand.New(rand.NewSource(11))
	sizes := []uint64{16, 100, 700, 3000, 16000}

	for round := 0; round < 5; round++ {
		var live []uint64
		// Fill with a random mix until exhaustion.
		for {
			n := sizes[rng.Intn(len(sizes))]
			off, err := c.Malloc(n)
			if err != nil {
				break
			}
			live = append(live, off)
		}
		if len(live) == 0 {
			t.Fatal("nothing allocated")
		}
		for _, off := range live {
			if err := c.Free(off); err != nil {
				t.Fatal(err)
			}
		}
		c.Flush()
		if a.LiveBytes() != 0 {
			t.Fatalf("round %d: %d live bytes after freeing all", round, a.LiveBytes())
		}
	}

	// After the churn, Reclaim returns every fully-free chunk to the
	// shared pool, so a large allocation — which needs whole free chunks,
	// the strictest test — can claim essentially the entire heap.
	if n := a.Reclaim(); n == 0 {
		t.Fatal("Reclaim found nothing after freeing everything")
	}
	total := uint64(0)
	var big []uint64
	for {
		off, err := c.Malloc(3 * ChunkSize)
		if err != nil {
			break
		}
		big = append(big, off)
		total += 3 * ChunkSize
	}
	if total < a.Capacity()-3*ChunkSize {
		t.Fatalf("only %d of %d bytes reclaimable as large runs after Reclaim", total, a.Capacity())
	}
	for _, off := range big {
		c.Free(off)
	}
	smallTotal := uint64(0)
	for {
		off, err := c.Malloc(16000)
		if err != nil {
			break
		}
		smallTotal += a.SizeOf(off)
		_ = off
	}
	if smallTotal < a.Capacity()/2 {
		t.Fatalf("only %d of %d bytes reclaimable in a churned class", smallTotal, a.Capacity())
	}
}

// TestSeparateSuperblocksPerClass: blocks of different classes never share
// a chunk.
func TestSeparateSuperblocksPerClass(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<22)
	c := a.NewCache()
	chunkOwner := map[uint64]int{} // chunk index -> class
	for i := 0; i < 500; i++ {
		n := classSizes[i%len(classSizes)]
		off, err := c.Malloc(n)
		if err != nil {
			t.Fatal(err)
		}
		ci := classFor(n)
		chunk := (off - a.chunkOff) / ChunkSize
		if prev, ok := chunkOwner[chunk]; ok && prev != ci {
			t.Fatalf("chunk %d shared by classes %d and %d", chunk, prev, ci)
		}
		chunkOwner[chunk] = ci
	}
}
