package ralloc

// Crash-recovery helpers. A thread that dies mid-call can leave the
// allocation spinlock held and blocks unreachable; the store's repair
// coordinator uses these entry points once it has excluded every live
// thread from the heap.

// BlockAt returns the usable size of the live block that starts exactly at
// off, or 0 if off is not a plausible block base: outside the chunk
// region, in a free or claimed chunk, misaligned within its size class, or
// in the interior of a large allocation. Structural repair uses it to
// decide whether a pointer recovered from a torn data structure may be
// dereferenced at all.
func (a *Allocator) BlockAt(off uint64) uint64 {
	ci, word := a.chunkOf(off)
	if ci < 0 {
		return 0
	}
	switch {
	case word == dirFree || word == dirClaimed || word&dirContBit != 0:
		return 0
	case word&dirLargeBit != 0:
		if (off-a.chunkOff)%ChunkSize != 0 {
			return 0
		}
		return (word &^ dirLargeBit) * ChunkSize
	}
	size := classSizes[word-1]
	chunkBase := a.chunkOff + (off-a.chunkOff)/ChunkSize*ChunkSize
	if (off-chunkBase)%size != 0 {
		return 0
	}
	return size
}

// AllocLockOwner returns the owner token of the large-allocation spinlock,
// or 0 when it is free (post-mortem lock triage).
func (a *Allocator) AllocLockOwner() uint64 {
	return a.h.LockHolder(offAllocLock)
}

// RepairLocks force-releases the large-allocation spinlock if it is held.
// Only call with no live thread executing inside the allocator — i.e.
// from a repair pass that has drained every in-flight operation; a dead
// holder is the only way the lock can still be held then. Returns the
// number of locks released (0 or 1).
func (a *Allocator) RepairLocks() int {
	if h := a.h.LockHolder(offAllocLock); h != 0 {
		if a.h.CAS64(offAllocLock, h, 0) {
			return 1
		}
	}
	return 0
}
