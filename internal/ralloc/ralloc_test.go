package ralloc

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"plibmc/internal/shm"
)

func newHeapAlloc(t *testing.T, size uint64) (*shm.Heap, *Allocator) {
	t.Helper()
	h := shm.New(size)
	a, err := Format(h)
	if err != nil {
		t.Fatal(err)
	}
	return h, a
}

func TestFormatOpen(t *testing.T) {
	h, a := newHeapAlloc(t, 1<<21)
	if a.Capacity() == 0 || a.Capacity()%ChunkSize != 0 {
		t.Fatalf("capacity = %d", a.Capacity())
	}
	if _, err := Format(h); err == nil {
		t.Fatal("double Format should fail")
	}
	if _, err := Open(h); err != nil {
		t.Fatalf("Open of formatted heap: %v", err)
	}
	if _, err := Open(shm.New(1 << 20)); err == nil {
		t.Fatal("Open of unformatted heap should fail")
	}
	if _, err := Format(shm.New(shm.PageSize)); err == nil {
		t.Fatal("Format of tiny heap should fail")
	}
}

func TestMallocBasic(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<21)
	c := a.NewCache()
	off, err := c.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if off%8 != 0 {
		t.Fatalf("block %#x not 8-aligned", off)
	}
	if got := a.SizeOf(off); got != 128 {
		t.Fatalf("SizeOf(100-byte alloc) = %d, want 128 (class rounding)", got)
	}
	if a.LiveBytes() != 128 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	if err := c.Free(off); err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes after free = %d", a.LiveBytes())
	}
}

func TestMallocZeroAndCalloc(t *testing.T) {
	h, a := newHeapAlloc(t, 1<<21)
	c := a.NewCache()
	off, err := c.Malloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.SizeOf(off) == 0 {
		t.Fatal("zero-byte malloc should still return a block")
	}
	// Dirty a block, free it, calloc should hand back zeroed memory.
	h.WriteBytes(off, []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if err := c.Free(off); err != nil {
		t.Fatal(err)
	}
	off2, err := c.Calloc(4)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off {
		t.Logf("calloc returned different block %#x (ok)", off2)
	}
	b := h.Bytes(off2, 4)
	for _, x := range b {
		if x != 0 {
			t.Fatalf("calloc returned dirty memory % x", b)
		}
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint64 // class size, or 0 for large
	}{
		{1, 16}, {16, 16}, {17, 24}, {128, 128}, {129, 192},
		{5000, 6144}, {16384, 16384}, {16385, 0},
	}
	for _, cse := range cases {
		ci := classFor(cse.n)
		if cse.want == 0 {
			if ci != -1 {
				t.Errorf("classFor(%d) = %d, want large", cse.n, ci)
			}
			continue
		}
		if ci < 0 || classSizes[ci] != cse.want {
			t.Errorf("classFor(%d) -> size %d, want %d", cse.n, classSizes[ci], cse.want)
		}
	}
}

func TestNoOverlapAcrossSizes(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<22)
	c := a.NewCache()
	type block struct{ off, size uint64 }
	var blocks []block
	sizes := []uint64{1, 8, 16, 17, 100, 500, 1000, 5000, 16000, 70000}
	for i := 0; i < 200; i++ {
		n := sizes[i%len(sizes)]
		off, err := c.Malloc(n)
		if err != nil {
			t.Fatalf("alloc %d of %d bytes: %v", i, n, err)
		}
		blocks = append(blocks, block{off, a.SizeOf(off)})
	}
	for i, b1 := range blocks {
		if b1.size == 0 {
			t.Fatalf("block %d has zero SizeOf", i)
		}
		for j, b2 := range blocks {
			if i == j {
				continue
			}
			if b1.off < b2.off+b2.size && b2.off < b1.off+b1.size {
				t.Fatalf("blocks overlap: [%#x,+%d) and [%#x,+%d)", b1.off, b1.size, b2.off, b2.size)
			}
		}
	}
	for _, b := range blocks {
		if err := c.Free(b.off); err != nil {
			t.Fatal(err)
		}
	}
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes after freeing everything = %d", a.LiveBytes())
	}
}

func TestLargeAllocations(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<22) // 4 MiB
	c := a.NewCache()
	off, err := c.Malloc(3 * ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if a.SizeOf(off) != 3*ChunkSize {
		t.Fatalf("SizeOf(large) = %d", a.SizeOf(off))
	}
	if off%ChunkSize != (a.chunkOff % ChunkSize) {
		t.Fatalf("large block %#x not chunk-aligned", off)
	}
	// The continuation chunks must not be allocatable or freeable.
	if err := c.Free(off + ChunkSize); !errors.Is(err, ErrBadFree) {
		t.Fatalf("free of continuation chunk = %v", err)
	}
	if err := c.Free(off); err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	// Space must be reusable.
	off2, err := c.Malloc(3 * ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if off2 != off {
		t.Logf("large realloc moved (%#x -> %#x), fine", off, off2)
	}
}

func TestBadFree(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<21)
	c := a.NewCache()
	if err := c.Free(0); !errors.Is(err, ErrBadFree) {
		t.Fatal("free(0) should be rejected")
	}
	if err := c.Free(a.chunkOff); !errors.Is(err, ErrBadFree) {
		t.Fatal("free of never-allocated chunk should be rejected")
	}
	off, _ := c.Malloc(64)
	if err := c.Free(off + 8); !errors.Is(err, ErrBadFree) {
		t.Fatal("free of block interior should be rejected")
	}
	if err := c.Free(off); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfMemoryAndRecovery(t *testing.T) {
	_, a := newHeapAlloc(t, 4*ChunkSize)
	c := a.NewCache()
	var blocks []uint64
	for {
		off, err := c.Malloc(16000)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("unexpected error %v", err)
			}
			break
		}
		blocks = append(blocks, off)
	}
	if len(blocks) == 0 {
		t.Fatal("no allocations succeeded")
	}
	// Free one block: allocation works again.
	if err := c.Free(blocks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Malloc(16000); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	// Large allocation bigger than the whole heap.
	if _, err := c.Malloc(1 << 30); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized alloc = %v", err)
	}
}

func TestSpillAndCrossCacheReuse(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<21)
	c1 := a.NewCache()
	c2 := a.NewCache()
	var blocks []uint64
	for i := 0; i < 3*cacheMax; i++ {
		off, err := c1.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, off)
	}
	for _, off := range blocks {
		if err := c1.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	c1.Flush()
	// All blocks are now on the global list; cache 2 can obtain them.
	seen := map[uint64]bool{}
	for _, b := range blocks {
		seen[b] = true
	}
	got := 0
	for i := 0; i < len(blocks); i++ {
		off, err := c2.Malloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if seen[off] {
			got++
		}
	}
	if got < len(blocks)/2 {
		t.Fatalf("cache 2 reused only %d/%d flushed blocks", got, len(blocks))
	}
}

func TestRoots(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<21)
	c := a.NewCache()
	off, _ := c.Malloc(128)
	a.SetRoot(3, off)
	if got := a.GetRoot(3); got != off {
		t.Fatalf("GetRoot = %#x, want %#x", got, off)
	}
	if a.GetRoot(4) != 0 {
		t.Fatal("unset root should be 0")
	}
	a.SetRoot(3, 0)
	if a.GetRoot(3) != 0 {
		t.Fatal("cleared root should be 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range root should panic")
			}
		}()
		a.SetRoot(NumRoots, 1)
	}()
}

func TestPersistenceAcrossReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "heap.img")

	h, a := newHeapAlloc(t, 1<<21)
	c := a.NewCache()
	off, err := c.Malloc(256)
	if err != nil {
		t.Fatal(err)
	}
	h.WriteBytes(off, []byte("survives restart"))
	a.SetRoot(0, off)
	c.Flush()
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}

	h2, err := shm.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Open(h2)
	if err != nil {
		t.Fatal(err)
	}
	root := a2.GetRoot(0)
	if root != off {
		t.Fatalf("root after reload = %#x, want %#x", root, off)
	}
	if got := string(h2.Bytes(root, 16)); got != "survives restart" {
		t.Fatalf("data after reload = %q", got)
	}
	if a2.LiveBytes() != a.LiveBytes() {
		t.Fatalf("LiveBytes after reload = %d, want %d", a2.LiveBytes(), a.LiveBytes())
	}
	// The reloaded allocator keeps allocating without clobbering old data.
	c2 := a2.NewCache()
	for i := 0; i < 100; i++ {
		o, err := c2.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		if o == root {
			t.Fatal("reloaded allocator handed out a live block")
		}
	}
	if got := string(h2.Bytes(root, 16)); got != "survives restart" {
		t.Fatal("old data clobbered by post-reload allocation")
	}
}

// Property: any interleaving of mallocs and frees keeps LiveBytes equal to
// the sum of live block sizes, and never hands out overlapping blocks.
func TestQuickAllocModel(t *testing.T) {
	f := func(ops []uint16) bool {
		_, a := newHeapAlloc(t, 1<<21)
		c := a.NewCache()
		live := map[uint64]uint64{}
		var total uint64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 { // alloc twice as often as free
				n := uint64(op)%2048 + 1
				off, err := c.Malloc(n)
				if err != nil {
					return false
				}
				sz := a.SizeOf(off)
				for o, s := range live {
					if off < o+s && o < off+sz {
						return false // overlap
					}
				}
				live[off] = sz
				total += sz
			} else {
				for off, sz := range live {
					if c.Free(off) != nil {
						return false
					}
					delete(live, off)
					total -= sz
					break
				}
			}
		}
		return a.LiveBytes() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	h, a := newHeapAlloc(t, 1<<23)
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c := a.NewCache()
			defer c.Flush()
			var mine []uint64
			for i := 0; i < iters; i++ {
				n := uint64(i%500) + 1
				off, err := c.Malloc(n)
				if err != nil {
					errs <- err
					return
				}
				// Stamp the block and verify ownership later: catches
				// double-allocation across workers.
				h.Store64(off, id<<32|uint64(i))
				mine = append(mine, off)
				if len(mine) > 64 {
					victim := mine[0]
					mine = mine[1:]
					if got := h.Load64(victim); got>>32 != id {
						errs <- errBlockStolen
						return
					}
					if err := c.Free(victim); err != nil {
						errs <- err
						return
					}
				}
			}
			for _, off := range mine {
				if got := h.Load64(off); got>>32 != id {
					errs <- errBlockStolen
					return
				}
				if err := c.Free(off); err != nil {
					errs <- err
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes after stress = %d", a.LiveBytes())
	}
}

var errBlockStolen = errors.New("block handed to two owners")

func TestPptrRoundtrip(t *testing.T) {
	h := shm.New(shm.PageSize)
	StorePptr(h, 64, 4000)
	if got := LoadPptr(h, 64); got != 4000 {
		t.Fatalf("pptr roundtrip = %d", got)
	}
	StorePptr(h, 64, 0)
	if LoadPptr(h, 64) != 0 {
		t.Fatal("nil pptr")
	}
	// Backward distances too.
	StorePptr(h, 2048, 8)
	if got := LoadPptr(h, 2048); got != 8 {
		t.Fatalf("backward pptr = %d", got)
	}
	AtomicStorePptr(h, 128, 512)
	if AtomicLoadPptr(h, 128) != 512 {
		t.Fatal("atomic pptr")
	}
	AtomicStorePptr(h, 128, 0)
	if AtomicLoadPptr(h, 128) != 0 {
		t.Fatal("atomic nil pptr")
	}
}

// Property: a pptr stored at any slot, pointing anywhere, reads back
// exactly — position independence is a consequence, verified separately.
func TestQuickPptr(t *testing.T) {
	h := shm.New(16 * shm.PageSize)
	f := func(atRaw, targetRaw uint16) bool {
		at := (uint64(atRaw) % (h.Size() - 8)) &^ 7
		target := uint64(targetRaw) % h.Size()
		if target == 0 {
			target = 1
		}
		StorePptr(h, at, target)
		return LoadPptr(h, at) == target
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPptrPositionIndependence(t *testing.T) {
	// The same heap bytes resolve to the same object under any mapping.
	h := shm.New(shm.PageSize)
	h.WriteBytes(512, []byte("target"))
	StorePptr(h, 64, 512)

	v1, _ := h.Map(0x10000)
	v2, _ := h.Map(0x7f00_0000_0000)
	a1 := ResolveVirtual(h, v1, 64)
	a2 := ResolveVirtual(h, v2, 64)
	if a1 == a2 {
		t.Fatal("virtual addresses should differ across views")
	}
	if v1.Off(a1) != v2.Off(a2) || v1.Off(a1) != 512 {
		t.Fatal("both views must resolve to the same heap object")
	}
	if got := string(h.Bytes(v1.Off(a1), 6)); got != "target" {
		t.Fatalf("resolved object = %q", got)
	}
	StorePptr(h, 64, 0)
	if ResolveVirtual(h, v1, 64) != 0 {
		t.Fatal("nil pptr should resolve to 0")
	}
}

func BenchmarkMallocFree128(b *testing.B) {
	h := shm.New(1 << 24)
	a, err := Format(h)
	if err != nil {
		b.Fatal(err)
	}
	c := a.NewCache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := c.Malloc(128)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Free(off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocFreeParallel(b *testing.B) {
	h := shm.New(1 << 26)
	a, err := Format(h)
	if err != nil {
		b.Fatal(err)
	}
	_ = h
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c := a.NewCache()
		defer c.Flush()
		for pb.Next() {
			off, err := c.Malloc(128)
			if err != nil {
				b.Fatal(err)
			}
			if err := c.Free(off); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func TestClassStats(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<22)
	c := a.NewCache()
	var offs []uint64
	for i := 0; i < 100; i++ {
		off, err := c.Malloc(100) // class 128
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	for _, off := range offs[:50] {
		c.Free(off)
	}
	c.Flush()
	stats := a.ClassStats()
	if len(stats) != 1 {
		t.Fatalf("stats for %d classes, want 1", len(stats))
	}
	cs := stats[0]
	if cs.ClassSize != 128 || cs.Chunks != 1 {
		t.Fatalf("class stat = %+v", cs)
	}
	if cs.TotalBlocks != 65536/128 {
		t.Fatalf("TotalBlocks = %d", cs.TotalBlocks)
	}
	// 50 freed + (512-100) never-handed-out blocks are free.
	if cs.FreeBlocks != cs.TotalBlocks-50 {
		t.Fatalf("FreeBlocks = %d, want %d", cs.FreeBlocks, cs.TotalBlocks-50)
	}
}
