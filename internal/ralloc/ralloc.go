// Package ralloc reimplements the allocator interface the paper takes from
// Ralloc (Cai et al., ISMM '20): a shared-heap allocator over a persistent,
// memory-mapped region, with
//
//   - size-class segregation into superblock chunks (no external
//     fragmentation for the block sizes memcached uses, low internal
//     fragmentation);
//   - per-thread caches on the fast path and lock-free (Treiber) global
//     free lists behind them, so allocation is nonblocking except when a
//     multi-chunk ("large") allocation must find contiguous space;
//   - persistent roots: 64 statically located slots identified by symbolic
//     ID, holding position-independent pointers to the application's top
//     level structures (pm_set_root / pm_get_root in the paper);
//   - pptr: self-relative pointers that remain valid when the heap is
//     mapped at a different address in every process (pptr.go).
//
// All allocator metadata lives inside the heap itself, so a heap flushed to
// its backing file and reloaded — even by a different process at a different
// base address — resumes with free lists, roots, and contents intact.
package ralloc

import (
	"errors"
	"fmt"

	"plibmc/internal/shm"
)

const (
	// ChunkSize is the superblock granule. Every chunk is dedicated to a
	// single size class or to (part of) one large allocation.
	ChunkSize = 64 * 1024

	// NumRoots is the number of persistent root slots.
	NumRoots = 64

	heapMagic   = 0x52414C4C4F433147 // "RALLOC1G"
	heapVersion = 1
)

// Heap-resident layout (byte offsets).
const (
	offMagic     = 0x00
	offVersion   = 0x08
	offHeapSize  = 0x10
	offLiveBytes = 0x18 // atomic: bytes currently allocated to users
	offChunkBase = 0x20 // first byte of the chunk area
	offChunkCnt  = 0x28 // number of chunks
	offAllocLock = 0x30 // spinlock for multi-chunk operations
	offNextChunk = 0x38 // rotating hint for the free-chunk scan
	offRoots     = 0x40 // NumRoots * 8 bytes of root pptrs
	offClassHead = offRoots + NumRoots*8
	// offChunkDir = offClassHead + numClasses*8, computed below.
)

// classSizes are the block sizes of the small size classes. Allocations
// larger than the last class take whole chunks ("large" allocations).
var classSizes = []uint64{
	16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768,
	1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384,
}

const numClasses = 21

// MaxSmall is the largest allocation served from size classes.
const MaxSmall = 16384

// Chunk-directory word encoding.
const (
	dirFree     = uint64(0)
	dirClaimed  = ^uint64(0)      // transient, while a carver owns the chunk
	dirLargeBit = uint64(1) << 63 // start of a large allocation; low bits = chunk count
	dirContBit  = uint64(1) << 62 // continuation chunk of a large allocation
)

// Errors returned by the allocator.
var (
	ErrOutOfMemory = errors.New("ralloc: out of shared-heap memory")
	ErrBadFree     = errors.New("ralloc: free of address not allocated by this heap")
)

// Allocator is a handle on a formatted heap. All of its state other than the
// heap reference itself lives in shared memory, so any number of Allocator
// handles (one per process) may operate on the same heap concurrently.
type Allocator struct {
	h        *shm.Heap
	chunkDir uint64 // offset of the chunk directory
	nChunks  uint64
	chunkOff uint64 // offset of chunk 0
}

func headerSize(nChunks uint64) uint64 {
	return offClassHead + numClasses*8 + nChunks*8
}

// Format initializes a fresh heap for allocation and returns a handle.
// It fails if the heap already contains a formatted image (use Open).
func Format(h *shm.Heap) (*Allocator, error) {
	if h.Load64(offMagic) == heapMagic {
		return nil, fmt.Errorf("ralloc: heap is already formatted (use Open)")
	}
	// Solve for the number of chunks: the header (which includes one
	// directory word per chunk) and the chunk area must both fit.
	size := h.Size()
	nChunks := size / ChunkSize
	var chunkBase uint64
	for {
		if nChunks == 0 {
			return nil, fmt.Errorf("ralloc: heap of %d bytes is too small", size)
		}
		chunkBase = (headerSize(nChunks) + ChunkSize - 1) &^ uint64(ChunkSize-1)
		if chunkBase+nChunks*ChunkSize <= size {
			break
		}
		nChunks--
	}
	h.Store64(offVersion, heapVersion)
	h.Store64(offHeapSize, size)
	h.Store64(offLiveBytes, 0)
	h.Store64(offChunkBase, chunkBase)
	h.Store64(offChunkCnt, nChunks)
	h.Store64(offAllocLock, 0)
	h.Store64(offNextChunk, 0)
	h.Zero(offRoots, NumRoots*8)
	h.Zero(offClassHead, numClasses*8)
	h.Zero(offClassHead+numClasses*8, nChunks*8)
	// The magic goes in last so a torn format is never mistaken for a heap.
	h.Store64(offMagic, heapMagic)
	return newHandle(h), nil
}

// Open attaches to a heap previously prepared by Format (possibly reloaded
// from its backing file).
func Open(h *shm.Heap) (*Allocator, error) {
	if h.Load64(offMagic) != heapMagic {
		return nil, fmt.Errorf("ralloc: heap is not formatted")
	}
	if v := h.Load64(offVersion); v != heapVersion {
		return nil, fmt.Errorf("ralloc: unsupported heap version %d", v)
	}
	if s := h.Load64(offHeapSize); s != h.Size() {
		return nil, fmt.Errorf("ralloc: heap image is %d bytes but mapping is %d", s, h.Size())
	}
	return newHandle(h), nil
}

func newHandle(h *shm.Heap) *Allocator {
	return &Allocator{
		h:        h,
		chunkDir: offClassHead + numClasses*8,
		nChunks:  h.Load64(offChunkCnt),
		chunkOff: h.Load64(offChunkBase),
	}
}

// Heap returns the underlying shared heap.
func (a *Allocator) Heap() *shm.Heap { return a.h }

// Capacity returns the number of bytes available for allocation (the chunk
// area).
func (a *Allocator) Capacity() uint64 { return a.nChunks * ChunkSize }

// LiveBytes returns the number of bytes currently allocated to users
// (rounded up to block sizes).
func (a *Allocator) LiveBytes() uint64 { return a.h.AtomicLoad64(offLiveBytes) }

// SetRoot stores a persistent pointer to heap offset target in root slot id
// (pm_set_root). target == 0 clears the slot.
func (a *Allocator) SetRoot(id int, target uint64) {
	if id < 0 || id >= NumRoots {
		panic(fmt.Sprintf("ralloc: root id %d out of range", id))
	}
	StorePptr(a.h, offRoots+uint64(id)*8, target)
}

// GetRoot resolves root slot id to a heap offset (pm_get_root); 0 means the
// slot is empty.
func (a *Allocator) GetRoot(id int) uint64 {
	if id < 0 || id >= NumRoots {
		panic(fmt.Sprintf("ralloc: root id %d out of range", id))
	}
	return LoadPptr(a.h, offRoots+uint64(id)*8)
}

// classFor returns the size-class index for an allocation of n bytes, or -1
// if n requires the large path.
func classFor(n uint64) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// SizeOf returns the usable size of the block at off, which may exceed the
// requested size (class rounding). It returns 0 for offsets that do not
// point at the start of a live block's chunk region.
func (a *Allocator) SizeOf(off uint64) uint64 {
	ci, word := a.chunkOf(off)
	if ci < 0 {
		return 0
	}
	switch {
	case word == dirFree || word == dirClaimed || word&dirContBit != 0:
		return 0
	case word&dirLargeBit != 0:
		return (word &^ dirLargeBit) * ChunkSize
	default:
		return classSizes[word-1]
	}
}

// chunkOf maps a heap offset to its chunk index and directory word.
func (a *Allocator) chunkOf(off uint64) (int, uint64) {
	if off < a.chunkOff || off >= a.chunkOff+a.nChunks*ChunkSize {
		return -1, 0
	}
	ci := (off - a.chunkOff) / ChunkSize
	return int(ci), a.h.AtomicLoad64(a.chunkDir + ci*8)
}

// RootSlotOff returns the heap offset of root slot id's pptr word. Offline
// verifiers report against it and corruption-injection tests target it; it
// is not part of the allocation API.
func RootSlotOff(id int) uint64 {
	if id < 0 || id >= NumRoots {
		panic(fmt.Sprintf("ralloc: root id %d out of range", id))
	}
	return offRoots + uint64(id)*8
}
