package ralloc

// Per-class usage reporting, the Ralloc-side analog of memcached's
// "stats slabs": how the chunk area is divided among size classes and how
// full each class's chunks are. Used by cmd/plibdump and the bookkeeper.

// ClassStat describes one size class's footprint.
type ClassStat struct {
	ClassSize  uint64 // block size in bytes
	Chunks     int    // chunks dedicated to this class
	FreeBlocks int    // blocks on the global free list (caches excluded)
	// TotalBlocks is the capacity of the class's chunks in blocks.
	TotalBlocks int
}

// ClassStats walks the chunk directory and free lists and reports usage
// for every class that owns at least one chunk. The heap should be
// quiescent for exact numbers; concurrent use yields an approximation.
func (a *Allocator) ClassStats() []ClassStat {
	stats := make([]ClassStat, numClasses)
	for ci := range stats {
		stats[ci].ClassSize = classSizes[ci]
	}
	for i := uint64(0); i < a.nChunks; i++ {
		word := a.h.AtomicLoad64(a.chunkDir + i*8)
		if word == dirFree || word == dirClaimed || word&(dirLargeBit|dirContBit) != 0 {
			continue
		}
		ci := int(word) - 1
		if ci < 0 || ci >= numClasses {
			continue
		}
		stats[ci].Chunks++
		stats[ci].TotalBlocks += int(uint64(ChunkSize) / classSizes[ci])
	}
	for ci := range stats {
		head := headOff(a.h.AtomicLoad64(offClassHead + uint64(ci)*8))
		limit := stats[ci].TotalBlocks + 1
		for off, steps := head, 0; off != 0 && steps < limit; off, steps = a.h.Load64(off), steps+1 {
			stats[ci].FreeBlocks++
		}
	}
	out := stats[:0]
	for _, s := range stats {
		if s.Chunks > 0 {
			out = append(out, s)
		}
	}
	return out
}
