package ralloc

import "plibmc/internal/shm"

// Persistent pointers.
//
// A pptr is Ralloc's position-independent smart pointer: a word that holds
// the *signed distance* from its own location to its target (Chen et al.,
// MICRO '17). Because both ends live in the same shared heap, the distance
// is the same no matter where a process maps the heap, so a pptr can be
// converted to and from a native pointer in any address space. The paper
// converts every pointer in the memcached K-V store to a pptr.
//
// Encoding: 0 represents nil (a pointer can never legitimately point at
// itself). Otherwise the word is int64(target - at) where at is the pptr's
// own heap offset.

// StorePptr writes a pptr at heap offset at pointing to heap offset target.
// target == 0 stores nil.
func StorePptr(h *shm.Heap, at, target uint64) {
	if target == 0 {
		h.Store64(at, 0)
		return
	}
	h.Store64(at, uint64(int64(target)-int64(at)))
}

// LoadPptr reads the pptr at heap offset at, returning the target heap
// offset (0 for nil).
func LoadPptr(h *shm.Heap, at uint64) uint64 {
	d := h.Load64(at)
	if d == 0 {
		return 0
	}
	return uint64(int64(at) + int64(d))
}

// AtomicLoadPptr is LoadPptr with an atomic read of the distance word, for
// fields read outside their structure's lock.
func AtomicLoadPptr(h *shm.Heap, at uint64) uint64 {
	d := h.AtomicLoad64(at)
	if d == 0 {
		return 0
	}
	return uint64(int64(at) + int64(d))
}

// AtomicStorePptr is StorePptr with an atomic write of the distance word.
func AtomicStorePptr(h *shm.Heap, at, target uint64) {
	if target == 0 {
		h.AtomicStore64(at, 0)
		return
	}
	h.AtomicStore64(at, uint64(int64(target)-int64(at)))
}

// ResolveVirtual converts the pptr at heap offset at into a virtual address
// in the given view — the pptr<T> → T* conversion clients perform. It
// returns 0 for nil.
func ResolveVirtual(h *shm.Heap, v *shm.View, at uint64) uint64 {
	t := LoadPptr(h, at)
	if t == 0 {
		return 0
	}
	return v.Addr(t)
}
