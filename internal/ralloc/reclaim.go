package ralloc

// Chunk reclamation.
//
// Freed blocks normally stay dedicated to their size class (that is what
// gives the allocator its no-external-fragmentation behaviour for a stable
// size mix). When the mix shifts, fully-free chunks can be returned to the
// shared pool: Reclaim drains each class's global free list, identifies
// chunks whose every block is free, releases those chunks, and pushes the
// rest back. Blocks held in per-thread caches pin their chunks (best
// effort — flush caches first for maximal reclamation).
//
// Reclaim is a maintenance operation for the bookkeeping process; it is
// safe to run concurrently with allocation, though allocations in the
// drained class can transiently fail over to carving fresh chunks.

// Reclaim scans every size class and returns the number of chunks given
// back to the shared pool.
func (a *Allocator) Reclaim() int {
	reclaimed := 0
	for ci := range classSizes {
		reclaimed += a.reclaimClass(ci)
	}
	return reclaimed
}

func (a *Allocator) reclaimClass(ci int) int {
	size := classSizes[ci]
	perChunk := uint64(ChunkSize) / size

	// Drain the global free list for this class.
	byChunk := make(map[uint64][]uint64)
	total := 0
	for {
		off := a.pop(ci)
		if off == 0 {
			break
		}
		chunk := (off - a.chunkOff) / ChunkSize
		byChunk[chunk] = append(byChunk[chunk], off)
		total++
	}
	if total == 0 {
		return 0
	}

	reclaimed := 0
	var keep []uint64
	for chunk, blocks := range byChunk {
		if uint64(len(blocks)) == perChunk {
			// Every block of the chunk is on the free list: no live or
			// cached block can reference it. Return it to the pool.
			a.h.AtomicStore64(a.chunkDir+chunk*8, dirFree)
			reclaimed++
		} else {
			keep = append(keep, blocks...)
		}
	}
	if len(keep) > 0 {
		for i := 0; i < len(keep)-1; i++ {
			a.h.Store64(keep[i], keep[i+1])
		}
		a.h.Store64(keep[len(keep)-1], 0)
		a.pushChain(ci, keep[0], keep[len(keep)-1])
	}
	return reclaimed
}
