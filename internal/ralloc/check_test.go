package ralloc

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"plibmc/internal/shm"
)

func TestCheckCleanHeap(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<21)
	rep, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FreeChunks != int(a.nChunks) || rep.ClassChunks != 0 {
		t.Fatalf("fresh heap report: %+v", rep)
	}
}

func TestCheckAfterChurn(t *testing.T) {
	h := shm.New(1 << 24)
	a, _ := Format(h)
	c := a.NewCache()
	rng := rand.New(rand.NewSource(3))
	var live []uint64
	for i := 0; i < 3000; i++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			off, err := c.Malloc(uint64(rng.Intn(8000)) + 1)
			if err == nil {
				live = append(live, off)
			}
		} else {
			idx := rng.Intn(len(live))
			if err := c.Free(live[idx]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
	}
	// Large allocations too.
	big, err := c.Malloc(3 * ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()
	rep, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LargeChunks != 3 {
		t.Fatalf("LargeChunks = %d", rep.LargeChunks)
	}
	if rep.FreeBlocks == 0 {
		t.Fatal("churned heap should have free blocks")
	}
	c2 := a.NewCache()
	c2.Free(big)
	for _, off := range live {
		if err := c2.Free(off); err != nil {
			t.Fatal(err)
		}
	}
	c2.Flush()
	a.Reclaim()
	rep, err = a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveBytes != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything", rep.LiveBytes)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(h *shm.Heap, a *Allocator, block uint64)
		want    string
	}{
		{
			"free-list cycle",
			func(h *shm.Heap, a *Allocator, block uint64) {
				// Point the block's next pointer at itself.
				h.Store64(block, block)
			},
			"twice", // a self-loop is caught as a duplicate visit
		},
		{
			"free-list out of bounds",
			func(h *shm.Heap, a *Allocator, block uint64) {
				h.Store64(block, 8) // into the header area
			},
			"outside the chunk area",
		},
		{
			"orphan continuation",
			func(h *shm.Heap, a *Allocator, _ uint64) {
				// Find a free chunk and mark it as a continuation.
				for i := uint64(0); i < a.nChunks; i++ {
					addr := a.chunkDir + i*8
					if h.AtomicLoad64(addr) == dirFree {
						h.AtomicStore64(addr, dirContBit|0)
						return
					}
				}
			},
			"continuation",
		},
		{
			"invalid class word",
			func(h *shm.Heap, a *Allocator, _ uint64) {
				for i := uint64(0); i < a.nChunks; i++ {
					addr := a.chunkDir + i*8
					if h.AtomicLoad64(addr) == dirFree {
						h.AtomicStore64(addr, 9999)
						return
					}
				}
			},
			"invalid class",
		},
		{
			"stuck claimed chunk",
			func(h *shm.Heap, a *Allocator, _ uint64) {
				for i := uint64(0); i < a.nChunks; i++ {
					addr := a.chunkDir + i*8
					if h.AtomicLoad64(addr) == dirFree {
						h.AtomicStore64(addr, dirClaimed)
						return
					}
				}
			},
			"claimed",
		},
		{
			"live-bytes overflow",
			func(h *shm.Heap, a *Allocator, _ uint64) {
				h.Store64(offLiveBytes, a.Capacity()+1)
			},
			"live-bytes",
		},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			h := shm.New(1 << 21)
			a, _ := Format(h)
			c := a.NewCache()
			// One allocation + free so a class free list exists.
			off, _ := c.Malloc(64)
			blockNeighbor, _ := c.Malloc(64)
			c.Free(blockNeighbor)
			c.Free(off)
			c.Flush()
			cse.corrupt(h, a, off)
			_, err := a.Check()
			if err == nil {
				t.Fatalf("corruption %q not detected", cse.name)
			}
			if !strings.Contains(err.Error(), cse.want) {
				t.Fatalf("error %q does not mention %q", err, cse.want)
			}
		})
	}
}

func TestCheckDoubleFreeDetection(t *testing.T) {
	// A block pushed onto the free list twice (the classic double free,
	// forced here by raw list surgery) is caught.
	h := shm.New(1 << 21)
	a, _ := Format(h)
	c := a.NewCache()
	o1, _ := c.Malloc(64)
	o2, _ := c.Malloc(64)
	c.Free(o1)
	c.Free(o2)
	c.Flush()
	// Splice o1 in twice: o1 -> o2 -> o1 would be a cycle, so instead
	// make the second element point at a duplicate chain o1 -> o2, then
	// set head o2 -> o1 and o1 -> o2... simplest: find list head and
	// append the head block again at the tail.
	head := headOff(h.AtomicLoad64(offClassHead + uint64(classFor(64))*8))
	// Walk to the tail.
	tail := head
	for n := h.Load64(tail); n != 0; n = h.Load64(tail) {
		tail = n
	}
	h.Store64(tail, head) // tail now points back at head: duplicate + cycle
	if _, err := a.Check(); err == nil {
		t.Fatal("double free / cycle not detected")
	}
}

// Reclaim is documented safe to run concurrently with allocation; hammer
// both and verify no block is double-owned and the heap stays sound.
func TestReclaimConcurrentWithAlloc(t *testing.T) {
	h := shm.New(1 << 23)
	a, _ := Format(h)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				a.Reclaim()
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			c := a.NewCache()
			defer c.Flush()
			var mine []uint64
			for i := 0; i < 3000; i++ {
				off, err := c.Malloc(uint64(i%2000) + 1)
				if err != nil {
					t.Error(err)
					return
				}
				h.Store64(off, id<<32|uint64(i))
				mine = append(mine, off)
				if len(mine) > 20 {
					victim := mine[0]
					mine = mine[1:]
					if h.Load64(victim)>>32 != id {
						t.Error("block stolen during concurrent reclaim")
						return
					}
					if err := c.Free(victim); err != nil {
						t.Error(err)
						return
					}
				}
			}
			for _, off := range mine {
				c.Free(off)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	close(stop)
	<-done
	a.Reclaim()
	if _, err := a.Check(); err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
}

func TestCheckValidatesRoots(t *testing.T) {
	_, a := newHeapAlloc(t, 1<<21)
	c := a.NewCache()
	off, err := c.Malloc(128)
	if err != nil {
		t.Fatal(err)
	}
	c.Flush()
	a.SetRoot(0, off)
	rep, err := a.Check()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LiveRoots != 1 {
		t.Fatalf("LiveRoots = %d, want 1", rep.LiveRoots)
	}

	// A root into the interior of a block is not a block base.
	a.SetRoot(1, off+8)
	if _, err := a.Check(); err == nil || !strings.Contains(err.Error(), "root 1") {
		t.Fatalf("interior root not caught: %v", err)
	}
	a.SetRoot(1, 0)

	// A root into a freed (reclaimed) chunk is dangling.
	c2 := a.NewCache()
	if err := c2.Free(off); err != nil {
		t.Fatal(err)
	}
	c2.Flush()
	a.Reclaim()
	if _, err := a.Check(); err == nil || !strings.Contains(err.Error(), "root 0") {
		t.Fatalf("dangling root not caught: %v", err)
	}
}
