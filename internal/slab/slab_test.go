package slab

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestClassSizesMonotonic(t *testing.T) {
	a := New(16 * PageSize)
	if a.NumClasses() < 10 {
		t.Fatalf("only %d classes", a.NumClasses())
	}
	for i := 1; i < a.NumClasses(); i++ {
		if a.ClassSize(i) <= a.ClassSize(i-1) {
			t.Fatalf("class sizes not strictly increasing at %d", i)
		}
		if a.ClassSize(i)%8 != 0 {
			t.Fatalf("class size %d not 8-aligned", a.ClassSize(i))
		}
	}
	if a.ClassSize(0) != MinChunk {
		t.Fatalf("first class = %d", a.ClassSize(0))
	}
}

func TestClassFor(t *testing.T) {
	a := New(16 * PageSize)
	if a.ClassFor(1) != 0 || a.ClassFor(MinChunk) != 0 {
		t.Fatal("small sizes should map to class 0")
	}
	if a.ClassFor(MinChunk+1) != 1 {
		t.Fatal("boundary")
	}
	if a.ClassFor(PageSize*2) != -1 {
		t.Fatal("oversize should be -1")
	}
	// Every class size maps to itself.
	for i := 0; i < a.NumClasses(); i++ {
		if a.ClassFor(a.ClassSize(i)) != i {
			t.Fatalf("ClassFor(ClassSize(%d)) = %d", i, a.ClassFor(a.ClassSize(i)))
		}
	}
}

func TestAllocFreeReuse(t *testing.T) {
	a := New(4 * PageSize)
	h, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Bytes(h)
	if len(b) < 100 {
		t.Fatalf("chunk of %d bytes", len(b))
	}
	copy(b, "hello")
	if string(a.Bytes(h)[:5]) != "hello" {
		t.Fatal("chunk storage not stable")
	}
	a.Free(h)
	h2, err := a.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Fatalf("LIFO free list should reuse the chunk: %v vs %v", h2, h)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	a := New(2 * PageSize)
	var handles []Handle
	for {
		h, err := a.Alloc(1000)
		if err != nil {
			if !errors.Is(err, ErrNoMemory) {
				t.Fatalf("unexpected: %v", err)
			}
			break
		}
		handles = append(handles, h)
	}
	if len(handles) == 0 {
		t.Fatal("nothing allocated")
	}
	// Memory assigned to one class is NOT available to another — the slab
	// calcification the paper escaped by switching to Ralloc.
	if _, err := a.Alloc(PageSize / 2); !errors.Is(err, ErrNoMemory) {
		t.Fatal("other classes should also see exhaustion (budget is global)")
	}
	// Freeing lets the same class allocate again.
	a.Free(handles[0])
	if _, err := a.Alloc(1000); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestOversize(t *testing.T) {
	a := New(4 * PageSize)
	if _, err := a.Alloc(PageSize + 1); err == nil {
		t.Fatal("oversize alloc should fail")
	}
}

// Property: chunks handed out concurrently never alias.
func TestQuickNoAliasing(t *testing.T) {
	a := New(8 * PageSize)
	f := func(sizes []uint16) bool {
		var hs []Handle
		for _, s := range sizes {
			n := int(s)%4096 + 1
			h, err := a.Alloc(n)
			if err != nil {
				break
			}
			b := a.Bytes(h)
			for i := range b {
				b[i] = byte(len(hs))
			}
			hs = append(hs, h)
		}
		ok := true
		for i, h := range hs {
			b := a.Bytes(h)
			for _, x := range b {
				if x != byte(i) {
					ok = false
				}
			}
		}
		for _, h := range hs {
			a.Free(h)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFree(t *testing.T) {
	a := New(32 * PageSize)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id byte) {
			defer wg.Done()
			var mine []Handle
			for i := 0; i < 2000; i++ {
				h, err := a.Alloc(128)
				if err != nil {
					t.Error(err)
					return
				}
				a.Bytes(h)[0] = id
				mine = append(mine, h)
				if len(mine) > 32 {
					victim := mine[0]
					mine = mine[1:]
					if a.Bytes(victim)[0] != id {
						t.Error("chunk stolen by another goroutine")
						return
					}
					a.Free(victim)
				}
			}
			for _, h := range mine {
				a.Free(h)
			}
		}(byte(w))
	}
	wg.Wait()
}

func TestStatsPerClass(t *testing.T) {
	a := New(8 * PageSize)
	h1, _ := a.Alloc(100)
	h2, _ := a.Alloc(100)
	a.Alloc(5000)
	a.Free(h2)
	stats := a.StatsPerClass()
	if len(stats) != 2 {
		t.Fatalf("stats for %d classes, want 2", len(stats))
	}
	if stats[0].Used != 1 || stats[0].Pages != 1 {
		t.Fatalf("class 0 stats: %+v", stats[0])
	}
	_ = h1
}
