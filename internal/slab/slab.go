// Package slab reimplements memcached's slab memory allocator, the ~1600
// lines of custom memory management that the paper deleted when it switched
// to Ralloc (§3.2, §4.2). It exists here to make the baseline server a
// faithful "original memcached": items live in fixed-size chunks carved
// from 1 MiB slab pages, chunk sizes grow geometrically, and memory — once
// assigned to a class — stays there, which is exactly the coupling between
// allocation and eviction that motivated the paper to decouple its LRU
// from the allocator.
package slab

import (
	"errors"
	"fmt"
	"sync"
)

const (
	// PageSize is the size of one slab page (memcached's default).
	PageSize = 1 << 20
	// MinChunk is the smallest chunk size.
	MinChunk = 96
	// GrowthFactor numerator/denominator: chunk sizes grow by 1.25.
	growNum, growDen = 5, 4
)

// ErrNoMemory is returned when the memory budget is exhausted and the
// caller must evict from the class's LRU before retrying.
var ErrNoMemory = errors.New("slab: memory limit reached; eviction required")

// Handle identifies an allocated chunk: class index, page index within the
// class, and chunk index within the page.
type Handle uint64

func makeHandle(class, page, chunk int) Handle {
	return Handle(uint64(class)<<48 | uint64(page)<<24 | uint64(chunk))
}

func (h Handle) class() int { return int(h >> 48) }
func (h Handle) page() int  { return int(h>>24) & 0xFFFFFF }
func (h Handle) chunk() int { return int(h) & 0xFFFFFF }

type class struct {
	mu        sync.Mutex
	size      int
	perPage   int
	pages     [][]byte
	free      []Handle
	allocated int // live chunks
}

// Allocator is a slab allocator with a global memory budget.
type Allocator struct {
	mu      sync.Mutex // guards budget
	budget  int64      // bytes remaining for new pages
	classes []*class
	sizes   []int
}

// New creates an allocator with the given total memory budget in bytes
// (memcached's -m).
func New(limit int64) *Allocator {
	a := &Allocator{budget: limit}
	for size := MinChunk; size <= PageSize; size = size * growNum / growDen {
		sz := (size + 7) &^ 7
		if len(a.sizes) > 0 && sz <= a.sizes[len(a.sizes)-1] {
			sz = a.sizes[len(a.sizes)-1] + 8
		}
		a.sizes = append(a.sizes, sz)
		a.classes = append(a.classes, &class{size: sz, perPage: PageSize / sz})
	}
	return a
}

// NumClasses returns the number of slab classes.
func (a *Allocator) NumClasses() int { return len(a.classes) }

// ClassSize returns the chunk size of class i.
func (a *Allocator) ClassSize(i int) int { return a.sizes[i] }

// ClassFor returns the class index for an allocation of n bytes, or -1 if
// n exceeds the largest chunk.
func (a *Allocator) ClassFor(n int) int {
	for i, s := range a.sizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// Alloc allocates a chunk of at least n bytes. On ErrNoMemory the caller
// should evict an item from the same class (ClassFor(n)) and retry — the
// classic memcached eviction loop.
func (a *Allocator) Alloc(n int) (Handle, error) {
	ci := a.ClassFor(n)
	if ci < 0 {
		return 0, fmt.Errorf("slab: allocation of %d bytes exceeds largest chunk %d", n, a.sizes[len(a.sizes)-1])
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.free) == 0 {
		if !a.grow(ci, c) {
			return 0, ErrNoMemory
		}
	}
	h := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	c.allocated++
	return h, nil
}

// grow adds one page to class ci if the budget allows. Caller holds c.mu.
func (a *Allocator) grow(ci int, c *class) bool {
	a.mu.Lock()
	if a.budget < PageSize {
		a.mu.Unlock()
		return false
	}
	a.budget -= PageSize
	a.mu.Unlock()
	page := len(c.pages)
	c.pages = append(c.pages, make([]byte, PageSize))
	for i := c.perPage - 1; i >= 0; i-- {
		c.free = append(c.free, makeHandle(ci, page, i))
	}
	return true
}

// Free returns a chunk to its class's free list.
func (a *Allocator) Free(h Handle) {
	c := a.classes[h.class()]
	c.mu.Lock()
	c.free = append(c.free, h)
	c.allocated--
	c.mu.Unlock()
}

// Bytes returns the chunk's storage. The slice aliases the slab page; it is
// valid until the chunk is freed.
func (a *Allocator) Bytes(h Handle) []byte {
	c := a.classes[h.class()]
	base := h.chunk() * c.size
	return c.pages[h.page()][base : base+c.size]
}

// ClassOf returns the class index of an allocated chunk.
func (a *Allocator) ClassOf(h Handle) int { return h.class() }

// Stats describes per-class usage.
type Stats struct {
	Class     int
	ChunkSize int
	Pages     int
	Used      int
	Free      int
}

// StatsPerClass returns usage for every class that has pages.
func (a *Allocator) StatsPerClass() []Stats {
	var out []Stats
	for i, c := range a.classes {
		c.mu.Lock()
		if len(c.pages) > 0 {
			out = append(out, Stats{
				Class: i, ChunkSize: c.size, Pages: len(c.pages),
				Used: c.allocated, Free: len(c.free),
			})
		}
		c.mu.Unlock()
	}
	return out
}
