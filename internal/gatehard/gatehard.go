// Package gatehard holds the attack drivers for the gate-hardening suite
// (Garmr's attack classes against PKU gates, adapted to this simulation;
// see PAPERS.md). Each helper mounts one hostile behaviour — forging a
// protection register outside a trampoline, spinning inside the gate,
// probing a sibling tenant's arena, pinning every hardware key — and the
// tests in gatehard_test.go assert the hardening layer *contains* it:
// the store stays Healthy or repairs online, and no cross-tenant access
// succeeds.
//
// The helpers live in their own package (rather than in the test file) so
// the fault/model-check harnesses can reuse the same adversaries.
package gatehard

import (
	"errors"
	"fmt"
	"time"

	"plibmc/internal/hodor"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
)

// ErrSpinAborted is returned by HostileSpin when the spinner honours the
// watchdog's cooperative abort request (the middle rung of the escalation
// ladder, between the warning and the reap).
var ErrSpinAborted = errors.New("gatehard: hostile spin aborted on watchdog request")

// ErrSpinOutlived is returned when a hostile spin ran its whole MaxSpin
// without the watchdog ever acting on it — a containment failure in the
// layer under test, surfaced as an error instead of hanging the suite.
var ErrSpinOutlived = errors.New("gatehard: hostile spin outlived its bound without watchdog action")

// ReapTermination is the panic value a hostile spinner delivers when it
// observes its own session reaped: the simulation analog of the OS
// terminating the thread mid-call. It carries the ContainedAttack marker —
// the reap that provoked it already fenced the session and started the
// repair cycle, so the unwind itself must not trigger another one.
type ReapTermination struct{}

// ContainedAttack marks the termination as a contained hostile action.
func (ReapTermination) ContainedAttack() {}

func (ReapTermination) String() string {
	return "gatehard: thread terminated by watchdog reap"
}

// SpinOpts configures a hostile spin.
type SpinOpts struct {
	// HonorAbort makes the spinner cooperative: it returns ErrSpinAborted
	// once the watchdog requests an abort. A false value models the truly
	// hostile tenant that ignores every request and must be reaped.
	HonorAbort bool
	// Stop, when non-nil, is an external release valve: the spinner returns
	// nil as soon as it reports true (used to hold the gate open for
	// admission-control tests without involving the watchdog).
	Stop func() bool
	// MaxSpin bounds the spin so a containment failure cannot hang the
	// suite. Zero means five seconds.
	MaxSpin time.Duration
}

// HostileSpin occupies the gate with a call that does no useful work: the
// denial-of-service tenant. It polls the session's escalation state every
// few microseconds and reacts per opts; the caller is responsible for
// driving the watchdog (see DriveWatchdog) while the spin is in flight.
func HostileSpin(hs *hodor.Session, opts SpinOpts) error {
	maxSpin := opts.MaxSpin
	if maxSpin <= 0 {
		maxSpin = 5 * time.Second
	}
	_, err := hodor.Call(hs, func(_ *proc.Thread, _ struct{}) (struct{}, error) {
		deadline := time.Now().Add(maxSpin)
		for {
			if opts.Stop != nil && opts.Stop() {
				return struct{}{}, nil
			}
			if opts.HonorAbort && hs.AbortRequested() {
				return struct{}{}, ErrSpinAborted
			}
			if hs.Reaped() {
				panic(ReapTermination{})
			}
			if time.Now().After(deadline) {
				return struct{}{}, ErrSpinOutlived
			}
			time.Sleep(10 * time.Microsecond)
		}
	}, struct{}{})
	return err
}

// DriveWatchdog runs lib.WatchdogSweep every interval until stop is closed,
// standing in for the maintenance loop the store would normally run. It
// returns a channel that closes when the driver goroutine exits.
func DriveWatchdog(lib *hodor.Library, interval time.Duration, stop <-chan struct{}) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(interval):
				lib.WatchdogSweep(time.Now())
			}
		}
	}()
	return done
}

// WaitHealthy blocks until the library has completed at least minRecoveries
// repair cycles and left the Recovering state, returning how long that
// took. A poisoned library or an expired timeout is an error: containment
// means repairing online, never a permanent poison.
func WaitHealthy(lib *hodor.Library, minRecoveries uint64, timeout time.Duration) (time.Duration, error) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		if lib.Poisoned() {
			return 0, errors.New("gatehard: library poisoned — containment failed")
		}
		if m := lib.Metrics(); m.Recoveries >= minRecoveries && !lib.Recovering() {
			return time.Since(start), nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("gatehard: library not healthy after %v", timeout)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// ForgeRegister simulates Garmr's stray-wrpkru attack: a write of the
// protection register from application code, outside any trampoline,
// granting access to hardware key k. On real hardware this requires a
// wrpkru instruction the loader's binary scan missed; the simulation
// executes it directly and the hardening layer must make the forged grant
// worthless (stale after remap, scrubbed at the next gate crossing).
func ForgeRegister(t *proc.Thread, k pku.Key) pku.PKRU {
	forged := t.PKRU().WithAccess(k)
	proc.WRPKRU(t, forged)
	return forged
}

// CrossTenantRead mounts a confused-deputy probe: from inside attacker's
// amplified gate context, library code is asked to read n bytes at heap
// offset off — a sibling tenant's arena. With per-tenant domains the
// amplified register grants the library's pages plus the attacker's own,
// so the read must fault. The fault is re-panicked so it unwinds the call
// exactly as a hardware protection fault would, exercising the full
// containment path (fault → unwind → online repair).
func CrossTenantRead(hs *hodor.Session, g *pku.Guard, off, n uint64) ([]byte, error) {
	return hodor.Call(hs, func(t *proc.Thread, _ struct{}) ([]byte, error) {
		buf := make([]byte, n)
		if err := g.ReadBytes(t.PKRU(), off, buf); err != nil {
			panic(err)
		}
		return buf, nil
	}, struct{}{})
}

// CrossTenantWrite is the mutating flavour of the confused-deputy probe.
func CrossTenantWrite(hs *hodor.Session, g *pku.Guard, off uint64, data []byte) error {
	_, err := hodor.Call(hs, func(t *proc.Thread, _ struct{}) (struct{}, error) {
		if err := g.WriteBytes(t.PKRU(), off, data); err != nil {
			panic(err)
		}
		return struct{}{}, nil
	}, struct{}{})
	return err
}

// PinAll binds fresh virtual keys (with no pages) until the table reports
// every hardware key pinned, modelling a tenant that hoards protection
// keys. It returns how many keys it managed to pin and a release function
// that unbinds and frees them all.
func PinAll(vt *pku.VTable) (pinned int, release func()) {
	var held []pku.VKey
	for {
		v := vt.AllocVirtual()
		if _, err := vt.Bind(v); err != nil {
			// ErrAllKeysPinned: the hoard is complete. Retire the unbound
			// virtual key; it holds no hardware resources.
			vt.FreeVirtual(v) //nolint:errcheck
			break
		}
		held = append(held, v)
		if len(held) > 64 {
			// Far more pins than hardware keys exist: the table failed to
			// push back. Surface it as a huge count the test will reject.
			break
		}
	}
	return len(held), func() {
		for _, v := range held {
			vt.Unbind(v)
			vt.FreeVirtual(v) //nolint:errcheck
		}
	}
}

// Recovered runs fn and returns the value it panicked with (nil if it
// returned normally) — for asserting that a fenced zombie's direct access
// dies with a containment panic rather than touching shared state.
func Recovered(fn func()) (pv any) {
	defer func() { pv = recover() }()
	fn()
	return nil
}
