package server

import (
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"

	"plibmc/internal/client"
)

// TestIdleReadTimeout (ISSUE 7 satellite): a client that connects and then
// goes silent is dropped after ReadTimeout — a hoarded connection cannot
// pin a reader goroutine forever — while a client that keeps talking,
// however slowly between commands it stays under the limit, is served
// indefinitely.
func TestIdleReadTimeout(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "idle.sock")
	srv, err := New(Config{
		Network: "unix", Addr: sock, Threads: 2,
		ReadTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()

	// The camper: connects, says nothing. The server must hang up.
	camper, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer camper.Close()
	camper.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	start := time.Now()
	if _, err := camper.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("silent connection read %v after %v, want EOF (server hangup)",
			err, time.Since(start))
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("server took %v to drop the idle connection (limit 50ms)", elapsed)
	}

	// The talker: pauses under the limit between commands, works forever.
	c, err := client.Dial("unix", sock, client.Binary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		time.Sleep(20 * time.Millisecond)
		if v, _, _, err := c.Get([]byte("k")); err != nil || string(v) != "v" {
			t.Fatalf("paced client dropped on round %d: %q, %v", i, v, err)
		}
	}

	// A half-sent command is bounded by the same deadline: one byte of an
	// ASCII command, then silence, must not wedge the reader.
	straggler, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer straggler.Close()
	if _, err := straggler.Write([]byte("g")); err != nil {
		t.Fatal(err)
	}
	straggler.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := io.ReadAll(straggler); err != nil {
		t.Fatalf("half-command connection not dropped: %v", err)
	}
}
