package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"plibmc/internal/protocol"
)

func newTestStore() *Store {
	return NewStore(16<<20, 10)
}

func TestBaselineSetGetDelete(t *testing.T) {
	s := newTestStore()
	if st := s.Set([]byte("k"), []byte("v"), 5, 0); st != protocol.StatusOK {
		t.Fatalf("set = %v", st)
	}
	v, flags, cas, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v" || flags != 5 || cas == 0 {
		t.Fatalf("get = %q %d %d %v", v, flags, cas, ok)
	}
	if _, _, _, ok := s.Get([]byte("nope")); ok {
		t.Fatal("phantom hit")
	}
	if st := s.Delete([]byte("k")); st != protocol.StatusOK {
		t.Fatalf("delete = %v", st)
	}
	if st := s.Delete([]byte("k")); st != protocol.StatusKeyNotFound {
		t.Fatalf("re-delete = %v", st)
	}
}

func TestBaselineConditionalStores(t *testing.T) {
	s := newTestStore()
	if st := s.Replace([]byte("k"), []byte("x"), 0, 0); st != protocol.StatusKeyNotFound {
		t.Fatalf("replace missing = %v", st)
	}
	if st := s.Add([]byte("k"), []byte("v1"), 0, 0); st != protocol.StatusOK {
		t.Fatalf("add = %v", st)
	}
	if st := s.Add([]byte("k"), []byte("v2"), 0, 0); st != protocol.StatusKeyExists {
		t.Fatalf("re-add = %v", st)
	}
	_, _, cas, _ := s.Get([]byte("k"))
	if st := s.CAS([]byte("k"), []byte("v3"), 0, 0, cas+1); st != protocol.StatusKeyExists {
		t.Fatalf("stale cas = %v", st)
	}
	if st := s.CAS([]byte("k"), []byte("v3"), 0, 0, cas); st != protocol.StatusOK {
		t.Fatalf("cas = %v", st)
	}
	if st := s.Append([]byte("k"), []byte("+")); st != protocol.StatusOK {
		t.Fatalf("append = %v", st)
	}
	if st := s.Prepend([]byte("k"), []byte("-")); st != protocol.StatusOK {
		t.Fatalf("prepend = %v", st)
	}
	v, _, _, _ := s.Get([]byte("k"))
	if string(v) != "-v3+" {
		t.Fatalf("value = %q", v)
	}
	if st := s.Append([]byte("missing"), []byte("x")); st != protocol.StatusNotStored {
		t.Fatalf("append missing = %v", st)
	}
}

func TestBaselineIncrDecrEdges(t *testing.T) {
	s := newTestStore()
	if _, st := s.IncrDecr([]byte("n"), 1, false); st != protocol.StatusKeyNotFound {
		t.Fatalf("incr missing = %v", st)
	}
	s.Set([]byte("n"), []byte("9"), 0, 0)
	if v, st := s.IncrDecr([]byte("n"), 1, false); st != protocol.StatusOK || v != 10 {
		t.Fatalf("incr across width = %d %v", v, st)
	}
	got, _, _, _ := s.Get([]byte("n"))
	if string(got) != "10" {
		t.Fatalf("stored = %q", got)
	}
	if v, st := s.IncrDecr([]byte("n"), 100, true); st != protocol.StatusOK || v != 0 {
		t.Fatalf("saturating decr = %d %v", v, st)
	}
	s.Set([]byte("n"), []byte("xyz"), 0, 0)
	if _, st := s.IncrDecr([]byte("n"), 1, false); st != protocol.StatusNonNumeric {
		t.Fatalf("non-numeric = %v", st)
	}
	s.Set([]byte("n"), []byte("18446744073709551615"), 0, 0)
	if v, st := s.IncrDecr([]byte("n"), 1, false); st != protocol.StatusOK || v != 0 {
		t.Fatalf("wrap = %d %v", v, st)
	}
}

func TestBaselineExpiryAndTouch(t *testing.T) {
	s := newTestStore()
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	s.Set([]byte("k"), []byte("v"), 0, 50)
	now += 49
	if _, _, _, ok := s.Get([]byte("k")); !ok {
		t.Fatal("alive key missed")
	}
	if st := s.Touch([]byte("k"), 500); st != protocol.StatusOK {
		t.Fatalf("touch = %v", st)
	}
	now += 400
	if _, _, _, ok := s.Get([]byte("k")); !ok {
		t.Fatal("touched key died early")
	}
	now += 200
	if _, _, _, ok := s.Get([]byte("k")); ok {
		t.Fatal("expired key served")
	}
	if st := s.Touch([]byte("k"), 10); st != protocol.StatusKeyNotFound {
		t.Fatalf("touch expired = %v", st)
	}
	snap := s.Snapshot()
	if snap.Expired == 0 {
		t.Fatal("expired counter")
	}
	// Negative expiry: dead on arrival.
	s.Set([]byte("neg"), []byte("v"), 0, -5)
	if _, _, _, ok := s.Get([]byte("neg")); ok {
		t.Fatal("negative-expiry key served")
	}
}

func TestBaselineLRUWithinEachClass(t *testing.T) {
	// Classic memcached couples eviction to the slab class: exhausting
	// one class evicts that class's LRU tail and leaves other classes
	// untouched — the calcification the paper removed.
	s := NewStore(3<<20, 10) // 3 slab pages budget
	small := bytes.Repeat([]byte{'s'}, 100)
	large := bytes.Repeat([]byte{'L'}, 8000)
	// One page of small items, one page of large; third page spare.
	if st := s.Set([]byte("small-sentinel"), small, 0, 0); st != protocol.StatusOK {
		t.Fatal(st)
	}
	if st := s.Set([]byte("large-sentinel"), large, 0, 0); st != protocol.StatusOK {
		t.Fatal(st)
	}
	// Now flood the large class far past its share of the budget.
	for i := 0; i < 2000; i++ {
		if st := s.Set([]byte(fmt.Sprintf("large-%04d", i)), large, 0, 0); st != protocol.StatusOK {
			t.Fatalf("large set %d: %v", i, st)
		}
	}
	snap := s.Snapshot()
	if snap.Evictions == 0 {
		t.Fatal("large-class flood should evict")
	}
	// The large sentinel was the class's LRU tail: evicted.
	if _, _, _, ok := s.Get([]byte("large-sentinel")); ok {
		t.Fatal("large sentinel survived its class's pressure")
	}
	// The small class was never under pressure: its sentinel survives.
	if _, _, _, ok := s.Get([]byte("small-sentinel")); !ok {
		t.Fatal("small-class item evicted by large-class pressure (classes should be independent)")
	}
}

func TestBaselineFlushAllAndStats(t *testing.T) {
	s := newTestStore()
	for i := 0; i < 50; i++ {
		s.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0, 0)
	}
	if snap := s.Snapshot(); snap.CurrItems != 50 || snap.Bytes == 0 {
		t.Fatalf("pre-flush stats: %+v", snap)
	}
	s.FlushAll()
	snap := s.Snapshot()
	if snap.CurrItems != 0 || snap.Bytes != 0 {
		t.Fatalf("post-flush stats: %+v", snap)
	}
}

func TestBaselineConcurrent(t *testing.T) {
	s := newTestStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := []byte(fmt.Sprintf("key-%d", (g*31+i)%200))
				switch i % 3 {
				case 0:
					if st := s.Set(k, []byte(fmt.Sprintf("v%d", i)), 0, 0); st != protocol.StatusOK {
						t.Errorf("set: %v", st)
						return
					}
				case 1:
					s.Get(k)
				case 2:
					s.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := s.Set([]byte("after"), []byte("ok"), 0, 0); st != protocol.StatusOK {
		t.Fatal("store broken after stress")
	}
}

func TestBaselineKeyTooLong(t *testing.T) {
	s := newTestStore()
	long := bytes.Repeat([]byte{'k'}, protocol.MaxKeyLen+1)
	if st := s.Set(long, []byte("v"), 0, 0); st != protocol.StatusInvalidArgs {
		t.Fatalf("long key = %v", st)
	}
}

// TestGetBumpsClassLRU is the regression test for FIFO eviction: Get must
// move the accessed item to the head of its class LRU so the eviction
// tail is the least-recently-*used* item, not the least-recently-stored.
func TestGetBumpsClassLRU(t *testing.T) {
	s := NewStore(1<<20, 10) // one slab page: the large class holds few items
	large := bytes.Repeat([]byte{'x'}, 8000)
	if st := s.Set([]byte("protected"), large, 0, 0); st != protocol.StatusOK {
		t.Fatal(st)
	}
	if st := s.Set([]byte("victim"), large, 0, 0); st != protocol.StatusOK {
		t.Fatal(st)
	}
	// Access the older item: it must become most recently used.
	if _, _, _, ok := s.Get([]byte("protected")); !ok {
		t.Fatal("miss on live key")
	}
	// Flood the class until the first eviction. The tail it evicts must be
	// the unaccessed "victim"; pre-fix the list kept pure insertion order,
	// so the accessed-but-older "protected" was the tail and died here.
	for i := 0; s.Snapshot().Evictions == 0; i++ {
		if i > 1000 {
			t.Fatal("no eviction after 1000 sets")
		}
		if st := s.Set([]byte(fmt.Sprintf("fill-%04d", i)), large, 0, 0); st != protocol.StatusOK {
			t.Fatalf("fill set: %v", st)
		}
	}
	if _, _, _, ok := s.Get([]byte("victim")); ok {
		t.Fatal("victim survived: eviction tail was not the least recently used item")
	}
	if _, _, _, ok := s.Get([]byte("protected")); !ok {
		t.Fatal("accessed item evicted: Get did not bump the class LRU")
	}
}

// TestGATBumpsClassLRU: GetAndTouch is a retrieval and must bump too.
func TestGATBumpsClassLRU(t *testing.T) {
	s := NewStore(1<<20, 10)
	large := bytes.Repeat([]byte{'x'}, 8000)
	s.Set([]byte("protected"), large, 0, 0)
	s.Set([]byte("victim"), large, 0, 0)
	if _, _, _, ok := s.GetAndTouch([]byte("protected"), 0); !ok {
		t.Fatal("miss on live key")
	}
	for i := 0; s.Snapshot().Evictions == 0; i++ {
		if i > 1000 {
			t.Fatal("no eviction after 1000 sets")
		}
		if st := s.Set([]byte(fmt.Sprintf("fill-%04d", i)), large, 0, 0); st != protocol.StatusOK {
			t.Fatalf("fill set: %v", st)
		}
	}
	if _, _, _, ok := s.GetAndTouch([]byte("protected"), 0); !ok {
		t.Fatal("accessed item evicted: GetAndTouch did not bump the class LRU")
	}
}

// TestDeleteExpiredIsNotFound: deleting an expired-but-unreaped item must
// report NOT_FOUND (the item is logically gone) and count an expiry, not
// a successful delete.
func TestDeleteExpiredIsNotFound(t *testing.T) {
	s := newTestStore()
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	s.Set([]byte("k"), []byte("v"), 0, 50)
	now += 100
	if st := s.Delete([]byte("k")); st != protocol.StatusKeyNotFound {
		t.Fatalf("delete of expired item = %v, want KeyNotFound", st)
	}
	snap := s.Snapshot()
	if snap.Expired != 1 {
		t.Fatalf("Expired = %d, want 1", snap.Expired)
	}
	if snap.CurrItems != 0 {
		t.Fatalf("CurrItems = %d, want 0 (expired item must be reaped)", snap.CurrItems)
	}
}

// TestTouchAndGATCounters: GetAndTouch is a get (and a touch); Touch is a
// touch. Both used to update no counters at all.
func TestTouchAndGATCounters(t *testing.T) {
	s := newTestStore()
	s.Set([]byte("k"), []byte("v"), 0, 0)
	if _, _, _, ok := s.GetAndTouch([]byte("k"), 100); !ok {
		t.Fatal("gat hit missed")
	}
	if _, _, _, ok := s.GetAndTouch([]byte("gone"), 100); ok {
		t.Fatal("gat phantom hit")
	}
	if st := s.Touch([]byte("k"), 100); st != protocol.StatusOK {
		t.Fatalf("touch = %v", st)
	}
	if st := s.Touch([]byte("gone"), 100); st != protocol.StatusKeyNotFound {
		t.Fatalf("touch miss = %v", st)
	}
	snap := s.Snapshot()
	if snap.Gets != 2 || snap.GetHits != 1 || snap.GetMisses != 1 {
		t.Fatalf("get counters = %d/%d/%d, want 2/1/1", snap.Gets, snap.GetHits, snap.GetMisses)
	}
	if snap.Touches != 4 || snap.TouchHits != 2 || snap.TouchMisses != 2 {
		t.Fatalf("touch counters = %d/%d/%d, want 4/2/2", snap.Touches, snap.TouchHits, snap.TouchMisses)
	}
}
