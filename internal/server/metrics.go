package server

import (
	"net/http"
	"time"

	"plibmc/internal/metrics"
)

// HTTP exporter for the baseline server, shaped like the protected-library
// store's (metric names prefixed mcbase_ instead of plibmc_) so the two
// can be scraped side by side in an experiment.

// Samples renders the store's counters and latency histograms as
// Prometheus samples.
func (s *Store) Samples() []metrics.Sample {
	snap := s.Snapshot()
	lat := s.LatencySnapshot()
	var out []metrics.Sample
	g := func(name string, v float64, labels ...string) {
		out = append(out, metrics.Sample{Name: name, Labels: metrics.L(labels...), Value: v})
	}
	g("mcbase_ops_total", float64(snap.Gets), "op", "get")
	g("mcbase_ops_total", float64(snap.Sets), "op", "set")
	g("mcbase_ops_total", float64(snap.Deletes), "op", "delete")
	g("mcbase_ops_total", float64(snap.Incrs), "op", "incr")
	g("mcbase_ops_total", float64(snap.Decrs), "op", "decr")
	g("mcbase_ops_total", float64(snap.Touches), "op", "touch")
	g("mcbase_get_hits_total", float64(snap.GetHits))
	g("mcbase_get_misses_total", float64(snap.GetMisses))
	g("mcbase_touch_hits_total", float64(snap.TouchHits))
	g("mcbase_touch_misses_total", float64(snap.TouchMisses))
	g("mcbase_evictions_total", float64(snap.Evictions))
	g("mcbase_expired_total", float64(snap.Expired))
	g("mcbase_curr_items", float64(snap.CurrItems))
	g("mcbase_bytes", float64(snap.Bytes))
	for class := range lat {
		h := &lat[class]
		name := LatClassNames[class]
		for _, q := range []struct {
			q string
			p float64
		}{{"0.5", 50}, {"0.99", 99}} {
			g("mcbase_op_latency_seconds", h.Percentile(q.p).Seconds(), "op", name, "quantile", q.q)
		}
		g("mcbase_op_latency_seconds_count", float64(h.Count()), "op", name)
		g("mcbase_op_latency_seconds_sum", (time.Duration(h.Count()) * h.Mean()).Seconds(), "op", name)
	}
	return out
}

// MetricsHandler serves /metrics and /debug/vars for the baseline store.
func (s *Store) MetricsHandler() http.Handler {
	return metrics.Handler(func() ([]metrics.Sample, map[string]any) {
		snap := s.Snapshot()
		return s.Samples(), map[string]any{
			"cmd_get":      snap.Gets,
			"cmd_set":      snap.Sets,
			"cmd_delete":   snap.Deletes,
			"cmd_touch":    snap.Touches,
			"get_hits":     snap.GetHits,
			"get_misses":   snap.GetMisses,
			"touch_hits":   snap.TouchHits,
			"touch_misses": snap.TouchMisses,
			"curr_items":   snap.CurrItems,
			"bytes":        snap.Bytes,
			"evictions":    snap.Evictions,
			"expired":      snap.Expired,
		}
	})
}
