package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"plibmc/internal/client"
	"plibmc/internal/protocol"
)

// startServer launches a server on a Unix socket in a temp dir and returns
// a dialer for it.
func startServer(t testing.TB, threads int) (*Server, func(p client.Protocol) *client.Client) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "mc.sock")
	srv, err := New(Config{Network: "unix", Addr: sock, Threads: threads, MemLimit: 64 << 20, HashPower: 12})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, func(p client.Protocol) *client.Client {
		c, err := client.Dial("unix", sock, p)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

func testClientOps(t *testing.T, c *client.Client) {
	t.Helper()
	if err := c.Set([]byte("k"), []byte("v1"), 5, 0); err != nil {
		t.Fatal(err)
	}
	v, flags, cas, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v1" || flags != 5 || cas == 0 {
		t.Fatalf("get = %q flags=%d cas=%d err=%v", v, flags, cas, err)
	}
	if _, _, _, err := c.Get([]byte("nope")); err == nil {
		t.Fatal("miss should error")
	}
	if err := c.Add([]byte("k"), []byte("x"), 0, 0); err == nil {
		t.Fatal("add on existing should fail")
	}
	if err := c.Replace([]byte("k"), []byte("v2"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.CAS([]byte("k"), []byte("v3"), 0, 0, cas); err == nil {
		t.Fatal("stale cas should fail")
	}
	_, _, cas2, _ := c.Get([]byte("k"))
	if err := c.CAS([]byte("k"), []byte("v3"), 0, 0, cas2); err != nil {
		t.Fatal(err)
	}
	if err := c.Append([]byte("k"), []byte("+tail")); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepend([]byte("k"), []byte("head+")); err != nil {
		t.Fatal(err)
	}
	v, _, _, _ = c.Get([]byte("k"))
	if string(v) != "head+v3+tail" {
		t.Fatalf("value = %q", v)
	}
	c.Set([]byte("n"), []byte("10"), 0, 0)
	if n, err := c.Increment([]byte("n"), 7); err != nil || n != 17 {
		t.Fatalf("incr = %d, %v", n, err)
	}
	if n, err := c.Decrement([]byte("n"), 20); err != nil || n != 0 {
		t.Fatalf("decr = %d, %v", n, err)
	}
	if err := c.Touch([]byte("k"), 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete([]byte("k")); err == nil {
		t.Fatal("double delete should fail")
	}
	ver, err := c.Version()
	if err != nil || !strings.Contains(ver, "baseline") {
		t.Fatalf("version = %q, %v", ver, err)
	}
	stats, err := c.Stats()
	if err != nil || stats["cmd_get"] == "" {
		t.Fatalf("stats = %v, %v", stats, err)
	}
	if err := c.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Get([]byte("n")); err == nil {
		t.Fatal("flushed key still present")
	}
}

func TestEndToEndBinary(t *testing.T) {
	_, dial := startServer(t, 4)
	testClientOps(t, dial(client.Binary))
}

func TestEndToEndASCII(t *testing.T) {
	_, dial := startServer(t, 4)
	testClientOps(t, dial(client.ASCII))
}

func TestMGetBatching(t *testing.T) {
	for _, proto := range []client.Protocol{client.Binary, client.ASCII} {
		name := map[client.Protocol]string{client.Binary: "binary", client.ASCII: "ascii"}[proto]
		t.Run(name, func(t *testing.T) {
			_, dial := startServer(t, 4)
			c := dial(proto)
			var keys [][]byte
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("key-%02d", i))
				keys = append(keys, k)
				if i%2 == 0 {
					if err := c.Set(k, []byte(fmt.Sprintf("val-%02d", i)), 0, 0); err != nil {
						t.Fatal(err)
					}
				}
			}
			got, err := c.MGet(keys)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 25 {
				t.Fatalf("mget returned %d values, want 25", len(got))
			}
			for i := 0; i < 50; i += 2 {
				k := fmt.Sprintf("key-%02d", i)
				if string(got[k]) != fmt.Sprintf("val-%02d", i) {
					t.Fatalf("mget[%s] = %q", k, got[k])
				}
			}
		})
	}
}

func TestBothProtocolsShareStore(t *testing.T) {
	_, dial := startServer(t, 2)
	bin := dial(client.Binary)
	asc := dial(client.ASCII)
	if err := bin.Set([]byte("from-binary"), []byte("1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := asc.Get([]byte("from-binary"))
	if err != nil || string(v) != "1" {
		t.Fatalf("ascii client sees %q, %v", v, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, 4)
	sock := srv.Addr().String()
	const nClients = 8
	const iters = 300
	var wg sync.WaitGroup
	errCh := make(chan error, nClients)
	for i := 0; i < nClients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial("unix", sock, client.Binary)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for j := 0; j < iters; j++ {
				k := []byte(fmt.Sprintf("c%d-k%d", id, j%20))
				if err := c.Set(k, []byte(fmt.Sprintf("v%d", j)), 0, 0); err != nil {
					errCh <- err
					return
				}
				if _, _, _, err := c.Get(k); err != nil {
					errCh <- fmt.Errorf("get %s: %w", k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	snap := srv.Store().Snapshot()
	if snap.Gets != nClients*iters || snap.Sets != nClients*iters {
		t.Fatalf("server saw gets=%d sets=%d", snap.Gets, snap.Sets)
	}
}

func TestTCPTransport(t *testing.T) {
	srv, err := New(Config{Network: "tcp", Addr: "127.0.0.1:0", Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	c, err := client.Dial("tcp", srv.Addr().String(), client.Binary)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := c.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("tcp get = %q, %v", v, err)
	}
}

func TestStoreEvictionWithinClass(t *testing.T) {
	// The classic coupling: exhaustion in one class evicts from that class.
	st := NewStore(2<<20, 10) // 2 pages
	val := make([]byte, 900)
	n := 0
	for ; n < 5000; n++ {
		status := st.Set([]byte(fmt.Sprintf("key-%04d", n)), val, 0, 0)
		if status != protocol.StatusOK {
			t.Fatalf("set %d failed: %v", n, status)
		}
	}
	snap := st.Snapshot()
	if snap.Evictions == 0 {
		t.Fatal("expected slab-class evictions")
	}
	if _, _, _, ok := st.Get([]byte(fmt.Sprintf("key-%04d", n-1))); !ok {
		t.Fatal("most recent item evicted")
	}
	if _, _, _, ok := st.Get([]byte("key-0000")); ok {
		t.Fatal("oldest item survived")
	}
}

func TestDispatchUnknown(t *testing.T) {
	st := NewStore(1<<20, 8)
	rep := Dispatch(st, &protocol.Command{Op: protocol.Op(200)}, "v")
	if rep.Status != protocol.StatusUnknownCommand {
		t.Fatalf("status = %v", rep.Status)
	}
}

func TestExpiryIntegration(t *testing.T) {
	srv, dial := startServer(t, 2)
	now := int64(5000)
	srv.Store().SetClock(func() int64 { return now })
	c := dial(client.Binary)
	if err := c.Set([]byte("k"), []byte("v"), 0, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	now += 11
	if _, _, _, err := c.Get([]byte("k")); err == nil {
		t.Fatal("expired key served over the wire")
	}
	var e error
	if _, e = c.Increment([]byte("k"), 1); e == nil {
		t.Fatal("incr on expired key should fail")
	}
	if !errors.Is(e, e) { // sanity: errors flow through
		t.Fatal("impossible")
	}
}

func TestStatsSlabsAndItems(t *testing.T) {
	_, dial := startServer(t, 2)
	c := dial(client.ASCII)
	for i := 0; i < 20; i++ {
		if err := c.Set([]byte(fmt.Sprintf("k%d", i)), []byte("some value data"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// "stats slabs" over the wire via a raw ASCII exchange.
	raw, err := client.Dial("unix", strings.TrimPrefix("", "")+"", client.ASCII)
	_ = raw
	_ = err
	// Use the protocol-level path through Dispatch instead: simpler and
	// equally end-to-end for the stats formatting.
	st := NewStore(16<<20, 10)
	for i := 0; i < 20; i++ {
		st.Set([]byte(fmt.Sprintf("k%d", i)), []byte("some value data"), 0, 0)
	}
	rep := Dispatch(st, &protocol.Command{Op: protocol.OpStats, StatsArg: "slabs"}, "v")
	if len(rep.Stats) == 0 {
		t.Fatal("stats slabs empty")
	}
	found := false
	for _, kv := range rep.Stats {
		if strings.HasSuffix(kv[0], ":used_chunks") && kv[1] == "20" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no class shows 20 used chunks: %v", rep.Stats)
	}
	rep = Dispatch(st, &protocol.Command{Op: protocol.OpStats, StatsArg: "items"}, "v")
	if len(rep.Stats) == 0 {
		t.Fatal("stats items empty")
	}
}

// TestDeleteExpiredWireFrame pins the exact ASCII bytes a client sees when
// deleting a key that has expired but not yet been reaped: NOT_FOUND, the
// same frame as for a key that never existed. Pre-fix the server answered
// DELETED.
func TestDeleteExpiredWireFrame(t *testing.T) {
	srv, _ := startServer(t, 1)
	var now atomic.Int64
	now.Store(5000)
	srv.Store().SetClock(now.Load)

	c, err := net.Dial("unix", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	roundTrip := func(req, want string) {
		t.Helper()
		if _, err := c.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line != want {
			t.Fatalf("reply to %q = %q, want %q", req, line, want)
		}
	}

	roundTrip("set k 0 50 1\r\nv\r\n", "STORED\r\n")
	now.Add(100) // key is now expired but still linked
	roundTrip("delete k\r\n", "NOT_FOUND\r\n")
	// The reap was an expiry, not a delete: the item is gone for real.
	roundTrip("delete k\r\n", "NOT_FOUND\r\n")
}

// TestFlagsOverflowWireFrame pins the wire behaviour for a storage command
// whose flags field exceeds uint32: the server must answer CLIENT_ERROR,
// not silently wrap the flags to 0 and store the value. Pre-fix the parser
// accepted "set k 4294967296 0 1" and stored flags=0.
func TestFlagsOverflowWireFrame(t *testing.T) {
	srv, _ := startServer(t, 1)
	c, err := net.Dial("unix", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	if _, err := c.Write([]byte("set k 4294967296 0 1\r\nv\r\n")); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "CLIENT_ERROR") || !strings.Contains(line, "bad command line format") {
		t.Fatalf("reply = %q, want CLIENT_ERROR ... bad command line format", line)
	}
	// The value must not have landed: a fresh connection's get misses.
	c2, err := net.Dial("unix", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	r2 := bufio.NewReader(c2)
	if _, err := c2.Write([]byte("get k\r\n")); err != nil {
		t.Fatal(err)
	}
	line, err = r2.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if line != "END\r\n" {
		t.Fatalf("get after rejected set = %q, want END", line)
	}
}

// TestStatsLatencyWire exercises the "stats latency" subcommand: per-op
// service-time percentiles out of the baseline's single-lock histograms.
func TestStatsLatencyWire(t *testing.T) {
	srv, _ := startServer(t, 1)
	_ = srv
	c, err := net.Dial("unix", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	send := func(req string) {
		t.Helper()
		if _, err := c.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
	}
	expectLine := func(want string) {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line != want {
			t.Fatalf("got %q, want %q", line, want)
		}
	}
	send("set k 0 0 1\r\nv\r\n")
	expectLine("STORED\r\n")
	send("get k\r\n")
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "END\r\n" {
			break
		}
	}
	send("stats latency\r\n")
	stats := map[string]string{}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "END\r\n" {
			break
		}
		var k, v string
		if _, err := fmt.Sscanf(line, "STAT %s %s", &k, &v); err != nil {
			t.Fatalf("bad stat line %q: %v", line, err)
		}
		stats[k] = v
	}
	if stats["get:count"] != "1" || stats["set:count"] != "1" {
		t.Fatalf("latency counts = get:%s set:%s, want 1/1", stats["get:count"], stats["set:count"])
	}
	for _, k := range []string{"get:p50_us", "get:p99_us", "delete:count"} {
		if _, ok := stats[k]; !ok {
			t.Fatalf("stats latency missing %s (have %v)", k, stats)
		}
	}
}
