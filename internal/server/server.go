package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"plibmc/internal/protocol"
)

// Server is the socket front end: an accept loop plus a fixed pool of
// server threads. Connection readers parse requests and hand them to the
// pool; the pool executes against the store and writes replies. The pool
// size is the paper's "server threads" knob (Figures 6–9 compare 4 and 8):
// when every server thread is busy, parsed requests queue, which is exactly
// the bottleneck the paper observes once clients outnumber server capacity.
type Server struct {
	store       *Store
	ln          net.Listener
	threads     int
	readTimeout time.Duration

	reqCh   chan request
	wg      sync.WaitGroup
	connWG  sync.WaitGroup
	closed  atomic.Bool
	version string
}

// request is one connection's turn on the server-thread pool: the whole
// run of commands the client had pipelined, handed over together so a
// pipeline costs one queue round trip instead of one per command.
type request struct {
	conn *connState
	cmds []*protocol.Command
	done chan struct{}
}

// maxPipeline bounds how many pipelined commands ride one pool hand-off.
const maxPipeline = 64

type connState struct {
	c      net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	binary bool
}

// Config configures a server.
type Config struct {
	// Network and Addr as for net.Listen; "unix" + socket path reproduces
	// the paper's Unix-domain-socket setup.
	Network string
	Addr    string
	// Threads is the number of server threads (the 4/8 knob).
	Threads int
	// MemLimit is the store's -m in bytes.
	MemLimit int64
	// HashPower is log2 of the bucket count.
	HashPower uint
	// ReadTimeout, when positive, bounds how long a connection may sit
	// idle between commands before the server drops it — the socket-side
	// twin of the library gate's live-call budget (ISSUE 7): a client
	// holding a connection open without speaking cannot hoard a reader
	// goroutine forever. Zero keeps the historical block-forever reads.
	ReadTimeout time.Duration
}

// New creates a server and starts listening, but serves no connections
// until Serve is called.
func New(cfg Config) (*Server, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.MemLimit <= 0 {
		cfg.MemLimit = 64 << 20
	}
	if cfg.HashPower == 0 {
		cfg.HashPower = 16
	}
	ln, err := net.Listen(cfg.Network, cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	return &Server{
		store:       NewStore(cfg.MemLimit, cfg.HashPower),
		ln:          ln,
		threads:     cfg.Threads,
		readTimeout: cfg.ReadTimeout,
		reqCh:       make(chan request, 1024),
		version:     "1.6.0-baseline",
	}, nil
}

// Store exposes the underlying store (for preloading in benchmarks).
func (s *Server) Store() *Store { return s.store }

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve runs the accept loop and the server-thread pool until Close.
func (s *Server) Serve() {
	for i := 0; i < s.threads; i++ {
		s.wg.Add(1)
		go s.serverThread()
	}
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connWG.Add(1)
		go s.handleConn(c)
	}
}

// Close stops the listener and waits for server threads to drain.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	s.ln.Close()
	s.connWG.Wait()
	close(s.reqCh)
	s.wg.Wait()
}

// handleConn sniffs the protocol (binary frames start with 0x80) and runs
// the read loop for one client connection.
func (s *Server) handleConn(c net.Conn) {
	defer s.connWG.Done()
	defer c.Close()
	cs := &connState{
		c: c,
		r: bufio.NewReaderSize(c, 64<<10),
		w: bufio.NewWriterSize(c, 64<<10),
	}
	// armIdle bounds each blocking wait for (and read of) the next
	// command; the deadline is cleared once the command is in hand so the
	// pool hand-off and reply write are not charged against idle time.
	armIdle := func() {
		if s.readTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.readTimeout)) //nolint:errcheck
		}
	}
	disarmIdle := func() {
		if s.readTimeout > 0 {
			c.SetReadDeadline(time.Time{}) //nolint:errcheck
		}
	}
	armIdle()
	first, err := cs.r.Peek(1)
	if err != nil {
		return
	}
	cs.binary = first[0] == 0x80
	done := make(chan struct{})
	for {
		// Read one command (blocking, bounded by the idle timeout), then
		// greedily drain whatever else the client pipelined: the whole run
		// crosses the pool once.
		cmds := make([]*protocol.Command, 0, 4)
		armIdle()
		cmd, err := s.readCommand(cs)
		disarmIdle()
		if err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				// Protocol error: best-effort error line for ASCII.
				if !cs.binary {
					fmt.Fprintf(cs.w, "CLIENT_ERROR %v\r\n", err)
					cs.w.Flush()
				}
			}
			return
		}
		quit := cmd.Op == protocol.OpQuit
		var readErr error
		if !quit {
			cmds = append(cmds, cmd)
			for len(cmds) < maxPipeline && cs.r.Buffered() > 0 {
				c2, e := s.readCommand(cs)
				if e != nil {
					readErr = e
					break
				}
				if c2.Op == protocol.OpQuit {
					quit = true
					break
				}
				cmds = append(cmds, c2)
			}
		}
		if len(cmds) > 0 {
			// When every server thread is busy this send queues (and, past
			// the channel capacity, blocks) — the server-side backpressure
			// whose effect the paper measures in Figures 6–9.
			s.reqCh <- request{conn: cs, cmds: cmds, done: done}
			<-done
		}
		if readErr != nil && !cs.binary {
			fmt.Fprintf(cs.w, "CLIENT_ERROR %v\r\n", readErr)
		}
		if quit || readErr != nil {
			cs.w.Flush()
			return
		}
		// Flush once the client has nothing else pipelined: batches go
		// out in one write.
		if cs.r.Buffered() == 0 {
			if err := cs.w.Flush(); err != nil {
				return
			}
		}
	}
}

// readCommand reads one request in the connection's protocol. ASCII
// multi-key gets arrive with the extra keys in Command.Keys.
func (s *Server) readCommand(cs *connState) (*protocol.Command, error) {
	if cs.binary {
		return protocol.ReadBinaryCommand(cs.r)
	}
	return protocol.ReadASCIICommand(cs.r)
}

// serverThread executes queued requests: the work one memcached worker
// thread does after its select() returns.
func (s *Server) serverThread() {
	defer s.wg.Done()
	for req := range s.reqCh {
		for _, cmd := range req.cmds {
			s.execute(req.conn, cmd)
		}
		req.done <- struct{}{}
	}
}

func (s *Server) execute(cs *connState, cmd *protocol.Command) {
	if !cs.binary && cmd.Op == protocol.OpGet && len(cmd.Keys) > 0 {
		// ASCII multi-get: VALUE blocks then one END. This path bypasses
		// Dispatch, so it feeds the latency histograms itself, per key.
		for _, k := range cmd.AllKeys() {
			start := time.Now()
			v, flags, cas, ok := s.store.Get(k)
			s.store.RecordLatency(LatGet, time.Since(start))
			if ok {
				fmt.Fprintf(cs.w, "VALUE %s %d %d %d\r\n", k, flags, len(v), cas)
				cs.w.Write(v)
				cs.w.WriteString("\r\n")
			}
		}
		cs.w.WriteString("END\r\n")
		return
	}
	rep := Dispatch(s.store, cmd, s.version)
	if cs.binary {
		if cmd.Quiet && skipQuietReply(cmd, rep) {
			return
		}
		protocol.WriteBinaryReply(cs.w, cmd, rep)
	} else {
		protocol.WriteASCIIReply(cs.w, cmd, rep)
	}
}

// skipQuietReply implements the binary protocol's quiet semantics: GETQ
// suppresses misses, SETQ suppresses success.
func skipQuietReply(cmd *protocol.Command, rep *protocol.Reply) bool {
	switch cmd.Op {
	case protocol.OpGet:
		return rep.Status == protocol.StatusKeyNotFound
	case protocol.OpSet:
		return rep.Status == protocol.StatusOK
	}
	return false
}

// latClassOf maps a protocol op to a latency class, or -1 for ops that
// are not timed (stats, version, noop, flush).
func latClassOf(op protocol.Op) int {
	switch op {
	case protocol.OpGet, protocol.OpGAT:
		return LatGet
	case protocol.OpSet, protocol.OpAdd, protocol.OpReplace, protocol.OpCAS,
		protocol.OpAppend, protocol.OpPrepend:
		return LatSet
	case protocol.OpDelete:
		return LatDelete
	case protocol.OpTouch:
		return LatTouch
	case protocol.OpIncr, protocol.OpDecr:
		return LatIncr
	}
	return -1
}

// Dispatch executes one protocol command against a baseline store. It is
// exported so the hybrid daemon can reuse it.
func Dispatch(st *Store, cmd *protocol.Command, version string) *protocol.Reply {
	if class := latClassOf(cmd.Op); class >= 0 {
		start := time.Now()
		defer func() { st.RecordLatency(class, time.Since(start)) }()
	}
	rep := &protocol.Reply{Status: protocol.StatusOK, Opaque: cmd.Opaque}
	switch cmd.Op {
	case protocol.OpGet:
		v, flags, cas, ok := st.Get(cmd.Key)
		if !ok {
			rep.Status = protocol.StatusKeyNotFound
		} else {
			rep.Value, rep.Flags, rep.CAS = v, flags, cas
		}
	case protocol.OpSet:
		rep.Status = st.Set(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime)
	case protocol.OpAdd:
		rep.Status = st.Add(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime)
	case protocol.OpReplace:
		rep.Status = st.Replace(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime)
	case protocol.OpCAS:
		rep.Status = st.CAS(cmd.Key, cmd.Value, cmd.Flags, cmd.Exptime, cmd.CAS)
	case protocol.OpAppend:
		rep.Status = st.Append(cmd.Key, cmd.Value)
	case protocol.OpPrepend:
		rep.Status = st.Prepend(cmd.Key, cmd.Value)
	case protocol.OpDelete:
		rep.Status = st.Delete(cmd.Key)
	case protocol.OpIncr:
		rep.Numeric, rep.Status = st.IncrDecr(cmd.Key, cmd.Delta, false)
	case protocol.OpDecr:
		rep.Numeric, rep.Status = st.IncrDecr(cmd.Key, cmd.Delta, true)
	case protocol.OpTouch:
		rep.Status = st.Touch(cmd.Key, cmd.Exptime)
	case protocol.OpGAT:
		v, flags, cas, ok := st.GetAndTouch(cmd.Key, cmd.Exptime)
		if !ok {
			rep.Status = protocol.StatusKeyNotFound
		} else {
			rep.Value, rep.Flags, rep.CAS = v, flags, cas
		}
	case protocol.OpFlushAll:
		st.FlushAll()
	case protocol.OpStats:
		switch cmd.StatsArg {
		case "slabs":
			// Per-class slab usage, as real memcached's "stats slabs".
			for _, cs := range st.SlabStats() {
				prefix := strconv.Itoa(cs.Class)
				rep.Stats = append(rep.Stats,
					[2]string{prefix + ":chunk_size", strconv.Itoa(cs.ChunkSize)},
					[2]string{prefix + ":total_pages", strconv.Itoa(cs.Pages)},
					[2]string{prefix + ":used_chunks", strconv.Itoa(cs.Used)},
					[2]string{prefix + ":free_chunks", strconv.Itoa(cs.Free)},
				)
			}
		case "items":
			for _, cs := range st.SlabStats() {
				prefix := "items:" + strconv.Itoa(cs.Class)
				rep.Stats = append(rep.Stats,
					[2]string{prefix + ":number", strconv.Itoa(cs.Used)},
				)
			}
		case "latency":
			// Per-op service-time distribution, microseconds.
			lat := st.LatencySnapshot()
			for class := range lat {
				h := &lat[class]
				prefix := LatClassNames[class]
				rep.Stats = append(rep.Stats,
					[2]string{prefix + ":count", strconv.FormatUint(h.Count(), 10)},
					[2]string{prefix + ":p50_us", strconv.FormatInt(h.Percentile(50).Microseconds(), 10)},
					[2]string{prefix + ":p99_us", strconv.FormatInt(h.Percentile(99).Microseconds(), 10)},
					[2]string{prefix + ":max_us", strconv.FormatInt(h.Max().Microseconds(), 10)},
				)
			}
		default:
			snap := st.Snapshot()
			rep.Stats = [][2]string{
				{"cmd_get", strconv.FormatUint(snap.Gets, 10)},
				{"get_hits", strconv.FormatUint(snap.GetHits, 10)},
				{"get_misses", strconv.FormatUint(snap.GetMisses, 10)},
				{"cmd_set", strconv.FormatUint(snap.Sets, 10)},
				{"cmd_delete", strconv.FormatUint(snap.Deletes, 10)},
				{"cmd_touch", strconv.FormatUint(snap.Touches, 10)},
				{"touch_hits", strconv.FormatUint(snap.TouchHits, 10)},
				{"touch_misses", strconv.FormatUint(snap.TouchMisses, 10)},
				{"curr_items", strconv.FormatUint(snap.CurrItems, 10)},
				{"bytes", strconv.FormatUint(snap.Bytes, 10)},
				{"evictions", strconv.FormatUint(snap.Evictions, 10)},
				{"expired", strconv.FormatUint(snap.Expired, 10)},
			}
		}
	case protocol.OpVersion:
		rep.Version = version
	case protocol.OpNoop:
		// nothing
	default:
		rep.Status = protocol.StatusUnknownCommand
	}
	return rep
}
