package server

import (
	"strconv"

	"plibmc/internal/protocol"
	"plibmc/internal/slab"
)

// Baseline store operations. Unlike the protected-library store, these run
// only inside the server process, so Go mutexes and direct slices are fine;
// the paper's point is that clients cannot reach this code without a socket
// round trip.

func (s *Store) buildItem(key, value []byte, flags uint32, exptime int64) (slab.Handle, bool) {
	it, ok := s.alloc(bHeader + len(key) + len(value))
	if !ok {
		return 0, false
	}
	b := s.sl.Bytes(it)
	s.putU64(it, bHNext, nilRef)
	s.putU64(it, bLRUNext, nilRef)
	s.putU64(it, bLRUPrev, nilRef)
	s.putU64(it, bCASID, s.nextCAS())
	s.putU32(it, bExptime, uint32(exptime))
	s.putU32(it, bFlags, flags)
	s.putU32(it, bKeyLen, uint32(len(key)))
	s.putU32(it, bValLen, uint32(len(value)))
	copy(b[bHeader:], key)
	copy(b[bHeader+len(key):], value)
	return it, true
}

func (s *Store) absExpiry(exptime int64) int64 {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return s.nowFn() - 1
	case exptime <= 60*60*24*30:
		return s.nowFn() + exptime
	default:
		return exptime
	}
}

// Get retrieves a value. The returned slice is a copy.
func (s *Store) Get(key []byte) ([]byte, uint32, uint64, bool) {
	s.statMu.Lock()
	s.stats.Gets++
	s.statMu.Unlock()
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	r := s.find(key, h)
	if r != nilRef && s.expired(deref(r), s.nowFn()) {
		s.unlink(deref(r), h)
		s.statMu.Lock()
		s.stats.Expired++
		s.statMu.Unlock()
		r = nilRef
	}
	if r == nilRef {
		mu.Unlock()
		s.statMu.Lock()
		s.stats.GetMisses++
		s.statMu.Unlock()
		return nil, 0, 0, false
	}
	it := deref(r)
	val := append([]byte(nil), s.value(it)...)
	flags := s.u32(it, bFlags)
	cas := s.u64(it, bCASID)
	// A hit is a *use*: move the item to the head of its class LRU so the
	// eviction tail tracks recency of access, not of insertion. Without
	// this the "LRU" degrades to FIFO and hot items get evicted.
	s.bumpLRU(it)
	mu.Unlock()
	s.statMu.Lock()
	s.stats.GetHits++
	s.statMu.Unlock()
	return val, flags, cas, true
}

type storeVerb int

const (
	verbSet storeVerb = iota
	verbAdd
	verbReplace
	verbCAS
	verbAppend
	verbPrepend
)

func (s *Store) storeItem(verb storeVerb, key, value []byte, flags uint32, exptime int64, cas uint64) protocol.Status {
	s.statMu.Lock()
	s.stats.Sets++
	s.statMu.Unlock()
	if len(key) > protocol.MaxKeyLen {
		return protocol.StatusInvalidArgs
	}
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	defer mu.Unlock()
	oldRef := s.reapIfExpired(s.find(key, h), h)
	switch verb {
	case verbAdd:
		if oldRef != nilRef {
			return protocol.StatusKeyExists
		}
	case verbReplace:
		if oldRef == nilRef {
			return protocol.StatusKeyNotFound
		}
	case verbCAS:
		if oldRef == nilRef {
			return protocol.StatusKeyNotFound
		}
		if s.u64(deref(oldRef), bCASID) != cas {
			return protocol.StatusKeyExists
		}
	case verbAppend, verbPrepend:
		if oldRef == nilRef {
			return protocol.StatusNotStored
		}
		old := s.value(deref(oldRef))
		combined := make([]byte, 0, len(old)+len(value))
		if verb == verbAppend {
			combined = append(append(combined, old...), value...)
		} else {
			combined = append(append(combined, value...), old...)
		}
		value = combined
		flags = s.u32(deref(oldRef), bFlags)
		exptime = int64(s.u32(deref(oldRef), bExptime))
	}
	if verb != verbAppend && verb != verbPrepend {
		exptime = s.absExpiry(exptime)
	}
	it, ok := s.buildItem(key, value, flags, exptime)
	if !ok {
		return protocol.StatusOutOfMemory
	}
	if oldRef != nilRef {
		s.unlink(deref(oldRef), h)
	}
	s.link(it, h)
	return protocol.StatusOK
}

// Set and friends expose memcached's storage commands.
func (s *Store) Set(key, value []byte, flags uint32, exptime int64) protocol.Status {
	return s.storeItem(verbSet, key, value, flags, exptime, 0)
}

// Add stores only if absent.
func (s *Store) Add(key, value []byte, flags uint32, exptime int64) protocol.Status {
	return s.storeItem(verbAdd, key, value, flags, exptime, 0)
}

// Replace stores only if present.
func (s *Store) Replace(key, value []byte, flags uint32, exptime int64) protocol.Status {
	return s.storeItem(verbReplace, key, value, flags, exptime, 0)
}

// CAS stores only if the generation matches.
func (s *Store) CAS(key, value []byte, flags uint32, exptime int64, cas uint64) protocol.Status {
	return s.storeItem(verbCAS, key, value, flags, exptime, cas)
}

// Append concatenates after the existing value.
func (s *Store) Append(key, value []byte) protocol.Status {
	return s.storeItem(verbAppend, key, value, 0, 0, 0)
}

// Prepend concatenates before the existing value.
func (s *Store) Prepend(key, value []byte) protocol.Status {
	return s.storeItem(verbPrepend, key, value, 0, 0, 0)
}

// Delete removes a key.
func (s *Store) Delete(key []byte) protocol.Status {
	s.statMu.Lock()
	s.stats.Deletes++
	s.statMu.Unlock()
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	defer mu.Unlock()
	r := s.find(key, h)
	if r == nilRef {
		return protocol.StatusKeyNotFound
	}
	// An expired-but-unreaped item is logically gone: reap it here, but as
	// an expiry, not a successful delete — the client must see NOT_FOUND
	// exactly as if the sweeper had gotten there first.
	if s.expired(deref(r), s.nowFn()) {
		s.unlink(deref(r), h)
		s.statMu.Lock()
		s.stats.Expired++
		s.statMu.Unlock()
		return protocol.StatusKeyNotFound
	}
	s.unlink(deref(r), h)
	return protocol.StatusOK
}

// IncrDecr adjusts a numeric value.
func (s *Store) IncrDecr(key []byte, delta uint64, decr bool) (uint64, protocol.Status) {
	s.statMu.Lock()
	if decr {
		s.stats.Decrs++
	} else {
		s.stats.Incrs++
	}
	s.statMu.Unlock()
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	defer mu.Unlock()
	// An expired-but-unreaped item is logically gone: reap it (as an
	// expiry) instead of incrementing a corpse the sweeper hasn't reached.
	// Pre-fix the corpse stayed linked in the table and LRU.
	r := s.reapIfExpired(s.find(key, h), h)
	if r == nilRef {
		return 0, protocol.StatusKeyNotFound
	}
	it := deref(r)
	val := s.value(it)
	if len(val) == 0 || len(val) > 20 {
		return 0, protocol.StatusNonNumeric
	}
	old, err := strconv.ParseUint(string(val), 10, 64)
	if err != nil {
		return 0, protocol.StatusNonNumeric
	}
	var v uint64
	if decr {
		if delta > old {
			v = 0
		} else {
			v = old - delta
		}
	} else {
		v = old + delta
	}
	rendered := strconv.AppendUint(nil, v, 10)
	flags := s.u32(it, bFlags)
	exp := int64(s.u32(it, bExptime))
	if len(rendered) == len(val) {
		copy(val, rendered)
		s.putU64(it, bCASID, s.nextCAS())
		// The in-place rewrite is a use: bump the class LRU exactly as Get
		// does, or hot counters degrade to FIFO eviction order. The
		// width-change path below gets its bump from link().
		s.bumpLRU(it)
		return v, protocol.StatusOK
	}
	key2 := append([]byte(nil), s.key(it)...)
	nit, ok := s.buildItem(key2, rendered, flags, exp)
	if !ok {
		return 0, protocol.StatusOutOfMemory
	}
	s.unlink(it, h)
	s.link(nit, h)
	return v, protocol.StatusOK
}

// GetAndTouch retrieves a value and updates its expiry atomically. It is
// a retrieval, so it feeds the get counters like Get does, plus the touch
// counters for the expiry update.
func (s *Store) GetAndTouch(key []byte, exptime int64) ([]byte, uint32, uint64, bool) {
	abs := s.absExpiry(exptime)
	s.statMu.Lock()
	s.stats.Gets++
	s.stats.Touches++
	s.statMu.Unlock()
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	r := s.reapIfExpired(s.find(key, h), h)
	if r == nilRef {
		mu.Unlock()
		s.statMu.Lock()
		s.stats.GetMisses++
		s.stats.TouchMisses++
		s.statMu.Unlock()
		return nil, 0, 0, false
	}
	it := deref(r)
	s.putU32(it, bExptime, uint32(abs))
	val := append([]byte(nil), s.value(it)...)
	flags := s.u32(it, bFlags)
	cas := s.u64(it, bCASID)
	s.bumpLRU(it)
	mu.Unlock()
	s.statMu.Lock()
	s.stats.GetHits++
	s.stats.TouchHits++
	s.statMu.Unlock()
	return val, flags, cas, true
}

// Touch updates an entry's expiry.
func (s *Store) Touch(key []byte, exptime int64) protocol.Status {
	abs := s.absExpiry(exptime)
	s.statMu.Lock()
	s.stats.Touches++
	s.statMu.Unlock()
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	defer mu.Unlock()
	r := s.reapIfExpired(s.find(key, h), h)
	if r == nilRef {
		s.statMu.Lock()
		s.stats.TouchMisses++
		s.statMu.Unlock()
		return protocol.StatusKeyNotFound
	}
	s.putU32(deref(r), bExptime, uint32(abs))
	s.statMu.Lock()
	s.stats.TouchHits++
	s.statMu.Unlock()
	return protocol.StatusOK
}

// reapIfExpired unlinks an expired item and counts the expiry, returning
// nilRef; a live (or absent) ref passes through. Caller holds the item
// lock for h.
func (s *Store) reapIfExpired(r uint64, h uint64) uint64 {
	if r == nilRef || !s.expired(deref(r), s.nowFn()) {
		return r
	}
	s.unlink(deref(r), h)
	s.statMu.Lock()
	s.stats.Expired++
	s.statMu.Unlock()
	return nilRef
}

// FlushAll empties the store.
func (s *Store) FlushAll() {
	for b := range s.table {
		h := uint64(b)
		mu := s.lockFor(h)
		mu.Lock()
		for s.table[b] != nilRef {
			s.unlink(deref(s.table[b]), h)
		}
		mu.Unlock()
	}
}

// Snapshot returns the current statistics.
func (s *Store) Snapshot() Stats {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.stats
}
