package server

// Regression tests for the baseline mutation-op bugfix sweep: incr/decr on
// expired-but-unreaped items must reap the corpse and answer NOT_FOUND
// (the expired-delete contract), the in-place rewrite must bump the class
// LRU, and incr/decr feed their own counters. Golden wire frames pin the
// exact bytes a client sees on the baseline ASCII path.

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"plibmc/internal/protocol"
)

// TestIncrExpiredReapsCorpse: pre-fix, IncrDecr answered NOT_FOUND for an
// expired item but left the corpse linked in the table and class LRU — it
// held memory and CurrItems until some other op happened to walk past it.
func TestIncrExpiredReapsCorpse(t *testing.T) {
	s := newTestStore()
	var now atomic.Int64
	now.Store(5000)
	s.SetClock(now.Load)

	if st := s.Set([]byte("k"), []byte("100"), 0, 50); st != protocol.StatusOK {
		t.Fatal(st)
	}
	now.Add(100) // expired but still linked
	if _, st := s.IncrDecr([]byte("k"), 1, false); st != protocol.StatusKeyNotFound {
		t.Fatalf("incr on expired key = %v, want KeyNotFound", st)
	}
	snap := s.Snapshot()
	if snap.CurrItems != 0 {
		t.Fatalf("CurrItems = %d after incr-on-expired: corpse not reaped", snap.CurrItems)
	}
	if snap.Expired != 1 {
		t.Fatalf("Expired = %d, want 1 (the reap is an expiry, not a delete)", snap.Expired)
	}
	// Decr on the now-gone key is a plain miss, no double-reap.
	if _, st := s.IncrDecr([]byte("k"), 1, true); st != protocol.StatusKeyNotFound {
		t.Fatalf("decr after reap = %v", st)
	}
	if got := s.Snapshot().Expired; got != 1 {
		t.Fatalf("Expired = %d after second miss, want 1", got)
	}
}

// TestStoreExpiredReapCountsExpiry: the storage-command reap (Set/Add/
// append/prepend over an expired corpse) must feed the Expired counter
// like every other lazy reap; pre-fix it unlinked silently.
func TestStoreExpiredReapCountsExpiry(t *testing.T) {
	s := newTestStore()
	var now atomic.Int64
	now.Store(5000)
	s.SetClock(now.Load)

	if st := s.Set([]byte("k"), []byte("v"), 0, 50); st != protocol.StatusOK {
		t.Fatal(st)
	}
	now.Add(100)
	if st := s.Append([]byte("k"), []byte("x")); st != protocol.StatusNotStored {
		t.Fatalf("append on expired key = %v, want NotStored", st)
	}
	if got := s.Snapshot().Expired; got != 1 {
		t.Fatalf("Expired = %d, want 1", got)
	}
}

// TestIncrDecrFeedOwnCounters: pre-fix the baseline counted nothing at all
// for incr/decr.
func TestIncrDecrFeedOwnCounters(t *testing.T) {
	s := newTestStore()
	s.Set([]byte("n"), []byte("10"), 0, 0)
	s.IncrDecr([]byte("n"), 1, false)
	s.IncrDecr([]byte("n"), 1, true)
	s.IncrDecr([]byte("n"), 1, true)
	snap := s.Snapshot()
	if snap.Incrs != 1 || snap.Decrs != 2 {
		t.Fatalf("Incrs = %d, Decrs = %d; want 1, 2", snap.Incrs, snap.Decrs)
	}
}

// TestIncrInPlaceBumpsClassLRU mirrors TestGetBumpsClassLRU: a same-width
// in-place increment is a use and must move the counter to the head of its
// class LRU. Pre-fix the rewrite skipped the bump, so a hot counter that
// was stored early was the eviction tail forever.
func TestIncrInPlaceBumpsClassLRU(t *testing.T) {
	// Numeric values are ≤ 20 bytes, so counters live in the smallest slab
	// class; a one-page budget still floods it in ~11k sets.
	s := NewStore(1<<20, 14)
	if st := s.Set([]byte("protected"), []byte("100"), 0, 0); st != protocol.StatusOK {
		t.Fatal(st)
	}
	if st := s.Set([]byte("victim"), []byte("100"), 0, 0); st != protocol.StatusOK {
		t.Fatal(st)
	}
	// Increment the older item in place (same width: 100 -> 101).
	if _, st := s.IncrDecr([]byte("protected"), 1, false); st != protocol.StatusOK {
		t.Fatalf("incr = %v", st)
	}
	for i := 0; s.Snapshot().Evictions == 0; i++ {
		if i > 20000 {
			t.Fatal("no eviction after 20000 sets")
		}
		if st := s.Set([]byte(fmt.Sprintf("fill-%05d", i)), []byte("100"), 0, 0); st != protocol.StatusOK {
			t.Fatalf("fill set: %v", st)
		}
	}
	if _, _, _, ok := s.Get([]byte("victim")); ok {
		t.Fatal("victim survived: eviction tail was not the least recently used item")
	}
	if _, _, _, ok := s.Get([]byte("protected")); !ok {
		t.Fatal("incremented item evicted: in-place incr did not bump the class LRU")
	}
}

// TestIncrExpiredWireFrame pins the exact ASCII bytes for the mutation-op
// expiry fix and the numeric edge cases: incr on an expired-but-unreaped
// key is NOT_FOUND (the same frame as a key that never existed), and incr
// on a stored 20-digit value ≥ 2^64 is the canonical CLIENT_ERROR.
func TestIncrExpiredWireFrame(t *testing.T) {
	srv, _ := startServer(t, 1)
	var now atomic.Int64
	now.Store(5000)
	srv.Store().SetClock(now.Load)

	c, err := net.Dial("unix", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewReader(c)
	roundTrip := func(req, want string) {
		t.Helper()
		if _, err := c.Write([]byte(req)); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line != want {
			t.Fatalf("reply to %q = %q, want %q", req, line, want)
		}
	}

	roundTrip("set k 0 50 3\r\n100\r\n", "STORED\r\n")
	roundTrip("incr k 1\r\n", "101\r\n")
	now.Add(100) // key is now expired but still linked
	roundTrip("incr k 1\r\n", "NOT_FOUND\r\n")
	// The reap was real: the corpse is gone, not resurrected.
	roundTrip("incr k 1\r\n", "NOT_FOUND\r\n")
	roundTrip("decr k 1\r\n", "NOT_FOUND\r\n")

	// A stored value at 2^64 cannot be incremented: CLIENT_ERROR, and the
	// stored bytes stay untouched.
	roundTrip("set big 0 0 20\r\n18446744073709551616\r\n", "STORED\r\n")
	roundTrip("incr big 1\r\n", "CLIENT_ERROR cannot increment or decrement non-numeric value\r\n")
	// The legal maximum wraps, as in memcached.
	roundTrip("set max 0 0 20\r\n18446744073709551615\r\n", "STORED\r\n")
	roundTrip("incr max 1\r\n", "0\r\n")
}
