// Package server implements the baseline: the "original memcached" the
// paper compares against. It is a conventional socket server — an
// adjustable number of server threads accepting requests over Unix-domain
// (or TCP) sockets in either wire protocol — backed by a conventional
// single-process store: slab allocation, one LRU list per slab class
// (eviction coupled to allocation size), striped item locks, and a single
// mutex around statistics. Everything this package does from the socket
// inward is what the protected-library conversion deleted.
package server

import (
	"encoding/binary"
	"sync"
	"time"

	"plibmc/internal/histogram"
	"plibmc/internal/slab"
)

// Baseline item layout inside a slab chunk:
//
//	+0  hNext   (slab.Handle+1; 0 = nil)
//	+8  lruNext (slab.Handle+1)
//	+16 lruPrev (slab.Handle+1)
//	+24 casID
//	+32 exptime (u32) | flags (u32)
//	+40 keyLen (u32) | valLen (u32)
//	+48 key bytes, then value bytes
const (
	bHNext   = 0
	bLRUNext = 8
	bLRUPrev = 16
	bCASID   = 24
	bExptime = 32
	bFlags   = 36
	bKeyLen  = 40
	bValLen  = 44
	bHeader  = 48
)

const nilRef = uint64(0)

func ref(h slab.Handle) uint64   { return uint64(h) + 1 }
func deref(r uint64) slab.Handle { return slab.Handle(r - 1) }

// Store is the baseline in-process K-V store.
type Store struct {
	sl *slab.Allocator

	locks []sync.Mutex // item-lock stripe
	table []uint64     // bucket heads (refs)
	mask  uint64

	lrus []classLRU // one per slab class: the classic coupling

	statMu sync.Mutex // the single statistics lock the paper scattered
	stats  Stats
	lat    [NumLatClasses]histogram.H // per-op latency, also under statMu

	casMu sync.Mutex
	cas   uint64

	nowFn func() int64
}

type classLRU struct {
	mu   sync.Mutex
	head uint64
	tail uint64
}

// Stats mirrors the counters the protected-library store reports.
type Stats struct {
	Gets, GetHits, GetMisses     uint64
	Sets, Deletes                uint64
	Incrs, Decrs                 uint64
	Touches, TouchHits, TouchMisses uint64
	Evictions, Expired           uint64
	CurrItems, Bytes             uint64
}

// Per-op latency classes for the baseline's histograms.
const (
	LatGet = iota
	LatSet
	LatDelete
	LatTouch
	LatIncr
	NumLatClasses
)

// LatClassNames names the latency classes for "stats latency" output.
var LatClassNames = [NumLatClasses]string{"get", "set", "delete", "touch", "incr"}

// NewStore creates a baseline store with the given memory limit (-m) and
// 2^hashPower buckets.
func NewStore(memLimit int64, hashPower uint) *Store {
	sl := slab.New(memLimit)
	nlocks := 1024
	for nlocks > 1<<hashPower {
		nlocks /= 2 // the lock stripe must not outnumber buckets
	}
	s := &Store{
		sl:    sl,
		locks: make([]sync.Mutex, nlocks),
		table: make([]uint64, 1<<hashPower),
		mask:  (1 << hashPower) - 1,
		lrus:  make([]classLRU, sl.NumClasses()),
		nowFn: func() int64 { return time.Now().Unix() },
	}
	return s
}

// SetClock overrides the time source (tests).
func (s *Store) SetClock(now func() int64) { s.nowFn = now }

// SlabStats reports per-class slab usage ("stats slabs").
func (s *Store) SlabStats() []slab.Stats { return s.sl.StatsPerClass() }

func (s *Store) lockFor(h uint64) *sync.Mutex {
	return &s.locks[h&uint64(len(s.locks)-1)]
}

func hashKey(key []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func (s *Store) nextCAS() uint64 {
	s.casMu.Lock()
	s.cas++
	v := s.cas
	s.casMu.Unlock()
	return v
}

// Chunk field accessors.

func (s *Store) u64(h slab.Handle, off int) uint64 {
	return binary.LittleEndian.Uint64(s.sl.Bytes(h)[off:])
}
func (s *Store) putU64(h slab.Handle, off int, v uint64) {
	binary.LittleEndian.PutUint64(s.sl.Bytes(h)[off:], v)
}
func (s *Store) u32(h slab.Handle, off int) uint32 {
	return binary.LittleEndian.Uint32(s.sl.Bytes(h)[off:])
}
func (s *Store) putU32(h slab.Handle, off int, v uint32) {
	binary.LittleEndian.PutUint32(s.sl.Bytes(h)[off:], v)
}

func (s *Store) key(h slab.Handle) []byte {
	b := s.sl.Bytes(h)
	kl := binary.LittleEndian.Uint32(b[bKeyLen:])
	return b[bHeader : bHeader+kl]
}

func (s *Store) value(h slab.Handle) []byte {
	b := s.sl.Bytes(h)
	kl := binary.LittleEndian.Uint32(b[bKeyLen:])
	vl := binary.LittleEndian.Uint32(b[bValLen:])
	return b[bHeader+kl : bHeader+kl+vl]
}

func (s *Store) expired(h slab.Handle, now int64) bool {
	e := s.u32(h, bExptime)
	return e != 0 && int64(e) <= now
}

// alloc gets a chunk for an item, evicting from the tail of the same
// class's LRU on memory exhaustion — the classic memcached eviction loop
// whose allocation/eviction coupling the paper removed.
func (s *Store) alloc(size int) (slab.Handle, bool) {
	for attempt := 0; attempt < 50; attempt++ {
		h, err := s.sl.Alloc(size)
		if err == nil {
			return h, true
		}
		ci := s.sl.ClassFor(size)
		if ci < 0 || !s.evictFromClass(ci) {
			return 0, false
		}
	}
	return 0, false
}

// evictFromClass removes the least recently used item of slab class ci.
func (s *Store) evictFromClass(ci int) bool {
	l := &s.lrus[ci]
	l.mu.Lock()
	victimRef := l.tail
	l.mu.Unlock()
	if victimRef == nilRef {
		return false
	}
	victim := deref(victimRef)
	key := append([]byte(nil), s.key(victim)...)
	h := hashKey(key)
	mu := s.lockFor(h)
	mu.Lock()
	defer mu.Unlock()
	// Re-find under the lock: the victim may have moved or been deleted.
	cur := s.find(key, h)
	if cur == nilRef || deref(cur) != victim {
		return false
	}
	s.unlink(victim, h)
	s.statMu.Lock()
	s.stats.Evictions++
	s.statMu.Unlock()
	return true
}

// find walks the bucket chain for key. Caller holds the item lock.
func (s *Store) find(key []byte, h uint64) uint64 {
	r := s.table[h&s.mask]
	for r != nilRef {
		it := deref(r)
		k := s.key(it)
		if string(k) == string(key) { // compiler avoids the copies
			return r
		}
		r = s.u64(it, bHNext)
	}
	return nilRef
}

// link inserts an item into the table and its class LRU. Caller holds the
// item lock.
func (s *Store) link(it slab.Handle, h uint64) {
	bucket := &s.table[h&s.mask]
	s.putU64(it, bHNext, *bucket)
	*bucket = ref(it)
	ci := s.sl.ClassOf(it)
	l := &s.lrus[ci]
	l.mu.Lock()
	s.putU64(it, bLRUPrev, nilRef)
	s.putU64(it, bLRUNext, l.head)
	if l.head != nilRef {
		s.putU64(deref(l.head), bLRUPrev, ref(it))
	} else {
		l.tail = ref(it)
	}
	l.head = ref(it)
	l.mu.Unlock()
	s.statMu.Lock()
	s.stats.CurrItems++
	s.stats.Bytes += uint64(s.sl.ClassSize(ci))
	s.statMu.Unlock()
}

// unlink removes an item from the table and LRU and frees its chunk.
// Caller holds the item lock.
func (s *Store) unlink(it slab.Handle, h uint64) {
	bucket := &s.table[h&s.mask]
	r := *bucket
	var prevItem slab.Handle
	havePrev := false
	for r != nilRef {
		cur := deref(r)
		if cur == it {
			next := s.u64(cur, bHNext)
			if havePrev {
				s.putU64(prevItem, bHNext, next)
			} else {
				*bucket = next
			}
			break
		}
		prevItem, havePrev = cur, true
		r = s.u64(cur, bHNext)
	}
	s.removeLRU(it)
	ci := s.sl.ClassOf(it)
	s.statMu.Lock()
	s.stats.CurrItems--
	s.stats.Bytes -= uint64(s.sl.ClassSize(ci))
	s.statMu.Unlock()
	s.sl.Free(it)
}

// bumpLRU moves an accessed item to the head of its class LRU, so the
// tail stays least-recently-*used* rather than least-recently-*stored*.
// Caller holds the item lock; the list edit itself takes the class-LRU
// lock like every other list edit.
func (s *Store) bumpLRU(it slab.Handle) {
	ci := s.sl.ClassOf(it)
	l := &s.lrus[ci]
	l.mu.Lock()
	if l.head != ref(it) {
		prev := s.u64(it, bLRUPrev)
		next := s.u64(it, bLRUNext)
		if prev != nilRef {
			s.putU64(deref(prev), bLRUNext, next)
		}
		if next != nilRef {
			s.putU64(deref(next), bLRUPrev, prev)
		} else {
			l.tail = prev
		}
		s.putU64(it, bLRUPrev, nilRef)
		s.putU64(it, bLRUNext, l.head)
		if l.head != nilRef {
			s.putU64(deref(l.head), bLRUPrev, ref(it))
		}
		l.head = ref(it)
	}
	l.mu.Unlock()
}

// RecordLatency folds one operation's service time into the per-op
// histograms — under the same single statistics mutex as every other
// counter, which is exactly the cross-thread contention the
// protected-library store's scattered per-thread histograms avoid.
func (s *Store) RecordLatency(class int, d time.Duration) {
	s.statMu.Lock()
	s.lat[class].Record(d)
	s.statMu.Unlock()
}

// LatencySnapshot copies the per-op histograms out under the stats lock.
func (s *Store) LatencySnapshot() [NumLatClasses]histogram.H {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.lat
}

func (s *Store) removeLRU(it slab.Handle) {
	ci := s.sl.ClassOf(it)
	l := &s.lrus[ci]
	l.mu.Lock()
	prev := s.u64(it, bLRUPrev)
	next := s.u64(it, bLRUNext)
	if prev != nilRef {
		s.putU64(deref(prev), bLRUNext, next)
	} else {
		l.head = next
	}
	if next != nilRef {
		s.putU64(deref(next), bLRUPrev, prev)
	} else {
		l.tail = prev
	}
	l.mu.Unlock()
}
