package corrupt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"plibmc/internal/shm"
)

func TestFlipBitAndTearWord(t *testing.T) {
	h := shm.New(shm.PageSize)
	h.Store64(64, 0xff00)
	if old := FlipBit(h, 67, 3); old != 0xff00 {
		t.Fatalf("old = %#x", old)
	}
	if got := h.Load64(64); got != 0xff00^(1<<3) {
		t.Fatalf("after flip: %#x", got)
	}
	// Unaligned offsets hit the containing word.
	FlipBit(h, 67, 3)
	if got := h.Load64(64); got != 0xff00 {
		t.Fatalf("double flip should restore: %#x", got)
	}
	if old := TearWord(h, 70, 0xdead); old != 0xff00 {
		t.Fatalf("tear old = %#x", old)
	}
	if got := h.Load64(64); got != 0xdead {
		t.Fatalf("after tear: %#x", got)
	}
}

func TestFileInjectors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "img")
	if err := os.WriteFile(path, make([]byte, 256), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipFileBit(path, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := TearFileRange(path, 10, 32, 0xaa); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b[100] != 1<<1 {
		t.Fatalf("byte 100 = %#x", b[100])
	}
	for i := 10; i < 42; i++ {
		if b[i] != 0xaa {
			t.Fatalf("byte %d = %#x", i, b[i])
		}
	}
	if err := FlipFileBit(path, 1<<20, 0); err == nil {
		t.Fatal("flip past EOF should fail")
	}
	if err := FlipFileBit(filepath.Join(dir, "missing"), 0, 0); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestImageBitFlipDetectedByLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.heap")
	h := shm.New(4 * shm.PageSize)
	h.Store64(128, 42)
	if err := h.WriteImage(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := FlipFileBit(path, 200, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := shm.Load(path); err == nil {
		t.Fatal("flipped image must not load")
	}
}
