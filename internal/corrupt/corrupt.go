// Package corrupt injects deterministic memory and image corruption for
// tests. The fault-matrix machinery (internal/faultpoint) models a sharer
// crashing at a bad instant; this package models the other half of the
// containment story — bytes that are simply wrong: a bit flipped in a live
// region between operations, a word torn to garbage, an image file damaged
// on disk. The corruption-matrix gate drives these injectors at every
// structure class and requires the store to salvage or degrade, never to
// panic and never to serve a corrupted value.
package corrupt

import (
	"fmt"
	"os"

	"plibmc/internal/shm"
)

// FlipBit flips one bit of the word containing heap byte off. Injection
// uses plain stores: the corruption-matrix tests are single-threaded by
// design (a concurrent flip against atomic readers would be a data race in
// the Go memory model, which is a different failure than silent media or
// DMA corruption).
func FlipBit(h *shm.Heap, off uint64, bit uint) uint64 {
	w := off &^ (shm.WordSize - 1)
	old := h.Load64(w)
	h.Store64(w, old^(1<<(bit%64)))
	return old
}

// TearWord replaces the word containing heap byte off with an arbitrary
// value, simulating a torn or scribbled write, and returns the old value.
func TearWord(h *shm.Heap, off uint64, val uint64) uint64 {
	w := off &^ (shm.WordSize - 1)
	old := h.Load64(w)
	h.Store64(w, val)
	return old
}

// FlipFileBit flips one bit of byte off in a file (an on-disk heap image).
func FlipFileBit(path string, off int64, bit uint) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("corrupt: read %s@%d: %w", path, off, err)
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("corrupt: write %s@%d: %w", path, off, err)
	}
	return nil
}

// TearFileRange overwrites n bytes at off in a file with the given fill
// byte, simulating a torn multi-sector write.
func TearFileRange(path string, off, n int64, fill byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	if _, err := f.WriteAt(b, off); err != nil {
		return fmt.Errorf("corrupt: tear %s@%d+%d: %w", path, off, n, err)
	}
	return nil
}
