package client

import (
	"crypto/md5"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Multi-server support: libmemcached distributes keys across a server list
// with consistent (ketama) hashing, so that adding or removing a server
// remaps only ~1/n of the key space. This is the client-side half of how
// memcached scales out in a data center — and exactly the part that still
// matters in the paper's hybrid deployment, where remote clients keep using
// sockets while local ones use the protected library.

// ketamaPointsPerServer matches libmemcached (100 points × 4 hashes).
const ketamaPointsPerServer = 100

// Ring is a consistent-hash ring over a set of servers.
type Ring struct {
	points []ringPoint
	names  []string
}

type ringPoint struct {
	hash   uint32
	server int // index into names
}

// NewRing builds a ketama ring from "host:port" (or "unix:path") names.
func NewRing(servers []string) (*Ring, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: ring needs at least one server")
	}
	r := &Ring{names: append([]string(nil), servers...)}
	for si, name := range r.names {
		for p := 0; p < ketamaPointsPerServer; p++ {
			sum := md5.Sum([]byte(fmt.Sprintf("%s-%d", name, p)))
			for h := 0; h < 4; h++ {
				r.points = append(r.points, ringPoint{
					hash:   binary.LittleEndian.Uint32(sum[h*4:]),
					server: si,
				})
			}
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Servers returns the ring's server names.
func (r *Ring) Servers() []string { return append([]string(nil), r.names...) }

// Pick returns the index of the server responsible for key.
func (r *Ring) Pick(key []byte) int {
	h := ketamaHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].server
}

func ketamaHash(key []byte) uint32 {
	sum := md5.Sum(key)
	return binary.LittleEndian.Uint32(sum[:4])
}

// MultiClient is a client over several servers with consistent hashing:
// the memcached_st with a populated server list. Like Client, it is not
// safe for concurrent use.
type MultiClient struct {
	ring  *Ring
	conns []*Client
}

// DialMulti connects to every server in the list. Each entry is
// "network:address", e.g. "unix:/tmp/a.sock" or "tcp:127.0.0.1:11211".
func DialMulti(servers []string, proto Protocol) (*MultiClient, error) {
	ring, err := NewRing(servers)
	if err != nil {
		return nil, err
	}
	mc := &MultiClient{ring: ring, conns: make([]*Client, len(servers))}
	for i, s := range servers {
		network, addr, ok := strings.Cut(s, ":")
		if !ok {
			mc.Close()
			return nil, fmt.Errorf("client: server %q is not network:address", s)
		}
		c, err := Dial(network, addr, proto)
		if err != nil {
			mc.Close()
			return nil, fmt.Errorf("client: dial %s: %w", s, err)
		}
		mc.conns[i] = c
	}
	return mc, nil
}

// Close closes every connection.
func (mc *MultiClient) Close() error {
	var first error
	for _, c := range mc.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ServerFor reports which server name owns key (for tests and diagnostics).
func (mc *MultiClient) ServerFor(key []byte) string {
	return mc.ring.names[mc.ring.Pick(key)]
}

func (mc *MultiClient) conn(key []byte) *Client { return mc.conns[mc.ring.Pick(key)] }

// Get fetches key from its owning server.
func (mc *MultiClient) Get(key []byte) ([]byte, uint32, uint64, error) {
	return mc.conn(key).Get(key)
}

// Set stores key on its owning server.
func (mc *MultiClient) Set(key, value []byte, flags uint32, exptime int64) error {
	return mc.conn(key).Set(key, value, flags, exptime)
}

// Delete removes key from its owning server.
func (mc *MultiClient) Delete(key []byte) error { return mc.conn(key).Delete(key) }

// Increment adjusts a counter on its owning server.
func (mc *MultiClient) Increment(key []byte, delta uint64) (uint64, error) {
	return mc.conn(key).Increment(key, delta)
}

// MGet batches a multi-key get per owning server: keys are grouped by
// ring placement, each group goes out as one pipelined quiet-get batch,
// and the results are merged.
func (mc *MultiClient) MGet(keys [][]byte) (map[string][]byte, error) {
	groups := make(map[int][][]byte)
	for _, k := range keys {
		si := mc.ring.Pick(k)
		groups[si] = append(groups[si], k)
	}
	out := make(map[string][]byte, len(keys))
	for si, group := range groups {
		part, err := mc.conns[si].MGet(group)
		if err != nil {
			return nil, fmt.Errorf("client: mget on %s: %w", mc.ring.names[si], err)
		}
		for k, v := range part {
			out[k] = v
		}
	}
	return out, nil
}

// FlushAll flushes every server.
func (mc *MultiClient) FlushAll() error {
	for _, c := range mc.conns {
		if err := c.FlushAll(); err != nil {
			return err
		}
	}
	return nil
}
