package client

import (
	"errors"
	"io"
	"net"
	"path/filepath"
	"testing"
	"time"
)

// Satellite coverage (ISSUE 7): configurable dial/IO timeouts, reconnect
// with exponential backoff + jitter, and the typed ErrRetriesExhausted.

func TestDialRetriesExhausted(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "nobody-home.sock")
	start := time.Now()
	_, err := DialWithOptions("unix", sock, Binary, Options{
		DialTimeout: 100 * time.Millisecond,
		MaxRetries:  3,
		RetryBase:   time.Millisecond,
		RetryCap:    4 * time.Millisecond,
	})
	if !errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	// The class wraps the network cause for callers that care why.
	var nerr *net.OpError
	if !errors.As(err, &nerr) {
		t.Fatalf("err = %v does not unwrap to the dial failure", err)
	}
	// 3 retries with base 1ms: at least 1+2+4 ms of backoff elapsed.
	if elapsed := time.Since(start); elapsed < 7*time.Millisecond {
		t.Fatalf("4 attempts finished in %v; backoff not applied", elapsed)
	}
}

func TestDialSingleShotKeepsPlainError(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "nobody-home.sock")
	_, err := Dial("unix", sock, Binary)
	if err == nil {
		t.Fatal("dial to a missing socket succeeded")
	}
	if errors.Is(err, ErrRetriesExhausted) {
		t.Fatalf("single-shot dial reported retries exhausted: %v", err)
	}
}

func TestIOTimeoutAndReconnect(t *testing.T) {
	// A listener that accepts and then never speaks: the stalled server.
	sock := filepath.Join(t.TempDir(), "stall.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()

	c, err := DialWithOptions("unix", sock, Binary, Options{
		IOTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, _, _, err = c.Get([]byte("k"))
	if err == nil {
		t.Fatal("get against a stalled server returned")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want an IO timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline fired after %v, want ~20ms", elapsed)
	}

	// A timed-out connection is mid-message; Reconnect starts clean.
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	first := <-accepted
	second := <-accepted
	if first == second {
		t.Fatal("reconnect did not establish a fresh connection")
	}
	// The old socket is closed: draining its server side (past the request
	// bytes the timed-out Get already wrote) reaches EOF instead of the
	// read deadline.
	first.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := io.ReadAll(first); err != nil {
		t.Fatalf("old connection still open after reconnect: %v", err)
	}
}

func TestReconnectAgainstRealServer(t *testing.T) {
	sock := startServer(t, "reconnect")
	c, err := DialWithOptions("unix", sock, Binary, Options{
		IOTimeout:  time.Second,
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("rk"), []byte("v1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	// Sever the wire behind the client's back, then recover and resume.
	c.conn.Close() //nolint:errcheck
	if _, _, _, err := c.Get([]byte("rk")); err == nil {
		t.Fatal("get on a severed connection succeeded")
	}
	if err := c.Reconnect(); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := c.Get([]byte("rk"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get after reconnect: %q, %v", v, err)
	}
}
