package client

import (
	"fmt"
	"path/filepath"
	"testing"
	"testing/quick"

	"plibmc/internal/server"
)

func startServer(t *testing.T, name string) string {
	t.Helper()
	sock := filepath.Join(t.TempDir(), name+".sock")
	srv, err := server.New(server.Config{Network: "unix", Addr: sock, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return sock
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Fatal("empty ring should fail")
	}
	r, err := NewRing([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Servers()) != 3 {
		t.Fatalf("servers = %v", r.Servers())
	}
	if len(r.points) != 3*ketamaPointsPerServer*4 {
		t.Fatalf("points = %d", len(r.points))
	}
}

func TestRingDeterministicAndInRange(t *testing.T) {
	r, _ := NewRing([]string{"s0", "s1", "s2", "s3"})
	f := func(key []byte) bool {
		a := r.Pick(key)
		b := r.Pick(key)
		return a == b && a >= 0 && a < 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing([]string{"s0", "s1", "s2", "s3"})
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Pick([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	for si, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("server %d owns %.1f%% of keys; expected ~25%%", si, frac*100)
		}
	}
}

func TestRingMinimalRemapping(t *testing.T) {
	// The consistent-hashing property: removing one of four servers
	// remaps only the removed server's keys.
	before, _ := NewRing([]string{"s0", "s1", "s2", "s3"})
	after, _ := NewRing([]string{"s0", "s1", "s2"})
	moved, total := 0, 20000
	for i := 0; i < total; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		b := before.Pick(key)
		a := after.Pick(key)
		if b < 3 && a != b {
			moved++
		}
	}
	// Keys on surviving servers should almost all stay (allow a little
	// slack for ketama point boundaries).
	if frac := float64(moved) / float64(total); frac > 0.05 {
		t.Fatalf("%.1f%% of surviving keys remapped; consistent hashing broken", frac*100)
	}
}

func TestMultiClientEndToEnd(t *testing.T) {
	socks := []string{
		"unix:" + startServer(t, "a"),
		"unix:" + startServer(t, "b"),
		"unix:" + startServer(t, "c"),
	}
	mc, err := DialMulti(socks, Binary)
	if err != nil {
		t.Fatal(err)
	}
	defer mc.Close()

	// Spread writes; every key must be readable and live on its ring
	// owner only.
	servers := map[string]int{}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		if err := mc.Set(k, []byte(fmt.Sprintf("val-%03d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
		servers[mc.ServerFor(k)]++
	}
	if len(servers) != 3 {
		t.Fatalf("keys spread over %d servers, want 3: %v", len(servers), servers)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%03d", i))
		v, _, _, err := mc.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("get %s = %q, %v", k, v, err)
		}
	}

	// Batched multi-get across all three servers.
	var keys [][]byte
	for i := 0; i < 200; i += 2 {
		keys = append(keys, []byte(fmt.Sprintf("key-%03d", i)))
	}
	got, err := mc.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("mget returned %d, want 100", len(got))
	}
	for i := 0; i < 200; i += 2 {
		k := fmt.Sprintf("key-%03d", i)
		if string(got[k]) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("mget[%s] = %q", k, got[k])
		}
	}

	// Counters and deletes route consistently.
	mc.Set([]byte("ctr"), []byte("5"), 0, 0)
	if v, err := mc.Increment([]byte("ctr"), 3); err != nil || v != 8 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	if err := mc.Delete([]byte("ctr")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mc.Get([]byte("ctr")); err == nil {
		t.Fatal("deleted key still present")
	}
	if err := mc.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := mc.Get([]byte("key-000")); err == nil {
		t.Fatal("flushed key still present")
	}
}

func TestDialMultiValidation(t *testing.T) {
	if _, err := DialMulti(nil, Binary); err == nil {
		t.Fatal("empty server list should fail")
	}
	if _, err := DialMulti([]string{"garbage"}, Binary); err == nil {
		t.Fatal("malformed server spec should fail")
	}
	if _, err := DialMulti([]string{"unix:/nonexistent/never.sock"}, Binary); err == nil {
		t.Fatal("unreachable server should fail")
	}
}

func TestDialValidation(t *testing.T) {
	if _, err := Dial("unix", "/nonexistent/never.sock", Binary); err == nil {
		t.Fatal("dial of missing socket should fail")
	}
}

func TestASCIIMGetSingleServer(t *testing.T) {
	sock := startServer(t, "ascii")
	c, err := Dial("unix", sock, ASCII)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Set([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	keys := [][]byte{[]byte("k1"), []byte("k3"), []byte("missing"), []byte("k7")}
	got, err := c.MGet(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || string(got["k3"]) != "v3" {
		t.Fatalf("ascii mget = %v", got)
	}
}
