// Package client is the socket client for the baseline server: the role of
// libmemcached. It speaks either wire protocol over a single connection,
// and implements multi-get batching (quiet gets terminated by a noop) —
// the paper notes that "much of the client library is devoted to batching
// of requests" precisely because each round trip is so expensive.
//
// A Client corresponds to a memcached_st: it is not safe for concurrent
// use; create one per client thread.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"time"

	"plibmc/internal/protocol"
)

// Protocol selects the wire format.
type Protocol int

// Wire protocols.
const (
	Binary Protocol = iota // compact, better performance
	ASCII                  // readable, better debugability
)

// ErrRetriesExhausted reports that every connection attempt the retry
// policy allowed has failed. It always arrives wrapped with the last
// underlying dial error, so errors.Is(err, ErrRetriesExhausted) classifies
// the failure while errors.As/Unwrap still reach the network cause.
var ErrRetriesExhausted = errors.New("client: connection retries exhausted")

// Options tunes connection establishment and per-operation IO. The zero
// value preserves the historical behaviour (5s dial timeout, no IO
// deadlines, a single connection attempt).
type Options struct {
	// DialTimeout bounds one connection attempt. Zero means 5 seconds.
	DialTimeout time.Duration
	// IOTimeout bounds each request/response round trip (a deadline armed
	// on the socket at the start of every operation). Zero disables it —
	// a stalled server then blocks the caller, as before.
	IOTimeout time.Duration
	// MaxRetries is how many times a failed dial is retried beyond the
	// first attempt, with exponential backoff and jitter between tries.
	// Zero keeps dialing single-shot.
	MaxRetries int
	// RetryBase is the first backoff sleep, doubled each retry. Zero means
	// 10ms.
	RetryBase time.Duration
	// RetryCap clamps the backoff growth. Zero means 1s.
	RetryCap time.Duration
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = time.Second
	}
	return o
}

// retriesError carries the attempt count and the final cause under the
// ErrRetriesExhausted class.
type retriesError struct {
	attempts int
	last     error
}

func (e *retriesError) Error() string {
	return fmt.Sprintf("client: %d connection attempts failed, last: %v", e.attempts, e.last)
}
func (e *retriesError) Is(target error) bool { return target == ErrRetriesExhausted }
func (e *retriesError) Unwrap() error        { return e.last }

// Client is a connection to one memcached server.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	proto   Protocol
	network string
	addr    string
	opts    Options
	rng     *rand.Rand
}

// Dial connects to a server with default Options. network/addr as for
// net.Dial; "unix" + socket path matches the paper's local setup.
func Dial(network, addr string, proto Protocol) (*Client, error) {
	return DialWithOptions(network, addr, proto, Options{})
}

// DialWithOptions connects to a server under an explicit retry/timeout
// policy. With MaxRetries > 0 a failed dial is retried with exponential
// backoff (RetryBase doubling up to RetryCap) plus up to 50% random
// jitter, so a thundering herd of clients reconnecting to a restarted
// server spreads out; when every attempt fails the error matches
// ErrRetriesExhausted and unwraps to the last dial failure.
func DialWithOptions(network, addr string, proto Protocol, opts Options) (*Client, error) {
	c := &Client{
		proto:   proto,
		network: network,
		addr:    addr,
		opts:    opts.withDefaults(),
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials (or redials) under the client's retry policy.
func (c *Client) connect() error {
	backoff := c.opts.RetryBase
	var last error
	for attempt := 0; ; attempt++ {
		conn, err := net.DialTimeout(c.network, c.addr, c.opts.DialTimeout)
		if err == nil {
			c.conn = conn
			c.r = bufio.NewReaderSize(conn, 64<<10)
			c.w = bufio.NewWriterSize(conn, 64<<10)
			return nil
		}
		last = err
		if attempt >= c.opts.MaxRetries {
			if c.opts.MaxRetries == 0 {
				return fmt.Errorf("client: %w", last)
			}
			return &retriesError{attempts: attempt + 1, last: last}
		}
		sleep := backoff + time.Duration(c.rng.Int63n(int64(backoff)/2+1))
		time.Sleep(sleep)
		if backoff < c.opts.RetryCap {
			if backoff *= 2; backoff > c.opts.RetryCap {
				backoff = c.opts.RetryCap
			}
		}
	}
}

// Reconnect tears down the current connection and re-establishes it under
// the same retry policy — the recovery path after an IO timeout or a
// server restart, since a deadline error leaves the wire mid-message.
func (c *Client) Reconnect() error {
	if c.conn != nil {
		c.conn.Close() //nolint:errcheck
	}
	return c.connect()
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// armDeadline sets the per-operation IO deadline, if one is configured.
// Called at the start of every operation: the deadline covers the whole
// round trip (write, server think time, read).
func (c *Client) armDeadline() {
	if c.opts.IOTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.IOTimeout)) //nolint:errcheck
	}
}

// roundTrip sends one command and reads its reply.
func (c *Client) roundTrip(cmd *protocol.Command) (*protocol.Reply, error) {
	c.armDeadline()
	if c.proto == Binary {
		if err := protocol.WriteBinaryCommand(c.w, cmd); err != nil {
			return nil, err
		}
		if err := c.w.Flush(); err != nil {
			return nil, err
		}
		if cmd.Op == protocol.OpStats {
			return c.readBinaryStats()
		}
		rep, _, err := protocol.ReadBinaryReply(c.r)
		return rep, err
	}
	if err := protocol.WriteASCIICommand(c.w, cmd); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return protocol.ReadASCIIReply(c.r, cmd)
}

func (c *Client) readBinaryStats() (*protocol.Reply, error) {
	rep := &protocol.Reply{Status: protocol.StatusOK}
	for {
		frame, _, err := protocol.ReadBinaryReply(c.r)
		if err != nil {
			return nil, err
		}
		if len(frame.Key) == 0 {
			return rep, nil
		}
		rep.Stats = append(rep.Stats, [2]string{string(frame.Key), string(frame.Value)})
	}
}

// Get fetches one key.
func (c *Client) Get(key []byte) (value []byte, flags uint32, cas uint64, err error) {
	rep, err := c.roundTrip(&protocol.Command{Op: protocol.OpGet, Key: key})
	if err != nil {
		return nil, 0, 0, err
	}
	if rep.Status != protocol.StatusOK {
		return nil, 0, 0, statusErr(rep.Status)
	}
	return rep.Value, rep.Flags, rep.CAS, nil
}

// Set stores a value unconditionally.
func (c *Client) Set(key, value []byte, flags uint32, exptime int64) error {
	return c.simpleStore(protocol.OpSet, key, value, flags, exptime, 0)
}

// Add stores only if the key is absent.
func (c *Client) Add(key, value []byte, flags uint32, exptime int64) error {
	return c.simpleStore(protocol.OpAdd, key, value, flags, exptime, 0)
}

// Replace stores only if the key is present.
func (c *Client) Replace(key, value []byte, flags uint32, exptime int64) error {
	return c.simpleStore(protocol.OpReplace, key, value, flags, exptime, 0)
}

// CAS stores only if the generation matches.
func (c *Client) CAS(key, value []byte, flags uint32, exptime int64, cas uint64) error {
	return c.simpleStore(protocol.OpCAS, key, value, flags, exptime, cas)
}

// Append concatenates after the existing value.
func (c *Client) Append(key, value []byte) error {
	return c.simpleStore(protocol.OpAppend, key, value, 0, 0, 0)
}

// Prepend concatenates before the existing value.
func (c *Client) Prepend(key, value []byte) error {
	return c.simpleStore(protocol.OpPrepend, key, value, 0, 0, 0)
}

func (c *Client) simpleStore(op protocol.Op, key, value []byte, flags uint32, exptime int64, cas uint64) error {
	rep, err := c.roundTrip(&protocol.Command{
		Op: op, Key: key, Value: value, Flags: flags, Exptime: exptime, CAS: cas,
	})
	if err != nil {
		return err
	}
	if rep.Status != protocol.StatusOK {
		return statusErr(rep.Status)
	}
	return nil
}

// Delete removes a key.
func (c *Client) Delete(key []byte) error {
	rep, err := c.roundTrip(&protocol.Command{Op: protocol.OpDelete, Key: key})
	if err != nil {
		return err
	}
	if rep.Status != protocol.StatusOK {
		return statusErr(rep.Status)
	}
	return nil
}

// Increment adds delta to a numeric value.
func (c *Client) Increment(key []byte, delta uint64) (uint64, error) {
	return c.incrDecr(protocol.OpIncr, key, delta)
}

// Decrement subtracts delta, saturating at zero.
func (c *Client) Decrement(key []byte, delta uint64) (uint64, error) {
	return c.incrDecr(protocol.OpDecr, key, delta)
}

func (c *Client) incrDecr(op protocol.Op, key []byte, delta uint64) (uint64, error) {
	rep, err := c.roundTrip(&protocol.Command{Op: op, Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	if rep.Status != protocol.StatusOK {
		return 0, statusErr(rep.Status)
	}
	return rep.Numeric, nil
}

// GetAndTouch fetches a key and updates its expiry in one round trip.
func (c *Client) GetAndTouch(key []byte, exptime int64) ([]byte, uint32, uint64, error) {
	rep, err := c.roundTrip(&protocol.Command{Op: protocol.OpGAT, Key: key, Exptime: exptime})
	if err != nil {
		return nil, 0, 0, err
	}
	if rep.Status != protocol.StatusOK {
		return nil, 0, 0, statusErr(rep.Status)
	}
	return rep.Value, rep.Flags, rep.CAS, nil
}

// Touch updates a key's expiry.
func (c *Client) Touch(key []byte, exptime int64) error {
	rep, err := c.roundTrip(&protocol.Command{Op: protocol.OpTouch, Key: key, Exptime: exptime})
	if err != nil {
		return err
	}
	if rep.Status != protocol.StatusOK {
		return statusErr(rep.Status)
	}
	return nil
}

// FlushAll empties the server.
func (c *Client) FlushAll() error {
	_, err := c.roundTrip(&protocol.Command{Op: protocol.OpFlushAll})
	return err
}

// Stats fetches the server's statistics.
func (c *Client) Stats() (map[string]string, error) {
	rep, err := c.roundTrip(&protocol.Command{Op: protocol.OpStats})
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(rep.Stats))
	for _, kv := range rep.Stats {
		out[kv[0]] = kv[1]
	}
	return out, nil
}

// Version fetches the server version string.
func (c *Client) Version() (string, error) {
	rep, err := c.roundTrip(&protocol.Command{Op: protocol.OpVersion})
	if err != nil {
		return "", err
	}
	return rep.Version, nil
}

// MGet fetches many keys in one batch. With the binary protocol it
// pipelines quiet gets terminated by a noop: one write, one read, any
// number of keys — the batching that makes socket memcached tolerable.
func (c *Client) MGet(keys [][]byte) (map[string][]byte, error) {
	c.armDeadline()
	out := make(map[string][]byte, len(keys))
	if c.proto == ASCII {
		// "get k1 k2 ..." in a single line; VALUE blocks then END.
		c.w.WriteString("get")
		for _, k := range keys {
			c.w.WriteByte(' ')
			c.w.Write(k)
		}
		c.w.WriteString("\r\n")
		if err := c.w.Flush(); err != nil {
			return nil, err
		}
		for {
			line, err := c.r.ReadString('\n')
			if err != nil {
				return nil, err
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "END" {
				return out, nil
			}
			var key string
			var flags uint32
			var n int
			var cas uint64
			if _, err := fmt.Sscanf(line, "VALUE %s %d %d %d", &key, &flags, &n, &cas); err != nil {
				return nil, fmt.Errorf("client: unexpected mget line %q", line)
			}
			data := make([]byte, n+2)
			if _, err := io.ReadFull(c.r, data); err != nil {
				return nil, err
			}
			out[key] = data[:n]
		}
	}
	for i, k := range keys {
		if err := protocol.WriteBinaryCommand(c.w, &protocol.Command{
			Op: protocol.OpGet, Key: k, Quiet: true, Opaque: uint32(i),
		}); err != nil {
			return nil, err
		}
	}
	if err := protocol.WriteBinaryCommand(c.w, &protocol.Command{Op: protocol.OpNoop, Opaque: ^uint32(0)}); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	for {
		rep, opcode, err := protocol.ReadBinaryReply(c.r)
		if err != nil {
			return nil, err
		}
		if opcode == 0x0a { // noop: end of batch
			return out, nil
		}
		if rep.Status == protocol.StatusOK && int(rep.Opaque) < len(keys) {
			out[string(keys[rep.Opaque])] = rep.Value
		}
	}
}

func statusErr(s protocol.Status) error {
	return fmt.Errorf("memcached: %v", s)
}
