package core

import (
	"errors"
	"fmt"
	"testing"

	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

func TestEvictionUnderPressure(t *testing.T) {
	// A small heap with a low watermark: sets keep succeeding because LRU
	// victims are evicted.
	h := shm.New(1 << 21) // 2 MiB
	a, _ := ralloc.Format(h)
	s, err := Create(a, Options{HashPower: 8, NumItemLocks: 16, MemLimit: 1 << 20, FixedSize: true})
	if err != nil {
		t.Fatal(err)
	}
	c := s.NewCtx(1)
	val := make([]byte, 1024)
	for i := 0; i < 5000; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%05d", i)), val, 0, 0); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("expected evictions under memory pressure")
	}
	if st.CurrItems == 0 || st.CurrItems >= 5000 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
	// Recent keys should be present; ancient ones evicted.
	if _, _, _, err := c.Get([]byte("key-04999")); err != nil {
		t.Fatalf("most recent key evicted: %v", err)
	}
	if _, _, _, err := c.Get([]byte("key-00000")); !errors.Is(err, ErrNotFound) {
		t.Fatal("oldest key survived heavy pressure")
	}
}

func TestMaintainerEvictsToWatermark(t *testing.T) {
	h := shm.New(1 << 22)
	a, _ := ralloc.Format(h)
	s, err := Create(a, Options{HashPower: 8, NumItemLocks: 16, MemLimit: 1 << 21, FixedSize: true})
	if err != nil {
		t.Fatal(err)
	}
	c := s.NewCtx(1)
	val := make([]byte, 2048)
	// Fill until the store's inline enforcement starts evicting: the heap
	// is now at the hard limit.
	for i := 0; s.Stats().Evictions == 0; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%05d", i)), val, 0, 0); err != nil {
			t.Fatal(err)
		}
		if i > 100000 {
			t.Fatal("never reached the memory limit")
		}
	}
	if a.LiveBytes() > s.MemLimit() {
		t.Fatalf("inline enforcement failed: LiveBytes %d > limit %d", a.LiveBytes(), s.MemLimit())
	}
	// The bookkeeper cleans down to the watermark, restoring headroom so
	// clients stop paying for inline eviction.
	m := s.NewMaintainer(2)
	r := m.RunOnce()
	if r.Evicted == 0 {
		t.Fatal("maintainer should evict down to the watermark")
	}
	watermark := s.MemLimit() - s.MemLimit()/20
	if a.LiveBytes() > watermark {
		t.Fatalf("LiveBytes %d still above watermark %d", a.LiveBytes(), watermark)
	}
}

func TestSweepExpired(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	for i := 0; i < 50; i++ {
		exp := int64(0)
		if i%2 == 0 {
			exp = 10 // relative: dies at t=1010
		}
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, exp)
	}
	now = 2000
	m := s.NewMaintainer(2)
	r := m.RunOnce()
	if r.Expired != 25 {
		t.Fatalf("sweep expired %d, want 25", r.Expired)
	}
	if st := s.Stats(); st.CurrItems != 25 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
	// Idempotent.
	if r2 := m.RunOnce(); r2.Expired != 0 {
		t.Fatalf("second sweep expired %d", r2.Expired)
	}
}

func TestResize(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("v%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.ResizeTo(c, 12); err != nil {
		t.Fatal(err)
	}
	if s.HashPower() != 12 {
		t.Fatalf("HashPower = %d", s.HashPower())
	}
	for i := 0; i < n; i++ {
		v, _, _, err := c.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after resize: %q, %v", i, v, err)
		}
	}
	// Shrinking below the lock stripe is refused.
	if err := s.ResizeTo(c, 2); err == nil {
		t.Fatal("resize below lock stripe should fail")
	}
	if err := s.ResizeTo(c, 31); err == nil {
		t.Fatal("absurd resize should fail")
	}
}

func TestMaintainerAutoResize(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	m := s.NewMaintainer(2)
	for i := 0; i < 200; i++ { // load factor > 1.5 * 64 buckets
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, 0)
	}
	r := m.RunOnce()
	if !r.Resized || s.HashPower() != 7 {
		t.Fatalf("auto-resize: %+v power=%d", r, s.HashPower())
	}
	// FixedSize mode never resizes.
	s2, c2 := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16, FixedSize: true})
	for i := 0; i < 200; i++ {
		c2.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, 0)
	}
	if r := s2.NewMaintainer(2).RunOnce(); r.Resized {
		t.Fatal("FixedSize store must not resize")
	}
}

func TestAttachSecondHandle(t *testing.T) {
	// Two handles on the same heap (two "processes") see each other's
	// writes immediately.
	h := shm.New(1 << 22)
	a1, _ := ralloc.Format(h)
	s1, err := Create(a1, Options{HashPower: 8, NumItemLocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ralloc.Open(h)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Attach(a2)
	if err != nil {
		t.Fatal(err)
	}
	c1 := s1.NewCtx(1)
	c2 := s2.NewCtx(1 << 21)
	if err := c1.Set([]byte("shared"), []byte("across processes"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := c2.Get([]byte("shared"))
	if err != nil || string(v) != "across processes" {
		t.Fatalf("second handle sees %q, %v", v, err)
	}
	if err := c2.Delete([]byte("shared")); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c1.Get([]byte("shared")); !errors.Is(err, ErrNotFound) {
		t.Fatal("first handle should see the delete")
	}
	// Attach on an empty heap fails.
	if _, err := Attach(mustFormat(t, shm.New(1<<21))); err == nil {
		t.Fatal("Attach to storeless heap should fail")
	}
	// Create on an occupied heap fails.
	if _, err := Create(a2, Options{}); err == nil {
		t.Fatal("Create on occupied heap should fail")
	}
}

func mustFormat(t *testing.T, h *shm.Heap) *ralloc.Allocator {
	t.Helper()
	a, err := ralloc.Format(h)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
