package core

// FenceError is the panic value delivered to a reaped zombie context that
// tries to take (or keep) a heap-resident lock after the repair coordinator
// declared its owner token dead and broke its locks. The denial *is* the
// containment: the zombie never re-entered a critical section, so the
// structural repair it would have raced is safe. The hodor trampoline
// recovers the panic into a CrashError and — via the ContainedAttack marker
// — counts it on the attacks_contained metric rather than starting another
// repair cycle for an already-repaired death.
type FenceError struct {
	// Op names the denied action ("lock", "tryLock", "unlock").
	Op string
}

func (e *FenceError) Error() string {
	return "core: reaped context denied " + e.Op + " during crash recovery"
}

// ContainedAttack marks the denial as a contained hostile/zombie access for
// the gate-hardening metrics plane (see hodor.Call).
func (e *FenceError) ContainedAttack() {}
