package core

// Regression tests for the mutation-op bugfix sweep: ASCII-numeric
// overflow detection, the decrement statistics counter, and the LRU bump
// on the in-place increment rewrite path.

import (
	"errors"
	"testing"

	"plibmc/internal/ralloc"
)

func TestParseASCIIUintOverflow(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"0", 0, true},
		{"18446744073709551615", ^uint64(0), true}, // 2^64-1: the largest legal value
		{"18446744073709551616", 0, false},         // 2^64: pre-fix this wrapped to 0
		{"18446744073709551625", 0, false},         // wraps to 9 pre-fix
		{"99999999999999999999", 0, false},         // 20 digits, far past 2^64
		{"184467440737095516150", 0, false},        // 21 digits
		{"", 0, true},                              // vacuous parse; incrDecr rejects len 0 first
		{"12a", 0, false},
	}
	for _, tc := range cases {
		v, ok := parseASCIIUint([]byte(tc.in))
		if ok != tc.ok || (ok && v != tc.want) {
			t.Errorf("parseASCIIUint(%q) = %d, %v; want %d, %v", tc.in, v, ok, tc.want, tc.ok)
		}
	}
}

// TestIncrOverflowValueNotNumeric: incr on a stored 20-digit value ≥ 2^64
// must answer "not numeric" (memcached's CLIENT_ERROR), not silently wrap
// the parse and compute garbage.
func TestIncrOverflowValueNotNumeric(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	if err := c.Set([]byte("big"), []byte("18446744073709551616"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Increment([]byte("big"), 1); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("incr on 2^64 value: err = %v, want ErrNotNumeric", err)
	}
	// The value must be untouched by the failed increment.
	v, _, _, err := c.Get([]byte("big"))
	if err != nil || string(v) != "18446744073709551616" {
		t.Fatalf("value after failed incr = %q, %v", v, err)
	}
	// The legal maximum still increments (wrapping, as in memcached).
	if err := c.Set([]byte("max"), []byte("18446744073709551615"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, err := c.Increment([]byte("max"), 1); err != nil || v != 0 {
		t.Fatalf("incr of 2^64-1 by 1 = %d, %v; want wrap to 0", v, err)
	}
}

// TestDecrFeedsOwnCounter: Decrement must count into Decrs, not fold into
// Incrs (pre-fix both ops fed statIncrs).
func TestDecrFeedsOwnCounter(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	if err := c.Set([]byte("n"), []byte("10"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decrement([]byte("n"), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Increment([]byte("n"), 1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Incrs != 1 || st.Decrs != 1 {
		t.Fatalf("Incrs = %d, Decrs = %d; want 1, 1", st.Incrs, st.Decrs)
	}
}

// lruHeadIs reports whether the head of the (single) LRU list is the item
// holding key.
func lruHeadIs(s *Store, key string) bool {
	head := ralloc.LoadPptr(s.H, s.lruHeadOff(0))
	return head != 0 && s.keyEqual(head, []byte(key))
}

// TestIncrInPlaceBumpsLRU: the same-width in-place rewrite is a use and
// must move the item to the head of its LRU list once the bump interval
// has elapsed — the same FIFO-eviction bug class the retrieval paths were
// cured of. Pre-fix the rewrite left the item wherever it sat, so hot
// counters were evicted in insertion order.
func TestIncrInPlaceBumpsLRU(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, NumLRUs: 1})
	now := int64(10_000)
	s.SetClock(func() int64 { return now })

	if err := c.Set([]byte("ctr"), []byte("100"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("newer"), []byte("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if !lruHeadIs(s, "newer") {
		t.Fatal("setup: most recent Set is not at the LRU head")
	}
	// Past the bump interval, an in-place increment (100 -> 101, same
	// width) must move ctr back to the head.
	now += lruBumpInterval + 1
	if v, err := c.Increment([]byte("ctr"), 1); err != nil || v != 101 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	if !lruHeadIs(s, "ctr") {
		t.Fatal("in-place increment did not bump the item to the LRU head")
	}

	// The width-change replacement path must land at the head too (it
	// re-links a fresh item): 999 -> 1000.
	if err := c.Set([]byte("wide"), []byte("999"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("newest"), []byte("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	now += lruBumpInterval + 1
	if v, err := c.Increment([]byte("wide"), 1); err != nil || v != 1000 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	if !lruHeadIs(s, "wide") {
		t.Fatal("width-change increment did not land at the LRU head")
	}
}

// TestIncrDecrExpiredReaps: an expired-but-unreaped item must be reaped
// (counted as an expiry) and answered NOT_FOUND by every mutation op, the
// same contract Delete acquired in the expired-delete fix.
func TestIncrDecrExpiredReaps(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	now := int64(10_000)
	s.SetClock(func() int64 { return now })

	for _, op := range []struct {
		name string
		run  func(key []byte) error
	}{
		{"incr", func(k []byte) error { _, err := c.Increment(k, 1); return err }},
		{"decr", func(k []byte) error { _, err := c.Decrement(k, 1); return err }},
		{"append", func(k []byte) error { return c.Append(k, []byte("x")) }},
		{"prepend", func(k []byte) error { return c.Prepend(k, []byte("x")) }},
	} {
		key := []byte("exp-" + op.name)
		if err := c.Set(key, []byte("123"), 0, 5); err != nil { // relative: expires at now+5
			t.Fatal(err)
		}
		before := s.Stats()
		now += 10 // expired, not yet reaped
		if err := op.run(key); !errors.Is(err, ErrNotFound) {
			t.Fatalf("%s on expired key: err = %v, want ErrNotFound", op.name, err)
		}
		after := s.Stats()
		if after.CurrItems != before.CurrItems-1 {
			t.Fatalf("%s: corpse not reaped (items %d -> %d)", op.name, before.CurrItems, after.CurrItems)
		}
		if after.Expired != before.Expired+1 {
			t.Fatalf("%s: reap not counted as expiry (%d -> %d)", op.name, before.Expired, after.Expired)
		}
	}
}
