// Package core implements the memcached key-value data plane as a
// shared-memory library: the paper's primary contribution. Everything the
// store needs — hash table, items, LRU lists, statistics, locks — lives in
// a Ralloc heap as position-independent data, so threads of any process
// that maps the heap can execute operations directly, with no server and no
// sockets.
//
// The structure mirrors the converted memcached of §3 of the paper:
//
//   - all pointers in the store are Ralloc pptrs (position independent);
//   - top-level structures are reachable from persistent roots, using the
//     fixed-location idiom of Fig. 2 (the LRU lock array) and the
//     extra-indirection idiom of Fig. 3 (the primary hash table, whose
//     location changes when it is resized);
//   - every lock is heap-resident and usable across processes (the
//     PTHREAD_PROCESS_SHARED conversion);
//   - the LRU is decoupled from the allocator: instead of one list per slab
//     class, items are scattered over a set of lists chosen by key hash,
//     because a single list "caused unacceptable lock contention at high
//     thread counts";
//   - request statistics are scattered across the slots of a shared array;
//     retrieval sums the whole array;
//   - following §3.4, operations copy client-supplied keys and values into
//     library-allocated buffers *before* acquiring any lock, so a fault on
//     client memory can never occur while shared state is inconsistent.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

// Persistent root IDs (the RPMRoot enumeration of Figs. 2 and 3).
const (
	RootConfig    = 0 // the store's configuration block
	RootLRULocks  = 1 // fixed-location array (Fig. 2 idiom)
	RootPrimaryHT = 2 // storage cell for the movable hash table (Fig. 3 idiom)
	RootLatency   = 3 // scattered latency-histogram matrix (latency.go)
)

// Limits, matching memcached's defaults.
const (
	MaxKeyLen   = 250
	MaxValueLen = 1 << 20
)

// Operation errors (the memcached_return_t values clients see).
var (
	ErrNotFound    = errors.New("core: key not found")
	ErrExists      = errors.New("core: key already exists")
	ErrCASMismatch = errors.New("core: cas value mismatch")
	ErrNotNumeric  = errors.New("core: value is not a number")
	ErrKeyTooLong  = fmt.Errorf("core: key exceeds %d bytes", MaxKeyLen)
	ErrValueTooBig = fmt.Errorf("core: value exceeds %d bytes", MaxValueLen)
	ErrNoSpace     = errors.New("core: out of memory even after eviction")
	// ErrCallAborted lands on the operations of a batch that were skipped
	// because the watchdog requested a cooperative abort mid-dispatch (the
	// live-deadline escalation's middle rung). Operations before the abort
	// point executed normally; these never ran and may be retried.
	ErrCallAborted = errors.New("core: call aborted by watchdog deadline")
)

// Options configures a new store.
type Options struct {
	// HashPower is log2 of the initial number of buckets. The paper's
	// evaluation fixes the table at 2^25; scaled-down benches use less.
	HashPower uint
	// NumItemLocks is the size of the bucket-lock stripe (power of two,
	// at most the number of buckets).
	NumItemLocks uint64
	// NumLRUs is the number of hash-selected LRU lists. 1 reproduces the
	// contended single-list design the paper abandoned (ablation).
	NumLRUs uint64
	// MemLimit is the eviction watermark in bytes of live allocation
	// (the -m limit; the paper used 60 GB). 0 means 7/8 of heap capacity.
	MemLimit uint64
	// FixedSize disables hash-table resizing, the configuration the paper
	// benchmarked (their background resizer was not yet working; ours
	// works but benches match the paper).
	FixedSize bool
	// StatSlots is the number of scattered statistics slots.
	StatSlots uint64
	// LockedStats reproduces the original memcached design the paper
	// abandoned: all statistics updates serialize on one lock (ablation).
	LockedStats bool
	// ReaderSlots is the number of optimistic-reader announcement slots in
	// the shared heap. Each Ctx claims one at creation; a Ctx that finds
	// none free simply never uses the lock-free read path.
	ReaderSlots uint64
	// LatencySlots is the number of scattered latency-histogram slots:
	// like the statistics slots, contexts hash onto them by owner token so
	// recording stays contention free at sane thread counts.
	LatencySlots uint64
	// LatencySampleEvery records the latency of one in every N operations
	// per context (rounded up to a power of two; 0 means 8). Sampling keeps
	// the two clock reads off most operations, whose cost would otherwise
	// rival the operation itself. 1 records every operation.
	LatencySampleEvery uint64
	// DisableLatency creates the store with latency recording off (the
	// ablation baseline). The histogram matrix is still allocated so the
	// heap layout — and hence benchmarks' allocator behaviour — matches.
	DisableLatency bool
}

func (o *Options) fill(cap uint64) {
	if o.HashPower == 0 {
		o.HashPower = 16
	}
	if o.NumItemLocks == 0 {
		o.NumItemLocks = 1024
	}
	for o.NumItemLocks > uint64(1)<<o.HashPower {
		o.NumItemLocks /= 2
	}
	if o.NumLRUs == 0 {
		o.NumLRUs = 32
	}
	if o.MemLimit == 0 {
		o.MemLimit = cap - cap/8
	}
	if o.StatSlots == 0 {
		o.StatSlots = 64
	}
	if o.ReaderSlots == 0 {
		o.ReaderSlots = 64
	}
	if o.LatencySlots == 0 {
		o.LatencySlots = 16
	}
	if o.LatencySampleEvery == 0 {
		o.LatencySampleEvery = 8
	}
	// Round the sampling period up to a power of two so the hot path can
	// mask instead of divide.
	for o.LatencySampleEvery&(o.LatencySampleEvery-1) != 0 {
		o.LatencySampleEvery++
	}
}

// Config-block field offsets (relative to the block's base).
const (
	cfgNumItemLocks  = 0
	cfgNumLRUs       = 8
	cfgMemLimit      = 16
	cfgCASCounter    = 24 // atomic
	cfgItemLocks     = 32 // pptr
	cfgLRULocks      = 40 // pptr
	cfgLRUData       = 48 // pptr: per-LRU {head pptr, tail pptr}
	cfgStats         = 56 // pptr
	cfgHTStorage     = 64 // pptr to the Fig. 3 storage cell
	cfgFixedSize     = 72
	cfgStatSlots     = 80
	cfgLockedStats   = 88
	cfgStatsLock     = 96  // heap-resident lock word for LockedStats mode
	cfgGate          = 104 // checkpoint gate: barrier bit + active-op count
	cfgSeqLocks      = 112 // pptr: per-stripe seqlock array (one word per item lock)
	cfgReaders       = 120 // pptr: optimistic-reader slot array
	cfgNumReaders    = 128
	cfgGraveHead     = 136 // atomic: head of the deferred-free list (raw item offset)
	cfgGraveLen      = 144 // atomic: number of quarantined items
	cfgLatency       = 152 // pptr: scattered latency-histogram matrix
	cfgLatSlots      = 160
	cfgLatSampleMask = 168 // sample period minus one (period is a power of two)
	cfgLatEnabled    = 176
	cfgSize          = 184
)

// Hash-table storage cell (Fig. 3): the movable table behind one more pptr.
const (
	htTable     = 0 // pptr to the bucket array
	htHashPower = 8
	htSize      = 16
)

// Store is a handle on a shared K-V store. Multiple Store handles — one per
// process — may address the same heap; all state lives in shared memory.
type Store struct {
	A *ralloc.Allocator
	H *shm.Heap

	// Immutable configuration, cached from the config block at attach.
	numItemLocks uint64
	numLRUs      uint64
	memLimit     uint64
	statSlots    uint64
	fixedSize    bool
	lockedStats  bool

	cfg        uint64 // config block offset
	itemLocks  uint64 // lock array offset
	lruLocks   uint64
	lruData    uint64
	stats      uint64
	htStorage  uint64
	seqLocks   uint64 // seqlock array offset, one word per item-lock stripe
	readers    uint64 // optimistic-reader slot array offset
	numReaders uint64
	latency    uint64 // latency-histogram matrix offset (0 = none)
	latSlots   uint64
	latMask    uint64 // sample period minus one
	latEnabled bool

	// nowFn supplies the wall clock; overridable in tests.
	nowFn func() int64

	// aliveFn is the owner-liveness oracle (SetOwnerLiveness): grave
	// reaping and crash repair use it to expire announcements and break
	// locks whose recorded owner can no longer execute. Atomic because
	// the hot paths consult it concurrently with (re)installation.
	// Unset = everyone is presumed alive.
	aliveFn atomic.Pointer[func(owner uint64) bool]
}

// Create formats a new store inside a freshly formatted heap.
func Create(a *ralloc.Allocator, opts Options) (*Store, error) {
	if a.GetRoot(RootConfig) != 0 {
		return nil, fmt.Errorf("core: heap already contains a store (use Attach)")
	}
	opts.fill(a.Capacity())
	if opts.NumItemLocks&(opts.NumItemLocks-1) != 0 {
		return nil, fmt.Errorf("core: NumItemLocks %d is not a power of two", opts.NumItemLocks)
	}
	c := a.NewCache()
	defer c.Flush()
	h := a.Heap()

	cfg, err := c.Calloc(cfgSize)
	if err != nil {
		return nil, err
	}
	itemLocks, err := c.Calloc(opts.NumItemLocks * shm.LockWordSize)
	if err != nil {
		return nil, err
	}
	lruLocks, err := c.Calloc(opts.NumLRUs * shm.LockWordSize)
	if err != nil {
		return nil, err
	}
	lruData, err := c.Calloc(opts.NumLRUs * 16)
	if err != nil {
		return nil, err
	}
	stats, err := c.Calloc(opts.StatSlots * statSlotSize)
	if err != nil {
		return nil, err
	}
	storage, err := c.Calloc(htSizeExpanded)
	if err != nil {
		return nil, err
	}
	table, err := c.Calloc((uint64(1) << opts.HashPower) * 8)
	if err != nil {
		return nil, err
	}
	seqLocks, err := c.Calloc(opts.NumItemLocks * 8)
	if err != nil {
		return nil, err
	}
	readers, err := c.Calloc(opts.ReaderSlots * readerSlotSize)
	if err != nil {
		return nil, err
	}
	latency, err := c.Calloc(opts.LatencySlots * latSlotStride)
	if err != nil {
		return nil, err
	}

	h.Store64(cfg+cfgNumItemLocks, opts.NumItemLocks)
	h.Store64(cfg+cfgNumLRUs, opts.NumLRUs)
	h.Store64(cfg+cfgMemLimit, opts.MemLimit)
	h.Store64(cfg+cfgCASCounter, 0)
	ralloc.StorePptr(h, cfg+cfgItemLocks, itemLocks)
	ralloc.StorePptr(h, cfg+cfgLRULocks, lruLocks)
	ralloc.StorePptr(h, cfg+cfgLRUData, lruData)
	ralloc.StorePptr(h, cfg+cfgStats, stats)
	ralloc.StorePptr(h, cfg+cfgHTStorage, storage)
	if opts.FixedSize {
		h.Store64(cfg+cfgFixedSize, 1)
	}
	h.Store64(cfg+cfgStatSlots, opts.StatSlots)
	if opts.LockedStats {
		h.Store64(cfg+cfgLockedStats, 1)
	}
	ralloc.StorePptr(h, cfg+cfgSeqLocks, seqLocks)
	ralloc.StorePptr(h, cfg+cfgReaders, readers)
	h.Store64(cfg+cfgNumReaders, opts.ReaderSlots)
	ralloc.StorePptr(h, cfg+cfgLatency, latency)
	h.Store64(cfg+cfgLatSlots, opts.LatencySlots)
	h.Store64(cfg+cfgLatSampleMask, opts.LatencySampleEvery-1)
	if !opts.DisableLatency {
		h.Store64(cfg+cfgLatEnabled, 1)
	}

	ralloc.StorePptr(h, storage+htTable, table)
	h.Store64(storage+htHashPower, uint64(opts.HashPower))

	a.SetRoot(RootConfig, cfg)
	a.SetRoot(RootLRULocks, lruLocks)
	a.SetRoot(RootPrimaryHT, storage)
	a.SetRoot(RootLatency, latency)
	return attach(a, cfg)
}

// Attach opens an existing store in the heap — what a client process does
// on startup, and what a restarted bookkeeper does after reloading the
// heap image (the "on restart" paths of Figs. 2 and 3).
func Attach(a *ralloc.Allocator) (*Store, error) {
	cfg := a.GetRoot(RootConfig)
	if cfg == 0 {
		return nil, fmt.Errorf("core: heap contains no store")
	}
	return attach(a, cfg)
}

func attach(a *ralloc.Allocator, cfg uint64) (*Store, error) {
	h := a.Heap()
	s := &Store{
		A:            a,
		H:            h,
		cfg:          cfg,
		numItemLocks: h.Load64(cfg + cfgNumItemLocks),
		numLRUs:      h.Load64(cfg + cfgNumLRUs),
		memLimit:     h.Load64(cfg + cfgMemLimit),
		statSlots:    h.Load64(cfg + cfgStatSlots),
		fixedSize:    h.Load64(cfg+cfgFixedSize) != 0,
		lockedStats:  h.Load64(cfg+cfgLockedStats) != 0,
		itemLocks:    ralloc.LoadPptr(h, cfg+cfgItemLocks),
		lruLocks:     ralloc.LoadPptr(h, cfg+cfgLRULocks),
		lruData:      ralloc.LoadPptr(h, cfg+cfgLRUData),
		stats:        ralloc.LoadPptr(h, cfg+cfgStats),
		htStorage:    ralloc.LoadPptr(h, cfg+cfgHTStorage),
		seqLocks:     ralloc.LoadPptr(h, cfg+cfgSeqLocks),
		readers:      ralloc.LoadPptr(h, cfg+cfgReaders),
		numReaders:   h.Load64(cfg + cfgNumReaders),
		latency:      ralloc.LoadPptr(h, cfg+cfgLatency),
		latSlots:     h.Load64(cfg + cfgLatSlots),
		latMask:      h.Load64(cfg + cfgLatSampleMask),
		nowFn:        func() int64 { return time.Now().Unix() },
	}
	s.latEnabled = h.Load64(cfg+cfgLatEnabled) != 0 && s.latency != 0 && s.latSlots != 0
	if s.numItemLocks == 0 || s.numLRUs == 0 || s.seqLocks == 0 {
		return nil, fmt.Errorf("core: corrupt store configuration")
	}
	return s, nil
}

// ResetGate clears the checkpoint gate and the optimistic-reader slots.
// Call it when reopening a heap image from disk: a checkpoint is written
// with the quiesce barrier raised, and neither the operations counted in
// the gate nor the reader sections announced in the slots exist after a
// reload (a slot left claimed or mid-section by a dead process would
// otherwise pin the slot and stall grave reaping forever). Never call it
// on a store with live clients.
func (s *Store) ResetGate() {
	s.H.AtomicStore64(s.cfg+cfgGate, 0)
	for i := uint64(0); i < s.numReaders; i++ {
		slot := s.readerSlotOff(i)
		s.H.AtomicStore64(slot+readerSlotOwner, 0)
		s.H.AtomicStore64(slot+readerSlotEpoch, 0)
	}
}

// SetClock overrides the store's time source (tests and expiry benches).
func (s *Store) SetClock(now func() int64) { s.nowFn = now }

// MemLimit returns the eviction watermark in bytes.
func (s *Store) MemLimit() uint64 { return s.memLimit }

// HashPower returns the current log2 table size. Atomic: callers (the
// maintainer, stats) read it without holding locks while a resize may be
// publishing a new value.
func (s *Store) HashPower() uint {
	return uint(s.H.AtomicLoad64(s.htStorage + htHashPower))
}

// table returns the bucket-array offset and current mask. Callers must hold
// the relevant item lock (or all of them) for a stable view across resize.
func (s *Store) table() (uint64, uint64) {
	t := ralloc.LoadPptr(s.H, s.htStorage+htTable)
	mask := (uint64(1) << s.H.Load64(s.htStorage+htHashPower)) - 1
	return t, mask
}

func (s *Store) itemLockOff(h uint64) uint64 {
	return s.itemLocks + (h&(s.numItemLocks-1))*shm.LockWordSize
}

// seqOff returns the seqlock word guarding hash's bucket chains. The
// seqlock array is striped exactly like the item locks, so the writer
// holding the item lock for hash is the only possible bumper of this word.
func (s *Store) seqOff(h uint64) uint64 {
	return s.seqLocks + (h&(s.numItemLocks-1))*8
}

func (s *Store) nextCAS() uint64 {
	return s.H.Add64(s.cfg+cfgCASCounter, 1)
}

// CASCounter reads the current CAS generation counter. It is a plain
// atomic load with no gate crossing, so it stays safe on a poisoned
// store — the shard supervisor uses it to carry the dead store's CAS
// high-water mark into a rebuilt replacement.
func (s *Store) CASCounter() uint64 {
	return s.H.AtomicLoad64(s.cfg + cfgCASCounter)
}

// SeedCAS raises the CAS generation counter to at least base. A sharded
// cluster seeds each shard's store with a disjoint base (shard index in
// the high bits) so CAS tokens are unique across the whole cluster, not
// just per store — reopening an existing image is a no-op because the
// persisted counter is already past its base.
func (s *Store) SeedCAS(base uint64) {
	for {
		cur := s.H.AtomicLoad64(s.cfg + cfgCASCounter)
		if cur >= base || s.H.CAS64(s.cfg+cfgCASCounter, cur, base) {
			return
		}
	}
}

// hashKey is 64-bit FNV-1a with a murmur3 finalizer, filling the
// chain-hash role of memcached's Jenkins/Murmur hash. Plain FNV-1a leaves
// its high bits poorly mixed on short sequential keys — bad for the
// hash-selected LRU lists, which are chosen from the high bits — so the
// finalizer avalanches every bit. Hand-rolled to stay allocation free.
func hashKey(key []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
