package core

import "runtime"

// Operation gate.
//
// The paper flushes the store to its backing file only at orderly
// shutdown, and calls full crash consistency future work (§6). As a step
// in that direction this implementation supports *live checkpoints*: a
// heap-resident gate counts in-flight operations; a checkpointer raises a
// barrier bit, waits for the count to drain, snapshots the (now fully
// consistent) heap, and drops the barrier. The fast-path cost is two
// uncontended atomic adds per operation.
//
// The gate word lives in the config block: bit 63 is the barrier, the low
// bits count active operations. Entry is reentrant per context (an
// operation that internally evicts or resizes does not deadlock itself).

const gateBarrier = uint64(1) << 63

// enterOp joins the active-operation count, waiting out any barrier.
// Reentrant via the context's depth counter.
func (c *Ctx) enterOp() {
	if c.opDepth++; c.opDepth > 1 {
		return
	}
	gate := c.s.cfg + cfgGate
	for {
		g := c.s.H.AtomicLoad64(gate)
		if g&gateBarrier != 0 {
			runtime.Gosched() // a checkpoint is draining the store
			continue
		}
		if c.s.H.CAS64(gate, g, g+1) {
			return
		}
	}
}

// exitOp leaves the active-operation count. The decrement refuses to
// wrap below zero: after a crash, RepairGate zeroes counts entered by
// threads that died mid-call, and a watchdog-reaped zombie that later
// resumes long enough to run its deferred exitOp must not underflow the
// repaired gate.
func (c *Ctx) exitOp() {
	if c.opDepth--; c.opDepth > 0 {
		return
	}
	gate := c.s.cfg + cfgGate
	for {
		g := c.s.H.AtomicLoad64(gate)
		if g&^gateBarrier == 0 {
			return // the gate was repaired out from under us
		}
		if c.s.H.CAS64(gate, g, g-1) {
			return
		}
	}
}

// Quiesce raises the barrier and waits until no operation is in flight.
// While quiesced the heap is fully consistent — no lock held, no partial
// structure — and safe to snapshot. Always pair with Unquiesce.
func (s *Store) Quiesce() {
	gate := s.cfg + cfgGate
	for {
		g := s.H.AtomicLoad64(gate)
		if g&gateBarrier != 0 {
			runtime.Gosched() // another checkpointer; take turns
			continue
		}
		if s.H.CAS64(gate, g, g|gateBarrier) {
			break
		}
	}
	for s.H.AtomicLoad64(gate)&^gateBarrier != 0 {
		runtime.Gosched()
	}
}

// Unquiesce drops the barrier raised by Quiesce.
func (s *Store) Unquiesce() {
	gate := s.cfg + cfgGate
	for {
		g := s.H.AtomicLoad64(gate)
		if s.H.CAS64(gate, g, g&^gateBarrier) {
			return
		}
	}
}
