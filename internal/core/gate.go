package core

import "runtime"

// Operation gate.
//
// The paper flushes the store to its backing file only at orderly
// shutdown, and calls full crash consistency future work (§6). As a step
// in that direction this implementation supports *live checkpoints*: a
// heap-resident gate counts in-flight operations; a checkpointer raises a
// barrier bit, waits for the count to drain, snapshots the (now fully
// consistent) heap, and drops the barrier. The fast-path cost is two
// uncontended atomic adds per operation.
//
// The gate word lives in the config block: bit 63 is the barrier, the low
// bits count active operations. Entry is reentrant per context (an
// operation that internally evicts or resizes does not deadlock itself).

// Gate word layout: bit 63 is the barrier, bits 48–62 are a repair
// generation, bits 0–47 count active operations. RepairGate bumps the
// generation when it clears the count after a crash, so a decrement can
// only land on the gate incarnation it entered: a watchdog-reaped zombie
// whose deferred exitOp runs after repair must not consume a count
// entered by a new live operation (Quiesce would then observe zero with
// an op mid-flight and snapshot a torn heap). The generation wraps at
// 2^15 repairs, far past any plausible window for a zombie to straddle.
const (
	gateBarrier   = uint64(1) << 63
	gateGenShift  = 48
	gateGenMask   = uint64(0x7fff) << gateGenShift
	gateCountMask = uint64(1)<<gateGenShift - 1
)

// enterOp joins the active-operation count, waiting out any barrier, and
// records the gate generation the count was entered under. Reentrant via
// the context's depth counter.
func (c *Ctx) enterOp() {
	if c.opDepth++; c.opDepth > 1 {
		return
	}
	c.nowOK = false // one clock read per admission; see Ctx.now
	gate := c.s.cfg + cfgGate
	for {
		g := c.s.H.AtomicLoad64(gate)
		if g&gateBarrier != 0 {
			runtime.Gosched() // a checkpoint is draining the store
			continue
		}
		if c.s.H.CAS64(gate, g, g+1) {
			c.gateGen = g & gateGenMask
			return
		}
	}
}

// exitOp leaves the active-operation count — but only on the gate
// incarnation it entered: if the generation changed (RepairGate ran
// because this thread was given up for dead) the count this context
// entered is already gone, and decrementing would eat a live operation's
// count. The zero check guards against underflow across a plain reset.
func (c *Ctx) exitOp() {
	if c.opDepth--; c.opDepth > 0 {
		return
	}
	gate := c.s.cfg + cfgGate
	for {
		g := c.s.H.AtomicLoad64(gate)
		if g&gateGenMask != c.gateGen {
			return // the gate was repaired out from under us
		}
		if g&gateCountMask == 0 {
			return // cleared by a reset; never wrap below zero
		}
		if c.s.H.CAS64(gate, g, g-1) {
			return
		}
	}
}

// Quiesce raises the barrier and waits until no operation is in flight.
// While quiesced the heap is fully consistent — no lock held, no partial
// structure — and safe to snapshot. Always pair with Unquiesce.
func (s *Store) Quiesce() {
	s.QuiesceWithAbort(nil)
}

// QuiesceWithAbort is Quiesce with an escape hatch: abort is polled while
// waiting (both for a competing barrier and for the count to drain) and a
// true return abandons the quiesce, dropping any barrier this call raised.
// A checkpointer uses it to yield to crash recovery — a count entered by a
// thread that died mid-call will never drain, so without the abort the
// checkpoint and the repair would deadlock. Returns whether the store was
// quiesced (true ⇒ the caller must Unquiesce).
func (s *Store) QuiesceWithAbort(abort func() bool) bool {
	gate := s.cfg + cfgGate
	for {
		g := s.H.AtomicLoad64(gate)
		if g&gateBarrier != 0 {
			if abort != nil && abort() {
				return false
			}
			runtime.Gosched() // another checkpointer; take turns
			continue
		}
		if s.H.CAS64(gate, g, g|gateBarrier) {
			break
		}
	}
	for s.H.AtomicLoad64(gate)&gateCountMask != 0 {
		if abort != nil && abort() {
			s.Unquiesce()
			return false
		}
		runtime.Gosched()
	}
	return true
}

// Unquiesce drops the barrier raised by Quiesce.
func (s *Store) Unquiesce() {
	gate := s.cfg + cfgGate
	for {
		g := s.H.AtomicLoad64(gate)
		if s.H.CAS64(gate, g, g&^gateBarrier) {
			return
		}
	}
}
