package core

import (
	"testing"

	"plibmc/internal/histogram"
	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

func latOpts() Options {
	return Options{HashPower: 8, NumItemLocks: 16, LatencySampleEvery: 1}
}

func TestLatencyRecordsEveryClass(t *testing.T) {
	s, c := newStore(t, 1<<22, latOpts())
	k, v := []byte("k"), []byte("v")
	if err := c.Set(k, v, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatal(err)
	}
	c.MGet([][]byte{k, []byte("miss")})
	if err := c.Touch(k, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	c.ExecBatch([]BatchOp{{Code: BatchSet, Key: k, Value: v}})
	m := s.NewMaintainer(2)
	m.RunOnce()

	ls := s.Latency()
	for class, name := range LatClassNames {
		if ls.Classes[class].Count() == 0 {
			t.Errorf("class %q recorded no samples", name)
		}
	}
	// The nested GetAppends inside MGet must not sample themselves: one
	// Get plus one Set-path lookup-free op per class above, so the get
	// class saw exactly the one explicit Get.
	if n := ls.Classes[LatGet].Count(); n != 1 {
		t.Fatalf("get class count = %d, want 1 (MGet inner lookups must not double-sample)", n)
	}
	if n := ls.Classes[LatMGet].Count(); n != 1 {
		t.Fatalf("mget class count = %d, want 1", n)
	}
}

func TestLatencySampling(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, LatencySampleEvery: 8})
	if err := c.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 800; i++ {
		c.Get([]byte("k"))
	}
	ls := s.Latency()
	n := ls.Classes[LatGet].Count()
	if n != 100 {
		t.Fatalf("sampled %d of 800 gets with period 8, want 100", n)
	}
}

func TestLatencyDisabled(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, DisableLatency: true})
	c.Set([]byte("k"), []byte("v"), 0, 0)
	for i := 0; i < 100; i++ {
		c.Get([]byte("k"))
	}
	var total uint64
	for _, h := range s.Latency().Classes {
		total += h.Count()
	}
	if total != 0 {
		t.Fatalf("disabled store recorded %d samples", total)
	}
	if s.LatencyEnabled() {
		t.Fatal("LatencyEnabled should be false")
	}
}

// Latency histograms are heap-resident: they must survive a detach and
// re-attach of the same heap (the crash-image / plibdump -metrics path).
func TestLatencySurvivesReattach(t *testing.T) {
	h := shm.New(1 << 22)
	a, err := ralloc.Format(h)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(a, latOpts())
	if err != nil {
		t.Fatal(err)
	}
	c := s.NewCtx(1)
	for i := 0; i < 10; i++ {
		c.Set([]byte("k"), []byte("v"), 0, 0)
		c.Get([]byte("k"))
	}
	want := s.Latency()
	c.Close()

	a2, err := ralloc.Open(h)
	if err != nil {
		t.Fatal(err)
	}
	if a2.GetRoot(RootLatency) == 0 {
		t.Fatal("RootLatency not set")
	}
	s2, err := Attach(a2)
	if err != nil {
		t.Fatal(err)
	}
	got := s2.Latency()
	for class := range got.Classes {
		if got.Classes[class].Total != want.Classes[class].Total {
			t.Fatalf("class %s: reattached total %d != %d",
				LatClassNames[class], got.Classes[class].Total, want.Classes[class].Total)
		}
	}
	if got.Classes[LatGet].Percentile(99) == 0 {
		t.Fatal("reattached get p99 is zero")
	}
}

// A thread that dies between the bucket add and the total add leaves the
// histogram torn; Repair must mend it and report it.
func TestRepairMendsTornHistogram(t *testing.T) {
	s, c := newStore(t, 1<<22, latOpts())
	for i := 0; i < 20; i++ {
		c.Set([]byte("k"), []byte("v"), 0, 0)
	}
	// Tear a histogram the way fpLatRecord would: bucket bumped, total not.
	off := s.latOff(c.latSlot, LatGet)
	s.H.Add64(off+histogram.SharedOffCounts, 1)

	rc := s.NewCtx(99)
	rep, err := s.Repair(rc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HistogramsRepaired != 1 {
		t.Fatalf("HistogramsRepaired = %d, want 1", rep.HistogramsRepaired)
	}
	g := s.Latency().Classes[LatGet]
	var n uint64
	for _, cnt := range g.Counts {
		n += cnt
	}
	if n != g.Total {
		t.Fatalf("histogram still torn after repair: Σcounts=%d total=%d", n, g.Total)
	}
}
