package core

// Targeting surface for corruption-injection tests and offline tooling.
// These expose heap offsets of live structures so internal/corrupt can
// flip bits in a specific item header, chain link, LRU word or stats slot.
// Nothing here is part of the operation API.

// Exported item-field offsets (relative to an item's base offset).
const (
	DebugItemHNext   = itHNext
	DebugItemLRUNext = itLRUNext
	DebugItemLRUPrev = itLRUPrev
	DebugItemHash    = itHash
	DebugItemKeyLen  = itKeyLen
	DebugItemValLen  = itValLen
	DebugItemCheck   = itCheck
	DebugItemValSum  = itValSum
)

// DebugStatCurrItems is the counter index of CurrItems within a stats slot
// (each counter is one word).
const DebugStatCurrItems = statCurrItems

// DebugItemOffset returns the heap offset of the item currently linked
// under key, or 0. It walks without verification or side effects, so a
// test can locate an item it is about to corrupt (or just corrupted).
func (c *Ctx) DebugItemOffset(key []byte) uint64 {
	k := append([]byte(nil), key...)
	hash := hashKey(k)
	lock := c.s.itemLockOff(hash)
	c.lock(lock)
	defer c.unlock(lock)
	it := loadChainHead(c.s, c.s.bucketFor(hash))
	for steps := 0; it != 0 && steps < maxRepairChain; steps++ {
		if c.s.keyEqual(it, k) {
			return it
		}
		it = loadChainNext(c.s, it)
	}
	return 0
}

// DebugBucketOff returns the heap offset of the bucket word that currently
// owns key's hash. Only stable while no resize runs.
func (c *Ctx) DebugBucketOff(key []byte) uint64 {
	hash := hashKey(key)
	lock := c.s.itemLockOff(hash)
	c.lock(lock)
	defer c.unlock(lock)
	return c.s.bucketFor(hash)
}

// DebugValOff returns the heap offset of an item's value bytes.
func (s *Store) DebugValOff(it uint64) uint64 { return s.itemValOff(it) }

// DebugStatsSlotOff returns the heap offset of scattered-stats slot i.
func (s *Store) DebugStatsSlotOff(i uint64) uint64 { return s.stats + i*statSlotSize }

// DebugLRUHeadOff returns the heap offset of LRU list idx's head pptr.
func (s *Store) DebugLRUHeadOff(idx uint64) uint64 { return s.lruHeadOff(idx) }

// DebugLRUForKey returns the LRU list index key's item hashes onto.
func DebugLRUForKey(s *Store, key []byte) uint64 { return s.lruFor(hashKey(key)) }
