package core

import (
	"fmt"
	"testing"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/internal/shm"
)

// TestReapExpiresDeadReader is the regression test for the epoch
// reclamation stall: a reader that dies inside an announced section used
// to block every reaper forever. With announcements tied to owner tokens
// and a liveness oracle installed, the reaper expires the dead
// announcement itself.
func TestReapExpiresDeadReader(t *testing.T) {
	s, c1 := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c2 := s.NewCtx(2)
	if c2.rdSlot == 0 {
		t.Fatal("c2 did not claim a reader slot")
	}

	// c2 announces a read section and "dies" (its thread never runs again).
	c2.beginRead()
	s.SetOwnerLiveness(func(owner uint64) bool { return owner != 2 })

	// Quarantine something, then reap. Without expiry this spins forever
	// on c2's odd epoch.
	if err := c1.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if s.GraveLen() == 0 {
		t.Fatal("delete did not quarantine the item")
	}
	done := make(chan int, 1)
	go func() { done <- c1.reapGrave() }()
	select {
	case freed := <-done:
		if freed == 0 {
			t.Fatal("reap freed nothing")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reaper stalled on a dead reader's announcement")
	}

	// The expired slot is free for reuse; the zombie's late endRead must
	// not disturb the new tenant's announcement.
	if got := s.H.AtomicLoad64(c2.rdSlot + readerSlotOwner); got != 0 {
		t.Fatalf("expired slot still owned by %d", got)
	}
	slot := c2.rdSlot
	c3 := s.NewCtx(3)
	if c3.rdSlot != slot {
		// Slot scan order guarantees the freed slot is reclaimed first.
		t.Fatalf("c3 claimed slot %#x, want the freed %#x", c3.rdSlot, slot)
	}
	c3.beginRead()
	e3 := s.H.AtomicLoad64(slot + readerSlotEpoch)
	c2.endRead() // zombie resumes: CAS against its remembered epoch fails
	if got := s.H.AtomicLoad64(slot + readerSlotEpoch); got != e3 {
		t.Fatalf("zombie endRead moved the reassigned slot's epoch %d -> %d", e3, got)
	}
	c3.endRead()
}

// TestReapWaitsForLiveReader: the oracle reporting everyone alive (or no
// oracle at all) preserves the old behaviour — reapers wait for the
// section to exit.
func TestReapWaitsForLiveReader(t *testing.T) {
	s, c1 := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c2 := s.NewCtx(2)
	s.SetOwnerLiveness(func(uint64) bool { return true })
	c2.beginRead()
	if err := c1.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Delete([]byte("k")); err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() { done <- c1.reapGrave() }()
	select {
	case <-done:
		t.Fatal("reaper did not wait for a live reader's section")
	case <-time.After(20 * time.Millisecond):
	}
	c2.endRead()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("reaper did not finish after the section closed")
	}
}

func deadOnly(tokens ...uint64) func(uint64) bool {
	set := map[uint64]bool{}
	for _, tok := range tokens {
		set[tok] = true
	}
	return func(owner uint64) bool { return set[owner] }
}

func TestForceReleaseDeadLocks(t *testing.T) {
	s, _ := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	const deadTok, liveTok = 99<<20 | 1, 7<<20 | 1
	s.H.LockAcquire(s.itemLocks+0*shm.LockWordSize, deadTok)
	s.H.LockAcquire(s.itemLocks+3*shm.LockWordSize, deadTok)
	s.H.LockAcquire(s.lruLocks+1*shm.LockWordSize, deadTok)
	s.H.LockAcquire(s.cfg+cfgStatsLock, deadTok)
	s.H.LockAcquire(s.itemLocks+5*shm.LockWordSize, liveTok)

	if held := s.HeldLocks(); len(held) != 5 {
		t.Fatalf("HeldLocks = %d, want 5: %v", len(held), held)
	}
	if n := s.ForceReleaseDeadLocks(deadOnly(deadTok)); n != 4 {
		t.Fatalf("broke %d locks, want 4", n)
	}
	held := s.HeldLocks()
	if len(held) != 1 || held[0].Owner != liveTok || held[0].Kind != "item" || held[0].Index != 5 {
		t.Fatalf("after release: %v, want only the live item lock", held)
	}
	s.H.LockRelease(s.itemLocks + 5*shm.LockWordSize)
}

func TestRetireDeadReaders(t *testing.T) {
	s, _ := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	cDead := s.NewCtx(42)
	cLive := s.NewCtx(43)
	cDead.beginRead() // dies inside the section
	cLive.beginRead()
	if n := s.RetireDeadReaders(deadOnly(42)); n != 1 {
		t.Fatalf("retired %d slots, want 1", n)
	}
	if e := s.H.AtomicLoad64(cDead.rdSlot + readerSlotEpoch); e&1 != 0 {
		t.Fatal("dead reader's epoch still odd")
	}
	if o := s.H.AtomicLoad64(cDead.rdSlot + readerSlotOwner); o != 0 {
		t.Fatalf("dead reader's slot still owned by %d", o)
	}
	if o := s.H.AtomicLoad64(cLive.rdSlot + readerSlotOwner); o != 43 {
		t.Fatal("live reader's slot was disturbed")
	}
	cLive.endRead()
}

// TestExitOpAfterRepairGate: a zombie thread resuming its deferred exitOp
// after the gate was repaired must not underflow the in-flight count.
func TestExitOpAfterRepairGate(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c.enterOp()
	s.RepairGate()
	c.exitOp() // must be a no-op, not a wrap to 2^63-1
	if n, barrier := s.InFlightOps(); n != 0 || barrier {
		t.Fatalf("gate = (%d, %v) after repaired exitOp, want (0, false)", n, barrier)
	}
	// The gate still works for the next operation.
	c.enterOp()
	if n, _ := s.InFlightOps(); n != 1 {
		t.Fatalf("gate count = %d, want 1", n)
	}
	c.exitOp()
	if n, _ := s.InFlightOps(); n != 0 {
		t.Fatalf("gate count = %d, want 0", n)
	}
}

// crashOp arms the named fault point, runs op (which must hit it), and
// swallows the injected panic — leaving behind exactly the torn state a
// dying thread would.
func crashOp(t *testing.T, point string, op func()) {
	t.Helper()
	if err := faultpoint.Arm(point, func() { panic("injected crash: " + point) }); err != nil {
		t.Fatal(err)
	}
	defer faultpoint.Disarm(point)
	defer func() {
		if recover() == nil {
			t.Fatalf("operation did not reach fault point %s", point)
		}
	}()
	op()
}

// TestRepairStructural manufactures the damage a mid-operation crash
// leaves behind — a held item lock, an LRU orphan, a torn chain link, a
// populated quarantine — and verifies one Repair pass restores a
// self-consistent store.
func TestRepairStructural(t *testing.T) {
	s, c1 := newStore(t, 1<<23, Options{HashPower: 8, NumItemLocks: 16})
	const n = 50
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%03d", i)) }
	for i := 0; i < n; i++ {
		if err := c1.Set(key(i), []byte("payload"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// A handful of deletes populate the quarantine list.
	for i := n; i < n+5; i++ {
		if err := c1.Set(key(i), []byte("doomed"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := c1.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.GraveLen() != 5 {
		t.Fatalf("GraveLen = %d, want 5", s.GraveLen())
	}

	// Damage 1: a client dies between the table unlink and the LRU unlink
	// of key-000 — item lock held, orphan still on its LRU list.
	c2 := s.NewCtx(2)
	crashOp(t, "lru.unlink.before_lru", func() { _ = c2.Delete(key(0)) })

	// Damage 2: a torn hNext — the longest chain's head points into
	// garbage, so harvesting must truncate and the tail items become
	// orphans to free.
	newT, newMask, _, _, _, _ := s.tables()
	torn := false
	for b := uint64(0); b <= newMask && !torn; b++ {
		it := loadChainHead(s, newT+b*8)
		if it == 0 {
			continue
		}
		chain := 0
		for x := it; x != 0; x = loadChainNext(s, x) {
			chain++
		}
		if chain >= 2 {
			// Raw odd garbage in the pptr word decodes to a misaligned
			// offset, which validItem rejects.
			s.H.Store64(it+itHNext, 0xDEAD)
			torn = true
		}
	}
	if !torn {
		t.Fatal("no bucket chain of length >= 2; raise n or shrink the table")
	}

	// Damage 3: a writer died inside a seqlock section.
	s.H.SeqWriteBegin(s.seqLocks + 7*8)

	// The coordinator's passes, in order.
	dead := deadOnly(2)
	if broke := s.ForceReleaseDeadLocks(dead); broke < 1 {
		t.Fatalf("ForceReleaseDeadLocks broke %d, want >= 1", broke)
	}
	s.RetireDeadReaders(dead)
	s.RepairGate()
	rep, err := s.Repair(c1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SeqlocksCleared < 1 {
		t.Fatalf("SeqlocksCleared = %d, want >= 1", rep.SeqlocksCleared)
	}
	if rep.GraveFreed != 5 {
		t.Fatalf("GraveFreed = %d, want 5", rep.GraveFreed)
	}
	if rep.ItemsDropped < 1 {
		t.Fatalf("ItemsDropped = %d, want >= 1 (the unlink orphan)", rep.ItemsDropped)
	}
	if s.GraveLen() != 0 {
		t.Fatalf("GraveLen = %d after repair", s.GraveLen())
	}

	// The heap checks out and the survivors serve.
	if _, err := s.A.Check(); err != nil {
		t.Fatalf("heap verification after repair: %v", err)
	}
	served := 0
	for i := 1; i < n; i++ {
		if v, _, _, err := c1.Get(key(i)); err == nil {
			if string(v) != "payload" {
				t.Fatalf("%s = %q after repair", key(i), v)
			}
			served++
		}
	}
	if served != rep.ItemsKept {
		t.Fatalf("Get served %d survivors, report says %d kept", served, rep.ItemsKept)
	}
	if _, _, _, err := c1.Get(key(0)); err == nil {
		t.Fatal("half-deleted key resurrected with a stale value path")
	}

	// Stats are self-consistent with a full iteration.
	st := s.Stats()
	walked := c1.ForEach(func(*Entry) bool { return true })
	if uint64(walked) != st.CurrItems || st.CurrItems != uint64(rep.ItemsKept) {
		t.Fatalf("CurrItems = %d, ForEach = %d, kept = %d", st.CurrItems, walked, rep.ItemsKept)
	}
	if st.ItemsDroppedInRepair == 0 || st.Recoveries != 1 {
		t.Fatalf("stats: dropped=%d recoveries=%d", st.ItemsDroppedInRepair, st.Recoveries)
	}

	// The store keeps working: overwrite, insert, delete.
	if err := c1.Set(key(1), []byte("fresh"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, _, _, err := c1.Get(key(1)); err != nil || string(v) != "fresh" {
		t.Fatalf("post-repair overwrite: %q, %v", v, err)
	}
	if err := c1.Set([]byte("brand-new"), []byte("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c1.Delete([]byte("brand-new")); err != nil {
		t.Fatal(err)
	}
}

// TestRepairAbortsExpansion: a maintainer dying mid-migration leaves two
// tables and a cursor; repair must collapse back to one table without
// losing survivors.
func TestRepairAbortsExpansion(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 4, NumItemLocks: 16})
	const n = 40
	key := func(i int) []byte { return []byte(fmt.Sprintf("exp-%03d", i)) }
	for i := 0; i < n; i++ {
		if err := c.Set(key(i), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StartExpand(c, 6); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExpandStep(c, 3); err != nil {
		t.Fatal(err)
	}
	if !s.Expanding() {
		t.Fatal("expansion finished prematurely; test needs a mid-flight state")
	}
	s.RepairGate()
	rep, err := s.Repair(c)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ExpandAborted {
		t.Fatal("ExpandAborted not reported")
	}
	if s.Expanding() {
		t.Fatal("still expanding after repair")
	}
	if rep.ItemsKept != n {
		t.Fatalf("ItemsKept = %d, want %d", rep.ItemsKept, n)
	}
	if _, err := s.A.Check(); err != nil {
		t.Fatalf("heap verification: %v", err)
	}
	for i := 0; i < n; i++ {
		if _, _, _, err := c.Get(key(i)); err != nil {
			t.Fatalf("Get(%s) after aborted expansion: %v", key(i), err)
		}
	}
}

// TestZombieExitOpCannotEatLiveCount: a zombie's stale exitOp after a
// gate repair must not decrement an in-flight count that now belongs to
// post-repair operations. The generation word makes the stale decrement
// a no-op.
func TestZombieExitOpCannotEatLiveCount(t *testing.T) {
	s, zombie := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	zombie.enterOp() // in flight at crash time
	s.RepairGate()   // recovery clears the gate, bumps the generation

	live := s.NewCtx(2)
	live.enterOp()
	zombie.exitOp() // resumes its deferred exit with a stale generation
	if n, _ := s.InFlightOps(); n != 1 {
		t.Fatalf("gate count = %d after stale exitOp, want 1 (live op eaten)", n)
	}
	live.exitOp()
	if n, _ := s.InFlightOps(); n != 0 {
		t.Fatalf("gate count = %d, want 0", n)
	}
}

// TestReapedZombieDeniedLock: a watchdog-reaped thread that resumes
// inside a lock spin must never acquire the lock — recovery is about to
// repair (or has repaired) the state it would mutate. The acquire path
// consults the liveness oracle and unwinds the zombie with a panic, and
// the released word stays released.
func TestReapedZombieDeniedLock(t *testing.T) {
	s, _ := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	const crasherTok = 99<<20 | 1
	zombie := s.NewCtx(5)
	lock := s.itemLocks + 2*shm.LockWordSize
	s.H.LockAcquire(lock, crasherTok) // the crasher died holding this

	unwound := make(chan any, 1)
	spinning := make(chan struct{})
	go func() {
		defer func() { unwound <- recover() }()
		close(spinning)
		zombie.lock(lock) // spins: lock held by the (dead) crasher
	}()
	<-spinning
	time.Sleep(5 * time.Millisecond) // let the spin hit its slow path

	// The watchdog reaps both the crasher and the spinning zombie, then
	// recovery breaks the dead owner's lock.
	s.SetOwnerLiveness(func(owner uint64) bool { return owner != crasherTok && owner != 5 })
	if n := s.ForceReleaseDeadLocks(deadOnly(crasherTok, 5)); n != 1 {
		t.Fatalf("broke %d locks, want 1", n)
	}
	select {
	case r := <-unwound:
		if r == nil {
			t.Fatal("zombie acquired a lock after being reaped")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("zombie neither acquired nor unwound")
	}
	if held := s.HeldLocks(); len(held) != 0 {
		t.Fatalf("locks still held after denial: %v", held)
	}
}

// TestZombieBeginReadCannotClobber: a zombie whose reader slot was
// retired and reclaimed by a new context must not overwrite the new
// owner's announcement when it resumes in beginRead.
func TestZombieBeginReadCannotClobber(t *testing.T) {
	s, _ := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c2 := s.NewCtx(2)
	slot := c2.rdSlot
	if slot == 0 {
		t.Fatal("c2 did not claim a reader slot")
	}
	// c2 dies idle; recovery retires its slot; c3 reclaims it and enters
	// a section.
	s.SetOwnerLiveness(func(owner uint64) bool { return owner != 2 })
	if n := s.RetireDeadReaders(deadOnly(2)); n != 1 {
		t.Fatalf("retired %d slots, want 1", n)
	}
	c3 := s.NewCtx(3)
	if c3.rdSlot != slot {
		t.Fatalf("c3 claimed slot %#x, want the freed %#x", c3.rdSlot, slot)
	}
	if !c3.beginRead() {
		t.Fatal("c3 could not announce a section in its own slot")
	}
	epoch := s.H.AtomicLoad64(slot + readerSlotEpoch)
	if epoch&1 == 0 {
		t.Fatal("c3's announced epoch is not odd")
	}

	// The zombie resumes and tries to announce through its stale slot
	// pointer. It must fail without touching c3's announcement.
	if c2.beginRead() {
		t.Fatal("zombie announced a section through a reclaimed slot")
	}
	if e := s.H.AtomicLoad64(slot + readerSlotEpoch); e != epoch {
		t.Fatalf("zombie moved the new owner's epoch %d -> %d", epoch, e)
	}
	if o := s.H.AtomicLoad64(slot + readerSlotOwner); o != 3 {
		t.Fatalf("slot owner = %d, want 3", o)
	}
	c3.endRead()
}
