package core

import (
	"plibmc/internal/faultpoint"
	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

// Crash-injection sites (see ops.go for the convention).
var (
	fpLinkBeforeLRU   = faultpoint.New("lru.link.before_lru")   // in table, not yet in LRU
	fpUnlinkBeforeLRU = faultpoint.New("lru.unlink.before_lru") // out of table, still in LRU
	fpEvictAfterPin   = faultpoint.New("lru.evict.after_pin")   // victim pinned, nothing held
)

// LRU lists.
//
// The original memcached keeps one LRU list per slab class. Having replaced
// the slab allocator with Ralloc, the paper decouples eviction order from
// allocation size: items are scattered over a set of doubly linked lists
// chosen by key hash, each with its own heap-resident lock, because a
// single list "caused unacceptable lock contention at high thread counts."
// The bookkeeping process (and, as a fallback, any thread that exhausts
// memory) evicts from the tails.

// lruBumpInterval matches memcached's ITEM_UPDATE_INTERVAL: an item is
// moved to the head of its list at most once per interval, which keeps
// read-heavy workloads from serializing on the LRU locks.
const lruBumpInterval = 60

func (s *Store) lruFor(h uint64) uint64 { return (h >> 32) % s.numLRUs }

func (s *Store) lruLockOff(idx uint64) uint64 { return s.lruLocks + idx*shm.LockWordSize }
func (s *Store) lruHeadOff(idx uint64) uint64 { return s.lruData + idx*16 }
func (s *Store) lruTailOff(idx uint64) uint64 { return s.lruData + idx*16 + 8 }

// lruInsertHead links it at the head of list idx. Caller holds the list
// lock. The stale-head check keeps a corrupted head pointer from letting
// the insert scribble a back-link through arbitrary heap memory: a real
// head's lruPrev is always zero.
func (s *Store) lruInsertHead(idx, it uint64) {
	h := s.H
	head := ralloc.LoadPptr(h, s.lruHeadOff(idx))
	if head != 0 && (head&7 != 0 || ralloc.LoadPptr(h, head+itLRUPrev) != 0) {
		panic("core: corrupt LRU head (insert)")
	}
	ralloc.StorePptr(h, it+itLRUPrev, 0)
	ralloc.StorePptr(h, it+itLRUNext, head)
	if head != 0 {
		ralloc.StorePptr(h, head+itLRUPrev, it)
	} else {
		ralloc.StorePptr(h, s.lruTailOff(idx), it)
	}
	ralloc.StorePptr(h, s.lruHeadOff(idx), it)
}

// lruRemove unlinks it from list idx. Caller holds the list lock.
//
// Each neighbor is grounded before the splice writes through it: a nonzero
// prev/next must be word-aligned and its back-link must point at it, and a
// boundary item must actually be the list's head/tail. A corrupted link
// therefore panics (unwound by hodor into a full structural repair, which
// rebuilds every list) instead of silently scribbling on whatever word the
// corrupt pointer addresses — the containment rule the corruption matrix
// enforces for the LRU-link class.
func (s *Store) lruRemove(idx, it uint64) {
	h := s.H
	prev := ralloc.LoadPptr(h, it+itLRUPrev)
	next := ralloc.LoadPptr(h, it+itLRUNext)
	if prev != 0 && (prev&7 != 0 || ralloc.LoadPptr(h, prev+itLRUNext) != it) {
		panic("core: corrupt LRU prev link")
	}
	if next != 0 && (next&7 != 0 || ralloc.LoadPptr(h, next+itLRUPrev) != it) {
		panic("core: corrupt LRU next link")
	}
	if prev == 0 && ralloc.LoadPptr(h, s.lruHeadOff(idx)) != it {
		panic("core: item not at LRU head it claims")
	}
	if next == 0 && ralloc.LoadPptr(h, s.lruTailOff(idx)) != it {
		panic("core: item not at LRU tail it claims")
	}
	if prev != 0 {
		ralloc.StorePptr(h, prev+itLRUNext, next)
	} else {
		ralloc.StorePptr(h, s.lruHeadOff(idx), next)
	}
	if next != 0 {
		ralloc.StorePptr(h, next+itLRUPrev, prev)
	} else {
		ralloc.StorePptr(h, s.lruTailOff(idx), prev)
	}
	ralloc.StorePptr(h, it+itLRUPrev, 0)
	ralloc.StorePptr(h, it+itLRUNext, 0)
}

// lruLink inserts it into its hash-selected list, taking the list lock.
func (c *Ctx) lruLink(hash, it uint64) {
	idx := c.s.lruFor(hash)
	c.lock(c.s.lruLockOff(idx))
	c.s.lruInsertHead(idx, it)
	c.unlock(c.s.lruLockOff(idx))
}

// lruUnlink removes it from its list, taking the list lock. Lock order is
// item lock → LRU lock, so this is safe under a held item lock.
func (c *Ctx) lruUnlink(hash, it uint64) {
	idx := c.s.lruFor(hash)
	c.lock(c.s.lruLockOff(idx))
	c.s.lruRemove(idx, it)
	c.unlock(c.s.lruLockOff(idx))
}

// lruBump moves a touched item to the head of its list if it has not been
// bumped recently. Caller holds the item lock. lastAccess uses relaxed
// accesses because lock-free readers consult it to decide whether a bump
// is due (and fall back to this path when it is — which is what keeps the
// bump entirely off the optimistic fast path for the other 60 seconds).
func (c *Ctx) lruBump(hash, it uint64, now int64) {
	if uint64(now)-c.s.H.RelaxedLoad64(it+itLastAccess) < lruBumpInterval {
		return
	}
	c.s.H.RelaxedStore64(it+itLastAccess, uint64(now))
	idx := c.s.lruFor(hash)
	c.lock(c.s.lruLockOff(idx))
	if c.s.isLinked(it) {
		c.s.lruRemove(idx, it)
		c.s.lruInsertHead(idx, it)
	}
	c.unlock(c.s.lruLockOff(idx))
}

// evictSome removes up to n least-recently-used items from the store and
// returns how many it evicted. It never blocks on an item lock (trylock
// only), so it is safe to call while holding one.
func (c *Ctx) evictSome(n int) int {
	evicted := 0
	s := c.s
	for sweep := uint64(0); sweep < s.numLRUs && evicted < n; sweep++ {
		idx := (c.evictCursor + sweep) % s.numLRUs
		for evicted < n {
			if !c.evictTailOf(idx) {
				break
			}
			evicted++
		}
	}
	c.evictCursor++
	return evicted
}

// evictTailOf tries to evict the tail of LRU list idx, reporting success.
func (c *Ctx) evictTailOf(idx uint64) bool {
	s := c.s
	lockOff := s.lruLockOff(idx)
	if !c.tryLock(lockOff) {
		return false
	}
	victim := ralloc.LoadPptr(s.H, s.lruTailOff(idx))
	if victim == 0 {
		c.unlock(lockOff)
		return false
	}
	s.incref(victim) // pin: the victim cannot be freed under us
	c.unlock(lockOff)
	fpEvictAfterPin.Maybe()

	// The hash was fixed at allocation; no key read or rehash needed.
	hash := s.itemHash(victim)

	ok := false
	itemLock := s.itemLockOff(hash)
	if c.tryLock(itemLock) {
		if s.isLinked(victim) {
			c.unlinkLocked(victim, hash)
			c.stat(statEvictions, 1)
			ok = true
		}
		c.unlock(itemLock)
	}
	c.decref(victim)
	return ok
}

// linkLocked inserts a fully built item into the table and LRU. Caller
// holds the item lock for hash. The chain mutation is bracketed by the
// stripe seqlock and the publishing bucket store is atomic, so lock-free
// readers either miss the item cleanly or see it fully initialized (its
// hNext store is pre-publication and ordered by the bucket store).
func (c *Ctx) linkLocked(it, hash uint64) {
	s := c.s
	bucket := s.bucketFor(hash)
	seq := s.seqOff(hash)
	s.H.SeqWriteBegin(seq)
	ralloc.StorePptr(s.H, it+itHNext, ralloc.LoadPptr(s.H, bucket))
	ralloc.AtomicStorePptr(s.H, bucket, it)
	s.H.SeqWriteEnd(seq)
	s.setLinked(it, true)
	fpLinkBeforeLRU.Maybe()
	c.lruLink(hash, it)
	c.stat(statCurrItems, 1)
	c.stat(statTotalItems, 1)
	c.stat(statBytes, int64(s.A.SizeOf(it)))
}

// unlinkLocked removes a linked item from the table and LRU and drops the
// link reference. Caller holds the item lock for hash. The splice is an
// atomic store under the stripe seqlock; the unlinked item keeps its own
// (now stale) hNext so a reader standing on it walks into the live chain
// and fails validation rather than dereferencing garbage.
func (c *Ctx) unlinkLocked(it, hash uint64) {
	s := c.s
	bucket := s.bucketFor(hash)
	prevAddr := bucket
	cur := ralloc.LoadPptr(s.H, bucket)
	for steps := 0; cur != 0 && cur != it; steps++ {
		if steps >= maxRepairChain {
			panic("core: bucket chain cycle (corruption)")
		}
		prevAddr = cur + itHNext
		cur = ralloc.LoadPptr(s.H, prevAddr)
	}
	seq := s.seqOff(hash)
	s.H.SeqWriteBegin(seq)
	if cur == it {
		ralloc.AtomicStorePptr(s.H, prevAddr, ralloc.LoadPptr(s.H, it+itHNext))
	}
	s.H.SeqWriteEnd(seq)
	s.setLinked(it, false)
	fpUnlinkBeforeLRU.Maybe()
	c.lruUnlink(hash, it)
	c.stat(statCurrItems, -1)
	c.stat(statBytes, -int64(s.A.SizeOf(it)))
	c.decref(it) // the link reference
}

// swapLocked replaces old with nit in the bucket chain inside ONE
// seqlock write section. Caller holds the item lock for hash.
//
// It exists because unlinkLocked+linkLocked each bracket their own
// section, and between the two the stripe is quiescent with the key in
// neither — a lock-free reader scanning that gap validates cleanly and
// reports a definitive miss for a key that was never deleted. Every
// replacement of an existing item (Set/Replace/CAS over a live key,
// append/prepend, width-changing incr/decr) must come through here; the
// unlink/link pair remains correct only where absence is the intended
// observable state (Delete, eviction, fresh inserts).
//
// Inside the section the new item is published at the chain head before
// the old one is spliced out, so a crash mid-swap leaves at worst both
// chained; repair keeps the head-most (newest) copy per key and frees
// the shadowed one as an LRU orphan.
func (c *Ctx) swapLocked(old, nit, hash uint64) {
	s := c.s
	bucket := s.bucketFor(hash)
	// Locate old's predecessor before opening the write section; the walk
	// only reads, and the item lock fences out competing writers.
	prevAddr := bucket
	cur := ralloc.LoadPptr(s.H, bucket)
	for steps := 0; cur != 0 && cur != old; steps++ {
		if steps >= maxRepairChain {
			panic("core: bucket chain cycle (corruption)")
		}
		prevAddr = cur + itHNext
		cur = ralloc.LoadPptr(s.H, prevAddr)
	}
	seq := s.seqOff(hash)
	s.H.SeqWriteBegin(seq)
	ralloc.StorePptr(s.H, nit+itHNext, ralloc.LoadPptr(s.H, bucket))
	ralloc.AtomicStorePptr(s.H, bucket, nit)
	fpStoreMidSwap.Maybe()
	if cur == old {
		if prevAddr == bucket {
			// old was the head; the new item now precedes it.
			prevAddr = nit + itHNext
		}
		ralloc.AtomicStorePptr(s.H, prevAddr, ralloc.LoadPptr(s.H, old+itHNext))
	}
	s.H.SeqWriteEnd(seq)
	s.setLinked(nit, true)
	s.setLinked(old, false)
	c.lruUnlink(hash, old)
	c.lruLink(hash, nit)
	c.stat(statTotalItems, 1)
	c.stat(statBytes, int64(s.A.SizeOf(nit))-int64(s.A.SizeOf(old)))
	c.decref(old) // the link reference
}
