package core

// Tenant arena pages (gate hardening). Each memcached session gets one
// page-sized, page-aligned block of the shared heap as its private arena,
// tagged with the session's own virtual protection key: the staging area
// for that tenant's security-sensitive buffers, isolated from sibling
// tenants by PKU rather than by convention. The blocks come from the
// ordinary allocator — the 4096 size class carves 64 KiB-aligned chunks
// into page-multiple blocks, so every block of that class is exactly one
// page and fully owns it, which is what lets a protection key be assigned
// to the block without catching unrelated neighbours.

import (
	"fmt"

	"plibmc/internal/shm"
)

// AllocPage allocates one page-aligned, page-sized heap block under a
// normal gate admission and returns its heap offset. The caller owns the
// page's protection-key assignment.
func (c *Ctx) AllocPage() (uint64, error) {
	c.enterOp()
	defer c.exitOp()
	off, err := c.cache.Malloc(shm.PageSize)
	if err != nil {
		return 0, err
	}
	if off%shm.PageSize != 0 {
		// Unreachable with the current class table (4096 divides ChunkSize);
		// guard it so a future class reshuffle fails loudly, not by handing
		// out a "page" whose key assignment bleeds onto a neighbour.
		c.cache.Free(off) //nolint:errcheck
		return 0, fmt.Errorf("core: allocator returned unaligned page block %#x", off)
	}
	return off, nil
}

// FreePage returns a page obtained from AllocPage to the heap. The caller
// must have already restored the page's protection key to the library's
// (a freed block can be recycled into any library structure).
func (c *Ctx) FreePage(off uint64) error {
	c.enterOp()
	defer c.exitOp()
	return c.cache.Free(off)
}
