package core

import (
	"fmt"

	"plibmc/internal/faultpoint"
	"plibmc/internal/ralloc"
)

// Crash-injection sites (see ops.go for the convention). A maintainer
// dying here is the worst case the repair pass handles: every item lock
// held, every stripe seqlock odd, and a half-migrated two-table state.
var (
	fpExpandStartLocked = faultpoint.New("expand.start.locked")
	fpExpandStepMid     = faultpoint.New("expand.step.mid_bucket")
)

// Incremental hash-table expansion.
//
// The paper's background-process resizer "is not yet working correctly",
// which forced their evaluation onto a fixed 2^25-bucket table. This file
// implements the background resize the way memcached's expansion thread
// does it: a new table is published alongside the old, a migration cursor
// sweeps the old buckets a few at a time under the ordinary item locks,
// and lookups route per key — buckets at or past the cursor are still in
// the old table, the rest have moved. Clients never stall for more than
// one bucket's migration.
//
// The Fig. 3 storage cell grows three fields for the duration:
//
//	+16 oldTable pptr (nil when not expanding)
//	+24 oldHashPower
//	+32 expandBucket (atomic cursor into the old table)
//
// Invariants: the lock stripe divides both table sizes, so the item lock
// for hash h covers h's bucket in *both* tables; the cursor is advanced
// while holding the lock of the bucket just migrated, so any thread that
// acquires that lock afterwards sees the new location.

const (
	htOldTable     = 16
	htOldPower     = 24
	htExpandCursor = 32
	htSizeExpanded = 40
)

// tables reads the full routing state. Callers must hold an item lock (or
// all of them) for a stable view.
func (s *Store) tables() (newT, newMask, oldT, oldMask, cursor uint64, expanding bool) {
	newT = ralloc.LoadPptr(s.H, s.htStorage+htTable)
	newMask = (uint64(1) << s.H.Load64(s.htStorage+htHashPower)) - 1
	oldT = ralloc.LoadPptr(s.H, s.htStorage+htOldTable)
	if oldT != 0 {
		expanding = true
		oldMask = (uint64(1) << s.H.Load64(s.htStorage+htOldPower)) - 1
		cursor = s.H.AtomicLoad64(s.htStorage + htExpandCursor)
	}
	return
}

// bucketFor returns the heap offset of the bucket word that currently owns
// hash. Caller holds the item lock for hash.
func (s *Store) bucketFor(hash uint64) uint64 {
	newT, newMask, oldT, oldMask, cursor, expanding := s.tables()
	if expanding {
		if ob := hash & oldMask; ob >= cursor {
			return oldT + ob*8
		}
	}
	return newT + (hash&newMask)*8
}

// Expanding reports whether a background expansion is in progress.
func (s *Store) Expanding() bool {
	return ralloc.AtomicLoadPptr(s.H, s.htStorage+htOldTable) != 0
}

// StartExpand begins a background expansion to 2^newPower buckets. The
// current table becomes the "old" table; migration happens in ExpandStep
// calls (normally driven by the maintainer).
func (s *Store) StartExpand(c *Ctx, newPower uint) error {
	c.enterOp()
	defer c.exitOp()
	if newPower > 30 {
		return fmt.Errorf("core: refusing table of 2^%d buckets", newPower)
	}
	if uint64(1)<<newPower < s.numItemLocks {
		return fmt.Errorf("core: table of 2^%d buckets would be smaller than the lock stripe", newPower)
	}
	if s.Expanding() {
		return fmt.Errorf("core: expansion already in progress")
	}
	if uint(s.H.Load64(s.htStorage+htHashPower)) >= newPower {
		return fmt.Errorf("core: expansion must grow the table")
	}
	newTable, err := c.cache.Calloc((uint64(1) << newPower) * 8)
	if err != nil {
		return err
	}
	// Publish atomically with respect to every operation: hold the whole
	// lock stripe for the (brief, copy-free) pointer swap.
	for li := uint64(0); li < s.numItemLocks; li++ {
		c.lock(s.itemLocks + li*8)
	}
	// Lock-free readers sample routing state without holding any lock, so
	// the swap also bumps every stripe seqlock: a reader overlapping the
	// swap fails validation, and one starting after it sees htOldTable set
	// and falls back to the locked path for the whole expansion.
	for li := uint64(0); li < s.numItemLocks; li++ {
		s.H.SeqWriteBegin(s.seqLocks + li*8)
	}
	oldTable := ralloc.LoadPptr(s.H, s.htStorage+htTable)
	oldPower := s.H.Load64(s.htStorage + htHashPower)
	ralloc.AtomicStorePptr(s.H, s.htStorage+htOldTable, oldTable)
	s.H.AtomicStore64(s.htStorage+htOldPower, oldPower)
	s.H.AtomicStore64(s.htStorage+htExpandCursor, 0)
	ralloc.AtomicStorePptr(s.H, s.htStorage+htTable, newTable)
	s.H.AtomicStore64(s.htStorage+htHashPower, uint64(newPower))
	fpExpandStartLocked.Maybe()
	for li := uint64(0); li < s.numItemLocks; li++ {
		s.H.SeqWriteEnd(s.seqLocks + li*8)
	}
	for li := uint64(0); li < s.numItemLocks; li++ {
		c.unlock(s.itemLocks + li*8)
	}
	return nil
}

// ExpandStep migrates up to n old-table buckets and returns how many it
// moved; 0 means the expansion is complete (or none is running). Clients
// keep operating throughout.
func (s *Store) ExpandStep(c *Ctx, n int) (int, error) {
	c.enterOp()
	defer c.exitOp()
	if !s.Expanding() {
		return 0, nil
	}
	oldSize := uint64(1) << s.H.Load64(s.htStorage+htOldPower)
	moved := 0
	for moved < n {
		b := s.H.AtomicLoad64(s.htStorage + htExpandCursor)
		if b >= oldSize {
			break
		}
		lock := s.itemLocks + (b&(s.numItemLocks-1))*8
		c.lock(lock)
		// Readers already fall back for the whole expansion, but the
		// stripe seqlock is bumped anyway (defense in depth) and the
		// splices touch live items, so the stores are atomic. The stripe
		// divides both table sizes, so one seqlock covers bucket b's old
		// and new homes.
		seq := s.seqLocks + (b&(s.numItemLocks-1))*8
		s.H.SeqWriteBegin(seq)
		newT, newMask, oldT, _, _, _ := s.tables()
		it := loadChainHead(s, oldT+b*8)
		for it != 0 {
			next := loadChainNext(s, it)
			h := s.itemHash(it)
			bucket := newT + (h&newMask)*8
			ralloc.AtomicStorePptr(s.H, it+itHNext, ralloc.LoadPptr(s.H, bucket))
			ralloc.AtomicStorePptr(s.H, bucket, it)
			fpExpandStepMid.Maybe()
			it = next
		}
		ralloc.AtomicStorePptr(s.H, oldT+b*8, 0)
		// Advance the cursor before releasing the lock: anyone who takes
		// this lock next routes bucket b to the new table.
		s.H.AtomicStore64(s.htStorage+htExpandCursor, b+1)
		s.H.SeqWriteEnd(seq)
		c.unlock(lock)
		moved++
	}
	if s.H.AtomicLoad64(s.htStorage+htExpandCursor) >= oldSize {
		if err := s.finishExpand(c); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// finishExpand retires the fully drained old table.
func (s *Store) finishExpand(c *Ctx) error {
	for li := uint64(0); li < s.numItemLocks; li++ {
		c.lock(s.itemLocks + li*8)
	}
	oldT := ralloc.LoadPptr(s.H, s.htStorage+htOldTable)
	ralloc.AtomicStorePptr(s.H, s.htStorage+htOldTable, 0)
	s.H.AtomicStore64(s.htStorage+htOldPower, 0)
	s.H.AtomicStore64(s.htStorage+htExpandCursor, 0)
	for li := uint64(0); li < s.numItemLocks; li++ {
		c.unlock(s.itemLocks + li*8)
	}
	if oldT != 0 {
		// A reader that sampled htTable before StartExpand could in
		// principle still be standing on the retired array; retire it
		// through the grave so it stays intact until every announced
		// read section has drained.
		c.gravePush(oldT)
	}
	return nil
}

// forEachBucketLocked invokes fn for every bucket word currently owned by
// lock stripe index li, covering both tables during an expansion. Caller
// holds that item lock.
func (s *Store) forEachBucketLocked(li uint64, fn func(bucket uint64)) {
	newT, newMask, oldT, oldMask, cursor, expanding := s.tables()
	for b := li; b <= newMask; b += s.numItemLocks {
		fn(newT + b*8)
	}
	if expanding {
		start := li
		// First unmigrated bucket congruent to li.
		if start < cursor {
			start += (cursor - start + s.numItemLocks - 1) / s.numItemLocks * s.numItemLocks
		}
		for b := start; b <= oldMask; b += s.numItemLocks {
			fn(oldT + b*8)
		}
	}
}
