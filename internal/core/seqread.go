package core

import "plibmc/internal/ralloc"

// The lock-free read path.
//
// Get is 95% of the paper's headline workloads, yet the baseline design
// serializes every Get on a heap-resident bucket spinlock. Once the
// domain-switch cost is driven to near zero, that residual synchronization
// is the dominant scaling cost — so reads become optimistic: walk the
// bucket chain with no lock, copy the value into library-private scratch,
// and validate against the stripe's seqlock that no writer overlapped.
// Writers bump the seqlock to odd before mutating a chain or rewriting a
// value in place and back to even after (they already hold the item lock
// for mutual exclusion among themselves, so bumps never race).
//
// The protocol, per attempt:
//
//  1. sample the stripe seqlock; odd → a writer is active, retry;
//  2. announce a read section in this Ctx's reader slot (see grave.go) so
//     no quarantined item can be freed under us;
//  3. walk the chain with atomic pointer loads, compare keys;
//  4. pin a match with increfIfLive — the only shared-state write a
//     reader ever performs, and one that refuses dead items;
//  5. copy value, flags and CAS into private scratch with relaxed loads;
//  6. re-validate the seqlock. Unchanged ⇒ the snapshot is consistent:
//     return it (a clean full walk with no match is likewise a validated
//     miss). Changed ⇒ discard everything and retry.
//
// After optMaxAttempts failed validations — or whenever the lookup needs
// a write the reader must not perform (lazy expiry, an LRU bump that is
// due, routing during a table expansion) — the operation falls back to
// the locked path, which remains the correctness baseline.
//
// The §3.4 crash-safety discipline is preserved: validation happens after
// the copy into library-private memory, client-visible memory is touched
// only after the section closes, and a reader that loses every race has
// written nothing but a refcount it promptly returns.

const (
	// optMaxAttempts bounds validation retries before falling back to the
	// locked path, so a write-hot stripe cannot starve a reader.
	optMaxAttempts = 3
	// optMaxChain bounds a chain walk. A torn walk can splice across
	// buckets mid-resize and form transient cycles; the bound turns those
	// into ordinary retries.
	optMaxChain = 4096
)

// Outcomes of one optimistic probe.
const (
	optOK       = iota // consistent hit (value copied) or consistent miss
	optRetry           // torn walk or dead item: retry, then fall back
	optFallback        // needs a write (expiry, LRU bump): locked path now
)

// optGet attempts the lock-free lookup of key (already captured; hash
// precomputed). ok=false means the caller must run the locked path. On
// ok=true, found distinguishes a validated hit — value in c.valBuf[:vlen]
// — from a validated miss.
func (c *Ctx) optGet(key []byte, hash uint64) (flags uint32, cas uint64, vlen uint64, found, ok bool) {
	if c.rdSlot == 0 || c.DisableOptimisticReads {
		return 0, 0, 0, false, false
	}
	s := c.s
	h := s.H
	size := h.Size()
	seqOff := s.seqOff(hash)
	inject := c.forceSeqRetries
	for attempt := 0; attempt < optMaxAttempts; attempt++ {
		s0 := h.SeqRead(seqOff)
		if s0&1 != 0 {
			c.stat(statSeqRetries, 1)
			continue
		}
		if ralloc.AtomicLoadPptr(h, s.htStorage+htOldTable) != 0 {
			// Expansion in progress: per-key routing between the two
			// tables belongs under the item lock.
			return 0, 0, 0, false, false
		}
		tbl := ralloc.AtomicLoadPptr(h, s.htStorage+htTable)
		power := h.RelaxedLoad64(s.htStorage + htHashPower)
		if tbl == 0 || power > 30 {
			c.stat(statSeqRetries, 1)
			continue
		}
		bucket := tbl + (hash&((uint64(1)<<power)-1))*8
		if bucket%8 != 0 || bucket+8 > size {
			c.stat(statSeqRetries, 1)
			continue
		}

		if !c.beginRead() {
			if c.rdSlot == 0 {
				return 0, 0, 0, false, false // slot lost: locked path
			}
			c.stat(statSeqRetries, 1)
			continue
		}
		var pinned uint64
		var state int
		flags, cas, vlen, found, pinned, state = c.optProbe(key, bucket, size)
		valid := state == optOK && h.SeqValidate(seqOff, s0)
		if inject > 0 {
			inject--
			valid = false
		}
		// Close the section before dropping the pin: decref may push to
		// the grave and reap, and a reaper must never wait on its own
		// announced section.
		c.endRead()
		if pinned != 0 {
			c.decref(pinned)
		}
		if state == optFallback {
			return 0, 0, 0, false, false
		}
		if valid {
			return flags, cas, vlen, found, true
		}
		c.stat(statSeqRetries, 1)
	}
	return 0, 0, 0, false, false
}

// optProbe performs one unlocked walk-pin-copy inside an announced read
// section. Every offset is bounds-checked before use: a torn walk may hand
// us stale chain pointers, and the probe must fail by retrying, never by
// faulting. It returns the item it pinned (0 if none) for the caller to
// release outside the section.
func (c *Ctx) optProbe(key []byte, bucket, size uint64) (flags uint32, cas uint64, vlen uint64, found bool, pinned uint64, state int) {
	s := c.s
	h := s.H
	it := ralloc.AtomicLoadPptr(h, bucket)
	for steps := 0; it != 0; steps++ {
		if steps >= optMaxChain || it%8 != 0 || it+itHeader > size {
			return 0, 0, 0, false, 0, optRetry
		}
		klen := uint64(h.RelaxedLoad32(it + itKeyLen))
		if klen == uint64(len(key)) && it+itHeader+klen <= size && h.EqualBytes(it+itHeader, key) {
			break
		}
		it = ralloc.AtomicLoadPptr(h, it+itHNext)
	}
	if it == 0 {
		return 0, 0, 0, false, 0, optOK // a full clean walk: validated miss
	}
	if !s.increfIfLive(it) {
		return 0, 0, 0, false, 0, optRetry // dying item; chains have moved on
	}
	// Pinned: the memory cannot be freed or recycled under us. Key bytes,
	// keyLen, valLen and flags are immutable after publication; casID and
	// the value are seq-validated; exptime and lastAccess are advisory.
	if !c.verifyItem(it) {
		return 0, 0, 0, false, it, optFallback // locked path quarantines it
	}
	now := c.now()
	if e := h.RelaxedLoad32(it + itExptime); e != 0 && int64(e) <= now {
		return 0, 0, 0, false, it, optFallback // lazy expiry unlinks under the lock
	}
	if uint64(now)-h.RelaxedLoad64(it+itLastAccess) >= lruBumpInterval {
		return 0, 0, 0, false, it, optFallback // the LRU bump is a write
	}
	vlen = uint64(h.RelaxedLoad32(it + itValLen))
	voff := it + itHeader + (uint64(len(key))+7)&^uint64(7)
	if vlen > MaxValueLen || voff > size || voff+vlen > size {
		return 0, 0, 0, false, it, optRetry
	}
	h.AtomicReadBytes(voff, grow(&c.valBuf, vlen))
	flags = h.RelaxedLoad32(it + itFlags)
	cas = h.RelaxedLoad64(it + itCASID)
	return flags, cas, vlen, true, it, optOK
}
