package core

import "plibmc/internal/ralloc"

// LRU introspection: list lengths expose whether the hash-partitioning of
// the LRU (the paper's fix for single-list contention) is balanced. Used
// by cmd/plibdump and tests.

// LRULengths returns the number of items on each LRU list. Lists are
// locked one at a time, so the snapshot is per-list consistent.
func (c *Ctx) LRULengths() []int {
	c.enterOp()
	defer c.exitOp()
	s := c.s
	out := make([]int, s.numLRUs)
	for idx := uint64(0); idx < s.numLRUs; idx++ {
		c.lock(s.lruLockOff(idx))
		n := 0
		for it := ralloc.LoadPptr(s.H, s.lruHeadOff(idx)); it != 0; it = ralloc.LoadPptr(s.H, it+itLRUNext) {
			n++
		}
		out[idx] = n
		c.unlock(s.lruLockOff(idx))
	}
	return out
}

// NumLRUs returns how many LRU lists the store uses.
func (s *Store) NumLRUs() uint64 { return s.numLRUs }
