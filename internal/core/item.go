package core

import (
	"plibmc/internal/ralloc"
)

// Item layout in the shared heap. All pointer fields are pptrs; scalar
// fields are word- or half-word sized. The key is padded to a word boundary
// so the value is word-aligned (fast byte copies).
//
//	+0   hNext      pptr   hash-chain successor
//	+8   lruNext    pptr   LRU successor (toward tail)
//	+16  lruPrev    pptr   LRU predecessor (toward head)
//	+24  refcount   u64    atomic; 1 reference held by the table link
//	+32  casID      u64    compare-and-swap generation
//	+40  exptime    u32    absolute expiry (unix secs; 0 = never)
//	+44  flags      u32    client-supplied opaque flags
//	+48  keyLen     u32
//	+52  valLen     u32
//	+56  lastAccess u64    unix secs of last use (LRU bump threshold)
//	+64  itflags    u64    atomic; bit 0 = linked
//	+72  hash       u64    key hash, fixed at allocation (evictors and
//	                       sweepers unlink without re-reading the key)
//	+80  check      u64    header checksum over the immutable fields
//	                       (hash, keyLen, valLen, flags), fixed at
//	                       allocation; read paths verify it before trusting
//	                       the geometry fields
//	+88  valSum     u64    value checksum (hashKey over the value bytes);
//	                       maintained by in-place rewrites, verified by the
//	                       scrubber and by repair — not on the read path
//	+96  key bytes, padded to 8, then value bytes
const (
	itHNext      = 0
	itLRUNext    = 8
	itLRUPrev    = 16
	itRefcount   = 24
	itCASID      = 32
	itExptime    = 40
	itFlags      = 44
	itKeyLen     = 48
	itValLen     = 52
	itLastAccess = 56
	itItflags    = 64
	itHash       = 72
	itCheck      = 80
	itValSum     = 88
	itHeader     = 96
)

// mix64 is the murmur3 finalizer: a cheap avalanche so that any single-bit
// difference in a checksum input flips about half the output bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// itemCheckOf computes the header checksum binding an item's immutable
// fields together. Two sequential mixes so a coordinated corruption of two
// fields cannot cancel in a pre-mix XOR.
func itemCheckOf(hash uint64, klen, vlen, flags uint32) uint64 {
	return mix64(mix64(hash^(uint64(klen)<<32|uint64(vlen))) ^ uint64(flags))
}

// itemCheckValid recomputes and compares an item's header checksum with
// relaxed loads (all four covered fields are immutable after publication,
// so torn reads are not a concern — only corrupted memory is).
func (s *Store) itemCheckValid(it uint64) bool {
	h := s.H
	return itemCheckOf(
		h.RelaxedLoad64(it+itHash),
		h.RelaxedLoad32(it+itKeyLen),
		h.RelaxedLoad32(it+itValLen),
		h.RelaxedLoad32(it+itFlags),
	) == h.RelaxedLoad64(it+itCheck)
}

// verifyItem is the read-path form of itemCheckValid. DisableReadVerify is
// the ablation toggle for BenchmarkAblationChecksum; the scrubber and
// repair verify regardless.
func (c *Ctx) verifyItem(it uint64) bool {
	return c.DisableReadVerify || c.s.itemCheckValid(it)
}

const itflagLinked = uint64(1)

// itemSize returns the allocation size for a key/value pair.
func itemSize(keyLen, valLen uint64) uint64 {
	return itHeader + (keyLen+7)&^uint64(7) + valLen
}

func (s *Store) itemKeyOff(it uint64) uint64 { return it + itHeader }

func (s *Store) itemValOff(it uint64) uint64 {
	kl := uint64(s.H.Load32(it + itKeyLen))
	return it + itHeader + (kl+7)&^uint64(7)
}

func (s *Store) itemKeyLen(it uint64) uint64 { return uint64(s.H.Load32(it + itKeyLen)) }
func (s *Store) itemValLen(it uint64) uint64 { return uint64(s.H.Load32(it + itValLen)) }

// keyEqual reports whether the item's key equals key, without allocating.
func (s *Store) keyEqual(it uint64, key []byte) bool {
	if s.itemKeyLen(it) != uint64(len(key)) {
		return false
	}
	return s.H.EqualBytes(s.itemKeyOff(it), key)
}

// newItem allocates and fills an item from library-private buffers. The
// caller provides key and value that have already been captured from the
// client (§3.4 idiom) along with the key's hash; no locks are held during
// allocation, except on the replace-in-place paths that pass
// canEvict=false. All stores here are plain: the item is private until
// linkLocked publishes it through an atomic bucket store, and the grave
// guarantees no optimistic reader can still be probing recycled memory.
func (c *Ctx) newItem(key, value []byte, hash uint64, flags uint32, exptime int64, canEvict bool) (uint64, error) {
	size := itemSize(uint64(len(key)), uint64(len(value)))
	it, err := c.allocWithEvict(size, canEvict)
	if err != nil {
		return 0, err
	}
	h := c.s.H
	ralloc.StorePptr(h, it+itHNext, 0)
	ralloc.StorePptr(h, it+itLRUNext, 0)
	ralloc.StorePptr(h, it+itLRUPrev, 0)
	h.Store64(it+itRefcount, 1) // the link reference
	h.Store64(it+itCASID, c.s.nextCAS())
	h.Store32(it+itExptime, uint32(exptime))
	h.Store32(it+itFlags, flags)
	h.Store32(it+itKeyLen, uint32(len(key)))
	h.Store32(it+itValLen, uint32(len(value)))
	h.Store64(it+itLastAccess, uint64(c.now()))
	h.Store64(it+itItflags, 0)
	h.Store64(it+itHash, hash)
	h.Store64(it+itCheck, itemCheckOf(hash, uint32(len(key)), uint32(len(value)), flags))
	h.Store64(it+itValSum, hashKey(value))
	h.WriteBytes(it+itHeader, key)
	h.WriteBytes(c.s.itemValOff(it), value)
	return it, nil
}

// itemHash reads the hash stored at allocation time.
func (s *Store) itemHash(it uint64) uint64 { return s.H.Load64(it + itHash) }

// incref pins an item the caller already knows is live (it holds the item
// lock, or another reference).
func (s *Store) incref(it uint64) { s.H.Add64(it+itRefcount, 1) }

// increfIfLive pins an item only if it still has references — the lock-free
// reader's pin. An item in the grave has refcount zero; the CAS loop
// refuses it without ever writing, so a stale chain pointer can never
// resurrect a dead item or scribble on quarantined memory.
func (s *Store) increfIfLive(it uint64) bool {
	for {
		r := s.H.AtomicLoad64(it + itRefcount)
		if r == 0 {
			return false
		}
		if s.H.CAS64(it+itRefcount, r, r+1) {
			return true
		}
	}
}

// decref unpins an item. When the last reference drops the item is
// quarantined on the grave list rather than freed, so that a concurrent
// optimistic reader holding a stale chain pointer still finds intact,
// type-stable memory; reapGrave frees quarantined items once every
// announced read section has been waited out.
func (c *Ctx) decref(it uint64) {
	if c.s.H.Add64(it+itRefcount, ^uint64(0)) == 0 {
		// The item is unreachable: not linked, not pinned.
		c.gravePush(it)
	}
}

func (s *Store) isLinked(it uint64) bool {
	return s.H.AtomicLoad64(it+itItflags)&itflagLinked != 0
}

func (s *Store) setLinked(it uint64, linked bool) {
	f := s.H.AtomicLoad64(it + itItflags)
	if linked {
		f |= itflagLinked
	} else {
		f &^= itflagLinked
	}
	s.H.AtomicStore64(it+itItflags, f)
}

// expired reports whether the item is past its expiry at time now.
func (s *Store) expired(it uint64, now int64) bool {
	e := s.H.Load32(it + itExptime)
	return e != 0 && int64(e) <= now
}

// allocWithEvict allocates from the thread cache, evicting LRU victims and
// retrying on memory exhaustion — the role of memcached's item_alloc loop.
// canEvict must be false when the caller holds an item lock (eviction
// acquires other item locks only by trylock, but blocking inline eviction
// is reserved for unlocked paths).
func (c *Ctx) allocWithEvict(size uint64, canEvict bool) (uint64, error) {
	for attempt := 0; ; attempt++ {
		// Honour the memory limit (-m): evict before exceeding the
		// watermark, not only when the heap itself is exhausted.
		if canEvict && c.s.A.LiveBytes()+size > c.s.memLimit {
			// Quarantined items still count as live allocation; reclaim
			// them before evicting anything actually in use.
			if c.s.GraveLen() > 0 && c.reapGrave() > 0 {
				continue
			}
			if attempt >= 200 || c.evictSome(8) == 0 && c.s.A.LiveBytes()+size > c.s.memLimit {
				return 0, ErrNoSpace
			}
			continue
		}
		off, err := c.cache.Malloc(size)
		if err == nil {
			return off, nil
		}
		// The quarantine may hold exactly the space we need.
		if c.s.GraveLen() > 0 && c.reapGrave() > 0 {
			if off, err = c.cache.Malloc(size); err == nil {
				return off, nil
			}
		}
		if !canEvict || attempt >= 50 {
			if !canEvict {
				// One best-effort trylock-only eviction pass.
				if c.evictSome(8) > 0 {
					if off, err2 := c.cache.Malloc(size); err2 == nil {
						return off, nil
					}
				}
			}
			return 0, ErrNoSpace
		}
		if c.evictSome(8) == 0 {
			return 0, ErrNoSpace
		}
	}
}
