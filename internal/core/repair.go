package core

import (
	"fmt"

	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

// Online crash repair.
//
// A client thread that dies inside a library call can leave the store in
// any intermediate state its operation passes through: bucket locks held,
// stripe seqlocks odd, an item unlinked from the table but still on an
// LRU list, a half-migrated hash-table expansion, reader epochs announced
// and never retired. Instead of declaring the store permanently poisoned,
// the repair coordinator (memcached.Bookkeeper) quarantines the store and
// drives the passes in this file:
//
//  1. RetireDeadReaders / ForceReleaseDeadLocks break the dead threads'
//     announcements and locks, identified by the owner tokens every lock
//     word and reader slot records;
//  2. once every live call has drained, RepairGate clears the operation
//     gate of counts the dead threads will never release;
//  3. Repair rebuilds the structures wholesale: items are harvested from
//     the (possibly torn) bucket chains of both tables with strict
//     validation, orphans and the quarantine list are freed, any
//     in-flight expansion is aborted, and the hash table, LRU lists and
//     item-count statistics are reconstructed from the survivors.
//
// Everything here assumes the caller has exclusive access to the store:
// no live thread is executing an operation and none can start one.

// SetOwnerLiveness installs the oracle that maps a lock-owner token to
// whether its thread can still execute library code. The oracle must be
// precise in one direction: it may only report an owner dead when that
// thread can never again touch the heap (its process was killed and the
// run-to-completion window has closed). Reporting a live thread dead
// breaks the locking protocol; reporting a dead thread alive merely
// delays reclamation. Install before the store serves concurrent
// operations; with no oracle installed nothing is ever presumed dead.
func (s *Store) SetOwnerLiveness(alive func(owner uint64) bool) { s.aliveFn.Store(&alive) }

// ownerIsDead consults the installed liveness oracle.
func (s *Store) ownerIsDead(owner uint64) bool {
	fn := s.aliveFn.Load()
	return owner != 0 && fn != nil && !(*fn)(owner)
}

// RetireDeadReaders expires the optimistic-reader announcements of dead
// owners: any odd epoch is bumped to even (a dead reader cannot be inside
// a section) and the slot is released for reuse. Returns the number of
// slots retired.
func (s *Store) RetireDeadReaders(dead func(owner uint64) bool) int {
	n := 0
	for i := uint64(0); i < s.numReaders; i++ {
		slot := s.readerSlotOff(i)
		owner := s.H.AtomicLoad64(slot + readerSlotOwner)
		if owner == 0 || !dead(owner) {
			continue
		}
		if e := s.H.AtomicLoad64(slot + readerSlotEpoch); e&1 != 0 {
			s.H.CAS64(slot+readerSlotEpoch, e, e+1)
		}
		if s.H.CAS64(slot+readerSlotOwner, owner, 0) {
			n++
		}
	}
	return n
}

// ForceReleaseDeadLocks breaks every heap-resident lock whose recorded
// owner the oracle reports dead: bucket locks, LRU locks, and the stats
// lock. The release is a CAS against the observed owner, so a lock that
// was meanwhile released and re-acquired by a live thread is untouched.
// Returns the number of locks broken.
func (s *Store) ForceReleaseDeadLocks(dead func(owner uint64) bool) int {
	n := 0
	release := func(off uint64) {
		owner := s.H.LockHolder(off)
		if owner != 0 && dead(owner) && s.H.CAS64(off, owner, 0) {
			n++
		}
	}
	for i := uint64(0); i < s.numItemLocks; i++ {
		release(s.itemLocks + i*shm.LockWordSize)
	}
	for i := uint64(0); i < s.numLRUs; i++ {
		release(s.lruLocks + i*shm.LockWordSize)
	}
	release(s.cfg + cfgStatsLock)
	return n
}

// HeldLock describes one held heap-resident lock (post-mortem triage and
// the plibdump -locks view).
type HeldLock struct {
	Kind  string // "item", "lru", or "stats"
	Index uint64 // stripe / list index within its array
	Owner uint64 // owner token: PID<<20 | TID+1
}

// HeldLocks enumerates every currently held store lock with its recorded
// owner token.
func (s *Store) HeldLocks() []HeldLock {
	var held []HeldLock
	for i := uint64(0); i < s.numItemLocks; i++ {
		if o := s.H.LockHolder(s.itemLocks + i*shm.LockWordSize); o != 0 {
			held = append(held, HeldLock{Kind: "item", Index: i, Owner: o})
		}
	}
	for i := uint64(0); i < s.numLRUs; i++ {
		if o := s.H.LockHolder(s.lruLocks + i*shm.LockWordSize); o != 0 {
			held = append(held, HeldLock{Kind: "lru", Index: i, Owner: o})
		}
	}
	if o := s.H.LockHolder(s.cfg + cfgStatsLock); o != 0 {
		held = append(held, HeldLock{Kind: "stats", Index: 0, Owner: o})
	}
	return held
}

// InFlightOps reads the operation gate: the number of operations counted
// in flight and whether a checkpoint barrier is raised.
func (s *Store) InFlightOps() (count uint64, barrier bool) {
	g := s.H.AtomicLoad64(s.cfg + cfgGate)
	return g & gateCountMask, g&gateBarrier != 0
}

// RepairGate clears the operation gate's count and barrier and bumps its
// generation. After a crash the gate can hold counts entered by threads
// that died before their exitOp (the watchdog gave up on them mid-call);
// with every live call drained those counts are unreclaimable and would
// stall the next Quiesce forever. The generation bump makes any zombie's
// late exitOp a no-op (see gate.go), so the cleared count cannot be
// decremented on behalf of operations that no longer exist. Unlike
// ResetGate this touches only the gate word, never the reader slots of
// live contexts. Call only from a repair pass that has drained live calls.
func (s *Store) RepairGate() {
	gate := s.cfg + cfgGate
	for {
		g := s.H.AtomicLoad64(gate)
		next := (g + uint64(1)<<gateGenShift) & gateGenMask
		if s.H.CAS64(gate, g, next) {
			return
		}
	}
}

// RepairReport summarizes one structural repair pass.
type RepairReport struct {
	LocksBroken     int  // dead-owner locks force-released by the coordinator
	ReadersRetired  int  // dead-owner reader slots expired
	SeqlocksCleared int  // stripe seqlocks left odd by a dead writer
	ExpandAborted   bool // an in-flight table expansion was discarded
	ItemsKept       int  // items harvested and re-linked
	ItemsDropped    int  // orphaned/torn items freed during repair
	GraveFreed      int  // quarantined blocks freed
	BytesKept       uint64
	// HistogramsRepaired counts latency histograms whose total/Σcounts
	// invariant was torn by a thread that died mid-record.
	HistogramsRepaired int
	// ValueSumsRestamped counts kept items whose value checksum did not
	// match their bytes — the signature of a thread that died inside an
	// in-place value rewrite. Repair trusts the (seqlock-protected) bytes
	// and re-stamps the checksum; media corruption, by contrast, is caught
	// by the scrubber while the checksum is intact.
	ValueSumsRestamped int
}

// maxRepairChain bounds every chain walk during repair: a torn or
// cross-linked chain must not put the repairer into an unbounded loop.
const maxRepairChain = 1 << 16

// validItem reports whether it plausibly points at a live, intact item:
// the offset must be the base of a live allocator block large enough for
// the declared key/value, the refcount must be nonzero (quarantined items
// are not live), and the stored hash must match a recomputation from the
// stored key — which makes a stale or torn pointer into recycled memory
// overwhelmingly likely to be rejected.
func (c *Ctx) validItem(it uint64) bool {
	s := c.s
	if it == 0 || it&7 != 0 {
		return false
	}
	blk := s.A.BlockAt(it)
	if blk < itHeader {
		return false
	}
	klen := uint64(s.H.Load32(it + itKeyLen))
	vlen := uint64(s.H.Load32(it + itValLen))
	if klen == 0 || klen > MaxKeyLen || vlen > MaxValueLen {
		return false
	}
	if itemSize(klen, vlen) > blk {
		return false
	}
	if rc := s.H.AtomicLoad64(it + itRefcount); rc == 0 || rc > 1<<32 {
		return false
	}
	if s.H.Load64(it+itCheck) != itemCheckOf(s.H.Load64(it+itHash), uint32(klen), uint32(vlen), s.H.Load32(it+itFlags)) {
		return false
	}
	key := grow(&c.keyBuf, klen)
	s.H.ReadBytes(it+itHeader, key)
	return hashKey(key) == s.H.Load64(it+itHash)
}

// Repair rebuilds the store's structures from whatever survived a crash.
// The caller must have exclusive access: dead locks broken, live calls
// drained, gate cleared. The context is only used for its allocator cache
// and scratch buffers.
//
// Survivors are harvested from the bucket chains of both tables (walks
// stop at the first implausible pointer, so a torn chain contributes its
// intact prefix); items found only on LRU lists are orphans of a crashed
// unlink and are freed, as is the whole quarantine list. Any in-flight
// expansion is abandoned and the harvest is re-linked into the current
// table. LRU recency order does not survive — lists are rebuilt in
// harvest order — and per-item pins do not survive: every kept item
// restarts at refcount 1 (the link reference), which is correct because
// no live thread holds a pin across operations.
func (s *Store) Repair(c *Ctx) (RepairReport, error) {
	var r RepairReport
	h := s.H

	// 1. A writer that died inside a seqlock write section left the
	// stripe odd, which would make every future optimistic read spin and
	// fail; with no writer alive, bump each odd word to even.
	for li := uint64(0); li < s.numItemLocks; li++ {
		seq := s.seqLocks + li*8
		if v := h.AtomicLoad64(seq); v&1 != 0 {
			h.AtomicStore64(seq, v+1)
			r.SeqlocksCleared++
		}
	}

	// 2. Harvest surviving items from every chain of both tables.
	newT, newMask, oldT, oldMask, _, expanding := s.tables()
	if s.A.BlockAt(newT) == 0 {
		return r, fmt.Errorf("core: repair: hash table pointer %#x is not a live block", newT)
	}
	kept := make(map[uint64]bool)
	keptKeys := make(map[string]bool)
	var order []uint64
	harvest := func(table, mask uint64) {
		for b := uint64(0); b <= mask; b++ {
			it := loadChainHead(s, table+b*8)
			for steps := 0; it != 0 && steps < maxRepairChain; steps++ {
				if !c.validItem(it) {
					break // torn link: keep the intact prefix
				}
				if kept[it] {
					break // chains cross-linked by a torn expansion
				}
				// A crash inside swapLocked's write section can leave both
				// the replacement and the replaced item chained. Writers
				// publish at the head, so the first copy of a key the walk
				// meets is the newest; shadowed duplicates must not be
				// resurrected (the old item would come back under its old
				// CAS generation). They are freed by the LRU-orphan pass
				// below, which they still sit on.
				klen := uint64(s.H.Load32(it + itKeyLen))
				kb := grow(&c.keyBuf, klen)
				h.ReadBytes(it+itHeader, kb)
				k := string(kb)
				if keptKeys[k] {
					it = loadChainNext(s, it)
					continue
				}
				kept[it] = true
				keptKeys[k] = true
				order = append(order, it)
				it = loadChainNext(s, it)
			}
		}
	}
	harvest(newT, newMask)
	if expanding {
		harvest(oldT, oldMask)
	}

	// 3. Items reachable only from an LRU list are orphans of a crashed
	// unlink (out of the table, reference never dropped): free them.
	freed := make(map[uint64]bool)
	for idx := uint64(0); idx < s.numLRUs; idx++ {
		it := ralloc.LoadPptr(h, s.lruHeadOff(idx))
		for steps := 0; it != 0 && steps < maxRepairChain; steps++ {
			if freed[it] || !c.validItem(it) {
				break
			}
			next := ralloc.LoadPptr(h, it+itLRUNext)
			if !kept[it] {
				freed[it] = true
				if err := c.cache.Free(it); err != nil {
					return r, fmt.Errorf("core: repair: freeing LRU orphan %#x: %w", it, err)
				}
				r.ItemsDropped++
			}
			it = next
		}
	}

	// 4. Free the quarantine outright: with no live reader (sections of
	// dead readers were expired) nothing can hold a stale reference.
	grave := h.Swap64(s.cfg+cfgGraveHead, 0)
	for it := grave; it != 0; {
		if s.A.BlockAt(it) == 0 {
			break // torn grave link: the rest of the list leaks
		}
		next := h.AtomicLoad64(it + graveNext)
		if err := c.cache.Free(it); err != nil {
			break
		}
		r.GraveFreed++
		it = next
	}
	h.AtomicStore64(s.cfg+cfgGraveLen, 0)

	// 5. Abandon any in-flight expansion; the harvest is re-linked into
	// the current (larger) table, so the old array is just garbage now.
	if expanding {
		ralloc.AtomicStorePptr(h, s.htStorage+htOldTable, 0)
		h.AtomicStore64(s.htStorage+htOldPower, 0)
		h.AtomicStore64(s.htStorage+htExpandCursor, 0)
		if s.A.BlockAt(oldT) != 0 {
			_ = c.cache.Free(oldT)
		}
		r.ExpandAborted = true
	}

	// 6. Rebuild the table and LRU lists wholesale from the harvest.
	h.Zero(newT, (newMask+1)*8)
	h.Zero(s.lruData, s.numLRUs*16)
	for _, it := range order {
		hash := s.itemHash(it)
		bucket := newT + (hash&newMask)*8
		ralloc.StorePptr(h, it+itHNext, ralloc.LoadPptr(h, bucket))
		ralloc.StorePptr(h, bucket, it)
		h.Store64(it+itRefcount, 1) // exactly the link reference
		s.setLinked(it, true)
		s.lruInsertHead(s.lruFor(hash), it)
		vlen := s.itemValLen(it)
		val := grow(&c.valBuf, vlen)
		h.ReadBytes(s.itemValOff(it), val)
		if sum := hashKey(val); sum != h.Load64(it+itValSum) {
			h.Store64(it+itValSum, sum)
			r.ValueSumsRestamped++
		}
		r.ItemsKept++
		r.BytesKept += s.A.SizeOf(it)
	}

	// 7. Re-validate the latency-histogram matrix and mend any histogram a
	// dead thread tore mid-record, before the statistics below are trusted.
	var err error
	if r.HistogramsRepaired, err = s.repairLatency(); err != nil {
		return r, err
	}

	// 8. Rebuild the scattered item statistics from the survivors: zero
	// the distributed CurrItems/Bytes deltas everywhere, then write the
	// recomputed totals into slot 0.
	for slot := uint64(0); slot < s.statSlots; slot++ {
		base := s.stats + slot*statSlotSize
		h.Store64(base+statCurrItems*8, 0)
		h.Store64(base+statBytes*8, 0)
	}
	h.Store64(s.stats+statCurrItems*8, uint64(r.ItemsKept))
	h.Store64(s.stats+statBytes*8, r.BytesKept)
	c.stat(statRepairDropped, int64(r.ItemsDropped))
	c.stat(statRecoveries, 1)

	return r, nil
}
