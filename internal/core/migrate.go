package core

// Migration primitives (live resharding). A segment migrator streams
// entries between two protected-library stores: ExportAppend reads an
// entry off the source without disturbing its LRU position and carries
// the absolute expiry along, Install writes it into the destination
// preserving the source's CAS generation verbatim. Because each shard
// seeds its CAS counter into a disjoint space (shard index in the high
// bits), a migrated entry's CAS stays globally unique and client CAS
// tokens taken before the move keep validating after it.

// ExportAppend retrieves key for migration, appending the value to dst:
// a locked read that skips the LRU bump (copying a segment must not
// rejuvenate its entries on the shard they are leaving) and returns the
// entry's absolute expiry so the destination can store it verbatim.
func (c *Ctx) ExportAppend(dst, key []byte) ([]byte, uint32, uint64, int64, error) {
	if len(key) > MaxKeyLen {
		return dst, 0, 0, 0, ErrKeyTooLong
	}
	defer c.opEnd(LatGet, c.opBegin())
	k := c.capture(&c.keyBuf, key)
	hash := hashKey(k)
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	it := c.findLocked(k, hash)
	if it == 0 {
		c.unlock(lock)
		return dst, 0, 0, 0, ErrNotFound
	}
	s.incref(it)
	flags := s.H.Load32(it + itFlags)
	cas := s.H.Load64(it + itCASID)
	exptime := int64(s.H.Load32(it + itExptime))
	vlen := s.itemValLen(it)
	voff := s.itemValOff(it)
	c.unlock(lock)
	prot := grow(&c.valBuf, vlen)
	s.H.AtomicReadBytes(voff, prot)
	c.decref(it)
	return append(dst, prot...), flags, cas, exptime, nil
}

// Install unconditionally stores a migrated entry: exptime is already
// absolute (no relative-cutoff interpretation) and the entry's CAS
// generation is set to cas rather than a fresh one from this store's
// counter. The item is private until linkLocked publishes it, so the
// CAS overwrite after newItem is invisible to concurrent readers.
func (c *Ctx) Install(key, value []byte, flags uint32, exptime int64, cas uint64) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	if len(value) > MaxValueLen {
		return ErrValueTooBig
	}
	defer c.opEnd(LatSet, c.opBegin())
	k := c.capture(&c.keyBuf, key)
	v := c.capture(&c.valBuf, value)
	hash := hashKey(k)
	it, err := c.newItem(k, v, hash, flags, exptime, true)
	if err != nil {
		return err
	}
	s := c.s
	s.H.Store64(it+itCASID, cas)
	lock := s.itemLockOff(hash)
	c.lock(lock)
	old := c.findLocked(k, hash)
	if old != 0 {
		c.swapLocked(old, it, hash)
	} else {
		c.linkLocked(it, hash)
	}
	c.unlock(lock)
	return nil
}
