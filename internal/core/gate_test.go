package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestQuiesceBlocksAndDrains(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c.Set([]byte("k"), []byte("v"), 0, 0)

	s.Quiesce()
	// While quiesced, an operation from another context must block.
	opDone := make(chan struct{})
	go func() {
		c2 := s.NewCtx(2)
		c2.Set([]byte("k2"), []byte("v2"), 0, 0)
		close(opDone)
	}()
	select {
	case <-opDone:
		t.Fatal("operation ran during quiesce")
	case <-time.After(20 * time.Millisecond):
	}
	s.Unquiesce()
	select {
	case <-opDone:
	case <-time.After(time.Second):
		t.Fatal("operation never resumed after Unquiesce")
	}
	if _, _, _, err := c.Get([]byte("k2")); err != nil {
		t.Fatalf("post-quiesce get: %v", err)
	}
}

func TestQuiesceWaitsForInFlight(t *testing.T) {
	s, _ := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c := s.NewCtx(1)
	// Hold an "operation" open by entering the gate manually.
	c.enterOp()
	quiesced := make(chan struct{})
	go func() {
		s.Quiesce()
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("Quiesce returned while an operation was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	c.exitOp()
	select {
	case <-quiesced:
	case <-time.After(time.Second):
		t.Fatal("Quiesce never completed after drain")
	}
	s.Unquiesce()
}

func TestGateReentrancy(t *testing.T) {
	// An operation that internally triggers eviction (which is also
	// gated code) must not deadlock on the gate. Exercise with a tiny
	// memory limit so Set evicts inline.
	s, c := newStore(t, 1<<21, Options{HashPower: 8, NumItemLocks: 16, MemLimit: 1 << 19, FixedSize: true})
	val := make([]byte, 1024)
	for i := 0; i < 1500; i++ {
		if err := c.Set([]byte(fmt.Sprintf("k%04d", i)), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().Evictions == 0 {
		t.Fatal("expected inline evictions under the gate")
	}
}

func TestConcurrentQuiesceUnderLoad(t *testing.T) {
	s, _ := newStore(t, 1<<23, Options{HashPower: 10, NumItemLocks: 64, FixedSize: true})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.NewCtx(uint64(id + 1))
			defer c.Close()
			i := 0
			for !stop.Load() {
				k := []byte(fmt.Sprintf("w%d-%d", id, i%200))
				c.Set(k, []byte("v"), 0, 0)
				c.Get(k)
				i++
			}
		}(w)
	}
	// Repeated quiesce/unquiesce cycles while clients hammer the store:
	// each quiesced window must observe zero in-flight operations.
	for i := 0; i < 50; i++ {
		s.Quiesce()
		if g := s.H.AtomicLoad64(s.cfg+cfgGate) & gateCountMask; g != 0 {
			s.Unquiesce()
			stop.Store(true)
			wg.Wait()
			t.Fatalf("quiesced with %d operations still in flight", g)
		}
		s.Unquiesce()
	}
	stop.Store(true)
	wg.Wait()
}

func TestMGet(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	for i := 0; i < 10; i += 2 {
		if err := c.Set([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	var keys [][]byte
	for i := 0; i < 10; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%d", i)))
	}
	res := c.MGet(keys)
	if len(res) != 10 {
		t.Fatalf("results = %d", len(res))
	}
	for i, r := range res {
		if i%2 == 0 {
			if !r.Found || string(r.Value) != fmt.Sprintf("v%d", i) || r.Flags != uint32(i) {
				t.Fatalf("result %d = %+v", i, r)
			}
		} else if r.Found {
			t.Fatalf("missing key %d reported found", i)
		}
	}
	// Each returned value must be an independent copy.
	res[0].Value[0] = 'X'
	v, _, _, _ := c.Get([]byte("k0"))
	if string(v) != "v0" {
		t.Fatal("MGet results alias store memory")
	}
	if out := c.MGet(nil); len(out) != 0 {
		t.Fatal("empty MGet")
	}
}
