package core

import (
	"fmt"

	"plibmc/internal/ralloc"
)

// Maintenance: the work of the paper's bookkeeping process, which "remains
// alive as long as its K-V store is in use" and is responsible for
// intermittent cleaning — eviction of less-needed items when space runs low
// — plus, in our implementation, lazy-expiry sweeps and hash-table resizing
// (the paper's resizer "is not yet working correctly"; this one works, and
// FixedSize reproduces the paper's fixed 2^25-bucket evaluation setup).

// MaintReport summarizes one maintenance pass.
type MaintReport struct {
	Evicted   int
	Expired   int
	Resized   bool
	Reclaimed int // chunks returned to the shared pool
	Scrubbed  int // items deep-verified by the corruption scrubber
	Corrupt   int // corruptions the scrubber detected (and contained)
}

// Maintainer drives periodic store upkeep. Create one in the bookkeeping
// process and call RunOnce on an interval.
type Maintainer struct {
	ctx *Ctx
	// EvictBatch bounds evictions per pass.
	EvictBatch int
	// GrowLoadFactor is the items-per-bucket ratio that triggers a resize.
	GrowLoadFactor float64
	// ExpandBatch is how many old-table buckets one maintenance pass
	// migrates during a background expansion.
	ExpandBatch int
	// ScrubStripes is how many lock stripes one maintenance pass
	// deep-verifies (item checksums, hash↔key, value checksums). 0
	// disables scrubbing.
	ScrubStripes int

	scrubCursor uint64
}

// NewMaintainer creates a maintainer whose operations use the given lock
// owner token.
func (s *Store) NewMaintainer(owner uint64) *Maintainer {
	return &Maintainer{
		ctx:            s.NewCtx(owner),
		EvictBatch:     64,
		GrowLoadFactor: 1.5,
		ExpandBatch:    256,
		ScrubStripes:   4,
	}
}

// Ctx exposes the maintainer's operation context (for the daemon's own
// stats queries).
func (m *Maintainer) Ctx() *Ctx { return m.ctx }

// RunOnce performs one maintenance pass: evict down to the cleaning
// watermark (5% below the hard limit, so that client threads rarely have
// to evict inline), sweep the table for expired items, and resize if the
// table is overloaded.
func (m *Maintainer) RunOnce() MaintReport {
	defer m.ctx.opEnd(LatMaint, m.ctx.opBegin())
	var r MaintReport
	s := m.ctx.s
	watermark := s.memLimit - s.memLimit/20
	for s.A.LiveBytes() > watermark {
		n := m.ctx.evictSome(m.EvictBatch)
		r.Evicted += n
		if n == 0 {
			break // nothing evictable
		}
	}
	r.Expired = m.ctx.SweepExpired()
	if m.ScrubStripes > 0 {
		r.Scrubbed, r.Corrupt = m.ctx.ScrubChains(&m.scrubCursor, m.ScrubStripes)
	}
	// Free whatever the quarantine has accumulated; maintenance is the
	// backstop that keeps the grave short on read-mostly workloads that
	// rarely hit the push threshold.
	reaped := m.ctx.reapGrave()
	if r.Evicted+r.Expired > 0 || reaped > 0 {
		// Mass removals may leave whole chunks free; hand them back so
		// other size classes (or large allocations) can use the space.
		r.Reclaimed = s.A.Reclaim()
	}
	if !s.fixedSize {
		if s.Expanding() {
			// Continue the background migration a few buckets at a time.
			if moved, err := s.ExpandStep(m.ctx, m.ExpandBatch); err == nil && moved > 0 {
				r.Resized = true
			}
		} else {
			items := s.Stats().CurrItems
			buckets := uint64(1) << s.HashPower()
			if float64(items) > m.GrowLoadFactor*float64(buckets) {
				if err := s.StartExpand(m.ctx, s.HashPower()+1); err == nil {
					r.Resized = true
				}
			}
		}
	}
	return r
}

// SweepExpired walks the whole table and unlinks expired items, returning
// how many it removed. Expiry is otherwise lazy (on access).
func (c *Ctx) SweepExpired() int {
	c.enterOp()
	defer c.exitOp()
	s := c.s
	now := s.nowFn()
	removed := 0
	for li := uint64(0); li < s.numItemLocks; li++ {
		lock := s.itemLocks + li*8
		c.lock(lock)
		s.forEachBucketLocked(li, func(bucket uint64) {
			it := loadChainHead(s, bucket)
			for it != 0 {
				next := loadChainNext(s, it)
				if s.expired(it, now) {
					c.unlinkLocked(it, s.itemHash(it))
					c.stat(statExpired, 1)
					removed++
				}
				it = next
			}
		})
		c.unlock(lock)
	}
	return removed
}

// ResizeTo rebuilds the primary hash table with 2^newPower buckets. It
// briefly stops the world by holding every item lock, then swaps the table
// through the Fig. 3 storage cell — which is exactly why that cell has its
// extra level of indirection: the table's location changes, the root's
// location does not.
func (s *Store) ResizeTo(c *Ctx, newPower uint) error {
	c.enterOp()
	defer c.exitOp()
	if s.Expanding() {
		return fmt.Errorf("core: cannot stop-the-world resize during a background expansion")
	}
	if uint64(1)<<newPower < s.numItemLocks {
		return fmt.Errorf("core: table of 2^%d buckets would be smaller than the lock stripe", newPower)
	}
	if newPower > 30 {
		return fmt.Errorf("core: refusing table of 2^%d buckets", newPower)
	}
	for li := uint64(0); li < s.numItemLocks; li++ {
		c.lock(s.itemLocks + li*8)
	}
	defer func() {
		for li := uint64(0); li < s.numItemLocks; li++ {
			c.unlock(s.itemLocks + li*8)
		}
	}()

	oldTable, oldMask := s.table()
	newSize := uint64(1) << newPower
	newTable, err := c.cache.Calloc(newSize * 8)
	if err != nil {
		return fmt.Errorf("core: resize to 2^%d: %w", newPower, err)
	}
	// Holding every item lock stops all writers and all *locked* readers,
	// but lock-free readers sample chains and routing state regardless:
	// bump every stripe seqlock for the duration so any overlapping
	// optimistic read fails validation, and make the splices and the
	// table swap atomic stores.
	for li := uint64(0); li < s.numItemLocks; li++ {
		s.H.SeqWriteBegin(s.seqLocks + li*8)
	}
	for b := uint64(0); b <= oldMask; b++ {
		it := loadChainHead(s, oldTable+b*8)
		for it != 0 {
			next := loadChainNext(s, it)
			h := s.itemHash(it)
			bucket := newTable + (h&(newSize-1))*8
			ralloc.AtomicStorePptr(s.H, it+itHNext, ralloc.LoadPptr(s.H, bucket))
			ralloc.AtomicStorePptr(s.H, bucket, it)
			it = next
		}
	}
	ralloc.AtomicStorePptr(s.H, s.htStorage+htTable, newTable)
	s.H.AtomicStore64(s.htStorage+htHashPower, uint64(newPower))
	for li := uint64(0); li < s.numItemLocks; li++ {
		s.H.SeqWriteEnd(s.seqLocks + li*8)
	}
	// The retired array may still be under a stalled reader's feet; the
	// grave holds it intact until every announced section drains.
	c.gravePush(oldTable)
	return nil
}
