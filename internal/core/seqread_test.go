package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestSeqreadStressLinearizable hammers Get against concurrent Set/Delete
// on a shared key range and checks every retrieved value for internal
// consistency: it must carry the key it was stored under, a uniform filler
// from exactly one writer, and flags matching that writer. A torn seqlock
// read, a wrong-key match on a spliced chain, or a read from freed memory
// all violate one of these. Reader contexts cover the optimistic path, the
// injected-retry path, the exhausted-retries fallback, and the ablation
// toggle; run with -race for the memory-model half of the argument.
func TestSeqreadStressLinearizable(t *testing.T) {
	s, _ := newStore(t, 1<<24, Options{HashPower: 10, NumItemLocks: 64, FixedSize: true})
	const writers = 3
	const writerIters = 4000
	const readerIters = 3000
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
	}

	fail := make(chan string, 16)
	var wg sync.WaitGroup

	// Seed a few keys so early readers see hits even if the scheduler (on
	// a small machine) runs whole goroutines back to back.
	{
		c := s.NewCtx(42)
		for _, k := range keys[:8] {
			if err := c.Set(k, append(append([]byte{}, k...), '|', 'A'), 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		c.Close()
	}

	check := func(k, v []byte, flags uint32) string {
		if len(v) < len(k)+2 || !bytes.Equal(v[:len(k)], k) || v[len(k)] != '|' {
			return fmt.Sprintf("value %q does not carry key %q", v, k)
		}
		fill := v[len(k)+1]
		for _, b := range v[len(k)+1:] {
			if b != fill {
				return fmt.Sprintf("torn value %q for key %q", v, k)
			}
		}
		if flags != uint32(fill-'A') {
			return fmt.Sprintf("flags %d but filler %q for key %q", flags, fill, k)
		}
		return ""
	}

	// Four reader flavours: plain optimistic, one injected retry per call,
	// injections exhausting every attempt (permanent lock fallback), and
	// the DisableOptimisticReads ablation toggle. Readers run a fixed
	// iteration count so they do real work even when goroutines end up
	// serialized on a single-core machine.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.NewCtx(uint64(200 + id))
			defer c.Close()
			switch id {
			case 1:
				c.forceSeqRetries = 1
			case 2:
				c.forceSeqRetries = optMaxAttempts
			case 3:
				c.DisableOptimisticReads = true
			}
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			for i := 0; i < readerIters; i++ {
				if i%64 == 63 {
					batch := [][]byte{
						keys[rng.Intn(len(keys))],
						keys[rng.Intn(len(keys))],
						keys[rng.Intn(len(keys))],
					}
					for j, res := range c.MGet(batch) {
						if res.Found {
							if msg := check(batch[j], res.Value, res.Flags); msg != "" {
								fail <- "mget: " + msg
								return
							}
						}
					}
					continue
				}
				k := keys[rng.Intn(len(keys))]
				v, flags, _, err := c.Get(k)
				if errors.Is(err, ErrNotFound) {
					continue
				}
				if err != nil {
					fail <- fmt.Sprintf("get: %v", err)
					return
				}
				if msg := check(k, v, flags); msg != "" {
					fail <- msg
					return
				}
			}
		}(r)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.NewCtx(uint64(100 + id))
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			fill := byte('A' + id)
			for i := 0; i < writerIters; i++ {
				k := keys[rng.Intn(len(keys))]
				if rng.Intn(4) == 0 {
					if err := c.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
						fail <- fmt.Sprintf("delete: %v", err)
						return
					}
					continue
				}
				val := append(append([]byte{}, k...), '|')
				for j := 0; j < 8+rng.Intn(60); j++ {
					val = append(val, fill)
				}
				if err := c.Set(k, val, uint32(id), 0); err != nil {
					fail <- fmt.Sprintf("set: %v", err)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	st := s.Stats()
	t.Logf("gets=%d hits=%d misses=%d fastpath=%d retries=%d grave=%d",
		st.Gets, st.GetHits, st.GetMisses, st.GetFastpathHits, st.SeqlockRetries, s.GraveLen())
	if st.GetFastpathHits == 0 {
		t.Fatal("no Get took the optimistic fast path")
	}
	if st.SeqlockRetries == 0 {
		t.Fatal("injected retries were not counted")
	}
	// Drain the quarantine and make sure the store still round-trips.
	c := s.NewCtx(999)
	defer c.Close()
	c.reapGrave()
	if err := c.Set([]byte("final"), []byte("final|X"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if v, _, _, err := c.Get([]byte("final")); err != nil || string(v) != "final|X" {
		t.Fatalf("post-stress get = %q, %v", v, err)
	}
}

// TestOptimisticFastpathCounting pins down when Get takes the lock-free
// path: fresh items are served optimistically, a due LRU bump or a lazy
// expiry forces the locked path, and the ablation toggle disables the fast
// path entirely.
func TestOptimisticFastpathCounting(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, FixedSize: true})
	now := int64(1000)
	s.SetClock(func() int64 { return now })

	fastpath := func() uint64 { return s.Stats().GetFastpathHits }

	k := []byte("k")
	if err := c.Set(k, []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatal(err)
	}
	if fastpath() != 1 {
		t.Fatalf("fresh Get fastpath hits = %d, want 1", fastpath())
	}

	// Past the bump interval the read owes an LRU bump — a write — so it
	// must fall back to the locked path (which performs the bump).
	now += lruBumpInterval + 1
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatal(err)
	}
	if fastpath() != 1 {
		t.Fatalf("bump-due Get took the fast path (hits = %d)", fastpath())
	}
	// The bump reset lastAccess, so the next read is optimistic again.
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatal(err)
	}
	if fastpath() != 2 {
		t.Fatalf("post-bump Get fastpath hits = %d, want 2", fastpath())
	}

	// An expired item needs a lazy unlink: locked path, then a miss. The
	// miss itself is served optimistically next time (validated miss).
	if err := c.Set([]byte("exp"), []byte("v"), 0, 60); err != nil {
		t.Fatal(err)
	}
	now += 120
	if _, _, _, err := c.Get([]byte("exp")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expired get = %v", err)
	}
	if fastpath() != 2 {
		t.Fatalf("expired Get took the fast path (hits = %d)", fastpath())
	}
	if _, _, _, err := c.Get([]byte("exp")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-expiry get = %v", err)
	}
	if fastpath() != 3 {
		t.Fatalf("validated miss fastpath hits = %d, want 3", fastpath())
	}

	// Refresh k's lastAccess (this read is bump-due, hence locked) so the
	// next lookup is eligible for the fast path again.
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatal(err)
	}
	if fastpath() != 3 {
		t.Fatalf("bump-due Get took the fast path (hits = %d)", fastpath())
	}

	// Injected validation failures burn every attempt, fall back, and are
	// counted; the result is still correct.
	c.forceSeqRetries = optMaxAttempts
	before := s.Stats().SeqlockRetries
	if v, _, _, err := c.Get(k); err != nil || string(v) != "v" {
		t.Fatalf("forced-retry get = %q, %v", v, err)
	}
	if fastpath() != 3 {
		t.Fatal("exhausted retries must fall back to the locked path")
	}
	if got := s.Stats().SeqlockRetries; got < before+uint64(optMaxAttempts) {
		t.Fatalf("SeqlockRetries = %d, want ≥ %d", got, before+uint64(optMaxAttempts))
	}
	c.forceSeqRetries = 0

	// The ablation toggle pins every read to the locked path.
	c.DisableOptimisticReads = true
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatal(err)
	}
	if fastpath() != 3 {
		t.Fatal("DisableOptimisticReads must suppress the fast path")
	}
}

// TestGraveQuarantine verifies safe reclamation: removed items sit intact
// in the quarantine (refusing new pins) until a reap drains them.
func TestGraveQuarantine(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, FixedSize: true})
	k := []byte("doomed")
	if err := c.Set(k, []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	hash := hashKey(k)
	s.H.LockAcquire(s.itemLockOff(hash), c.owner)
	it := c.findLocked(k, hash)
	s.H.LockRelease(s.itemLockOff(hash))
	if it == 0 {
		t.Fatal("item not found")
	}
	if !s.increfIfLive(it) {
		t.Fatal("increfIfLive refused a live item")
	}
	c.decref(it)

	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if got := s.GraveLen(); got != 1 {
		t.Fatalf("GraveLen after delete = %d, want 1", got)
	}
	// Quarantined: memory intact, refcount zero, pin refused.
	if s.H.AtomicLoad64(it+itRefcount) != 0 {
		t.Fatal("quarantined item has nonzero refcount")
	}
	if s.increfIfLive(it) {
		t.Fatal("increfIfLive resurrected a quarantined item")
	}
	if freed := c.reapGrave(); freed != 1 {
		t.Fatalf("reapGrave freed %d, want 1", freed)
	}
	if got := s.GraveLen(); got != 0 {
		t.Fatalf("GraveLen after reap = %d, want 0", got)
	}
	// A second reap is a no-op.
	if freed := c.reapGrave(); freed != 0 {
		t.Fatalf("second reapGrave freed %d", freed)
	}
}

// TestGraveAutoReap checks that pushing past the threshold reaps without
// any maintenance pass.
func TestGraveAutoReap(t *testing.T) {
	s, c := newStore(t, 1<<24, Options{HashPower: 10, NumItemLocks: 16, FixedSize: true})
	for i := 0; i < graveReapThreshold+10; i++ {
		k := []byte(fmt.Sprintf("k-%04d", i))
		if err := c.Set(k, []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.GraveLen(); got >= graveReapThreshold {
		t.Fatalf("GraveLen = %d, auto-reap never ran", got)
	}
}

// TestReaderSlotExhaustion: contexts beyond the slot supply still work,
// just without the fast path; closing a context recycles its slot.
func TestReaderSlotExhaustion(t *testing.T) {
	s, c1 := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, ReaderSlots: 1, FixedSize: true})
	if c1.rdSlot == 0 {
		t.Fatal("first context got no reader slot")
	}
	c2 := s.NewCtx(2)
	if c2.rdSlot != 0 {
		t.Fatal("second context claimed a slot that should be taken")
	}
	// Slotless contexts serve reads through the locked path, correctly.
	if err := c2.Set([]byte("k"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().GetFastpathHits
	if v, _, _, err := c2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("slotless get = %q, %v", v, err)
	}
	if got := s.Stats().GetFastpathHits; got != before {
		t.Fatal("slotless context took the fast path")
	}
	c2.Close()
	c1.Close() // releases the one slot
	c3 := s.NewCtx(3)
	defer c3.Close()
	if c3.rdSlot == 0 {
		t.Fatal("slot was not recycled after Close")
	}
}

// TestGetAndTouchAppend covers the buffer-reusing variant: the value lands
// in the caller's buffer and the expiry really moves.
func TestGetAndTouchAppend(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, FixedSize: true})
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	if err := c.Set([]byte("k"), []byte("value"), 0, 50); err != nil {
		t.Fatal(err)
	}
	dst := append(make([]byte, 0, 64), "prefix:"...)
	out, _, cas, err := c.GetAndTouchAppend(dst, []byte("k"), 500)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "prefix:value" || cas == 0 {
		t.Fatalf("GetAndTouchAppend = %q cas=%d", out, cas)
	}
	if &out[0] != &dst[:1][0] {
		t.Fatal("append did not reuse the caller's buffer")
	}
	// Past the original expiry but inside the touched one.
	now += 100
	if _, _, _, err := c.Get([]byte("k")); err != nil {
		t.Fatalf("touched item expired early: %v", err)
	}
	now += 500
	if _, _, _, err := c.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("item outlived touched expiry: %v", err)
	}
}
