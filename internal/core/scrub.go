package core

import (
	"fmt"

	"plibmc/internal/ralloc"
)

// Corruption containment.
//
// The fault matrix covers threads dying at bad instants; this file covers
// bytes that are simply wrong — a bit flipped by failing memory, a word
// scribbled by a misbehaving sharer that slipped past the protection keys,
// an image region that decayed on disk and was force-attached anyway. The
// policy has three tiers:
//
//   1. The read paths verify each matched item's header checksum before
//      trusting its geometry; a failure quarantines just that item.
//   2. The maintenance-pass scrubber walks a few lock stripes per pass and
//      deep-verifies every item (header checksum, hash↔key agreement,
//      value checksum), truncating implausible chain links and
//      quarantining items that fail.
//   3. Anything that cannot be contained to one item — a torn LRU list, a
//      cyclic chain — panics, which hodor unwinds into the PR 2 full
//      structural repair. Salvage over poisoning, but never silent.
//
// A quarantined item is spliced out of its chain and LRU list and pushed
// through the grave exactly like a deleted item, so concurrent optimistic
// readers standing on it keep finding type-stable memory.

// quarantineCorruptLocked removes a corrupt item from service. The caller
// holds the stripe item lock covering bucket (and has already decided the
// item fails verification). seqOff is that stripe's seqlock.
//
// Every pointer is validated before the splice dereferences it: the item's
// own hNext is only followed if it is plausible (otherwise the chain is
// truncated at the quarantined item), and LRU removal uses the hardened
// lruRemove, which escalates to a panic — and thus full repair — rather
// than splice through a corrupt link.
func (c *Ctx) quarantineCorruptLocked(it, bucket, seqOff uint64) {
	s := c.s
	c.stat(statCorruptDetected, 1)

	// Find the predecessor link (bounded; the chain may be damaged).
	prevAddr := bucket
	cur := ralloc.LoadPptr(s.H, bucket)
	for steps := 0; cur != 0 && cur != it; steps++ {
		if steps >= maxRepairChain {
			panic("core: bucket chain cycle (corruption)")
		}
		prevAddr = cur + itHNext
		cur = ralloc.LoadPptr(s.H, prevAddr)
	}
	next := uint64(0)
	if cur == it {
		next = loadChainNext(s, it)
		if next != 0 && (next&7 != 0 || next+itHeader > s.H.Size() || s.A.BlockAt(next) < itHeader) {
			next = 0 // successor is garbage too: truncate the chain here
		}
	}
	s.H.SeqWriteBegin(seqOff)
	if cur == it {
		ralloc.AtomicStorePptr(s.H, prevAddr, next)
	}
	s.H.SeqWriteEnd(seqOff)

	if s.A.BlockAt(it) < itHeader {
		// Not even a live block: the chain pointer itself was the
		// corruption. Splicing it out was all that could safely be done.
		return
	}
	// The item's stored hash selected its LRU list at link time. If the
	// hash field itself is what got corrupted this may name the wrong
	// list — in which case lruRemove's back-link and head/tail grounding
	// either still splices correctly (interior items link to their true
	// neighbors) or panics into a full repair.
	c.lruUnlink(s.itemHash(it), it)
	s.setLinked(it, false)
	c.stat(statCurrItems, -1)
	c.stat(statBytes, -int64(s.A.SizeOf(it)))
	c.stat(statItemsQuarantined, 1)
	c.decref(it)
}

// deepVerifyLocked fully verifies one item under its stripe lock (which
// makes the value bytes stable: in-place rewrites hold the same lock).
// Returns "" if the item is intact, else a short reason.
func (c *Ctx) deepVerifyLocked(it uint64) string {
	s := c.s
	if !s.itemCheckValid(it) {
		return "header checksum mismatch"
	}
	klen := s.itemKeyLen(it)
	vlen := s.itemValLen(it)
	if blk := s.A.BlockAt(it); itemSize(klen, vlen) > blk {
		return "declared size exceeds block"
	}
	key := grow(&c.keyBuf, klen)
	s.H.ReadBytes(it+itHeader, key)
	if hashKey(key) != s.H.Load64(it+itHash) {
		return "stored hash does not match key"
	}
	val := grow(&c.auxBuf, vlen)
	s.H.ReadBytes(s.itemValOff(it), val)
	if hashKey(val) != s.H.Load64(it+itValSum) {
		return "value checksum mismatch"
	}
	return ""
}

// scrubStripe deep-verifies every item chained under lock stripe li,
// quarantining failures and truncating implausible links. Returns items
// scanned and corruptions found.
func (c *Ctx) scrubStripe(li uint64) (scanned, corrupt int) {
	s := c.s
	lock := s.itemLocks + li*8
	c.lock(lock)
	defer c.unlock(lock)
	seqOff := s.seqLocks + li*8
	size := s.H.Size()
	s.forEachBucketLocked(li, func(bucket uint64) {
		prevAddr := bucket
		it := ralloc.LoadPptr(s.H, bucket)
		for steps := 0; it != 0; steps++ {
			if steps >= maxRepairChain {
				panic("core: bucket chain cycle (corruption)")
			}
			if it&7 != 0 || it+itHeader > size || s.A.BlockAt(it) < itHeader {
				// The link itself is garbage: truncate the chain at its
				// predecessor. Items beyond the tear stay allocated until
				// eviction or repair finds them through the LRU.
				c.stat(statCorruptDetected, 1)
				s.H.SeqWriteBegin(seqOff)
				ralloc.AtomicStorePptr(s.H, prevAddr, 0)
				s.H.SeqWriteEnd(seqOff)
				corrupt++
				break
			}
			next := loadChainNext(s, it)
			scanned++
			if reason := c.deepVerifyLocked(it); reason != "" {
				c.quarantineCorruptLocked(it, bucket, seqOff)
				corrupt++
			} else {
				prevAddr = it + itHNext
			}
			it = next
		}
	})
	return scanned, corrupt
}

// ScrubChains runs the scrubber over n lock stripes starting at *cursor,
// advancing the cursor (it wraps). The maintainer calls this each pass so
// the whole table is deep-verified every numItemLocks/n passes.
func (c *Ctx) ScrubChains(cursor *uint64, n int) (scanned, corrupt int) {
	c.enterOp()
	defer c.exitOp()
	s := c.s
	for i := 0; i < n; i++ {
		sc, co := c.scrubStripe(*cursor % s.numItemLocks)
		*cursor++
		scanned += sc
		corrupt += co
	}
	return scanned, corrupt
}

// AuditFault describes one item that failed an offline audit.
type AuditFault struct {
	Off    uint64 // item heap offset
	Key    string // best-effort key bytes (may be garbage on a torn header)
	Reason string
}

func (f AuditFault) String() string {
	return fmt.Sprintf("item %#x (key %q): %s", f.Off, f.Key, f.Reason)
}

// AuditItems deep-verifies every chained item without mutating anything —
// the offline form of the scrubber, for plibdump -verify. Returns the
// number of items scanned and a description of every failure (capped at
// max; 0 means unlimited). The caller must hold the store quiescent (an
// offline attach qualifies).
func (c *Ctx) AuditItems(max int) (scanned int, faults []AuditFault) {
	c.enterOp()
	defer c.exitOp()
	s := c.s
	size := s.H.Size()
	record := func(off uint64, reason string) {
		if max > 0 && len(faults) >= max {
			return
		}
		var key string
		if s.A.BlockAt(off) >= itHeader {
			klen := s.itemKeyLen(off)
			if klen > 0 && klen <= MaxKeyLen && off+itHeader+klen <= size {
				key = string(s.H.Bytes(off+itHeader, klen))
			}
		}
		faults = append(faults, AuditFault{Off: off, Key: key, Reason: reason})
	}
	for li := uint64(0); li < s.numItemLocks; li++ {
		lock := s.itemLocks + li*8
		c.lock(lock)
		s.forEachBucketLocked(li, func(bucket uint64) {
			it := ralloc.LoadPptr(s.H, bucket)
			for steps := 0; it != 0; steps++ {
				if steps >= maxRepairChain {
					record(bucket, "bucket chain cycle")
					break
				}
				if it&7 != 0 || it+itHeader > size || s.A.BlockAt(it) < itHeader {
					record(it, "implausible chain link")
					break
				}
				scanned++
				if reason := c.deepVerifyLocked(it); reason != "" {
					record(it, reason)
				}
				it = loadChainNext(s, it)
			}
		})
		c.unlock(lock)
	}
	return scanned, faults
}
