package core

// Iteration over the whole store, for dump/inspection tooling and the
// bookkeeper. Iteration proceeds lock stripe by lock stripe; within a
// stripe the view is consistent, across stripes items may move (exactly
// like memcached's lru_crawler).

// Entry is one item surfaced by ForEach.
type Entry struct {
	Key     []byte
	Value   []byte
	Flags   uint32
	Exptime int64
	CAS     uint64
}

// ForEach invokes fn for every live (unexpired) entry. The Entry's slices
// are reused between calls; copy them to retain. fn returning false stops
// the iteration early. Returns the number of entries visited.
func (c *Ctx) ForEach(fn func(e *Entry) bool) int {
	c.enterOp()
	defer c.exitOp()
	s := c.s
	now := s.nowFn()
	var e Entry
	visited := 0
	for li := uint64(0); li < s.numItemLocks; li++ {
		lock := s.itemLocks + li*8
		c.lock(lock)
		stop := false
		s.forEachBucketLocked(li, func(bucket uint64) {
			if stop {
				return
			}
			for it := loadChainHead(s, bucket); it != 0; it = loadChainNext(s, it) {
				if s.expired(it, now) {
					continue
				}
				klen := s.itemKeyLen(it)
				vlen := s.itemValLen(it)
				e.Key = grow(&c.keyBuf, klen)
				s.H.ReadBytes(s.itemKeyOff(it), e.Key)
				e.Value = grow(&c.valBuf, vlen)
				s.H.ReadBytes(s.itemValOff(it), e.Value)
				e.Flags = s.H.Load32(it + itFlags)
				e.Exptime = int64(s.H.Load32(it + itExptime))
				e.CAS = s.H.Load64(it + itCASID)
				visited++
				if !fn(&e) {
					stop = true
					return
				}
			}
		})
		c.unlock(lock)
		if stop {
			break
		}
	}
	return visited
}
