package core

// Scattered latency histograms.
//
// The paper scattered the request *counters* across the slots of a shared
// array because the single stats lock serialized the data plane (§4,
// Fig. 3); this file extends the same discipline to latency. A matrix of
// fixed-layout shared histograms (histogram.SharedSize bytes each, padded
// to cache lines) lives in the Ralloc heap, reachable from RootLatency:
// one row per slot, one column per operation class. A context records into
// the slot chosen by its owner token with three atomic adds, so recording
// never contends across threads, and because the matrix is heap-resident
// the histograms survive into crash images for post-mortem forensics
// (plibdump -metrics) and are re-validated by Repair like any other shared
// structure.
//
// Recording is sampled: one in every LatencySampleEvery operations per
// context pays for the two clock reads, the rest pay one branch and one
// increment. Percentiles are unbiased under uniform sampling; totals count
// sampled operations, not all operations (the scattered counters already
// count every operation exactly).

import (
	"fmt"
	"time"

	"plibmc/internal/faultpoint"
	"plibmc/internal/histogram"
)

// Operation classes, one histogram column each.
const (
	LatGet = iota
	LatSet
	LatDelete
	LatMGet
	LatTouch
	LatMaint
	LatBatch
	NumLatClasses
)

// LatClassNames names each class for exporters, index-aligned with the
// constants above.
var LatClassNames = [NumLatClasses]string{"get", "set", "delete", "mget", "touch", "maint", "batch"}

// Matrix geometry: each histogram padded to whole cache lines so two
// classes of one slot never false-share, and slots are line-aligned runs.
const (
	latHistStride = (histogram.SharedSize + 63) &^ 63
	latSlotStride = NumLatClasses * latHistStride
)

// fpLatRecord crashes between the bucket-count add and the total add,
// leaving the histogram's total != Σcounts invariant torn — the state
// Repair's histogram pass (and histogram.SharedRepair) must mend.
var fpLatRecord = faultpoint.New("lat.record")

// latEpoch anchors monotonic timestamps: time.Since(latEpoch) is one
// monotonic clock read, and only differences of these values are recorded.
var latEpoch = time.Now()

// latOff returns the heap offset of one slot's histogram for class.
func (s *Store) latOff(slot uint64, class int) uint64 {
	return s.latency + slot*latSlotStride + uint64(class)*latHistStride
}

// opBegin is enterOp plus sampled latency capture: it returns a monotonic
// start timestamp if this operation was chosen for recording, -1 otherwise.
// Only outermost operations sample (a nested GetAppend inside MGet, or an
// eviction inside a Set, is part of its parent's latency).
func (c *Ctx) opBegin() time.Duration {
	c.enterOp()
	if c.opDepth != 1 || !c.s.latEnabled {
		return -1
	}
	if c.latN++; c.latN&c.s.latMask != 0 {
		return -1
	}
	return time.Since(latEpoch)
}

// opEnd records the sampled latency (before exitOp, so a crash inside
// recording presents as a crash mid-operation: gate count held, repair
// required) and leaves the operation gate.
func (c *Ctx) opEnd(class int, t0 time.Duration) {
	if t0 >= 0 {
		c.latRecord(class, time.Since(latEpoch)-t0)
	}
	c.exitOp()
}

// latRecord adds one sample to this context's slot. The three adds follow
// histogram.SharedRecord's order — bucket, then total, then sum — with the
// fault-matrix crash point between the first two.
func (c *Ctx) latRecord(class int, d time.Duration) {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	off := c.s.latOff(c.latSlot, class)
	h := c.s.H
	h.Add64(off+histogram.SharedOffCounts+uint64(histogram.SharedBucketOf(v))*8, 1)
	fpLatRecord.Maybe()
	h.Add64(off+histogram.SharedOffTotal, 1)
	h.Add64(off+histogram.SharedOffSum, v)
}

// LatencySnapshot is a merged view of the histogram matrix: every slot
// summed, one histogram per operation class.
type LatencySnapshot struct {
	Classes [NumLatClasses]histogram.Snapshot
}

// Latency scans the whole matrix (the statistics-retrieving scan of the
// scattered-stats discipline) and returns per-class merged histograms.
func (s *Store) Latency() LatencySnapshot {
	var ls LatencySnapshot
	if s.latency == 0 {
		return ls
	}
	for slot := uint64(0); slot < s.latSlots; slot++ {
		for class := 0; class < NumLatClasses; class++ {
			ls.Classes[class].AddShared(s.H, s.latOff(slot, class))
		}
	}
	return ls
}

// LatencyEnabled reports whether operations record latency samples.
func (s *Store) LatencyEnabled() bool { return s.latEnabled }

// LatencySampleEvery returns the per-context sampling period (1 = every
// operation), for exporters that want to report the sampling rate.
func (s *Store) LatencySampleEvery() uint64 { return s.latMask + 1 }

// repairLatency is Repair's histogram pass: verify the matrix still sits
// on a live allocator block of the right size, then re-establish each
// histogram's total == Σcounts invariant (a thread that died inside
// latRecord leaves exactly that torn). Returns how many histograms needed
// mending.
func (s *Store) repairLatency() (int, error) {
	if s.latency == 0 {
		return 0, nil
	}
	if blk := s.A.BlockAt(s.latency); blk < s.latSlots*latSlotStride {
		return 0, fmt.Errorf("core: repair: latency matrix %#x is not a live %d-byte block (got %d)",
			s.latency, s.latSlots*latSlotStride, blk)
	}
	n := 0
	for slot := uint64(0); slot < s.latSlots; slot++ {
		for class := 0; class < NumLatClasses; class++ {
			if histogram.SharedRepair(s.H, s.latOff(slot, class)) {
				n++
			}
		}
	}
	return n, nil
}
