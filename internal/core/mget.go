package core

// Batched retrieval. The socket memcached devotes much of its client
// library to batching because every round trip costs microseconds; for the
// protected library a batch instead amortizes the (much smaller) trampoline
// crossing: one rights amplification covers N lookups.

// GetResult is one key's outcome in a batched MGet.
type GetResult struct {
	Value []byte
	Flags uint32
	CAS   uint64
	Found bool
}

// MGet looks up every key and returns one result per key, in order.
// Missing (or expired) keys yield Found == false. Each lookup rides the
// lock-free optimistic path of GetAppend, so an uncontended batch takes
// no locks at all.
func (c *Ctx) MGet(keys [][]byte) []GetResult {
	// One latency sample covers the whole batch; the nested GetAppends run
	// at operation depth 2 and never sample themselves.
	defer c.opEnd(LatMGet, c.opBegin())
	res := make([]GetResult, len(keys))
	for i, k := range keys {
		v, flags, cas, err := c.GetAppend(nil, k)
		if err == nil {
			res[i] = GetResult{Value: v, Flags: flags, CAS: cas, Found: true}
		}
	}
	return res
}
