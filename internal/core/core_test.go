package core

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"testing/quick"

	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

func newStore(t testing.TB, heapBytes uint64, opts Options) (*Store, *Ctx) {
	t.Helper()
	h := shm.New(heapBytes)
	a, err := ralloc.Format(h)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, s.NewCtx(1)
}

func TestSetGet(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	if err := c.Set([]byte("hello"), []byte("world"), 7, 0); err != nil {
		t.Fatal(err)
	}
	v, flags, cas, err := c.Get([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "world" || flags != 7 || cas == 0 {
		t.Fatalf("got %q flags=%d cas=%d", v, flags, cas)
	}
	if _, _, _, err := c.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
}

func TestSetOverwrite(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("k")
	if err := c.Set(k, []byte("first"), 0, 0); err != nil {
		t.Fatal(err)
	}
	_, _, cas1, _ := c.Get(k)
	if err := c.Set(k, []byte("second, longer value"), 3, 0); err != nil {
		t.Fatal(err)
	}
	v, flags, cas2, err := c.Get(k)
	if err != nil || string(v) != "second, longer value" || flags != 3 {
		t.Fatalf("after overwrite: %q %d %v", v, flags, err)
	}
	if cas2 == cas1 {
		t.Fatal("CAS generation must change on overwrite")
	}
}

func TestAddReplace(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("k")
	if err := c.Replace(k, []byte("v"), 0, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replace missing = %v", err)
	}
	if err := c.Add(k, []byte("v1"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(k, []byte("v2"), 0, 0); !errors.Is(err, ErrExists) {
		t.Fatalf("add existing = %v", err)
	}
	if err := c.Replace(k, []byte("v3"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, _ := c.Get(k)
	if string(v) != "v3" {
		t.Fatalf("value = %q", v)
	}
}

func TestCAS(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("k")
	if err := c.CAS(k, []byte("v"), 0, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cas on missing = %v", err)
	}
	c.Set(k, []byte("v1"), 0, 0)
	_, _, cas, _ := c.Get(k)
	if err := c.CAS(k, []byte("v2"), 0, 0, cas+99); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale cas = %v", err)
	}
	if err := c.CAS(k, []byte("v2"), 0, 0, cas); err != nil {
		t.Fatal(err)
	}
	v, _, cas2, _ := c.Get(k)
	if string(v) != "v2" || cas2 == cas {
		t.Fatalf("after cas: %q gen %d->%d", v, cas, cas2)
	}
	st := c.Store().Stats()
	if st.CASMismatch != 1 {
		t.Fatalf("CASMismatch stat = %d", st.CASMismatch)
	}
}

func TestDelete(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("k")
	if err := c.Delete(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing = %v", err)
	}
	c.Set(k, []byte("v"), 0, 0)
	if err := c.Delete(k); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still present")
	}
}

func TestIncrDecr(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("n")
	if _, err := c.Increment(k, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("incr missing = %v", err)
	}
	c.Set(k, []byte("10"), 0, 0)
	if v, err := c.Increment(k, 5); err != nil || v != 15 {
		t.Fatalf("incr = %d, %v", v, err)
	}
	// Width change: 15 + 90 = 105 (2 -> 3 digits, item replaced).
	if v, err := c.Increment(k, 90); err != nil || v != 105 {
		t.Fatalf("incr across width = %d, %v", v, err)
	}
	got, _, _, _ := c.Get(k)
	if string(got) != "105" {
		t.Fatalf("stored = %q", got)
	}
	if v, err := c.Decrement(k, 5); err != nil || v != 100 {
		t.Fatalf("decr = %d, %v", v, err)
	}
	// Decrement saturates at zero.
	if v, err := c.Decrement(k, 1000); err != nil || v != 0 {
		t.Fatalf("saturating decr = %d, %v", v, err)
	}
	got, _, _, _ = c.Get(k)
	if string(got) != "0" {
		t.Fatalf("stored after saturation = %q", got)
	}
	c.Set(k, []byte("not a number"), 0, 0)
	if _, err := c.Increment(k, 1); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("incr non-numeric = %v", err)
	}
	c.Set(k, []byte(""), 0, 0)
	if _, err := c.Increment(k, 1); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("incr empty = %v", err)
	}
}

func TestIncrWraps(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("n")
	c.Set(k, []byte("18446744073709551615"), 0, 0) // 2^64-1
	if v, err := c.Increment(k, 1); err != nil || v != 0 {
		t.Fatalf("wrapping incr = %d, %v", v, err)
	}
}

func TestAppendPrepend(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("k")
	if err := c.Append(k, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append missing = %v", err)
	}
	c.Set(k, []byte("mid"), 0, 0)
	if err := c.Append(k, []byte("-end")); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepend(k, []byte("start-")); err != nil {
		t.Fatal(err)
	}
	v, _, _, _ := c.Get(k)
	if string(v) != "start-mid-end" {
		t.Fatalf("value = %q", v)
	}
}

func TestTouchAndExpiry(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	now := int64(1_000_000)
	s.SetClock(func() int64 { return now })

	k := []byte("k")
	if err := c.Touch(k, 100); !errors.Is(err, ErrNotFound) {
		t.Fatalf("touch missing = %v", err)
	}
	c.Set(k, []byte("v"), 0, 50) // relative: expires at now+50
	now += 49
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatalf("not yet expired: %v", err)
	}
	now += 2
	if _, _, _, err := c.Get(k); !errors.Is(err, ErrNotFound) {
		t.Fatal("expired key still served")
	}
	st := s.Stats()
	if st.Expired != 1 {
		t.Fatalf("Expired stat = %d", st.Expired)
	}

	// Touch extends life.
	c.Set(k, []byte("v"), 0, 50)
	now += 40
	if err := c.Touch(k, 100); err != nil {
		t.Fatal(err)
	}
	now += 60
	if _, _, _, err := c.Get(k); err != nil {
		t.Fatalf("touched key should live: %v", err)
	}

	// Absolute expiry (> 30 days).
	c.Set([]byte("abs"), []byte("v"), 0, now+relativeExpiryCutoff+100)
	if _, _, _, err := c.Get([]byte("abs")); err != nil {
		t.Fatalf("absolute-expiry key should live: %v", err)
	}
	// Negative expiry: dead immediately.
	c.Set([]byte("neg"), []byte("v"), 0, -1)
	if _, _, _, err := c.Get([]byte("neg")); !errors.Is(err, ErrNotFound) {
		t.Fatal("negative-expiry key should be dead")
	}
	// Zero: never expires.
	c.Set([]byte("zero"), []byte("v"), 0, 0)
	now += 10 * relativeExpiryCutoff
	if _, _, _, err := c.Get([]byte("zero")); err != nil {
		t.Fatalf("exptime 0 must never expire: %v", err)
	}
}

func TestValidation(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	longKey := bytes.Repeat([]byte("k"), MaxKeyLen+1)
	if err := c.Set(longKey, []byte("v"), 0, 0); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key set = %v", err)
	}
	if _, _, _, err := c.Get(longKey); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key get = %v", err)
	}
	if err := c.Delete(longKey); !errors.Is(err, ErrKeyTooLong) {
		t.Fatalf("long key delete = %v", err)
	}
	big := make([]byte, MaxValueLen+1)
	if err := c.Set([]byte("k"), big, 0, 0); !errors.Is(err, ErrValueTooBig) {
		t.Fatalf("big value = %v", err)
	}
}

func TestFlushAll(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	for i := 0; i < 100; i++ {
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, 0)
	}
	if st := s.Stats(); st.CurrItems != 100 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
	c.FlushAll()
	st := s.Stats()
	if st.CurrItems != 0 || st.Bytes != 0 {
		t.Fatalf("after flush: items=%d bytes=%d", st.CurrItems, st.Bytes)
	}
	if _, _, _, err := c.Get([]byte("key-3")); !errors.Is(err, ErrNotFound) {
		t.Fatal("flushed key still present")
	}
	if st.Flushes != 1 {
		t.Fatalf("Flushes = %d", st.Flushes)
	}
}

func TestStatsCounting(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c.Set([]byte("a"), []byte("1"), 0, 0)
	c.Set([]byte("b"), []byte("2"), 0, 0)
	c.Get([]byte("a"))
	c.Get([]byte("missing"))
	c.Delete([]byte("b"))
	c.Increment([]byte("a"), 1)
	st := s.Stats()
	if st.Sets != 2 || st.Gets != 2 || st.GetHits != 1 || st.GetMisses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Deletes != 1 || st.DeleteHits != 1 || st.Incrs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CurrItems != 1 || st.TotalItems != 3 { // a, b, and a's incr replacement? (same width: no)
		// Increment of "1"->"2" keeps width, so TotalItems is 2 links + 0.
		if st.TotalItems != 2 {
			t.Fatalf("items: %+v", st)
		}
	}
	if st.Bytes == 0 {
		t.Fatal("Bytes should be nonzero")
	}
}

func TestStatsScatteredAcrossSlots(t *testing.T) {
	s, _ := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16, StatSlots: 8})
	// Contexts with different owners update different slots; the sums must
	// still be coherent.
	for i := uint64(1); i <= 16; i++ {
		c := s.NewCtx(i)
		c.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0, 0)
		c.Get([]byte(fmt.Sprintf("k%d", i)))
		c.Close()
	}
	st := s.Stats()
	if st.Sets != 16 || st.GetHits != 16 || st.CurrItems != 16 {
		t.Fatalf("scattered stats = %+v", st)
	}
}

func TestManyKeysAndCollisions(t *testing.T) {
	// A tiny table forces long chains: correctness under collisions.
	s, c := newStore(t, 1<<23, Options{HashPower: 4, NumItemLocks: 4, FixedSize: true})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("val-%06d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, flags, _, err := c.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
		if string(v) != fmt.Sprintf("val-%06d", i) || flags != uint32(i) {
			t.Fatalf("key %d: %q flags=%d", i, v, flags)
		}
	}
	// Delete every third, verify the rest intact.
	for i := 0; i < n; i += 3 {
		if err := c.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		_, _, _, err := c.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if i%3 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%3 != 0 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if st := s.Stats(); st.CurrItems != n-(n+2)/3 {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
}

func TestGetAppendReuse(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	c.Set([]byte("k"), []byte("value"), 0, 0)
	buf := make([]byte, 0, 64)
	out, _, _, err := c.GetAppend(buf, []byte("k"))
	if err != nil || string(out) != "value" {
		t.Fatalf("GetAppend = %q, %v", out, err)
	}
	out2, _, _, _ := c.GetAppend(out[:0], []byte("k"))
	if string(out2) != "value" {
		t.Fatalf("reused GetAppend = %q", out2)
	}
}

func TestCaptureProtectsAgainstMutation(t *testing.T) {
	// The §3.4 idiom: after the call returns, mutating the caller's
	// buffers must not affect the stored data. (During-call mutation is
	// exercised by the race-stress tests.)
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	key := []byte("mutable-key")
	val := []byte("mutable-val")
	c.Set(key, val, 0, 0)
	key2 := append([]byte(nil), key...)
	val[0] = 'X'
	key[0] = 'X'
	v, _, _, err := c.Get(key2)
	if err != nil || string(v) != "mutable-val" {
		t.Fatalf("stored data affected by client mutation: %q, %v", v, err)
	}
}

// Property: Increment/Decrement agree with unsigned 64-bit arithmetic
// (wrap on increment, floor at zero on decrement) for any stored value
// and delta.
func TestQuickIncrDecrArithmetic(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	k := []byte("n")
	f := func(start, delta uint64, decr bool) bool {
		if err := c.Set(k, []byte(strconv.FormatUint(start, 10)), 0, 0); err != nil {
			return false
		}
		var got uint64
		var err error
		var want uint64
		if decr {
			got, err = c.Decrement(k, delta)
			if delta > start {
				want = 0
			} else {
				want = start - delta
			}
		} else {
			got, err = c.Increment(k, delta)
			want = start + delta // wraps
		}
		if err != nil || got != want {
			return false
		}
		v, _, _, err := c.Get(k)
		return err == nil && string(v) == strconv.FormatUint(want, 10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: absExpiry implements memcached's three-range semantics.
func TestQuickAbsExpiry(t *testing.T) {
	s, c := newStore(t, 1<<21, Options{HashPower: 8, NumItemLocks: 16})
	now := int64(1_000_000)
	s.SetClock(func() int64 { return now })
	f := func(exp int64) bool {
		abs := c.absExpiry(exp)
		switch {
		case exp == 0:
			return abs == 0
		case exp < 0:
			return abs < now
		case exp <= relativeExpiryCutoff:
			return abs == now+exp
		default:
			return abs == exp
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
