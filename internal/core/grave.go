package core

import "runtime"

// Safe memory reclamation for the lock-free read path.
//
// An optimistic reader walks bucket chains without any lock, so it can
// hold an item offset after a concurrent writer has unlinked the item and
// dropped the last reference. If the item's memory were freed (and
// possibly reallocated) at that instant, the reader's subsequent loads —
// and worse, its pinning CAS on the refcount word — would hit recycled
// memory. Seqlock validation rejects the *values* such a reader produces,
// but cannot un-write a CAS.
//
// The fix is a quarantine. Items whose refcount drops to zero are not
// freed; they are pushed (lock-free, Treiber style) onto a heap-resident
// "grave" list, linked through their now-unused lruNext word with raw heap
// offsets. Quarantined items keep their bytes: a late reader that reaches
// one sees a well-formed item with refcount zero, fails its increfIfLive,
// and retries — it never writes to it.
//
// Reapers free the quarantine in batches. Each optimistic reader owns one
// announcement slot in a shared array: an epoch word it bumps to odd on
// entering a read section and to even on leaving (both seq-cst stores). A
// reaper atomically steals the whole grave list, then, for every slot
// whose epoch it observes odd, waits until the epoch *changes* — one
// transition proves the section that might hold stolen items has exited.
// Readers that start sections after the steal cannot reach stolen items:
// every stolen item was unlinked (an atomic chain store) before it was
// pushed, which happened before the steal, so a chain walk that begins
// after the steal — its entry store and loads are seq-cst too — reads the
// post-unlink chains. After the slot scan the reaper frees the batch into
// its own allocator cache. Multiple concurrent reapers steal disjoint
// batches and need no further coordination.
//
// Reapers never block readers and readers never wait for reapers, so the
// scheme cannot deadlock — but a Ctx must never trigger a reap from
// inside its own announced read section (it would wait on itself). The
// read path therefore closes its section before dropping item references.

const (
	readerSlotOwner = 0 // CAS-claimed by one Ctx; 0 = free
	readerSlotEpoch = 8 // odd while the owner is inside a read section
	// readerSlotSize pads each slot to two cache lines so concurrent
	// readers' announcements do not false-share.
	readerSlotSize = 128
)

// graveNext is the item word that links the quarantine list. lruNext is
// free for reuse: an item reaches the grave only after lruUnlink cleared
// it. The link is a raw heap offset, not a pptr — the list head lives in
// the config block and items move between lists, so self-relative encoding
// buys nothing; 0 terminates (offset 0 is allocator metadata, never an
// item).
const graveNext = itLRUNext

// graveReapThreshold is how many quarantined items accumulate before the
// thread that pushes one also reaps. Maintenance passes reap regardless.
const graveReapThreshold = 128

func (s *Store) readerSlotOff(i uint64) uint64 {
	return s.readers + i*readerSlotSize
}

// claimReaderSlot finds a free announcement slot for this context. Best
// effort: with every slot taken the context stays valid but never reads
// optimistically.
func (c *Ctx) claimReaderSlot() {
	s := c.s
	for i := uint64(0); i < s.numReaders; i++ {
		slot := s.readerSlotOff(i)
		if s.H.CAS64(slot+readerSlotOwner, 0, c.owner) {
			c.rdSlot = slot
			return
		}
	}
}

// releaseReaderSlot returns the context's slot. Idempotent.
func (c *Ctx) releaseReaderSlot() {
	if c.rdSlot == 0 {
		return
	}
	c.s.H.AtomicStore64(c.rdSlot+readerSlotOwner, 0)
	c.rdSlot = 0
}

// beginRead announces an optimistic read section (epoch even → odd),
// reporting success. The announcement is guarded like endRead's close: the
// slot must still record this context as owner, and the epoch is advanced
// by CAS from the even value observed — never a blind store. A resumed
// zombie whose expired slot was reclaimed by a new context would otherwise
// overwrite the new owner's odd epoch with an even value (a stale load+1),
// convincing a reaper the live section exited and freeing stolen items
// still being dereferenced. On ownership loss the context abandons the
// slot and tries to claim a fresh one; the caller must serve this read
// through the locked path (or retry) when beginRead reports failure.
func (c *Ctx) beginRead() bool {
	h := c.s.H
	if h.AtomicLoad64(c.rdSlot+readerSlotOwner) != c.owner {
		c.rdSlot = 0 // expired and possibly reclaimed: no longer ours
		c.claimReaderSlot()
		return false
	}
	e := h.AtomicLoad64(c.rdSlot + readerSlotEpoch)
	if e&1 != 0 || !h.CAS64(c.rdSlot+readerSlotEpoch, e, e+1) {
		return false
	}
	c.rdEpoch = e + 1
	return true
}

// endRead closes the section (epoch odd → even). The close is a CAS
// against the epoch this context announced: if a reaper expired the
// announcement in the meantime (it judged this owner dead — e.g. a
// watchdog-reaped zombie thread resuming here), the CAS fails and the
// slot — possibly reclaimed by another context by now — is left alone.
func (c *Ctx) endRead() {
	c.s.H.CAS64(c.rdSlot+readerSlotEpoch, c.rdEpoch, c.rdEpoch+1)
}

// gravePush quarantines an item whose refcount reached zero. Lock-free;
// safe to call under any lock (a triggered reap waits only on reader
// epochs, and readers never block on locks inside a section).
func (c *Ctx) gravePush(it uint64) {
	s := c.s
	h := s.H
	for {
		head := h.AtomicLoad64(s.cfg + cfgGraveHead)
		h.AtomicStore64(it+graveNext, head)
		if h.CAS64(s.cfg+cfgGraveHead, head, it) {
			break
		}
	}
	if h.Add64(s.cfg+cfgGraveLen, 1) >= graveReapThreshold {
		c.reapGrave()
	}
}

// reapGrave steals the current quarantine batch, waits out every announced
// reader section, and frees the batch. Returns how many items it freed.
func (c *Ctx) reapGrave() int {
	s := c.s
	h := s.H
	head := h.Swap64(s.cfg+cfgGraveHead, 0)
	if head == 0 {
		return 0
	}
	n := uint64(0)
	for it := head; it != 0; it = h.AtomicLoad64(it + graveNext) {
		n++
	}
	h.Add64(s.cfg+cfgGraveLen, ^(n - 1)) // subtract n

	for i := uint64(0); i < s.numReaders; i++ {
		slot := s.readerSlotOff(i)
		e := h.AtomicLoad64(slot + readerSlotEpoch)
		if e&1 == 0 {
			continue
		}
		// Any change of the epoch word proves at least one section exit
		// since the steal; sections announced later cannot reach the
		// stolen items (see the file comment).
		//
		// A reader that died inside its section never retires the epoch,
		// which used to stall reapers forever. Announcements are tied to
		// owner tokens, so when a liveness oracle is installed the reaper
		// expires dead owners' announcements itself: a dead thread cannot
		// be dereferencing stolen items.
		for h.AtomicLoad64(slot+readerSlotEpoch) == e {
			if s.expireIfDead(slot, e) {
				break
			}
			runtime.Gosched()
		}
	}

	freed := 0
	for it := head; it != 0; {
		next := h.AtomicLoad64(it + graveNext)
		if err := c.cache.Free(it); err != nil {
			// Freeing a quarantined block can only fail if the heap is
			// corrupt; that is a library crash, exactly as in decref.
			panic(err)
		}
		it = next
		freed++
	}
	return freed
}

// expireIfDead retires the announcement in slot — epoch e, observed odd —
// if the installed liveness oracle reports its owner dead, and frees the
// slot for reuse. Returns true when the epoch word is (or concurrently
// became) no longer e, i.e. the waiter may stop waiting.
func (s *Store) expireIfDead(slot, e uint64) bool {
	owner := s.H.AtomicLoad64(slot + readerSlotOwner)
	if !s.ownerIsDead(owner) {
		return false
	}
	if s.H.CAS64(slot+readerSlotEpoch, e, e+1) {
		s.H.CAS64(slot+readerSlotOwner, owner, 0)
	}
	// Even on CAS failure the epoch changed, which is all the caller needs.
	return true
}

// GraveLen reports how many items are currently quarantined (test and
// stats visibility).
func (s *Store) GraveLen() uint64 {
	return s.H.AtomicLoad64(s.cfg + cfgGraveLen)
}
