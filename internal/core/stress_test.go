package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
)

// TestQuickModelAgainstMap drives the store with random operation sequences
// and mirrors every operation on a plain Go map; any divergence in results
// or final contents is a bug.
func TestQuickModelAgainstMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, c := newStore(t, 1<<22, Options{HashPower: 6, NumItemLocks: 8, FixedSize: true})
		model := map[string]string{}
		keys := make([]string, 20)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", i)
		}
		for op := 0; op < 400; op++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(6) {
			case 0, 1: // set
				v := fmt.Sprintf("val-%d", rng.Intn(1000))
				if err := c.Set([]byte(k), []byte(v), 0, 0); err != nil {
					return false
				}
				model[k] = v
			case 2: // get
				v, _, _, err := c.Get([]byte(k))
				want, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				if ok && string(v) != want {
					return false
				}
			case 3: // delete
				err := c.Delete([]byte(k))
				_, ok := model[k]
				if ok != (err == nil) {
					return false
				}
				delete(model, k)
			case 4: // add
				v := fmt.Sprintf("add-%d", rng.Intn(1000))
				err := c.Add([]byte(k), []byte(v), 0, 0)
				if _, ok := model[k]; ok {
					if !errors.Is(err, ErrExists) {
						return false
					}
				} else {
					if err != nil {
						return false
					}
					model[k] = v
				}
			case 5: // append
				err := c.Append([]byte(k), []byte("+"))
				if cur, ok := model[k]; ok {
					if err != nil {
						return false
					}
					model[k] = cur + "+"
				} else if !errors.Is(err, ErrNotFound) {
					return false
				}
			}
		}
		// Final contents must agree exactly.
		for k, want := range model {
			v, _, _, err := c.Get([]byte(k))
			if err != nil || string(v) != want {
				return false
			}
		}
		st := c.Store().Stats()
		return st.CurrItems == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentMixedOps hammers the store from many goroutines, each with
// its own Ctx (as client threads have), with overlapping key ranges. Run
// with -race to catch synchronization bugs.
func TestConcurrentMixedOps(t *testing.T) {
	s, _ := newStore(t, 1<<24, Options{HashPower: 10, NumItemLocks: 64, FixedSize: true})
	const workers = 8
	const iters = 3000
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.NewCtx(uint64(id + 1))
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < iters; i++ {
				k := []byte(fmt.Sprintf("key-%03d", rng.Intn(200)))
				switch rng.Intn(5) {
				case 0, 1:
					v := bytes.Repeat([]byte{byte(id + 65)}, 8+rng.Intn(120))
					if err := c.Set(k, v, uint32(id), 0); err != nil {
						fail <- fmt.Sprintf("set: %v", err)
						return
					}
				case 2:
					v, flags, _, err := c.Get(k)
					if err == nil {
						// The value must be internally consistent: all
						// bytes from one writer, flags matching.
						for _, b := range v {
							if b != v[0] {
								fail <- fmt.Sprintf("torn value %q", v)
								return
							}
						}
						if len(v) > 0 && flags != uint32(v[0]-65) {
							fail <- fmt.Sprintf("flags %d for writer %c", flags, v[0])
							return
						}
					} else if !errors.Is(err, ErrNotFound) {
						fail <- fmt.Sprintf("get: %v", err)
						return
					}
				case 3:
					if err := c.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
						fail <- fmt.Sprintf("delete: %v", err)
						return
					}
				case 4:
					nk := []byte(fmt.Sprintf("ctr-%03d", rng.Intn(20)))
					_, err := c.Increment(nk, 1)
					if errors.Is(err, ErrNotFound) {
						c.Add(nk, []byte("0"), 0, 0)
					} else if err != nil && !errors.Is(err, ErrNotNumeric) {
						fail <- fmt.Sprintf("incr: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	// The store must still be fully functional and self-consistent.
	c := s.NewCtx(99)
	if err := c.Set([]byte("final"), []byte("check"), 0, 0); err != nil {
		t.Fatal(err)
	}
	v, _, _, err := c.Get([]byte("final"))
	if err != nil || string(v) != "check" {
		t.Fatalf("post-stress get = %q, %v", v, err)
	}
}

// TestConcurrentResizeAndOps runs the resizer while clients operate.
func TestConcurrentResizeAndOps(t *testing.T) {
	s, _ := newStore(t, 1<<24, Options{HashPower: 6, NumItemLocks: 16})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.NewCtx(uint64(id + 1))
			defer c.Close()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := []byte(fmt.Sprintf("w%d-key-%d", id, i%500))
				c.Set(k, []byte("v"), 0, 0)
				c.Get(k)
				i++
			}
		}(w)
	}
	m := s.NewCtx(77)
	for p := uint(7); p <= 10; p++ {
		if err := s.ResizeTo(m, p); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// Everything inserted must still be reachable.
	c := s.NewCtx(88)
	for id := 0; id < 4; id++ {
		if _, _, _, err := c.Get([]byte(fmt.Sprintf("w%d-key-0", id))); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatalf("post-resize get: %v", err)
		}
	}
}

// TestPersistenceRestart exercises the paper's restart path: flush on
// shutdown, reload the backing file, attach, and find every entry intact —
// "this reload and reuse adds no extra code to the system."
func TestPersistenceRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.heap")
	h := shm.New(1 << 22)
	a, _ := ralloc.Format(h)
	s, err := Create(a, Options{HashPower: 8, NumItemLocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	c := s.NewCtx(1)
	const n = 500
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("value-%d", i)), uint32(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Close() // flush thread caches, as an orderly shutdown does
	if err := h.Flush(path); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new mapping of the file.
	h2, err := shm.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ralloc.Open(h2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Attach(a2)
	if err != nil {
		t.Fatal(err)
	}
	c2 := s2.NewCtx(1)
	for i := 0; i < n; i++ {
		v, flags, _, err := c2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil {
			t.Fatalf("key %d after restart: %v", i, err)
		}
		if string(v) != fmt.Sprintf("value-%d", i) || flags != uint32(i) {
			t.Fatalf("key %d after restart = %q flags=%d", i, v, flags)
		}
	}
	// And the restarted store keeps working: new writes, deletes, stats.
	if err := c2.Set([]byte("new-after-restart"), []byte("yes"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := c2.Delete([]byte("key-0")); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.CurrItems != n { // n - 1 deleted + 1 added
		t.Fatalf("CurrItems after restart ops = %d", st.CurrItems)
	}
}

// TestLRUOrdering verifies that eviction removes the least recently used
// items first, honouring recent gets (bump) across the bump interval.
func TestLRUOrdering(t *testing.T) {
	h := shm.New(1 << 21)
	a, _ := ralloc.Format(h)
	// One LRU list makes ordering deterministic.
	s, err := Create(a, Options{HashPower: 8, NumItemLocks: 16, NumLRUs: 1, MemLimit: 1 << 20, FixedSize: true})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	c := s.NewCtx(1)
	val := make([]byte, 512)
	for i := 0; i < 100; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%02d", i)), val, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key-00 much later so the LRU bump threshold passes and it
	// moves to the head of the (single) list.
	now += 120
	if _, _, _, err := c.Get([]byte("key-00")); err != nil {
		t.Fatal(err)
	}
	// Evict exactly ten items: they must be the stale tail, key-01..10,
	// never the freshly bumped key-00.
	if n := c.evictSome(10); n != 10 {
		t.Fatalf("evictSome(10) = %d", n)
	}
	if _, _, _, err := c.Get([]byte("key-00")); err != nil {
		t.Fatalf("recently used key evicted before stale ones: %v", err)
	}
	for i := 1; i <= 10; i++ {
		if _, _, _, err := c.Get([]byte(fmt.Sprintf("key-%02d", i))); !errors.Is(err, ErrNotFound) {
			t.Fatalf("stale key-%02d should have been evicted", i)
		}
	}
	for i := 11; i < 100; i++ {
		if _, _, _, err := c.Get([]byte(fmt.Sprintf("key-%02d", i))); err != nil {
			t.Fatalf("key-%02d wrongly evicted: %v", i, err)
		}
	}
	if st := s.Stats(); st.Evictions != 10 {
		t.Fatalf("Evictions stat = %d", st.Evictions)
	}
}

func BenchmarkCoreGet128(b *testing.B) { benchCoreGet(b, 128) }
func BenchmarkCoreGet5K(b *testing.B)  { benchCoreGet(b, 5120) }
func BenchmarkCoreSet128(b *testing.B) { benchCoreSet(b, 128) }
func BenchmarkCoreSet5K(b *testing.B)  { benchCoreSet(b, 5120) }

func benchCoreGet(b *testing.B, valSize int) {
	s, c := newStore(b, 1<<26, Options{HashPower: 14, NumItemLocks: 1024, FixedSize: true})
	_ = s
	val := bytes.Repeat([]byte{'v'}, valSize)
	const nkeys = 4096
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i))
		if err := c.Set(keys[i], val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, _, _, err = c.GetAppend(buf[:0], keys[i%nkeys])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchCoreSet(b *testing.B, valSize int) {
	s, c := newStore(b, 1<<26, Options{HashPower: 14, NumItemLocks: 1024, FixedSize: true})
	_ = s
	val := bytes.Repeat([]byte{'v'}, valSize)
	const nkeys = 4096
	keys := make([][]byte, nkeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Set(keys[i%nkeys], val, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}
