package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestExpandBasic(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	const n = 1000
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("v%d", i)), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.StartExpand(c, 10); err != nil {
		t.Fatal(err)
	}
	if !s.Expanding() {
		t.Fatal("should be expanding")
	}
	// Every key must be reachable at every stage of the migration.
	for s.Expanding() {
		moved, err := s.ExpandStep(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		if moved == 0 && s.Expanding() {
			t.Fatal("no progress while still expanding")
		}
		for i := 0; i < n; i += 97 {
			k := []byte(fmt.Sprintf("key-%d", i))
			if _, _, _, err := c.Get(k); err != nil {
				t.Fatalf("key %d lost mid-expansion: %v", i, err)
			}
		}
	}
	if s.HashPower() != 10 {
		t.Fatalf("HashPower = %d", s.HashPower())
	}
	for i := 0; i < n; i++ {
		v, _, _, err := c.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after expansion: %q, %v", i, v, err)
		}
	}
	if st := s.Stats(); st.CurrItems != n {
		t.Fatalf("CurrItems = %d", st.CurrItems)
	}
}

func TestExpandValidation(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 6, NumItemLocks: 16})
	if err := s.StartExpand(c, 31); err == nil {
		t.Fatal("absurd power should fail")
	}
	if err := s.StartExpand(c, 6); err == nil {
		t.Fatal("non-growing expansion should fail")
	}
	if err := s.StartExpand(c, 3); err == nil {
		t.Fatal("below lock stripe should fail")
	}
	if err := s.StartExpand(c, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.StartExpand(c, 9); err == nil {
		t.Fatal("double expansion should fail")
	}
	if err := s.ResizeTo(c, 9); err == nil {
		t.Fatal("stop-the-world resize during expansion should fail")
	}
	// No expansion: ExpandStep is a no-op after completion.
	for s.Expanding() {
		if _, err := s.ExpandStep(c, 64); err != nil {
			t.Fatal(err)
		}
	}
	if moved, err := s.ExpandStep(c, 64); err != nil || moved != 0 {
		t.Fatalf("step after completion = %d, %v", moved, err)
	}
}

func TestExpandMutationsDuringMigration(t *testing.T) {
	// Sets, deletes, and overwrites interleaved with migration steps:
	// routing must stay coherent whichever table currently owns a key.
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	model := map[string]string{}
	put := func(k, v string) {
		if err := c.Set([]byte(k), []byte(v), 0, 0); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	del := func(k string) {
		err := c.Delete([]byte(k))
		if _, ok := model[k]; ok != (err == nil) {
			t.Fatalf("delete %s: %v (model %v)", k, err, ok)
		}
		delete(model, k)
	}
	for i := 0; i < 500; i++ {
		put(fmt.Sprintf("key-%d", i), fmt.Sprintf("v%d", i))
	}
	if err := s.StartExpand(c, 9); err != nil {
		t.Fatal(err)
	}
	step := 0
	for s.Expanding() {
		if _, err := s.ExpandStep(c, 2); err != nil {
			t.Fatal(err)
		}
		put(fmt.Sprintf("new-%d", step), "fresh")
		put(fmt.Sprintf("key-%d", step%500), fmt.Sprintf("updated-%d", step))
		del(fmt.Sprintf("key-%d", (step*7+3)%500))
		step++
	}
	for k, want := range model {
		v, _, _, err := c.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("key %s after expansion = %q, %v (want %q)", k, v, err, want)
		}
	}
	if st := s.Stats(); st.CurrItems != uint64(len(model)) {
		t.Fatalf("CurrItems = %d, model %d", st.CurrItems, len(model))
	}
}

func TestExpandConcurrentClients(t *testing.T) {
	s, setup := newStore(t, 1<<24, Options{HashPower: 7, NumItemLocks: 32})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := setup.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("stable"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := s.NewCtx(uint64(id + 10))
			defer c.Close()
			i := 0
			for !stop.Load() {
				k := []byte(fmt.Sprintf("key-%d", (id*511+i)%n))
				if i%4 == 0 {
					if err := c.Set(k, []byte("stable"), 0, 0); err != nil {
						errCh <- err
						return
					}
				} else {
					if _, _, _, err := c.Get(k); err != nil && !errors.Is(err, ErrNotFound) {
						errCh <- err
						return
					}
				}
				i++
			}
		}(w)
	}
	mctx := s.NewCtx(99)
	if err := s.StartExpand(mctx, 11); err != nil {
		t.Fatal(err)
	}
	for s.Expanding() {
		if _, err := s.ExpandStep(mctx, 8); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// All keys present; writers only ever Set existing keys.
	for i := 0; i < n; i++ {
		if _, _, _, err := setup.Get([]byte(fmt.Sprintf("key-%d", i))); err != nil {
			t.Fatalf("key %d lost: %v", i, err)
		}
	}
	if s.HashPower() != 11 {
		t.Fatalf("HashPower = %d", s.HashPower())
	}
}

func TestMaintainerDrivesExpansion(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	m := s.NewMaintainer(2)
	m.ExpandBatch = 16
	for i := 0; i < 200; i++ { // load factor 200/64 > 1.5
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, 0)
	}
	r := m.RunOnce()
	if !r.Resized || !s.Expanding() {
		t.Fatalf("maintainer should start expansion: %+v expanding=%v", r, s.Expanding())
	}
	for i := 0; i < 100 && s.Expanding(); i++ {
		m.RunOnce()
	}
	if s.Expanding() {
		t.Fatal("expansion never finished")
	}
	if s.HashPower() != 7 {
		t.Fatalf("HashPower = %d", s.HashPower())
	}
	for i := 0; i < 200; i++ {
		if _, _, _, err := c.Get([]byte(fmt.Sprintf("key-%d", i))); err != nil {
			t.Fatalf("key %d: %v", i, err)
		}
	}
}

func TestFlushAndSweepDuringExpansion(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	for i := 0; i < 300; i++ {
		exp := int64(0)
		if i%3 == 0 {
			exp = 10
		}
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, exp)
	}
	if err := s.StartExpand(c, 9); err != nil {
		t.Fatal(err)
	}
	s.ExpandStep(c, 20) // partially migrated
	now = 2000
	if removed := c.SweepExpired(); removed != 100 {
		t.Fatalf("sweep during expansion removed %d, want 100", removed)
	}
	c.FlushAll()
	if st := s.Stats(); st.CurrItems != 0 {
		t.Fatalf("flush during expansion left %d items", st.CurrItems)
	}
	for s.Expanding() {
		s.ExpandStep(c, 64)
	}
	if err := c.Set([]byte("after"), []byte("ok"), 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestExpansionSurvivesCheckpointReload(t *testing.T) {
	// A heap image written mid-expansion must reopen with routing intact.
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	for i := 0; i < 400; i++ {
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("v%d", i)), 0, 0)
	}
	if err := s.StartExpand(c, 9); err != nil {
		t.Fatal(err)
	}
	s.ExpandStep(c, 13)

	// Reattach (same heap, new handle — like a process restart without
	// even flushing to disk).
	s2, err := Attach(s.A)
	if err != nil {
		t.Fatal(err)
	}
	s2.ResetGate()
	c2 := s2.NewCtx(50)
	if !s2.Expanding() {
		t.Fatal("expansion state lost on reattach")
	}
	for i := 0; i < 400; i++ {
		v, _, _, err := c2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d after reattach: %q, %v", i, v, err)
		}
	}
	for s2.Expanding() {
		if _, err := s2.ExpandStep(c2, 64); err != nil {
			t.Fatal(err)
		}
	}
	if s2.HashPower() != 9 {
		t.Fatalf("HashPower = %d", s2.HashPower())
	}
}

// TestQuickModelWithExpansion drives random operations with random
// expansion steps interleaved, mirroring everything on a Go map — the
// model check for the riskiest routing code in the store.
func TestQuickModelWithExpansion(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s, c := newStore(t, 1<<23, Options{HashPower: 5, NumItemLocks: 8})
		model := map[string]string{}
		expandPower := uint(6)
		for op := 0; op < 600; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				k := fmt.Sprintf("key-%02d", rng.Intn(60))
				v := fmt.Sprintf("val-%d", rng.Intn(1000))
				if err := c.Set([]byte(k), []byte(v), 0, 0); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			case 4, 5, 6:
				k := fmt.Sprintf("key-%02d", rng.Intn(60))
				v, _, _, err := c.Get([]byte(k))
				want, ok := model[k]
				if ok != (err == nil) || (ok && string(v) != want) {
					t.Fatalf("seed %d op %d: get %s = %q,%v want %q,%v", seed, op, k, v, err, want, ok)
				}
			case 7:
				k := fmt.Sprintf("key-%02d", rng.Intn(60))
				err := c.Delete([]byte(k))
				if _, ok := model[k]; ok != (err == nil) {
					t.Fatalf("seed %d: delete %s = %v", seed, k, err)
				}
				delete(model, k)
			case 8:
				if !s.Expanding() && expandPower <= 9 {
					if err := s.StartExpand(c, expandPower); err != nil {
						t.Fatal(err)
					}
					expandPower++
				}
			case 9:
				if s.Expanding() {
					if _, err := s.ExpandStep(c, 1+rng.Intn(4)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for s.Expanding() {
			s.ExpandStep(c, 64)
		}
		for k, want := range model {
			v, _, _, err := c.Get([]byte(k))
			if err != nil || string(v) != want {
				t.Fatalf("seed %d final: %s = %q,%v want %q", seed, k, v, err, want)
			}
		}
		if st := s.Stats(); st.CurrItems != uint64(len(model)) {
			t.Fatalf("seed %d: CurrItems %d, model %d", seed, st.CurrItems, len(model))
		}
	}
}
