package core

import (
	"fmt"
	"testing"
)

func TestForEachVisitsAllLiveEntries(t *testing.T) {
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := fmt.Sprintf("val-%03d", i)
		exp := int64(0)
		if i%4 == 0 {
			exp = 10 // will be expired below
		}
		if err := c.Set([]byte(k), []byte(v), uint32(i), exp); err != nil {
			t.Fatal(err)
		}
		if i%4 != 0 {
			want[k] = v
		}
	}
	now = 2000 // the exp=10 quarter is now dead

	got := map[string]string{}
	visited := c.ForEach(func(e *Entry) bool {
		got[string(e.Key)] = string(e.Value) // must copy: slices are reused
		if e.CAS == 0 {
			t.Error("entry with zero CAS")
		}
		return true
	})
	if visited != len(want) || len(got) != len(want) {
		t.Fatalf("visited %d, collected %d, want %d", visited, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %q = %q, want %q", k, got[k], v)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	for i := 0; i < 100; i++ {
		c.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"), 0, 0)
	}
	n := 0
	c.ForEach(func(*Entry) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestForEachDuringExpansion(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 6, NumItemLocks: 16})
	for i := 0; i < 300; i++ {
		c.Set([]byte(fmt.Sprintf("key-%d", i)), []byte("v"), 0, 0)
	}
	if err := s.StartExpand(c, 9); err != nil {
		t.Fatal(err)
	}
	s.ExpandStep(c, 17) // partially migrated: both tables live
	seen := map[string]bool{}
	c.ForEach(func(e *Entry) bool {
		if seen[string(e.Key)] {
			t.Fatalf("key %q visited twice during expansion", e.Key)
		}
		seen[string(e.Key)] = true
		return true
	})
	if len(seen) != 300 {
		t.Fatalf("visited %d of 300 during expansion", len(seen))
	}
}

func TestLRULengthsBalance(t *testing.T) {
	s, c := newStore(t, 1<<23, Options{HashPower: 10, NumItemLocks: 64, NumLRUs: 8})
	const n = 4000
	for i := 0; i < n; i++ {
		if err := c.Set([]byte(fmt.Sprintf("key-%05d", i)), []byte("v"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	lens := c.LRULengths()
	if uint64(len(lens)) != s.NumLRUs() {
		t.Fatalf("lists = %d", len(lens))
	}
	total := 0
	for idx, l := range lens {
		total += l
		// Hash partitioning should spread items within a few x of fair.
		fair := n / len(lens)
		if l < fair/3 || l > fair*3 {
			t.Fatalf("list %d holds %d items (fair share %d): unbalanced", idx, l, fair)
		}
	}
	if total != n {
		t.Fatalf("lists hold %d items, want %d", total, n)
	}
}
