package core

// Batched dispatch (ISSUE 6 tentpole). A batch carries up to a pipeline's
// worth of heterogeneous operations across the gate in one admission: the
// trampoline amplifies rights once, the dispatcher below runs every
// operation at gate depth 2 (enterOp/exitOp are reentrant), and the gate
// count returns to zero only when the whole batch retires. Crossings-per-op
// falls as 1/k with batch size k, the figure of merit the paper's "calls
// are cheap enough to replace IPC" premise rests on.
//
// Error isolation is per operation: a miss, a CAS conflict, or a malformed
// op lands in its own BatchResult.Err and the dispatcher moves on — one
// failed operation never poisons its siblings. A *crash* mid-batch (the
// ops.batch.mid_dispatch fault point) is different: it unwinds through the
// trampoline like any in-library fault, leaves the gate count held, and is
// repaired by the normal quarantine→repair→resume cycle; operations already
// executed are durable, the rest never ran.

import (
	"fmt"

	"plibmc/internal/faultpoint"
)

// BatchCode selects the operation one BatchOp performs.
type BatchCode uint8

const (
	BatchGet BatchCode = iota
	BatchGAT           // get-and-touch: Get + expiry update (Exptime)
	BatchSet
	BatchAdd
	BatchReplace
	BatchCAS
	BatchAppend
	BatchPrepend
	BatchDelete
	BatchIncr
	BatchDecr
	BatchTouch
	// Migration ops (live resharding). BatchExport is a read that does not
	// bump the LRU and additionally returns the entry's absolute expiry;
	// BatchInstall is an unconditional store that preserves an existing
	// CAS generation and takes Exptime as already-absolute. Neither is
	// reachable from the wire protocol — only the in-process migrator
	// issues them.
	BatchExport
	BatchInstall
)

// BatchOp is one operation in a batch. Which fields matter depends on Code:
// every op uses Key; stores use Value/Flags/Exptime (CAS additionally for
// BatchCAS); Append/Prepend use Value; Incr/Decr use Delta; Touch and GAT
// use Exptime.
type BatchOp struct {
	Code    BatchCode
	Key     []byte
	Value   []byte
	Flags   uint32
	Exptime int64
	Delta   uint64
	CAS     uint64
}

// BatchResult is one operation's outcome, index-aligned with the ops slice.
// Err carries the operation's own failure (ErrNotFound, ErrCASMismatch, …)
// without affecting its siblings.
type BatchResult struct {
	Value   []byte // retrieved value (Get/GAT hits)
	Flags   uint32
	CAS     uint64
	Num     uint64 // new counter value (Incr/Decr)
	Exptime int64  // absolute expiry (Export hits; 0 = never)
	Err     error
}

// fpBatchMidDispatch crashes between two operations of a batch: the prefix
// has committed, the suffix never runs, and the gate count is held — the
// state online recovery must repair while sibling clients keep serving.
var fpBatchMidDispatch = faultpoint.New("ops.batch.mid_dispatch")

// ExecBatch executes ops in order under a single gate admission and returns
// one result per op. Nested operations run at gate depth 2, so the whole
// batch costs one admission and (through the session layer) one trampoline
// crossing; one latency sample of class LatBatch covers the batch.
func (c *Ctx) ExecBatch(ops []BatchOp) []BatchResult {
	res := make([]BatchResult, len(ops))
	if len(ops) == 0 {
		return res
	}
	defer c.opEnd(LatBatch, c.opBegin())
	// Defer stat publication for the whole batch: counters accumulate in the
	// context and land in the shared slots as one add per touched counter
	// when the batch retires, instead of ~3 atomic adds per operation.
	c.statDefer = true
	defer c.statFlushDeferred()
	c.stat(statBatches, 1)
	c.stat(statBatchedOps, int64(len(ops)))
	// All retrieved values share one backing buffer, allocated fresh per
	// batch (results escape to the caller) but sized from the last batch's
	// high-water mark: a 64-key MGet pays one allocation instead of 64.
	// Starts are recorded during dispatch and sliced out afterwards — an
	// append may relocate the buffer, so sub-slices can only be taken once
	// the batch is done growing it.
	vbuf := make([]byte, 0, c.batchVBufCap)
	if cap(c.batchStarts) < len(ops) {
		c.batchStarts = make([]int, len(ops))
	}
	starts := c.batchStarts[:len(ops)]
	for i := range ops {
		if i > 0 {
			fpBatchMidDispatch.Maybe()
			// Cooperative abort (gate hardening): between operations the
			// dispatcher is at a clean point — no locks held, the prefix
			// durable — so an over-budget batch can stop here instead of
			// escalating to a reap-and-repair cycle.
			if c.AbortCheck != nil && c.AbortCheck() {
				for j := i; j < len(ops); j++ {
					res[j].Err = ErrCallAborted
				}
				break
			}
		}
		starts[i] = -1
		vbuf = c.execBatchOne(&ops[i], &res[i], vbuf, &starts[i])
	}
	if cap(vbuf) > c.batchVBufCap {
		c.batchVBufCap = cap(vbuf)
	}
	end := len(vbuf)
	for i := len(ops) - 1; i >= 0; i-- {
		if st := starts[i]; st >= 0 {
			if res[i].Err == nil && end > st {
				res[i].Value = vbuf[st:end:end]
			}
			end = st
		}
	}
	return res
}

// execBatchOne dispatches one operation into the ordinary op
// implementations; their own enterOp calls nest inside the batch's.
// Retrieval ops append their value to vbuf and record the start offset in
// *start; every other op leaves *start at -1. Returns the grown buffer.
func (c *Ctx) execBatchOne(op *BatchOp, r *BatchResult, vbuf []byte, start *int) []byte {
	switch op.Code {
	case BatchGet:
		*start = len(vbuf)
		vbuf, r.Flags, r.CAS, r.Err = c.GetAppend(vbuf, op.Key)
	case BatchGAT:
		*start = len(vbuf)
		vbuf, r.Flags, r.CAS, r.Err = c.GetAndTouchAppend(vbuf, op.Key, op.Exptime)
	case BatchSet:
		r.Err = c.Set(op.Key, op.Value, op.Flags, op.Exptime)
	case BatchAdd:
		r.Err = c.Add(op.Key, op.Value, op.Flags, op.Exptime)
	case BatchReplace:
		r.Err = c.Replace(op.Key, op.Value, op.Flags, op.Exptime)
	case BatchCAS:
		r.Err = c.CAS(op.Key, op.Value, op.Flags, op.Exptime, op.CAS)
	case BatchAppend:
		r.Err = c.Append(op.Key, op.Value)
	case BatchPrepend:
		r.Err = c.Prepend(op.Key, op.Value)
	case BatchDelete:
		r.Err = c.Delete(op.Key)
	case BatchIncr:
		r.Num, r.Err = c.Increment(op.Key, op.Delta)
	case BatchDecr:
		r.Num, r.Err = c.Decrement(op.Key, op.Delta)
	case BatchTouch:
		r.Err = c.Touch(op.Key, op.Exptime)
	case BatchExport:
		*start = len(vbuf)
		vbuf, r.Flags, r.CAS, r.Exptime, r.Err = c.ExportAppend(vbuf, op.Key)
	case BatchInstall:
		r.Err = c.Install(op.Key, op.Value, op.Flags, op.Exptime, op.CAS)
	default:
		r.Err = fmt.Errorf("core: unknown batch op code %d", op.Code)
	}
	return vbuf
}
