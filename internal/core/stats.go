package core

// Scattered statistics.
//
// The paper found that the single lock protecting request statistics became
// a bottleneck once clients execute operations themselves, and scattered
// the statistics across the slots of a shared array: "most updates are now
// made to a slot that is not being used concurrently. Statistics-retrieving
// calls must scan the whole array." Each context updates its own slot with
// atomic adds; Stats() sums every slot. Per-slot values may be negative
// (an item linked through one slot and unlinked through another); only the
// sums are meaningful.

const (
	statGets = iota
	statGetHits
	statGetMisses
	statSets
	statDeletes
	statDeleteHits
	statIncrs
	statTouches
	statEvictions
	statExpired
	statCASMismatch
	statCurrItems
	statTotalItems
	statBytes
	statFlushes
	statGetFastpath
	statSeqRetries
	statRecoveries
	statRepairDropped
	statDecrs
	statCorruptDetected
	statItemsQuarantined
	statBatches
	statBatchedOps
	numStatCounters
)

// statSlotSize is padded to whole cache lines to keep slots from false
// sharing (four lines now that the counter set outgrew two).
const statSlotSize = 32 * 8

// Stats is a consistent-enough snapshot of the store's counters.
type Stats struct {
	Gets, GetHits, GetMisses        uint64
	Sets                            uint64
	Deletes, DeleteHits             uint64
	Incrs, Decrs, Touches           uint64
	Evictions, Expired, CASMismatch uint64
	CurrItems, TotalItems, Bytes    uint64
	Flushes                         uint64
	// GetFastpathHits counts Gets served entirely by the lock-free
	// optimistic path (hits and validated misses alike); SeqlockRetries
	// counts discarded optimistic attempts (odd or changed sequence).
	GetFastpathHits, SeqlockRetries uint64
	// Recoveries counts completed structural repair passes;
	// ItemsDroppedInRepair counts orphaned or torn items those passes
	// had to discard.
	Recoveries, ItemsDroppedInRepair uint64
	// CorruptionsDetected counts checksum or invariant failures found by
	// the read paths and the scrubber; ItemsQuarantined counts the items
	// those detections removed from service.
	CorruptionsDetected, ItemsQuarantined uint64
	// Batches counts ExecBatch dispatches (one gate admission each);
	// BatchedOps counts the operations they carried. BatchedOps/Batches is
	// the mean batch size, the amortization factor over gate crossings.
	Batches, BatchedOps uint64
}

// stat adds delta to one counter in this context's slot. In LockedStats
// mode (the original design the paper abandoned) every update instead
// serializes on one heap-resident lock around slot 0.
func (c *Ctx) stat(counter int, delta int64) {
	if c.statDefer {
		// Batch dispatch: accumulate privately, publish once per admission
		// (statFlushDeferred). A crash mid-batch loses the local deltas, but
		// repair recomputes the one structural counter (curr_items) from its
		// heap walk; the rest are advisory traffic counters.
		c.statLocal[counter] += delta
		return
	}
	if c.s.lockedStats {
		lock := c.s.cfg + cfgStatsLock
		off := c.s.stats + uint64(counter)*8
		c.lock(lock)
		c.s.H.Store64(off, c.s.H.Load64(off)+uint64(delta))
		c.unlock(lock)
		return
	}
	off := c.s.stats + c.slot*statSlotSize + uint64(counter)*8
	c.s.H.Add64(off, uint64(delta))
}

// statFlushDeferred ends a deferred-accounting window: every locally
// accumulated counter is published to the shared slot with one atomic add.
// A batch of k hits pays ~3 adds total instead of ~3k.
func (c *Ctx) statFlushDeferred() {
	c.statDefer = false
	for i := range c.statLocal {
		if d := c.statLocal[i]; d != 0 {
			c.statLocal[i] = 0
			c.stat(i, d)
		}
	}
}

// Stats sums the scattered array (the statistics-retrieving scan).
func (s *Store) Stats() Stats {
	var sums [numStatCounters]int64
	for slot := uint64(0); slot < s.statSlots; slot++ {
		base := s.stats + slot*statSlotSize
		for ctr := 0; ctr < numStatCounters; ctr++ {
			sums[ctr] += int64(s.H.AtomicLoad64(base + uint64(ctr)*8))
		}
	}
	u := func(i int) uint64 {
		if sums[i] < 0 {
			return 0
		}
		return uint64(sums[i])
	}
	return Stats{
		Gets: u(statGets), GetHits: u(statGetHits), GetMisses: u(statGetMisses),
		Sets: u(statSets), Deletes: u(statDeletes), DeleteHits: u(statDeleteHits),
		Incrs: u(statIncrs), Decrs: u(statDecrs), Touches: u(statTouches),
		Evictions: u(statEvictions), Expired: u(statExpired), CASMismatch: u(statCASMismatch),
		CurrItems: u(statCurrItems), TotalItems: u(statTotalItems), Bytes: u(statBytes),
		Flushes:         u(statFlushes),
		GetFastpathHits: u(statGetFastpath), SeqlockRetries: u(statSeqRetries),
		Recoveries: u(statRecoveries), ItemsDroppedInRepair: u(statRepairDropped),
		CorruptionsDetected: u(statCorruptDetected), ItemsQuarantined: u(statItemsQuarantined),
		Batches: u(statBatches), BatchedOps: u(statBatchedOps),
	}
}
