package core

import (
	"runtime"
	"strconv"

	"plibmc/internal/faultpoint"
	"plibmc/internal/ralloc"
)

// Crash-injection sites for the recovery fault matrix (faultmatrix_test at
// the repo root). Each marks a state the repair pass must cope with when a
// thread dies exactly there; all compile to a single atomic load unless a
// test arms them.
var (
	fpStoreAfterAlloc   = faultpoint.New("ops.store.after_alloc") // item built, lock not yet taken
	fpStoreLocked       = faultpoint.New("ops.store.locked")      // bucket lock held, store untouched
	fpStoreMidSwap      = faultpoint.New("ops.store.mid_swap")    // inside the swap section: new at head, old still chained
	fpStoreAfterLink    = faultpoint.New("ops.store.after_link")  // fully linked, lock still held
	fpDeleteAfterUnlink = faultpoint.New("ops.delete.after_unlink")
	fpIncrMidRewrite    = faultpoint.New("ops.incr.mid_rewrite") // inside a seqlock write section
)

// Ctx is the per-thread operation context: the thread's allocator cache,
// its lock-owner identity, its statistics slot, and the library-private
// scratch buffers into which client arguments are captured before any lock
// is acquired (the §3.4 fault-tolerance idiom — the key_prot/dat_prot
// buffers of Fig. 4). A Ctx must be used by one thread at a time.
type Ctx struct {
	s     *Store
	cache *ralloc.Cache
	owner uint64
	slot  uint64

	evictCursor  uint64
	opDepth      int
	gateGen      uint64 // gate generation observed at enterOp (see exitOp)
	rdSlot       uint64 // optimistic-reader announcement slot; 0 = none
	rdEpoch      uint64 // epoch this context announced in its slot (see endRead)
	latN         uint64 // operations seen since creation (latency sampling)
	latSlot      uint64 // latency-histogram slot this context records into
	nowCache     int64  // wall clock cached for the current admission (see now)
	nowOK        bool
	statDefer    bool // accumulate stats in statLocal instead of shared slots
	statLocal    [numStatCounters]int64
	batchStarts  []int // value-offset scratch reused across ExecBatch calls
	batchVBufCap int   // high-water value-buffer size of past batches

	// deadSelf reports whether this context's own owner token has been
	// declared dead by the liveness oracle — i.e. this goroutine is a
	// watchdog-reaped zombie whose locks the repair coordinator broke.
	// Built once at NewCtx so lock spins don't allocate a closure per call.
	deadSelf func() bool

	// AbortCheck, when set, is polled by long-running dispatch loops
	// (ExecBatch, between operations) and makes them return early with
	// ErrCallAborted on the remaining operations when it reports true. The
	// session layer wires it to the watchdog's cooperative abort request
	// (hodor.Session.AbortRequested), so an over-budget batch can retire
	// cleanly — results for the executed prefix, typed errors for the rest
	// — instead of being reaped and repaired.
	AbortCheck func() bool

	// CaptureClientBuffers applies the copy-before-lock idiom. It defaults
	// to true; the ablation benchmark turns it off to measure the idiom's
	// cost (and gives up crash safety against concurrent client threads
	// scribbling on arguments mid-call).
	CaptureClientBuffers bool

	// DisableOptimisticReads forces every Get onto the locked path — the
	// pre-seqlock design, kept as an ablation toggle.
	DisableOptimisticReads bool

	// DisableReadVerify skips the per-item header-checksum check on the
	// read paths (ablation toggle for BenchmarkAblationChecksum). The
	// scrubber and repair still verify.
	DisableReadVerify bool

	// forceSeqRetries injects this many artificial validation failures
	// into each optimistic lookup, so tests can deterministically drive
	// the retry loop and the lock fallback.
	forceSeqRetries int

	// UnsafeIncrSkipSeqlock seeds a known linearizability violation: the
	// in-place increment rewrite skips its seqlock bracket and tears the
	// value write in two. It exists solely so the model-checking harness
	// can prove it detects (and shrinks) real violations — the "mutation
	// mode" self-test. Never set it outside that harness.
	UnsafeIncrSkipSeqlock bool

	keyBuf   []byte
	valBuf   []byte
	auxBuf   []byte
	evictBuf []byte
}

// loadChainHead reads a bucket's first item; loadChainNext follows hNext.
func loadChainHead(s *Store, bucket uint64) uint64 { return ralloc.LoadPptr(s.H, bucket) }
func loadChainNext(s *Store, it uint64) uint64     { return ralloc.LoadPptr(s.H, it+itHNext) }

// NewCtx creates an operation context. owner must be a nonzero token unique
// to the calling thread (proc.Thread.LockOwner provides one). The context
// claims an optimistic-reader slot if one is free; with none available it
// still works, it just serves every read through the locked path.
func (s *Store) NewCtx(owner uint64) *Ctx {
	c := &Ctx{
		s:                    s,
		cache:                s.A.NewCache(),
		owner:                owner,
		slot:                 owner % s.statSlots,
		CaptureClientBuffers: true,
	}
	if s.latSlots != 0 {
		c.latSlot = owner % s.latSlots
	}
	c.deadSelf = func() bool { return s.ownerIsDead(owner) }
	c.claimReaderSlot()
	return c
}

// lock acquires the heap-resident lock at off on behalf of this context.
// The spin consults the owner-liveness oracle: once this context has been
// declared dead (a watchdog-reaped zombie whose held locks the repair
// coordinator force-released), it must never win a lock again — it would
// mutate chains concurrently with the structural repair pass. The panic
// unwinds the call exactly like the crash that was already recorded for
// this token; hodor's trampoline recovers it.
func (c *Ctx) lock(off uint64) {
	if !c.s.H.LockAcquireAbort(off, c.owner, c.deadSelf) {
		panic(&FenceError{Op: "lock"})
	}
}

// tryLock is the non-blocking variant of lock, with the same rule: a
// reaped context never keeps a lock it happened to win.
func (c *Ctx) tryLock(off uint64) bool {
	if !c.s.H.LockTry(off, c.owner) {
		return false
	}
	if c.deadSelf() {
		c.s.H.AtomicStore64(off, 0)
		panic(&FenceError{Op: "tryLock"})
	}
	return true
}

// unlock releases a lock this context acquired. The release CASes against
// our own token rather than blind-storing zero: a zombie unwinding after
// its locks were force-released (and possibly re-acquired by a live
// thread) must leave the word alone. For a live context a failed CAS is a
// lock-discipline bug, exactly like shm.LockRelease on an unheld lock.
func (c *Ctx) unlock(off uint64) {
	if c.s.H.LockReleaseOwner(off, c.owner) {
		return
	}
	if !c.deadSelf() {
		panic("core: release of lock not held by this context")
	}
}

// Close flushes the context's allocator cache back to the shared heap and
// returns its optimistic-reader slot.
func (c *Ctx) Close() {
	c.enterOp()
	c.cache.Flush()
	c.exitOp()
	c.releaseReaderSlot()
}

// Store returns the store this context operates on.
func (c *Ctx) Store() *Store { return c.s }

// Owner returns the context's lock-owner token.
func (c *Ctx) Owner() uint64 { return c.owner }

func grow(buf *[]byte, n uint64) []byte {
	if uint64(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	return (*buf)[:n]
}

func (c *Ctx) scratch(n uint64) []byte { return grow(&c.evictBuf, n) }

// capture copies a client buffer into library-private scratch before any
// lock is taken, so that a concurrent client thread mutating (or unmapping)
// the argument cannot fault or corrupt the library mid-operation.
func (c *Ctx) capture(dst *[]byte, src []byte) []byte {
	if !c.CaptureClientBuffers {
		return src
	}
	b := grow(dst, uint64(len(src)))
	copy(b, src)
	return b
}

// now returns the wall clock for the current top-level operation, reading
// the store clock at most once per gate admission (enterOp invalidates the
// cache at depth 1): a batch of k operations pays one clock read where the
// unbatched path pays k. The cache never outlives an admission, so
// clock-stepping tests still see fresh time on every call.
func (c *Ctx) now() int64 {
	if !c.nowOK {
		c.nowCache = c.s.nowFn()
		c.nowOK = true
	}
	return c.nowCache
}

// absExpiry converts a client exptime to an absolute unix time, with
// memcached's semantics: 0 = never; negative = already expired; values up
// to 30 days are relative to now; larger values are absolute timestamps.
const relativeExpiryCutoff = 60 * 60 * 24 * 30

func (c *Ctx) absExpiry(exptime int64) int64 {
	switch {
	case exptime == 0:
		return 0
	case exptime < 0:
		return c.now() - 1
	case exptime <= relativeExpiryCutoff:
		return c.now() + exptime
	default:
		return exptime
	}
}

// findLocked walks the bucket chain for key, unlinking it lazily if it has
// expired. Caller holds the item lock for hash.
//
// The walk is bounded and every matched item's header checksum is verified
// before its geometry fields are trusted: a corrupted chain degrades into a
// quarantined item or an escalation to full repair, never an unbounded loop
// or a value served from mismatched metadata.
func (c *Ctx) findLocked(key []byte, hash uint64) uint64 {
	s := c.s
	bucket := s.bucketFor(hash)
	it := loadChainHead(s, bucket)
	for steps := 0; it != 0; steps++ {
		if steps >= maxRepairChain {
			panic("core: bucket chain cycle (corruption)")
		}
		if s.keyEqual(it, key) {
			if !c.verifyItem(it) {
				c.quarantineCorruptLocked(it, bucket, s.seqOff(hash))
				return 0
			}
			if s.expired(it, c.now()) {
				c.unlinkLocked(it, hash)
				c.stat(statExpired, 1)
				return 0
			}
			return it
		}
		it = loadChainNext(s, it)
	}
	return 0
}

// Get retrieves the value stored under key, along with the client flags and
// CAS generation. The returned slice is freshly allocated client-visible
// memory (the plain-malloc output buffer of Fig. 4).
func (c *Ctx) Get(key []byte) ([]byte, uint32, uint64, error) {
	v, f, cas, err := c.GetAppend(nil, key)
	return v, f, cas, err
}

// GetAppend is Get appending the value to dst (which may be nil), for
// callers that reuse buffers. It first attempts the lock-free optimistic
// lookup (seqread.go); only contended, expiring, bump-due or repeatedly
// invalidated lookups pay for the bucket lock.
func (c *Ctx) GetAppend(dst, key []byte) ([]byte, uint32, uint64, error) {
	if len(key) > MaxKeyLen {
		return dst, 0, 0, ErrKeyTooLong
	}
	defer c.opEnd(LatGet, c.opBegin())
	c.stat(statGets, 1)
	k := c.capture(&c.keyBuf, key)
	hash := hashKey(k)
	if flags, cas, vlen, found, ok := c.optGet(k, hash); ok {
		c.stat(statGetFastpath, 1)
		if !found {
			c.stat(statGetMisses, 1)
			return dst, 0, 0, ErrNotFound
		}
		c.stat(statGetHits, 1)
		return append(dst, c.valBuf[:vlen]...), flags, cas, nil
	}
	return c.getLockedAppend(dst, k, hash, false, 0)
}

// getLockedAppend is the locked read path: the correctness baseline the
// optimistic path falls back to, and the only retrieval that may write
// (lazy expiry in findLocked, the LRU bump, and the touch variant).
func (c *Ctx) getLockedAppend(dst, k []byte, hash uint64, touch bool, abs int64) ([]byte, uint32, uint64, error) {
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	it := c.findLocked(k, hash)
	if it == 0 {
		c.unlock(lock)
		c.stat(statGetMisses, 1)
		return dst, 0, 0, ErrNotFound
	}
	if touch {
		s.H.RelaxedStore32(it+itExptime, uint32(abs))
	}
	c.lruBump(hash, it, c.now())
	s.incref(it) // hold the item across the copy, as item_get does
	flags := s.H.Load32(it + itFlags)
	cas := s.H.Load64(it + itCASID)
	vlen := s.itemValLen(it)
	voff := s.itemValOff(it)
	c.unlock(lock)

	// Copy into a protected buffer while the reference is held, then
	// release the item before touching client-visible memory (Fig. 4).
	// The relaxed copy coexists with in-place value rewrites that may
	// start once the lock is released; holders of the current CAS
	// generation detect them, exactly as in the original design.
	prot := grow(&c.valBuf, vlen)
	s.H.AtomicReadBytes(voff, prot)
	c.decref(it)

	out := append(dst, prot...)
	c.stat(statGetHits, 1)
	return out, flags, cas, nil
}

// GetAndTouch retrieves the value under key and atomically updates its
// expiry (memcached's "gat" command): one lock acquisition for both. The
// touch is a write, so this always runs the locked path.
func (c *Ctx) GetAndTouch(key []byte, exptime int64) ([]byte, uint32, uint64, error) {
	return c.GetAndTouchAppend(nil, key, exptime)
}

// GetAndTouchAppend is GetAndTouch appending the value to dst (which may
// be nil), for callers that reuse buffers.
func (c *Ctx) GetAndTouchAppend(dst, key []byte, exptime int64) ([]byte, uint32, uint64, error) {
	if len(key) > MaxKeyLen {
		return dst, 0, 0, ErrKeyTooLong
	}
	defer c.opEnd(LatTouch, c.opBegin())
	c.stat(statGets, 1)
	c.stat(statTouches, 1)
	k := c.capture(&c.keyBuf, key)
	return c.getLockedAppend(dst, k, hashKey(k), true, c.absExpiry(exptime))
}

// storeMode selects among the memcached storage commands.
type storeMode int

const (
	modeSet storeMode = iota
	modeAdd
	modeReplace
	modeCAS
)

func (c *Ctx) store(mode storeMode, key, value []byte, flags uint32, exptime int64, cas uint64) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	if len(value) > MaxValueLen {
		return ErrValueTooBig
	}
	defer c.opEnd(LatSet, c.opBegin())
	c.stat(statSets, 1)
	k := c.capture(&c.keyBuf, key)
	v := c.capture(&c.valBuf, value)
	hash := hashKey(k)
	// Build the replacement item entirely before acquiring the lock; the
	// allocation may trigger eviction, which takes other locks by trylock.
	it, err := c.newItem(k, v, hash, flags, c.absExpiry(exptime), true)
	if err != nil {
		return err
	}
	fpStoreAfterAlloc.Maybe()
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	fpStoreLocked.Maybe()
	old := c.findLocked(k, hash)
	switch {
	case mode == modeAdd && old != 0:
		c.unlock(lock)
		c.decref(it)
		return ErrExists
	case mode == modeReplace && old == 0:
		c.unlock(lock)
		c.decref(it)
		return ErrNotFound
	case mode == modeCAS:
		if old == 0 {
			c.unlock(lock)
			c.decref(it)
			return ErrNotFound
		}
		if s.H.Load64(old+itCASID) != cas {
			c.unlock(lock)
			c.decref(it)
			c.stat(statCASMismatch, 1)
			return ErrCASMismatch
		}
	}
	if old != 0 {
		// One seqlock section for the whole replacement: a separate
		// unlink+link pair opens a window where lock-free readers miss a
		// key that was never deleted.
		c.swapLocked(old, it, hash)
	} else {
		c.linkLocked(it, hash)
	}
	fpStoreAfterLink.Maybe()
	c.unlock(lock)
	return nil
}

// Set unconditionally stores value under key.
func (c *Ctx) Set(key, value []byte, flags uint32, exptime int64) error {
	return c.store(modeSet, key, value, flags, exptime, 0)
}

// Add stores value only if key is absent.
func (c *Ctx) Add(key, value []byte, flags uint32, exptime int64) error {
	return c.store(modeAdd, key, value, flags, exptime, 0)
}

// Replace stores value only if key is present.
func (c *Ctx) Replace(key, value []byte, flags uint32, exptime int64) error {
	return c.store(modeReplace, key, value, flags, exptime, 0)
}

// CAS stores value only if the entry's CAS generation still equals cas.
func (c *Ctx) CAS(key, value []byte, flags uint32, exptime int64, cas uint64) error {
	return c.store(modeCAS, key, value, flags, exptime, cas)
}

// Delete removes key from the store.
func (c *Ctx) Delete(key []byte) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	defer c.opEnd(LatDelete, c.opBegin())
	c.stat(statDeletes, 1)
	k := c.capture(&c.keyBuf, key)
	hash := hashKey(k)
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	it := c.findLocked(k, hash)
	if it == 0 {
		c.unlock(lock)
		return ErrNotFound
	}
	c.unlinkLocked(it, hash)
	fpDeleteAfterUnlink.Maybe()
	c.unlock(lock)
	c.stat(statDeleteHits, 1)
	return nil
}

// Touch updates the expiry of an existing entry.
func (c *Ctx) Touch(key []byte, exptime int64) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	defer c.opEnd(LatTouch, c.opBegin())
	c.stat(statTouches, 1)
	k := c.capture(&c.keyBuf, key)
	abs := c.absExpiry(exptime)
	hash := hashKey(k)
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	defer c.unlock(lock)
	it := c.findLocked(k, hash)
	if it == 0 {
		return ErrNotFound
	}
	// Relaxed store: optimistic readers load this word without the lock.
	s.H.RelaxedStore32(it+itExptime, uint32(abs))
	c.lruBump(hash, it, c.now())
	return nil
}

// Increment adds delta to the ASCII-numeric value under key and returns the
// new value; Decrement subtracts, saturating at zero (memcached semantics).
func (c *Ctx) Increment(key []byte, delta uint64) (uint64, error) {
	return c.incrDecr(key, delta, false)
}

// Decrement subtracts delta from the value under key, saturating at zero.
func (c *Ctx) Decrement(key []byte, delta uint64) (uint64, error) {
	return c.incrDecr(key, delta, true)
}

func (c *Ctx) incrDecr(key []byte, delta uint64, decr bool) (uint64, error) {
	if len(key) > MaxKeyLen {
		return 0, ErrKeyTooLong
	}
	defer c.opEnd(LatSet, c.opBegin())
	if decr {
		c.stat(statDecrs, 1)
	} else {
		c.stat(statIncrs, 1)
	}
	k := c.capture(&c.keyBuf, key)
	hash := hashKey(k)
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	defer c.unlock(lock)
	it := c.findLocked(k, hash)
	if it == 0 {
		return 0, ErrNotFound
	}
	vlen := s.itemValLen(it)
	if vlen == 0 || vlen > 20 {
		return 0, ErrNotNumeric
	}
	buf := grow(&c.valBuf, vlen)
	s.H.ReadBytes(s.itemValOff(it), buf)
	old, ok := parseASCIIUint(buf)
	if !ok {
		return 0, ErrNotNumeric
	}
	var v uint64
	if decr {
		if delta > old {
			v = 0
		} else {
			v = old - delta
		}
	} else {
		v = old + delta // wraps at 2^64, as in memcached
	}
	rendered := strconv.AppendUint(c.auxBuf[:0], v, 10)
	c.auxBuf = rendered[:0]
	if uint64(len(rendered)) == vlen {
		if c.UnsafeIncrSkipSeqlock {
			// Mutation mode for the linearizability harness's self-test:
			// rewrite WITHOUT the seqlock bracket, torn into two halves
			// with a scheduling point in between, so a concurrent
			// optimistic reader can validate a half-rewritten value. The
			// checker must catch the resulting history violation.
			half := len(rendered) / 2
			s.H.AtomicWriteBytes(s.itemValOff(it), rendered[:half])
			runtime.Gosched()
			s.H.AtomicWriteBytes(s.itemValOff(it)+uint64(half), rendered[half:])
			s.H.RelaxedStore64(it+itValSum, hashKey(rendered))
			s.H.RelaxedStore64(it+itCASID, s.nextCAS())
			c.lruBump(hash, it, c.now())
			return v, nil
		}
		// Same width: rewrite in place under the lock, bracketed by the
		// stripe seqlock so concurrent lock-free readers cannot validate
		// a half-rewritten value.
		seq := s.seqOff(hash)
		s.H.SeqWriteBegin(seq)
		s.H.AtomicWriteBytes(s.itemValOff(it), rendered)
		fpIncrMidRewrite.Maybe()
		s.H.RelaxedStore64(it+itValSum, hashKey(rendered))
		s.H.RelaxedStore64(it+itCASID, s.nextCAS())
		s.H.SeqWriteEnd(seq)
		// The rewrite is a use: move the item up its LRU list like the
		// retrieval paths do, so hot counters are not evicted in FIFO
		// order. The item lock is held; lruBump takes the list lock.
		c.lruBump(hash, it, c.now())
		return v, nil
	}
	// Width changed: build a replacement item. We hold the item lock, so
	// the allocation must not block on other item locks (canEvict=false).
	flags := s.H.Load32(it + itFlags)
	exp := int64(s.H.Load32(it + itExptime))
	nit, err := c.newItem(k, rendered, hash, flags, exp, false)
	if err != nil {
		return 0, err
	}
	c.swapLocked(it, nit, hash)
	return v, nil
}

// Append appends data to an existing value; Prepend prepends it. Both are
// atomic with respect to concurrent operations on the same key.
func (c *Ctx) Append(key, data []byte) error { return c.pend(key, data, false) }

// Prepend prepends data to an existing value.
func (c *Ctx) Prepend(key, data []byte) error { return c.pend(key, data, true) }

func (c *Ctx) pend(key, data []byte, front bool) error {
	if len(key) > MaxKeyLen {
		return ErrKeyTooLong
	}
	defer c.opEnd(LatSet, c.opBegin())
	c.stat(statSets, 1)
	k := c.capture(&c.keyBuf, key)
	d := c.capture(&c.valBuf, data)
	hash := hashKey(k)
	s := c.s
	lock := s.itemLockOff(hash)
	c.lock(lock)
	defer c.unlock(lock)
	it := c.findLocked(k, hash)
	if it == 0 {
		return ErrNotFound
	}
	vlen := s.itemValLen(it)
	total := vlen + uint64(len(d))
	if total > MaxValueLen {
		return ErrValueTooBig
	}
	combined := grow(&c.auxBuf, total)
	if front {
		copy(combined, d)
		s.H.ReadBytes(s.itemValOff(it), combined[len(d):])
	} else {
		s.H.ReadBytes(s.itemValOff(it), combined[:vlen])
		copy(combined[vlen:], d)
	}
	flags := s.H.Load32(it + itFlags)
	exp := int64(s.H.Load32(it + itExptime))
	nit, err := c.newItem(k, combined, hash, flags, exp, false)
	if err != nil {
		return err
	}
	c.swapLocked(it, nit, hash)
	return nil
}

// FlushAll removes every entry from the store.
func (c *Ctx) FlushAll() {
	defer c.opEnd(LatMaint, c.opBegin())
	s := c.s
	for li := uint64(0); li < s.numItemLocks; li++ {
		lock := s.itemLocks + li*8
		c.lock(lock)
		s.forEachBucketLocked(li, func(bucket uint64) {
			for {
				it := loadChainHead(s, bucket)
				if it == 0 {
					break
				}
				c.unlinkLocked(it, s.itemHash(it))
			}
		})
		c.unlock(lock)
	}
	c.stat(statFlushes, 1)
}

func parseASCIIUint(b []byte) (uint64, bool) {
	// 2^64-1 = 18446744073709551615: a digit may be appended to v only if
	// the result still fits. Without the cutoff check a 20-digit value
	// ≥ 2^64 silently wraps and incr computes garbage; memcached treats
	// such a value as non-numeric.
	const cutoff = ^uint64(0) / 10
	var v uint64
	for _, ch := range b {
		if ch < '0' || ch > '9' {
			return 0, false
		}
		d := uint64(ch - '0')
		if v > cutoff || (v == cutoff && d > ^uint64(0)%10) {
			return 0, false
		}
		v = v*10 + d
	}
	return v, true
}
