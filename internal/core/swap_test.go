package core

// Regression tests for the replace-swap miss window found by the
// linearizability checker (modelcheck_test.go): unlinkLocked+linkLocked
// each bracketed their own seqlock write section, so every replacement
// of a live item — Set/Replace/CAS over an existing key, append/prepend,
// width-changing incr/decr — had an instant between the sections where
// the stripe was quiescent and the key was in neither, and a lock-free
// reader scanning that gap validated cleanly and returned a miss for a
// key that was never deleted. swapLocked closes the gap by doing the
// whole replacement in one write section.

import (
	"testing"

	"plibmc/internal/faultpoint"
)

// chainHas walks key's bucket chain directly (no locks, no seqlock
// validation — the callers below run on the mutating thread, which holds
// the item lock).
func chainHas(s *Store, key []byte) bool {
	hash := hashKey(key)
	it := loadChainHead(s, s.bucketFor(hash))
	for steps := 0; it != 0 && steps < 64; steps++ {
		if s.keyEqual(it, key) {
			return true
		}
		it = loadChainNext(s, it)
	}
	return false
}

// TestSwapKeepsKeyReachable observes the chain from INSIDE the swap's
// write section (fault point ops.store.mid_swap, used here as a probe
// rather than a crash) and requires the key to be reachable at that
// instant on every replacement path. Pre-fix, the comparable site sat
// between the unlink and link sections and the key was in neither.
func TestSwapKeepsKeyReachable(t *testing.T) {
	defer faultpoint.DisarmAll()
	_, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	s := c.s
	key := []byte("swapped")

	paths := []struct {
		name  string
		setup func() error
		op    func() error
	}{
		{"set over live key",
			func() error { return c.Set(key, []byte("123"), 0, 0) },
			func() error { return c.Set(key, []byte("abcdef"), 0, 0) }},
		{"replace",
			func() error { return c.Set(key, []byte("123"), 0, 0) },
			func() error { return c.Replace(key, []byte("wxyz"), 0, 0) }},
		{"incr width change",
			func() error { return c.Set(key, []byte("99"), 0, 0) },
			func() error { _, err := c.Increment(key, 1); return err }},
		{"decr width change",
			func() error { return c.Set(key, []byte("100"), 0, 0) },
			func() error { _, err := c.Decrement(key, 1); return err }},
		{"append",
			func() error { return c.Set(key, []byte("ab"), 0, 0) },
			func() error { return c.Append(key, []byte("cd")) }},
		{"prepend",
			func() error { return c.Set(key, []byte("ab"), 0, 0) },
			func() error { return c.Prepend(key, []byte("cd")) }},
	}
	for _, p := range paths {
		if err := p.setup(); err != nil {
			t.Fatalf("%s: setup: %v", p.name, err)
		}
		fired, present := false, false
		if err := faultpoint.Arm("ops.store.mid_swap", func() {
			fired = true
			present = chainHas(s, key)
		}); err != nil {
			t.Fatal(err)
		}
		if err := p.op(); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if !fired {
			t.Fatalf("%s: did not go through swapLocked", p.name)
		}
		if !present {
			t.Errorf("%s: key unreachable from its bucket chain mid-swap", p.name)
		}
	}

	// Paths where absence IS the correct observable state must not go
	// through the swap section.
	fired := false
	if err := faultpoint.Arm("ops.store.mid_swap", func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(key); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("fresh"), []byte("v"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("delete or fresh insert went through swapLocked")
	}
	faultpoint.Disarm("ops.store.mid_swap")
}

// TestRepairDropsShadowedDuplicate: a crash inside the swap section
// leaves both the new and the old item chained (new at the head). Repair
// must keep only the newest copy of the key and free the shadowed one —
// resurrecting it would bring back a stale value under its old CAS
// generation.
func TestRepairDropsShadowedDuplicate(t *testing.T) {
	defer faultpoint.DisarmAll()
	s, c := newStore(t, 1<<22, Options{HashPower: 8, NumItemLocks: 16})
	key := []byte("dup")
	if err := c.Set(key, []byte("old"), 0, 0); err != nil {
		t.Fatal(err)
	}

	// A second client dies (for real this time) mid-swap, leaving both
	// items chained, the item lock held, and the stripe seqlock odd.
	c2 := s.NewCtx(2)
	crashOp(t, "ops.store.mid_swap", func() { _ = c2.Set(key, []byte("new"), 0, 0) })

	dead := deadOnly(2)
	if broke := s.ForceReleaseDeadLocks(dead); broke < 1 {
		t.Fatalf("ForceReleaseDeadLocks broke %d, want >= 1", broke)
	}
	s.RetireDeadReaders(dead)
	s.RepairGate()
	rep, err := s.Repair(c)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rep.SeqlocksCleared == 0 {
		t.Error("crash left no odd seqlock? the fault point moved out of the write section")
	}
	v, _, _, err := c.Get(key)
	if err != nil || string(v) != "new" {
		t.Fatalf("after repair: Get = %q, %v; want the head-most (new) copy", v, err)
	}
	// The shadowed copy must be gone from the chain, not merely behind
	// the new one.
	hash := hashKey(key)
	n := 0
	for it := loadChainHead(s, s.bucketFor(hash)); it != 0; it = loadChainNext(s, it) {
		if s.keyEqual(it, key) {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d copies of the key chained after repair, want 1", n)
	}
	if st := s.Stats(); st.CurrItems != 1 {
		t.Fatalf("CurrItems = %d after repair, want 1", st.CurrItems)
	}
}
