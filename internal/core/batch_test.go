package core

import (
	"bytes"
	"errors"
	"testing"
)

// A heterogeneous batch executes in order with per-op results.
func TestExecBatchMixed(t *testing.T) {
	s, c := newStore(t, 1<<22, latOpts())
	res := c.ExecBatch([]BatchOp{
		{Code: BatchSet, Key: []byte("a"), Value: []byte("1"), Flags: 7},
		{Code: BatchGet, Key: []byte("a")},
		{Code: BatchIncr, Key: []byte("a"), Delta: 4},
		{Code: BatchGet, Key: []byte("miss")},
		{Code: BatchDelete, Key: []byte("a")},
		{Code: BatchGet, Key: []byte("a")},
	})
	if res[0].Err != nil {
		t.Fatalf("set: %v", res[0].Err)
	}
	if res[1].Err != nil || !bytes.Equal(res[1].Value, []byte("1")) || res[1].Flags != 7 {
		t.Fatalf("get after set: %+v", res[1])
	}
	if res[2].Err != nil || res[2].Num != 5 {
		t.Fatalf("incr: %+v", res[2])
	}
	if !errors.Is(res[3].Err, ErrNotFound) {
		t.Fatalf("get miss: %v", res[3].Err)
	}
	if res[4].Err != nil {
		t.Fatalf("delete: %v", res[4].Err)
	}
	if !errors.Is(res[5].Err, ErrNotFound) {
		t.Fatalf("get after delete: %v", res[5].Err)
	}
	st := s.Stats()
	if st.Batches != 1 || st.BatchedOps != 6 {
		t.Fatalf("batches=%d batchedOps=%d, want 1/6", st.Batches, st.BatchedOps)
	}
}

// One failing operation must not poison its siblings: errors are per-op.
func TestExecBatchErrorIsolation(t *testing.T) {
	_, c := newStore(t, 1<<22, latOpts())
	if err := c.Set([]byte("have"), []byte("x"), 0, 0); err != nil {
		t.Fatal(err)
	}
	res := c.ExecBatch([]BatchOp{
		{Code: BatchAdd, Key: []byte("have"), Value: []byte("y")}, // exists
		{Code: BatchSet, Key: []byte("k1"), Value: []byte("v1")},
		{Code: BatchCAS, Key: []byte("k1"), Value: []byte("v2"), CAS: ^uint64(0)}, // mismatch
		{Code: BatchIncr, Key: []byte("k1"), Delta: 1},                            // not numeric
		{Code: BatchSet, Key: []byte("k2"), Value: []byte("v2")},
	})
	if !errors.Is(res[0].Err, ErrExists) {
		t.Fatalf("add-on-existing: %v", res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("sibling set failed: %v", res[1].Err)
	}
	if !errors.Is(res[2].Err, ErrCASMismatch) {
		t.Fatalf("stale cas: %v", res[2].Err)
	}
	if !errors.Is(res[3].Err, ErrNotNumeric) {
		t.Fatalf("incr non-numeric: %v", res[3].Err)
	}
	if res[4].Err != nil {
		t.Fatalf("trailing set failed: %v", res[4].Err)
	}
	// And the successful ops really committed.
	if v, _, _, err := c.Get([]byte("k2")); err != nil || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("k2 = %q, %v", v, err)
	}
}

// A batch runs under a single gate admission: the nested ops reenter at
// depth 2 and the gate count returns to zero once, not per op.
func TestExecBatchSingleAdmission(t *testing.T) {
	s, c := newStore(t, 1<<22, latOpts())
	ops := make([]BatchOp, 16)
	for i := range ops {
		ops[i] = BatchOp{Code: BatchSet, Key: []byte{byte('a' + i)}, Value: []byte("v")}
	}
	c.ExecBatch(ops)
	ls := s.Latency()
	if n := ls.Classes[LatBatch].Count(); n != 1 {
		t.Fatalf("batch latency samples = %d, want 1 (one sample covers the batch)", n)
	}
	if n := ls.Classes[LatSet].Count(); n != 0 {
		t.Fatalf("set latency samples = %d, want 0 (nested ops must not sample)", n)
	}
	if st := s.Stats(); st.Sets != 16 {
		t.Fatalf("sets = %d, want 16 (counters still count every op)", st.Sets)
	}
}

func TestExecBatchEmpty(t *testing.T) {
	s, c := newStore(t, 1<<22, latOpts())
	if res := c.ExecBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	if st := s.Stats(); st.Batches != 0 {
		t.Fatalf("empty batch counted as a dispatch")
	}
}
