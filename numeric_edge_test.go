package plibmc

// Table-driven numeric edge tests run against BOTH stores: the baseline
// server store (internal/server, socket-era memcached) and the
// protected-library store (core.Ctx, driven through a real session).
// The two implementations share memcached's numeric contract — decr
// saturates at zero, incr wraps modulo 2^64, values are 1..20 ASCII
// digits below 2^64 — and this file pins them to the same table so they
// cannot drift apart. The value-size bounds differ by design (a fixed
// MaxValueLen cap for the protected library, the largest slab chunk for
// the baseline) and get their own tests below.

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"plibmc/internal/core"
	"plibmc/internal/protocol"
	"plibmc/internal/server"
	"plibmc/memcached"
)

// numStatus is the implementation-neutral outcome of an incr/decr.
type numStatus int

const (
	numOK numStatus = iota
	numNotFound
	numNotNumeric
)

func (s numStatus) String() string {
	return [...]string{"ok", "not_found", "not_numeric"}[s]
}

// numKV abstracts the two stores under test.
type numKV interface {
	set(t *testing.T, key, val string)
	get(t *testing.T, key string) (string, bool)
	incrDecr(key string, delta uint64, decr bool) (uint64, numStatus)
}

type baselineKV struct{ s *server.Store }

func (b baselineKV) set(t *testing.T, key, val string) {
	t.Helper()
	if st := b.s.Set([]byte(key), []byte(val), 0, 0); st != protocol.StatusOK {
		t.Fatalf("baseline set %q=%q: %v", key, val, st)
	}
}

func (b baselineKV) get(t *testing.T, key string) (string, bool) {
	v, _, _, ok := b.s.Get([]byte(key))
	return string(v), ok
}

func (b baselineKV) incrDecr(key string, delta uint64, decr bool) (uint64, numStatus) {
	v, st := b.s.IncrDecr([]byte(key), delta, decr)
	switch st {
	case protocol.StatusOK:
		return v, numOK
	case protocol.StatusKeyNotFound:
		return 0, numNotFound
	default:
		return 0, numNotNumeric
	}
}

type protectedKV struct{ s *memcached.Session }

func (p protectedKV) set(t *testing.T, key, val string) {
	t.Helper()
	if err := p.s.Set([]byte(key), []byte(val), 0, 0); err != nil {
		t.Fatalf("protected set %q=%q: %v", key, val, err)
	}
}

func (p protectedKV) get(t *testing.T, key string) (string, bool) {
	v, _, err := p.s.Get([]byte(key))
	if err != nil {
		if !errors.Is(err, memcached.ErrNotFound) {
			t.Fatalf("protected get %q: %v", key, err)
		}
		return "", false
	}
	return string(v), true
}

func (p protectedKV) incrDecr(key string, delta uint64, decr bool) (uint64, numStatus) {
	var v uint64
	var err error
	if decr {
		v, err = p.s.Decrement([]byte(key), delta)
	} else {
		v, err = p.s.Increment([]byte(key), delta)
	}
	switch {
	case err == nil:
		return v, numOK
	case errors.Is(err, memcached.ErrNotFound):
		return 0, numNotFound
	default:
		return 0, numNotNumeric
	}
}

func newProtectedKV(t *testing.T, heapBytes uint64) protectedKV {
	t.Helper()
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: heapBytes, HashPower: 8, NumItemLocks: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { book.Shutdown() })
	cp, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	return protectedKV{sess}
}

// TestNumericEdgesBothStores runs one table through both stores.
func TestNumericEdgesBothStores(t *testing.T) {
	cases := []struct {
		name  string
		init  *string // initial value; nil = key absent
		delta uint64
		decr  bool
		want  uint64
		st    numStatus
		after string // expected stored value when st == numOK
	}{
		{name: "incr basic", init: sp("0"), delta: 1, want: 1, after: "1"},
		{name: "decr saturates", init: sp("5"), delta: 10, want: 0, after: "0"},
		{name: "decr exact to zero", init: sp("10"), delta: 10, want: 0, after: "0"},
		{name: "decr from max", init: sp("18446744073709551615"), delta: 1,
			decr: true, want: 18446744073709551614, after: "18446744073709551614"},
		{name: "incr wraps at 2^64", init: sp("18446744073709551615"), delta: 1, want: 0, after: "0"},
		{name: "incr wraps exactly", init: sp("1"), delta: ^uint64(0), want: 0, after: "0"},
		{name: "incr wraps past", init: sp("18446744073709551615"), delta: ^uint64(0),
			want: 18446744073709551614, after: "18446744073709551614"},
		{name: "20 digits at 2^64", init: sp("18446744073709551616"), delta: 1, st: numNotNumeric},
		{name: "20 digits just past", init: sp("18446744073709551625"), delta: 1, st: numNotNumeric},
		{name: "20 nines", init: sp("99999999999999999999"), delta: 1, st: numNotNumeric},
		{name: "21 digits", init: sp("184467440737095516150"), delta: 1, st: numNotNumeric},
		{name: "empty value", init: sp(""), delta: 1, st: numNotNumeric},
		{name: "trailing garbage", init: sp("12a"), delta: 1, st: numNotNumeric},
		{name: "leading space", init: sp(" 1"), delta: 1, st: numNotNumeric},
		{name: "negative", init: sp("-1"), delta: 1, st: numNotNumeric},
		{name: "missing key", init: nil, delta: 1, st: numNotFound},
		{name: "missing key decr", init: nil, delta: 1, decr: true, st: numNotFound},
		{name: "width shrinks", init: sp("007"), delta: 1, want: 8, after: "8"},
		{name: "width grows", init: sp("99"), delta: 1, want: 100, after: "100"},
	}
	// "decr saturates" etc. default decr from the name prefix.
	for i := range cases {
		if len(cases[i].name) >= 4 && cases[i].name[:4] == "decr" {
			cases[i].decr = true
		}
	}

	impls := []struct {
		name string
		kv   numKV
	}{
		{"baseline", baselineKV{server.NewStore(32<<20, 8)}},
		{"protected", newProtectedKV(t, 32<<20)},
	}
	for _, impl := range impls {
		t.Run(impl.name, func(t *testing.T) {
			for i, tc := range cases {
				key := fmt.Sprintf("n%02d", i)
				if tc.init != nil {
					impl.kv.set(t, key, *tc.init)
				}
				v, st := impl.kv.incrDecr(key, tc.delta, tc.decr)
				if st != tc.st || (st == numOK && v != tc.want) {
					t.Errorf("%s: got (%d, %v), want (%d, %v)", tc.name, v, st, tc.want, tc.st)
					continue
				}
				if tc.st == numOK {
					if got, ok := impl.kv.get(t, key); !ok || got != tc.after {
						t.Errorf("%s: stored value = %q, %v; want %q", tc.name, got, ok, tc.after)
					}
				} else if tc.init != nil {
					// A failed incr/decr must leave the value untouched.
					if got, ok := impl.kv.get(t, key); !ok || got != *tc.init {
						t.Errorf("%s: value after failed op = %q, %v; want %q", tc.name, got, ok, *tc.init)
					}
				}
			}
		})
	}
}

func sp(s string) *string { return &s }

// TestAppendBoundsProtected: the protected library bounds values with a
// hard MaxValueLen cap — an append landing exactly at the cap succeeds,
// one byte past it fails with ErrValueTooBig and leaves the old value
// intact.
func TestAppendBoundsProtected(t *testing.T) {
	kv := newProtectedKV(t, 32<<20)
	s := kv.s

	base := bytes.Repeat([]byte("a"), core.MaxValueLen-3)
	if err := s.Set([]byte("cap"), base, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]byte("cap"), []byte("xyz")); err != nil { // exactly at cap
		t.Fatalf("append to exactly MaxValueLen: %v", err)
	}
	v, _, err := s.Get([]byte("cap"))
	if err != nil || len(v) != core.MaxValueLen || !bytes.HasSuffix(v, []byte("xyz")) {
		t.Fatalf("at-cap value: len %d, err %v", len(v), err)
	}
	if err := s.Append([]byte("cap"), []byte("z")); !errors.Is(err, memcached.ErrValueTooBig) {
		t.Fatalf("append past cap: err = %v, want ErrValueTooBig", err)
	}
	if err := s.Prepend([]byte("cap"), []byte("z")); !errors.Is(err, memcached.ErrValueTooBig) {
		t.Fatalf("prepend past cap: err = %v, want ErrValueTooBig", err)
	}
	// The failed pends must not have disturbed the stored value.
	v, _, err = s.Get([]byte("cap"))
	if err != nil || len(v) != core.MaxValueLen {
		t.Fatalf("value after failed pend: len %d, err %v", len(v), err)
	}
	// A direct over-cap Set is rejected the same way.
	if err := s.Set([]byte("cap"), make([]byte, core.MaxValueLen+1), 0, 0); !errors.Is(err, memcached.ErrValueTooBig) {
		t.Fatalf("over-cap set: err = %v, want ErrValueTooBig", err)
	}
}

// TestAppendBoundsBaseline: the baseline store's value bound is the
// largest slab chunk (just under the 1 MiB page). An append whose
// combined value exceeds it fails — as an allocation failure, matching
// original memcached — and the old value survives.
func TestAppendBoundsBaseline(t *testing.T) {
	s := server.NewStore(64<<20, 8)
	old := bytes.Repeat([]byte("a"), 700<<10)
	if st := s.Set([]byte("big"), old, 0, 0); st != protocol.StatusOK {
		t.Fatalf("set 700KB: %v", st)
	}
	// 700KB + 700KB exceeds the largest chunk a 1 MiB slab page can hold.
	if st := s.Append([]byte("big"), bytes.Repeat([]byte("b"), 700<<10)); st != protocol.StatusOutOfMemory {
		t.Fatalf("oversized append: %v, want StatusOutOfMemory", st)
	}
	v, _, _, ok := s.Get([]byte("big"))
	if !ok || !bytes.Equal(v, old) {
		t.Fatalf("old value corrupted by failed append: len %d, ok %v", len(v), ok)
	}
}
