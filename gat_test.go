package plibmc

// Get-and-touch across every layer: core, both wire protocols end to end,
// hybrid mode, the session API, and the classic compat API. GAT is the
// command where atomicity matters — the expiry update and the read must
// happen under one lock — so each layer is checked for both the value and
// the expiry effect.

import (
	"errors"
	"path/filepath"
	"testing"

	"plibmc/internal/client"
	"plibmc/internal/core"
	"plibmc/internal/ralloc"
	"plibmc/internal/server"
	"plibmc/internal/shm"
	"plibmc/memcached"
	"plibmc/memcached/compat"
)

func TestGATCore(t *testing.T) {
	h := shm.New(1 << 22)
	a, _ := ralloc.Format(h)
	s, err := core.Create(a, core.Options{HashPower: 8, NumItemLocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1000)
	s.SetClock(func() int64 { return now })
	c := s.NewCtx(1)

	if _, _, _, err := c.GetAndTouch([]byte("k"), 50); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("gat missing = %v", err)
	}
	c.Set([]byte("k"), []byte("v"), 7, 10) // dies at 1010
	now = 1005
	v, flags, _, err := c.GetAndTouch([]byte("k"), 100) // now dies at 1105
	if err != nil || string(v) != "v" || flags != 7 {
		t.Fatalf("gat = %q %d %v", v, flags, err)
	}
	now = 1050 // past the original expiry, inside the extended one
	if _, _, _, err := c.Get([]byte("k")); err != nil {
		t.Fatalf("gat did not extend expiry: %v", err)
	}
	now = 1200
	if _, _, _, err := c.Get([]byte("k")); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("extended expiry should have passed")
	}
}

func TestGATOverWireBothProtocols(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "mc.sock")
	srv, err := server.New(server.Config{Network: "unix", Addr: sock, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	now := int64(5000)
	srv.Store().SetClock(func() int64 { return now })

	for _, proto := range []client.Protocol{client.Binary, client.ASCII} {
		c, err := client.Dial("unix", sock, proto)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set([]byte("k"), []byte("wire-value"), 3, 10); err != nil {
			t.Fatal(err)
		}
		v, flags, _, err := c.GetAndTouch([]byte("k"), 500)
		if err != nil || string(v) != "wire-value" || flags != 3 {
			t.Fatalf("proto %d: gat = %q %d %v", proto, v, flags, err)
		}
		now += 100 // past original expiry, inside extension
		if _, _, _, err := c.Get([]byte("k")); err != nil {
			t.Fatalf("proto %d: expiry not extended over the wire: %v", proto, err)
		}
		if _, _, _, err := c.GetAndTouch([]byte("missing"), 10); err == nil {
			t.Fatalf("proto %d: gat on missing should fail", proto)
		}
		now = 5000
		c.Close()
	}
}

func TestGATHybridAndSessionAndCompat(t *testing.T) {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 16 << 20, HashPower: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	now := int64(9000)
	book.Store().SetClock(func() int64 { return now })

	cp, _ := book.NewClientProcess(1000)
	sess, _ := cp.NewSession()
	defer sess.Close()
	if err := sess.Set([]byte("k"), []byte("v"), 0, 10); err != nil {
		t.Fatal(err)
	}

	// Session API.
	v, _, err := sess.GetAndTouch([]byte("k"), 1000)
	if err != nil || string(v) != "v" {
		t.Fatalf("session gat = %q, %v", v, err)
	}
	now += 500
	if _, _, err := sess.Get([]byte("k")); err != nil {
		t.Fatalf("session gat did not extend: %v", err)
	}

	// Hybrid socket path.
	hsock := filepath.Join(t.TempDir(), "hybrid.sock")
	rs, err := book.ServeRemote("unix", hsock)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rc, err := client.Dial("unix", hsock, client.Binary)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rv, _, _, err := rc.GetAndTouch([]byte("k"), 2000)
	if err != nil || string(rv) != "v" {
		t.Fatalf("hybrid gat = %q, %v", rv, err)
	}

	// Classic compat API over both backends.
	m := compat.Create()
	m.UsePlib(sess)
	cv, _, rcode := m.GAT([]byte("k"), 3000)
	if rcode != compat.Success || string(cv) != "v" {
		t.Fatalf("compat gat = %q, %v", cv, rcode)
	}
	if _, _, rcode := m.GAT([]byte("missing"), 10); rcode != compat.NotFound {
		t.Fatalf("compat gat missing = %v", rcode)
	}
	m2 := compat.Create()
	m2.UseSocket(rc)
	cv2, _, rcode2 := m2.GAT([]byte("k"), 3000)
	if rcode2 != compat.Success || string(cv2) != "v" {
		t.Fatalf("compat socket gat = %q, %v", cv2, rcode2)
	}
}
