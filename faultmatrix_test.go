package plibmc

// The crash-recovery fault matrix: for every registered crash point in
// the library, kill a client exactly there and assert the store comes
// back — repaired, verified, and serving — within the grace bound.
//
// Each subtest builds a small store with a survivor client and a doomed
// client, primes it past the expansion and eviction thresholds, arms one
// fault point with a handler that kills the doomed process and panics
// (the SIGKILL-mid-call analog), then drives the doomed client (and the
// bookkeeper's maintenance, which owns the expansion/eviction/reap
// points) until the point fires. Recovery must then complete without
// poisoning, the heap must verify, and the survivor must get full
// service from the repaired store.

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"plibmc/internal/core"
	"plibmc/internal/faultpoint"
	"plibmc/memcached"
)

func TestFaultMatrix(t *testing.T) {
	points := faultpoint.Names()
	if len(points) == 0 {
		t.Fatal("no registered fault points; the crash-injection sites are gone")
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			if strings.HasPrefix(point, "persist.") {
				// Checkpoint-writer points: the failing actor is the
				// bookkeeper process itself, mid-image-write. Recovery is
				// not online repair but reload-from-disk.
				runPersistFaultAt(t, point)
				return
			}
			if point == "recover.repair_fail" {
				// The point that fails the repair pass itself: hodor's
				// ladder ends in poison *by design*, so the recovery
				// asserted here is the shard supervisor's rebuild of the
				// poisoned store, not online repair (DESIGN.md §16).
				runRepairFailFaultAt(t)
				return
			}
			if strings.HasPrefix(point, "migrate.") {
				// Migrator points: the failing actor is the background
				// segment migrator of a live resize, not a library client.
				// Killed there, the migration must survive — both shards
				// healthy, a fresh attempt resuming — which is what the
				// resize runner asserts (reshard_test.go).
				runMigrateFaultAt(t, point)
				return
			}
			runFaultAt(t, point)
		})
	}
}

// runPersistFaultAt kills the bookkeeper at one point inside the
// checkpoint writer and asserts the on-disk image set still round-trips:
// OpenStore must come back on the previous checkpoint's generation with
// every pre-checkpoint write intact and the heap verifying.
func runPersistFaultAt(t *testing.T, point string) {
	defer faultpoint.DisarmAll()
	path := filepath.Join(t.TempDir(), "store.img")
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes:    16 << 20,
		Path:         path,
		HashPower:    8,
		NumItemLocks: 16,
		CallTimeout:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cp.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
	val := bytes.Repeat([]byte("v"), 256)

	// Phase 1: writes that the first checkpoint makes durable.
	const durable = 200
	for i := 0; i < durable; i++ {
		if err := s.Set(key(i), val, 0, 0); err != nil {
			t.Fatalf("phase 1: %v", err)
		}
	}
	if err := book.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: writes at risk — the checkpoint persisting them dies at
	// the armed point.
	for i := durable; i < 2*durable; i++ {
		if err := s.Set(key(i), val, 0, 0); err != nil {
			t.Fatalf("phase 2: %v", err)
		}
	}
	var fired atomic.Bool
	if err := faultpoint.Arm(point, func() {
		fired.Store(true)
		panic("faultmatrix: bookkeeper dies at " + point)
	}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("checkpoint completed; fault point %s never fired", point)
			}
		}()
		_ = book.Checkpoint()
	}()
	if !fired.Load() {
		t.Fatalf("workload never reached fault point %s", point)
	}
	faultpoint.DisarmAll()
	// The bookkeeper is dead mid-write: no Shutdown, no flush. Everything
	// it leaves behind is whatever the crash left on disk.

	// The survivor of the crash is a fresh bookkeeper: OpenStore must find
	// a verifying image (the phase-1 checkpoint) among the candidates.
	book2, err := memcached.OpenStore(memcached.Config{Path: path})
	if err != nil {
		t.Fatalf("reload after crash at %s: %v", point, err)
	}
	defer book2.Shutdown()
	if gen := book2.CheckpointGeneration(); gen != 1 {
		t.Fatalf("reloaded generation = %d after crash at %s, want 1", gen, point)
	}
	if _, err := book2.Allocator().Check(); err != nil {
		t.Fatalf("heap verification after reload: %v", err)
	}
	cp2, err := book2.NewClientProcess(1002)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cp2.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Every durable write is intact; every at-risk write is a clean miss
	// (the dying checkpoint must not have replaced the good image).
	for i := 0; i < durable; i++ {
		if v, _, err := s2.Get(key(i)); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("durable key %s lost after crash at %s: %q, %v", key(i), point, v, err)
		}
	}
	for i := durable; i < 2*durable; i++ {
		if _, _, err := s2.Get(key(i)); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("at-risk key %s = %v after crash at %s, want clean miss", key(i), err, point)
		}
	}
	// The reloaded store accepts new work and can checkpoint again.
	if err := s2.Set([]byte("post-crash"), []byte("alive"), 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := book2.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after reload: %v", err)
	}
}

// runRepairFailFaultAt covers recover.repair_fail, the one point whose
// firing is *supposed* to end in poison: the repair routine dies before
// touching anything, hodor's ladder terminates, and recovery means the
// shard supervisor detaching the dead store and rebuilding it. One shard
// of two is poisoned; the survivor must never notice, and the rebuilt
// shard must serve fresh writes.
func runRepairFailFaultAt(t *testing.T) {
	defer faultpoint.DisarmAll()
	c, err := memcached.CreateCluster(memcached.ClusterConfig{
		Shards: 2,
		Store: memcached.Config{
			HeapBytes: 16 << 20, HashPower: 8, NumItemLocks: 16,
			CallTimeout: 50 * time.Millisecond, RecoveryGrace: 200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	doomKey := []byte("doom-key-0")
	victim := c.ShardFor(doomKey)
	var safeKey []byte
	for i := 0; safeKey == nil; i++ {
		if k := []byte(fmt.Sprintf("safe-%d", i)); c.ShardFor(k) != victim {
			safeKey = k
		}
	}
	scc, err := c.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := scc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := survivor.Set(safeKey, []byte("v0"), 0, 0); err != nil {
		t.Fatal(err)
	}

	poisonClusterShard(t, c, victim, doomKey)
	faultpoint.DisarmAll()

	// The supervisor pass is the recovery: detach, rebuild (empty — the
	// shards are in-memory), re-attach.
	c.SuperviseOnce(time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for c.State(victim) != memcached.ShardHealthy {
		if time.Now().After(deadline) {
			t.Fatalf("victim shard never healthy after rebuild (state %v)", c.State(victim))
		}
		c.SuperviseOnce(time.Now())
		time.Sleep(time.Millisecond)
	}
	if sm := c.Metrics().Supervisor; sm.Rebuilds < 1 {
		t.Fatalf("no rebuild recorded: %+v", sm)
	}

	// Full service on both sides of the rebuild.
	if v, _, err := survivor.Get(safeKey); err != nil || string(v) != "v0" {
		t.Fatalf("survivor key after rebuild = %q, %v", v, err)
	}
	if err := survivor.Set(doomKey, []byte("fresh"), 0, 0); err != nil {
		t.Fatalf("fresh write on rebuilt shard: %v", err)
	}
	if v, _, err := survivor.Get(doomKey); err != nil || string(v) != "fresh" {
		t.Fatalf("rebuilt shard get = %q, %v", v, err)
	}
	if _, err := c.Shard(victim).Allocator().Check(); err != nil {
		t.Fatalf("rebuilt heap verification: %v", err)
	}
}

func runFaultAt(t *testing.T, point string) {
	defer faultpoint.DisarmAll()
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes:    16 << 20,
		HashPower:    8, // 256 buckets: >384 items trigger expansion
		NumItemLocks: 16,
		MemLimit:     512 << 10, // small enough that the workload evicts
		CallTimeout:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer book.Shutdown()
	lib := book.Library()

	survivorProc, err := book.NewClientProcess(1001)
	if err != nil {
		t.Fatal(err)
	}
	survivor, err := survivorProc.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	doomedProc, err := book.NewClientProcess(1002)
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := doomedProc.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	// Prime past the expansion threshold, plus same-width counters for
	// the in-place increment path. Armed only afterwards, so priming
	// cannot fire the point.
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
	val := bytes.Repeat([]byte("v"), 256)
	const primed = 450
	for i := 0; i < primed; i++ {
		if err := survivor.Set(key(i), val, 0, 0); err != nil {
			t.Fatalf("priming: %v", err)
		}
	}
	ctr := func(i int) []byte { return []byte(fmt.Sprintf("ctr-%d", i)) }
	for i := 0; i < 8; i++ {
		if err := survivor.Set(ctr(i), []byte("500"), 0, 0); err != nil {
			t.Fatal(err)
		}
	}

	var fired atomic.Bool
	if err := faultpoint.Arm(point, func() {
		fired.Store(true)
		doomedProc.Kill()
		panic("faultmatrix: injected crash at " + point)
	}); err != nil {
		t.Fatal(err)
	}

	// Drive a mixed workload through the doomed client, with maintenance
	// passes interleaved; one of them will step on the mine. Errors are
	// expected once the crash lands (ErrKilled, parked calls).
	for i := 0; i < 8000 && !fired.Load(); i++ {
		k := key(i % (2 * primed)) // half misses/new links, half overwrites
		switch i % 6 {
		case 0:
			_ = doomed.Set(k, val, 0, 0)
		case 1:
			_, _, _ = doomed.Get(k)
		case 2:
			_ = doomed.Delete(k)
		case 3:
			_, _ = doomed.Increment(ctr(i%8), 1) // same-width rewrite: 500 -> 501...
		case 4:
			_ = doomed.Set([]byte(fmt.Sprintf("new-%s-%d", point, i)), val, 0, 0)
		case 5:
			// A mixed batch: one crossing, several ops — the only arm that
			// can step on ops.batch.mid_dispatch (it fires between two ops
			// of the same batch), and a second road to the store points.
			_, _ = doomed.ExecBatch([]memcached.BatchOp{
				{Code: memcached.BatchSet, Key: k, Value: val},
				{Code: memcached.BatchIncr, Key: ctr(i % 8), Delta: 1},
				{Code: memcached.BatchGet, Key: k},
				{Code: memcached.BatchDelete, Key: k},
			})
		}
		if i%25 == 24 {
			book.RunMaintenanceOnce()
		}
	}
	if !fired.Load() {
		t.Fatalf("workload never reached fault point %s", point)
	}

	// Recovery must complete within the grace bound without poisoning.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if lib.Poisoned() {
			t.Fatalf("library poisoned after crash at %s", point)
		}
		if m := lib.Metrics(); m.Recoveries >= 1 && !lib.Recovering() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no recovery within grace after crash at %s (recovering=%v)",
				point, lib.Recovering())
		}
		time.Sleep(time.Millisecond)
	}
	if _, repairs := book.LastRepair(); repairs < 1 {
		t.Fatalf("no repair pass recorded after crash at %s", point)
	}

	// The heap verifies.
	if _, err := book.Allocator().Check(); err != nil {
		t.Fatalf("heap verification after recovery: %v", err)
	}

	// The survivor gets full service: Get over the keyspace, and a
	// fresh Set/Get/MGet/Delete roundtrip.
	servedGets := 0
	for i := 0; i < primed; i++ {
		if v, _, err := survivor.Get(key(i)); err == nil {
			if !bytes.Equal(v, val) {
				t.Fatalf("%s corrupt after recovery", key(i))
			}
			servedGets++
		}
	}
	t.Logf("%s: survivor Get served %d/%d primed keys after repair", point, servedGets, primed)
	rt := []byte("roundtrip-" + point)
	if err := survivor.Set(rt, []byte("alive"), 0, 0); err != nil {
		t.Fatalf("post-recovery Set: %v", err)
	}
	res, err := survivor.MGet([][]byte{rt, key(1)})
	if err != nil || len(res) != 2 || !res[0].Found {
		t.Fatalf("post-recovery MGet: %v, %+v", err, res)
	}
	if err := survivor.Delete(rt); err != nil {
		t.Fatalf("post-recovery Delete: %v", err)
	}

	// A post-recovery batch rides one crossing with per-op errors isolated:
	// the Add on an existing key fails alone, its siblings all commit, and
	// the crossing itself reports no error.
	bkey := []byte("batch-" + point)
	bres, err := survivor.ExecBatch([]memcached.BatchOp{
		{Code: memcached.BatchSet, Key: bkey, Value: []byte("41")},
		{Code: memcached.BatchAdd, Key: bkey, Value: []byte("x")},
		{Code: memcached.BatchIncr, Key: bkey, Delta: 1},
		{Code: memcached.BatchGet, Key: bkey},
	})
	if err != nil {
		t.Fatalf("post-recovery ExecBatch: %v", err)
	}
	if !errors.Is(bres[1].Err, core.ErrExists) {
		t.Fatalf("post-recovery batch Add error = %v, want ErrExists", bres[1].Err)
	}
	if bres[0].Err != nil || bres[2].Err != nil || bres[3].Err != nil {
		t.Fatalf("post-recovery batch: Add's error leaked into siblings: %+v", bres)
	}
	if bres[2].Num != 42 || !bytes.Equal(bres[3].Value, []byte("42")) {
		t.Fatalf("post-recovery batch results: num=%d value=%q, want 42/\"42\"",
			bres[2].Num, bres[3].Value)
	}
	if err := survivor.Delete(bkey); err != nil {
		t.Fatalf("post-recovery batch cleanup: %v", err)
	}

	// Statistics are self-consistent with a full walk (no other actor is
	// running: doomed is dead, maintenance only runs when called).
	st := book.Stats()
	walked := survivor.Ctx().ForEach(func(*core.Entry) bool { return true })
	if uint64(walked) != st.CurrItems {
		t.Fatalf("CurrItems = %d but ForEach walked %d after recovery", st.CurrItems, walked)
	}
	if st.Recoveries < 1 {
		t.Fatalf("Stats().Recoveries = %d, want >= 1", st.Recoveries)
	}
}
