package plibmc

// One benchmark per table and figure of the paper's evaluation (§4), plus
// the §2 empty-call microbenchmark and the ablation benches called out in
// DESIGN.md §6. The full parameter sweeps (threads 1..40, all four
// workloads, all four series) are run by cmd/benchfig; the benchmarks here
// are the same measurements at representative points, runnable with
// `go test -bench=. -benchmem`.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"plibmc/internal/bench"
	"plibmc/internal/core"
	"plibmc/internal/hodor"
	"plibmc/internal/pku"
	"plibmc/internal/proc"
	"plibmc/internal/ralloc"
	"plibmc/internal/shm"
	"plibmc/internal/ycsb"
	"plibmc/memcached"
)

// --- §2: empty-call microbenchmarks (E0) ---------------------------------

func BenchmarkEmptyCallHodor(b *testing.B) {
	heap := shm.New(shm.PageSize)
	pt := pku.NewPageTable(heap)
	dom, _ := hodor.NewDomain(heap, pt)
	lib := hodor.NewLibrary("libnoop", 0, dom)
	p, _ := proc.NewProcess(0, heap, 0x10000)
	res, _ := (hodor.Loader{}).Load(p, hodor.Binary{}, lib)
	s, _ := res.Attach(p.NewThread(), lib)
	noop := func(*proc.Thread, struct{}) (struct{}, error) { return struct{}{}, nil }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hodor.Call(s, noop, struct{}{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmptyCallUDS(b *testing.B) {
	h, err := bench.UDSRoundTrip(b.TempDir(), b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(h.Mean().Nanoseconds()), "ns/rtt")
}

// --- Figure 5: per-operation latency --------------------------------------

func fig5Fixture(b *testing.B, kind bench.Kind) *bench.Fixture {
	b.Helper()
	f, err := bench.NewFixture(kind, bench.Options{
		TempDir: b.TempDir(), HeapBytes: 256 << 20, HashPower: 14,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(f.Close)
	return f
}

func benchFig5(b *testing.B, kind bench.Kind, op bench.Op, valSize int) {
	f := fig5Fixture(b, kind)
	const records = 4096
	w := ycsb.Workload{RecordCount: records, ValueSize: valSize, ReadProportion: 1}
	if err := bench.Preload(f, w); err != nil {
		b.Fatal(err)
	}
	th, err := f.NewThread()
	if err != nil {
		b.Fatal(err)
	}
	defer th.Close()
	if op == bench.OpIncr {
		if err := th.Set([]byte("counter"), []byte("100000")); err != nil {
			b.Fatal(err)
		}
	}
	val := make([]byte, valSize)
	key := make([]byte, 0, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key = ycsb.KeyInto(key, uint64(i)%records)
		var err error
		switch op {
		case bench.OpGet:
			err = th.Get(key)
		case bench.OpSet:
			err = th.Set(key, val)
		case bench.OpDelete:
			b.StopTimer()
			th.Set(key, val) // ensure present, untimed
			b.StartTimer()
			err = th.Delete(key)
		case bench.OpIncr:
			err = th.Incr([]byte("counter"), 1)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	rows := []struct {
		name    string
		op      bench.Op
		valSize int
	}{
		{"Get128B", bench.OpGet, 128},
		{"Get5KB", bench.OpGet, 5120},
		{"Set128B", bench.OpSet, 128},
		{"Set5KB", bench.OpSet, 5120},
		{"Delete", bench.OpDelete, 128},
		{"Increment", bench.OpIncr, 128},
	}
	systems := []bench.Kind{bench.Baseline, bench.PlibHodor, bench.PlibNoHodor}
	for _, row := range rows {
		for _, sys := range systems {
			b.Run(fmt.Sprintf("%s/%s", row.name, sys), func(b *testing.B) {
				benchFig5(b, sys, row.op, row.valSize)
			})
		}
	}
}

// --- Figures 6–9: throughput vs client threads ----------------------------

func benchThroughput(b *testing.B, kind bench.Kind, serverThreads int, w ycsb.Workload, clients int) {
	f, err := bench.NewFixture(kind, bench.Options{
		TempDir: b.TempDir(), HeapBytes: 256 << 20, HashPower: 14,
		ServerThreads: serverThreads,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := bench.Preload(f, w); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	per := b.N/clients + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			th, err := f.NewThread()
			if err != nil {
				b.Error(err)
				return
			}
			defer th.Close()
			gen := w.NewClient(seed)
			for i := 0; i < per; i++ {
				kind, key, val := gen.Next()
				if kind == ycsb.OpRead {
					th.Get(key)
				} else {
					if err := th.Set(key, val); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}(int64(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.ReportMetric(float64(per*clients)/elapsed.Seconds()/1000, "KTPS")
}

// figureBench runs one figure's four series at a representative client
// count (cmd/benchfig sweeps 1..40).
func figureBench(b *testing.B, w ycsb.Workload) {
	const clients = 8
	b.Run("memcached-4srv", func(b *testing.B) { benchThroughput(b, bench.Baseline, 4, w, clients) })
	b.Run("memcached-8srv", func(b *testing.B) { benchThroughput(b, bench.Baseline, 8, w, clients) })
	b.Run("plib-hodor", func(b *testing.B) { benchThroughput(b, bench.PlibHodor, 0, w, clients) })
	b.Run("plib-nohodor", func(b *testing.B) { benchThroughput(b, bench.PlibNoHodor, 0, w, clients) })
}

func BenchmarkFigure6_WriteHeavy128(b *testing.B) { figureBench(b, ycsb.WriteHeavy128(20000)) }
func BenchmarkFigure7_WriteHeavy5K(b *testing.B)  { figureBench(b, ycsb.WriteHeavy5K(2000)) }
func BenchmarkFigure8_ReadHeavy128(b *testing.B)  { figureBench(b, ycsb.ReadHeavy128(20000)) }
func BenchmarkFigure9_ReadHeavy5K(b *testing.B)   { figureBench(b, ycsb.ReadHeavy5K(2000)) }

// --- Ablations (DESIGN.md §6) ---------------------------------------------

// Ablation 1: a single LRU list vs hash-partitioned lists — the contention
// the paper hit and fixed (§3.2).
func BenchmarkAblationLRUPartitions(b *testing.B) {
	for _, numLRUs := range []uint64{1, 32} {
		b.Run(fmt.Sprintf("lrus=%d", numLRUs), func(b *testing.B) {
			h := shm.New(256 << 20)
			a, err := ralloc.Format(h)
			if err != nil {
				b.Fatal(err)
			}
			s, err := core.Create(a, core.Options{
				HashPower: 14, NumItemLocks: 1024, NumLRUs: numLRUs, FixedSize: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Force every set to traverse the LRU lock by making items
			// always fresh (bump threshold irrelevant for inserts).
			var seq int64
			b.RunParallel(func(pb *testing.PB) {
				mu := sync.Mutex{}
				mu.Lock()
				seq++
				id := seq
				mu.Unlock()
				ctx := s.NewCtx(uint64(id)*7 + 1)
				defer ctx.Close()
				key := make([]byte, 0, 20)
				val := make([]byte, 128)
				i := uint64(0)
				for pb.Next() {
					key = ycsb.KeyInto(key, i%4096)
					if err := ctx.Set(key, val, 0, 0); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// Ablation 2: scattered statistics vs the original single-lock design the
// paper replaced (§3.2).
func BenchmarkAblationStats(b *testing.B) {
	for _, locked := range []bool{true, false} {
		name := "scattered"
		if locked {
			name = "single-lock"
		}
		b.Run(name, func(b *testing.B) {
			h := shm.New(128 << 20)
			a, err := ralloc.Format(h)
			if err != nil {
				b.Fatal(err)
			}
			s, err := core.Create(a, core.Options{
				HashPower: 14, NumItemLocks: 1024, LockedStats: locked, FixedSize: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctxSetup := s.NewCtx(1)
			val := make([]byte, 128)
			key := make([]byte, 0, 20)
			for i := uint64(0); i < 4096; i++ {
				key = ycsb.KeyInto(key, i)
				if err := ctxSetup.Set(key, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			var seq int64
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				seq++
				id := seq
				mu.Unlock()
				ctx := s.NewCtx(uint64(id))
				defer ctx.Close()
				k := make([]byte, 0, 20)
				var buf []byte
				i := uint64(0)
				for pb.Next() {
					k = ycsb.KeyInto(k, i%4096)
					buf, _, _, _ = ctx.GetAppend(buf[:0], k)
					i++
				}
			})
		})
	}
}

// Ablation 6: the locked read path vs the lock-free optimistic (seqlock)
// read path, on the 95/5 read-mostly mix the paper's headline figures use.
// The per-bucket spinlock is the residual synchronization left on Get once
// domain crossings are cheap; the seqlock path removes it.
func BenchmarkAblationSeqlockRead(b *testing.B) {
	for _, optimistic := range []bool{false, true} {
		name := "locked"
		if optimistic {
			name = "seqlock"
		}
		b.Run(name, func(b *testing.B) {
			h := shm.New(256 << 20)
			a, err := ralloc.Format(h)
			if err != nil {
				b.Fatal(err)
			}
			s, err := core.Create(a, core.Options{
				HashPower: 14, NumItemLocks: 1024, FixedSize: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctxSetup := s.NewCtx(1)
			val := make([]byte, 128)
			key := make([]byte, 0, 20)
			for i := uint64(0); i < 4096; i++ {
				key = ycsb.KeyInto(key, i)
				if err := ctxSetup.Set(key, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			ctxSetup.Close()
			var seq int64
			var mu sync.Mutex
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				seq++
				id := seq
				mu.Unlock()
				ctx := s.NewCtx(uint64(id) * 31)
				defer ctx.Close()
				ctx.DisableOptimisticReads = !optimistic
				k := make([]byte, 0, 20)
				v := make([]byte, 128)
				var buf []byte
				i := uint64(id) * 2654435761
				for pb.Next() {
					k = ycsb.KeyInto(k, i%4096)
					if i%20 == 19 {
						if err := ctx.Set(k, v, 0, 0); err != nil {
							b.Error(err)
							return
						}
					} else {
						buf, _, _, _ = ctx.GetAppend(buf[:0], k)
					}
					i++
				}
			})
			st := s.Stats()
			if st.Gets > 0 {
				b.ReportMetric(float64(st.GetFastpathHits)/float64(st.Gets), "fastpath/get")
			}
			b.ReportMetric(float64(st.SeqlockRetries), "seq-retries")
		})
	}
}

// Checksum ablation: the read-path header verification (one 32-byte
// recompute-and-compare per matched item) on vs off, on the 95/5 mix the
// paper evaluates. The delta is the price of corruption detection on every
// read; the PR 5 budget is ≤5%.
func BenchmarkAblationChecksum(b *testing.B) {
	for _, verify := range []bool{true, false} {
		name := "verify=on"
		if !verify {
			name = "verify=off"
		}
		b.Run(name, func(b *testing.B) {
			h := shm.New(256 << 20)
			a, err := ralloc.Format(h)
			if err != nil {
				b.Fatal(err)
			}
			s, err := core.Create(a, core.Options{
				HashPower: 14, NumItemLocks: 1024, FixedSize: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctxSetup := s.NewCtx(1)
			val := make([]byte, 128)
			key := make([]byte, 0, 20)
			for i := uint64(0); i < 4096; i++ {
				key = ycsb.KeyInto(key, i)
				if err := ctxSetup.Set(key, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			ctxSetup.Close()
			var seq int64
			var mu sync.Mutex
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				seq++
				id := seq
				mu.Unlock()
				ctx := s.NewCtx(uint64(id) * 31)
				defer ctx.Close()
				ctx.DisableReadVerify = !verify
				k := make([]byte, 0, 20)
				v := make([]byte, 128)
				var buf []byte
				i := uint64(id) * 2654435761
				for pb.Next() {
					k = ycsb.KeyInto(k, i%4096)
					if i%20 == 19 {
						if err := ctx.Set(k, v, 0, 0); err != nil {
							b.Error(err)
							return
						}
					} else {
						buf, _, _, _ = ctx.GetAppend(buf[:0], k)
					}
					i++
				}
			})
		})
	}
}

// Ablation 3: the §3.4 copy-before-lock idiom on vs off.
func BenchmarkAblationArgCopy(b *testing.B) {
	for _, capture := range []bool{true, false} {
		name := "capture=on"
		if !capture {
			name = "capture=off"
		}
		b.Run(name, func(b *testing.B) {
			h := shm.New(128 << 20)
			a, _ := ralloc.Format(h)
			s, err := core.Create(a, core.Options{HashPower: 14, NumItemLocks: 1024, FixedSize: true})
			if err != nil {
				b.Fatal(err)
			}
			ctx := s.NewCtx(1)
			ctx.CaptureClientBuffers = capture
			val := make([]byte, 5120)
			key := []byte("the-key")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ctx.Set(key, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// copyVal implements hodor.Copier for the trampoline auto-copy ablation.
type copyVal struct{ data []byte }

func (c copyVal) LibCopy() any {
	return copyVal{data: append([]byte(nil), c.data...)}
}

// Ablation 4: the trampoline argument auto-copy option (§2), which the
// paper leaves off in favour of manual copying of sensitive arguments.
func BenchmarkAblationTrampolineCopy(b *testing.B) {
	for _, autoCopy := range []bool{false, true} {
		name := "autocopy=off"
		if autoCopy {
			name = "autocopy=on"
		}
		b.Run(name, func(b *testing.B) {
			heap := shm.New(shm.PageSize)
			pt := pku.NewPageTable(heap)
			dom, _ := hodor.NewDomain(heap, pt)
			lib := hodor.NewLibrary("libcopy", 0, dom)
			lib.CopyArgs = autoCopy
			p, _ := proc.NewProcess(0, heap, 0x10000)
			res, _ := (hodor.Loader{}).Load(p, hodor.Binary{}, lib)
			s, _ := res.Attach(p.NewThread(), lib)
			fn := func(_ *proc.Thread, a copyVal) (int, error) { return len(a.data), nil }
			arg := copyVal{data: make([]byte, 128)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hodor.Call(s, fn, arg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 8 (ISSUE 6 tentpole): batched gate crossings. The 95/5
// read-mostly mix dispatched through Session.ExecBatch at growing batch
// sizes, against the one-crossing-per-op baseline (batch=1). Crossings are
// measured, not assumed, from the library's completed-crossing counter;
// the acceptance gate — crossings-per-op < 0.1 once batches reach 16 —
// fails the benchmark outright if batching ever regresses.
func BenchmarkAblationBatch(b *testing.B) {
	for _, batch := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			book, err := memcached.CreateStore(memcached.Config{
				HeapBytes: 256 << 20, HashPower: 14, FixedSize: true, NumItemLocks: 1024,
			})
			if err != nil {
				b.Fatal(err)
			}
			cp, err := book.NewClientProcess(1000)
			if err != nil {
				b.Fatal(err)
			}
			s, err := cp.NewSession()
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			const records = 4096
			val := make([]byte, 128)
			key := make([]byte, 0, 20)
			for i := uint64(0); i < records; i++ {
				key = ycsb.KeyInto(key, i)
				if err := s.Set(key, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			ops := make([]memcached.BatchOp, batch)
			// One key buffer per batch slot: the ops hold the slices until
			// the crossing dispatches them.
			keys := make([][]byte, batch)
			for j := range keys {
				keys[j] = make([]byte, 0, 20)
			}
			startCross := book.Library().Metrics().Crossings
			n := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					keys[j] = ycsb.KeyInto(keys[j][:0], uint64(n)%records)
					if n%20 == 19 {
						ops[j] = memcached.BatchOp{Code: memcached.BatchSet, Key: keys[j], Value: val}
					} else {
						ops[j] = memcached.BatchOp{Code: memcached.BatchGet, Key: keys[j]}
					}
					n++
				}
				if batch == 1 {
					// The unbatched baseline: one trampoline crossing per op.
					if ops[0].Code == memcached.BatchSet {
						err = s.Set(ops[0].Key, ops[0].Value, 0, 0)
					} else {
						_, _, err = s.Get(ops[0].Key)
					}
					if err != nil {
						b.Fatal(err)
					}
				} else if _, err := s.ExecBatch(ops); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			crossings := book.Library().Metrics().Crossings - startCross
			cpo := float64(crossings) / float64(n)
			b.ReportMetric(cpo, "crossings/op")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(n), "ns/key")
			if batch >= 16 && cpo >= 0.1 {
				b.Fatalf("crossings/op = %.4f at batch size %d, want < 0.1", cpo, batch)
			}
		})
	}
}

// Extension bench: batched MGet through one trampoline vs one trampoline
// per Get — the protected-library analog of the socket client's batching.
// The batched path must be at least 2x faster per key at 64 keys; slower
// means the batch dispatch has regressed into per-op crossings.
func BenchmarkMGetAmortization(b *testing.B) {
	book, err := memcached.CreateStore(memcached.Config{HeapBytes: 64 << 20, HashPower: 12})
	if err != nil {
		b.Fatal(err)
	}
	cp, _ := book.NewClientProcess(1000)
	s, _ := cp.NewSession()
	defer s.Close()
	const batch = 64
	keys := make([][]byte, batch)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%03d", i))
		if err := s.Set(keys[i], []byte("value"), 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	var singleNS, batchedNS float64
	b.Run("one-call-per-get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, k := range keys {
				if _, _, err := s.Get(k); err != nil {
					b.Fatal(err)
				}
			}
		}
		singleNS = float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch)
		b.ReportMetric(singleNS, "ns/key")
	})
	b.Run("batched-mget", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := s.MGet(keys)
			if err != nil || len(res) != batch {
				b.Fatal(err)
			}
		}
		batchedNS = float64(b.Elapsed().Nanoseconds()) / float64(b.N*batch)
		b.ReportMetric(batchedNS, "ns/key")
	})
	if singleNS > 0 && batchedNS > 0 {
		speedup := singleNS / batchedNS
		b.ReportMetric(speedup, "speedup")
		if speedup < 2 {
			b.Fatalf("batched MGet per-key speedup = %.2fx at %d keys, want >= 2x", speedup, batch)
		}
	}
}

// Ablation 5: Ralloc's per-thread caches on vs off (a fresh cache per
// operation defeats caching and hits the global lists every time).
func BenchmarkAblationTcache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "tcache=on"
		if !cached {
			name = "tcache=off"
		}
		b.Run(name, func(b *testing.B) {
			h := shm.New(128 << 20)
			a, err := ralloc.Format(h)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			if cached {
				c := a.NewCache()
				for i := 0; i < b.N; i++ {
					off, err := c.Malloc(128)
					if err != nil {
						b.Fatal(err)
					}
					c.Free(off)
				}
			} else {
				for i := 0; i < b.N; i++ {
					c := a.NewCache()
					off, err := c.Malloc(128)
					if err != nil {
						b.Fatal(err)
					}
					c.Free(off)
					c.Flush()
				}
			}
		})
	}
}

// Ablation: latency recording on vs off on the 95/5 mix. The histograms
// are per-thread-slot in the heap — the scattered-statistics discipline —
// so "on" must cost only the sampling branch plus one in every
// LatencySampleEvery ops paying two clock reads and three uncontended
// heap adds; the budget is <=5% of throughput. A single shared histogram
// would instead serialize every op on one cache line.
func BenchmarkAblationMetrics(b *testing.B) {
	for _, enabled := range []bool{false, true} {
		name := "latency=off"
		if enabled {
			name = "latency=on"
		}
		b.Run(name, func(b *testing.B) {
			h := shm.New(256 << 20)
			a, err := ralloc.Format(h)
			if err != nil {
				b.Fatal(err)
			}
			s, err := core.Create(a, core.Options{
				HashPower: 14, NumItemLocks: 1024, FixedSize: true,
				DisableLatency: !enabled,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctxSetup := s.NewCtx(1)
			val := make([]byte, 128)
			key := make([]byte, 0, 20)
			for i := uint64(0); i < 4096; i++ {
				key = ycsb.KeyInto(key, i)
				if err := ctxSetup.Set(key, val, 0, 0); err != nil {
					b.Fatal(err)
				}
			}
			ctxSetup.Close()
			var seq int64
			var mu sync.Mutex
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				seq++
				id := seq
				mu.Unlock()
				ctx := s.NewCtx(uint64(id) * 31)
				defer ctx.Close()
				k := make([]byte, 0, 20)
				v := make([]byte, 128)
				var buf []byte
				i := uint64(id) * 2654435761
				for pb.Next() {
					k = ycsb.KeyInto(k, i%4096)
					if i%20 == 19 {
						if err := ctx.Set(k, v, 0, 0); err != nil {
							b.Error(err)
							return
						}
					} else {
						buf, _, _, _ = ctx.GetAppend(buf[:0], k)
					}
					i++
				}
			})
			if enabled {
				ls := s.Latency()
				b.ReportMetric(float64(ls.Classes[core.LatGet].Count()), "get-samples")
			}
		})
	}
}
