// Command plibd is the bookkeeping daemon for a protected-library store:
// it creates the store (or reopens an existing heap image), runs periodic
// maintenance (eviction to the watermark, expiry sweeps, resizing), can
// optionally serve remote clients over a socket (hybrid mode, paper §6),
// and flushes the heap back to its backing file on shutdown so a restart
// resumes with contents intact.
//
//	plibd -file /var/tmp/store.img -heap 1024 -listen unix:/tmp/plib.sock
//
// Because processes in this reproduction are simulated inside one Go
// program, local clients attach in-process (see the examples); plibd's
// remote interface is the way separate OS processes reach the store.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"plibmc/memcached"
)

func main() {
	var (
		file     = flag.String("file", "", "backing file for the heap image (empty: volatile)")
		heapMB   = flag.Uint64("heap", 256, "heap size in MiB")
		hashPow  = flag.Uint("hashpower", 18, "log2 of the hash-table bucket count")
		fixed    = flag.Bool("fixed", false, "disable hash-table resizing (the paper's configuration)")
		memLimit = flag.Uint64("m", 0, "memory limit in MiB (0: 7/8 of heap)")
		listen   = flag.String("listen", "", "serve remote clients on net:addr (e.g. unix:/tmp/plib.sock or tcp:127.0.0.1:11211)")
		interval = flag.Duration("maint", time.Second, "maintenance interval")
		ckpt     = flag.Duration("checkpoint", 0, "live-checkpoint interval (0: only flush at shutdown; requires -file)")
		metrics  = flag.String("metrics-addr", "", "serve /metrics (Prometheus) and /debug/vars over HTTP on this address")
		latEvery = flag.Uint64("latency-sample", 0, "record 1 in N operation latencies (0: default period, 1: every op)")
	)
	flag.Parse()

	cfg := memcached.Config{
		HeapBytes:          *heapMB << 20,
		Path:               *file,
		HashPower:          *hashPow,
		FixedSize:          *fixed,
		MemLimit:           *memLimit << 20,
		LatencySampleEvery: *latEvery,
	}

	var b *memcached.Bookkeeper
	var err error
	if *file != "" {
		if _, statErr := os.Stat(*file); statErr == nil {
			b, err = memcached.OpenStore(cfg)
			fmt.Printf("plibd: reopened store from %s\n", *file)
		} else {
			b, err = memcached.CreateStore(cfg)
			fmt.Printf("plibd: created store (will flush to %s)\n", *file)
		}
	} else {
		b, err = memcached.CreateStore(cfg)
		fmt.Println("plibd: created volatile store")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plibd:", err)
		os.Exit(1)
	}

	b.StartMaintenance(*interval)
	if *ckpt > 0 {
		if *file == "" {
			fmt.Fprintln(os.Stderr, "plibd: -checkpoint requires -file")
			os.Exit(1)
		}
		ckptErrs := b.StartCheckpointing(*ckpt)
		go func() {
			for err := range ckptErrs {
				fmt.Fprintln(os.Stderr, "plibd: checkpoint failed:", err)
			}
		}()
		fmt.Printf("plibd: live checkpoints every %v\n", *ckpt)
	}

	var remote *memcached.RemoteServer
	if *listen != "" {
		network, addr, ok := strings.Cut(*listen, ":")
		if !ok {
			fmt.Fprintln(os.Stderr, "plibd: -listen must be net:addr")
			os.Exit(1)
		}
		remote, err = b.ServeRemote(network, addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plibd:", err)
			os.Exit(1)
		}
		fmt.Printf("plibd: hybrid socket interface on %s\n", *listen)
	}

	if *metrics != "" {
		go func() {
			if err := http.ListenAndServe(*metrics, b.MetricsHandler()); err != nil {
				fmt.Fprintln(os.Stderr, "plibd: metrics server:", err)
			}
		}()
		fmt.Printf("plibd: metrics on http://%s/metrics\n", *metrics)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("plibd: shutting down")
	if remote != nil {
		remote.Close()
	}
	if err := b.Shutdown(); err != nil {
		fmt.Fprintln(os.Stderr, "plibd: flush failed:", err)
		os.Exit(1)
	}
	st := b.Stats()
	m := b.Library().Metrics()
	fmt.Printf("plibd: flushed; %d items, %d bytes, %d gets, %d sets; %d trampolined calls (%d crashes, %d rejected)\n",
		st.CurrItems, st.Bytes, st.Gets, st.Sets, m.Calls, m.Crashes, m.Rejected)
}
