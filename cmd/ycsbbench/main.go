// Command ycsbbench drives the YCSB workloads against either backend:
//
//	ycsbbench -backend plib -workload readheavy128 -threads 8
//	ycsbbench -backend socket -addr unix:/tmp/mc.sock -workload writeheavy5k
//	ycsbbench -backend baseline -serverthreads 8    (self-hosted baseline)
//
// It loads the record set, runs the mix for -duration, and reports
// throughput (KTPS) plus a latency histogram summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"plibmc/internal/bench"
	"plibmc/internal/client"
	"plibmc/internal/histogram"
	"plibmc/internal/ycsb"
)

func main() {
	var (
		backendArg    = flag.String("backend", "plib", "plib, plib-nohodor, baseline, or socket")
		addr          = flag.String("addr", "", "net:addr of an external server (backend=socket)")
		workloadArg   = flag.String("workload", "readheavy128", "readheavy128, writeheavy128, readheavy5k, writeheavy5k")
		records       = flag.Uint64("records", 100000, "records to load")
		threads       = flag.Int("threads", 4, "client threads")
		duration      = flag.Duration("duration", 5*time.Second, "measurement duration")
		serverThreads = flag.Int("serverthreads", 4, "server threads (backend=baseline)")
		heapMB        = flag.Uint64("heap", 512, "heap / memory limit in MiB")
	)
	flag.Parse()

	var w ycsb.Workload
	switch *workloadArg {
	case "readheavy128":
		w = ycsb.ReadHeavy128(*records)
	case "writeheavy128":
		w = ycsb.WriteHeavy128(*records)
	case "readheavy5k":
		w = ycsb.ReadHeavy5K(*records)
	case "writeheavy5k":
		w = ycsb.WriteHeavy5K(*records)
	default:
		fatal(fmt.Errorf("unknown workload %q", *workloadArg))
	}

	var fixture *bench.Fixture
	switch *backendArg {
	case "plib", "plib-nohodor", "baseline":
		kind := map[string]bench.Kind{
			"plib": bench.PlibHodor, "plib-nohodor": bench.PlibNoHodor, "baseline": bench.Baseline,
		}[*backendArg]
		f, err := bench.NewFixture(kind, bench.Options{
			TempDir: os.TempDir(), HeapBytes: *heapMB << 20,
			HashPower: 17, ServerThreads: *serverThreads,
		})
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		fixture = f
	case "socket":
		network, address, ok := strings.Cut(*addr, ":")
		if !ok {
			fatal(fmt.Errorf("-addr must be net:addr"))
		}
		fixture = &bench.Fixture{
			Kind: bench.Baseline,
			NewThread: func() (bench.ThreadKV, error) {
				c, err := client.Dial(network, address, client.Binary)
				if err != nil {
					return nil, err
				}
				return extClient{c}, nil
			},
			Close: func() {},
		}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendArg))
	}

	fmt.Printf("loading %d records of %d bytes...\n", w.RecordCount, w.ValueSize)
	start := time.Now()
	if err := bench.Preload(fixture, w); err != nil {
		fatal(err)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("running %s with %d threads for %v...\n", *workloadArg, *threads, *duration)
	ktps, hist, err := runMeasured(fixture, w, *threads, *duration)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("throughput: %.1f KTPS\n", ktps)
	fmt.Printf("latency: %v\n", hist)
}

// runMeasured is Throughput plus per-op latency sampling.
func runMeasured(f *bench.Fixture, w ycsb.Workload, threads int, dur time.Duration) (float64, *histogram.H, error) {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	hists := make([]*histogram.H, threads)
	counts := make([]int64, threads)
	errs := make(chan error, threads)
	for i := 0; i < threads; i++ {
		hists[i] = histogram.New()
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			th, err := f.NewThread()
			if err != nil {
				errs <- err
				return
			}
			defer th.Close()
			gen := w.NewClient(int64(id + 1))
			for {
				select {
				case <-stop:
					return
				default:
				}
				kind, key, val := gen.Next()
				t0 := time.Now()
				if kind == ycsb.OpRead {
					th.Get(key)
				} else {
					if err := th.Set(key, val); err != nil {
						errs <- err
						return
					}
				}
				hists[id].Record(time.Since(t0))
				counts[id]++
			}
		}(i)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		return 0, nil, err
	default:
	}
	total := histogram.New()
	var ops int64
	for i := range hists {
		total.Merge(hists[i])
		ops += counts[i]
	}
	return float64(ops) / dur.Seconds() / 1000, total, nil
}

type extClient struct{ c *client.Client }

func (e extClient) Get(key []byte) error {
	_, _, _, err := e.c.Get(key)
	return err
}
func (e extClient) Set(key, value []byte) error { return e.c.Set(key, value, 0, 0) }
func (e extClient) Delete(key []byte) error     { return e.c.Delete(key) }
func (e extClient) Incr(key []byte, d uint64) error {
	_, err := e.c.Increment(key, d)
	return err
}
func (e extClient) Close() { e.c.Close() }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ycsbbench:", err)
	os.Exit(1)
}
