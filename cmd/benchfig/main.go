// Command benchfig regenerates the tables and figures of the paper's
// evaluation (§4) and prints them as text tables / CSV series:
//
//	benchfig -exp e0          §2 empty-call microbenchmark
//	benchfig -exp f5          Figure 5: per-operation latency and speedup
//	benchfig -exp f6          Figure 6: throughput, 128 B, write heavy
//	benchfig -exp f7          Figure 7: throughput, 5 KB, write heavy
//	benchfig -exp f8          Figure 8: throughput, 128 B, read heavy
//	benchfig -exp f9          Figure 9: throughput, 5 KB, read heavy
//	benchfig -exp fb          batching ablation: crossings/op vs batch size
//	benchfig -exp all         everything
//
// Record counts and measurement durations are scaled for commodity
// machines (see DESIGN.md §5); -records128, -records5k, -duration and
// -threads override them.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"plibmc/internal/bench"
	"plibmc/internal/core"
	"plibmc/internal/ycsb"
	"plibmc/memcached"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: e0, f5, f6, f7, f8, f9, all")
		records128 = flag.Uint64("records128", 200000, "records loaded for 128 B workloads")
		records5k  = flag.Uint64("records5k", 20000, "records loaded for 5 KB workloads")
		duration   = flag.Duration("duration", 2*time.Second, "measurement duration per point")
		threadsArg = flag.String("threads", "1,2,4,8,12,16,20,28,40", "client-thread sweep")
		latSamples = flag.Int("latsamples", 20000, "samples per Figure 5 cell")
		heapMB     = flag.Uint64("heap", 1024, "plib heap / baseline -m, in MiB")
		tmp        = flag.String("tmp", os.TempDir(), "directory for Unix sockets")
	)
	flag.Parse()

	threads, err := parseInts(*threadsArg)
	if err != nil {
		fatal(err)
	}
	cfg := runConfig{
		records128: *records128, records5k: *records5k,
		duration: *duration, threads: threads,
		latSamples: *latSamples, heapBytes: *heapMB << 20, tmp: *tmp,
	}

	run := func(name string, fn func(runConfig) error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
	}
	run("e0", runE0)
	run("f5", runF5)
	run("f6", func(c runConfig) error {
		return runFigure(c, "Figure 6: Field length 128B – Write Heavy", ycsb.WriteHeavy128(c.records128))
	})
	run("f7", func(c runConfig) error {
		return runFigure(c, "Figure 7: Field Length 5KB – Write Heavy", ycsb.WriteHeavy5K(c.records5k))
	})
	run("f8", func(c runConfig) error {
		return runFigure(c, "Figure 8: Field length 128B – Read Heavy", ycsb.ReadHeavy128(c.records128))
	})
	run("f9", func(c runConfig) error {
		return runFigure(c, "Figure 9: Field length 5KB – Read Heavy", ycsb.ReadHeavy5K(c.records5k))
	})
	run("fb", runFB)
}

type runConfig struct {
	records128, records5k uint64
	duration              time.Duration
	threads               []int
	latSamples            int
	heapBytes             uint64
	tmp                   string
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad thread count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchfig:", err)
	os.Exit(1)
}

// runE0 reproduces the §2 microbenchmark text: empty Hodor call vs empty
// Unix-domain-socket round trip.
func runE0(c runConfig) error {
	fmt.Println("== §2 microbenchmark: empty call round trips ==")
	h, err := bench.EmptyHodorCall(200000)
	if err != nil {
		return err
	}
	u, err := bench.UDSRoundTrip(c.tmp, 20000)
	if err != nil {
		return err
	}
	ratio := float64(u.Mean()) / float64(h.Mean())
	fmt.Printf("empty Hodor library call: %v (paper: ~40 ns)\n", h.Mean())
	fmt.Printf("UDS datagram round trip:  %v (paper: 3.3–9.6 µs)\n", u.Mean())
	fmt.Printf("ratio: %.0fx (paper: ~two orders of magnitude)\n\n", ratio)
	return nil
}

// runF5 reproduces Figure 5: per-operation latency across the three
// systems, with speedups relative to the socket baseline.
func runF5(c runConfig) error {
	fmt.Println("== Figure 5: operation latency and speedup ==")
	type row struct {
		name    string
		op      bench.Op
		valSize int
		records uint64
	}
	rows := []row{
		{"Get 128 B", bench.OpGet, 128, c.records128 / 10},
		{"Get 5 KB", bench.OpGet, 5120, c.records5k / 10},
		{"Set 128 B", bench.OpSet, 128, c.records128 / 10},
		{"Set 5 KB", bench.OpSet, 5120, c.records5k / 10},
		{"Delete", bench.OpDelete, 128, c.records128 / 10},
		{"Increment", bench.OpIncr, 128, c.records128 / 10},
	}
	systems := []bench.Kind{bench.Baseline, bench.PlibHodor, bench.PlibNoHodor}
	type cell struct{ mean, p99 time.Duration }
	results := make(map[string]map[bench.Kind]cell)
	for _, r := range rows {
		results[r.name] = make(map[bench.Kind]cell)
		for _, sys := range systems {
			f, err := bench.NewFixture(sys, bench.Options{
				TempDir: c.tmp, HeapBytes: c.heapBytes, HashPower: 17, ServerThreads: 4,
			})
			if err != nil {
				return err
			}
			h, err := bench.OpLatency(f, r.op, r.valSize, r.records, c.latSamples)
			f.Close()
			if err != nil {
				return err
			}
			results[r.name][sys] = cell{mean: h.Mean(), p99: h.Percentile(99)}
		}
	}
	fmt.Printf("%-12s %12s %22s %22s\n", "", "Memcached", "Plib, w/Hodor", "Plib, No Hodor")
	for _, r := range rows {
		base := results[r.name][bench.Baseline]
		ph := results[r.name][bench.PlibHodor]
		pn := results[r.name][bench.PlibNoHodor]
		fmt.Printf("%-12s %12v %14v (%4.1fx) %14v (%4.1fx)\n",
			r.name, base.mean.Round(10*time.Nanosecond),
			ph.mean.Round(10*time.Nanosecond), float64(base.mean)/float64(ph.mean),
			pn.mean.Round(10*time.Nanosecond), float64(base.mean)/float64(pn.mean))
		fmt.Printf("%-12s %12v %14v         %14v\n",
			"  p99", base.p99.Round(10*time.Nanosecond),
			ph.p99.Round(10*time.Nanosecond), pn.p99.Round(10*time.Nanosecond))
	}
	fmt.Println()
	return nil
}

// runFigure reproduces one of Figures 6–9: four series of throughput
// (KTPS) against the client-thread sweep.
func runFigure(c runConfig, title string, w ycsb.Workload) error {
	fmt.Printf("== %s ==\n", title)
	type series struct {
		name          string
		kind          bench.Kind
		serverThreads int
	}
	all := []series{
		{"Memcached 4 Threads", bench.Baseline, 4},
		{"Memcached 8 Threads", bench.Baseline, 8},
		{"Modified Memcached, No Hodor", bench.PlibNoHodor, 0},
		{"Modified Memcached, with Hodor", bench.PlibHodor, 0},
	}
	// threads -> series -> KTPS
	results := make([][]float64, len(c.threads))
	for i := range results {
		results[i] = make([]float64, len(all))
	}
	seqlockNotes := make([]string, 0, 2)
	for si, s := range all {
		f, err := bench.NewFixture(s.kind, bench.Options{
			TempDir: c.tmp, HeapBytes: c.heapBytes, HashPower: 17,
			ServerThreads: s.serverThreads,
		})
		if err != nil {
			return err
		}
		if err := bench.Preload(f, w); err != nil {
			f.Close()
			return err
		}
		var prev core.Stats
		var prevCross uint64
		if f.CoreStats != nil {
			prev = f.CoreStats()
			prevCross = f.LibMetrics().Crossings
		}
		for ti, threads := range c.threads {
			ktps, err := bench.Throughput(f, w, threads, c.duration)
			if err != nil {
				f.Close()
				return err
			}
			results[ti][si] = ktps
			if f.CoreStats != nil {
				// Per-point deltas of the lock-free read-path counters and
				// of the gate-crossing amortization, so the fast-path share
				// and crossings/op are visible alongside each KTPS point.
				st := f.CoreStats()
				gets := st.Gets - prev.Gets
				fast := st.GetFastpathHits - prev.GetFastpathHits
				retries := st.SeqlockRetries - prev.SeqlockRetries
				share := 0.0
				if gets > 0 {
					share = 100 * float64(fast) / float64(gets)
				}
				cross := f.LibMetrics().Crossings
				cpo := 0.0
				if ops := opCount(st) - opCount(prev); ops > 0 {
					cpo = float64(cross-prevCross) / float64(ops)
				}
				fmt.Fprintf(os.Stderr, "  %s @ %d threads: %.0f KTPS (fastpath %.1f%% of gets, %d seqlock retries, %.3f crossings/op)\n",
					s.name, threads, ktps, share, retries, cpo)
				prev, prevCross = st, cross
			} else {
				fmt.Fprintf(os.Stderr, "  %s @ %d threads: %.0f KTPS\n", s.name, threads, ktps)
			}
		}
		if f.CoreStats != nil {
			st := f.CoreStats()
			share := 0.0
			if st.Gets > 0 {
				share = 100 * float64(st.GetFastpathHits) / float64(st.Gets)
			}
			seqlockNotes = append(seqlockNotes,
				fmt.Sprintf("# %s: get_fastpath_hits=%d (%.1f%% of %d gets), seqlock_retries=%d",
					s.name, st.GetFastpathHits, share, st.Gets, st.SeqlockRetries))
		}
		f.Close()
	}
	for _, note := range seqlockNotes {
		fmt.Println(note)
	}
	fmt.Printf("%-8s", "threads")
	for _, s := range all {
		fmt.Printf(",%s", s.name)
	}
	fmt.Println()
	for ti, threads := range c.threads {
		fmt.Printf("%-8d", threads)
		for si := range all {
			fmt.Printf(",%.1f", results[ti][si])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

// opCount sums the store operations that cross the gate — the denominator
// of crossings-per-op.
func opCount(st core.Stats) uint64 {
	return st.Gets + st.Sets + st.Deletes + st.Incrs + st.Decrs + st.Touches
}

// runFB is the batching ablation (DESIGN.md §12): the 95/5 read-mostly mix
// dispatched through ExecBatch at growing batch sizes, reporting per-key
// latency, measured crossings per operation, and the observed batch-size
// distribution (mean ops per batch from the scattered batch counters).
func runFB(c runConfig) error {
	fmt.Println("== Batching ablation: crossings/op vs batch size (95/5 mix, 128 B values) ==")
	book, err := memcached.CreateStore(memcached.Config{
		HeapBytes: c.heapBytes, HashPower: 14, FixedSize: true, NumItemLocks: 1024,
	})
	if err != nil {
		return err
	}
	defer book.Shutdown()
	cp, err := book.NewClientProcess(1000)
	if err != nil {
		return err
	}
	s, err := cp.NewSession()
	if err != nil {
		return err
	}
	defer s.Close()
	const records = 4096
	val := make([]byte, 128)
	key := make([]byte, 0, 20)
	for i := uint64(0); i < records; i++ {
		key = ycsb.KeyInto(key, i)
		if err := s.Set(key, val, 0, 0); err != nil {
			return err
		}
	}
	total := c.latSamples
	if total < 20000 {
		total = 20000
	}
	fmt.Println("batch,ns/key,crossings_per_op,mean_batch_size")
	for _, batch := range []int{1, 2, 4, 8, 16, 32, 64} {
		ops := make([]memcached.BatchOp, batch)
		keys := make([][]byte, batch)
		for j := range keys {
			keys[j] = make([]byte, 0, 20)
		}
		before := book.Metrics()
		start := time.Now()
		n := 0
		for n < total {
			for j := 0; j < batch; j++ {
				keys[j] = ycsb.KeyInto(keys[j][:0], uint64(n)%records)
				if n%20 == 19 {
					ops[j] = memcached.BatchOp{Code: memcached.BatchSet, Key: keys[j], Value: val}
				} else {
					ops[j] = memcached.BatchOp{Code: memcached.BatchGet, Key: keys[j]}
				}
				n++
			}
			if batch == 1 {
				// The unbatched baseline: one trampoline crossing per op.
				var err error
				if ops[0].Code == memcached.BatchSet {
					err = s.Set(ops[0].Key, ops[0].Value, 0, 0)
				} else {
					_, _, err = s.Get(ops[0].Key)
				}
				if err != nil {
					return err
				}
			} else if _, err := s.ExecBatch(ops); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)
		after := book.Metrics()
		cross := after.Library.Crossings - before.Library.Crossings
		batches := after.Ops.Batches - before.Ops.Batches
		bops := after.Ops.BatchedOps - before.Ops.BatchedOps
		mean := 0.0
		if batches > 0 {
			mean = float64(bops) / float64(batches)
		}
		fmt.Printf("%d,%.0f,%.4f,%.1f\n",
			batch, float64(elapsed.Nanoseconds())/float64(n), float64(cross)/float64(n), mean)
	}
	fmt.Println()
	return nil
}
