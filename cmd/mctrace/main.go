// Command mctrace records and replays key-value operation traces, making
// benchmark runs exactly repeatable across backends:
//
//	mctrace record -workload readheavy128 -records 10000 -n 100000 -out t.bin
//	mctrace replay -in t.bin -backend plib
//	mctrace replay -in t.bin -backend baseline -serverthreads 8
//	mctrace replay -in t.bin -backend socket -addr unix:/tmp/mc.sock
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"plibmc/internal/bench"
	"plibmc/internal/client"
	"plibmc/internal/trace"
	"plibmc/internal/ycsb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mctrace record|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "readheavy128", "readheavy128, writeheavy128, readheavy5k, writeheavy5k")
	records := fs.Uint64("records", 10000, "workload record count")
	n := fs.Int("n", 100000, "operations to record")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "trace.bin", "output file")
	fs.Parse(args)

	var w ycsb.Workload
	switch *workload {
	case "readheavy128":
		w = ycsb.ReadHeavy128(*records)
	case "writeheavy128":
		w = ycsb.WriteHeavy128(*records)
	case "readheavy5k":
		w = ycsb.ReadHeavy5K(*records)
	case "writeheavy5k":
		w = ycsb.WriteHeavy5K(*records)
	default:
		fatal(fmt.Errorf("unknown workload %q", *workload))
	}
	f, err := os.Create(*out)
	fatalIf(err)
	count, err := trace.FromYCSB(w, *n, *seed, f)
	fatalIf(err)
	fatalIf(f.Close())
	info, _ := os.Stat(*out)
	fmt.Printf("recorded %d ops of %s (records=%d seed=%d) to %s (%d bytes)\n",
		count, *workload, *records, *seed, *out, info.Size())
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.bin", "trace file")
	backendArg := fs.String("backend", "plib", "plib, plib-nohodor, baseline, or socket")
	addr := fs.String("addr", "", "net:addr (backend=socket)")
	serverThreads := fs.Int("serverthreads", 4, "server threads (backend=baseline)")
	heapMB := fs.Uint64("heap", 512, "heap / memory limit in MiB")
	preloadRecords := fs.Uint64("preload", 0, "preload this many 128 B records before replaying")
	fs.Parse(args)

	var kv bench.ThreadKV
	switch *backendArg {
	case "plib", "plib-nohodor", "baseline":
		kind := map[string]bench.Kind{
			"plib": bench.PlibHodor, "plib-nohodor": bench.PlibNoHodor, "baseline": bench.Baseline,
		}[*backendArg]
		f, err := bench.NewFixture(kind, bench.Options{
			TempDir: os.TempDir(), HeapBytes: *heapMB << 20,
			HashPower: 17, ServerThreads: *serverThreads,
		})
		fatalIf(err)
		defer f.Close()
		if *preloadRecords > 0 {
			fatalIf(bench.Preload(f, ycsb.WriteHeavy128(*preloadRecords)))
		}
		kv, err = f.NewThread()
		fatalIf(err)
	case "socket":
		network, address, ok := strings.Cut(*addr, ":")
		if !ok {
			fatal(fmt.Errorf("-addr must be net:addr"))
		}
		c, err := client.Dial(network, address, client.Binary)
		fatalIf(err)
		kv = sockKV{c}
	default:
		fatal(fmt.Errorf("unknown backend %q", *backendArg))
	}
	defer kv.Close()

	f, err := os.Open(*in)
	fatalIf(err)
	defer f.Close()
	r, err := trace.NewReader(f)
	fatalIf(err)
	res, err := trace.Replay(r, kv)
	fatalIf(err)
	fmt.Printf("replayed %d ops in %v (%.1f KTPS); %d misses, %d errors\n",
		res.Ops, res.Elapsed.Round(time.Millisecond),
		float64(res.Ops)/res.Elapsed.Seconds()/1000, res.Misses, res.Errors)
	fmt.Printf("latency: %v\n", res.Latency)
}

type sockKV struct{ c *client.Client }

func (s sockKV) Get(key []byte) error {
	_, _, _, err := s.c.Get(key)
	return err
}
func (s sockKV) Set(key, value []byte) error { return s.c.Set(key, value, 0, 0) }
func (s sockKV) Delete(key []byte) error     { return s.c.Delete(key) }
func (s sockKV) Incr(key []byte, d uint64) error {
	_, err := s.c.Increment(key, d)
	return err
}
func (s sockKV) Close() { s.c.Close() }

func fatal(err error) { fmt.Fprintln(os.Stderr, "mctrace:", err); os.Exit(1) }
func fatalIf(err error) {
	if err != nil {
		fatal(err)
	}
}
